// Ablation: deterministic vs statistical service (Sec. VI's opening
// point). For one link and one movie population, how many calls does each
// admission discipline carry?
//   * peak-rate allocation (CBR service sized at the 300 kb-buffer rate),
//   * deterministic leaky-bucket FIFO admission across token rates rho
//     (the tightest sigma for each rho), sharing the same total buffer,
//   * statistical RCBR admission (Chernoff at 1e-4, the paper's scheme),
//   * mean-rate allocation (the unreachable upper bound).
#include <algorithm>
#include <cmath>
#include <vector>

#include "admission/descriptor.h"
#include "admission/deterministic.h"
#include "experiment_lib.h"
#include "core/baselines.h"
#include "ldev/chernoff.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 14400);
  const auto& bits = movie.frame_bits();
  const double mean_per_slot = movie.mean_rate() / movie.fps();
  // One OC-3-ish link: 155 Mb/s, with 64 sources' worth of 300 kb buffers.
  const double capacity = 155 * kMbps / movie.fps();  // bits per slot
  const double buffer = 64 * 300 * kKilobit;

  // Statistical: the RCBR schedule's bandwidth histogram.
  const core::DpOptions dp_options = bench::PaperDpOptions(3000.0);
  const core::DpResult dp = core::ComputeOptimalSchedule(bits, dp_options);
  const auto descriptor = admission::DescriptorFromSchedule(dp.schedule);

  bench::PrintPreamble(
      "ablation_deterministic_vs_statistical",
      {"calls carried on a 155 Mb/s link, one movie population",
       "scheme 0 = peak-rate CBR (e_B at 300 kb); 1 = deterministic "
       "leaky bucket (x = rho/mean, tightest sigma, shared 19.2 Mb "
       "buffer); 2 = statistical RCBR Chernoff at 1e-4; 3 = mean-rate "
       "bound",
       "paper: the statistical service's SMG is why RCBR accepts a "
       "stochastic QoS"},
      {"scheme", "x", "calls"});

  const double e_b =
      core::MinRateForLoss(bits, 300 * kKilobit, 1e-6, 1e-3);
  bench::PrintRow({0, e_b / mean_per_slot,
                   static_cast<double>(admission::MaxPeakRateCalls(
                       e_b, capacity))});

  for (double rho_x : {1.1, 1.5, 2.0, 3.0}) {
    const auto envelope =
        admission::EnvelopeAtRate(bits, rho_x * mean_per_slot);
    bench::PrintRow({1, rho_x,
                     static_cast<double>(admission::MaxDeterministicCalls(
                         envelope, capacity, buffer))});
  }

  bench::PrintRow({2, 1e-4,
                   static_cast<double>(ldev::MaxAdmissibleCalls(
                       descriptor, capacity, 1e-4))});
  bench::PrintRow({3, 1.0, std::floor(capacity / mean_per_slot)});
  return 0;
}
