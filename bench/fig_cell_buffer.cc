// The "minimal cell-level buffering" claim of Sec. III-A / Fig. 3(c):
// RCBR switches carry only CBR streams, so their queueing is the
// cell-scale N*D/D/1 queue. This bench dimensions that buffer — cells
// needed for P(overflow) <= 1e-6 as the number of multiplexed streams
// grows at fixed utilization — and contrasts it with the ~300 kb
// burst-scale buffer a VBR service would need per source. With 424-bit
// ATM cells, even 900 streams at 90% load need only a few kb.
#include <vector>

#include "experiment_lib.h"
#include "sim/cell_mux.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);

  bench::PrintPreamble(
      "fig_cell_buffer",
      {"cell-scale buffer for CBR multiplexing (N*D/D/1), target "
       "P(Q >= q) <= 1e-6",
       "bound = union-of-Chernoff dimensioning; sim_tail = Monte Carlo "
       "P(Q >= bound_cells) as a sanity check (must be <= 1e-6-ish)",
       "atm_bits converts cells to bits (424-bit cells); compare with "
       "the 300,000-bit burst buffer per RCBR source"},
      {"utilization", "streams", "bound_cells", "atm_bits", "sim_tail"});

  Rng rng(args.seed);
  for (double utilization : {0.8, 0.9, 0.95}) {
    for (std::int64_t n : {10, 30, 100, 300, 900}) {
      const auto period =
          static_cast<std::int64_t>(static_cast<double>(n) / utilization);
      const std::int64_t cells = sim::CellsForLossTarget(n, period, 1e-6);
      const std::int64_t reps = args.quick ? 500 : 3000;
      const sim::CellMuxResult mc =
          sim::SimulateCellMux(n, period, reps, rng);
      bench::PrintRow({utilization, static_cast<double>(n),
                       static_cast<double>(cells),
                       static_cast<double>(cells) * 424.0,
                       mc.Tail(cells)});
    }
  }
  return 0;
}
