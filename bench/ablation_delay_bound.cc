// Ablation: delay-bound DP (eq. 5) vs buffer-bound DP (eq. 2). "This
// might be desirable in real-time applications, if sufficient buffer
// space is available, but the QoS still requires to keep delays low."
#include <vector>

#include "experiment_lib.h"
#include "core/schedule.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 14400);
  const auto& bits = movie.frame_bits();
  const double mean_per_slot = movie.mean_rate() / movie.fps();

  bench::PrintPreamble(
      "ablation_delay_bound",
      {"DP with a delay bound (eq. 5) across bounds, vs the 300 kb "
       "buffer-bound schedule",
       "mode 0 = delay bound (x = delay in seconds); mode 1 = buffer "
       "bound (x = buffer kb)",
       "tighter delay -> lower efficiency: the cost of low latency"},
      {"mode", "x", "efficiency", "interval_s", "mean_rate_kbps"});

  for (double delay_s : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    core::DpOptions options = bench::PaperDpOptions(3000.0);
    options.delay_bound_slots =
        static_cast<std::int64_t>(delay_s * movie.fps());
    const core::DpResult r = core::ComputeOptimalSchedule(bits, options);
    const core::ScheduleMetrics m = core::EvaluateSchedule(
        bits, r.schedule, 1e15, movie.slot_seconds(), options.cost);
    bench::PrintRow({0, delay_s, mean_per_slot / r.schedule.Mean(),
                     m.mean_interval_seconds,
                     r.schedule.Mean() * movie.fps() / kKbps});
  }
  {
    core::DpOptions options = bench::PaperDpOptions(3000.0);
    const core::DpResult r = core::ComputeOptimalSchedule(bits, options);
    const core::ScheduleMetrics m = core::EvaluateSchedule(
        bits, r.schedule, options.buffer_bits, movie.slot_seconds(),
        options.cost);
    bench::PrintRow({1, 300.0, mean_per_slot / r.schedule.Mean(),
                     m.mean_interval_seconds,
                     r.schedule.Mean() * movie.fps() / kKbps});
  }
  return 0;
}
