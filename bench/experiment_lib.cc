#include "experiment_lib.h"

#include <algorithm>
#include <utility>

#include "admission/policies.h"
#include "trace/star_wars.h"
#include "util/rng.h"
#include "util/units.h"

namespace rcbr::bench {

trace::FrameTrace MakeTrace(const Args& args, std::int64_t default_frames) {
  std::int64_t frames = args.frames > 0 ? args.frames : default_frames;
  if (args.quick) frames = std::max<std::int64_t>(frames / 8, 1440);
  return trace::MakeStarWarsTrace(args.seed, frames);
}

core::DpOptions PaperDpOptions(double alpha, double top_kbps) {
  core::DpOptions options;
  const double step = 64.0 * kKilobit / kStarWarsFps;  // 64 kb/s in b/slot
  const auto levels = static_cast<int>(top_kbps / 64.0);
  for (int k = 0; k <= levels; ++k) {
    options.rate_levels.push_back(step * static_cast<double>(k));
  }
  options.buffer_bits = 300.0 * kKilobit;
  options.cost = {alpha, 1.0 / kStarWarsFps};
  // Paper-scale traces need trellis coalescing: a 2 kb buffer grid bounds
  // the frontier at 150 states per rate (conservative, near-exact -- see
  // ablation_dp_quantization) and renegotiation points every 0.25 s are
  // far finer than the ~10 s intervals the schedules actually use.
  options.buffer_quantum_bits = 2.0 * kKilobit;
  options.decision_period = 6;
  // Experiments reuse this schedule as randomly rotated copies; a drained
  // terminal buffer keeps every rotation feasible across the wrap seam.
  options.final_buffer_bits = 0.0;
  return options;
}

PiecewiseConstant ToBps(const PiecewiseConstant& schedule_bits_per_slot,
                        double fps) {
  std::vector<Step> steps;
  steps.reserve(schedule_bits_per_slot.steps().size());
  for (const Step& s : schedule_bits_per_slot.steps()) {
    steps.push_back({s.start, s.value * fps});
  }
  return PiecewiseConstant(std::move(steps),
                           schedule_bits_per_slot.length());
}

MbacSetup::MbacSetup(const trace::FrameTrace& movie)
    : profile{PiecewiseConstant::Constant(1.0, 1), 1.0},
      descriptor({0.0}, {1.0}) {
  const core::DpOptions options = PaperDpOptions(3000.0);
  const core::DpResult dp =
      core::ComputeOptimalSchedule(movie.frame_bits(), options);
  profile.rates_bps = ToBps(dp.schedule, movie.fps());
  profile.slot_seconds = movie.slot_seconds();
  descriptor = admission::DescriptorFromSchedule(profile.rates_bps);
  for (double level : options.rate_levels) {
    rate_grid_bps.push_back(level * movie.fps());
  }
  call_mean_bps = profile.rates_bps.Mean();
}

MbacPoint RunMbacPoint(const MbacSetup& setup, sim::AdmissionPolicy& policy,
                       double capacity_multiple, double offered_load,
                       std::uint64_t seed, bool quick,
                       obs::Recorder* recorder,
                       const sim::RateLadder& ladder) {
  const double duration = setup.profile.duration_seconds();
  sim::CallSimOptions options;
  options.capacity_bps = capacity_multiple * setup.call_mean_bps;
  // Normalized offered load: lambda * mean_holding * mean_rate / C.
  options.arrival_rate_per_s =
      offered_load * options.capacity_bps / (setup.call_mean_bps * duration);
  options.warmup_seconds = 3 * duration;
  options.sample_intervals = quick ? 4 : 40;
  options.interval_seconds = duration;
  options.recorder = recorder;
  options.ladder = ladder;
  Rng rng(seed);
  const sim::CallSimResult r =
      sim::RunCallSim({setup.profile}, policy, options, rng);
  MbacPoint point{r.failure_probability.mean(), r.utilization.mean(),
                  r.blocking_probability()};
  point.offered_calls = r.offered_calls;
  point.downgraded_admits = r.downgraded_admits;
  point.upgrades = r.upgrades;
  point.utility_per_s =
      r.utility_seconds /
      (static_cast<double>(options.sample_intervals) * duration);
  return point;
}

sim::RateLadder LadderFromArgs(const Args& args) {
  if (args.ladder_rungs.empty()) return {};
  return sim::RateLadder::FromScales(args.ladder_rungs,
                                     args.ladder_utilities.empty()
                                         ? args.ladder_rungs
                                         : args.ladder_utilities);
}

MbacPoint RunPerfectPoint(const MbacSetup& setup, double capacity_multiple,
                          double offered_load, std::uint64_t seed,
                          bool quick, obs::Recorder* recorder) {
  admission::PerfectKnowledgePolicy policy(
      setup.descriptor, capacity_multiple * setup.call_mean_bps,
      kMbacTargetFailure, recorder);
  return RunMbacPoint(setup, policy, capacity_multiple, offered_load, seed,
                      quick, recorder);
}

std::vector<double> MbacCapacities(bool quick) {
  return quick ? std::vector<double>{16, 64}
               : std::vector<double>{16, 32, 64, 128};
}

std::vector<double> MbacLoads(bool quick) {
  return quick ? std::vector<double>{0.6, 1.0}
               : std::vector<double>{0.4, 0.6, 0.8, 1.0};
}

}  // namespace rcbr::bench
