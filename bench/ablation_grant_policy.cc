// Ablation: grant discipline at the RCBR multiplexer. The paper's Fig. 6
// simulation lets a refused source "settle for whatever bandwidth
// remaining in the link" (partial grants, refilled FIFO as capacity
// frees); the RM-cell mechanism of Sec. III-B is all-or-nothing with
// per-slot retries. This bench runs both disciplines on identical
// workloads/schedules across capacities and reports the loss each one
// suffers — the price of the simpler signaling.
#include <vector>

#include "core/testbed.h"
#include "experiment_lib.h"
#include "sim/scenarios.h"
#include "util/rng.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 7200);  // 5 min
  const core::DpOptions dp_options = bench::PaperDpOptions(3000.0);
  const core::DpResult dp =
      core::ComputeOptimalSchedule(movie.frame_bits(), dp_options);

  // One shared workload for every capacity point, drawn before the sweep
  // so all disciplines and capacities see identical sources.
  constexpr int kN = 8;
  Rng rng = Rng::Stream(args.seed, 71);
  std::vector<std::vector<double>> arrivals;
  std::vector<PiecewiseConstant> schedules;
  for (int i = 0; i < kN; ++i) {
    const std::int64_t shift = rng.UniformInt(0, movie.frame_count() - 1);
    arrivals.push_back(movie.CircularShift(shift).frame_bits());
    schedules.push_back(dp.schedule.Rotate(shift));
  }

  runtime::SweepSpec spec;
  spec.name = "ablation_grant_policy";
  spec.notes = {
      "partial grants (paper's Fig. 6 rule) vs all-or-nothing RM cells "
      "with per-slot retry, 8 sources, identical workloads",
      "capacity as a multiple of the total schedule mean",
      "expected: all-or-nothing loses somewhat more at tight "
      "capacities; both vanish with headroom"};
  spec.parameters = {"capacity_x"};
  spec.metrics = {"fluid_loss", "rmcell_loss", "rmcell_failures"};
  for (double headroom : {1.1, 1.3, 1.6, 2.0, 3.0}) {
    spec.points.push_back({headroom});
  }

  runtime::RunExperiment(
      spec,
      [&](const runtime::SweepContext& ctx) {
        const double capacity_per_slot =
            ctx.parameters[0] * kN * dp.schedule.Mean();
        const sim::RcbrMuxResult fluid = sim::RcbrScenario(
            arrivals, schedules, capacity_per_slot, 300 * kKilobit);
        core::TestbedOptions options;
        options.hop_capacity_bps = capacity_per_slot * movie.fps();
        options.hops = 1;
        options.buffer_bits = 300 * kKilobit;
        options.slot_seconds = movie.slot_seconds();
        const core::TestbedResult strict =
            core::RunOfflineTestbed(arrivals, schedules, options);
        return std::vector<double>{
            fluid.loss_fraction(), strict.loss_fraction(),
            static_cast<double>(strict.renegotiation_failures())};
      },
      args);
  return 0;
}
