// Macro-capacity trajectory: how many calls and events the unified
// engine sustains (ROADMAP "practical scale" north star).
//
// The paper's efficiency claim (Sec. VI) is that RCBR only simulates
// renegotiation events, so capacity is bounded by the event loop, not
// the frame rate. This harness measures that bound directly: a Poisson
// stream of alternating two-rate RCBR calls on one link, sized so the
// expected concurrency hits the `calls` parameter, with capacity for
// (essentially) all of them. Each call renegotiates every 4 slots, so
// the top point — 10^6 concurrent calls — drives well over 10^8 events
// through the calendar queue and the SoA call store in one run.
//
// Points run serially on one thread (wall-clock throughput is the
// metric; parallel points would contend for memory bandwidth). The
// `tracked` parameter re-runs a size with per-VCI connection tracking
// on, exercising the ports' open-addressing audit tables at the same
// scale. Simulation outputs stay deterministic per seed; only the
// wall-time-derived columns (events/sec, admitted/sec) vary run to run.
//
// CI runs `macro_capacity --quick` in Release and compares events/sec
// against tools/macro_capacity_floor.json (fails on >20% regression; see
// tools/check_macro_capacity.py).
#include <chrono>
#include <cstdint>
#include <vector>

#include "experiment_lib.h"
#include "sim/engine/simulation.h"
#include "util/piecewise.h"
#include "util/rng.h"

namespace {

// One call: 128 slots of 1 s, alternating 1.0 / 3.0 every 4 slots —
// 32 renegotiations per call, mean rate 2.0.
constexpr std::int64_t kSlots = 128;
constexpr std::int64_t kStepEvery = 4;
constexpr double kLowRate = 1.0;
constexpr double kHighRate = 3.0;
constexpr double kMeanRate = (kLowRate + kHighRate) / 2;

rcbr::sim::CallProfile MakeProfile() {
  std::vector<rcbr::Step> steps;
  for (std::int64_t t = 0; t < kSlots; t += kStepEvery) {
    steps.push_back({t, (t / kStepEvery) % 2 == 0 ? kLowRate : kHighRate});
  }
  return {rcbr::PiecewiseConstant(std::move(steps), kSlots), 1.0};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rcbr;
  bench::Args args = bench::ParseArgs(argc, argv);
  // Serial points: each one owns the machine while its clock runs.
  args.threads = 1;

  runtime::SweepSpec spec;
  spec.name = "macro_capacity";
  spec.notes = {
      "engine capacity trajectory: concurrent calls vs event throughput",
      "alternating two-rate calls (32 renegotiations each) on one link "
      "sized to admit the whole population; calls = expected concurrency",
      "tracked=1 re-runs the size with per-VCI audit tables on",
      "obs=1 re-runs the size with the point recorder wired into the "
      "engine (counters, spans, flight hooks) — the tracked-vs-untracked "
      "overhead pair checked by tools/check_obs_overhead.py",
      "events/sec and admitted/sec are wall-clock derived; sim outputs "
      "are deterministic per seed"};
  spec.parameters = {"calls", "tracked", "obs"};
  spec.metrics = {"events_per_sec", "admitted_per_sec", "events",
                  "peak_calls",     "blocking",         "wall_s"};
  if (args.quick) {
    spec.points = {{1e3, 0.0, 0.0},
                   {1e4, 0.0, 0.0},
                   {1e4, 0.0, 1.0},
                   {1e4, 1.0, 0.0},
                   {1e4, 1.0, 1.0}};
  } else {
    spec.points = {{1e3, 0.0, 0.0}, {1e4, 0.0, 0.0}, {1e4, 0.0, 1.0},
                   {1e5, 0.0, 0.0}, {1e5, 0.0, 1.0}, {1e5, 1.0, 0.0},
                   {1e5, 1.0, 1.0}, {1e6, 0.0, 0.0}, {1e6, 0.0, 1.0},
                   {1e6, 1.0, 0.0}, {1e6, 1.0, 1.0}};
  }

  const std::vector<sim::CallProfile> profiles = {MakeProfile()};

  runtime::RunExperiment(
      spec,
      [&](const runtime::SweepContext& ctx) {
        const double target_calls = ctx.parameters[0];
        const bool tracked = ctx.parameters[1] != 0.0;
        const bool observed = ctx.parameters[2] != 0.0;
        const double duration_s = static_cast<double>(kSlots);

        sim::engine::SimulationOptions options;
        // Room for the whole target population at its mean rate plus
        // fluctuation headroom, so admission is effectively open.
        options.link_capacities_bps = {kMeanRate * target_calls * 1.1 +
                                       8 * kHighRate};
        options.classes.resize(1);
        options.classes[0].candidate_routes = {{0}};
        // Little's law: concurrency = arrival rate x holding time.
        options.classes[0].arrival_rate_per_s = target_calls / duration_s;
        options.classes[0].profile_index = 0;
        options.warmup_seconds = duration_s;  // fill to steady state
        options.sample_intervals = 3;
        options.interval_seconds = duration_s;
        options.track_connections = tracked;
        options.expected_peak_calls =
            static_cast<std::size_t>(target_calls * 1.1) + 64;
        if (observed) {
          options.recorder = ctx.recorder;
          options.signaling_recorder = ctx.recorder;
        }

        Rng rng = ctx.MakeRng();
        const auto t0 = std::chrono::steady_clock::now();
        const sim::engine::SimulationResult r =
            sim::engine::RunSimulation(profiles, options, rng);
        const double wall_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();

        const sim::engine::ClassTotals& totals = r.per_class.front();
        const double admitted = static_cast<double>(totals.offered_calls -
                                                    totals.blocked_calls);
        const double events = static_cast<double>(r.events_processed);
        return std::vector<double>{
            wall_s > 0 ? events / wall_s : 0.0,
            wall_s > 0 ? admitted / wall_s : 0.0,
            events,
            static_cast<double>(r.peak_concurrent_calls),
            totals.offered_calls > 0
                ? static_cast<double>(totals.blocked_calls) /
                      static_cast<double>(totals.offered_calls)
                : 0.0,
            wall_s};
      },
      args);
  return 0;
}
