// Sec. V-A theory validation on the three-subchain source of Fig. 4:
//  * eq. (9): the multi-time-scale equivalent bandwidth (max over
//    subchains) predicts the empirical lossless drain rate in the regime
//    of rare transitions + moderate buffers;
//  * eqs. (10)/(11): the Chernoff estimates bound the Monte Carlo
//    overflow probability of N multiplexed sources at the slow scale.
#include <algorithm>
#include <cmath>
#include <vector>

#include "experiment_lib.h"
#include "ldev/chernoff.h"
#include "ldev/equivalent_bandwidth.h"
#include "markov/multi_timescale.h"
#include "sim/fluid_queue.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const double mean = 1000.0;  // bits per slot

  bench::PrintPreamble(
      "fig_ldev_validation",
      {"Sec. V-A: large-deviations predictions vs simulation, 3-subchain "
       "source (Fig. 4)",
       "part 0: equivalent bandwidth (eq. 9) vs empirical P(q > B) decay",
       "part 1: Chernoff slow-scale overflow estimate (eq. 10) vs Monte "
       "Carlo"},
      {"part", "x", "predicted", "refined", "measured"});

  // Part 0: drain the source at the eq.-9 equivalent bandwidth for
  // several QoS exponents; the empirical overflow probability of buffer B
  // should be ~ exp(-theta B).
  const markov::MultiTimescaleSource source =
      markov::MakeThreeSubchainSource(mean, 1e-4);
  Rng rng(args.seed);
  const std::size_t slots = args.quick ? 400000 : 2000000;
  for (double theta : {2e-3, 5e-3, 1e-2}) {
    const double eb =
        ldev::MultiTimescaleEquivalentBandwidth(source, theta);
    const auto workload = source.composite().Generate(slots, rng);
    sim::SlottedQueue queue(sim::kInfiniteBuffer);
    const double buffer = 600.0;  // bits; absorbs fast-scale fluctuation
    std::size_t above = 0;
    for (double a : workload) {
      queue.Step(a, eb);
      if (queue.occupancy_bits() > buffer) ++above;
    }
    const double measured =
        static_cast<double>(above) / static_cast<double>(slots);
    const double predicted = std::exp(-theta * buffer);
    bench::PrintRow({0, theta, predicted, predicted, measured});
  }

  // Part 1: N sources, bufferless slow-scale multiplexing. Chernoff
  // estimate of P(sum of scene rates > C) vs Monte Carlo over stationary
  // subchain occupancies.
  const auto scene = ldev::SceneRateDistribution(source);
  const int n = 50;
  Rng mc(args.seed + 1);
  for (double capacity_per_call : {1150.0, 1250.0, 1400.0}) {
    const double predicted = ldev::ChernoffOverflowProbability(
        scene, n, capacity_per_call * n);
    const double refined = ldev::RefinedOverflowProbability(
        scene, n, capacity_per_call * n);
    std::size_t overflows = 0;
    const std::size_t trials = args.quick ? 40000 : 400000;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      double total = 0;
      for (int i = 0; i < n; ++i) {
        total += scene.values()[mc.Categorical(scene.probabilities())];
      }
      if (total > capacity_per_call * n) ++overflows;
    }
    const double measured =
        static_cast<double>(overflows) / static_cast<double>(trials);
    bench::PrintRow({1, capacity_per_call, predicted, refined, measured});
  }
  return 0;
}
