// Ablation: AR(1) heuristic parameter sensitivity (Sec. IV-B). Sweeps the
// buffer thresholds B_l/B_h and the time constant T around the paper's
// operating point (B_l = 10 kb, B_h = 150 kb, T = 5 frames).
#include <vector>

#include "experiment_lib.h"
#include "core/online_heuristic.h"
#include "core/schedule.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 14400);
  const auto& bits = movie.frame_bits();
  const double mean_per_slot = movie.mean_rate() / movie.fps();

  bench::PrintPreamble(
      "ablation_heuristic_params",
      {"AR(1) heuristic sensitivity around B_l=10kb, B_h=150kb, T=5, "
       "Delta=100 kb/s",
       "sweep 0: B_h (kb); sweep 1: T (frames); sweep 2: B_l (kb)",
       "columns report renegotiation interval, efficiency and the max "
       "buffer the heuristic actually used"},
      {"sweep", "value", "interval_s", "efficiency", "max_buffer_kb"});

  auto run = [&](const core::HeuristicOptions& h, int sweep, double value) {
    const PiecewiseConstant schedule =
        core::ComputeHeuristicSchedule(bits, h);
    const core::ScheduleMetrics m = core::EvaluateSchedule(
        bits, schedule, 1e15, movie.slot_seconds(), {});
    bench::PrintRow({static_cast<double>(sweep), value,
                     m.mean_interval_seconds,
                     mean_per_slot / schedule.Mean(),
                     m.max_buffer_bits / kKilobit});
  };

  core::HeuristicOptions base;
  base.low_threshold_bits = 10 * kKilobit;
  base.high_threshold_bits = 150 * kKilobit;
  base.time_constant_slots = 5;
  base.granularity_bits_per_slot = 100.0 * kKilobit / movie.fps();
  base.initial_rate_bits_per_slot = mean_per_slot;

  for (double bh_kb : {50.0, 100.0, 150.0, 250.0, 400.0}) {
    core::HeuristicOptions h = base;
    h.high_threshold_bits = bh_kb * kKilobit;
    run(h, 0, bh_kb);
  }
  for (double t_frames : {2.0, 5.0, 12.0, 24.0, 48.0}) {
    core::HeuristicOptions h = base;
    h.time_constant_slots = t_frames;
    run(h, 1, t_frames);
  }
  for (double bl_kb : {2.0, 10.0, 40.0, 100.0}) {
    core::HeuristicOptions h = base;
    h.low_threshold_bits = bl_kb * kKilobit;
    run(h, 2, bl_kb);
  }
  return 0;
}
