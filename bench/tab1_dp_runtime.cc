// Sec. IV-A runtime claim: the DP's cost explodes with the number of rate
// levels K. The paper reports ~20 min for K = 20 and "more than a day"
// for K = 100 on a 1995 UltraSparc; we reproduce the growth *shape* on
// the host (absolute times differ, the superlinear blowup must not).
#include <vector>

#include "core/schedule.h"
#include "experiment_lib.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 7200);
  const auto& bits = movie.frame_bits();

  runtime::SweepSpec spec;
  spec.name = "tab1_dp_runtime";
  spec.notes = {
      "Sec. IV-A: DP runtime and trellis size vs number of rate levels K",
      "rates uniform within 48 kb/s and 2.4 Mb/s (paper's setup)",
      "paper shape: tractable at K ~ 20, superlinear blowup toward "
      "K = 100",
      "--threads=N parallelizes inside each DP solve; the K sweep itself "
      "runs sequentially so per-K runtimes stay honest"};
  spec.parameters = {"K"};
  spec.metrics = {"seconds", "peak_nodes", "total_nodes", "cost"};
  for (int k : args.quick ? std::vector<int>{5, 10, 20}
                          : std::vector<int>{5, 10, 20, 40, 100}) {
    spec.points.push_back({static_cast<double>(k)});
  }

  // The DP parallelizes internally across args.threads; the K sweep runs
  // one point at a time so each row's wall-clock is a clean measurement.
  bench::Args sweep_args = args;
  sweep_args.threads = 1;
  runtime::RunExperiment(
      spec,
      [&](const runtime::SweepContext& ctx) {
        const int k = static_cast<int>(ctx.parameters[0]);
        core::DpOptions options;
        // The paper's grid starts at 48 kb/s; prepend 0 so idle periods
        // can release bandwidth entirely, and convert kb/s -> bits/slot.
        options.rate_levels.push_back(0.0);
        const auto grid =
            core::UniformRateLevels(48.0 * kKilobit / movie.fps(),
                                    2400.0 * kKilobit / movie.fps(),
                                    static_cast<std::size_t>(k));
        options.rate_levels.insert(options.rate_levels.end(), grid.begin(),
                                   grid.end());
        options.buffer_bits = 300 * kKilobit;
        options.cost = {3000.0, 1.0 / movie.fps()};
        options.buffer_quantum_bits = 4.0 * kKilobit;
        options.threads = args.threads;
        options.recorder = ctx.recorder;
        options.obs_id = static_cast<std::uint64_t>(k);
        const double start = runtime::NowSeconds();
        const core::DpResult r = core::ComputeOptimalSchedule(bits, options);
        const double elapsed = runtime::NowSeconds() - start;
        return std::vector<double>{elapsed,
                                   static_cast<double>(r.peak_live_nodes),
                                   static_cast<double>(r.total_nodes),
                                   r.optimal_cost};
      },
      sweep_args);
  return 0;
}
