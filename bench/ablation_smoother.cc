// Ablation: cost-optimal DP vs the funnel (min-segment) smoother from the
// smoothing literature, at the same 300 kb buffer. The funnel minimizes
// the number of rate changes with continuous rates; the DP trades
// renegotiations against bandwidth on a grid with explicit prices.
#include <vector>

#include "experiment_lib.h"
#include "core/funnel_smoother.h"
#include "core/interval_smoother.h"
#include "core/schedule.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 14400);
  const auto& bits = movie.frame_bits();
  const double mean_per_slot = movie.mean_rate() / movie.fps();
  const double buffer = 300 * kKilobit;

  bench::PrintPreamble(
      "ablation_smoother",
      {"Funnel (min-segment, continuous rates) vs cost-optimal DP at "
       "B = 300 kb",
       "algo 0 = funnel; algo 1..3 = DP at increasing renegotiation "
       "price alpha; algo 4 = clocked PCRTT at the DP's alpha=3000 "
       "interval",
       "the funnel achieves efficiency ~1 by construction (it delivers "
       "exactly the stream) with few segments; the DP can trade "
       "efficiency for even fewer renegotiations"},
      {"algo", "alpha", "renegs", "interval_s", "efficiency"});

  const PiecewiseConstant funnel = core::ComputeFunnelSchedule(bits, buffer);
  const core::ScheduleMetrics fm = core::EvaluateSchedule(
      bits, funnel, buffer + 1.0, movie.slot_seconds(), {});
  bench::PrintRow({0, 0, static_cast<double>(fm.renegotiations),
                   fm.mean_interval_seconds,
                   mean_per_slot / funnel.Mean()});

  std::int64_t dp3000_interval_slots = 0;
  int algo = 1;
  for (double alpha : {300.0, 3000.0, 30000.0}) {
    core::DpOptions options = bench::PaperDpOptions(alpha);
    const core::DpResult r = core::ComputeOptimalSchedule(bits, options);
    const core::ScheduleMetrics m = core::EvaluateSchedule(
        bits, r.schedule, buffer, movie.slot_seconds(), options.cost);
    if (alpha == 3000.0) {
      dp3000_interval_slots =
          r.schedule.length() / (r.schedule.change_count() + 1);
    }
    bench::PrintRow({static_cast<double>(algo++), alpha,
                     static_cast<double>(m.renegotiations),
                     m.mean_interval_seconds,
                     mean_per_slot / r.schedule.Mean()});
  }

  // PCRTT: renegotiate on a clock at the DP's alpha=3000 mean interval.
  const PiecewiseConstant clocked = core::ComputeIntervalSchedule(
      bits, std::max<std::int64_t>(dp3000_interval_slots, 1), buffer);
  const core::ScheduleMetrics cm = core::EvaluateSchedule(
      bits, clocked, buffer + 1.0, movie.slot_seconds(), {});
  bench::PrintRow({4, 0, static_cast<double>(cm.renegotiations),
                   cm.mean_interval_seconds,
                   mean_per_slot / clocked.Mean()});
  return 0;
}
