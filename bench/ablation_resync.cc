// Ablation: RM-cell loss, drift, and periodic absolute-rate resync
// (Sec. III-B, footnote 2). For each (cell loss probability, resync
// period) pair, a source renegotiates through a lossy channel for the
// length of a movie's schedule; we report the mean and max absolute
// drift between the port's and the source's view of the reserved rate.
#include <cmath>
#include <vector>

#include "experiment_lib.h"
#include "signaling/lossy_channel.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 14400);
  const bench::MbacSetup setup(movie);
  const auto& steps = setup.profile.rates_bps.steps();

  bench::PrintPreamble(
      "ablation_resync",
      {"RM-cell loss drift vs resync period (Sec. III-B footnote 2)",
       "the source replays its movie schedule 20x through a lossy "
       "channel; drift in kb/s between port and source views",
       "resync 0 = never (drift is unbounded in the loss rate); small "
       "periods bound it near zero"},
      {"loss_prob", "resync_every", "mean_drift_kbps", "max_drift_kbps",
       "resyncs"});

  for (double loss : {0.001, 0.01, 0.05}) {
    for (std::int64_t resync_every : {0, 100, 10}) {
      signaling::PortController port(1e12);
      const double initial = steps.front().value;
      port.AdmitConnection(1, initial);
      Rng rng(args.seed + 41);
      signaling::LossyChannelOptions options;
      options.cell_loss_probability = loss;
      options.resync_every_cells = resync_every;
      signaling::LossyRenegotiator source(&port, 1, initial, options, &rng);
      double drift_sum = 0;
      double drift_max = 0;
      std::int64_t samples = 0;
      for (int replay = 0; replay < 20; ++replay) {
        for (std::size_t i = 1; i < steps.size(); ++i) {
          source.Renegotiate(steps[i].value,
                             replay * setup.profile.duration_seconds() +
                                 steps[i].start * setup.profile.slot_seconds);
          const double drift = std::abs(source.DriftBps());
          drift_sum += drift;
          drift_max = std::max(drift_max, drift);
          ++samples;
        }
      }
      bench::PrintRow({loss, static_cast<double>(resync_every),
                       drift_sum / static_cast<double>(samples) / 1e3,
                       drift_max / 1e3,
                       static_cast<double>(source.stats().resyncs_sent)});
    }
  }
  return 0;
}
