// Ablation: GOP-aware vs plain AR(1) causal heuristic (the improvement
// the paper suggests as future work in Sec. IV-B). Both heuristics sweep
// their granularity Delta; the output is the same (interval, efficiency)
// tradeoff curve as Fig. 2, with the OPT curve's endpoint as reference.
#include <vector>

#include "experiment_lib.h"
#include "core/gop_heuristic.h"
#include "core/online_heuristic.h"
#include "core/schedule.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 28800);
  const auto& bits = movie.frame_bits();
  const double mean_per_slot = movie.mean_rate() / movie.fps();

  bench::PrintPreamble(
      "ablation_gop_heuristic",
      {"GOP-aware heuristic vs plain AR(1) (paper's suggested "
       "improvement): efficiency vs renegotiation interval",
       "curve 0 = plain AR(1), curve 1 = GOP-aware; both sweep Delta "
       "(kb/s); B_l = 10 kb, B_h = 150 kb",
       "expected: curve 1 sits up-right of curve 0 (same efficiency at "
       "longer intervals)"},
      {"curve", "delta_kbps", "interval_s", "efficiency", "renegs"});

  for (double delta_kbps : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    const double delta = delta_kbps * kKilobit / movie.fps();
    {
      core::HeuristicOptions h;
      h.low_threshold_bits = 10 * kKilobit;
      h.high_threshold_bits = 150 * kKilobit;
      h.time_constant_slots = 5;
      h.granularity_bits_per_slot = delta;
      h.initial_rate_bits_per_slot = mean_per_slot;
      const PiecewiseConstant schedule =
          core::ComputeHeuristicSchedule(bits, h);
      const core::ScheduleMetrics m = core::EvaluateSchedule(
          bits, schedule, 1e15, movie.slot_seconds(), {});
      bench::PrintRow({0, delta_kbps, m.mean_interval_seconds,
                       mean_per_slot / schedule.Mean(),
                       static_cast<double>(m.renegotiations)});
    }
    {
      core::GopHeuristicOptions h;
      h.gop_pattern = "IBBPBBPBBPBB";
      h.low_threshold_bits = 10 * kKilobit;
      h.high_threshold_bits = 150 * kKilobit;
      h.time_constant_gops = 2;
      h.flush_slots = 5;
      h.granularity_bits_per_slot = delta;
      h.initial_rate_bits_per_slot = mean_per_slot;
      const PiecewiseConstant schedule =
          core::ComputeGopHeuristicSchedule(bits, h);
      const core::ScheduleMetrics m = core::EvaluateSchedule(
          bits, schedule, 1e15, movie.slot_seconds(), {});
      bench::PrintRow({1, delta_kbps, m.mean_interval_seconds,
                       mean_per_slot / schedule.Mean(),
                       static_cast<double>(m.renegotiations)});
    }
  }
  return 0;
}
