// Google-benchmark microbenchmarks for the observability layer: what one
// counter add, span record, time-series sample, or flight-ring write
// costs on the hot path, and what the fluid-queue step pays end to end
// when a recorder is attached. The macro-level companion is the obs=0/1
// pair in macro_capacity, gated by tools/check_obs_overhead.py.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "obs/log_histogram.h"
#include "obs/recorder.h"
#include "sim/fluid_queue.h"
#include "util/rng.h"
#include "util/units.h"

namespace {

using namespace rcbr;

// Baseline: the queue step with no recorder — what every obs=0 run pays.
void BM_FluidQueueStepUntracked(benchmark::State& state) {
  sim::SlottedQueue queue(300 * kKilobit);
  Rng rng(1);
  std::vector<double> arrivals(4096);
  for (double& a : arrivals) a = rng.Uniform(0.0, 30000.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.Step(arrivals[i & 4095], 16000.0));
    ++i;
  }
}
BENCHMARK(BM_FluidQueueStepUntracked);

// The same step with counters + events + flight ring attached (no
// time-series sampler): the per-slot cost is one resolved-handle branch
// plus event emission on overflow slots.
void BM_FluidQueueStepTracked(benchmark::State& state) {
  obs::RecorderOptions options;
  options.event_capacity = 4096;
  options.flight_capacity = 256;
  obs::Recorder recorder(options);
  sim::SlottedQueue queue(300 * kKilobit, &recorder);
  Rng rng(1);
  std::vector<double> arrivals(4096);
  for (double& a : arrivals) a = rng.Uniform(0.0, 30000.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.Step(arrivals[i & 4095], 16000.0));
    ++i;
  }
}
BENCHMARK(BM_FluidQueueStepTracked);

// Full telemetry: the step additionally feeds the per-queue occupancy
// series every slot — the worst-case per-slot instrumentation.
void BM_FluidQueueStepTrackedTs(benchmark::State& state) {
  obs::RecorderOptions options;
  options.event_capacity = 4096;
  options.flight_capacity = 256;
  options.ts_window_s = 4096;  // slot-indexed time axis; bounded windows
  obs::Recorder recorder(options);
  sim::SlottedQueue queue(300 * kKilobit, &recorder);
  Rng rng(1);
  std::vector<double> arrivals(4096);
  for (double& a : arrivals) a = rng.Uniform(0.0, 30000.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.Step(arrivals[i & 4095], 16000.0));
    ++i;
  }
}
BENCHMARK(BM_FluidQueueStepTrackedTs);

// Resolve-once counter add — the pattern hot loops are expected to use.
void BM_CounterResolvedAdd(benchmark::State& state) {
  obs::Recorder recorder;
  obs::Counter* counter = obs::FindCounter(&recorder, "bench.counter");
  for (auto _ : state) {
    if (counter != nullptr) counter->Add();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_CounterResolvedAdd);

// Name-lookup counter add — what Count() costs when called per event;
// the gap to BM_CounterResolvedAdd is the map lookup + registry lock.
void BM_CounterLookupAdd(benchmark::State& state) {
  obs::Recorder recorder;
  for (auto _ : state) {
    obs::Count(&recorder, "bench.counter");
  }
}
BENCHMARK(BM_CounterLookupAdd);

// One log-bucketed histogram record: frexp + map upsert on a hot bucket.
void BM_LogHistogramRecord(benchmark::State& state) {
  obs::LogHistogram histogram;
  Rng rng(2);
  std::vector<double> values(4096);
  for (double& v : values) v = rng.Uniform(1e-4, 10.0);
  std::size_t i = 0;
  for (auto _ : state) {
    histogram.Record(values[i & 4095]);
    ++i;
  }
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_LogHistogramRecord);

// Span record through a resolved handle at sampling 1 and 16; at 16 most
// calls are one modulo + increment.
void BM_SpanRecordSampled(benchmark::State& state) {
  obs::RecorderOptions options;
  options.span_sample = state.range(0);
  obs::Recorder recorder(options);
  obs::SpanHistogram* span = obs::FindSpan(&recorder, "bench.span");
  Rng rng(3);
  std::vector<double> values(4096);
  for (double& v : values) v = rng.Uniform(1e-4, 10.0);
  std::size_t i = 0;
  for (auto _ : state) {
    if (span != nullptr) span->Record(values[i & 4095]);
    ++i;
  }
}
BENCHMARK(BM_SpanRecordSampled)->Arg(1)->Arg(16);

// Time-series sample folding into the current window (the per-slot case).
void BM_TimeSeriesSample(benchmark::State& state) {
  obs::TimeSeries series(4096.0);
  Rng rng(4);
  std::vector<double> values(4096);
  for (double& v : values) v = rng.Uniform(0.0, 1e6);
  std::size_t i = 0;
  for (auto _ : state) {
    series.Sample(static_cast<double>(i), values[i & 4095]);
    ++i;
  }
}
BENCHMARK(BM_TimeSeriesSample);

// Flight-ring write: overwrite one slot of the fixed ring.
void BM_FlightRecorderRecord(benchmark::State& state) {
  obs::FlightRecorder flight(256);
  std::uint64_t i = 0;
  for (auto _ : state) {
    flight.Record({static_cast<double>(i), obs::EventKind::kRenegGrant, i});
    ++i;
  }
}
BENCHMARK(BM_FlightRecorderRecord);

}  // namespace
