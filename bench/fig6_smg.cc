// Fig. 6: statistical multiplexing gain — the capacity needed per stream
// c(N) for a 1e-6 bit-loss probability as a function of the number of
// multiplexed streams N, for the three scenarios of Fig. 3:
//   (a) static CBR (flat at the trace's equivalent bandwidth e_B),
//   (b) unrestricted sharing (N*B shared buffer),
//   (c) RCBR (per-source buffer B, bufferless mux, DP schedules).
// Paper shape: (b) lowest, (c) slightly above (b), both approaching
// ~(1/bandwidth-efficiency)*mean as N grows; (a) ~4x mean regardless; at
// N ~ 100, RCBR needs < 1/3 of static CBR.
#include <algorithm>
#include <string>
#include <vector>

#include "core/baselines.h"
#include "experiment_lib.h"
#include "sim/min_rate.h"
#include "sim/scenarios.h"
#include "util/rng.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 14400);  // 10 min
  const auto& bits = movie.frame_bits();
  const double buffer = 300 * kKilobit;
  const double mean_per_slot = movie.mean_rate() / movie.fps();
  const double loss_target = 1e-6;

  // Scenario (a): the equivalent bandwidth e_B of one stream.
  const double cbr_rate = core::MinRateForLoss(bits, buffer, loss_target,
                                               1e-3);

  // RCBR schedules: the offline DP at 64 kb/s granularity (Sec. V-B).
  const core::DpOptions dp_options = bench::PaperDpOptions(3000.0);
  const core::DpResult dp = core::ComputeOptimalSchedule(bits, dp_options);
  const double efficiency = mean_per_slot / dp.schedule.Mean();

  runtime::SweepSpec spec;
  spec.name = "fig6_smg";
  spec.notes = {
      "Fig. 6: capacity per stream (normalized to the stream mean) vs N "
      "at 1e-6 loss",
      "cbr = scenario (a), shared = scenario (b), rcbr = scenario (c)",
      "rcbr schedules: DP, 64 kb/s granularity, mean interval " +
          std::to_string(dp.schedule.length() /
                         (dp.schedule.change_count() + 1) /
                         movie.fps()) +
          " s, efficiency " + std::to_string(efficiency)};
  spec.parameters = {"N"};
  spec.metrics = {"cbr", "shared", "rcbr"};
  for (int n : args.quick ? std::vector<int>{1, 4, 16}
                          : std::vector<int>{1, 2, 4, 8, 16, 32, 64}) {
    spec.points.push_back({static_cast<double>(n)});
  }

  sim::MinRateOptions search;
  search.target = loss_target;
  search.relative_precision = 0.2;
  search.min_replications = 4;
  search.max_replications = args.quick ? 8 : 24;
  search.rate_tolerance = 0.02;

  runtime::RunExperiment(
      spec,
      [&](const runtime::SweepContext& ctx) {
        const int n = static_cast<int>(ctx.parameters[0]);
        // One replication: draw N random phases, build arrivals (and
        // aligned schedule rotations for scenario c). Replication `rep`
        // draws from substream rep of the point's stream.
        auto make_shifts = [&](std::uint64_t rep) {
          Rng rng = ctx.MakeRng(rep);
          std::vector<std::int64_t> shifts(static_cast<std::size_t>(n));
          for (auto& s : shifts) {
            s = rng.UniformInt(0, movie.frame_count() - 1);
          }
          return shifts;
        };

        const auto shared_sample = [&](double c, std::uint64_t rep) {
          const auto shifts = make_shifts(rep);
          std::vector<std::vector<double>> arrivals;
          arrivals.reserve(shifts.size());
          for (std::int64_t s : shifts) {
            arrivals.push_back(movie.CircularShift(s).frame_bits());
          }
          return sim::SharedBufferScenario(arrivals, c * n, buffer * n)
              .loss_fraction();
        };
        const auto rcbr_sample = [&](double c, std::uint64_t rep) {
          const auto shifts = make_shifts(rep);
          std::vector<std::vector<double>> arrivals;
          std::vector<PiecewiseConstant> schedules;
          for (std::int64_t s : shifts) {
            arrivals.push_back(movie.CircularShift(s).frame_bits());
            schedules.push_back(dp.schedule.Rotate(s));
          }
          return sim::RcbrScenario(arrivals, schedules, c * n, buffer)
              .loss_fraction();
        };

        const double c_shared = sim::FindMinRate(
            shared_sample, 0.5 * mean_per_slot, 1.1 * cbr_rate, search);
        // For RCBR the peak requested rate is always feasible.
        const double rcbr_hi = std::max(dp.schedule.MaxValue(), cbr_rate);
        const double c_rcbr = sim::FindMinRate(
            rcbr_sample, 0.5 * mean_per_slot, rcbr_hi, search);

        return std::vector<double>{cbr_rate / mean_per_slot,
                                   c_shared / mean_per_slot,
                                   c_rcbr / mean_per_slot};
      },
      args);
  return 0;
}
