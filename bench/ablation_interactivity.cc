// Ablation: user interactivity vs a-priori descriptors (Sec. VI: "user
// interactivity (fast forward, pause, etc.) reduces the accuracy of this
// descriptor"). Calls follow interactively distorted schedules; the
// perfect-knowledge scheme still admits using the *undistorted* movie
// descriptor (the best an a-priori scheme can know), while the memory
// MBAC learns the true behaviour. The more the viewers skim, the further
// the a-priori scheme's achieved failure drifts from its target.
#include <memory>
#include <vector>

#include "admission/policies.h"
#include "experiment_lib.h"
#include "trace/interactivity.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 14400);
  const bench::MbacSetup setup(movie);
  const double target = bench::kMbacTargetFailure;
  const double capacity = 24 * setup.call_mean_bps;
  const double duration = setup.profile.duration_seconds();

  bench::PrintPreamble(
      "ablation_interactivity",
      {"a-priori descriptor vs MBAC under interactive viewers (Sec. VI)",
       "ff_intensity scales the viewers' fast-forward rate; profiles are "
       "interactively distorted, the a-priori descriptor is not",
       "columns: scheme (0 = a-priori perfect-knowledge, 1 = memory "
       "MBAC), ff intensity, failure/target, utilization"},
      {"scheme", "ff_intensity", "target_ratio", "utilization"});

  for (double intensity : {0.0, 1.0, 3.0}) {
    // Build a pool of interactively distorted call profiles.
    trace::InteractivityModel viewer;
    viewer.pause_rate_per_s = intensity / 600.0;
    viewer.pause_mean_seconds = 30.0;
    viewer.ff_rate_per_s = intensity / 300.0;
    viewer.ff_mean_content_seconds = 60.0;
    std::vector<sim::CallProfile> pool;
    Rng pool_rng(args.seed + 47);
    if (intensity == 0.0) {
      pool.push_back(setup.profile);
    } else {
      for (int i = 0; i < 16; ++i) {
        pool.push_back({trace::ApplyInteractivityToSchedule(
                            setup.profile.rates_bps, viewer,
                            setup.profile.slot_seconds, 64e3, 2.0,
                            pool_rng),
                        setup.profile.slot_seconds});
      }
    }

    sim::CallSimOptions sim_options;
    sim_options.capacity_bps = capacity;
    sim_options.arrival_rate_per_s =
        0.9 * capacity / (setup.call_mean_bps * duration);
    sim_options.warmup_seconds = 3 * duration;
    sim_options.sample_intervals = args.quick ? 4 : 30;
    sim_options.interval_seconds = duration;

    {
      admission::PerfectKnowledgePolicy a_priori(setup.descriptor, capacity,
                                                 target);
      Rng rng(args.seed + 53);
      const sim::CallSimResult r =
          sim::RunCallSim(pool, a_priori, sim_options, rng);
      bench::PrintRow({0, intensity,
                       r.failure_probability.mean() / target,
                       r.utilization.mean()});
    }
    {
      admission::PolicyOptions options;
      options.target_failure_probability = target;
      options.rate_grid_bps = setup.rate_grid_bps;
      admission::MemoryPolicy memory(options);
      Rng rng(args.seed + 53);
      const sim::CallSimResult r =
          sim::RunCallSim(pool, memory, sim_options, rng);
      bench::PrintRow({1, intensity,
                       r.failure_probability.mean() / target,
                       r.utilization.mean()});
    }
  }
  return 0;
}
