// Robustness experiment: deterministic fault injection against the
// retry/backoff signaling transport and the source's graceful-degradation
// policy (Sec. III-B taken to its failure modes).
//
// A 3-hop RCBR source follows a two-rate schedule while a seeded
// FaultPlan throws RM-cell loss bursts (total signaling outages) and
// port-controller crashes at it. During an outage at an upward schedule
// edge the source is stuck below its arrival rate; without the peak-rate
// fallback the end-system buffer overflows, with it the source escalates
// before the overflow and recovers once the backlog drains. Crashed
// controllers are either repaired immediately by an absolute-rate resync
// (crash_resync=1) or left to drift (crash_resync=0), which the residual
// drift column exposes. Faults are inputs to the determinism contract:
// the plan comes from its own per-point stream, so every row is
// reproducible at any --threads count.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/rcbr_source.h"
#include "experiment_lib.h"
#include "sim/fault/fault_injector.h"
#include "sim/fault/fault_plan.h"
#include "util/rng.h"

namespace {

double Percentile(std::vector<double> values, double fraction) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = fraction * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - std::floor(rank);
  return values[lo] + frac * (values[hi] - values[lo]);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);

  // Slot-level scenario: a square-wave source (low 3.5, high 9.5 bits per
  // 0.1 s slot) whose schedule tracks it with headroom (4 low, 10 high).
  const double slot_seconds = 0.1;
  const std::int64_t slots = args.quick ? 1500 : 6000;
  const std::int64_t period = 100;  // 60 low slots, then 40 high slots
  std::vector<rcbr::Step> steps;
  for (std::int64_t k = 0; k * period < slots; ++k) {
    steps.push_back({k * period, 4.0});
    steps.push_back({k * period + 60, 10.0});
  }
  const PiecewiseConstant schedule(steps, slots);

  runtime::SweepSpec spec;
  spec.name = "fig_fault_sweep";
  spec.notes = {
      "fault injection vs retry/resync/degradation (Sec. III-B failure "
      "modes)",
      "seeded RM-loss bursts stall renegotiation at upward schedule "
      "edges; controller crashes wipe per-VCI state",
      "fallback=1 escalates to the peak rate before the buffer "
      "overflows; crash_resync=1 repairs crashed ports with an "
      "absolute-rate resync (drift column)"};
  spec.parameters = {"faults_per_min", "fallback", "crash_resync"};
  spec.metrics = {"overflow_prob", "max_drift_bps", "p99_latency_ms",
                  "timeouts",      "retries",       "fallbacks"};
  const std::vector<double> fault_rates =
      args.quick ? std::vector<double>{0.0, 12.0}
                 : std::vector<double>{0.0, 6.0, 12.0};
  for (double per_min : fault_rates) {
    if (per_min == 0.0) {
      spec.points.push_back({0.0, 1.0, 1.0});  // fault-free reference
      continue;
    }
    for (double fallback : {0.0, 1.0}) {
      for (double crash_resync : {0.0, 1.0}) {
        spec.points.push_back({per_min, fallback, crash_resync});
      }
    }
  }

  runtime::RunExperiment(
      spec,
      [&](const runtime::SweepContext& ctx) {
        const double faults_per_min = ctx.parameters[0];
        const bool fallback = ctx.parameters[1] != 0.0;
        const bool crash_resync = ctx.parameters[2] != 0.0;

        // The fault schedule is keyed by the fault rate alone, so the
        // fallback / crash_resync variants of one rate face the *same*
        // faults and their columns are directly comparable. The jitter
        // and loss draws of the run use the point's primary stream.
        sim::fault::FaultPlanOptions fault_options;
        fault_options.horizon_s = static_cast<double>(slots) * slot_seconds;
        fault_options.num_links = 3;
        fault_options.burst_rate_per_s = faults_per_min / 60.0;
        fault_options.burst_duration_s = 3.0;       // 30 slots of outage
        fault_options.burst_loss_probability = 1.0;
        fault_options.crash_rate_per_s = faults_per_min / 240.0;
        Rng plan_rng = Rng::Stream(
            args.seed + 7700, static_cast<std::uint64_t>(faults_per_min));
        const sim::fault::FaultPlan plan =
            sim::fault::FaultPlan::Generate(fault_options, plan_rng);
        sim::fault::FaultTimeline timeline(&plan, fault_options.num_links,
                                           ctx.recorder);

        std::vector<std::unique_ptr<signaling::PortController>> ports;
        for (std::size_t l = 0; l < fault_options.num_links; ++l) {
          ports.push_back(std::make_unique<signaling::PortController>(
              200.0, true, ctx.recorder));
        }
        std::vector<signaling::PortController*> raw;
        for (auto& p : ports) raw.push_back(p.get());
        signaling::SignalingPath path(std::move(raw), 0.001);

        // The buffer absorbs one full worst-case outage (a 30-slot burst
        // spanning an upward edge fills ~171 bits); overflow happens only
        // when backlog accumulates ACROSS bursts — which is exactly what
        // the peak-rate fallback prevents by draining the backlog before
        // the next outage, while the no-fallback source crawls down at
        // the schedule's ~0.3 bits/slot of headroom.
        core::RcbrSource source = core::RcbrSource::Offline(
            1, schedule, slot_seconds, /*buffer_bits=*/250.0, &path,
            ctx.recorder);
        Rng rng = ctx.MakeRng();
        signaling::RetryOptions retry;
        retry.timeout_s = 0.02;
        retry.max_retries = 2;
        retry.backoff_base_s = 0.01;
        signaling::LossyChannelOptions channel;
        channel.conditions = &timeline.conditions();
        core::DegradationOptions degradation;
        degradation.enabled = fallback;
        degradation.failures_to_degrade = 2;
        degradation.hold_slots = 4;
        degradation.fallback_occupancy_fraction = 0.4;
        degradation.recover_occupancy_fraction = 0.1;
        degradation.fallback_rate_bits_per_slot = 12.0;  // the peak rate
        source.EnableRobustSignaling(retry, channel, &rng, degradation);
        if (!source.Connect()) {
          return std::vector<double>{1.0, 0.0, 0.0, 0.0, 0.0, 0.0};
        }

        sim::fault::FaultCallbacks callbacks;
        callbacks.on_controller_crash = [&](std::size_t link, double) {
          ports[link]->CrashRestart();
          if (crash_resync) source.ResyncSignaling();
        };
        timeline.set_callbacks(std::move(callbacks));

        Rng workload_rng(911);  // identical arrivals at every point
        std::vector<double> latencies;
        double max_drift = 0;
        for (std::int64_t t = 0; t < slots; ++t) {
          timeline.AdvanceTo(static_cast<double>(t) * slot_seconds);
          const double base = (t % period) < 60 ? 3.5 : 9.5;
          const core::RcbrSource::SlotResult result =
              source.Step(base + workload_rng.Uniform(0.0, 0.4));
          if (result.renegotiated) {
            latencies.push_back(result.renegotiation_latency_s);
          }
          max_drift =
              std::max(max_drift, source.transport()->MaxAbsDriftBps());
        }

        const core::SourceStats& stats = source.stats();
        const signaling::RetryStats& transport = source.transport()->stats();
        return std::vector<double>{
            stats.loss_fraction(),
            max_drift,
            Percentile(latencies, 0.99) * 1e3,
            static_cast<double>(transport.timeouts),
            static_cast<double>(transport.retries),
            static_cast<double>(stats.fallback_entries)};
      },
      args);
  return 0;
}
