// Figs. 9/10 (Sec. VI, memory-based scheme): renegotiation failure
// probability and normalized utilization of the memory-based MBAC, which
// accumulates the entire bandwidth history of every call in the system.
// Paper shape: the memory scheme restores robustness — failure near the
// 1e-3 target even on small links, with utilization close to the
// perfect-knowledge scheme.
#include <vector>

#include "admission/policies.h"
#include "experiment_lib.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 14400);
  const bench::MbacSetup setup(movie);

  runtime::SweepSpec spec;
  spec.name = "fig9_10_memory_mbac";
  spec.notes = {
      "Figs. 9/10: memory-based MBAC failure probability and utilization "
      "normalized to perfect knowledge",
      "paper shape: near-target failure probability and normalized "
      "utilization ~1, unlike the memoryless scheme of Figs. 7/8"};
  spec.parameters = {"capacity_x", "load"};
  spec.metrics = {"failure_prob", "target_ratio", "util_normalized"};
  spec.points = runtime::GridPoints(
      {bench::MbacCapacities(args.quick), bench::MbacLoads(args.quick)});

  runtime::RunExperiment(
      spec,
      [&](const runtime::SweepContext& ctx) {
        const double capacity = ctx.parameters[0];
        const double load = ctx.parameters[1];
        admission::PolicyOptions options;
        options.target_failure_probability = bench::kMbacTargetFailure;
        options.rate_grid_bps = setup.rate_grid_bps;
        options.recorder = ctx.recorder;
        admission::MemoryPolicy policy(options);
        const bench::MbacPoint memory = bench::RunMbacPoint(
            setup, policy, capacity, load, ctx.seed, args.quick,
            ctx.recorder);
        const bench::MbacPoint perfect = bench::RunPerfectPoint(
            setup, capacity, load, ctx.seed, args.quick);
        const double normalized =
            perfect.utilization > 0
                ? memory.utilization / perfect.utilization
                : 0.0;
        return std::vector<double>{
            memory.failure_probability,
            memory.failure_probability / bench::kMbacTargetFailure,
            normalized};
      },
      args);
  return 0;
}
