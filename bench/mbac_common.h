// Shared setup for the MBAC experiments (Figs. 7-10): calls are randomly
// shifted copies of the trace's RCBR schedule, arriving as a Poisson
// process on one link; an admission policy guards a 1e-3 renegotiation
// failure target.
#pragma once

#include <memory>
#include <vector>

#include "admission/descriptor.h"
#include "admission/policies.h"
#include "bench_common.h"
#include "core/dp_scheduler.h"
#include "sim/call_sim.h"
#include "trace/frame_trace.h"
#include "util/rng.h"

namespace rcbr::bench {

inline constexpr double kMbacTargetFailure = 1e-4;

struct MbacSetup {
  sim::CallProfile profile;                 // the RCBR schedule in bits/s
  ldev::DiscreteDistribution descriptor;    // true marginal distribution
  std::vector<double> rate_grid_bps;        // estimator grid
  double call_mean_bps = 0;

  explicit MbacSetup(const trace::FrameTrace& movie)
      : profile{PiecewiseConstant::Constant(1.0, 1), 1.0},
        descriptor({0.0}, {1.0}) {
    const core::DpOptions options = PaperDpOptions(3000.0);
    const core::DpResult dp =
        core::ComputeOptimalSchedule(movie.frame_bits(), options);
    profile.rates_bps = ToBps(dp.schedule, movie.fps());
    profile.slot_seconds = movie.slot_seconds();
    descriptor = admission::DescriptorFromSchedule(profile.rates_bps);
    for (double level : options.rate_levels) {
      rate_grid_bps.push_back(level * movie.fps());
    }
    call_mean_bps = profile.rates_bps.Mean();
  }
};

struct MbacPoint {
  double failure_probability = 0;
  double utilization = 0;
  double blocking = 0;
};

/// Runs one (capacity, load) point with the given policy.
inline MbacPoint RunMbacPoint(const MbacSetup& setup,
                              sim::AdmissionPolicy& policy,
                              double capacity_multiple, double offered_load,
                              std::uint64_t seed, bool quick) {
  const double duration = setup.profile.duration_seconds();
  sim::CallSimOptions options;
  options.capacity_bps = capacity_multiple * setup.call_mean_bps;
  // Normalized offered load: lambda * mean_holding * mean_rate / C.
  options.arrival_rate_per_s =
      offered_load * options.capacity_bps / (setup.call_mean_bps * duration);
  options.warmup_seconds = 3 * duration;
  options.sample_intervals = quick ? 4 : 40;
  options.interval_seconds = duration;
  Rng rng(seed);
  const sim::CallSimResult r =
      sim::RunCallSim({setup.profile}, policy, options, rng);
  return {r.failure_probability.mean(), r.utilization.mean(),
          r.blocking_probability()};
}

/// Utilization of the perfect-knowledge Chernoff scheme at the same point
/// (the paper's normalization baseline).
inline MbacPoint RunPerfectPoint(const MbacSetup& setup,
                                 double capacity_multiple,
                                 double offered_load, std::uint64_t seed,
                                 bool quick) {
  admission::PerfectKnowledgePolicy policy(
      setup.descriptor, capacity_multiple * setup.call_mean_bps,
      kMbacTargetFailure);
  return RunMbacPoint(setup, policy, capacity_multiple, offered_load, seed,
                      quick);
}

inline std::vector<double> MbacCapacities(bool quick) {
  return quick ? std::vector<double>{16, 64}
               : std::vector<double>{16, 32, 64, 128};
}

inline std::vector<double> MbacLoads(bool quick) {
  return quick ? std::vector<double>{0.6, 1.0}
               : std::vector<double>{0.4, 0.6, 0.8, 1.0};
}

}  // namespace rcbr::bench
