// Sec. III-C scaling experiment: renegotiation failure probability vs
// path length, and the effect of call-level load balancing over alternate
// routes — the paper's stated open research question, answered on the
// multi-hop simulator.
//
// Part 0: a tagged RCBR stream crosses h independently loaded links
// (h = 1, 2, 4, 8); every link also carries its own single-hop background
// traffic. Failure grows with h (~ 1 - (1-p)^h).
// Part 1: the same offered load over one 4-hop path vs two alternate
// 4-hop paths with least-loaded call placement.
#include <vector>

#include "experiment_lib.h"
#include "sim/network.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 14400);
  const bench::MbacSetup setup(movie);
  const double duration = setup.profile.duration_seconds();
  const double link_capacity = 24 * setup.call_mean_bps;
  const double per_link_load = 0.85;
  const double lambda_bg =
      per_link_load * link_capacity / (setup.call_mean_bps * duration);

  runtime::SweepSpec spec;
  spec.name = "fig_hops_scaling";
  spec.notes = {
      "Sec. III-C: failure probability vs hop count; load balancing",
      "part 0: tagged class over h links, each with background load "
      "0.85; columns: hops, failure, blocking",
      "part 1: one fixed 4-hop path (row x=0) vs two alternate paths "
      "with least-loaded placement (x=1) at equal total load"};
  spec.parameters = {"part", "x"};
  spec.metrics = {"failure_prob", "blocking"};
  for (int hops : {1, 2, 4, 8}) {
    spec.points.push_back({0, static_cast<double>(hops)});
  }
  for (int balanced = 0; balanced <= 1; ++balanced) {
    spec.points.push_back({1, static_cast<double>(balanced)});
  }

  runtime::RunExperiment(
      spec,
      [&](const runtime::SweepContext& ctx) {
        sim::NetworkSimOptions options;
        options.warmup_seconds = 3 * duration;
        options.sample_intervals = args.quick ? 4 : 20;
        options.interval_seconds = duration;
        options.recorder = ctx.recorder;
        std::size_t tagged_class = 0;
        if (ctx.parameters[0] == 0) {
          // Part 0: failure vs hop count.
          const int hops = static_cast<int>(ctx.parameters[1]);
          options.link_capacities_bps.assign(static_cast<std::size_t>(hops),
                                             link_capacity);
          for (int l = 0; l < hops; ++l) {
            options.classes.push_back(
                {{{static_cast<std::size_t>(l)}}, lambda_bg, 0});
          }
          std::vector<std::size_t> route;
          for (int l = 0; l < hops; ++l) {
            route.push_back(static_cast<std::size_t>(l));
          }
          options.classes.push_back({{route}, lambda_bg / 10.0, 0});
          tagged_class = options.classes.size() - 1;
        } else {
          // Part 1: load balancing over two alternate 4-hop paths.
          options.link_capacities_bps.assign(8, link_capacity);
          const std::vector<std::size_t> path_a = {0, 1, 2, 3};
          const std::vector<std::size_t> path_b = {4, 5, 6, 7};
          // The tagged class may use both paths; its load alone drives the
          // network (no background), totaling 1.7x one path's
          // capacity-load.
          options.classes.push_back({{path_a, path_b}, 1.7 * lambda_bg, 0});
          options.least_loaded_routing = ctx.parameters[1] == 1;
        }
        Rng rng = ctx.MakeRng();
        const sim::NetworkSimResult r =
            RunNetworkSim({setup.profile}, options, rng);
        const auto& tagged = r.per_class[tagged_class];
        return std::vector<double>{tagged.overall_failure_probability(),
                                   tagged.blocking_probability()};
      },
      args);
  return 0;
}
