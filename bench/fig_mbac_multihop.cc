// Extension experiment: the memory-based MBAC of Figs. 9/10 on a
// multi-hop topology with an imperfect signaling plane — the composition
// the paper treats separately in Sec. III-B (lossy RM cells), Sec. III-C
// (multi-hop renegotiation) and Sec. VI (measurement-based admission).
//
// A tagged class of RCBR calls crosses 4 links, each also loaded by its
// own single-hop background traffic; admission at the bottleneck uses the
// memory-based Chernoff estimator. Renegotiations ride a lossy RM-cell
// channel: each hop loses a cell with probability `loss`, and a lost
// rollback cell leaves that hop's reservation drifted until the periodic
// absolute-rate resync repairs it. Columns show how the failure target
// degrades with loss and how cheap resync wins the robustness back.
#include <vector>

#include "admission/policies.h"
#include "experiment_lib.h"
#include "sim/engine/simulation.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 14400);
  const bench::MbacSetup setup(movie);
  const double duration = setup.profile.duration_seconds();
  const std::size_t hops = 4;
  const double link_capacity = 24 * setup.call_mean_bps;
  const double per_link_load = 0.85;
  const double lambda_bg =
      per_link_load * link_capacity / (setup.call_mean_bps * duration);

  runtime::SweepSpec spec;
  spec.name = "fig_mbac_multihop";
  spec.notes = {
      "memory-based MBAC + 4-hop signaling + lossy RM-cell channel "
      "(Secs. III-B, III-C, VI composed on the unified engine)",
      "tagged class crosses 4 links with background load 0.85 each; "
      "admission at the bottleneck uses the memory-based Chernoff "
      "estimator",
      "resync 0 = never: lost rollback cells let reservations drift; a "
      "short resync period repairs the ports between renegotiations"};
  spec.parameters = {"loss_prob", "resync_every"};
  spec.metrics = {"failure_prob", "blocking", "mean_util"};
  for (double loss : {0.0, 0.01, 0.05}) {
    for (double resync : {0.0, 8.0, 2.0}) {
      if (loss == 0.0 && resync != 0.0) continue;  // nothing to repair
      spec.points.push_back({loss, resync});
    }
  }

  runtime::RunExperiment(
      spec,
      [&](const runtime::SweepContext& ctx) {
        admission::PolicyOptions mbac;
        mbac.target_failure_probability = bench::kMbacTargetFailure;
        mbac.rate_grid_bps = setup.rate_grid_bps;
        mbac.recorder = ctx.recorder;
        admission::MemoryPolicy policy(mbac);

        sim::engine::SimulationOptions options;
        options.link_capacities_bps.assign(hops, link_capacity);
        for (std::size_t l = 0; l < hops; ++l) {
          sim::engine::TrafficClass bg;
          bg.candidate_routes = {{l}};
          bg.arrival_rate_per_s = lambda_bg;
          options.classes.push_back(bg);
        }
        sim::engine::TrafficClass tagged;
        std::vector<std::size_t> route;
        for (std::size_t l = 0; l < hops; ++l) route.push_back(l);
        tagged.candidate_routes = {route};
        tagged.arrival_rate_per_s = lambda_bg / 10.0;
        options.classes.push_back(tagged);

        options.warmup_seconds = 3 * duration;
        options.sample_intervals = args.quick ? 4 : 20;
        options.interval_seconds = duration;
        options.policy = &policy;
        options.recorder = ctx.recorder;
        options.signaling_recorder = ctx.recorder;
        options.metric_prefix = "netsim";
        options.per_hop_delay_s = 0.001;
        options.track_connections = true;
        options.cell_loss_probability = ctx.parameters[0];
        options.resync_every_cells =
            static_cast<std::int64_t>(ctx.parameters[1]);

        Rng rng = ctx.MakeRng();
        const sim::engine::SimulationResult r =
            sim::engine::RunSimulation({setup.profile}, options, rng);
        const sim::engine::ClassTotals& t = r.per_class.back();
        const double failure =
            t.upward_attempts > 0
                ? static_cast<double>(t.failed_attempts) /
                      static_cast<double>(t.upward_attempts)
                : 0.0;
        const double blocking =
            t.offered_calls > 0
                ? static_cast<double>(t.blocked_calls) /
                      static_cast<double>(t.offered_calls)
                : 0.0;
        const double span =
            options.interval_seconds *
            static_cast<double>(options.sample_intervals);
        double util = 0;
        for (std::size_t l = 0; l < hops; ++l) {
          util += r.util_total[l] / (span * link_capacity);
        }
        return std::vector<double>{failure, blocking,
                                   util / static_cast<double>(hops)};
      },
      args);
  return 0;
}
