// Shared helpers for the experiment harnesses (one binary per figure or
// table of the paper; see DESIGN.md experiment index).
//
// Every harness accepts:
//   --frames=N   length of the synthetic Star Wars trace (default varies)
//   --seed=S     synthesizer seed (default 20260706)
//   --quick      shrink the workload for smoke runs
// and prints a self-describing table: `# experiment: ...` header lines
// followed by whitespace-separated columns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dp_scheduler.h"
#include "trace/frame_trace.h"
#include "util/piecewise.h"

namespace rcbr::bench {

struct Args {
  std::int64_t frames = 0;  // 0 = use the harness default
  std::uint64_t seed = 20260706;
  bool quick = false;
};

/// Parses --frames/--seed/--quick; ignores unknown flags.
Args ParseArgs(int argc, char** argv);

/// The shared synthetic Star Wars trace for this run.
trace::FrameTrace MakeTrace(const Args& args, std::int64_t default_frames);

/// The paper's Fig. 6 DP setup: 64 kb/s granularity up to `top_kbps`,
/// 300 kb buffer, and a renegotiation price yielding intervals of ~10 s.
core::DpOptions PaperDpOptions(double alpha = 3000.0,
                               double top_kbps = 2560.0);

/// Converts a bits-per-slot schedule to bits-per-second.
PiecewiseConstant ToBps(const PiecewiseConstant& schedule_bits_per_slot,
                        double fps);

/// Prints `# key: value` metadata lines and column headers.
void PrintPreamble(const std::string& experiment,
                   const std::vector<std::string>& notes,
                   const std::vector<std::string>& columns);

/// Prints one row of right-aligned columns.
void PrintRow(const std::vector<double>& values);

/// Wall-clock helper.
double NowSeconds();

}  // namespace rcbr::bench
