// Fig. 5: the (sigma, rho) curve of the video trace for 1e-6 loss — the
// minimum constant drain rate rho as a function of buffer size sigma.
// Anchors the paper's "300 kb with RCBR vs ~100 Mb non-renegotiated at
// ~1.05x the mean rate" comparison.
//
// Loss is measured in steady state: the trace is played once to warm the
// queue up (so an empty start cannot hide overflow) and the loss fraction
// is taken over a second playback. This also bounds rho below by the mean
// rate, as the infinite-horizon analysis requires.
#include <vector>

#include "experiment_lib.h"
#include "sim/fluid_queue.h"
#include "util/search.h"
#include "util/units.h"

namespace {

/// Steady-state loss fraction of the trace under (rate, buffer).
double SteadyStateLoss(const std::vector<double>& bits, double rate,
                       double buffer) {
  rcbr::sim::SlottedQueue queue(buffer);
  for (double a : bits) queue.Step(a, rate);  // warm-up pass
  const double warm_lost = queue.lost_bits();
  const double warm_arrived = queue.arrived_bits();
  for (double a : bits) queue.Step(a, rate);  // measured pass
  const double lost = queue.lost_bits() - warm_lost;
  const double arrived = queue.arrived_bits() - warm_arrived;
  return arrived > 0 ? lost / arrived : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 86400);  // 1 hour
  const auto& bits = movie.frame_bits();
  const double mean = movie.mean_rate();
  const double mean_per_slot = mean / movie.fps();
  const double peak_per_slot = movie.max_frame_bits();

  bench::PrintPreamble(
      "fig5_sigma_rho",
      {"Fig. 5: min CBR drain rate vs buffer size, steady-state bit loss "
       "<= 1e-6",
       "paper shape: steep drop at small buffers (fast scale), long "
       "plateau (slow scale), mean approached only at tens of Mb",
       "rho normalized to the trace mean rate is printed alongside"},
      {"sigma_kb", "rho_kbps", "rho_over_mean"});

  const std::vector<double> sigmas_kb = {10,    30,    100,   300,   1000,
                                         3000,  10000, 30000, 60000, 100000,
                                         150000};
  for (double sigma_kb : sigmas_kb) {
    const double sigma = sigma_kb * kKilobit;
    SearchOptions search;
    search.relative_tolerance = 1e-4;
    const double rho_per_slot = MinFeasible(
        mean_per_slot, peak_per_slot,
        [&](double rate) {
          return SteadyStateLoss(bits, rate, sigma) <= 1e-6;
        },
        search);
    const double rho_bps = rho_per_slot * movie.fps();
    bench::PrintRow({sigma_kb, rho_bps / kKbps, rho_bps / mean});
  }
  return 0;
}
