// Multi-resolution service (the rate-ladder contract): blocking
// probability and delivered utility of the ladder-aware memory MBAC,
// swept over offered load and ladder depth on one saturated link.
//
// Depth 1 IS the plain scalar Chernoff scheme — the depth-1 ladder is
// pinned byte-identical to the scalar contract — so each load's depth-1
// row is the baseline the deeper rows are measured against. Expected
// shape: under saturation the ladder turns hard blocks into downgraded
// admits, so blocking falls as the ladder deepens while delivered
// utility per second rises (more calls at lower resolution beat fewer
// calls at full resolution whenever the per-rung utilities are
// sublinear in rate). tools/check_downgrade_utility.py pins that shape
// against the --quick BENCH output.
#include <cstddef>
#include <vector>

#include "admission/policies.h"
#include "experiment_lib.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 14400);
  const bench::MbacSetup setup(movie);

  // Default contract: full ask, a 0.7 standard-definition rung and a 0.5
  // economy rung, with utilities sublinear in rate (half the rate keeps
  // 60% of the utility). --ladder-rungs / --ladder-utilities override.
  sim::RateLadder contract = bench::LadderFromArgs(args);
  if (contract.empty()) {
    contract = sim::RateLadder::FromScales({1.0, 0.7, 0.5}, {1.0, 0.8, 0.6});
  }

  // A small link under heavy offered load — the regime where scalar
  // admission has to block (Sec. VI uses the same normalized-load axis).
  constexpr double kCapacityMultiple = 16;
  const std::vector<double> loads =
      args.quick ? std::vector<double>{1.0, 1.5}
                 : std::vector<double>{0.8, 1.0, 1.2, 1.5, 2.0};
  std::vector<double> depths;
  for (std::size_t d = 1; d <= contract.depth(); ++d) {
    depths.push_back(static_cast<double>(d));
  }

  runtime::SweepSpec spec;
  spec.name = "fig_downgrade_ladder";
  spec.notes = {
      "multi-resolution ladder admission vs the plain scalar Chernoff "
      "MBAC on one saturated link (depth 1 = plain scheme)",
      "expected shape: blocking falls and delivered utility rises as the "
      "ladder deepens under saturation"};
  spec.parameters = {"load", "depth"};
  spec.metrics = {"blocking",      "downgraded_frac", "upgrades_per_call",
                  "utility_per_s", "failure_prob"};
  spec.points = runtime::GridPoints({loads, depths});

  runtime::RunExperiment(
      spec,
      [&](const runtime::SweepContext& ctx) {
        const double load = ctx.parameters[0];
        const auto depth = static_cast<std::size_t>(ctx.parameters[1]);
        const sim::RateLadder ladder(std::vector<sim::RateRung>(
            contract.rungs().begin(),
            contract.rungs().begin() + static_cast<std::ptrdiff_t>(depth)));
        admission::PolicyOptions options;
        options.target_failure_probability = bench::kMbacTargetFailure;
        options.rate_grid_bps = setup.rate_grid_bps;
        options.recorder = ctx.recorder;
        admission::MemoryPolicy policy(options);
        const bench::MbacPoint p =
            bench::RunMbacPoint(setup, policy, kCapacityMultiple, load,
                                ctx.seed, args.quick, ctx.recorder, ladder);
        const double calls = p.offered_calls > 0
                                 ? static_cast<double>(p.offered_calls)
                                 : 1.0;
        return std::vector<double>{
            p.blocking, static_cast<double>(p.downgraded_admits) / calls,
            static_cast<double>(p.upgrades) / calls, p.utility_per_s,
            p.failure_probability};
      },
      args);
  return 0;
}
