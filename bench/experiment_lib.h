// Shared setup for the experiment harnesses (one binary per figure or
// table of the paper; see DESIGN.md experiment index).
//
// The generic machinery — CLI flags, deterministic parallel sweeps, the
// stdout table and the BENCH_<name>.json emitters — lives in src/runtime;
// this header adds the paper-specific setup every harness shares: the
// synthetic Star Wars trace, the Fig. 6 DP configuration, and the MBAC
// call-level scenario of Figs. 7-10 (calls are randomly shifted copies of
// the trace's RCBR schedule, arriving as a Poisson process on one link,
// with an admission policy guarding a renegotiation-failure target).
#pragma once

#include <cstdint>
#include <vector>

#include "admission/descriptor.h"
#include "core/dp_scheduler.h"
#include "runtime/emit.h"
#include "runtime/experiment.h"
#include "sim/call_sim.h"
#include "trace/frame_trace.h"
#include "util/piecewise.h"

namespace rcbr::bench {

// The CLI surface and emitters are the runtime layer's; the aliases keep
// harness code terse and give the older harnesses their historical names.
using Args = runtime::ExperimentArgs;
using runtime::NowSeconds;
using runtime::PrintPreamble;
using runtime::PrintRow;

inline Args ParseArgs(int argc, char** argv) {
  return runtime::ParseExperimentArgsOrExit(argc, argv);
}

/// The shared synthetic Star Wars trace for this run.
trace::FrameTrace MakeTrace(const Args& args, std::int64_t default_frames);

/// The paper's Fig. 6 DP setup: 64 kb/s granularity up to `top_kbps`,
/// 300 kb buffer, and a renegotiation price yielding intervals of ~10 s.
core::DpOptions PaperDpOptions(double alpha = 3000.0,
                               double top_kbps = 2560.0);

/// Converts a bits-per-slot schedule to bits-per-second.
PiecewiseConstant ToBps(const PiecewiseConstant& schedule_bits_per_slot,
                        double fps);

inline constexpr double kMbacTargetFailure = 1e-4;

struct MbacSetup {
  sim::CallProfile profile;               // the RCBR schedule in bits/s
  ldev::DiscreteDistribution descriptor;  // true marginal distribution
  std::vector<double> rate_grid_bps;      // estimator grid
  double call_mean_bps = 0;

  explicit MbacSetup(const trace::FrameTrace& movie);
};

struct MbacPoint {
  double failure_probability = 0;
  double utilization = 0;
  double blocking = 0;
  /// Ladder outcomes (0 for the scalar/depth-1 contract).
  std::int64_t offered_calls = 0;
  std::int64_t downgraded_admits = 0;
  std::int64_t upgrades = 0;
  /// Mean delivered utility per second over the measurement window (0
  /// without a ladder — scalar runs skip utility accounting).
  double utility_per_s = 0;
};

/// Runs one (capacity, load) point with the given policy; `seed` is the
/// point's private stream (pass SweepContext::seed under RunSweep). The
/// optional recorder (pass SweepContext::recorder) collects call-level
/// events and counters. A non-empty `ladder` arms the multi-resolution
/// contract (the depth-1 ladder is pinned byte-identical to the scalar
/// default, apart from turning on utility accounting).
MbacPoint RunMbacPoint(const MbacSetup& setup, sim::AdmissionPolicy& policy,
                       double capacity_multiple, double offered_load,
                       std::uint64_t seed, bool quick,
                       obs::Recorder* recorder = nullptr,
                       const sim::RateLadder& ladder = {});

/// The multi-resolution contract from the shared --ladder-rungs /
/// --ladder-utilities flags (already validated at parse time). Empty
/// without --ladder-rungs; utilities default to the rung scales.
sim::RateLadder LadderFromArgs(const Args& args);

/// Utilization of the perfect-knowledge Chernoff scheme at the same point
/// (the paper's normalization baseline).
MbacPoint RunPerfectPoint(const MbacSetup& setup, double capacity_multiple,
                          double offered_load, std::uint64_t seed,
                          bool quick, obs::Recorder* recorder = nullptr);

std::vector<double> MbacCapacities(bool quick);
std::vector<double> MbacLoads(bool quick);

}  // namespace rcbr::bench
