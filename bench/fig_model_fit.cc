// Model-fitting validation: fit the Fig. 4 multiple-time-scale model to
// the synthetic trace (markov/fitting.h) and compare its predictions to
// direct trace measurements:
//  * equivalent bandwidth at a 300 kb buffer (vs the trace's empirical
//    min rate for 1e-6 loss — the Fig. 5 point),
//  * the slow-scale Chernoff capacity per call for N = 64 multiplexed
//    sources (vs the simulated Fig. 6 shared value),
//  * the stationary mean.
#include <vector>

#include "experiment_lib.h"
#include "core/baselines.h"
#include "ldev/chernoff.h"
#include "ldev/equivalent_bandwidth.h"
#include "markov/fitting.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 43200);
  const double mean_per_slot = movie.mean_rate() / movie.fps();

  bench::PrintPreamble(
      "fig_model_fit",
      {"multiple-time-scale model fitted from the trace vs direct "
       "measurements (rates normalized to the trace mean)",
       "row 0: stationary mean; row 1: equivalent bandwidth at 300 kb / "
       "1e-6; row 2: slow-scale capacity per call at N = 64, 1e-6",
       "subchain count K swept across columns param"},
      {"row", "K", "model", "measured"});

  const double empirical_eb = core::MinRateForLoss(
      movie.frame_bits(), 300 * kKilobit, 1e-6, 1e-3);
  const double theta = ldev::QosExponent(300 * kKilobit, 1e-6);

  for (std::size_t k : {2u, 3u, 5u}) {
    markov::FitOptions options;
    options.subchain_count = k;
    const markov::FittedModel fitted =
        markov::FitMultiTimescale(movie, options);

    bench::PrintRow({0, static_cast<double>(k),
                     fitted.source.composite().MeanBitsPerSlot() /
                         mean_per_slot,
                     1.0});
    bench::PrintRow({1, static_cast<double>(k),
                     ldev::MultiTimescaleEquivalentBandwidth(fitted.source,
                                                             theta) /
                         mean_per_slot,
                     empirical_eb / mean_per_slot});

    // Slow-scale Chernoff: min capacity per call for N = 64 at 1e-6.
    const auto scene = ldev::SceneRateDistribution(fitted.source);
    double lo = scene.Mean();
    double hi = scene.Max();
    for (int it = 0; it < 60; ++it) {
      const double mid = (lo + hi) / 2;
      if (ldev::ChernoffOverflowProbability(scene, 64, 64 * mid) <= 1e-6) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    bench::PrintRow({2, static_cast<double>(k), hi / mean_per_slot, 0.0});
  }
  return 0;
}
