// Ablation: DP buffer-state quantization. DESIGN.md calls out the
// quantization knob as the speed/exactness tradeoff; this bench measures
// the cost error and the trellis shrinkage across quantum sizes.
#include <vector>

#include "experiment_lib.h"
#include "core/schedule.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 4800);
  const auto& bits = movie.frame_bits();

  bench::PrintPreamble(
      "ablation_dp_quantization",
      {"DP buffer quantization: cost excess and trellis size vs quantum",
       "quantum 0 = exact; quantization is conservative (cost can only "
       "grow) and the schedule stays feasible"},
      {"quantum_kb", "seconds", "total_nodes", "cost", "cost_excess_pct"});

  double exact_cost = 0;
  for (double quantum_kb : {0.0, 1.0, 4.0, 16.0, 64.0}) {
    core::DpOptions options = bench::PaperDpOptions(3000.0);
    options.buffer_quantum_bits = quantum_kb * kKilobit;
    const double start = bench::NowSeconds();
    const core::DpResult r = core::ComputeOptimalSchedule(bits, options);
    const double elapsed = bench::NowSeconds() - start;
    if (quantum_kb == 0.0) exact_cost = r.optimal_cost;
    const double excess_pct =
        exact_cost > 0 ? 100.0 * (r.optimal_cost / exact_cost - 1.0) : 0.0;
    bench::PrintRow({quantum_kb, elapsed,
                     static_cast<double>(r.total_nodes), r.optimal_cost,
                     excess_pct});
  }
  return 0;
}
