// Fig. 2: bandwidth efficiency vs. mean renegotiation interval for the
// optimal (DP) schedule across cost ratios alpha/beta, and for the AR(1)
// heuristic across granularities Delta = 25..400 kb/s. Buffer 300 kb.
#include <vector>

#include "core/online_heuristic.h"
#include "core/schedule.h"
#include "experiment_lib.h"
#include "util/units.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 28800);  // 20 min
  const auto& bits = movie.frame_bits();
  const double slot_s = movie.slot_seconds();
  const double mean_bits_per_slot = movie.mean_rate() / movie.fps();

  runtime::SweepSpec spec;
  spec.name = "fig2_tradeoff";
  spec.notes = {
      "Fig. 2: efficiency vs mean renegotiation interval, B = 300 kb",
      "curve 0 = OPT (DP, sweep alpha), curve 1 = AR(1) heuristic "
      "(sweep Delta kb/s)",
      "paper shape: OPT ~99% efficiency at ~7-12 s intervals; heuristic "
      "needs ~1 renegotiation/s for ~95%"};
  spec.parameters = {"curve", "param"};
  spec.metrics = {"interval_s", "efficiency", "renegs"};
  // Curve 0: sweep the renegotiation price alpha (per-slot bandwidth cost
  // units). Curve 1: sweep the heuristic granularity Delta (kb/s).
  for (double alpha : {50.0, 200.0, 800.0, 3000.0, 12000.0, 48000.0}) {
    spec.points.push_back({0, alpha});
  }
  for (double delta_kbps : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    spec.points.push_back({1, delta_kbps});
  }

  runtime::RunExperiment(
      spec,
      [&](const runtime::SweepContext& ctx) {
        const double param = ctx.parameters[1];
        if (ctx.parameters[0] == 0) {
          core::DpOptions options = bench::PaperDpOptions(param);
          options.recorder = ctx.recorder;
          const core::DpResult dp =
              core::ComputeOptimalSchedule(bits, options);
          const core::ScheduleMetrics m = core::EvaluateSchedule(
              bits, dp.schedule, options.buffer_bits, slot_s, options.cost);
          return std::vector<double>{
              m.mean_interval_seconds,
              mean_bits_per_slot / dp.schedule.Mean(),
              static_cast<double>(m.renegotiations)};
        }
        // Heuristic: Delta in kb/s (paper: 25 -> 400), B_l = 10 kb,
        // B_h = 150 kb, T = 5 frames.
        core::HeuristicOptions h;
        h.low_threshold_bits = 10 * kKilobit;
        h.high_threshold_bits = 150 * kKilobit;
        h.time_constant_slots = 5;
        h.granularity_bits_per_slot = param * kKilobit / movie.fps();
        h.initial_rate_bits_per_slot = mean_bits_per_slot;
        h.recorder = ctx.recorder;
        const PiecewiseConstant schedule =
            core::ComputeHeuristicSchedule(bits, h);
        const core::ScheduleMetrics m =
            core::EvaluateSchedule(bits, schedule, 1e15, slot_s, {});
        return std::vector<double>{m.mean_interval_seconds,
                                   mean_bits_per_slot / schedule.Mean(),
                                   static_cast<double>(m.renegotiations)};
      },
      args);
  return 0;
}
