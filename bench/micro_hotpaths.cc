// Google-benchmark microbenchmarks for the hot paths: fluid-queue steps,
// DP trellis slots, signaling admission, and trace synthesis.
#include <benchmark/benchmark.h>

#include "core/dp_scheduler.h"
#include "core/online_heuristic.h"
#include "signaling/port_controller.h"
#include "sim/fluid_queue.h"
#include "trace/star_wars.h"
#include "util/rng.h"
#include "util/units.h"

namespace {

using namespace rcbr;

void BM_FluidQueueStep(benchmark::State& state) {
  sim::SlottedQueue queue(300 * kKilobit);
  Rng rng(1);
  std::vector<double> arrivals(4096);
  for (double& a : arrivals) a = rng.Uniform(0.0, 30000.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.Step(arrivals[i & 4095], 16000.0));
    ++i;
  }
}
BENCHMARK(BM_FluidQueueStep);

void BM_PortControllerDelta(benchmark::State& state) {
  signaling::PortController port(1 * kGbps, /*track_connections=*/false);
  port.AdmitConnection(1, 500 * kMbps);
  bool up = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        port.Handle(signaling::RmCell::Delta(1, up ? 64e3 : -64e3), 0.0));
    up = !up;
  }
}
BENCHMARK(BM_PortControllerDelta);

void BM_HeuristicStep(benchmark::State& state) {
  core::HeuristicOptions options;
  options.low_threshold_bits = 10 * kKilobit;
  options.high_threshold_bits = 150 * kKilobit;
  options.time_constant_slots = 5;
  options.granularity_bits_per_slot = 64.0 * kKilobit / 24.0;
  options.initial_rate_bits_per_slot = 15600.0;
  core::OnlineRateController controller(options);
  Rng rng(2);
  std::vector<double> arrivals(4096);
  for (double& a : arrivals) a = rng.Uniform(0.0, 40000.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        controller.Step(arrivals[i & 4095], controller.current_rate()));
    ++i;
  }
}
BENCHMARK(BM_HeuristicStep);

void BM_DpSchedulerPerSlot(benchmark::State& state) {
  const trace::FrameTrace clip =
      trace::MakeStarWarsTrace(3, state.range(0));
  core::DpOptions options;
  for (int k = 0; k <= 20; ++k) {
    options.rate_levels.push_back(128.0 * kKilobit / 24.0 * k);
  }
  options.buffer_bits = 300 * kKilobit;
  options.cost = {3000.0, 1.0 / 24.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ComputeOptimalSchedule(clip.frame_bits(), options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DpSchedulerPerSlot)->Arg(1440)->Arg(2880);

void BM_StarWarsSynthesis(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::MakeStarWarsTrace(7, state.range(0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StarWarsSynthesis)->Arg(14400);

}  // namespace
