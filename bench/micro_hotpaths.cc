// Google-benchmark microbenchmarks for the hot paths: fluid-queue steps,
// DP trellis slots, signaling admission, event-queue schedule/pop, and
// trace synthesis.
#include <benchmark/benchmark.h>

#include "core/dp_scheduler.h"
#include "core/online_heuristic.h"
#include "signaling/port_controller.h"
#include "sim/engine/event_queue.h"
#include "sim/fluid_queue.h"
#include "trace/star_wars.h"
#include "util/rng.h"
#include "util/units.h"

namespace {

using namespace rcbr;

void BM_FluidQueueStep(benchmark::State& state) {
  sim::SlottedQueue queue(300 * kKilobit);
  Rng rng(1);
  std::vector<double> arrivals(4096);
  for (double& a : arrivals) a = rng.Uniform(0.0, 30000.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.Step(arrivals[i & 4095], 16000.0));
    ++i;
  }
}
BENCHMARK(BM_FluidQueueStep);

void BM_PortControllerDelta(benchmark::State& state) {
  signaling::PortController port(1 * kGbps, /*track_connections=*/false);
  port.AdmitConnection(1, 500 * kMbps);
  bool up = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        port.Handle(signaling::RmCell::Delta(1, up ? 64e3 : -64e3), 0.0));
    up = !up;
  }
}
BENCHMARK(BM_PortControllerDelta);

// The classic hold model: keep `range(0)` events pending, repeatedly pop
// the earliest and schedule a replacement a random offset ahead. This is
// what the simulator's steady state looks like, and it is where the
// calendar queue's O(1) amortized schedule/pop beats the binary heap's
// O(log n) — visible directly in the Arg sweep.
void EventQueueHold(benchmark::State& state,
                    sim::engine::EventQueue::Impl impl) {
  const std::size_t pending = static_cast<std::size_t>(state.range(0));
  sim::engine::EventQueue queue(impl);
  queue.Reserve(pending);
  Rng rng(3);
  std::vector<double> holds(4096);
  for (double& h : holds) h = rng.Uniform(0.5, 1.5);
  sim::engine::EventPayload payload;
  payload.kind = 1;
  for (std::size_t i = 0; i < pending; ++i) {
    queue.Post(rng.Uniform(0.0, 1.0), payload);
  }
  // One full turnover outside the clock so the calendar reaches its
  // steady-state bucket layout before measurement starts.
  for (std::size_t i = 0; i < pending; ++i) {
    const sim::engine::ScheduledEvent event = queue.Pop();
    queue.Post(event.time + holds[i & 4095], payload);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const sim::engine::ScheduledEvent event = queue.Pop();
    benchmark::DoNotOptimize(event.time);
    queue.Post(event.time + holds[i & 4095], payload);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}

void BM_EventQueueHoldCalendar(benchmark::State& state) {
  EventQueueHold(state, sim::engine::EventQueue::Impl::kCalendar);
}
BENCHMARK(BM_EventQueueHoldCalendar)->Arg(1024)->Arg(262144);

void BM_EventQueueHoldHeap(benchmark::State& state) {
  EventQueueHold(state, sim::engine::EventQueue::Impl::kBinaryHeap);
}
BENCHMARK(BM_EventQueueHoldHeap)->Arg(1024)->Arg(262144);

// Pure burst: schedule n events, then drain them all — call setup storms
// and end-of-run teardowns.
void EventQueueScheduleDrain(benchmark::State& state,
                             sim::engine::EventQueue::Impl impl) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<double> times(n);
  for (double& t : times) t = rng.Uniform(0.0, 1000.0);
  sim::engine::EventPayload payload;
  payload.kind = 1;
  for (auto _ : state) {
    sim::engine::EventQueue queue(impl);
    queue.Reserve(n);
    for (double t : times) queue.Post(t, payload);
    double last = 0;
    while (!queue.empty()) last = queue.Pop().time;
    benchmark::DoNotOptimize(last);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}

void BM_EventQueueScheduleDrainCalendar(benchmark::State& state) {
  EventQueueScheduleDrain(state, sim::engine::EventQueue::Impl::kCalendar);
}
BENCHMARK(BM_EventQueueScheduleDrainCalendar)->Arg(65536);

void BM_EventQueueScheduleDrainHeap(benchmark::State& state) {
  EventQueueScheduleDrain(state, sim::engine::EventQueue::Impl::kBinaryHeap);
}
BENCHMARK(BM_EventQueueScheduleDrainHeap)->Arg(65536);

void BM_HeuristicStep(benchmark::State& state) {
  core::HeuristicOptions options;
  options.low_threshold_bits = 10 * kKilobit;
  options.high_threshold_bits = 150 * kKilobit;
  options.time_constant_slots = 5;
  options.granularity_bits_per_slot = 64.0 * kKilobit / 24.0;
  options.initial_rate_bits_per_slot = 15600.0;
  core::OnlineRateController controller(options);
  Rng rng(2);
  std::vector<double> arrivals(4096);
  for (double& a : arrivals) a = rng.Uniform(0.0, 40000.0);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        controller.Step(arrivals[i & 4095], controller.current_rate()));
    ++i;
  }
}
BENCHMARK(BM_HeuristicStep);

void BM_DpSchedulerPerSlot(benchmark::State& state) {
  const trace::FrameTrace clip =
      trace::MakeStarWarsTrace(3, state.range(0));
  core::DpOptions options;
  for (int k = 0; k <= 20; ++k) {
    options.rate_levels.push_back(128.0 * kKilobit / 24.0 * k);
  }
  options.buffer_bits = 300 * kKilobit;
  options.cost = {3000.0, 1.0 / 24.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ComputeOptimalSchedule(clip.frame_bits(), options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DpSchedulerPerSlot)->Arg(1440)->Arg(2880);

void BM_StarWarsSynthesis(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::MakeStarWarsTrace(7, state.range(0)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StarWarsSynthesis)->Arg(14400);

}  // namespace
