#include "bench_common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "trace/star_wars.h"
#include "util/units.h"

namespace rcbr::bench {

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--frames=", 9) == 0) {
      args.frames = std::atoll(arg + 9);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      args.seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
    } else if (std::strcmp(arg, "--quick") == 0) {
      args.quick = true;
    }
  }
  return args;
}

trace::FrameTrace MakeTrace(const Args& args, std::int64_t default_frames) {
  std::int64_t frames = args.frames > 0 ? args.frames : default_frames;
  if (args.quick) frames = std::max<std::int64_t>(frames / 8, 1440);
  return trace::MakeStarWarsTrace(args.seed, frames);
}

core::DpOptions PaperDpOptions(double alpha, double top_kbps) {
  core::DpOptions options;
  const double step = 64.0 * kKilobit / kStarWarsFps;  // 64 kb/s in b/slot
  const auto levels = static_cast<int>(top_kbps / 64.0);
  for (int k = 0; k <= levels; ++k) {
    options.rate_levels.push_back(step * static_cast<double>(k));
  }
  options.buffer_bits = 300.0 * kKilobit;
  options.cost = {alpha, 1.0 / kStarWarsFps};
  // Paper-scale traces need trellis coalescing: a 2 kb buffer grid bounds
  // the frontier at 150 states per rate (conservative, near-exact -- see
  // ablation_dp_quantization) and renegotiation points every 0.25 s are
  // far finer than the ~10 s intervals the schedules actually use.
  options.buffer_quantum_bits = 2.0 * kKilobit;
  options.decision_period = 6;
  // Experiments reuse this schedule as randomly rotated copies; a drained
  // terminal buffer keeps every rotation feasible across the wrap seam.
  options.final_buffer_bits = 0.0;
  return options;
}

PiecewiseConstant ToBps(const PiecewiseConstant& schedule_bits_per_slot,
                        double fps) {
  std::vector<Step> steps;
  steps.reserve(schedule_bits_per_slot.steps().size());
  for (const Step& s : schedule_bits_per_slot.steps()) {
    steps.push_back({s.start, s.value * fps});
  }
  return PiecewiseConstant(std::move(steps),
                           schedule_bits_per_slot.length());
}

void PrintPreamble(const std::string& experiment,
                   const std::vector<std::string>& notes,
                   const std::vector<std::string>& columns) {
  std::printf("# experiment: %s\n", experiment.c_str());
  for (const std::string& note : notes) {
    std::printf("# %s\n", note.c_str());
  }
  std::printf("#");
  for (const std::string& column : columns) {
    std::printf(" %14s", column.c_str());
  }
  std::printf("\n");
}

void PrintRow(const std::vector<double>& values) {
  std::printf(" ");
  for (double v : values) {
    std::printf(" %14.6g", v);
  }
  std::printf("\n");
  std::fflush(stdout);
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace rcbr::bench
