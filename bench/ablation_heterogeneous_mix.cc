// Ablation: heterogeneous source mixes. The paper evaluates a homogeneous
// population (shifted copies of one movie); this bench repeats the MBAC
// experiment on a genre mix from the catalog and asks whether one pooled
// descriptor is good enough for admission — the practical question a
// deployment faces. Schemes: perfect knowledge with the pooled
// descriptor, memoryless, and memory MBAC, on a mixed arrival stream.
#include <memory>
#include <utility>
#include <vector>

#include "admission/descriptor.h"
#include "admission/policies.h"
#include "core/dp_scheduler.h"
#include "experiment_lib.h"
#include "trace/catalog.h"
#include "trace/star_wars.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const std::int64_t frames = args.frames > 0 ? args.frames : 14400;

  // One RCBR schedule per genre.
  const core::DpOptions dp_options = bench::PaperDpOptions(3000.0);
  std::vector<sim::CallProfile> pool;
  std::vector<PiecewiseConstant> schedules_bps;
  double mean_sum = 0;
  for (trace::Genre genre : trace::AllGenres()) {
    const trace::FrameTrace movie = trace::MakeGenreTrace(
        genre, args.seed + static_cast<std::uint64_t>(genre), frames);
    const core::DpResult dp =
        core::ComputeOptimalSchedule(movie.frame_bits(), dp_options);
    PiecewiseConstant bps = bench::ToBps(dp.schedule, movie.fps());
    schedules_bps.push_back(bps);
    pool.push_back({std::move(bps), movie.slot_seconds()});
    mean_sum += pool.back().rates_bps.Mean();
  }
  const double call_mean = mean_sum / static_cast<double>(pool.size());

  std::vector<double> grid;
  for (double level : dp_options.rate_levels) {
    grid.push_back(level * trace::kStarWarsFps);
  }
  const auto pooled = admission::PooledDescriptor(schedules_bps, grid);

  const double target = 1e-4;
  const double capacity = 24 * call_mean;
  const double duration = pool.front().duration_seconds();
  sim::CallSimOptions sim_options;
  sim_options.capacity_bps = capacity;
  sim_options.arrival_rate_per_s = 0.9 * capacity / (call_mean * duration);
  sim_options.warmup_seconds = 3 * duration;
  sim_options.sample_intervals = args.quick ? 4 : 30;
  sim_options.interval_seconds = duration;

  admission::PolicyOptions policy_options;
  policy_options.target_failure_probability = target;
  policy_options.rate_grid_bps = grid;

  runtime::SweepSpec spec;
  spec.name = "ablation_heterogeneous_mix";
  spec.notes = {
      "MBAC on a mixed-genre call population (catalog genres, equal "
      "shares), link 24x mean, load 0.9, target 1e-4",
      "scheme 0 = perfect knowledge w/ pooled descriptor, 1 = "
      "memoryless, 2 = memory",
      "columns: achieved failure / target, utilization, blocking"};
  spec.parameters = {"scheme"};
  spec.metrics = {"target_ratio", "utilization", "blocking"};
  spec.points = {{0}, {1}, {2}};

  // All three schemes run on one fixed stream (common random numbers), so
  // differences between rows are the policies', not the arrival draws'.
  const std::uint64_t shared_seed = DeriveStreamSeed(args.seed, 61);

  runtime::RunExperiment(
      spec,
      [&](const runtime::SweepContext& ctx) {
        std::unique_ptr<sim::AdmissionPolicy> policy;
        switch (static_cast<int>(ctx.parameters[0])) {
          case 0:
            policy = std::make_unique<admission::PerfectKnowledgePolicy>(
                pooled, capacity, target);
            break;
          case 1:
            policy = std::make_unique<admission::MemorylessPolicy>(
                policy_options);
            break;
          default:
            policy = std::make_unique<admission::MemoryPolicy>(
                policy_options);
        }
        Rng rng(shared_seed);
        sim::CallSimOptions point_options = sim_options;
        point_options.recorder = ctx.recorder;
        const sim::CallSimResult r =
            sim::RunCallSim(pool, *policy, point_options, rng);
        return std::vector<double>{r.failure_probability.mean() / target,
                                   r.utilization.mean(),
                                   r.blocking_probability()};
      },
      args);
  return 0;
}
