// Fig. 8: link utilization of the memoryless MBAC, normalized to the
// utilization achieved by the perfect-knowledge Chernoff scheme at the
// same capacity and offered load.
// Paper shape: normalized utilization > 1 at small capacities (the
// memoryless scheme over-admits — that is *why* it misses its QoS).
#include "admission/policies.h"
#include "bench_common.h"
#include "mbac_common.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 14400);
  const bench::MbacSetup setup(movie);

  bench::PrintPreamble(
      "fig8_memoryless_utilization",
      {"Fig. 8: memoryless MBAC utilization normalized to the "
       "perfect-knowledge scheme",
       "paper shape: > 1 (over-admission) at small capacities, "
       "approaching 1 for large links"},
      {"capacity_x", "load", "util_memoryless", "util_perfect",
       "normalized"});

  for (double capacity : bench::MbacCapacities(args.quick)) {
    for (double load : bench::MbacLoads(args.quick)) {
      admission::PolicyOptions options;
      options.target_failure_probability = bench::kMbacTargetFailure;
      options.rate_grid_bps = setup.rate_grid_bps;
      admission::MemorylessPolicy policy(options);
      const bench::MbacPoint memoryless = bench::RunMbacPoint(
          setup, policy, capacity, load, args.seed + 17, args.quick);
      const bench::MbacPoint perfect = bench::RunPerfectPoint(
          setup, capacity, load, args.seed + 17, args.quick);
      const double normalized =
          perfect.utilization > 0
              ? memoryless.utilization / perfect.utilization
              : 0.0;
      bench::PrintRow({capacity, load, memoryless.utilization,
                       perfect.utilization, normalized});
    }
  }
  return 0;
}
