// Fig. 8: link utilization of the memoryless MBAC, normalized to the
// utilization achieved by the perfect-knowledge Chernoff scheme at the
// same capacity and offered load.
// Paper shape: normalized utilization > 1 at small capacities (the
// memoryless scheme over-admits — that is *why* it misses its QoS).
#include <vector>

#include "admission/policies.h"
#include "experiment_lib.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 14400);
  const bench::MbacSetup setup(movie);

  runtime::SweepSpec spec;
  spec.name = "fig8_memoryless_utilization";
  spec.notes = {
      "Fig. 8: memoryless MBAC utilization normalized to the "
      "perfect-knowledge scheme",
      "paper shape: > 1 (over-admission) at small capacities, "
      "approaching 1 for large links"};
  spec.parameters = {"capacity_x", "load"};
  spec.metrics = {"util_memoryless", "util_perfect", "normalized"};
  spec.points = runtime::GridPoints(
      {bench::MbacCapacities(args.quick), bench::MbacLoads(args.quick)});

  runtime::RunExperiment(
      spec,
      [&](const runtime::SweepContext& ctx) {
        const double capacity = ctx.parameters[0];
        const double load = ctx.parameters[1];
        admission::PolicyOptions options;
        options.target_failure_probability = bench::kMbacTargetFailure;
        options.rate_grid_bps = setup.rate_grid_bps;
        options.recorder = ctx.recorder;
        admission::MemorylessPolicy policy(options);
        // Both schemes run on the point's stream: common random numbers
        // make the normalization a paired comparison.
        const bench::MbacPoint memoryless = bench::RunMbacPoint(
            setup, policy, capacity, load, ctx.seed, args.quick,
            ctx.recorder);
        const bench::MbacPoint perfect = bench::RunPerfectPoint(
            setup, capacity, load, ctx.seed, args.quick);
        const double normalized =
            perfect.utilization > 0
                ? memoryless.utilization / perfect.utilization
                : 0.0;
        return std::vector<double>{memoryless.utilization,
                                   perfect.utilization, normalized};
      },
      args);
  return 0;
}
