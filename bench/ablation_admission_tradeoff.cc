// Ablation: the operator's knob (Sec. III-A1): "This allows the network
// operator to trade off call blocking probability and renegotiation
// failure probability." Sweeps the target failure probability of the
// perfect-knowledge Chernoff scheme and reports the resulting blocking,
// achieved failure and utilization; also contrasts the memory and
// aged-memory estimators at the 1e-4 point.
#include <memory>
#include <vector>

#include "admission/policies.h"
#include "experiment_lib.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 14400);
  const bench::MbacSetup setup(movie);
  const double capacity_multiple = 24;
  const double load = 0.9;

  bench::PrintPreamble(
      "ablation_admission_tradeoff",
      {"blocking vs renegotiation-failure tradeoff (Sec. III-A1), link "
       "24x mean, offered load 0.9",
       "part 0: perfect-knowledge scheme across target failure "
       "probabilities (x = log10 target)",
       "part 1: estimator comparison at target 1e-4 (x: 0 = memoryless, "
       "1 = memory, 2 = aged memory tau=2h)"},
      {"part", "x", "blocking", "failure_prob", "utilization"});

  for (double target : {1e-1, 1e-2, 1e-3, 1e-4, 1e-6}) {
    admission::PerfectKnowledgePolicy policy(
        setup.descriptor, capacity_multiple * setup.call_mean_bps, target);
    sim::AdmissionPolicy& base = policy;
    // Reuse RunMbacPoint via a temporary setup-compatible call.
    const bench::MbacPoint p = bench::RunMbacPoint(
        setup, base, capacity_multiple, load, args.seed + 43, args.quick);
    bench::PrintRow({0, std::log10(target), p.blocking,
                     p.failure_probability, p.utilization});
  }

  admission::PolicyOptions options;
  options.target_failure_probability = 1e-4;
  options.rate_grid_bps = setup.rate_grid_bps;
  std::vector<std::unique_ptr<sim::AdmissionPolicy>> estimators;
  estimators.push_back(
      std::make_unique<admission::MemorylessPolicy>(options));
  estimators.push_back(std::make_unique<admission::MemoryPolicy>(options));
  estimators.push_back(
      std::make_unique<admission::AgedMemoryPolicy>(options, 7200.0));
  for (std::size_t i = 0; i < estimators.size(); ++i) {
    const bench::MbacPoint p =
        bench::RunMbacPoint(setup, *estimators[i], capacity_multiple, load,
                            args.seed + 43, args.quick);
    bench::PrintRow({1, static_cast<double>(i), p.blocking,
                     p.failure_probability, p.utilization});
  }
  return 0;
}
