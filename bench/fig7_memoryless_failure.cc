// Fig. 7: renegotiation failure probability of the memoryless
// certainty-equivalent MBAC vs normalized offered load, for several link
// capacities (multiples of the call mean rate). Target QoS: 1e-3.
// Paper shape: for small links the achieved failure probability is
// orders of magnitude above target; it improves with link size and grows
// with offered load.
#include "admission/policies.h"
#include "bench_common.h"
#include "mbac_common.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 14400);
  const bench::MbacSetup setup(movie);

  bench::PrintPreamble(
      "fig7_memoryless_failure",
      {"Fig. 7: memoryless MBAC renegotiation failure probability",
       "target failure probability: 1e-4; link capacity in multiples of "
       "the call mean rate",
       "paper shape: small links violate the target by orders of "
       "magnitude; failure grows with load"},
      {"capacity_x", "load", "failure_prob", "target_ratio"});

  for (double capacity : bench::MbacCapacities(args.quick)) {
    for (double load : bench::MbacLoads(args.quick)) {
      admission::PolicyOptions options;
      options.target_failure_probability = bench::kMbacTargetFailure;
      options.rate_grid_bps = setup.rate_grid_bps;
      admission::MemorylessPolicy policy(options);
      const bench::MbacPoint p = bench::RunMbacPoint(
          setup, policy, capacity, load, args.seed + 17, args.quick);
      bench::PrintRow({capacity, load, p.failure_probability,
                       p.failure_probability / bench::kMbacTargetFailure});
    }
  }
  return 0;
}
