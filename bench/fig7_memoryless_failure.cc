// Fig. 7: renegotiation failure probability of the memoryless
// certainty-equivalent MBAC vs normalized offered load, for several link
// capacities (multiples of the call mean rate). Target QoS: 1e-3.
// Paper shape: for small links the achieved failure probability is
// orders of magnitude above target; it improves with link size and grows
// with offered load.
#include <vector>

#include "admission/policies.h"
#include "experiment_lib.h"

int main(int argc, char** argv) {
  using namespace rcbr;
  const bench::Args args = bench::ParseArgs(argc, argv);
  const trace::FrameTrace movie = bench::MakeTrace(args, 14400);
  const bench::MbacSetup setup(movie);

  runtime::SweepSpec spec;
  spec.name = "fig7_memoryless_failure";
  spec.notes = {
      "Fig. 7: memoryless MBAC renegotiation failure probability",
      "target failure probability: 1e-4; link capacity in multiples of "
      "the call mean rate",
      "paper shape: small links violate the target by orders of "
      "magnitude; failure grows with load"};
  spec.parameters = {"capacity_x", "load"};
  spec.metrics = {"failure_prob", "target_ratio"};
  spec.points = runtime::GridPoints(
      {bench::MbacCapacities(args.quick), bench::MbacLoads(args.quick)});

  runtime::RunExperiment(
      spec,
      [&](const runtime::SweepContext& ctx) {
        admission::PolicyOptions options;
        options.target_failure_probability = bench::kMbacTargetFailure;
        options.rate_grid_bps = setup.rate_grid_bps;
        options.recorder = ctx.recorder;
        admission::MemorylessPolicy policy(options);
        const bench::MbacPoint p =
            bench::RunMbacPoint(setup, policy, ctx.parameters[0],
                                ctx.parameters[1], ctx.seed, args.quick,
                                ctx.recorder);
        return std::vector<double>{
            p.failure_probability,
            p.failure_probability / bench::kMbacTargetFailure};
      },
      args);
  return 0;
}
