file(REMOVE_RECURSE
  "CMakeFiles/signaling_test.dir/signaling/lossy_channel_test.cc.o"
  "CMakeFiles/signaling_test.dir/signaling/lossy_channel_test.cc.o.d"
  "CMakeFiles/signaling_test.dir/signaling/path_test.cc.o"
  "CMakeFiles/signaling_test.dir/signaling/path_test.cc.o.d"
  "CMakeFiles/signaling_test.dir/signaling/port_controller_test.cc.o"
  "CMakeFiles/signaling_test.dir/signaling/port_controller_test.cc.o.d"
  "signaling_test"
  "signaling_test.pdb"
  "signaling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signaling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
