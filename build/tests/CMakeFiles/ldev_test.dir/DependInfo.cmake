
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ldev/chernoff_test.cc" "tests/CMakeFiles/ldev_test.dir/ldev/chernoff_test.cc.o" "gcc" "tests/CMakeFiles/ldev_test.dir/ldev/chernoff_test.cc.o.d"
  "/root/repo/tests/ldev/equivalent_bandwidth_test.cc" "tests/CMakeFiles/ldev_test.dir/ldev/equivalent_bandwidth_test.cc.o" "gcc" "tests/CMakeFiles/ldev_test.dir/ldev/equivalent_bandwidth_test.cc.o.d"
  "/root/repo/tests/ldev/mgf_test.cc" "tests/CMakeFiles/ldev_test.dir/ldev/mgf_test.cc.o" "gcc" "tests/CMakeFiles/ldev_test.dir/ldev/mgf_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rcbr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/signaling/CMakeFiles/rcbr_signaling.dir/DependInfo.cmake"
  "/root/repo/build/src/admission/CMakeFiles/rcbr_admission.dir/DependInfo.cmake"
  "/root/repo/build/src/ldev/CMakeFiles/rcbr_ldev.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/rcbr_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rcbr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rcbr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rcbr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
