file(REMOVE_RECURSE
  "CMakeFiles/ldev_test.dir/ldev/chernoff_test.cc.o"
  "CMakeFiles/ldev_test.dir/ldev/chernoff_test.cc.o.d"
  "CMakeFiles/ldev_test.dir/ldev/equivalent_bandwidth_test.cc.o"
  "CMakeFiles/ldev_test.dir/ldev/equivalent_bandwidth_test.cc.o.d"
  "CMakeFiles/ldev_test.dir/ldev/mgf_test.cc.o"
  "CMakeFiles/ldev_test.dir/ldev/mgf_test.cc.o.d"
  "ldev_test"
  "ldev_test.pdb"
  "ldev_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldev_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
