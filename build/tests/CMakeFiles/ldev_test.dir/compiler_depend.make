# Empty compiler generated dependencies file for ldev_test.
# This may be replaced when dependencies are built.
