file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/advance_reservation_test.cc.o"
  "CMakeFiles/core_test.dir/core/advance_reservation_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/baselines_test.cc.o"
  "CMakeFiles/core_test.dir/core/baselines_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/dp_scheduler_test.cc.o"
  "CMakeFiles/core_test.dir/core/dp_scheduler_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/efficiency_solver_test.cc.o"
  "CMakeFiles/core_test.dir/core/efficiency_solver_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/funnel_smoother_test.cc.o"
  "CMakeFiles/core_test.dir/core/funnel_smoother_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/gop_heuristic_test.cc.o"
  "CMakeFiles/core_test.dir/core/gop_heuristic_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/interval_smoother_test.cc.o"
  "CMakeFiles/core_test.dir/core/interval_smoother_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/online_heuristic_test.cc.o"
  "CMakeFiles/core_test.dir/core/online_heuristic_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/playback_test.cc.o"
  "CMakeFiles/core_test.dir/core/playback_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/rcbr_source_test.cc.o"
  "CMakeFiles/core_test.dir/core/rcbr_source_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/schedule_test.cc.o"
  "CMakeFiles/core_test.dir/core/schedule_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/testbed_test.cc.o"
  "CMakeFiles/core_test.dir/core/testbed_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
