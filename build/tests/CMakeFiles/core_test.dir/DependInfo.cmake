
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/advance_reservation_test.cc" "tests/CMakeFiles/core_test.dir/core/advance_reservation_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/advance_reservation_test.cc.o.d"
  "/root/repo/tests/core/baselines_test.cc" "tests/CMakeFiles/core_test.dir/core/baselines_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/baselines_test.cc.o.d"
  "/root/repo/tests/core/dp_scheduler_test.cc" "tests/CMakeFiles/core_test.dir/core/dp_scheduler_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/dp_scheduler_test.cc.o.d"
  "/root/repo/tests/core/efficiency_solver_test.cc" "tests/CMakeFiles/core_test.dir/core/efficiency_solver_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/efficiency_solver_test.cc.o.d"
  "/root/repo/tests/core/funnel_smoother_test.cc" "tests/CMakeFiles/core_test.dir/core/funnel_smoother_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/funnel_smoother_test.cc.o.d"
  "/root/repo/tests/core/gop_heuristic_test.cc" "tests/CMakeFiles/core_test.dir/core/gop_heuristic_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/gop_heuristic_test.cc.o.d"
  "/root/repo/tests/core/interval_smoother_test.cc" "tests/CMakeFiles/core_test.dir/core/interval_smoother_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/interval_smoother_test.cc.o.d"
  "/root/repo/tests/core/online_heuristic_test.cc" "tests/CMakeFiles/core_test.dir/core/online_heuristic_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/online_heuristic_test.cc.o.d"
  "/root/repo/tests/core/playback_test.cc" "tests/CMakeFiles/core_test.dir/core/playback_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/playback_test.cc.o.d"
  "/root/repo/tests/core/rcbr_source_test.cc" "tests/CMakeFiles/core_test.dir/core/rcbr_source_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/rcbr_source_test.cc.o.d"
  "/root/repo/tests/core/schedule_test.cc" "tests/CMakeFiles/core_test.dir/core/schedule_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/schedule_test.cc.o.d"
  "/root/repo/tests/core/testbed_test.cc" "tests/CMakeFiles/core_test.dir/core/testbed_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/testbed_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rcbr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/signaling/CMakeFiles/rcbr_signaling.dir/DependInfo.cmake"
  "/root/repo/build/src/admission/CMakeFiles/rcbr_admission.dir/DependInfo.cmake"
  "/root/repo/build/src/ldev/CMakeFiles/rcbr_ldev.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/rcbr_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rcbr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rcbr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rcbr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
