file(REMOVE_RECURSE
  "librcbr_ldev.a"
)
