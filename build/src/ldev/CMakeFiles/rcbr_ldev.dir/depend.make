# Empty dependencies file for rcbr_ldev.
# This may be replaced when dependencies are built.
