file(REMOVE_RECURSE
  "CMakeFiles/rcbr_ldev.dir/chernoff.cc.o"
  "CMakeFiles/rcbr_ldev.dir/chernoff.cc.o.d"
  "CMakeFiles/rcbr_ldev.dir/equivalent_bandwidth.cc.o"
  "CMakeFiles/rcbr_ldev.dir/equivalent_bandwidth.cc.o.d"
  "CMakeFiles/rcbr_ldev.dir/mgf.cc.o"
  "CMakeFiles/rcbr_ldev.dir/mgf.cc.o.d"
  "librcbr_ldev.a"
  "librcbr_ldev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcbr_ldev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
