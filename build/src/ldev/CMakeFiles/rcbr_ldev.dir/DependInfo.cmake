
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ldev/chernoff.cc" "src/ldev/CMakeFiles/rcbr_ldev.dir/chernoff.cc.o" "gcc" "src/ldev/CMakeFiles/rcbr_ldev.dir/chernoff.cc.o.d"
  "/root/repo/src/ldev/equivalent_bandwidth.cc" "src/ldev/CMakeFiles/rcbr_ldev.dir/equivalent_bandwidth.cc.o" "gcc" "src/ldev/CMakeFiles/rcbr_ldev.dir/equivalent_bandwidth.cc.o.d"
  "/root/repo/src/ldev/mgf.cc" "src/ldev/CMakeFiles/rcbr_ldev.dir/mgf.cc.o" "gcc" "src/ldev/CMakeFiles/rcbr_ldev.dir/mgf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rcbr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/rcbr_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rcbr_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
