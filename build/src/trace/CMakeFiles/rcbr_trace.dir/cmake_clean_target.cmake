file(REMOVE_RECURSE
  "librcbr_trace.a"
)
