file(REMOVE_RECURSE
  "CMakeFiles/rcbr_trace.dir/analysis.cc.o"
  "CMakeFiles/rcbr_trace.dir/analysis.cc.o.d"
  "CMakeFiles/rcbr_trace.dir/catalog.cc.o"
  "CMakeFiles/rcbr_trace.dir/catalog.cc.o.d"
  "CMakeFiles/rcbr_trace.dir/frame_trace.cc.o"
  "CMakeFiles/rcbr_trace.dir/frame_trace.cc.o.d"
  "CMakeFiles/rcbr_trace.dir/interactivity.cc.o"
  "CMakeFiles/rcbr_trace.dir/interactivity.cc.o.d"
  "CMakeFiles/rcbr_trace.dir/star_wars.cc.o"
  "CMakeFiles/rcbr_trace.dir/star_wars.cc.o.d"
  "CMakeFiles/rcbr_trace.dir/trace_io.cc.o"
  "CMakeFiles/rcbr_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/rcbr_trace.dir/vbr_synthesizer.cc.o"
  "CMakeFiles/rcbr_trace.dir/vbr_synthesizer.cc.o.d"
  "librcbr_trace.a"
  "librcbr_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcbr_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
