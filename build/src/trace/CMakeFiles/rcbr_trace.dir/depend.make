# Empty dependencies file for rcbr_trace.
# This may be replaced when dependencies are built.
