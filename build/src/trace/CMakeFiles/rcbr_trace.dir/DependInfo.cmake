
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analysis.cc" "src/trace/CMakeFiles/rcbr_trace.dir/analysis.cc.o" "gcc" "src/trace/CMakeFiles/rcbr_trace.dir/analysis.cc.o.d"
  "/root/repo/src/trace/catalog.cc" "src/trace/CMakeFiles/rcbr_trace.dir/catalog.cc.o" "gcc" "src/trace/CMakeFiles/rcbr_trace.dir/catalog.cc.o.d"
  "/root/repo/src/trace/frame_trace.cc" "src/trace/CMakeFiles/rcbr_trace.dir/frame_trace.cc.o" "gcc" "src/trace/CMakeFiles/rcbr_trace.dir/frame_trace.cc.o.d"
  "/root/repo/src/trace/interactivity.cc" "src/trace/CMakeFiles/rcbr_trace.dir/interactivity.cc.o" "gcc" "src/trace/CMakeFiles/rcbr_trace.dir/interactivity.cc.o.d"
  "/root/repo/src/trace/star_wars.cc" "src/trace/CMakeFiles/rcbr_trace.dir/star_wars.cc.o" "gcc" "src/trace/CMakeFiles/rcbr_trace.dir/star_wars.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/trace/CMakeFiles/rcbr_trace.dir/trace_io.cc.o" "gcc" "src/trace/CMakeFiles/rcbr_trace.dir/trace_io.cc.o.d"
  "/root/repo/src/trace/vbr_synthesizer.cc" "src/trace/CMakeFiles/rcbr_trace.dir/vbr_synthesizer.cc.o" "gcc" "src/trace/CMakeFiles/rcbr_trace.dir/vbr_synthesizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rcbr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
