
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advance_reservation.cc" "src/core/CMakeFiles/rcbr_core.dir/advance_reservation.cc.o" "gcc" "src/core/CMakeFiles/rcbr_core.dir/advance_reservation.cc.o.d"
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/rcbr_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/rcbr_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/dp_scheduler.cc" "src/core/CMakeFiles/rcbr_core.dir/dp_scheduler.cc.o" "gcc" "src/core/CMakeFiles/rcbr_core.dir/dp_scheduler.cc.o.d"
  "/root/repo/src/core/efficiency_solver.cc" "src/core/CMakeFiles/rcbr_core.dir/efficiency_solver.cc.o" "gcc" "src/core/CMakeFiles/rcbr_core.dir/efficiency_solver.cc.o.d"
  "/root/repo/src/core/funnel_smoother.cc" "src/core/CMakeFiles/rcbr_core.dir/funnel_smoother.cc.o" "gcc" "src/core/CMakeFiles/rcbr_core.dir/funnel_smoother.cc.o.d"
  "/root/repo/src/core/gop_heuristic.cc" "src/core/CMakeFiles/rcbr_core.dir/gop_heuristic.cc.o" "gcc" "src/core/CMakeFiles/rcbr_core.dir/gop_heuristic.cc.o.d"
  "/root/repo/src/core/interval_smoother.cc" "src/core/CMakeFiles/rcbr_core.dir/interval_smoother.cc.o" "gcc" "src/core/CMakeFiles/rcbr_core.dir/interval_smoother.cc.o.d"
  "/root/repo/src/core/online_heuristic.cc" "src/core/CMakeFiles/rcbr_core.dir/online_heuristic.cc.o" "gcc" "src/core/CMakeFiles/rcbr_core.dir/online_heuristic.cc.o.d"
  "/root/repo/src/core/playback.cc" "src/core/CMakeFiles/rcbr_core.dir/playback.cc.o" "gcc" "src/core/CMakeFiles/rcbr_core.dir/playback.cc.o.d"
  "/root/repo/src/core/rcbr_source.cc" "src/core/CMakeFiles/rcbr_core.dir/rcbr_source.cc.o" "gcc" "src/core/CMakeFiles/rcbr_core.dir/rcbr_source.cc.o.d"
  "/root/repo/src/core/schedule.cc" "src/core/CMakeFiles/rcbr_core.dir/schedule.cc.o" "gcc" "src/core/CMakeFiles/rcbr_core.dir/schedule.cc.o.d"
  "/root/repo/src/core/testbed.cc" "src/core/CMakeFiles/rcbr_core.dir/testbed.cc.o" "gcc" "src/core/CMakeFiles/rcbr_core.dir/testbed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rcbr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rcbr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rcbr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/signaling/CMakeFiles/rcbr_signaling.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
