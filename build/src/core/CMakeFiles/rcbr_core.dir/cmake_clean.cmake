file(REMOVE_RECURSE
  "CMakeFiles/rcbr_core.dir/advance_reservation.cc.o"
  "CMakeFiles/rcbr_core.dir/advance_reservation.cc.o.d"
  "CMakeFiles/rcbr_core.dir/baselines.cc.o"
  "CMakeFiles/rcbr_core.dir/baselines.cc.o.d"
  "CMakeFiles/rcbr_core.dir/dp_scheduler.cc.o"
  "CMakeFiles/rcbr_core.dir/dp_scheduler.cc.o.d"
  "CMakeFiles/rcbr_core.dir/efficiency_solver.cc.o"
  "CMakeFiles/rcbr_core.dir/efficiency_solver.cc.o.d"
  "CMakeFiles/rcbr_core.dir/funnel_smoother.cc.o"
  "CMakeFiles/rcbr_core.dir/funnel_smoother.cc.o.d"
  "CMakeFiles/rcbr_core.dir/gop_heuristic.cc.o"
  "CMakeFiles/rcbr_core.dir/gop_heuristic.cc.o.d"
  "CMakeFiles/rcbr_core.dir/interval_smoother.cc.o"
  "CMakeFiles/rcbr_core.dir/interval_smoother.cc.o.d"
  "CMakeFiles/rcbr_core.dir/online_heuristic.cc.o"
  "CMakeFiles/rcbr_core.dir/online_heuristic.cc.o.d"
  "CMakeFiles/rcbr_core.dir/playback.cc.o"
  "CMakeFiles/rcbr_core.dir/playback.cc.o.d"
  "CMakeFiles/rcbr_core.dir/rcbr_source.cc.o"
  "CMakeFiles/rcbr_core.dir/rcbr_source.cc.o.d"
  "CMakeFiles/rcbr_core.dir/schedule.cc.o"
  "CMakeFiles/rcbr_core.dir/schedule.cc.o.d"
  "CMakeFiles/rcbr_core.dir/testbed.cc.o"
  "CMakeFiles/rcbr_core.dir/testbed.cc.o.d"
  "librcbr_core.a"
  "librcbr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcbr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
