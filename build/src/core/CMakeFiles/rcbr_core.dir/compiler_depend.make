# Empty compiler generated dependencies file for rcbr_core.
# This may be replaced when dependencies are built.
