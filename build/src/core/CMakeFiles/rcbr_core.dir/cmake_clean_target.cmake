file(REMOVE_RECURSE
  "librcbr_core.a"
)
