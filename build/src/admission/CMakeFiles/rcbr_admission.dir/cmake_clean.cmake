file(REMOVE_RECURSE
  "CMakeFiles/rcbr_admission.dir/descriptor.cc.o"
  "CMakeFiles/rcbr_admission.dir/descriptor.cc.o.d"
  "CMakeFiles/rcbr_admission.dir/deterministic.cc.o"
  "CMakeFiles/rcbr_admission.dir/deterministic.cc.o.d"
  "CMakeFiles/rcbr_admission.dir/policies.cc.o"
  "CMakeFiles/rcbr_admission.dir/policies.cc.o.d"
  "librcbr_admission.a"
  "librcbr_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcbr_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
