file(REMOVE_RECURSE
  "librcbr_admission.a"
)
