# Empty compiler generated dependencies file for rcbr_admission.
# This may be replaced when dependencies are built.
