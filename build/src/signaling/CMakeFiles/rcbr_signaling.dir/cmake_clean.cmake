file(REMOVE_RECURSE
  "CMakeFiles/rcbr_signaling.dir/lossy_channel.cc.o"
  "CMakeFiles/rcbr_signaling.dir/lossy_channel.cc.o.d"
  "CMakeFiles/rcbr_signaling.dir/path.cc.o"
  "CMakeFiles/rcbr_signaling.dir/path.cc.o.d"
  "CMakeFiles/rcbr_signaling.dir/port_controller.cc.o"
  "CMakeFiles/rcbr_signaling.dir/port_controller.cc.o.d"
  "librcbr_signaling.a"
  "librcbr_signaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcbr_signaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
