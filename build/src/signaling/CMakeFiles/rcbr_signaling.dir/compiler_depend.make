# Empty compiler generated dependencies file for rcbr_signaling.
# This may be replaced when dependencies are built.
