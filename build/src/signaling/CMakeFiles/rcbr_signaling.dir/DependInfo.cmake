
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signaling/lossy_channel.cc" "src/signaling/CMakeFiles/rcbr_signaling.dir/lossy_channel.cc.o" "gcc" "src/signaling/CMakeFiles/rcbr_signaling.dir/lossy_channel.cc.o.d"
  "/root/repo/src/signaling/path.cc" "src/signaling/CMakeFiles/rcbr_signaling.dir/path.cc.o" "gcc" "src/signaling/CMakeFiles/rcbr_signaling.dir/path.cc.o.d"
  "/root/repo/src/signaling/port_controller.cc" "src/signaling/CMakeFiles/rcbr_signaling.dir/port_controller.cc.o" "gcc" "src/signaling/CMakeFiles/rcbr_signaling.dir/port_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rcbr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
