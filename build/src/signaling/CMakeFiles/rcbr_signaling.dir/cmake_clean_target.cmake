file(REMOVE_RECURSE
  "librcbr_signaling.a"
)
