file(REMOVE_RECURSE
  "CMakeFiles/rcbr_markov.dir/dtmc.cc.o"
  "CMakeFiles/rcbr_markov.dir/dtmc.cc.o.d"
  "CMakeFiles/rcbr_markov.dir/fitting.cc.o"
  "CMakeFiles/rcbr_markov.dir/fitting.cc.o.d"
  "CMakeFiles/rcbr_markov.dir/matrix.cc.o"
  "CMakeFiles/rcbr_markov.dir/matrix.cc.o.d"
  "CMakeFiles/rcbr_markov.dir/multi_timescale.cc.o"
  "CMakeFiles/rcbr_markov.dir/multi_timescale.cc.o.d"
  "CMakeFiles/rcbr_markov.dir/rate_source.cc.o"
  "CMakeFiles/rcbr_markov.dir/rate_source.cc.o.d"
  "librcbr_markov.a"
  "librcbr_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcbr_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
