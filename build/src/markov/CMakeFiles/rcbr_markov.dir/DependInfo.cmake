
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/markov/dtmc.cc" "src/markov/CMakeFiles/rcbr_markov.dir/dtmc.cc.o" "gcc" "src/markov/CMakeFiles/rcbr_markov.dir/dtmc.cc.o.d"
  "/root/repo/src/markov/fitting.cc" "src/markov/CMakeFiles/rcbr_markov.dir/fitting.cc.o" "gcc" "src/markov/CMakeFiles/rcbr_markov.dir/fitting.cc.o.d"
  "/root/repo/src/markov/matrix.cc" "src/markov/CMakeFiles/rcbr_markov.dir/matrix.cc.o" "gcc" "src/markov/CMakeFiles/rcbr_markov.dir/matrix.cc.o.d"
  "/root/repo/src/markov/multi_timescale.cc" "src/markov/CMakeFiles/rcbr_markov.dir/multi_timescale.cc.o" "gcc" "src/markov/CMakeFiles/rcbr_markov.dir/multi_timescale.cc.o.d"
  "/root/repo/src/markov/rate_source.cc" "src/markov/CMakeFiles/rcbr_markov.dir/rate_source.cc.o" "gcc" "src/markov/CMakeFiles/rcbr_markov.dir/rate_source.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rcbr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rcbr_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
