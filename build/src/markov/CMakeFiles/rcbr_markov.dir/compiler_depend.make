# Empty compiler generated dependencies file for rcbr_markov.
# This may be replaced when dependencies are built.
