file(REMOVE_RECURSE
  "librcbr_markov.a"
)
