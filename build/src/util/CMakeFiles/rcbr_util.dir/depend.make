# Empty dependencies file for rcbr_util.
# This may be replaced when dependencies are built.
