file(REMOVE_RECURSE
  "librcbr_util.a"
)
