file(REMOVE_RECURSE
  "CMakeFiles/rcbr_util.dir/histogram.cc.o"
  "CMakeFiles/rcbr_util.dir/histogram.cc.o.d"
  "CMakeFiles/rcbr_util.dir/piecewise.cc.o"
  "CMakeFiles/rcbr_util.dir/piecewise.cc.o.d"
  "CMakeFiles/rcbr_util.dir/rng.cc.o"
  "CMakeFiles/rcbr_util.dir/rng.cc.o.d"
  "CMakeFiles/rcbr_util.dir/search.cc.o"
  "CMakeFiles/rcbr_util.dir/search.cc.o.d"
  "CMakeFiles/rcbr_util.dir/stats.cc.o"
  "CMakeFiles/rcbr_util.dir/stats.cc.o.d"
  "librcbr_util.a"
  "librcbr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcbr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
