file(REMOVE_RECURSE
  "librcbr_sim.a"
)
