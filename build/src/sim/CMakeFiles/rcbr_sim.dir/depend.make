# Empty dependencies file for rcbr_sim.
# This may be replaced when dependencies are built.
