file(REMOVE_RECURSE
  "CMakeFiles/rcbr_sim.dir/call_sim.cc.o"
  "CMakeFiles/rcbr_sim.dir/call_sim.cc.o.d"
  "CMakeFiles/rcbr_sim.dir/cell_mux.cc.o"
  "CMakeFiles/rcbr_sim.dir/cell_mux.cc.o.d"
  "CMakeFiles/rcbr_sim.dir/fluid_queue.cc.o"
  "CMakeFiles/rcbr_sim.dir/fluid_queue.cc.o.d"
  "CMakeFiles/rcbr_sim.dir/min_rate.cc.o"
  "CMakeFiles/rcbr_sim.dir/min_rate.cc.o.d"
  "CMakeFiles/rcbr_sim.dir/network.cc.o"
  "CMakeFiles/rcbr_sim.dir/network.cc.o.d"
  "CMakeFiles/rcbr_sim.dir/scenarios.cc.o"
  "CMakeFiles/rcbr_sim.dir/scenarios.cc.o.d"
  "librcbr_sim.a"
  "librcbr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcbr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
