
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/call_sim.cc" "src/sim/CMakeFiles/rcbr_sim.dir/call_sim.cc.o" "gcc" "src/sim/CMakeFiles/rcbr_sim.dir/call_sim.cc.o.d"
  "/root/repo/src/sim/cell_mux.cc" "src/sim/CMakeFiles/rcbr_sim.dir/cell_mux.cc.o" "gcc" "src/sim/CMakeFiles/rcbr_sim.dir/cell_mux.cc.o.d"
  "/root/repo/src/sim/fluid_queue.cc" "src/sim/CMakeFiles/rcbr_sim.dir/fluid_queue.cc.o" "gcc" "src/sim/CMakeFiles/rcbr_sim.dir/fluid_queue.cc.o.d"
  "/root/repo/src/sim/min_rate.cc" "src/sim/CMakeFiles/rcbr_sim.dir/min_rate.cc.o" "gcc" "src/sim/CMakeFiles/rcbr_sim.dir/min_rate.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/sim/CMakeFiles/rcbr_sim.dir/network.cc.o" "gcc" "src/sim/CMakeFiles/rcbr_sim.dir/network.cc.o.d"
  "/root/repo/src/sim/scenarios.cc" "src/sim/CMakeFiles/rcbr_sim.dir/scenarios.cc.o" "gcc" "src/sim/CMakeFiles/rcbr_sim.dir/scenarios.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rcbr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rcbr_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
