file(REMOVE_RECURSE
  "CMakeFiles/stored_video_server.dir/stored_video_server.cpp.o"
  "CMakeFiles/stored_video_server.dir/stored_video_server.cpp.o.d"
  "stored_video_server"
  "stored_video_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stored_video_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
