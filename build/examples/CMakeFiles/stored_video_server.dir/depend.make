# Empty dependencies file for stored_video_server.
# This may be replaced when dependencies are built.
