file(REMOVE_RECURSE
  "CMakeFiles/live_broadcast.dir/live_broadcast.cpp.o"
  "CMakeFiles/live_broadcast.dir/live_broadcast.cpp.o.d"
  "live_broadcast"
  "live_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
