file(REMOVE_RECURSE
  "CMakeFiles/network_planner.dir/network_planner.cpp.o"
  "CMakeFiles/network_planner.dir/network_planner.cpp.o.d"
  "network_planner"
  "network_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
