# Empty dependencies file for admission_operator.
# This may be replaced when dependencies are built.
