file(REMOVE_RECURSE
  "CMakeFiles/admission_operator.dir/admission_operator.cpp.o"
  "CMakeFiles/admission_operator.dir/admission_operator.cpp.o.d"
  "admission_operator"
  "admission_operator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admission_operator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
