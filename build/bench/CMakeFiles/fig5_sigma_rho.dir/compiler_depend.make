# Empty compiler generated dependencies file for fig5_sigma_rho.
# This may be replaced when dependencies are built.
