file(REMOVE_RECURSE
  "CMakeFiles/fig5_sigma_rho.dir/bench_common.cc.o"
  "CMakeFiles/fig5_sigma_rho.dir/bench_common.cc.o.d"
  "CMakeFiles/fig5_sigma_rho.dir/fig5_sigma_rho.cc.o"
  "CMakeFiles/fig5_sigma_rho.dir/fig5_sigma_rho.cc.o.d"
  "fig5_sigma_rho"
  "fig5_sigma_rho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sigma_rho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
