# Empty dependencies file for tab1_dp_runtime.
# This may be replaced when dependencies are built.
