file(REMOVE_RECURSE
  "CMakeFiles/tab1_dp_runtime.dir/bench_common.cc.o"
  "CMakeFiles/tab1_dp_runtime.dir/bench_common.cc.o.d"
  "CMakeFiles/tab1_dp_runtime.dir/tab1_dp_runtime.cc.o"
  "CMakeFiles/tab1_dp_runtime.dir/tab1_dp_runtime.cc.o.d"
  "tab1_dp_runtime"
  "tab1_dp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_dp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
