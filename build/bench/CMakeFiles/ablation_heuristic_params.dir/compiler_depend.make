# Empty compiler generated dependencies file for ablation_heuristic_params.
# This may be replaced when dependencies are built.
