file(REMOVE_RECURSE
  "CMakeFiles/ablation_heuristic_params.dir/ablation_heuristic_params.cc.o"
  "CMakeFiles/ablation_heuristic_params.dir/ablation_heuristic_params.cc.o.d"
  "CMakeFiles/ablation_heuristic_params.dir/bench_common.cc.o"
  "CMakeFiles/ablation_heuristic_params.dir/bench_common.cc.o.d"
  "ablation_heuristic_params"
  "ablation_heuristic_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_heuristic_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
