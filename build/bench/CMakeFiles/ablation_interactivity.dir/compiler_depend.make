# Empty compiler generated dependencies file for ablation_interactivity.
# This may be replaced when dependencies are built.
