# Empty compiler generated dependencies file for fig_hops_scaling.
# This may be replaced when dependencies are built.
