file(REMOVE_RECURSE
  "CMakeFiles/fig_hops_scaling.dir/bench_common.cc.o"
  "CMakeFiles/fig_hops_scaling.dir/bench_common.cc.o.d"
  "CMakeFiles/fig_hops_scaling.dir/fig_hops_scaling.cc.o"
  "CMakeFiles/fig_hops_scaling.dir/fig_hops_scaling.cc.o.d"
  "fig_hops_scaling"
  "fig_hops_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_hops_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
