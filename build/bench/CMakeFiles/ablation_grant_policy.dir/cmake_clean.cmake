file(REMOVE_RECURSE
  "CMakeFiles/ablation_grant_policy.dir/ablation_grant_policy.cc.o"
  "CMakeFiles/ablation_grant_policy.dir/ablation_grant_policy.cc.o.d"
  "CMakeFiles/ablation_grant_policy.dir/bench_common.cc.o"
  "CMakeFiles/ablation_grant_policy.dir/bench_common.cc.o.d"
  "ablation_grant_policy"
  "ablation_grant_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_grant_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
