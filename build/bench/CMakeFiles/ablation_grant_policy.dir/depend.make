# Empty dependencies file for ablation_grant_policy.
# This may be replaced when dependencies are built.
