# Empty compiler generated dependencies file for fig6_smg.
# This may be replaced when dependencies are built.
