file(REMOVE_RECURSE
  "CMakeFiles/fig6_smg.dir/bench_common.cc.o"
  "CMakeFiles/fig6_smg.dir/bench_common.cc.o.d"
  "CMakeFiles/fig6_smg.dir/fig6_smg.cc.o"
  "CMakeFiles/fig6_smg.dir/fig6_smg.cc.o.d"
  "fig6_smg"
  "fig6_smg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_smg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
