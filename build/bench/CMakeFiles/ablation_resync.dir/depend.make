# Empty dependencies file for ablation_resync.
# This may be replaced when dependencies are built.
