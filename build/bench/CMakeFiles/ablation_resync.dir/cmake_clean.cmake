file(REMOVE_RECURSE
  "CMakeFiles/ablation_resync.dir/ablation_resync.cc.o"
  "CMakeFiles/ablation_resync.dir/ablation_resync.cc.o.d"
  "CMakeFiles/ablation_resync.dir/bench_common.cc.o"
  "CMakeFiles/ablation_resync.dir/bench_common.cc.o.d"
  "ablation_resync"
  "ablation_resync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_resync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
