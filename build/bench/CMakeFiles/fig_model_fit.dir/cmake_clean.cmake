file(REMOVE_RECURSE
  "CMakeFiles/fig_model_fit.dir/bench_common.cc.o"
  "CMakeFiles/fig_model_fit.dir/bench_common.cc.o.d"
  "CMakeFiles/fig_model_fit.dir/fig_model_fit.cc.o"
  "CMakeFiles/fig_model_fit.dir/fig_model_fit.cc.o.d"
  "fig_model_fit"
  "fig_model_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_model_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
