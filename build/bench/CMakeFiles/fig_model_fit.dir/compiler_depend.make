# Empty compiler generated dependencies file for fig_model_fit.
# This may be replaced when dependencies are built.
