# Empty dependencies file for fig_ldev_validation.
# This may be replaced when dependencies are built.
