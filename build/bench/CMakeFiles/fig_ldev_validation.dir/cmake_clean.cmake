file(REMOVE_RECURSE
  "CMakeFiles/fig_ldev_validation.dir/bench_common.cc.o"
  "CMakeFiles/fig_ldev_validation.dir/bench_common.cc.o.d"
  "CMakeFiles/fig_ldev_validation.dir/fig_ldev_validation.cc.o"
  "CMakeFiles/fig_ldev_validation.dir/fig_ldev_validation.cc.o.d"
  "fig_ldev_validation"
  "fig_ldev_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_ldev_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
