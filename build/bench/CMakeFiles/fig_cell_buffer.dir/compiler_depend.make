# Empty compiler generated dependencies file for fig_cell_buffer.
# This may be replaced when dependencies are built.
