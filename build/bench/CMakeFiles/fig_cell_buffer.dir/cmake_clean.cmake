file(REMOVE_RECURSE
  "CMakeFiles/fig_cell_buffer.dir/bench_common.cc.o"
  "CMakeFiles/fig_cell_buffer.dir/bench_common.cc.o.d"
  "CMakeFiles/fig_cell_buffer.dir/fig_cell_buffer.cc.o"
  "CMakeFiles/fig_cell_buffer.dir/fig_cell_buffer.cc.o.d"
  "fig_cell_buffer"
  "fig_cell_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_cell_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
