# Empty compiler generated dependencies file for ablation_deterministic_vs_statistical.
# This may be replaced when dependencies are built.
