file(REMOVE_RECURSE
  "CMakeFiles/ablation_deterministic_vs_statistical.dir/ablation_deterministic_vs_statistical.cc.o"
  "CMakeFiles/ablation_deterministic_vs_statistical.dir/ablation_deterministic_vs_statistical.cc.o.d"
  "CMakeFiles/ablation_deterministic_vs_statistical.dir/bench_common.cc.o"
  "CMakeFiles/ablation_deterministic_vs_statistical.dir/bench_common.cc.o.d"
  "ablation_deterministic_vs_statistical"
  "ablation_deterministic_vs_statistical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_deterministic_vs_statistical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
