file(REMOVE_RECURSE
  "CMakeFiles/ablation_smoother.dir/ablation_smoother.cc.o"
  "CMakeFiles/ablation_smoother.dir/ablation_smoother.cc.o.d"
  "CMakeFiles/ablation_smoother.dir/bench_common.cc.o"
  "CMakeFiles/ablation_smoother.dir/bench_common.cc.o.d"
  "ablation_smoother"
  "ablation_smoother.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_smoother.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
