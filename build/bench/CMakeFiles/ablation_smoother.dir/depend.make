# Empty dependencies file for ablation_smoother.
# This may be replaced when dependencies are built.
