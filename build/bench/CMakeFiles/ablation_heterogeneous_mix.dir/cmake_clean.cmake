file(REMOVE_RECURSE
  "CMakeFiles/ablation_heterogeneous_mix.dir/ablation_heterogeneous_mix.cc.o"
  "CMakeFiles/ablation_heterogeneous_mix.dir/ablation_heterogeneous_mix.cc.o.d"
  "CMakeFiles/ablation_heterogeneous_mix.dir/bench_common.cc.o"
  "CMakeFiles/ablation_heterogeneous_mix.dir/bench_common.cc.o.d"
  "ablation_heterogeneous_mix"
  "ablation_heterogeneous_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_heterogeneous_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
