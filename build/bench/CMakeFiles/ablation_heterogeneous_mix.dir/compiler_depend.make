# Empty compiler generated dependencies file for ablation_heterogeneous_mix.
# This may be replaced when dependencies are built.
