file(REMOVE_RECURSE
  "CMakeFiles/fig9_10_memory_mbac.dir/bench_common.cc.o"
  "CMakeFiles/fig9_10_memory_mbac.dir/bench_common.cc.o.d"
  "CMakeFiles/fig9_10_memory_mbac.dir/fig9_10_memory_mbac.cc.o"
  "CMakeFiles/fig9_10_memory_mbac.dir/fig9_10_memory_mbac.cc.o.d"
  "fig9_10_memory_mbac"
  "fig9_10_memory_mbac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_10_memory_mbac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
