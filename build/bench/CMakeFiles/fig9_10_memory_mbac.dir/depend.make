# Empty dependencies file for fig9_10_memory_mbac.
# This may be replaced when dependencies are built.
