file(REMOVE_RECURSE
  "CMakeFiles/ablation_admission_tradeoff.dir/ablation_admission_tradeoff.cc.o"
  "CMakeFiles/ablation_admission_tradeoff.dir/ablation_admission_tradeoff.cc.o.d"
  "CMakeFiles/ablation_admission_tradeoff.dir/bench_common.cc.o"
  "CMakeFiles/ablation_admission_tradeoff.dir/bench_common.cc.o.d"
  "ablation_admission_tradeoff"
  "ablation_admission_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_admission_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
