# Empty dependencies file for ablation_admission_tradeoff.
# This may be replaced when dependencies are built.
