file(REMOVE_RECURSE
  "CMakeFiles/ablation_gop_heuristic.dir/ablation_gop_heuristic.cc.o"
  "CMakeFiles/ablation_gop_heuristic.dir/ablation_gop_heuristic.cc.o.d"
  "CMakeFiles/ablation_gop_heuristic.dir/bench_common.cc.o"
  "CMakeFiles/ablation_gop_heuristic.dir/bench_common.cc.o.d"
  "ablation_gop_heuristic"
  "ablation_gop_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gop_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
