file(REMOVE_RECURSE
  "CMakeFiles/fig8_memoryless_utilization.dir/bench_common.cc.o"
  "CMakeFiles/fig8_memoryless_utilization.dir/bench_common.cc.o.d"
  "CMakeFiles/fig8_memoryless_utilization.dir/fig8_memoryless_utilization.cc.o"
  "CMakeFiles/fig8_memoryless_utilization.dir/fig8_memoryless_utilization.cc.o.d"
  "fig8_memoryless_utilization"
  "fig8_memoryless_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_memoryless_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
