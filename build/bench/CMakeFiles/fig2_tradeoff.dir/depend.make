# Empty dependencies file for fig2_tradeoff.
# This may be replaced when dependencies are built.
