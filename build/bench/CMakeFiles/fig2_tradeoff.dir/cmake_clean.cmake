file(REMOVE_RECURSE
  "CMakeFiles/fig2_tradeoff.dir/bench_common.cc.o"
  "CMakeFiles/fig2_tradeoff.dir/bench_common.cc.o.d"
  "CMakeFiles/fig2_tradeoff.dir/fig2_tradeoff.cc.o"
  "CMakeFiles/fig2_tradeoff.dir/fig2_tradeoff.cc.o.d"
  "fig2_tradeoff"
  "fig2_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
