# Empty dependencies file for fig7_memoryless_failure.
# This may be replaced when dependencies are built.
