file(REMOVE_RECURSE
  "CMakeFiles/fig7_memoryless_failure.dir/bench_common.cc.o"
  "CMakeFiles/fig7_memoryless_failure.dir/bench_common.cc.o.d"
  "CMakeFiles/fig7_memoryless_failure.dir/fig7_memoryless_failure.cc.o"
  "CMakeFiles/fig7_memoryless_failure.dir/fig7_memoryless_failure.cc.o.d"
  "fig7_memoryless_failure"
  "fig7_memoryless_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_memoryless_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
