file(REMOVE_RECURSE
  "CMakeFiles/ablation_delay_bound.dir/ablation_delay_bound.cc.o"
  "CMakeFiles/ablation_delay_bound.dir/ablation_delay_bound.cc.o.d"
  "CMakeFiles/ablation_delay_bound.dir/bench_common.cc.o"
  "CMakeFiles/ablation_delay_bound.dir/bench_common.cc.o.d"
  "ablation_delay_bound"
  "ablation_delay_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delay_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
