# Empty dependencies file for ablation_delay_bound.
# This may be replaced when dependencies are built.
