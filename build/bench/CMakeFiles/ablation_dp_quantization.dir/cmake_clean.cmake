file(REMOVE_RECURSE
  "CMakeFiles/ablation_dp_quantization.dir/ablation_dp_quantization.cc.o"
  "CMakeFiles/ablation_dp_quantization.dir/ablation_dp_quantization.cc.o.d"
  "CMakeFiles/ablation_dp_quantization.dir/bench_common.cc.o"
  "CMakeFiles/ablation_dp_quantization.dir/bench_common.cc.o.d"
  "ablation_dp_quantization"
  "ablation_dp_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dp_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
