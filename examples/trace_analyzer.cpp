// Trace analyzer: "is my video multiple-time-scale traffic, and what
// would RCBR buy me?"
//
// Reads a trace file (one frame size per line, `# fps:` header optional)
// or synthesizes a catalog genre, then prints the full diagnosis the
// paper's argument is built on:
//   1. first-order statistics and the sustained-peak measurement (Sec. II),
//   2. scene decomposition and time-scale separation (Sec. V-A),
//   3. the (sigma, rho) cost of a one-shot descriptor (Fig. 5 samples),
//   4. a fitted multiple-time-scale model and its equivalent bandwidth,
//   5. the RCBR schedule for a 300 kb buffer and what it saves.
//
// Usage:
//   trace_analyzer                     # analyze the bundled synthesizer
//   trace_analyzer <file>              # analyze a trace file
//   trace_analyzer --genre=sportscast  # analyze a catalog genre
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/baselines.h"
#include "core/dp_scheduler.h"
#include "core/efficiency_solver.h"
#include "core/playback.h"
#include "core/schedule.h"
#include "ldev/equivalent_bandwidth.h"
#include "markov/fitting.h"
#include "trace/analysis.h"
#include "trace/catalog.h"
#include "trace/star_wars.h"
#include "trace/trace_io.h"
#include "util/error.h"
#include "util/units.h"

namespace {

rcbr::trace::FrameTrace LoadTrace(int argc, char** argv) {
  using namespace rcbr::trace;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--genre=", 8) == 0) {
      const std::string name = argv[i] + 8;
      for (Genre genre : AllGenres()) {
        if (GenreName(genre) == name) {
          return MakeGenreTrace(genre, 2026, 28800);
        }
      }
      std::fprintf(stderr, "unknown genre '%s'\n", name.c_str());
      std::exit(1);
    }
    if (argv[i][0] != '-') return ReadTraceFile(argv[i]);
  }
  return MakeStarWarsTrace(2026, 28800);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rcbr;
  const trace::FrameTrace movie = LoadTrace(argc, argv);
  const double mean = movie.mean_rate();
  const auto w10s = static_cast<std::int64_t>(10 * movie.fps());

  std::printf("== stream ==\n");
  std::printf("frames %lld  fps %.1f  duration %.1f s\n",
              static_cast<long long>(movie.frame_count()), movie.fps(),
              movie.duration_seconds());
  std::printf("mean %.0f kb/s  instantaneous peak %.0f kb/s (%.1fx)\n",
              mean / kKbps, movie.peak_rate() / kKbps,
              movie.peak_rate() / mean);
  std::printf("sustained 10 s peak: %.2fx mean\n",
              trace::SustainedPeakRatio(movie, w10s));

  std::printf("\n== time scales ==\n");
  const auto acf = trace::Autocorrelation(
      movie, {1, 12, static_cast<std::int64_t>(movie.fps()),
              static_cast<std::int64_t>(10 * movie.fps())});
  std::printf("autocorrelation: lag 1 frame %.2f, 1 GOP %.2f, 1 s %.2f, "
              "10 s %.2f\n",
              acf[0], acf[1], acf[2], acf[3]);
  std::printf("index of dispersion: GOP window %.1f, 10 s window %.1f\n",
              trace::IndexOfDispersion(movie, 12),
              trace::IndexOfDispersion(movie, w10s));
  const auto scenes = trace::DetectScenes(movie);
  const trace::SceneStats scene_stats =
      trace::SummarizeScenes(movie, scenes, 3.0);
  std::printf("scenes: %lld (mean %.1f s, longest %.1f s), %.1f%% of time "
              "in >3x-mean scenes\n",
              static_cast<long long>(scene_stats.scene_count),
              scene_stats.mean_scene_seconds, scene_stats.max_scene_seconds,
              100.0 * scene_stats.sustained_peak_time_fraction);

  std::printf("\n== one-shot descriptor cost (sigma, rho) ==\n");
  for (double sigma_kb : {300.0, 3000.0, 30000.0}) {
    const double rho = core::MinRateForLoss(
        movie.frame_bits(), sigma_kb * kKilobit, 1e-6, 1e-3) *
                       movie.fps();
    std::printf("buffer %8.0f kb -> CBR rate %7.0f kb/s (%.2fx mean)\n",
                sigma_kb, rho / kKbps, rho / mean);
  }

  std::printf("\n== fitted multiple-time-scale model ==\n");
  try {
    const markov::FittedModel fitted = markov::FitMultiTimescale(movie);
    std::printf("levels (kb/s):");
    for (std::size_t k = 0; k < fitted.level_bits_per_slot.size(); ++k) {
      std::printf(" %.0f (%.0f%%)",
                  fitted.level_bits_per_slot[k] * movie.fps() / kKbps,
                  100.0 * fitted.occupancy[k]);
    }
    std::printf("\nscene-change probability per frame: %.2e\n",
                fitted.epsilon);
    const double theta = ldev::QosExponent(300 * kKilobit, 1e-6);
    std::printf("model equivalent bandwidth @300kb/1e-6: %.0f kb/s\n",
                ldev::MultiTimescaleEquivalentBandwidth(fitted.source,
                                                        theta) *
                    movie.fps() / kKbps);
  } catch (const Error& e) {
    std::printf("(model fit unavailable: %s)\n", e.what());
  }

  std::printf("\n== RCBR schedule (300 kb buffer) ==\n");
  core::DpOptions options;
  const double top =
      std::max(2560.0 * kKilobit, 1.2 * movie.peak_rate());
  for (int k = 0; k <= 40; ++k) {
    options.rate_levels.push_back(top / 40.0 / movie.fps() *
                                  static_cast<double>(k));
  }
  options.buffer_bits = 300 * kKilobit;
  options.cost = {1.0, 1.0 / movie.fps()};
  options.buffer_quantum_bits = 2 * kKilobit;
  options.decision_period = 6;
  core::EfficiencyTarget target;
  target.min_efficiency = 0.95;
  try {
    const core::DpResult dp =
        core::SolveForEfficiency(movie.frame_bits(), options, target);
    const core::ScheduleMetrics m = core::EvaluateSchedule(
        movie.frame_bits(), dp.schedule, options.buffer_bits,
        movie.slot_seconds(), options.cost);
    const double cbr = core::MinRateForLoss(movie.frame_bits(),
                                            options.buffer_bits, 1e-6,
                                            1e-3) *
                       movie.fps();
    std::printf("renegotiate every %.1f s -> mean reservation %.0f kb/s "
                "(efficiency %.1f%%)\n",
                m.mean_interval_seconds,
                dp.schedule.Mean() * movie.fps() / kKbps,
                100.0 * m.bandwidth_efficiency);
    std::printf("a one-shot CBR at the same buffer needs %.0f kb/s: RCBR "
                "saves %.0f%%\n",
                cbr / kKbps,
                100.0 * (1.0 - dp.schedule.Mean() * movie.fps() / cbr));
    const core::PlaybackAnalysis playback =
        core::AnalyzePlayback(movie.frame_bits(), dp.schedule);
    std::printf("stored-video startup delay: %.2f s, client buffer "
                "%.0f kb\n",
                static_cast<double>(playback.min_startup_slots) /
                    movie.fps(),
                playback.client_buffer_bits / kKilobit);
  } catch (const Error& e) {
    std::printf("(scheduling failed: %s)\n", e.what());
  }
  return 0;
}
