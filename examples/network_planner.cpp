// Network planner (Sec. III-C): RCBR video calls across a small ISP
// backbone with alternate routes.
//
// Topology: two POPs connected by two parallel 2-hop paths through
// different core switches, plus local single-hop traffic on every link.
//
//        [A] --l0-- [core1] --l1-- [B]
//        [A] --l2-- [core2] --l3-- [B]
//
// Video calls A->B may take either path. The planner question: does
// call-level load balancing let the backbone run hotter before the
// renegotiation failure probability degrades? (The paper flags this as
// an open research area; the multi-hop simulator answers it.)
#include <cstdio>
#include <vector>

#include "util/rng.h"

#include "core/dp_scheduler.h"
#include "sim/network.h"
#include "trace/star_wars.h"
#include "util/units.h"

int main() {
  using namespace rcbr;
  const trace::FrameTrace movie = trace::MakeStarWarsTrace(8, 14400);

  // One RCBR profile for all calls (randomly phased per call).
  core::DpOptions options;
  for (int k = 0; k <= 40; ++k) {
    options.rate_levels.push_back(64.0 * kKilobit / movie.fps() * k);
  }
  options.buffer_bits = 300 * kKilobit;
  options.cost = {3000.0, 1.0 / movie.fps()};
  options.buffer_quantum_bits = 2 * kKilobit;
  options.decision_period = 6;
  options.final_buffer_bits = 0.0;
  const core::DpResult dp =
      core::ComputeOptimalSchedule(movie.frame_bits(), options);
  std::vector<Step> bps;
  for (const Step& s : dp.schedule.steps()) {
    bps.push_back({s.start, s.value * movie.fps()});
  }
  const sim::CallProfile profile{
      PiecewiseConstant(std::move(bps), dp.schedule.length()),
      movie.slot_seconds()};
  const double call_mean = profile.rates_bps.Mean();
  const double duration = profile.duration_seconds();

  std::printf(
      "backbone: 4 links x %.0f Mb/s; A->B calls may use l0+l1 or "
      "l2+l3\n\n",
      24 * call_mean / kMbps);
  std::printf("%-22s %10s %12s %12s %12s\n", "routing @ load", "blocking",
              "failure", "l0_util", "l2_util");

  for (double load : {0.7, 0.9, 1.1}) {
    for (int balanced = 0; balanced <= 1; ++balanced) {
      sim::NetworkSimOptions net;
      net.link_capacities_bps.assign(4, 24 * call_mean);
      const double lambda_local =
          0.5 * load * 24 / duration;  // per-link local traffic
      for (std::size_t l = 0; l < 4; ++l) {
        net.classes.push_back({{{l}}, lambda_local, 0});
      }
      // A->B video: offered at half a path's capacity times load.
      net.classes.push_back(
          {{{0, 1}, {2, 3}}, 0.9 * load * 24 / duration, 0});
      net.least_loaded_routing = balanced == 1;
      net.warmup_seconds = 3 * duration;
      net.sample_intervals = 12;
      net.interval_seconds = duration;
      Rng rng(77);
      const sim::NetworkSimResult r =
          sim::RunNetworkSim({profile}, net, rng);
      const auto& video = r.per_class.back();
      std::printf("%-11s load %.1f %10.3f %12.2e %12.3f %12.3f\n",
                  balanced ? "least-load" : "first-fit", load,
                  video.blocking_probability(),
                  video.overall_failure_probability(),
                  r.mean_link_utilization[0], r.mean_link_utilization[2]);
    }
  }
  std::printf(
      "\nreading: first-fit piles the video onto l0+l1 (l2 idle) and "
      "fails earlier;\nleast-loaded placement spreads the calls and "
      "holds the failure probability\ndown at the same offered load — "
      "the compensation Sec. III-C hypothesizes.\n");
  return 0;
}
