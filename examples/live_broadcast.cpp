// Live broadcast (Sec. III-A2, online sources; Sec. IV-B heuristic).
//
// An interactive encoder cannot precompute its schedule: a monitor in the
// session layer watches the buffer between the encoder and the network
// and renegotiates on the fly with the AR(1) heuristic (eqs. 6-8). This
// example runs a live camera feed over a constrained uplink, injects a
// congestion episode (a competing reservation appears mid-broadcast), and
// shows the three-way tradeoff of Sec. III-A1 between buffer build-up,
// requested rate, and renegotiation frequency — including how the source
// degrades gracefully when a renegotiation fails and recovers afterwards.
#include <cstdio>

#include "core/rcbr_source.h"
#include "signaling/path.h"
#include "trace/star_wars.h"
#include "util/units.h"

int main() {
  using namespace rcbr;
  // A 4-minute live feed (we synthesize it, but the source sees it frame
  // by frame — nothing is precomputed).
  const trace::FrameTrace feed = trace::MakeStarWarsTrace(/*seed=*/9, 5760);

  // The uplink fits the action-scene rate (~4.4x mean ~ 1.7 Mb/s) plus
  // the heuristic's buffer-flush spikes on top.
  signaling::PortController uplink(6 * kMbps);
  signaling::SignalingPath path({&uplink}, 5 * kMillisecond);

  core::HeuristicOptions heuristic;  // the paper's Fig. 2 parameters
  heuristic.low_threshold_bits = 10 * kKilobit;
  heuristic.high_threshold_bits = 150 * kKilobit;
  heuristic.time_constant_slots = 5;
  heuristic.granularity_bits_per_slot = 100.0 * kKilobit / feed.fps();
  heuristic.initial_rate_bits_per_slot = feed.mean_rate() / feed.fps();
  // The camera knows its uplink: never ask for more than the port has.
  heuristic.max_rate_bits_per_slot = 6 * kMbps / feed.fps();

  core::RcbrSource camera = core::RcbrSource::Online(
      /*vci=*/1, heuristic, feed.slot_seconds(), 300 * kKilobit, &path);
  if (!camera.Connect()) {
    std::printf("uplink refused the initial reservation\n");
    return 1;
  }

  std::printf("%8s %12s %12s %10s %8s\n", "time_s", "rate_kbps",
              "buffer_kb", "failures", "lost_kb");
  const std::int64_t congestion_start = feed.frame_count() / 3;
  const std::int64_t congestion_end = 2 * feed.frame_count() / 3;
  for (std::int64_t t = 0; t < feed.frame_count(); ++t) {
    if (t == congestion_start) {
      // A competing flow grabs most of the uplink.
      uplink.AdmitConnection(99, 4500 * kKbps);
      std::printf("-- congestion: competitor reserves 4.5 Mb/s --\n");
    }
    if (t == congestion_end) {
      uplink.ReleaseConnection(99);
      std::printf("-- competitor left --\n");
    }
    camera.Step(feed.bits(t));
    if (t % (10 * static_cast<std::int64_t>(feed.fps())) == 0) {
      std::printf("%8.0f %12.0f %12.1f %10lld %8.1f\n",
                  static_cast<double>(t) * feed.slot_seconds(),
                  camera.granted_rate() * feed.fps() / kKbps,
                  camera.buffer_occupancy_bits() / kKilobit,
                  static_cast<long long>(
                      camera.stats().renegotiation_failures),
                  camera.stats().lost_bits / kKilobit);
    }
  }

  const core::SourceStats& stats = camera.stats();
  std::printf(
      "\nbroadcast done: %lld renegotiations (%.1f s mean interval), "
      "%lld failed, loss fraction %.2e, peak buffer %.0f kb\n",
      static_cast<long long>(stats.renegotiation_attempts),
      feed.duration_seconds() /
          static_cast<double>(stats.renegotiation_attempts + 1),
      static_cast<long long>(stats.renegotiation_failures),
      stats.loss_fraction(), stats.max_buffer_bits / kKilobit);
  camera.Disconnect();
  return 0;
}
