// Stored-video server (Sec. III-A2, offline sources).
//
// A video-on-demand server holds a library of movies. For each title it
// precomputes the optimal renegotiation schedule once; every playback then
// renegotiates *in anticipation* of rate changes, paying nothing at
// runtime beyond one RM cell per renegotiation. This example streams a
// small library across a shared 3-hop backbone and reports per-title and
// aggregate statistics, demonstrating the statistical multiplexing gain
// over peak-rate (CBR) provisioning.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/baselines.h"
#include "core/dp_scheduler.h"
#include "core/rcbr_source.h"
#include "signaling/path.h"
#include "trace/star_wars.h"
#include "util/rng.h"
#include "util/units.h"

int main() {
  using namespace rcbr;
  constexpr int kTitles = 12;
  constexpr std::int64_t kFrames = 2880;  // 2-minute clips

  // The backbone: three hops, each 8 Mb/s. Static CBR provisioning of
  // these 12 titles would need ~10 Mb/s (printed below); RCBR fits them
  // with room to spare.
  std::vector<std::unique_ptr<signaling::PortController>> ports;
  std::vector<signaling::PortController*> raw;
  for (int i = 0; i < 3; ++i) {
    ports.push_back(std::make_unique<signaling::PortController>(8 * kMbps));
    raw.push_back(ports.back().get());
  }
  signaling::SignalingPath path(std::move(raw), 2 * kMillisecond);

  // Ingest the library: synthesize per-title traces, precompute schedules.
  std::printf("%-8s %10s %10s %10s %8s\n", "title", "mean_kbps",
              "cbr_kbps", "rcbr_kbps", "renegs");
  core::DpOptions options;
  options.buffer_bits = 300 * kKilobit;
  options.cost = {3000.0, 1.0 / trace::kStarWarsFps};
  options.buffer_quantum_bits = 2.0 * kKilobit;
  options.decision_period = 6;
  options.final_buffer_bits = 0.0;  // playbacks start at random phases
  for (int k = 0; k <= 40; ++k) {
    options.rate_levels.push_back(64.0 * kKilobit / trace::kStarWarsFps * k);
  }

  std::vector<trace::FrameTrace> library;
  std::vector<PiecewiseConstant> schedules;
  double total_cbr = 0;
  double total_rcbr_mean = 0;
  for (int title = 0; title < kTitles; ++title) {
    library.push_back(
        trace::MakeStarWarsTrace(1000 + static_cast<std::uint64_t>(title),
                                 kFrames));
    const auto& movie = library.back();
    const core::DpResult dp =
        core::ComputeOptimalSchedule(movie.frame_bits(), options);
    schedules.push_back(dp.schedule);
    // What a static CBR reservation would need at the same buffer/loss.
    const double cbr =
        core::MinRateForLoss(movie.frame_bits(), options.buffer_bits, 1e-6) *
        movie.fps();
    total_cbr += cbr;
    total_rcbr_mean += dp.schedule.Mean() * movie.fps();
    std::printf("movie-%02d %10.0f %10.0f %10.0f %8lld\n", title,
                movie.mean_rate() / kKbps, cbr / kKbps,
                dp.schedule.Mean() * movie.fps() / kKbps,
                static_cast<long long>(dp.schedule.change_count()));
  }
  std::printf(
      "\nprovisioning: static CBR would reserve %.1f Mb/s; RCBR averages "
      "%.1f Mb/s on a %.0f Mb/s backbone\n\n",
      total_cbr / kMbps, total_rcbr_mean / kMbps, 8.0);

  // Serve all titles concurrently (staggered starts via circular shifts).
  Rng rng(7);
  std::vector<core::RcbrSource> sessions;
  std::vector<trace::FrameTrace> shifted;
  sessions.reserve(kTitles);
  for (int title = 0; title < kTitles; ++title) {
    const std::int64_t shift = rng.UniformInt(0, kFrames - 1);
    shifted.push_back(library[static_cast<std::size_t>(title)].CircularShift(
        shift));
    sessions.push_back(core::RcbrSource::Offline(
        static_cast<std::uint64_t>(title) + 1,
        schedules[static_cast<std::size_t>(title)].Rotate(shift),
        shifted.back().slot_seconds(), options.buffer_bits, &path));
    if (!sessions.back().Connect()) {
      std::printf("movie-%02d blocked at setup\n", title);
      return 1;
    }
  }
  for (std::int64_t t = 0; t < kFrames; ++t) {
    for (int title = 0; title < kTitles; ++title) {
      sessions[static_cast<std::size_t>(title)].Step(
          shifted[static_cast<std::size_t>(title)].bits(t));
    }
  }

  std::int64_t attempts = 0;
  std::int64_t failures = 0;
  double lost = 0;
  double arrived = 0;
  for (auto& s : sessions) {
    attempts += s.stats().renegotiation_attempts;
    failures += s.stats().renegotiation_failures;
    lost += s.stats().lost_bits;
    arrived += s.stats().arrived_bits;
    s.Disconnect();
  }
  std::printf(
      "served %d concurrent streams: %lld renegotiations, %lld failed "
      "(%.2f%%), bit loss %.2e\n",
      kTitles, static_cast<long long>(attempts),
      static_cast<long long>(failures),
      attempts > 0 ? 100.0 * static_cast<double>(failures) /
                         static_cast<double>(attempts)
                   : 0.0,
      arrived > 0 ? lost / arrived : 0.0);
  std::printf("port stats (hop 0): %lld accepted, %lld denied\n",
              static_cast<long long>(ports[0]->stats().delta_accepted),
              static_cast<long long>(ports[0]->stats().delta_denied));
  return 0;
}
