// Quickstart: the RCBR pipeline in ~60 lines.
//
//  1. Get a VBR video workload (here: the bundled Star-Wars-like
//     synthesizer; rcbr::trace::ReadTraceFile loads real trace files).
//  2. Compute an optimal renegotiation schedule for a 300 kb buffer.
//  3. Play the source through a switch port via RM-cell signaling.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/dp_scheduler.h"
#include "core/rcbr_source.h"
#include "core/schedule.h"
#include "signaling/path.h"
#include "trace/star_wars.h"
#include "util/units.h"

int main() {
  using namespace rcbr;

  // 1. A two-minute Star-Wars-like clip at 24 fps, mean rate 374 kb/s.
  const trace::FrameTrace clip = trace::MakeStarWarsTrace(/*seed=*/1, 2880);
  std::printf("clip: %lld frames, mean %.0f kb/s, peak %.0f kb/s\n",
              static_cast<long long>(clip.frame_count()),
              clip.mean_rate() / kKbps, clip.peak_rate() / kKbps);

  // 2. Optimal renegotiation schedule: 64 kb/s rate grid, 300 kb buffer,
  //    renegotiations priced so they happen every ~10 s.
  core::DpOptions options;
  for (int k = 0; k <= 40; ++k) {
    options.rate_levels.push_back(64.0 * kKilobit / clip.fps() * k);
  }
  options.buffer_bits = 300 * kKilobit;
  options.cost = {/*per renegotiation=*/3000.0,
                  /*per bandwidth-slot=*/1.0 / clip.fps()};
  // Coalesce near-identical trellis states: a 2 kb buffer grid and
  // quarter-second decision points keep the exact-DP state explosion
  // (Sec. IV-A's runtime discussion) at bay with <1% cost excess.
  options.buffer_quantum_bits = 2 * kKilobit;
  options.decision_period = 6;
  const core::DpResult dp =
      core::ComputeOptimalSchedule(clip.frame_bits(), options);
  const core::ScheduleMetrics metrics = core::EvaluateSchedule(
      clip.frame_bits(), dp.schedule, options.buffer_bits,
      clip.slot_seconds(), options.cost);
  std::printf(
      "schedule: %lld renegotiations (every %.1f s), bandwidth "
      "efficiency %.1f%%\n",
      static_cast<long long>(metrics.renegotiations),
      metrics.mean_interval_seconds, 100.0 * metrics.bandwidth_efficiency);

  // 3. Run the source against a real signaling path.
  signaling::PortController port(45 * kMbps);
  signaling::SignalingPath path({&port}, 1 * kMillisecond);
  core::RcbrSource source = core::RcbrSource::Offline(
      /*vci=*/1, dp.schedule, clip.slot_seconds(), options.buffer_bits,
      &path);
  if (!source.Connect()) {
    std::printf("connection blocked!\n");
    return 1;
  }
  for (std::int64_t t = 0; t < clip.frame_count(); ++t) {
    source.Step(clip.bits(t));
  }
  std::printf(
      "playback: %lld/%lld renegotiations failed, %.0f bits lost, max "
      "buffer %.0f kb\n",
      static_cast<long long>(source.stats().renegotiation_failures),
      static_cast<long long>(source.stats().renegotiation_attempts),
      source.stats().lost_bits, source.stats().max_buffer_bits / kKilobit);
  source.Disconnect();
  return 0;
}
