// Daemon loopback: the socket-based RCBR service surviving real faults.
//
//  1. Start an rcbrd admission server and a deterministic impairment
//     proxy on 127.0.0.1 (all in this process — the same machinery the
//     `rcbrd` and `rcbr_chaos` binaries run).
//  2. Schedule an impairment plan: a signaling loss burst, a controller
//     crash/restart, and a mid-session drain (the SIGTERM stand-in).
//  3. Drive a seeded multi-time-scale source through it and verify the
//     failure model's promise: the session completes, and after every
//     crash the client and server agree on the granted rate byte-exactly.
//
// Build & run:  ./build/examples/daemon_loopback
#include <cstdio>

#include "net/chaos.h"

int main() {
  using namespace rcbr;

  net::ChaosOptions chaos;
  chaos.client.seed = 1;
  chaos.client.slots = 300;
  chaos.client.slot_seconds = 0.01;  // 10 ms slots, 3 s session
  chaos.client.ladder =
      sim::RateLadder::FromScales({1.0, 0.5, 0.25}, {1.0, 0.5, 0.25});
  chaos.client.heuristic.initial_rate_bits_per_slot = 32e3;
  chaos.client.heuristic.granularity_bits_per_slot = 4e3;
  chaos.client.heuristic.max_rate_bits_per_slot = 96e3;
  chaos.server.capacity_bps = 10e6;
  chaos.server.drain_at_slot = 270;  // graceful drain near the end

  // The fault schedule, in sim seconds on the client's slot clock.
  sim::fault::FaultEvent burst;
  burst.time_s = 0.5;
  burst.kind = sim::fault::FaultKind::kRmLossBurst;
  burst.duration_s = 0.3;
  burst.loss_probability = 0.35;
  chaos.plan.Add(burst);
  sim::fault::FaultEvent crash;
  crash.time_s = 1.4;
  crash.kind = sim::fault::FaultKind::kControllerCrash;
  chaos.plan.Add(crash);

  const net::ChaosResult result = net::RunChaos(chaos);

  std::printf("chaos gate: %s\n", result.Passed() ? "PASS" : "FAIL");
  std::printf(
      "  crashes survived     %llu (reconnects %lld, resyncs %lld)\n",
      static_cast<unsigned long long>(result.crash_generations),
      static_cast<long long>(result.client.reconnects),
      static_cast<long long>(result.client.resyncs));
  std::printf("  byte-exact audits    %lld desyncs\n",
              static_cast<long long>(result.desyncs));
  std::printf("  drained gracefully   %lld notice(s), Bye %s\n",
              static_cast<long long>(result.client.drain_notices),
              result.completed ? "acknowledged" : "missing");
  std::printf("  final contract       %.0f bps at rung %u\n",
              result.final_rate_bps, result.final_rung);

  // The first few lines of the canonical session log — the byte-exact,
  // seed-reproducible record CI diffs across runs.
  std::printf("\nsession log (head):\n");
  int lines = 0;
  for (std::size_t i = 0; i < result.session_canonical.size() && lines < 8;
       ++i) {
    std::putchar(result.session_canonical[i]);
    if (result.session_canonical[i] == '\n') ++lines;
  }
  return result.Passed() ? 0 : 1;
}
