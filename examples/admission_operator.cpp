// Network operator's view (Sec. VI): measurement-based admission control.
//
// An operator runs one link carrying RCBR video calls and must keep the
// renegotiation failure probability under 1e-3 while admitting as many
// calls as possible. This example compares, on identical Poisson call
// arrivals, the three policies of Sec. VI — perfect knowledge,
// memoryless certainty-equivalent, and memory-based — and prints the
// operator dashboard: blocking, achieved failure probability, and
// utilization. It reproduces the paper's punchline in miniature: the
// memoryless scheme over-admits and blows its QoS target, the memory
// scheme tracks the perfect-knowledge scheme closely.
#include <cstdio>
#include <memory>

#include "admission/descriptor.h"
#include "admission/policies.h"
#include "core/dp_scheduler.h"
#include "sim/call_sim.h"
#include "trace/star_wars.h"
#include "util/units.h"

int main() {
  using namespace rcbr;
  const trace::FrameTrace movie = trace::MakeStarWarsTrace(20260706, 14400);

  // Calls are randomly shifted copies of the movie's RCBR schedule.
  core::DpOptions options;
  for (int k = 0; k <= 40; ++k) {
    options.rate_levels.push_back(64.0 * kKilobit / movie.fps() * k);
  }
  options.buffer_bits = 300 * kKilobit;
  options.cost = {3000.0, 1.0 / movie.fps()};
  options.buffer_quantum_bits = 2 * kKilobit;
  options.decision_period = 6;
  const core::DpResult dp =
      core::ComputeOptimalSchedule(movie.frame_bits(), options);

  std::vector<Step> bps;
  for (const Step& s : dp.schedule.steps()) {
    bps.push_back({s.start, s.value * movie.fps()});
  }
  const sim::CallProfile profile{
      PiecewiseConstant(std::move(bps), dp.schedule.length()),
      movie.slot_seconds()};
  const auto descriptor = admission::DescriptorFromSchedule(profile.rates_bps);

  const double target = 1e-4;
  const double capacity = 16 * profile.rates_bps.Mean();  // a small link
  sim::CallSimOptions sim_options;
  sim_options.capacity_bps = capacity;
  sim_options.arrival_rate_per_s =
      1.0 * capacity /
      (profile.rates_bps.Mean() * profile.duration_seconds());
  sim_options.warmup_seconds = 3 * profile.duration_seconds();
  sim_options.sample_intervals = 40;
  sim_options.interval_seconds = profile.duration_seconds();

  admission::PolicyOptions policy_options;
  policy_options.target_failure_probability = target;
  for (double level : options.rate_levels) {
    policy_options.rate_grid_bps.push_back(level * movie.fps());
  }

  std::printf(
      "link: %.1f Mb/s (~%.0f calls at mean rate), offered load 1.0, "
      "target failure 1e-4\n\n",
      capacity / kMbps, capacity / profile.rates_bps.Mean());
  std::printf("%-18s %10s %12s %12s %12s\n", "policy", "blocking",
              "failure", "vs_target", "utilization");

  const auto report = [&](const char* name, sim::AdmissionPolicy& policy,
                          std::uint64_t seed) {
    Rng rng(seed);
    const sim::CallSimResult r =
        sim::RunCallSim({profile}, policy, sim_options, rng);
    std::printf("%-18s %10.3f %12.2e %11.1fx %12.3f\n", name,
                r.blocking_probability(), r.failure_probability.mean(),
                r.failure_probability.mean() / target,
                r.utilization.mean());
  };

  admission::PerfectKnowledgePolicy perfect(descriptor, capacity, target);
  std::printf("(perfect-knowledge admits at most %lld calls)\n",
              static_cast<long long>(perfect.max_calls()));
  report("perfect", perfect, 20260723);
  admission::MemorylessPolicy memoryless(policy_options);
  report("memoryless", memoryless, 20260723);
  admission::MemoryPolicy memory(policy_options);
  report("memory", memory, 20260723);

  std::printf(
      "\nreading: 'memoryless' exceeds the target because it estimates "
      "call statistics\nfrom instantaneous reservations only; 'memory' "
      "accumulates per-call histories\nand stays near both the target "
      "and the perfect-knowledge utilization.\n");
  return 0;
}
