#include "sim/scenarios.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr::sim {
namespace {

TEST(SharedBuffer, AggregatesArrivals) {
  const std::vector<std::vector<double>> arrivals = {{5, 0}, {5, 0}};
  // Total arrivals 10,0 served at 6 with shared buffer 2: slot 1 loses 2.
  const DrainResult r = SharedBufferScenario(arrivals, 6.0, 2.0);
  EXPECT_DOUBLE_EQ(r.lost_bits, 2.0);
  EXPECT_DOUBLE_EQ(r.arrived_bits, 10.0);
}

TEST(SharedBuffer, Validation) {
  EXPECT_THROW(SharedBufferScenario({}, 1.0, 1.0), InvalidArgument);
  const std::vector<std::vector<double>> ragged = {{1, 2}, {1}};
  EXPECT_THROW(SharedBufferScenario(ragged, 1.0, 1.0), InvalidArgument);
}

TEST(SharedBuffer, BeatsSegregatedBuffers) {
  // Complementary bursts: shared service absorbs what per-source CBR at
  // the same total rate cannot.
  const std::vector<std::vector<double>> arrivals = {{8, 0, 8, 0},
                                                     {0, 8, 0, 8}};
  const DrainResult shared = SharedBufferScenario(arrivals, 8.0, 0.0);
  EXPECT_DOUBLE_EQ(shared.lost_bits, 0.0);
  // Each source alone at rate 4 with zero buffer loses half.
  const DrainResult solo = CbrScenario(arrivals[0], 4.0, 0.0);
  EXPECT_GT(solo.lost_bits, 0.0);
}

TEST(RcbrScenario, AllRequestsFitNoLoss) {
  const std::vector<std::vector<double>> arrivals = {{4, 4, 1, 1},
                                                     {1, 1, 4, 4}};
  const std::vector<PiecewiseConstant> requests = {
      PiecewiseConstant({{0, 4.0}, {2, 1.0}}, 4),
      PiecewiseConstant({{0, 1.0}, {2, 4.0}}, 4)};
  const RcbrMuxResult r = RcbrScenario(arrivals, requests, 5.0, 0.0);
  EXPECT_DOUBLE_EQ(r.lost_bits(), 0.0);
  EXPECT_EQ(r.failed_renegotiations(), 0);
  // Each source changed rate once at slot 2.
  EXPECT_EQ(r.renegotiations(), 2);
}

TEST(RcbrScenario, CapacityShortfallCausesDeficitAndLoss) {
  // Both sources want rate 4 from slot 1 but capacity is 6.
  const std::vector<std::vector<double>> arrivals = {{1, 4, 4, 4},
                                                     {1, 4, 4, 4}};
  const std::vector<PiecewiseConstant> requests = {
      PiecewiseConstant({{0, 1.0}, {1, 4.0}}, 4),
      PiecewiseConstant({{0, 1.0}, {1, 4.0}}, 4)};
  const RcbrMuxResult r = RcbrScenario(arrivals, requests, 6.0, 0.0);
  EXPECT_EQ(r.failed_renegotiations(), 1);  // one source loses the race
  EXPECT_GT(r.lost_bits(), 0.0);
  // Exactly one source suffers (FIFO order deterministic).
  const bool first_suffers = r.per_source[0].lost_bits > 0;
  const bool second_suffers = r.per_source[1].lost_bits > 0;
  EXPECT_NE(first_suffers, second_suffers);
}

TEST(RcbrScenario, FreedCapacityGoesToWaiter) {
  // Source 0 holds 4 until slot 2 then drops to 0; source 1 asks for 4 at
  // slot 1 (denied, capacity 4) and must be topped up at slot 2.
  const std::vector<std::vector<double>> arrivals = {{4, 4, 0, 0},
                                                     {0, 4, 4, 4}};
  const std::vector<PiecewiseConstant> requests = {
      PiecewiseConstant({{0, 4.0}, {2, 0.0}}, 4),
      PiecewiseConstant({{0, 0.0}, {1, 4.0}}, 4)};
  const RcbrMuxResult r =
      RcbrScenario(arrivals, requests, 4.0, /*buffer=*/4.0);
  EXPECT_EQ(r.per_source[1].failed_renegotiations, 1);
  // After slot 2 the waiter holds the full rate: only slot 1's backlog
  // (4 bits buffered, within the 4-bit buffer) may persist, no loss.
  EXPECT_DOUBLE_EQ(r.lost_bits(), 0.0);
  EXPECT_GT(r.per_source[1].deficit_slots, 0.0);
}

TEST(RcbrScenario, DecreasesAlwaysSucceed) {
  const std::vector<std::vector<double>> arrivals = {{4, 1, 1, 1}};
  const std::vector<PiecewiseConstant> requests = {
      PiecewiseConstant({{0, 4.0}, {1, 1.0}}, 4)};
  const RcbrMuxResult r = RcbrScenario(arrivals, requests, 4.0, 0.0);
  EXPECT_EQ(r.renegotiations(), 1);
  EXPECT_EQ(r.failed_renegotiations(), 0);
  EXPECT_DOUBLE_EQ(r.lost_bits(), 0.0);
}

TEST(RcbrScenario, InitialAllocationNotCountedAsRenegotiation) {
  const std::vector<std::vector<double>> arrivals = {{1, 1}};
  const std::vector<PiecewiseConstant> requests = {
      PiecewiseConstant::Constant(1.0, 2)};
  const RcbrMuxResult r = RcbrScenario(arrivals, requests, 10.0, 0.0);
  EXPECT_EQ(r.renegotiations(), 0);
}

TEST(RcbrScenario, SameRateStepsAreNotRenegotiations) {
  // A schedule built from samples that repeat the running value has no
  // breakpoint there: PiecewiseConstant merges equal runs at construction
  // and RcbrScenario counts attempts by breakpoint (ChangesAt), so a
  // "renegotiation to the same rate" cannot be observed or charged.
  const std::vector<std::vector<double>> arrivals = {{2, 2, 2, 2, 2, 2}};
  const std::vector<PiecewiseConstant> requests = {
      PiecewiseConstant::FromSamples({2.0, 2.0, 3.0, 3.0, 2.0, 2.0})};
  ASSERT_EQ(requests[0].change_count(), 2);
  const RcbrMuxResult r = RcbrScenario(arrivals, requests, 10.0, 0.0);
  EXPECT_EQ(r.renegotiations(), 2);  // slots 2 and 4 only
  EXPECT_EQ(r.failed_renegotiations(), 0);
}

TEST(RcbrScenario, FailureChargedOnlyAtAttemptSlot) {
  // A source stuck in deficit accrues deficit_slots every slot but only
  // one failed renegotiation, at the breakpoint where it asked.
  const std::vector<std::vector<double>> arrivals = {{1, 1, 1, 1},
                                                     {1, 4, 4, 4}};
  const std::vector<PiecewiseConstant> requests = {
      PiecewiseConstant::Constant(4.0, 4),
      PiecewiseConstant({{0, 1.0}, {1, 4.0}}, 4)};
  const RcbrMuxResult r = RcbrScenario(arrivals, requests, 5.0, 0.0);
  EXPECT_EQ(r.per_source[1].failed_renegotiations, 1);
  EXPECT_EQ(r.per_source[1].deficit_slots, 3);
}

TEST(RcbrScenario, FailureFraction) {
  RcbrMuxResult r;
  r.per_source.resize(2);
  r.per_source[0].renegotiations = 3;
  r.per_source[0].failed_renegotiations = 1;
  r.per_source[1].renegotiations = 1;
  EXPECT_DOUBLE_EQ(r.failure_fraction(), 0.25);
}

TEST(RcbrScenario, Validation) {
  const std::vector<std::vector<double>> arrivals = {{1, 1}};
  const std::vector<PiecewiseConstant> requests = {
      PiecewiseConstant::Constant(1.0, 2),
      PiecewiseConstant::Constant(1.0, 2)};
  EXPECT_THROW(RcbrScenario(arrivals, requests, 1.0, 0.0), InvalidArgument);
  EXPECT_THROW(RcbrScenario({}, {}, 1.0, 0.0), InvalidArgument);
  const std::vector<PiecewiseConstant> short_req = {
      PiecewiseConstant::Constant(1.0, 3)};
  EXPECT_THROW(RcbrScenario(arrivals, short_req, 1.0, 0.0),
               InvalidArgument);
}

TEST(RcbrScenario, ConservationOfBits) {
  // arrived = lost + (drained or still buffered); with zero buffer and
  // sufficient capacity everything drains.
  const std::vector<std::vector<double>> arrivals = {{2, 3, 1}, {1, 1, 1}};
  const std::vector<PiecewiseConstant> requests = {
      PiecewiseConstant::Constant(3.0, 3),
      PiecewiseConstant::Constant(1.0, 3)};
  const RcbrMuxResult r = RcbrScenario(arrivals, requests, 10.0, 100.0);
  EXPECT_DOUBLE_EQ(r.arrived_bits(), 9.0);
  EXPECT_DOUBLE_EQ(r.lost_bits(), 0.0);
}

}  // namespace
}  // namespace rcbr::sim
