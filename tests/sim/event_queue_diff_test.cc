// Differential tests pinning the calendar queue to the legacy binary
// heap: both EventQueue backends must produce the identical (time, seq)
// pop sequence for any schedule. The heap is the executable spec — it is
// a std::push_heap/pop_heap over the same comparator the pre-calendar
// simulator used — so agreement here is what licenses the calendar queue
// to sit under every seeded regression pin.
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/engine/event_queue.h"
#include "util/rng.h"

namespace rcbr::sim::engine {
namespace {

struct PoppedRecord {
  double time;
  std::uint64_t seq;
  std::uint32_t kind;
  std::uint64_t a;

  friend bool operator==(const PoppedRecord&, const PoppedRecord&) = default;
};

// One schedule step: fire `pops` pops, then post `time` (payload `tag`).
struct ScheduleStep {
  int pops = 0;
  double time = 0;
  std::uint64_t tag = 0;
};

// Runs the same interleaved post/pop schedule on one backend and returns
// everything popped (including the final drain).
std::vector<PoppedRecord> Replay(EventQueue::Impl impl,
                                 const std::vector<ScheduleStep>& steps,
                                 bool reserve_hint = false) {
  EventQueue queue(impl);
  if (reserve_hint) queue.Reserve(steps.size());
  std::vector<PoppedRecord> popped;
  popped.reserve(steps.size());
  for (const ScheduleStep& step : steps) {
    for (int k = 0; k < step.pops && !queue.empty(); ++k) {
      const double peek = queue.next_time();
      const ScheduledEvent event = queue.Pop();
      EXPECT_EQ(event.time, peek);
      popped.push_back(
          {event.time, event.seq, event.payload.kind, event.payload.a});
    }
    EventPayload payload;
    payload.kind = 1;
    payload.a = step.tag;
    queue.Post(step.time, payload);
  }
  while (!queue.empty()) {
    const ScheduledEvent event = queue.Pop();
    popped.push_back(
        {event.time, event.seq, event.payload.kind, event.payload.a});
  }
  return popped;
}

void ExpectBackendsAgree(const std::vector<ScheduleStep>& steps,
                         const std::string& label) {
  const auto calendar = Replay(EventQueue::Impl::kCalendar, steps);
  const auto heap = Replay(EventQueue::Impl::kBinaryHeap, steps);
  ASSERT_EQ(calendar.size(), heap.size()) << label;
  for (std::size_t i = 0; i < calendar.size(); ++i) {
    ASSERT_EQ(calendar[i], heap[i]) << label << ": pop " << i;
  }
}

TEST(EventQueueDifferential, RandomizedHoldModelSchedules) {
  // Simulator-shaped workloads: a running clock, exponential-ish holds,
  // occasional pop bursts. Several seeds, a few thousand events each.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    std::vector<ScheduleStep> steps;
    double now = 0;
    for (int i = 0; i < 4000; ++i) {
      const int pops = rng.Uniform(0.0, 1.0) < 0.4
                           ? static_cast<int>(rng.Uniform(1.0, 4.0))
                           : 0;
      // Mix horizons: near events, far events, and a heavy same-time mode.
      double when;
      const double mode = rng.Uniform(0.0, 1.0);
      if (mode < 0.2) {
        when = now;  // exactly the current instant
      } else if (mode < 0.8) {
        when = now + rng.Uniform(0.0, 2.0);
      } else {
        when = now + rng.Uniform(0.0, 500.0);
      }
      steps.push_back({pops, when, static_cast<std::uint64_t>(i)});
      now += rng.Uniform(0.0, 0.05);
    }
    ExpectBackendsAgree(steps, "seed " + std::to_string(seed));
  }
}

TEST(EventQueueDifferential, SameTimeBurstsFireInScheduleOrder) {
  // Large bursts at identical instants: the (time, seq) tie-break is the
  // whole story, and both backends must resolve it the same way.
  std::vector<ScheduleStep> steps;
  std::uint64_t tag = 0;
  for (double t : {1.0, 1.0, 5.0, 2.5, 2.5, 2.5}) {
    for (int i = 0; i < 200; ++i) steps.push_back({0, t, tag++});
  }
  steps.push_back({300, 0.75, tag++});  // drain some, then more ties
  for (int i = 0; i < 100; ++i) steps.push_back({0, 2.5, tag++});
  ExpectBackendsAgree(steps, "same-time bursts");

  // Verify explicitly (not just differentially) that a same-time burst
  // pops in schedule order on the calendar backend.
  EventQueue queue(EventQueue::Impl::kCalendar);
  for (std::uint64_t i = 0; i < 500; ++i) {
    EventPayload payload;
    payload.kind = 1;
    payload.a = i;
    queue.Post(7.0, payload);
  }
  for (std::uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(queue.Pop().payload.a, i);
  }
}

TEST(EventQueueDifferential, SequenceCounterCeiling) {
  // Same-time ordering must hold right up to the last representable
  // sequence numbers (the counter itself cannot wrap mid-run: At/Post
  // would need ~1.8e19 schedules).
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  for (auto impl :
       {EventQueue::Impl::kCalendar, EventQueue::Impl::kBinaryHeap}) {
    EventQueue queue(impl);
    queue.ResetSequenceForTest(kMax - 4);
    for (std::uint64_t i = 0; i < 4; ++i) {
      EventPayload payload;
      payload.kind = 1;
      payload.a = i;
      queue.Post(1.0, payload);
    }
    EXPECT_EQ(queue.next_sequence(), kMax);
    for (std::uint64_t i = 0; i < 4; ++i) {
      const ScheduledEvent event = queue.Pop();
      EXPECT_EQ(event.payload.a, i);
      EXPECT_EQ(event.seq, kMax - 4 + i);
    }
  }
}

TEST(EventQueueDifferential, ReserveIsOrderNeutral) {
  Rng rng(77);
  std::vector<ScheduleStep> steps;
  double now = 0;
  for (int i = 0; i < 2000; ++i) {
    steps.push_back({i % 3 == 0 ? 1 : 0, now + rng.Uniform(0.0, 10.0),
                     static_cast<std::uint64_t>(i)});
    now += 0.01;
  }
  for (auto impl :
       {EventQueue::Impl::kCalendar, EventQueue::Impl::kBinaryHeap}) {
    const auto bare = Replay(impl, steps, /*reserve_hint=*/false);
    const auto reserved = Replay(impl, steps, /*reserve_hint=*/true);
    EXPECT_EQ(bare, reserved);
  }
}

TEST(EventQueueDifferential, HandlerAndPayloadEventsInterleave) {
  // The legacy At() closures ride the same (time, seq) order as POD
  // payloads, on both backends.
  for (auto impl :
       {EventQueue::Impl::kCalendar, EventQueue::Impl::kBinaryHeap}) {
    EventQueue queue(impl);
    std::vector<int> fired;
    queue.At(2.0, [&] { fired.push_back(0); });
    EventPayload payload;
    payload.kind = 1;
    payload.a = 1;
    queue.Post(2.0, payload);
    queue.At(1.0, [&] { fired.push_back(2); });
    queue.At(2.0, [&] { fired.push_back(3); });
    while (!queue.empty()) {
      const ScheduledEvent event = queue.Pop();
      if (event.payload.kind == kHandlerEvent) {
        queue.TakeHandler(event.payload)();
      } else {
        fired.push_back(static_cast<int>(event.payload.a));
      }
    }
    EXPECT_EQ(fired, (std::vector<int>{2, 0, 1, 3}));
  }
}

TEST(EventQueueDifferential, BackwardInTimePostsStillOrder) {
  // The engine never schedules into the past, but the queue's contract is
  // pure (time, seq) order regardless; exercise posts below the calendar's
  // settled run limit.
  std::vector<ScheduleStep> steps;
  std::uint64_t tag = 0;
  for (int i = 0; i < 50; ++i) steps.push_back({0, 100.0 + i, tag++});
  steps.push_back({10, 3.0, tag++});   // force the run to settle high...
  steps.push_back({0, 1.0, tag++});    // ...then post below it
  steps.push_back({0, 2.0, tag++});
  steps.push_back({2, 0.5, tag++});
  ExpectBackendsAgree(steps, "backward posts");
}

}  // namespace
}  // namespace rcbr::sim::engine
