// CallStore pins: the lazy RotatedSchedule view must be bit-identical to
// materializing PiecewiseConstant::Rotate(shift) (the old CallProcess
// did exactly that per admitted call), and the slot-map handle recycling
// must keep stale references detectably dead.
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/engine/call_store.h"
#include "util/piecewise.h"
#include "util/rng.h"

namespace rcbr::sim::engine {
namespace {

// Materializes what the old CallProcess stored for (base, shift) and
// compares every step's (time, rate) plus the departure time against the
// store's lazy view. Bitwise equality: EXPECT_EQ on doubles, no
// tolerance, because these values feed the pinned hexfloat regressions.
void ExpectViewMatchesRotate(const PiecewiseConstant& base,
                             std::int64_t shift, double slot_seconds,
                             double start_time) {
  CallStore store;
  const double initial = CallStore::RotatedInitialRate(base, shift);
  const CallRef ref = store.Allocate(/*id=*/1, base, shift, slot_seconds,
                                     start_time, initial, /*class_index=*/0,
                                     /*route=*/nullptr, /*path_index=*/0);
  const PiecewiseConstant rotated = base.Rotate(shift);
  EXPECT_EQ(initial, rotated.At(0)) << "shift " << shift;
  const auto& steps = rotated.steps();
  ASSERT_EQ(store.StepCount(ref.handle), steps.size()) << "shift " << shift;
  for (std::size_t k = 0; k < steps.size(); ++k) {
    EXPECT_EQ(store.StepRate(ref.handle, k), steps[k].value)
        << "shift " << shift << " step " << k;
    EXPECT_EQ(store.StepTime(ref.handle, k),
              start_time +
                  static_cast<double>(steps[k].start) * slot_seconds)
        << "shift " << shift << " step " << k;
  }
  EXPECT_FALSE(store.HasStep(ref.handle, steps.size()));
  EXPECT_EQ(store.DepartureTime(ref.handle),
            start_time +
                static_cast<double>(rotated.length()) * slot_seconds);
}

TEST(CallStoreRotation, AllShiftsOfHandAuthoredSchedules) {
  const std::vector<PiecewiseConstant> schedules = {
      PiecewiseConstant::Constant(2.0, 7),
      PiecewiseConstant({{0, 1.0}, {3, 2.0}}, 10),
      // Seam merge case: first and last values equal, so every nonzero
      // rotation merges v_{n-1}|v_0 at the wrap boundary.
      PiecewiseConstant({{0, 1.0}, {4, 3.0}, {8, 1.0}}, 12),
      // Shift landing exactly on breakpoints and mid-segment.
      PiecewiseConstant({{0, 5.0}, {1, 2.0}, {2, 5.0}, {9, 7.0}}, 11),
  };
  for (const PiecewiseConstant& base : schedules) {
    for (std::int64_t shift = 0; shift < base.length(); ++shift) {
      ExpectViewMatchesRotate(base, shift, /*slot_seconds=*/0.04,
                              /*start_time=*/123.456);
    }
  }
}

TEST(CallStoreRotation, RandomSchedulesAllShifts) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const auto length =
        static_cast<std::int64_t>(rng.Uniform(1.0, 40.0));
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(length));
    for (std::int64_t t = 0; t < length; ++t) {
      // Few distinct levels so merges (including the seam) are common.
      samples.push_back(1.0 + std::floor(rng.Uniform(0.0, 3.0)));
    }
    const auto base = PiecewiseConstant::FromSamples(samples);
    for (std::int64_t shift = 0; shift < length; ++shift) {
      ExpectViewMatchesRotate(base, shift, 1.0, 0.0);
    }
  }
}

TEST(CallStore, HandleRecyclingAndGenerations) {
  const PiecewiseConstant base = PiecewiseConstant::Constant(1.0, 4);
  CallStore store;
  store.Reserve(8);
  const CallRef a = store.Allocate(10, base, 0, 1.0, 0.0, 1.0, 0, nullptr, 0);
  const CallRef b = store.Allocate(11, base, 0, 1.0, 0.0, 1.0, 0, nullptr, 0);
  EXPECT_TRUE(store.Alive(a));
  EXPECT_TRUE(store.Alive(b));
  EXPECT_EQ(store.alive_count(), 2u);

  store.Release(a.handle);
  EXPECT_FALSE(store.Alive(a));  // stale ref reads dead
  EXPECT_TRUE(store.Alive(b));
  EXPECT_EQ(store.alive_count(), 1u);

  // LIFO recycling: the freed slot is reused under a new generation, so
  // the old ref stays dead even though the handle is live again.
  const CallRef c = store.Allocate(12, base, 0, 1.0, 0.0, 1.0, 0, nullptr, 0);
  EXPECT_EQ(c.handle, a.handle);
  EXPECT_NE(c.gen, a.gen);
  EXPECT_FALSE(store.Alive(a));
  EXPECT_TRUE(store.Alive(c));
  EXPECT_EQ(store.id(c.handle), 12u);
  EXPECT_EQ(store.slot_count(), 2u);  // no third slot was ever needed
}

TEST(CallStore, PeakAliveTracksHighWaterMark) {
  const PiecewiseConstant base = PiecewiseConstant::Constant(1.0, 4);
  CallStore store;
  std::vector<CallRef> refs;
  for (std::uint64_t i = 0; i < 5; ++i) {
    refs.push_back(store.Allocate(i, base, 0, 1.0, 0.0, 1.0, 0, nullptr, 0));
  }
  for (const CallRef& r : refs) store.Release(r.handle);
  EXPECT_EQ(store.alive_count(), 0u);
  EXPECT_EQ(store.peak_alive(), 5u);
  store.Allocate(9, base, 0, 1.0, 0.0, 1.0, 0, nullptr, 0);
  EXPECT_EQ(store.peak_alive(), 5u);  // below the high-water mark
}

TEST(CallStore, HotFieldAccessors) {
  const PiecewiseConstant base = PiecewiseConstant({{0, 1.0}, {2, 4.0}}, 6);
  const std::vector<std::size_t> route = {0, 2};
  const std::vector<std::size_t> reroute = {1};
  CallStore store;
  const CallRef ref =
      store.Allocate(42, base, 0, 0.5, 10.0, 1.0, /*class_index=*/3, &route,
                     /*path_index=*/1);
  EXPECT_EQ(store.id(ref.handle), 42u);
  EXPECT_EQ(store.class_index(ref.handle), 3u);
  EXPECT_EQ(store.route(ref.handle), &route);
  EXPECT_EQ(store.path_index(ref.handle), 1u);
  EXPECT_EQ(store.rate_bps(ref.handle), 1.0);
  store.set_rate_bps(ref.handle, 4.0);
  store.set_route(ref.handle, &reroute);
  store.set_path_index(ref.handle, 0);
  EXPECT_EQ(store.rate_bps(ref.handle), 4.0);
  EXPECT_EQ(store.route(ref.handle), &reroute);
  EXPECT_EQ(store.path_index(ref.handle), 0u);
}

}  // namespace
}  // namespace rcbr::sim::engine
