#include "sim/min_rate.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace rcbr::sim {
namespace {

TEST(EstimateLoss, DeterministicSampleStopsFast) {
  MinRateOptions options;
  options.min_replications = 4;
  const OnlineStats stats = EstimateLoss(
      [](double, std::uint64_t) { return 0.05; }, 1.0, options);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.05);
}

TEST(EstimateLoss, NoisySampleUsesMoreReplications) {
  MinRateOptions options;
  options.relative_precision = 0.05;
  options.min_replications = 4;
  options.max_replications = 4096;
  rcbr::Rng rng(3);
  const OnlineStats stats = EstimateLoss(
      [&rng](double, std::uint64_t) { return rng.Uniform(0.0, 0.2); }, 1.0,
      options);
  EXPECT_GT(stats.count(), 20u);
  EXPECT_NEAR(stats.mean(), 0.1, 0.02);
}

TEST(EstimateLoss, EarlyExitWhenClearlyBelowTarget) {
  MinRateOptions options;
  options.target = 1e-3;
  options.relative_precision = 1e-9;  // precision rule alone would run long
  options.max_replications = 10000;
  std::uint64_t calls = 0;
  const OnlineStats stats = EstimateLoss(
      [&calls](double, std::uint64_t) {
        ++calls;
        return 1e-7 * static_cast<double>(1 + (calls % 3));
      },
      1.0, options);
  EXPECT_LT(stats.count(), 100u);
}

TEST(FindMinRate, DeterministicThreshold) {
  // loss(c) = max(0, 1 - c/8): hits 1e-6 near c = 8.
  MinRateOptions options;
  options.target = 1e-6;
  options.rate_tolerance = 1e-4;
  const double c = FindMinRate(
      [](double rate, std::uint64_t) {
        return std::max(0.0, 1.0 - rate / 8.0);
      },
      0.0, 16.0, options);
  EXPECT_NEAR(c, 8.0, 0.01);
  EXPECT_GE(c, 8.0 - 1e-5);
}

TEST(FindMinRate, ReturnsLoIfAlreadyFeasible) {
  MinRateOptions options;
  const double c = FindMinRate(
      [](double, std::uint64_t) { return 0.0; }, 2.0, 10.0, options);
  EXPECT_DOUBLE_EQ(c, 2.0);
}

TEST(FindMinRate, ThrowsWhenHiInfeasible) {
  MinRateOptions options;
  options.target = 1e-6;
  EXPECT_THROW(FindMinRate([](double, std::uint64_t) { return 1.0; }, 0.0,
                           1.0, options),
               InvalidArgument);
}

TEST(FindMinRate, NoisyLossStillConverges) {
  // Loss with multiplicative noise around a steep threshold.
  rcbr::Rng rng(11);
  MinRateOptions options;
  options.target = 0.01;
  options.rate_tolerance = 0.01;
  options.max_replications = 64;
  const double c = FindMinRate(
      [&rng](double rate, std::uint64_t) {
        const double base = rate < 5.0 ? 0.2 : 0.001;
        return base * rng.Uniform(0.8, 1.2);
      },
      0.0, 10.0, options);
  EXPECT_GT(c, 4.5);
  EXPECT_LT(c, 5.6);
}

}  // namespace
}  // namespace rcbr::sim
