#include "sim/rate_ladder.h"

#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "sim/call_sim.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::sim {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(RateLadder, DefaultIsTheScalarContract) {
  const RateLadder ladder;
  EXPECT_TRUE(ladder.empty());
  EXPECT_EQ(ladder.depth(), 0u);
}

TEST(RateLadder, ScalarIsTheDepthOneLadder) {
  const RateLadder ladder = RateLadder::Scalar();
  EXPECT_EQ(ladder.depth(), 1u);
  EXPECT_EQ(ladder.rung(0).scale, 1.0);
  EXPECT_EQ(ladder.rung(0).utility, 1.0);
}

TEST(RateLadder, ValidatesOnConstruction) {
  EXPECT_THROW(RateLadder(std::vector<RateRung>{}),
               InvalidArgument);  // depth 0
  EXPECT_THROW(RateLadder({{0.9, 1.0}}), InvalidArgument);  // rung 0 != 1
  EXPECT_THROW(RateLadder({{1.0, 1.0}, {1.5, 1.0}}),
               InvalidArgument);  // scale > 1
  EXPECT_THROW(RateLadder({{1.0, 1.0}, {-0.5, 1.0}}),
               InvalidArgument);  // negative scale
  EXPECT_THROW(RateLadder({{1.0, 1.0}, {0.0, 1.0}}),
               InvalidArgument);  // zero scale
  EXPECT_THROW(RateLadder({{1.0, 1.0}, {kNan, 1.0}}),
               InvalidArgument);  // NaN scale
  EXPECT_THROW(RateLadder({{1.0, 1.0}, {0.5, 1.0}, {0.7, 1.0}}),
               InvalidArgument);  // increasing
  EXPECT_THROW(RateLadder({{1.0, 1.0}, {0.5, -1.0}}),
               InvalidArgument);  // negative utility
  EXPECT_THROW(RateLadder({{1.0, 1.0}, {0.5, kNan}}),
               InvalidArgument);  // NaN utility
  EXPECT_THROW(RateLadder::FromScales({1.0, 0.5}, {1.0}),
               InvalidArgument);  // size mismatch
  // Equal adjacent scales are legal (non-increasing, not strict).
  EXPECT_NO_THROW(RateLadder::FromScales({1.0, 0.5, 0.5}, {1.0, 0.6, 0.5}));
}

TEST(RateLadder, RateAtRungZeroIsBitExact) {
  const RateLadder ladder =
      RateLadder::FromScales({1.0, 0.7}, {1.0, 0.8});
  // The depth-1 byte-identity pins rest on rung 0 applying no float op
  // at all, not merely an exact multiply.
  const double odd = 0x1.23456789abcdfp+20;
  EXPECT_EQ(ladder.RateAt(0, odd), odd);
  EXPECT_EQ(ladder.RateAt(1, odd), odd * 0.7);
  EXPECT_EQ(ladder.utility(1), 0.8);
}

// --- ladder semantics through the call-level simulator ---

CallSimOptions SaturatedLink() {
  CallSimOptions options;
  options.capacity_bps = 10.0;
  options.arrival_rate_per_s = 0.2;
  options.warmup_seconds = 100.0;
  options.sample_intervals = 6;
  options.interval_seconds = 150.0;
  return options;
}

const CallProfile kProfile{PiecewiseConstant({{0, 1.0}, {50, 2.0}}, 100),
                           1.0};

TEST(LadderCallSim, DepthOneMatchesScalarBitForBit) {
  // The scalar contract and the depth-1 ladder must execute the exact
  // same operation sequence: same RNG draws, same float ops, same
  // admission decisions. Only the utility accounting differs (the
  // ladder run integrates 1.0/s per alive call; the scalar run skips
  // accounting entirely).
  auto run = [&](const RateLadder& ladder) {
    CapacityOnlyPolicy policy;
    CallSimOptions options = SaturatedLink();
    options.ladder = ladder;
    Rng rng(12345);
    return RunCallSim({kProfile}, policy, options, rng);
  };
  const CallSimResult scalar = run({});
  const CallSimResult depth1 = run(RateLadder::Scalar());
  EXPECT_EQ(scalar.offered_calls, depth1.offered_calls);
  EXPECT_EQ(scalar.blocked_calls, depth1.blocked_calls);
  EXPECT_EQ(scalar.upward_attempts, depth1.upward_attempts);
  EXPECT_EQ(scalar.failed_attempts, depth1.failed_attempts);
  EXPECT_EQ(scalar.failure_probability.mean(),
            depth1.failure_probability.mean());
  EXPECT_EQ(scalar.utilization.mean(), depth1.utilization.mean());
  EXPECT_EQ(scalar.utilization.stddev(), depth1.utilization.stddev());
  // Depth 1 never downgrades or upgrades.
  EXPECT_EQ(depth1.downgraded_admits, 0);
  EXPECT_EQ(depth1.upgrades, 0);
  EXPECT_EQ(scalar.utility_seconds, 0.0);
  EXPECT_GT(depth1.utility_seconds, 0.0);
}

TEST(LadderCallSim, SaturationDowngradesInsteadOfBlocking) {
  auto run = [&](const RateLadder& ladder) {
    CapacityOnlyPolicy policy;
    CallSimOptions options = SaturatedLink();
    options.ladder = ladder;
    Rng rng(12345);
    return RunCallSim({kProfile}, policy, options, rng);
  };
  const CallSimResult scalar = run({});
  const CallSimResult ladder =
      run(RateLadder::FromScales({1.0, 0.5}, {1.0, 0.6}));
  EXPECT_GT(ladder.downgraded_admits, 0);
  EXPECT_LT(ladder.blocked_calls, scalar.blocked_calls);
  EXPECT_EQ(ladder.offered_calls, scalar.offered_calls);
}

TEST(LadderCallSim, DeparturesPromoteWaitingCalls) {
  CapacityOnlyPolicy policy;
  CallSimOptions options = SaturatedLink();
  options.ladder = RateLadder::FromScales({1.0, 0.5}, {1.0, 0.6});
  Rng rng(12345);
  const CallSimResult r = RunCallSim({kProfile}, policy, options, rng);
  EXPECT_GT(r.upgrades, 0);
  // A depth-2 ladder promotes each downgraded call at most once.
  EXPECT_LE(r.upgrades, r.downgraded_admits);
  EXPECT_GT(r.utility_seconds, 0.0);
}

TEST(LadderCallSim, DeterministicAcrossRuns) {
  auto run = [&] {
    CapacityOnlyPolicy policy;
    CallSimOptions options = SaturatedLink();
    options.ladder = RateLadder::FromScales({1.0, 0.7, 0.5},
                                            {1.0, 0.8, 0.6});
    Rng rng(777);
    return RunCallSim({kProfile}, policy, options, rng);
  };
  const CallSimResult a = run();
  const CallSimResult b = run();
  EXPECT_EQ(a.downgraded_admits, b.downgraded_admits);
  EXPECT_EQ(a.upgrades, b.upgrades);
  EXPECT_EQ(a.blocked_calls, b.blocked_calls);
  EXPECT_EQ(a.utility_seconds, b.utility_seconds);
  EXPECT_EQ(a.utilization.mean(), b.utilization.mean());
}

}  // namespace
}  // namespace rcbr::sim
