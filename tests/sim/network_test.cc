#include "sim/network.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr::sim {
namespace {

CallProfile TwoLevel(double lo, double hi, std::int64_t slots = 100) {
  return {PiecewiseConstant({{0, lo}, {slots / 2, hi}}, slots), 1.0};
}

NetworkSimOptions BaseOptions() {
  NetworkSimOptions options;
  options.link_capacities_bps = {10.0, 10.0};
  options.warmup_seconds = 100.0;
  options.sample_intervals = 5;
  options.interval_seconds = 200.0;
  return options;
}

TEST(NetworkSim, Validation) {
  const std::vector<CallProfile> pool = {TwoLevel(1.0, 2.0)};
  Rng rng(1);
  NetworkSimOptions options = BaseOptions();
  EXPECT_THROW(RunNetworkSim({}, options, rng), InvalidArgument);
  EXPECT_THROW(RunNetworkSim(pool, options, rng), InvalidArgument);  // no classes
  options.classes.push_back({{{0, 5}}, 0.1, 0});  // link 5 out of range
  EXPECT_THROW(RunNetworkSim(pool, options, rng), InvalidArgument);
  options.classes.clear();
  options.classes.push_back({{{0}}, 0.1, 3});  // bad profile index
  EXPECT_THROW(RunNetworkSim(pool, options, rng), InvalidArgument);
}

TEST(NetworkSim, SingleLinkMatchesExpectations) {
  const std::vector<CallProfile> pool = {TwoLevel(1.0, 2.0)};
  NetworkSimOptions options = BaseOptions();
  options.link_capacities_bps = {8.0};
  options.classes.push_back({{{0}}, 0.08, 0});
  Rng rng(3);
  const NetworkSimResult r = RunNetworkSim(pool, options, rng);
  ASSERT_EQ(r.per_class.size(), 1u);
  EXPECT_GT(r.per_class[0].offered_calls, 0);
  EXPECT_GT(r.per_class[0].upward_attempts, 0);
  ASSERT_EQ(r.mean_link_utilization.size(), 1u);
  EXPECT_GT(r.mean_link_utilization[0], 0.0);
  EXPECT_LE(r.mean_link_utilization[0], 1.0 + 1e-9);
}

TEST(NetworkSim, MoreHopsMoreFailures) {
  // Sec. III-C: the tagged class crossing h congested links fails at
  // least as often as the class crossing one of them.
  const std::vector<CallProfile> pool = {TwoLevel(1.0, 2.0)};
  NetworkSimOptions options = BaseOptions();
  options.link_capacities_bps = {8.0, 8.0, 8.0, 8.0};
  // Background single-hop load on every link.
  for (std::size_t l = 0; l < 4; ++l) {
    options.classes.push_back({{{l}}, 0.05, 0});
  }
  options.classes.push_back({{{0}}, 0.01, 0});          // 1-hop tagged
  options.classes.push_back({{{0, 1, 2, 3}}, 0.01, 0}); // 4-hop tagged
  Rng rng(5);
  const NetworkSimResult r = RunNetworkSim(pool, options, rng);
  const double one_hop = r.per_class[4].overall_failure_probability();
  const double four_hop = r.per_class[5].overall_failure_probability();
  EXPECT_GE(four_hop, one_hop);
  EXPECT_GT(four_hop, 0.0);
}

TEST(NetworkSim, AmpleCapacityNoFailuresNoBlocks) {
  const std::vector<CallProfile> pool = {TwoLevel(1.0, 2.0)};
  NetworkSimOptions options = BaseOptions();
  options.link_capacities_bps = {1e6, 1e6};
  options.classes.push_back({{{0, 1}}, 0.05, 0});
  Rng rng(7);
  const NetworkSimResult r = RunNetworkSim(pool, options, rng);
  EXPECT_EQ(r.per_class[0].blocked_calls, 0);
  EXPECT_EQ(r.per_class[0].failed_attempts, 0);
}

TEST(NetworkSim, LoadBalancingUsesBothRoutes) {
  // Two parallel links; one class with both as candidates. Least-loaded
  // routing must spread reservations across them.
  const std::vector<CallProfile> pool = {TwoLevel(1.0, 2.0)};
  NetworkSimOptions options = BaseOptions();
  options.link_capacities_bps = {10.0, 10.0};
  options.classes.push_back({{{0}, {1}}, 0.15, 0});
  options.least_loaded_routing = true;
  Rng rng(9);
  const NetworkSimResult r = RunNetworkSim(pool, options, rng);
  EXPECT_GT(r.mean_link_utilization[0], 0.05);
  EXPECT_GT(r.mean_link_utilization[1], 0.05);
  const double imbalance = std::abs(r.mean_link_utilization[0] -
                                    r.mean_link_utilization[1]);
  EXPECT_LT(imbalance, 0.2);
}

TEST(NetworkSim, FirstFitPilesOntoPrimaryRoute) {
  // Without load balancing the first candidate is used whenever it fits,
  // so the alternate stays (almost) idle at moderate load.
  const std::vector<CallProfile> pool = {TwoLevel(1.0, 1.0)};
  NetworkSimOptions options = BaseOptions();
  options.link_capacities_bps = {20.0, 20.0};
  options.classes.push_back({{{0}, {1}}, 0.05, 0});
  options.least_loaded_routing = false;
  Rng rng(11);
  const NetworkSimResult r = RunNetworkSim(pool, options, rng);
  EXPECT_GT(r.mean_link_utilization[0],
            5.0 * std::max(r.mean_link_utilization[1], 1e-6));
}

TEST(NetworkSim, LoadBalancingReducesFailures) {
  // The paper's hypothesis: alternate routes + call-level balancing can
  // compensate the per-hop failure growth.
  const std::vector<CallProfile> pool = {TwoLevel(1.0, 3.0)};
  NetworkSimOptions options = BaseOptions();
  options.link_capacities_bps = {12.0, 12.0};
  options.classes.push_back({{{0}, {1}}, 0.12, 0});
  Rng a(13);
  options.least_loaded_routing = false;
  const NetworkSimResult unbalanced = RunNetworkSim(pool, options, a);
  Rng b(13);
  options.least_loaded_routing = true;
  const NetworkSimResult balanced = RunNetworkSim(pool, options, b);
  EXPECT_LE(balanced.per_class[0].overall_failure_probability(),
            unbalanced.per_class[0].overall_failure_probability() + 1e-9);
}

TEST(NetworkSim, ReservationsNeverExceedCapacity) {
  const std::vector<CallProfile> pool = {TwoLevel(2.0, 5.0)};
  NetworkSimOptions options = BaseOptions();
  options.link_capacities_bps = {9.0, 7.0};
  options.classes.push_back({{{0, 1}}, 0.2, 0});
  Rng rng(15);
  const NetworkSimResult r = RunNetworkSim(pool, options, rng);
  for (double u : r.mean_link_utilization) {
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  EXPECT_GT(r.per_class[0].blocked_calls, 0);
}

}  // namespace
}  // namespace rcbr::sim
