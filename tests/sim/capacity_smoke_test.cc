// Tier-2 capacity smoke: one RunSimulation driving millions of events
// through the calendar queue, the SoA call store, and the sharded ports,
// with a same-seed determinism re-check. This is the scaled-down stand-in
// for bench/macro_capacity's 10^6-call point, kept out of tier1 because
// it takes seconds, not milliseconds (run with `ctest -L tier2`).
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/engine/simulation.h"
#include "util/piecewise.h"
#include "util/rng.h"

namespace rcbr::sim::engine {
namespace {

constexpr std::int64_t kSlots = 128;
constexpr double kTargetCalls = 20000.0;

SimulationOptions CapacityOptions(bool tracked) {
  SimulationOptions options;
  options.link_capacities_bps = {2.0 * kTargetCalls * 1.1 + 24.0};
  options.classes.resize(1);
  options.classes[0].candidate_routes = {{0}};
  options.classes[0].arrival_rate_per_s =
      kTargetCalls / static_cast<double>(kSlots);
  options.classes[0].profile_index = 0;
  options.warmup_seconds = static_cast<double>(kSlots);
  options.sample_intervals = 3;
  options.interval_seconds = static_cast<double>(kSlots);
  options.track_connections = tracked;
  options.expected_peak_calls =
      static_cast<std::size_t>(kTargetCalls * 1.1) + 64;
  return options;
}

std::vector<CallProfile> CapacityProfiles() {
  // Alternating two-rate schedule: 32 renegotiations per call, so the
  // event count is ~118x the call count (arrival + 31 transitions +
  // departure, x4 intervals of expected concurrency turnover).
  std::vector<Step> steps;
  for (std::int64_t t = 0; t < kSlots; t += 4) {
    steps.push_back({t, (t / 4) % 2 == 0 ? 1.0 : 3.0});
  }
  return {{PiecewiseConstant(std::move(steps), kSlots), 1.0}};
}

TEST(CapacitySmoke, MillionsOfEventsSustainedAndDeterministic) {
  const std::vector<CallProfile> profiles = CapacityProfiles();
  const SimulationOptions options = CapacityOptions(/*tracked=*/false);

  Rng rng(20260809);
  const SimulationResult first = RunSimulation(profiles, options, rng);

  // ~20k concurrent calls x ~118 events each across the measured span.
  EXPECT_GT(first.events_processed, 2'000'000);
  EXPECT_GT(first.peak_concurrent_calls, 18'000);
  const ClassTotals& totals = first.per_class.front();
  EXPECT_GT(totals.offered_calls, 70'000);
  // Capacity was sized for the whole population: nothing blocks.
  EXPECT_EQ(totals.blocked_calls, 0);

  // Same seed, fresh run: bit-identical outcome counters and utilization.
  Rng rng2(20260809);
  const SimulationResult second = RunSimulation(profiles, options, rng2);
  EXPECT_EQ(second.events_processed, first.events_processed);
  EXPECT_EQ(second.peak_concurrent_calls, first.peak_concurrent_calls);
  EXPECT_EQ(second.per_class.front().offered_calls, totals.offered_calls);
  EXPECT_EQ(second.util_total, first.util_total);
}

TEST(CapacitySmoke, TrackedPortsAtScale) {
  // Same run with per-VCI audit tables on: exercises VciTable growth,
  // backshift deletion, and the resync-free tracked path at ~20k live
  // connections; tracking must not change call outcomes.
  const std::vector<CallProfile> profiles = CapacityProfiles();
  Rng rng(20260809);
  const SimulationResult tracked =
      RunSimulation(profiles, CapacityOptions(/*tracked=*/true), rng);
  Rng rng2(20260809);
  const SimulationResult untracked =
      RunSimulation(profiles, CapacityOptions(/*tracked=*/false), rng2);
  EXPECT_EQ(tracked.events_processed, untracked.events_processed);
  EXPECT_EQ(tracked.per_class.front().offered_calls,
            untracked.per_class.front().offered_calls);
  EXPECT_EQ(tracked.util_total, untracked.util_total);
}

}  // namespace
}  // namespace rcbr::sim::engine
