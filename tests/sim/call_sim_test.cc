#include "sim/call_sim.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr::sim {
namespace {

CallProfile FlatProfile(double rate_bps, std::int64_t slots,
                        double slot_seconds = 1.0) {
  return {PiecewiseConstant::Constant(rate_bps, slots), slot_seconds};
}

CallProfile TwoLevelProfile(double lo, double hi, std::int64_t slots,
                            double slot_seconds = 1.0) {
  // First half at lo, second half at hi.
  return {PiecewiseConstant({{0, lo}, {slots / 2, hi}}, slots),
          slot_seconds};
}

CallSimOptions BaseOptions() {
  CallSimOptions options;
  options.capacity_bps = 10.0;
  options.arrival_rate_per_s = 0.5;
  options.warmup_seconds = 50.0;
  options.sample_intervals = 5;
  options.interval_seconds = 100.0;
  return options;
}

TEST(CallSim, Validation) {
  CapacityOnlyPolicy policy;
  Rng rng(1);
  CallSimOptions options = BaseOptions();
  EXPECT_THROW(RunCallSim({}, policy, options, rng), InvalidArgument);
  const std::vector<CallProfile> pool = {FlatProfile(1.0, 10)};
  options.capacity_bps = 0;
  EXPECT_THROW(RunCallSim(pool, policy, options, rng), InvalidArgument);
  options = BaseOptions();
  options.arrival_rate_per_s = 0;
  EXPECT_THROW(RunCallSim(pool, policy, options, rng), InvalidArgument);
  options = BaseOptions();
  options.sample_intervals = 0;
  EXPECT_THROW(RunCallSim(pool, policy, options, rng), InvalidArgument);
}

TEST(CallSim, FlatCallsNeverRenegotiate) {
  const std::vector<CallProfile> pool = {FlatProfile(1.0, 20)};
  CapacityOnlyPolicy policy;
  Rng rng(2);
  const CallSimResult r = RunCallSim(pool, policy, BaseOptions(), rng);
  EXPECT_EQ(r.upward_attempts, 0);
  EXPECT_EQ(r.failed_attempts, 0);
  EXPECT_GT(r.offered_calls, 0);
}

TEST(CallSim, UtilizationBetweenZeroAndOne) {
  const std::vector<CallProfile> pool = {FlatProfile(1.0, 20)};
  CapacityOnlyPolicy policy;
  Rng rng(3);
  const CallSimResult r = RunCallSim(pool, policy, BaseOptions(), rng);
  EXPECT_GE(r.utilization.min(), 0.0);
  EXPECT_LE(r.utilization.max(), 1.0 + 1e-9);
  EXPECT_GT(r.utilization.mean(), 0.0);
}

TEST(CallSim, HeavyLoadBlocksCalls) {
  // Each call wants the whole link for 1000 s; arrivals every ~2 s.
  const std::vector<CallProfile> pool = {FlatProfile(10.0, 1000)};
  CapacityOnlyPolicy policy;
  Rng rng(4);
  const CallSimResult r = RunCallSim(pool, policy, BaseOptions(), rng);
  EXPECT_GT(r.blocked_calls, 0);
  EXPECT_GT(r.blocking_probability(), 0.5);
}

TEST(CallSim, RenegotiationFailuresUnderContention) {
  // Calls double their rate halfway; with a tight link some upward
  // renegotiations must fail.
  const std::vector<CallProfile> pool = {TwoLevelProfile(1.0, 2.0, 100)};
  CapacityOnlyPolicy policy;
  CallSimOptions options = BaseOptions();
  options.capacity_bps = 8.0;
  options.arrival_rate_per_s = 0.2;
  options.warmup_seconds = 200.0;
  options.sample_intervals = 10;
  options.interval_seconds = 200.0;
  Rng rng(5);
  const CallSimResult r = RunCallSim(pool, policy, options, rng);
  EXPECT_GT(r.upward_attempts, 0);
  EXPECT_GT(r.failed_attempts, 0);
  EXPECT_GT(r.overall_failure_probability(), 0.0);
  EXPECT_LT(r.overall_failure_probability(), 1.0);
}

TEST(CallSim, FailedCallKeepsOldRate) {
  // One call occupying 6/10; a second call at 3 requesting 8 must fail
  // its upgrade yet keep running at 3 (reserved never exceeds capacity).
  const std::vector<CallProfile> pool = {TwoLevelProfile(3.0, 8.0, 1000)};
  CapacityOnlyPolicy policy;
  CallSimOptions options = BaseOptions();
  options.capacity_bps = 10.0;
  options.arrival_rate_per_s = 0.05;
  Rng rng(6);
  const CallSimResult r = RunCallSim(pool, policy, options, rng);
  // Utilization can never exceed 1 if grants respect capacity.
  EXPECT_LE(r.utilization.max(), 1.0 + 1e-9);
}

TEST(CallSim, DeterministicGivenSeed) {
  const std::vector<CallProfile> pool = {TwoLevelProfile(1.0, 2.0, 50)};
  CapacityOnlyPolicy p1;
  CapacityOnlyPolicy p2;
  Rng a(7);
  Rng b(7);
  const CallSimResult r1 = RunCallSim(pool, p1, BaseOptions(), a);
  const CallSimResult r2 = RunCallSim(pool, p2, BaseOptions(), b);
  EXPECT_EQ(r1.offered_calls, r2.offered_calls);
  EXPECT_EQ(r1.blocked_calls, r2.blocked_calls);
  EXPECT_EQ(r1.upward_attempts, r2.upward_attempts);
  EXPECT_DOUBLE_EQ(r1.utilization.mean(), r2.utilization.mean());
}

TEST(CallSim, SampleCountMatchesIntervals) {
  const std::vector<CallProfile> pool = {FlatProfile(1.0, 20)};
  CapacityOnlyPolicy policy;
  CallSimOptions options = BaseOptions();
  options.sample_intervals = 7;
  Rng rng(8);
  const CallSimResult r = RunCallSim(pool, policy, options, rng);
  EXPECT_EQ(r.failure_probability.count(), 7u);
  EXPECT_EQ(r.utilization.count(), 7u);
}

TEST(CallSim, PolicyRejectionsBecomeBlocks) {
  class RejectAll final : public AdmissionPolicy {
   public:
    bool Admit(double, const LinkView&, double) override { return false; }
    void OnAdmitted(double, std::uint64_t, double) override {
      FAIL() << "admitted despite rejection";
    }
    void OnRateChange(double, std::uint64_t, double, double) override {}
    void OnDeparture(double, std::uint64_t, double) override {}
  };
  const std::vector<CallProfile> pool = {FlatProfile(1.0, 20)};
  RejectAll policy;
  Rng rng(9);
  const CallSimResult r = RunCallSim(pool, policy, BaseOptions(), rng);
  EXPECT_EQ(r.blocked_calls, r.offered_calls);
  EXPECT_DOUBLE_EQ(r.utilization.mean(), 0.0);
}

TEST(CallSim, PolicySeesConsistentLinkView) {
  class Checker final : public AdmissionPolicy {
   public:
    bool Admit(double, const LinkView& view, double) override {
      EXPECT_GE(view.reserved_bps, -1e-9);
      EXPECT_LE(view.reserved_bps, view.capacity_bps + 1e-9);
      double sum = 0;
      for (double r : *view.call_rates) sum += r;
      EXPECT_NEAR(sum, view.reserved_bps, 1e-6);
      return true;
    }
    void OnAdmitted(double, std::uint64_t, double) override {}
    void OnRateChange(double, std::uint64_t, double, double) override {}
    void OnDeparture(double, std::uint64_t, double) override {}
  };
  const std::vector<CallProfile> pool = {TwoLevelProfile(1.0, 2.0, 50)};
  Checker policy;
  Rng rng(10);
  RunCallSim(pool, policy, BaseOptions(), rng);
}

}  // namespace
}  // namespace rcbr::sim
