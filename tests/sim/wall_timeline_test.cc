// WallClockSchedule: the FaultPlan -> tick-domain compiler behind the
// impairment proxy. The proxy's determinism rests on these point
// queries being pure tick arithmetic, so the boundaries matter.

#include "sim/fault/wall_timeline.h"

#include "gtest/gtest.h"

namespace rcbr::sim::fault {
namespace {

FaultEvent Burst(double t, double dur, double loss, double delay = 0) {
  FaultEvent e;
  e.time_s = t;
  e.kind = FaultKind::kRmLossBurst;
  e.duration_s = dur;
  e.loss_probability = loss;
  e.extra_delay_s = delay;
  return e;
}

FaultEvent At(double t, FaultKind kind, std::size_t link = 0) {
  FaultEvent e;
  e.time_s = t;
  e.kind = kind;
  e.link = link;
  return e;
}

TEST(WallClockScheduleTest, EmptyPlanImpairsNothing) {
  const WallClockSchedule schedule(FaultPlan{}, 100.0);
  EXPECT_EQ(schedule.LossProbabilityAt(0), 0.0);
  EXPECT_EQ(schedule.ExtraDelaySecondsAt(123), 0.0);
  EXPECT_FALSE(schedule.LinkDownAt(0, 0));
  EXPECT_TRUE(schedule.CrashesIn(-1, 1000).empty());
  EXPECT_EQ(schedule.end_tick(), 0);
}

TEST(WallClockScheduleTest, BurstWindowBoundariesAreHalfOpen) {
  FaultPlan plan;
  plan.Add(Burst(1.0, 0.5, 0.3, 2.0));
  const WallClockSchedule schedule(plan, 100.0);  // tick = 10 ms
  // [1.0, 1.5) s -> ticks [100, 150).
  EXPECT_EQ(schedule.LossProbabilityAt(99), 0.0);
  EXPECT_EQ(schedule.LossProbabilityAt(100), 0.3);
  EXPECT_EQ(schedule.LossProbabilityAt(149), 0.3);
  EXPECT_EQ(schedule.LossProbabilityAt(150), 0.0);
  EXPECT_EQ(schedule.ExtraDelaySecondsAt(120), 2.0);
  EXPECT_EQ(schedule.ExtraDelaySecondsAt(150), 0.0);
  EXPECT_EQ(schedule.end_tick(), 150);
}

TEST(WallClockScheduleTest, OverlappingBurstsCombineByMax) {
  FaultPlan plan;
  plan.Add(Burst(0.0, 1.0, 0.2, 5.0));
  plan.Add(Burst(0.5, 1.0, 0.6, 1.0));
  const WallClockSchedule schedule(plan, 10.0);
  EXPECT_EQ(schedule.LossProbabilityAt(2), 0.2);
  EXPECT_EQ(schedule.LossProbabilityAt(7), 0.6);   // max, not sum
  EXPECT_EQ(schedule.ExtraDelaySecondsAt(7), 5.0);  // max per axis
  EXPECT_EQ(schedule.LossProbabilityAt(12), 0.6);
}

TEST(WallClockScheduleTest, ZeroDurationBurstIsDropped) {
  FaultPlan plan;
  plan.Add(Burst(1.0, 0.0, 1.0));
  const WallClockSchedule schedule(plan, 100.0);
  EXPECT_EQ(schedule.burst_count(), 0u);
  EXPECT_EQ(schedule.LossProbabilityAt(100), 0.0);
}

TEST(WallClockScheduleTest, DownUpPairsArePerLink) {
  FaultPlan plan;
  plan.Add(At(1.0, FaultKind::kLinkDown, 0));
  plan.Add(At(2.0, FaultKind::kLinkUp, 0));
  plan.Add(At(1.5, FaultKind::kLinkDown, 1));
  plan.Add(At(1.8, FaultKind::kLinkUp, 1));
  const WallClockSchedule schedule(plan, 10.0);
  EXPECT_FALSE(schedule.LinkDownAt(0, 9));
  EXPECT_TRUE(schedule.LinkDownAt(0, 10));
  EXPECT_TRUE(schedule.LinkDownAt(0, 19));
  EXPECT_FALSE(schedule.LinkDownAt(0, 20));
  EXPECT_FALSE(schedule.LinkDownAt(1, 10));
  EXPECT_TRUE(schedule.LinkDownAt(1, 15));
  EXPECT_FALSE(schedule.LinkDownAt(1, 18));
}

TEST(WallClockScheduleTest, UnpairedDownLastsForever) {
  FaultPlan plan;
  plan.Add(At(1.0, FaultKind::kLinkDown, 0));
  const WallClockSchedule schedule(plan, 10.0);
  EXPECT_TRUE(schedule.LinkDownAt(0, 10));
  EXPECT_TRUE(schedule.LinkDownAt(0, 1000000));
}

TEST(WallClockScheduleTest, CrashesInIsHalfOpenOnTheLeft) {
  FaultPlan plan;
  plan.Add(At(0.0, FaultKind::kControllerCrash, 0));
  plan.Add(At(1.0, FaultKind::kControllerCrash, 1));
  plan.Add(At(1.0, FaultKind::kControllerCrash, 2));
  const WallClockSchedule schedule(plan, 10.0);
  EXPECT_EQ(schedule.crash_count(), 3u);
  // Tick-0 crash needs after = -1.
  EXPECT_EQ(schedule.CrashesIn(-1, 0).size(), 1u);
  EXPECT_TRUE(schedule.CrashesIn(0, 9).empty());
  // Same-tick crashes fire together, in schedule order.
  const std::vector<std::size_t> at_ten = schedule.CrashesIn(9, 10);
  ASSERT_EQ(at_ten.size(), 2u);
  EXPECT_EQ(at_ten[0], 1u);
  EXPECT_EQ(at_ten[1], 2u);
  // A watermark that already passed them reports nothing.
  EXPECT_TRUE(schedule.CrashesIn(10, 100).empty());
}

}  // namespace
}  // namespace rcbr::sim::fault
