#include "sim/fluid_queue.h"

#include <limits>

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr::sim {
namespace {

TEST(SlottedQueue, LindleyRecursion) {
  SlottedQueue q(kInfiniteBuffer);
  q.Step(10.0, 4.0);
  EXPECT_DOUBLE_EQ(q.occupancy_bits(), 6.0);
  q.Step(2.0, 4.0);
  EXPECT_DOUBLE_EQ(q.occupancy_bits(), 4.0);
  q.Step(0.0, 10.0);
  EXPECT_DOUBLE_EQ(q.occupancy_bits(), 0.0);  // clamps at zero
  EXPECT_DOUBLE_EQ(q.lost_bits(), 0.0);
}

TEST(SlottedQueue, OverflowCountsLoss) {
  SlottedQueue q(5.0);
  const double lost = q.Step(12.0, 2.0);
  EXPECT_DOUBLE_EQ(lost, 5.0);  // 12 - 2 = 10, cap 5
  EXPECT_DOUBLE_EQ(q.occupancy_bits(), 5.0);
  EXPECT_DOUBLE_EQ(q.lost_bits(), 5.0);
  EXPECT_DOUBLE_EQ(q.arrived_bits(), 12.0);
  EXPECT_DOUBLE_EQ(q.LossFraction(), 5.0 / 12.0);
}

TEST(SlottedQueue, MaxOccupancyTracked) {
  SlottedQueue q(kInfiniteBuffer);
  q.Step(10.0, 0.0);
  q.Step(0.0, 8.0);
  EXPECT_DOUBLE_EQ(q.max_occupancy_bits(), 10.0);
}

TEST(SlottedQueue, ZeroBufferLosesEverythingAboveService) {
  SlottedQueue q(0.0);
  q.Step(7.0, 3.0);
  EXPECT_DOUBLE_EQ(q.lost_bits(), 4.0);
  EXPECT_DOUBLE_EQ(q.occupancy_bits(), 0.0);
}

TEST(SlottedQueue, ResetClearsState) {
  SlottedQueue q(5.0);
  q.Step(12.0, 2.0);
  q.Reset();
  EXPECT_DOUBLE_EQ(q.occupancy_bits(), 0.0);
  EXPECT_DOUBLE_EQ(q.lost_bits(), 0.0);
  EXPECT_DOUBLE_EQ(q.arrived_bits(), 0.0);
  EXPECT_DOUBLE_EQ(q.LossFraction(), 0.0);
}

TEST(SlottedQueue, Validation) {
  EXPECT_THROW(SlottedQueue(-1.0), InvalidArgument);
  SlottedQueue q(1.0);
  EXPECT_THROW(q.Step(-1.0, 0.0), InvalidArgument);
  EXPECT_THROW(q.Step(0.0, -1.0), InvalidArgument);
}

TEST(SlottedQueue, RejectsNaNInputs) {
  // NaN would silently poison the Lindley recursion (every comparison is
  // false), so it must fail fast instead.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(SlottedQueue{nan}, InvalidArgument);
  SlottedQueue q(1.0);
  EXPECT_THROW(q.Step(nan, 0.0), InvalidArgument);
  EXPECT_THROW(q.Step(0.0, nan), InvalidArgument);
}

TEST(DrainConstant, NoLossAtPeakRate) {
  const std::vector<double> workload = {5, 1, 9, 3};
  const DrainResult r = DrainConstant(workload, 9.0, 0.0);
  EXPECT_DOUBLE_EQ(r.lost_bits, 0.0);
  EXPECT_DOUBLE_EQ(r.arrived_bits, 18.0);
}

TEST(DrainConstant, KnownLoss) {
  const std::vector<double> workload = {10, 10};
  const DrainResult r = DrainConstant(workload, 4.0, 2.0);
  // Slot 1: q = 10-4 = 6 -> cap 2, lose 4. Slot 2: 2+10-4 = 8 -> lose 6.
  EXPECT_DOUBLE_EQ(r.lost_bits, 10.0);
  EXPECT_DOUBLE_EQ(r.loss_fraction(), 0.5);
}

TEST(DrainSchedule, MatchesConstantWhenFlat) {
  const std::vector<double> workload = {5, 1, 9, 3};
  const auto flat = PiecewiseConstant::Constant(4.0, 4);
  const DrainResult a = DrainSchedule(workload, flat, 6.0);
  const DrainResult b = DrainConstant(workload, 4.0, 6.0);
  EXPECT_DOUBLE_EQ(a.lost_bits, b.lost_bits);
  EXPECT_DOUBLE_EQ(a.max_occupancy_bits, b.max_occupancy_bits);
}

TEST(DrainSchedule, StepRateTracksWorkload) {
  const std::vector<double> workload = {10, 10, 2, 2};
  const PiecewiseConstant schedule({{0, 10.0}, {2, 2.0}}, 4);
  const DrainResult r = DrainSchedule(workload, schedule, 0.0);
  EXPECT_DOUBLE_EQ(r.lost_bits, 0.0);
}

TEST(DrainSchedule, LengthMismatchThrows) {
  const std::vector<double> workload = {1, 2, 3};
  const auto flat = PiecewiseConstant::Constant(1.0, 4);
  EXPECT_THROW(DrainSchedule(workload, flat, 1.0), InvalidArgument);
}

TEST(MinLosslessRate, ExactForSimpleWorkload) {
  // Workload 10,0,10,0 with buffer 5: rate r needs max(10-r, ...) <= 5 and
  // drain before the next burst: r >= 5.
  const std::vector<double> workload = {10, 0, 10, 0};
  const double rate = MinLosslessRate(workload, 5.0, 1e-9);
  EXPECT_NEAR(rate, 5.0, 1e-6);
}

TEST(MinLosslessRate, InfiniteBufferNeedsMeanOnly) {
  // With a huge buffer the needed rate approaches... actually with a
  // finite-horizon workload the constraint is weaker than the mean: only
  // the per-slot overflow matters. With B = sum of all bits, rate 0 works.
  const std::vector<double> workload = {10, 10, 10};
  EXPECT_NEAR(MinLosslessRate(workload, 30.0), 0.0, 1e-6);
}

TEST(MinLosslessRate, ZeroBufferNeedsPeak) {
  const std::vector<double> workload = {3, 7, 2};
  EXPECT_NEAR(MinLosslessRate(workload, 0.0, 1e-9), 7.0, 1e-5);
}

TEST(MinLosslessRate, MonotoneInBuffer) {
  const std::vector<double> workload = {10, 0, 10, 0, 10, 0};
  double prev = 1e300;
  for (double buffer : {0.0, 2.0, 5.0, 10.0, 30.0}) {
    const double rate = MinLosslessRate(workload, buffer, 1e-9);
    EXPECT_LE(rate, prev + 1e-9);
    prev = rate;
  }
}

TEST(MinLosslessRate, ResultIsActuallyLossless) {
  const std::vector<double> workload = {4, 9, 1, 12, 0, 3};
  for (double buffer : {0.0, 3.0, 8.0}) {
    const double rate = MinLosslessRate(workload, buffer, 1e-9);
    EXPECT_DOUBLE_EQ(DrainConstant(workload, rate, buffer).lost_bits, 0.0);
  }
}

}  // namespace
}  // namespace rcbr::sim
