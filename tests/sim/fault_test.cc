#include "sim/fault/fault_injector.h"
#include "sim/fault/fault_plan.h"

#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "admission/policies.h"
#include "runtime/emit.h"
#include "runtime/sweep.h"
#include "sim/engine/simulation.h"
#include "util/error.h"
#include "util/piecewise.h"
#include "util/rng.h"

namespace rcbr::sim::fault {
namespace {

// ---------------------------------------------------------------------
// FaultPlan: seeded generation is pure data, sorted and bounded.
// ---------------------------------------------------------------------

FaultPlanOptions BusyOptions() {
  FaultPlanOptions options;
  options.horizon_s = 200.0;
  options.num_links = 3;
  options.burst_rate_per_s = 0.05;
  options.burst_duration_s = 2.0;
  options.burst_loss_probability = 0.8;
  options.link_failure_rate_per_s = 0.02;
  options.link_downtime_s = 5.0;
  options.crash_rate_per_s = 0.02;
  return options;
}

TEST(FaultPlan, GenerateIsDeterministic) {
  Rng a(42);
  Rng b(42);
  const FaultPlan plan_a = FaultPlan::Generate(BusyOptions(), a);
  const FaultPlan plan_b = FaultPlan::Generate(BusyOptions(), b);
  ASSERT_EQ(plan_a.events().size(), plan_b.events().size());
  ASSERT_FALSE(plan_a.empty());
  for (std::size_t i = 0; i < plan_a.events().size(); ++i) {
    EXPECT_EQ(plan_a.events()[i].time_s, plan_b.events()[i].time_s);
    EXPECT_EQ(plan_a.events()[i].kind, plan_b.events()[i].kind);
    EXPECT_EQ(plan_a.events()[i].link, plan_b.events()[i].link);
  }
}

TEST(FaultPlan, GenerateIsSortedBoundedAndPaired) {
  Rng rng(7);
  const FaultPlanOptions options = BusyOptions();
  const FaultPlan plan = FaultPlan::Generate(options, rng);
  ASSERT_FALSE(plan.empty());
  EXPECT_TRUE(plan.has_bursts());
  EXPECT_LT(plan.max_link(), options.num_links);
  double prev = 0;
  std::vector<int> down_minus_up(options.num_links, 0);
  for (const FaultEvent& e : plan.events()) {
    EXPECT_GE(e.time_s, prev);
    prev = e.time_s;
    // Failures start inside the horizon; only a repair may land past it.
    if (e.kind != FaultKind::kLinkUp) {
      EXPECT_LT(e.time_s, options.horizon_s);
    }
    if (e.kind == FaultKind::kLinkDown) ++down_minus_up[e.link];
    if (e.kind == FaultKind::kLinkUp) {
      --down_minus_up[e.link];
      EXPECT_GE(down_minus_up[e.link], 0) << "repair before failure";
    }
  }
  for (int leftover : down_minus_up) EXPECT_EQ(leftover, 0);
}

TEST(FaultPlan, Validation) {
  Rng rng(1);
  FaultPlanOptions options = BusyOptions();
  options.burst_loss_probability = 1.5;
  EXPECT_THROW(FaultPlan::Generate(options, rng), InvalidArgument);
  options = BusyOptions();
  options.num_links = 0;
  EXPECT_THROW(FaultPlan::Generate(options, rng), InvalidArgument);
  options = BusyOptions();
  options.link_failure_rate_per_s = -1;
  EXPECT_THROW(FaultPlan::Generate(options, rng), InvalidArgument);

  FaultPlan plan;
  EXPECT_THROW(plan.Add({-1.0, FaultKind::kLinkDown, 0, 0, 0, 0}),
               InvalidArgument);
  EXPECT_THROW(
      plan.Add({1.0, FaultKind::kRmLossBurst, 0, 2.0,
                std::nan(""), 0}),
      InvalidArgument);
  EXPECT_TRUE(plan.empty());
  plan.Add({5.0, FaultKind::kLinkDown, 2, 0, 0, 0});
  plan.Add({1.0, FaultKind::kControllerCrash, 1, 0, 0, 0});
  ASSERT_EQ(plan.events().size(), 2u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kControllerCrash);
  EXPECT_EQ(plan.max_link(), 2u);
  EXPECT_FALSE(plan.has_bursts());
}

// ---------------------------------------------------------------------
// FaultTimeline: bursts combine by max and expire; link state flips
// idempotently; callbacks fire in schedule order.
// ---------------------------------------------------------------------

TEST(FaultTimeline, BurstsCombineByMaxAndExpire) {
  FaultPlan plan;
  plan.Add({1.0, FaultKind::kRmLossBurst, 0, 4.0, 0.5, 0.1});
  plan.Add({2.0, FaultKind::kRmLossBurst, 0, 1.0, 0.8, 0.05});
  FaultTimeline timeline(&plan, 1);
  timeline.AdvanceTo(0.5);
  EXPECT_DOUBLE_EQ(timeline.conditions().extra_loss_probability, 0.0);
  timeline.AdvanceTo(1.5);
  EXPECT_DOUBLE_EQ(timeline.conditions().extra_loss_probability, 0.5);
  EXPECT_DOUBLE_EQ(timeline.conditions().extra_delay_s, 0.1);
  timeline.AdvanceTo(2.5);  // both active: max per field
  EXPECT_DOUBLE_EQ(timeline.conditions().extra_loss_probability, 0.8);
  EXPECT_DOUBLE_EQ(timeline.conditions().extra_delay_s, 0.1);
  timeline.AdvanceTo(3.5);  // the short burst expired, the long one holds
  EXPECT_DOUBLE_EQ(timeline.conditions().extra_loss_probability, 0.5);
  timeline.AdvanceTo(10.0);
  EXPECT_DOUBLE_EQ(timeline.conditions().extra_loss_probability, 0.0);
  EXPECT_DOUBLE_EQ(timeline.conditions().extra_delay_s, 0.0);
  EXPECT_EQ(timeline.stats().bursts, 2);
}

TEST(FaultTimeline, LinkEventsFlipStateAndFireCallbacksOnce) {
  FaultPlan plan;
  plan.Add({1.0, FaultKind::kLinkDown, 0, 0, 0, 0});
  plan.Add({2.0, FaultKind::kLinkDown, 0, 0, 0, 0});  // already down: no-op
  plan.Add({3.0, FaultKind::kLinkUp, 0, 0, 0, 0});
  plan.Add({4.0, FaultKind::kControllerCrash, 1, 0, 0, 0});
  FaultTimeline timeline(&plan, 2);
  std::vector<std::pair<char, std::size_t>> fired;
  FaultCallbacks callbacks;
  callbacks.on_link_down = [&](std::size_t link, double) {
    fired.emplace_back('d', link);
  };
  callbacks.on_link_up = [&](std::size_t link, double) {
    fired.emplace_back('u', link);
  };
  callbacks.on_controller_crash = [&](std::size_t link, double) {
    fired.emplace_back('c', link);
  };
  timeline.set_callbacks(std::move(callbacks));
  EXPECT_TRUE(timeline.link_up(0));
  timeline.AdvanceTo(2.5);
  EXPECT_FALSE(timeline.link_up(0));
  EXPECT_TRUE(timeline.link_up(1));
  timeline.AdvanceTo(5.0);
  EXPECT_TRUE(timeline.link_up(0));
  const std::vector<std::pair<char, std::size_t>> expected = {
      {'d', 0u}, {'u', 0u}, {'c', 1u}};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(timeline.stats().link_failures, 1);
  EXPECT_EQ(timeline.stats().link_repairs, 1);
  EXPECT_EQ(timeline.stats().crashes, 1);
}

TEST(FaultTimeline, RejectsPlanTargetingMissingLink) {
  FaultPlan plan;
  plan.Add({1.0, FaultKind::kLinkDown, 3, 0, 0, 0});
  EXPECT_THROW(FaultTimeline(&plan, 2), InvalidArgument);
}

// ---------------------------------------------------------------------
// Fault injection in the unified simulation.
// ---------------------------------------------------------------------

std::vector<CallProfile> ConstantProfile() {
  return {{PiecewiseConstant({{0, 1.0}}, 100), 1.0}};
}

engine::SimulationOptions SingleLinkOptions() {
  engine::SimulationOptions options;
  options.link_capacities_bps = {10.0};
  options.classes.resize(1);
  options.classes[0].candidate_routes = {{0}};
  options.classes[0].arrival_rate_per_s = 0.3;
  options.sample_intervals = 1;
  options.interval_seconds = 50.0;
  options.track_connections = true;
  return options;
}

TEST(FaultSimulation, NonEmptyPlanRequiresTrackedConnections) {
  FaultPlan plan;
  plan.Add({1.0, FaultKind::kLinkDown, 0, 0, 0, 0});
  engine::SimulationOptions options = SingleLinkOptions();
  options.track_connections = false;
  options.fault_plan = &plan;
  Rng rng(1);
  EXPECT_THROW(engine::RunSimulation(ConstantProfile(), options, rng),
               InvalidArgument);
}

TEST(FaultSimulation, PlanTargetingMissingLinkThrows) {
  FaultPlan plan;
  plan.Add({1.0, FaultKind::kControllerCrash, 5, 0, 0, 0});
  engine::SimulationOptions options = SingleLinkOptions();
  options.fault_plan = &plan;
  Rng rng(1);
  EXPECT_THROW(engine::RunSimulation(ConstantProfile(), options, rng),
               InvalidArgument);
}

TEST(FaultSimulation, DownLinkBlocksEveryAdmission) {
  FaultPlan plan;
  plan.Add({0.0, FaultKind::kLinkDown, 0, 0, 0, 0});
  engine::SimulationOptions options = SingleLinkOptions();
  options.fault_plan = &plan;
  Rng rng(11);
  const engine::SimulationResult r =
      engine::RunSimulation(ConstantProfile(), options, rng);
  ASSERT_GT(r.per_class[0].offered_calls, 0);
  EXPECT_EQ(r.per_class[0].blocked_calls, r.per_class[0].offered_calls);
  EXPECT_DOUBLE_EQ(r.util_total[0], 0.0);
}

TEST(FaultSimulation, FailureWithoutAlternateDropsActiveCalls) {
  FaultPlan plan;
  plan.Add({25.0, FaultKind::kLinkDown, 0, 0, 0, 0});
  engine::SimulationOptions options = SingleLinkOptions();
  options.fault_plan = &plan;
  Rng rng(13);
  const engine::SimulationResult r =
      engine::RunSimulation(ConstantProfile(), options, rng);
  EXPECT_GT(r.per_class[0].dropped_calls, 0);
  EXPECT_EQ(r.per_class[0].rerouted_calls, 0);
  // Calls admitted before the failure were dropped and the link stayed
  // blocked, so some later arrivals must have been refused too.
  EXPECT_GT(r.per_class[0].blocked_calls, 0);
}

TEST(FaultSimulation, FailureWithAlternateReroutesMidCall) {
  FaultPlan plan;
  plan.Add({25.0, FaultKind::kLinkDown, 0, 0, 0, 0});
  plan.Add({60.0, FaultKind::kLinkUp, 0, 0, 0, 0});
  engine::SimulationOptions options = SingleLinkOptions();
  options.link_capacities_bps = {10.0, 10.0};
  // First-fit prefers link 0, so the failure catches active calls there
  // and the idle link 1 is the feasible alternate.
  options.classes[0].candidate_routes = {{0}, {1}};
  options.interval_seconds = 100.0;
  options.fault_plan = &plan;
  Rng rng(17);
  const engine::SimulationResult r =
      engine::RunSimulation(ConstantProfile(), options, rng);
  EXPECT_GT(r.per_class[0].rerouted_calls, 0);
  EXPECT_GT(r.util_total[1], 0.0);
}

TEST(FaultSimulation, ControllerCrashIsRepairedByResync) {
  FaultPlan plan;
  plan.Add({20.0, FaultKind::kControllerCrash, 0, 0, 0, 0});
  plan.Add({40.0, FaultKind::kControllerCrash, 0, 0, 0, 0});
  engine::SimulationOptions options = SingleLinkOptions();
  options.fault_plan = &plan;
  Rng rng(19);
  const engine::SimulationResult r =
      engine::RunSimulation(ConstantProfile(), options, rng);
  // The crash wipes the port mid-run; the per-call absolute resyncs
  // rebuild it, so the run completes with calls still admitted and
  // carrying reserved bandwidth after the crashes.
  EXPECT_GT(r.per_class[0].offered_calls, 0);
  EXPECT_GT(r.util_total[0], 0.0);
  EXPECT_EQ(r.per_class[0].dropped_calls, 0);
}

TEST(FaultSimulation, EmptyPlanIsByteIdenticalToNoPlan) {
  const FaultPlan empty;
  engine::SimulationOptions options = SingleLinkOptions();
  auto run = [&](const FaultPlan* plan) {
    options.fault_plan = plan;
    Rng rng(23);
    return engine::RunSimulation(ConstantProfile(), options, rng);
  };
  const engine::SimulationResult without = run(nullptr);
  const engine::SimulationResult with = run(&empty);
  ASSERT_EQ(with.per_class.size(), without.per_class.size());
  EXPECT_EQ(with.per_class[0].offered_calls,
            without.per_class[0].offered_calls);
  EXPECT_EQ(with.per_class[0].blocked_calls,
            without.per_class[0].blocked_calls);
  EXPECT_EQ(with.per_class[0].upward_attempts,
            without.per_class[0].upward_attempts);
  EXPECT_EQ(with.util_by_interval, without.util_by_interval);
  EXPECT_EQ(with.util_total, without.util_total);
}

// ---------------------------------------------------------------------
// The issue's composed acceptance check: call dynamics + Chernoff MBAC +
// multi-hop lossy signaling + link failures + controller restarts in ONE
// run, byte-identical across sweep thread counts. The fault plan is part
// of the point's seeded input (substream 1), exactly like the workload.
// ---------------------------------------------------------------------

runtime::SweepSpec FaultComposedSpec() {
  runtime::SweepSpec spec;
  spec.name = "fault_composed_probe";
  spec.notes = {"unified engine under injected faults"};
  spec.parameters = {"load", "fault_scale"};
  spec.metrics = {"failure0", "rerouted", "dropped", "util0"};
  spec.points = runtime::GridPoints({{0.15, 0.2}, {1.0}});
  return spec;
}

std::vector<double> FaultComposedPoint(const runtime::SweepContext& ctx) {
  const std::vector<CallProfile> profiles = {
      {PiecewiseConstant({{0, 1.0}, {50, 2.0}}, 100), 1.0},
      {PiecewiseConstant({{0, 2.0}, {30, 3.0}, {70, 1.0}}, 100), 1.0}};

  admission::PolicyOptions mbac;
  mbac.target_failure_probability = 0.2;
  mbac.rate_grid_bps = {0.0, 1.0, 2.0, 3.0};
  mbac.recorder = ctx.recorder;
  admission::MemoryPolicy policy(mbac);

  engine::SimulationOptions options;
  options.link_capacities_bps = {10.0, 10.0, 10.0};
  options.classes.resize(2);
  options.classes[0].candidate_routes = {{0, 1}};
  options.classes[0].arrival_rate_per_s = ctx.parameters[0];
  options.classes[0].profile_index = 0;
  options.classes[1].candidate_routes = {{1, 2}, {2}};
  options.classes[1].arrival_rate_per_s = ctx.parameters[0];
  options.classes[1].profile_index = 1;
  options.warmup_seconds = 100.0;
  options.sample_intervals = 3;
  options.interval_seconds = 150.0;
  options.least_loaded_routing = true;
  options.policy = &policy;
  options.recorder = ctx.recorder;
  options.signaling_recorder = ctx.recorder;
  options.per_hop_delay_s = 0.001;
  options.track_connections = true;
  options.cell_loss_probability = 0.05;
  options.resync_every_cells = 1;

  FaultPlanOptions fault;
  fault.horizon_s = options.warmup_seconds +
                    options.interval_seconds *
                        static_cast<double>(options.sample_intervals);
  fault.num_links = 3;
  fault.burst_rate_per_s = 0.01 * ctx.parameters[1];
  fault.burst_duration_s = 10.0;
  fault.burst_loss_probability = 0.6;
  fault.link_failure_rate_per_s = 0.003 * ctx.parameters[1];
  fault.link_downtime_s = 25.0;
  fault.crash_rate_per_s = 0.005 * ctx.parameters[1];
  Rng plan_rng = ctx.MakeRng(1);
  const FaultPlan plan = FaultPlan::Generate(fault, plan_rng);
  options.fault_plan = &plan;

  Rng rng = ctx.MakeRng();
  const engine::SimulationResult r =
      engine::RunSimulation(profiles, options, rng);

  double rerouted = 0;
  double dropped = 0;
  for (const engine::ClassTotals& t : r.per_class) {
    rerouted += static_cast<double>(t.rerouted_calls);
    dropped += static_cast<double>(t.dropped_calls);
  }
  const double span = options.interval_seconds *
                      static_cast<double>(options.sample_intervals);
  const engine::ClassTotals& t0 = r.per_class[0];
  const double failure0 =
      t0.upward_attempts > 0
          ? static_cast<double>(t0.failed_attempts) /
                static_cast<double>(t0.upward_attempts)
          : 0.0;
  return {failure0, rerouted, dropped,
          r.util_total[0] / (span * options.link_capacities_bps[0])};
}

TEST(FaultSimulation, ComposedFaultRunIsThreadCountInvariant) {
  const runtime::SweepSpec spec = FaultComposedSpec();
  runtime::SweepOptions options;
  options.base_seed = 20260806;
  options.event_capacity = 256;

  options.threads = 1;
  const runtime::SweepResult serial =
      runtime::RunSweep(spec, FaultComposedPoint, options);
  ASSERT_EQ(serial.points.size(), spec.points.size());

  if constexpr (obs::kEnabled) {
    // Every fault category must actually have fired, on top of the usual
    // call/MBAC/signaling layers.
    EXPECT_GT(serial.metrics.counters.at("engine.offered_calls"), 0);
    EXPECT_GT(serial.metrics.counters.at("mbac.admit_accept"), 0);
    EXPECT_GT(serial.metrics.counters.at("fault.bursts"), 0);
    EXPECT_GT(serial.metrics.counters.at("fault.link_failures"), 0);
    EXPECT_GT(serial.metrics.counters.at("fault.crashes"), 0);
    EXPECT_FALSE(serial.events.empty());
  }

  for (std::size_t threads : {2u, 8u}) {
    options.threads = threads;
    const runtime::SweepResult parallel =
        runtime::RunSweep(spec, FaultComposedPoint, options);
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
      EXPECT_EQ(parallel.points[i].metrics, serial.points[i].metrics)
          << "point " << i << " diverged at " << threads << " threads";
    }
    EXPECT_EQ(parallel.metrics.ToJson("  "), serial.metrics.ToJson("  "));
    EXPECT_EQ(runtime::ToTraceJsonl(parallel),
              runtime::ToTraceJsonl(serial));
    EXPECT_EQ(runtime::ToJsonWithoutTimings(parallel),
              runtime::ToJsonWithoutTimings(serial));
  }
}

}  // namespace
}  // namespace rcbr::sim::fault
