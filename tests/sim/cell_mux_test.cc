#include "sim/cell_mux.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace rcbr::sim {
namespace {

TEST(CellMux, Validation) {
  Rng rng(1);
  EXPECT_THROW(SimulateCellMux(0, 10, 1, rng), InvalidArgument);
  EXPECT_THROW(SimulateCellMux(11, 10, 1, rng), InvalidArgument);
  EXPECT_THROW(SimulateCellMux(5, 10, 0, rng), InvalidArgument);
  EXPECT_THROW(CellMuxTailBound(0, 10, 1), InvalidArgument);
  EXPECT_THROW(CellsForLossTarget(5, 10, 0.0), InvalidArgument);
}

TEST(CellMux, SingleStreamNeverQueues) {
  Rng rng(2);
  const CellMuxResult r = SimulateCellMux(1, 10, 200, rng);
  EXPECT_EQ(r.max_queue_cells, 0);
  EXPECT_DOUBLE_EQ(r.mean_queue_cells, 0.0);
}

TEST(CellMux, DistributionSumsToOne) {
  Rng rng(3);
  const CellMuxResult r = SimulateCellMux(8, 10, 500, rng);
  double total = 0;
  for (double p : r.queue_distribution) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.Tail(0), 1.0);
}

TEST(CellMux, QueueBoundedByStreamCount) {
  Rng rng(5);
  const CellMuxResult r = SimulateCellMux(10, 10, 500, rng);
  // Even at 100% utilization the periodic queue never exceeds N.
  EXPECT_LE(r.max_queue_cells, 10);
}

TEST(CellMux, HigherLoadLongerQueue) {
  Rng rng(7);
  const CellMuxResult light = SimulateCellMux(20, 100, 300, rng);
  const CellMuxResult heavy = SimulateCellMux(90, 100, 300, rng);
  EXPECT_LT(light.mean_queue_cells, heavy.mean_queue_cells);
}

TEST(CellMux, BoundDominatesSimulation) {
  Rng rng(9);
  const std::int64_t n = 48;
  const std::int64_t d = 60;
  const CellMuxResult r = SimulateCellMux(n, d, 4000, rng);
  for (std::int64_t q : {1, 2, 4, 8}) {
    EXPECT_GE(CellMuxTailBound(n, d, q) * 1.0001, r.Tail(q))
        << "q = " << q;
  }
}

TEST(CellMux, BoundMonotoneDecreasing) {
  double prev = 2.0;
  for (std::int64_t q = 0; q <= 20; ++q) {
    const double b = CellMuxTailBound(80, 100, q);
    EXPECT_LE(b, prev + 1e-12);
    prev = b;
  }
}

TEST(CellMux, TinyCaseExhaustive) {
  // N = 2, D = 2: phases uniform on {0,1}. Enumerate: both in slot 0
  // (prob 1/4) -> queue hits 1 after slot 0; both slot 1 (1/4) -> queue 1
  // after slot 1; split (1/2) -> never queues. So P(Q >= 1) = 1/4 per
  // measured slot (one of the two slots sees queue 1 in the clash cases).
  Rng rng(11);
  const CellMuxResult r = SimulateCellMux(2, 2, 60000, rng);
  EXPECT_NEAR(r.Tail(1), 0.25, 0.01);
  EXPECT_EQ(r.max_queue_cells, 1);
}

TEST(CellMux, CellsForLossTargetConsistent) {
  const std::int64_t n = 90;
  const std::int64_t d = 100;
  const std::int64_t q = CellsForLossTarget(n, d, 1e-6);
  EXPECT_GT(q, 0);
  EXPECT_LE(CellMuxTailBound(n, d, q), 1e-6);
  if (q > 1) {
    EXPECT_GT(CellMuxTailBound(n, d, q - 1), 1e-6);
  }
}

TEST(CellMux, BufferGrowsSublinearlyWithStreams) {
  // The "minimal cell-level buffering" claim: at fixed 90% utilization
  // the required buffer grows much more slowly than the stream count.
  const std::int64_t q_small = CellsForLossTarget(9, 10, 1e-6);
  const std::int64_t q_large = CellsForLossTarget(900, 1000, 1e-6);
  EXPECT_LT(q_large, 100 * q_small / 4);  // 100x streams, < 25x buffer
}

}  // namespace
}  // namespace rcbr::sim
