#include "sim/engine/engine.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "admission/policies.h"
#include "runtime/emit.h"
#include "runtime/sweep.h"
#include "sim/engine/event_queue.h"
#include "sim/engine/measurement.h"
#include "sim/engine/simulation.h"
#include "util/error.h"
#include "util/piecewise.h"

namespace rcbr::sim::engine {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.At(3.0, [&] { order.push_back(3); });
  q.At(1.0, [&] { order.push_back(1); });
  q.At(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.PopNext()();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFiresInScheduleOrder) {
  // The (time, seq) tie-break: simultaneous events fire in the order they
  // were scheduled. This is what keeps seeded runs bit-reproducible.
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.At(5.0, [&order, i] { order.push_back(i); });
  }
  q.At(1.0, [&] { order.push_back(-1); });
  std::vector<int> expected = {-1};
  for (int i = 0; i < 8; ++i) expected.push_back(i);
  while (!q.empty()) q.PopNext()();
  EXPECT_EQ(order, expected);
}

TEST(EventQueue, SameTimeOrderHoldsAtSequenceCounterCeiling) {
  // The tie-break counter is 64-bit and unreachable in real runs, but the
  // ordering contract must hold right up to the last representable
  // sequence number — no sign-flip or wraparound surprises there.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  EventQueue q;
  q.ResetSequenceForTest(kMax - 3);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    q.At(5.0, [&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(q.next_sequence(), kMax);
  q.At(5.0, [&order] { order.push_back(3); });  // the last usable seq
  q.At(1.0, [&] { order.push_back(-1); });
  while (!q.empty()) q.PopNext()();
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 3}));
}

TEST(EventQueue, NextTimeRequiresNonEmpty) {
  EventQueue q;
  EXPECT_THROW(q.next_time(), InvalidArgument);
  EXPECT_THROW(q.PopNext(), InvalidArgument);
}

TEST(Engine, RunUntilFiresStrictlyBeforeEnd) {
  // The legacy loops popped while top.time < end; an event exactly at the
  // horizon stays queued. Pinned.
  Engine e;
  std::vector<double> fired;
  e.At(1.0, [&] { fired.push_back(1.0); });
  e.At(2.0, [&] { fired.push_back(2.0); });
  e.At(3.0, [&] { fired.push_back(3.0); });
  e.RunUntil(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0}));
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  e.RunUntil(4.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_DOUBLE_EQ(e.now(), 4.0);
}

TEST(Engine, HandlersCanScheduleMoreEvents) {
  Engine e;
  std::vector<double> fired;
  e.At(1.0, [&] {
    fired.push_back(e.now());
    e.At(1.5, [&] { fired.push_back(e.now()); });
  });
  e.RunUntil(10.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 1.5}));
}

TEST(Engine, AdvanceHookSeesEverySegment) {
  // The hook observes [from, to) for each clock movement — events first,
  // then the final advance to the horizon.
  Engine e;
  std::vector<std::pair<double, double>> segments;
  e.set_advance_hook(
      [&](double from, double to) { segments.emplace_back(from, to); });
  e.At(2.0, [] {});
  e.At(2.0, [] {});  // same-time event moves the clock zero; no segment
  e.At(5.0, [] {});
  e.RunUntil(7.0);
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0], (std::pair<double, double>{0.0, 2.0}));
  EXPECT_EQ(segments[1], (std::pair<double, double>{2.0, 5.0}));
  EXPECT_EQ(segments[2], (std::pair<double, double>{5.0, 7.0}));
}

TEST(MeasurementWindow, IntervalIndexAndEndTime) {
  const MeasurementWindow w(100.0, 3, 50.0);
  EXPECT_DOUBLE_EQ(w.end_time(), 250.0);
  EXPECT_EQ(w.IntervalIndex(0.0), -1);    // warmup
  EXPECT_EQ(w.IntervalIndex(99.9), -1);
  EXPECT_EQ(w.IntervalIndex(100.0), 0);
  EXPECT_EQ(w.IntervalIndex(149.9), 0);
  EXPECT_EQ(w.IntervalIndex(150.0), 1);
  EXPECT_EQ(w.IntervalIndex(249.9), 2);
  EXPECT_EQ(w.IntervalIndex(250.0), -1);  // past the end
}

TEST(MeasurementWindow, IntegrateSplitsAtBoundaries) {
  const MeasurementWindow w(10.0, 2, 5.0);
  std::vector<std::tuple<std::size_t, double, double>> segs;
  // Spans warmup, both intervals, and past-the-end in one advance.
  w.Integrate(8.0, 22.0, [&](std::size_t k, double a, double b) {
    segs.emplace_back(k, a, b);
  });
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], std::make_tuple(std::size_t{0}, 10.0, 15.0));
  EXPECT_EQ(segs[1], std::make_tuple(std::size_t{1}, 15.0, 20.0));
}

// ---------------------------------------------------------------------
// The composed acceptance check: call dynamics + Chernoff MBAC +
// multi-hop signaling + lossy RM-cell channel with resync, all in ONE
// RunSimulation, swept through the deterministic parallel runner. The
// metrics snapshot and the event trace must be byte-identical at 1, 2,
// and 8 threads.
// ---------------------------------------------------------------------

runtime::SweepSpec ComposedSpec() {
  runtime::SweepSpec spec;
  spec.name = "engine_composed_probe";
  spec.notes = {"unified engine: MBAC + multi-hop + lossy signaling"};
  spec.parameters = {"load", "loss"};
  spec.metrics = {"failure0", "failure1", "util0", "blocking"};
  spec.points = runtime::GridPoints({{0.15, 0.2}, {0.0, 0.05}});
  return spec;
}

std::vector<double> ComposedPointImpl(const runtime::SweepContext& ctx,
                                      bool use_legacy_event_heap) {
  const std::vector<CallProfile> profiles = {
      {PiecewiseConstant({{0, 1.0}, {50, 2.0}}, 100), 1.0},
      {PiecewiseConstant({{0, 2.0}, {30, 3.0}, {70, 1.0}}, 100), 1.0}};

  admission::PolicyOptions mbac;
  mbac.target_failure_probability = 0.2;
  mbac.rate_grid_bps = {0.0, 1.0, 2.0, 3.0};
  mbac.recorder = ctx.recorder;
  admission::MemoryPolicy policy(mbac);

  SimulationOptions options;
  options.link_capacities_bps = {10.0, 10.0, 10.0};
  options.classes.resize(2);
  options.classes[0].candidate_routes = {{0, 1}};
  options.classes[0].arrival_rate_per_s = ctx.parameters[0];
  options.classes[0].profile_index = 0;
  options.classes[1].candidate_routes = {{1, 2}, {2}};
  options.classes[1].arrival_rate_per_s = ctx.parameters[0];
  options.classes[1].profile_index = 1;
  options.warmup_seconds = 100.0;
  options.sample_intervals = 3;
  options.interval_seconds = 150.0;
  options.least_loaded_routing = true;
  options.policy = &policy;
  options.recorder = ctx.recorder;
  options.signaling_recorder = ctx.recorder;
  options.per_hop_delay_s = 0.001;
  options.track_connections = true;
  options.cell_loss_probability = ctx.parameters[1];
  // Calls renegotiate only a handful of times each (one per profile
  // step), so resync after every delta cell to exercise the repair path.
  options.resync_every_cells = 1;
  options.use_legacy_event_heap = use_legacy_event_heap;

  Rng rng = ctx.MakeRng();
  const SimulationResult r = RunSimulation(profiles, options, rng);

  auto failure = [](const ClassTotals& t) {
    return t.upward_attempts > 0
               ? static_cast<double>(t.failed_attempts) /
                     static_cast<double>(t.upward_attempts)
               : 0.0;
  };
  const double span = options.interval_seconds *
                      static_cast<double>(options.sample_intervals);
  double offered = 0;
  double blocked = 0;
  for (const ClassTotals& t : r.per_class) {
    offered += static_cast<double>(t.offered_calls);
    blocked += static_cast<double>(t.blocked_calls);
  }
  return {failure(r.per_class[0]), failure(r.per_class[1]),
          r.util_total[0] / (span * options.link_capacities_bps[0]),
          offered > 0 ? blocked / offered : 0.0};
}

std::vector<double> ComposedPoint(const runtime::SweepContext& ctx) {
  return ComposedPointImpl(ctx, /*use_legacy_event_heap=*/false);
}

std::vector<double> ComposedPointLegacyHeap(
    const runtime::SweepContext& ctx) {
  return ComposedPointImpl(ctx, /*use_legacy_event_heap=*/true);
}

TEST(ComposedSimulation, AllLayersInOneRunAreThreadCountInvariant) {
  const runtime::SweepSpec spec = ComposedSpec();
  runtime::SweepOptions options;
  options.base_seed = 20260806;
  options.event_capacity = 256;

  options.threads = 1;
  const runtime::SweepResult serial =
      runtime::RunSweep(spec, ComposedPoint, options);
  ASSERT_EQ(serial.points.size(), spec.points.size());

  if constexpr (obs::kEnabled) {
    // Every layer must actually have run: call dynamics (offered calls),
    // MBAC (Chernoff decisions), the signaling plane (resyncs through the
    // lossy channel), and multi-hop loss (the loss=0.05 points).
    EXPECT_GT(serial.metrics.counters.at("engine.offered_calls"), 0);
    EXPECT_GT(serial.metrics.counters.at("mbac.admit_accept"), 0);
    EXPECT_GT(serial.metrics.counters.at("signaling.resyncs"), 0);
    EXPECT_GT(serial.metrics.counters.at("signaling.cells_lost"), 0);
    EXPECT_FALSE(serial.events.empty());
  }

  for (std::size_t threads : {2u, 8u}) {
    options.threads = threads;
    const runtime::SweepResult parallel =
        runtime::RunSweep(spec, ComposedPoint, options);
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
      EXPECT_EQ(parallel.points[i].metrics, serial.points[i].metrics)
          << "point " << i << " diverged at " << threads << " threads";
    }
    // Byte-identical observability, not just equal summary numbers.
    EXPECT_EQ(parallel.metrics.ToJson("  "), serial.metrics.ToJson("  "));
    EXPECT_EQ(runtime::ToTraceJsonl(parallel),
              runtime::ToTraceJsonl(serial));
    EXPECT_EQ(runtime::ToJsonWithoutTimings(parallel),
              runtime::ToJsonWithoutTimings(serial));
  }
}

TEST(ComposedSimulation, EventQueueBackendsAreByteIdentical) {
  // Every layer of the composed run — call dynamics, MBAC float sums,
  // lossy signaling, the event trace — through the legacy binary heap
  // must be byte-identical to the calendar queue. This is the end-to-end
  // counterpart of the EventQueueDifferential pop-order pins.
  const runtime::SweepSpec spec = ComposedSpec();
  runtime::SweepOptions options;
  options.base_seed = 20260806;
  options.event_capacity = 256;
  options.threads = 1;

  const runtime::SweepResult calendar =
      runtime::RunSweep(spec, ComposedPoint, options);
  const runtime::SweepResult heap =
      runtime::RunSweep(spec, ComposedPointLegacyHeap, options);
  ASSERT_EQ(calendar.points.size(), heap.points.size());
  for (std::size_t i = 0; i < calendar.points.size(); ++i) {
    EXPECT_EQ(calendar.points[i].metrics, heap.points[i].metrics)
        << "point " << i;
  }
  EXPECT_EQ(calendar.metrics.ToJson("  "), heap.metrics.ToJson("  "));
  EXPECT_EQ(runtime::ToTraceJsonl(calendar), runtime::ToTraceJsonl(heap));
  EXPECT_EQ(runtime::ToJsonWithoutTimings(calendar),
            runtime::ToJsonWithoutTimings(heap));
}

TEST(ComposedSimulation, LossRequiresTrackedPorts) {
  const std::vector<CallProfile> profiles = {
      {PiecewiseConstant({{0, 1.0}}, 10), 1.0}};
  SimulationOptions options;
  options.link_capacities_bps = {10.0};
  options.classes.resize(1);
  options.classes[0].candidate_routes = {{0}};
  options.classes[0].arrival_rate_per_s = 0.1;
  options.sample_intervals = 1;
  options.interval_seconds = 10.0;
  options.cell_loss_probability = 0.1;
  options.track_connections = false;  // resync needs the per-VCI table
  Rng rng(1);
  EXPECT_THROW(RunSimulation(profiles, options, rng), InvalidArgument);
}

}  // namespace
}  // namespace rcbr::sim::engine
