#include "markov/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr::markov {
namespace {

TEST(Matrix, ZeroInitialized) {
  const Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(m.at(r, c), 0.0);
    }
  }
}

TEST(Matrix, FromRowsAndIdentity) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
  const Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id.at(0, 2), 0.0);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::FromRows({{1, 2}, {3}}), InvalidArgument);
  EXPECT_THROW(Matrix::FromRows({}), InvalidArgument);
}

TEST(Matrix, Transpose) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t.at(2, 1), 6.0);
}

TEST(Matrix, Multiply) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, InvalidArgument);
}

TEST(Matrix, ApplyVector) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  const auto y = m.Apply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  const auto z = m.ApplyLeft({1.0, 1.0});
  EXPECT_DOUBLE_EQ(z[0], 4.0);
  EXPECT_DOUBLE_EQ(z[1], 6.0);
}

TEST(Solve, TwoByTwo) {
  const Matrix a = Matrix::FromRows({{2, 1}, {1, 3}});
  const auto x = Solve(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Solve, RequiresPivoting) {
  // Leading zero forces a row swap.
  const Matrix a = Matrix::FromRows({{0, 1}, {1, 0}});
  const auto x = Solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Solve, SingularThrows) {
  const Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  EXPECT_THROW(Solve(a, {1.0, 2.0}), Error);
}

TEST(PerronRoot, StochasticMatrixHasRootOne) {
  const Matrix p = Matrix::FromRows({{0.9, 0.1}, {0.4, 0.6}});
  EXPECT_NEAR(PerronRoot(p), 1.0, 1e-9);
}

TEST(PerronRoot, DiagonalMatrix) {
  const Matrix m = Matrix::FromRows({{3, 0}, {0, 2}});
  EXPECT_NEAR(PerronRoot(m), 3.0, 1e-9);
}

TEST(PerronRoot, KnownNonSymmetric) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  const Matrix m = Matrix::FromRows({{2, 1}, {1, 2}});
  EXPECT_NEAR(PerronRoot(m), 3.0, 1e-9);
}

TEST(PerronRoot, RejectsNegativeEntries) {
  const Matrix m = Matrix::FromRows({{1, -1}, {0, 1}});
  EXPECT_THROW(PerronRoot(m), InvalidArgument);
}

TEST(PerronRoot, ZeroMatrixIsZero) {
  const Matrix m(3, 3);
  EXPECT_DOUBLE_EQ(PerronRoot(m), 0.0);
}

}  // namespace
}  // namespace rcbr::markov
