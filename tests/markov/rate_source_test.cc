#include "markov/rate_source.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace rcbr::markov {
namespace {

RateSource OnOffSource() {
  // pi_on = 2/3 at 300 bits/slot, off at 0 -> mean 200.
  return RateSource(MakeOnOffChain(0.2, 0.1), {0.0, 300.0});
}

TEST(RateSource, MeanAndPeak) {
  const RateSource src = OnOffSource();
  EXPECT_NEAR(src.MeanBitsPerSlot(), 200.0, 1e-9);
  EXPECT_DOUBLE_EQ(src.PeakBitsPerSlot(), 300.0);
}

TEST(RateSource, RejectsMismatchedRates) {
  EXPECT_THROW(RateSource(MakeOnOffChain(0.5, 0.5), {1.0}), InvalidArgument);
  EXPECT_THROW(RateSource(MakeOnOffChain(0.5, 0.5), {1.0, -2.0}),
               InvalidArgument);
}

TEST(RateSource, GenerateLengthAndValues) {
  const RateSource src = OnOffSource();
  rcbr::Rng rng(5);
  const auto workload = src.Generate(1000, rng);
  ASSERT_EQ(workload.size(), 1000u);
  for (double a : workload) {
    EXPECT_TRUE(a == 0.0 || a == 300.0);
  }
}

TEST(RateSource, EmpiricalMeanMatchesStationary) {
  const RateSource src = OnOffSource();
  rcbr::Rng rng(7);
  const auto workload = src.Generate(200000, rng);
  double sum = 0;
  for (double a : workload) sum += a;
  EXPECT_NEAR(sum / static_cast<double>(workload.size()), 200.0, 5.0);
}

TEST(RateSource, GenerateFromReportsStates) {
  const RateSource src = OnOffSource();
  rcbr::Rng rng(9);
  std::vector<std::size_t> states;
  const auto workload = src.GenerateFrom(1, 100, rng, &states);
  ASSERT_EQ(states.size(), 100u);
  EXPECT_EQ(states[0], 1u);
  for (std::size_t i = 0; i < states.size(); ++i) {
    EXPECT_DOUBLE_EQ(workload[i], states[i] == 1 ? 300.0 : 0.0);
  }
}

TEST(RateSource, DeterministicGivenRng) {
  const RateSource src = OnOffSource();
  rcbr::Rng a(42);
  rcbr::Rng b(42);
  EXPECT_EQ(src.Generate(500, a), src.Generate(500, b));
}

}  // namespace
}  // namespace rcbr::markov
