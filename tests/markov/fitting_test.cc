#include "markov/fitting.h"

#include <gtest/gtest.h>

#include "ldev/equivalent_bandwidth.h"
#include "trace/star_wars.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::markov {
namespace {

TEST(FitMultiTimescale, Validation) {
  const trace::FrameTrace sw = trace::MakeStarWarsTrace(1, 5000);
  FitOptions bad;
  bad.subchain_count = 1;
  EXPECT_THROW(FitMultiTimescale(sw, bad), InvalidArgument);
  bad = {};
  bad.fast_mixing = 0.9;
  EXPECT_THROW(FitMultiTimescale(sw, bad), InvalidArgument);
  const trace::FrameTrace tiny = trace::MakeStarWarsTrace(1, 100);
  EXPECT_THROW(FitMultiTimescale(tiny, {}), InvalidArgument);
}

TEST(FitMultiTimescale, FlatTraceIsDegenerate) {
  const trace::FrameTrace flat(std::vector<double>(5000, 100.0), 24.0);
  EXPECT_THROW(FitMultiTimescale(flat, {}), Error);
}

TEST(FitMultiTimescale, PreservesMeanRate) {
  const trace::FrameTrace sw = trace::MakeStarWarsTrace(3, 40000);
  const FittedModel fitted = FitMultiTimescale(sw);
  const double trace_mean = sw.mean_rate() / sw.fps();
  // The composite model's stationary mean should track the trace mean
  // (each subchain reproduces its level mean; occupancies match by
  // construction through the escape probabilities).
  EXPECT_NEAR(fitted.source.composite().MeanBitsPerSlot(), trace_mean,
              0.15 * trace_mean);
}

TEST(FitMultiTimescale, LevelsAreOrderedAndOccupanciesSum) {
  const trace::FrameTrace sw = trace::MakeStarWarsTrace(5, 40000);
  FitOptions options;
  options.subchain_count = 4;
  const FittedModel fitted = FitMultiTimescale(sw, options);
  ASSERT_EQ(fitted.level_bits_per_slot.size(), 4u);
  for (std::size_t k = 1; k < 4; ++k) {
    EXPECT_GT(fitted.level_bits_per_slot[k],
              fitted.level_bits_per_slot[k - 1]);
  }
  double total = 0;
  for (double p : fitted.occupancy) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(FitMultiTimescale, EpsilonReflectsSceneScale) {
  // Scene changes happen every few seconds -> epsilon per frame slot of
  // order 1e-2, far below the fast mixing of 0.4.
  const trace::FrameTrace sw = trace::MakeStarWarsTrace(7, 40000);
  const FittedModel fitted = FitMultiTimescale(sw);
  EXPECT_GT(fitted.epsilon, 1e-4);
  EXPECT_LT(fitted.epsilon, 0.1);
}

TEST(FitMultiTimescale, StationaryOccupancyMatchesMeasured) {
  const trace::FrameTrace sw = trace::MakeStarWarsTrace(9, 40000);
  const FittedModel fitted = FitMultiTimescale(sw);
  const auto pi = fitted.source.SubchainStationary();
  ASSERT_EQ(pi.size(), fitted.occupancy.size());
  for (std::size_t k = 0; k < pi.size(); ++k) {
    EXPECT_NEAR(pi[k], fitted.occupancy[k], 0.15)
        << "subchain " << k;
  }
}

TEST(FitMultiTimescale, EquivalentBandwidthIsUsable) {
  // The fitted model must plug into the large-deviations machinery and
  // produce an equivalent bandwidth between the trace mean and peak.
  const trace::FrameTrace sw = trace::MakeStarWarsTrace(11, 40000);
  const FittedModel fitted = FitMultiTimescale(sw);
  const double theta = ldev::QosExponent(300e3, 1e-6);
  const double eb =
      ldev::MultiTimescaleEquivalentBandwidth(fitted.source, theta);
  const double mean = sw.mean_rate() / sw.fps();
  EXPECT_GT(eb, mean);
  EXPECT_LT(eb, sw.max_frame_bits());
}

TEST(FitMultiTimescale, GeneratedTrafficResemblesTrace) {
  const trace::FrameTrace sw = trace::MakeStarWarsTrace(13, 40000);
  const FittedModel fitted = FitMultiTimescale(sw);
  rcbr::Rng rng(17);
  const auto synthetic =
      fitted.source.composite().Generate(40000, rng);
  double mean = 0;
  for (double a : synthetic) mean += a;
  mean /= static_cast<double>(synthetic.size());
  EXPECT_NEAR(mean, sw.mean_rate() / sw.fps(),
              0.2 * sw.mean_rate() / sw.fps());
}

TEST(MultiTimescale, PerSubchainEscapeSkewsStationary) {
  // Direct test of the new constructor: a subchain with a smaller escape
  // probability accumulates proportionally more stationary mass.
  std::vector<Subchain> subchains;
  subchains.push_back({MakeOnOffChain(0.4, 0.4), {50.0, 150.0}});
  subchains.push_back({MakeOnOffChain(0.4, 0.4), {250.0, 350.0}});
  const MultiTimescaleSource source(std::move(subchains), {1e-3, 4e-3});
  const auto pi = source.SubchainStationary();
  // pi_k ~ 1/escape_k -> 4:1.
  EXPECT_NEAR(pi[0] / pi[1], 4.0, 0.1);
}

TEST(MultiTimescale, EscapeVectorValidation) {
  std::vector<Subchain> subchains;
  subchains.push_back({MakeOnOffChain(0.4, 0.4), {0.0, 1.0}});
  subchains.push_back({MakeOnOffChain(0.4, 0.4), {1.0, 2.0}});
  EXPECT_THROW(
      MultiTimescaleSource(std::move(subchains), std::vector<double>{1e-3}),
      InvalidArgument);
  std::vector<Subchain> more;
  more.push_back({MakeOnOffChain(0.4, 0.4), {0.0, 1.0}});
  more.push_back({MakeOnOffChain(0.4, 0.4), {1.0, 2.0}});
  EXPECT_THROW(MultiTimescaleSource(std::move(more),
                                    std::vector<double>{1e-3, 0.0}),
               InvalidArgument);
}

}  // namespace
}  // namespace rcbr::markov
