#include "markov/dtmc.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace rcbr::markov {
namespace {

TEST(Dtmc, RejectsNonStochastic) {
  EXPECT_THROW(Dtmc(Matrix::FromRows({{0.5, 0.4}, {0.5, 0.5}})),
               InvalidArgument);
  EXPECT_THROW(Dtmc(Matrix::FromRows({{1.1, -0.1}, {0.5, 0.5}})),
               InvalidArgument);
  EXPECT_THROW(Dtmc(Matrix::FromRows({{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}})),
               InvalidArgument);
}

TEST(Dtmc, OnOffStationary) {
  // P(off->on)=0.2, P(on->off)=0.1 -> pi_on = 0.2/0.3 = 2/3.
  const Dtmc chain = MakeOnOffChain(0.2, 0.1);
  const auto pi = chain.StationaryDistribution();
  EXPECT_NEAR(pi[1], 2.0 / 3.0, 1e-10);
  EXPECT_NEAR(pi[0], 1.0 / 3.0, 1e-10);
}

TEST(Dtmc, StationaryIsFixedPoint) {
  const Dtmc chain = MakeBirthDeathChain(5, 0.3, 0.2);
  const auto pi = chain.StationaryDistribution();
  const auto pi_next = chain.transition().ApplyLeft(pi);
  for (std::size_t i = 0; i < pi.size(); ++i) {
    EXPECT_NEAR(pi_next[i], pi[i], 1e-10);
  }
  double total = 0;
  for (double p : pi) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Dtmc, BirthDeathStationaryGeometric) {
  // Detailed balance: pi_{i+1}/pi_i = up/down.
  const Dtmc chain = MakeBirthDeathChain(4, 0.4, 0.2);
  const auto pi = chain.StationaryDistribution();
  for (std::size_t i = 0; i + 1 < pi.size(); ++i) {
    EXPECT_NEAR(pi[i + 1] / pi[i], 2.0, 1e-9);
  }
}

TEST(Dtmc, IrreducibilityDetection) {
  EXPECT_TRUE(MakeOnOffChain(0.5, 0.5).IsIrreducible());
  // Absorbing state 1: not irreducible.
  const Dtmc absorbing(Matrix::FromRows({{0.5, 0.5}, {0.0, 1.0}}));
  EXPECT_FALSE(absorbing.IsIrreducible());
}

TEST(Dtmc, StationaryOnReducibleThrows) {
  const Dtmc absorbing(Matrix::FromRows({{0.5, 0.5}, {0.0, 1.0}}));
  EXPECT_THROW(absorbing.StationaryDistribution(), InvalidArgument);
}

TEST(Dtmc, StepStaysInRangeAndFollowsSupport) {
  const Dtmc chain(Matrix::FromRows({{0.0, 1.0}, {1.0, 0.0}}));
  rcbr::Rng rng(3);
  std::size_t s = 0;
  for (int i = 0; i < 50; ++i) {
    const std::size_t next = chain.Step(s, rng);
    EXPECT_EQ(next, 1 - s);  // deterministic alternation
    s = next;
  }
  EXPECT_THROW(chain.Step(2, rng), InvalidArgument);
}

TEST(Dtmc, SimulateVisitFrequenciesMatchStationary) {
  const Dtmc chain = MakeOnOffChain(0.2, 0.1);
  rcbr::Rng rng(11);
  const auto path = chain.Simulate(0, 200000, rng);
  double on = 0;
  for (std::size_t s : path) on += static_cast<double>(s);
  EXPECT_NEAR(on / static_cast<double>(path.size()), 2.0 / 3.0, 0.02);
}

TEST(Dtmc, SimulateStartsAtInitial) {
  const Dtmc chain = MakeOnOffChain(0.5, 0.5);
  rcbr::Rng rng(1);
  const auto path = chain.Simulate(1, 10, rng);
  ASSERT_EQ(path.size(), 10u);
  EXPECT_EQ(path[0], 1u);
}

TEST(Dtmc, SampleStationaryFrequencies) {
  const Dtmc chain = MakeOnOffChain(0.2, 0.1);
  rcbr::Rng rng(13);
  double on = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    on += static_cast<double>(chain.SampleStationary(rng));
  }
  EXPECT_NEAR(on / kN, 2.0 / 3.0, 0.02);
}

TEST(MakeOnOffChain, Validation) {
  EXPECT_THROW(MakeOnOffChain(0.0, 0.5), InvalidArgument);
  EXPECT_THROW(MakeOnOffChain(0.5, 1.5), InvalidArgument);
}

TEST(MakeBirthDeathChain, Validation) {
  EXPECT_THROW(MakeBirthDeathChain(1, 0.3, 0.3), InvalidArgument);
  EXPECT_THROW(MakeBirthDeathChain(3, 0.6, 0.6), InvalidArgument);
  EXPECT_THROW(MakeBirthDeathChain(3, 0.0, 0.5), InvalidArgument);
}

TEST(MakeBirthDeathChain, RowsAreStochastic) {
  const Dtmc chain = MakeBirthDeathChain(6, 0.25, 0.35);
  // Constructor would have thrown otherwise; also check irreducibility.
  EXPECT_TRUE(chain.IsIrreducible());
  EXPECT_EQ(chain.state_count(), 6u);
}

}  // namespace
}  // namespace rcbr::markov
