#include "markov/multi_timescale.h"

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace rcbr::markov {
namespace {

MultiTimescaleSource Example(double epsilon = 1e-3) {
  return MakeThreeSubchainSource(1000.0, epsilon);
}

TEST(MultiTimescale, CompositeIsIrreducibleAndStochastic) {
  const MultiTimescaleSource src = Example();
  EXPECT_TRUE(src.composite().chain().IsIrreducible());
  EXPECT_EQ(src.subchain_count(), 3u);
  EXPECT_EQ(src.composite().state_count(), 6u);
}

TEST(MultiTimescale, SubchainOwnershipLayout) {
  const MultiTimescaleSource src = Example();
  EXPECT_EQ(src.StateOffset(0), 0u);
  EXPECT_EQ(src.StateOffset(1), 2u);
  EXPECT_EQ(src.StateOffset(2), 4u);
  EXPECT_EQ(src.SubchainOfState(0), 0u);
  EXPECT_EQ(src.SubchainOfState(3), 1u);
  EXPECT_EQ(src.SubchainOfState(5), 2u);
  EXPECT_THROW(src.SubchainOfState(6), InvalidArgument);
}

TEST(MultiTimescale, UniformSwitchingGivesUniformSlowStationary) {
  // Symmetric epsilon-switching between identical-structure subchains
  // puts 1/3 stationary mass on each.
  const MultiTimescaleSource src = Example();
  const auto pi = src.SubchainStationary();
  ASSERT_EQ(pi.size(), 3u);
  for (double p : pi) EXPECT_NEAR(p, 1.0 / 3.0, 1e-6);
}

TEST(MultiTimescale, SubchainMeansOrdered) {
  const MultiTimescaleSource src = Example();
  const auto means = src.SubchainMeanBitsPerSlot();
  ASSERT_EQ(means.size(), 3u);
  EXPECT_LT(means[0], means[1]);
  EXPECT_LT(means[1], means[2]);
  // Scene rates 0.4, 0.9, 1.7 of the 1000-unit mean.
  EXPECT_NEAR(means[0], 400.0, 1e-6);
  EXPECT_NEAR(means[1], 900.0, 1e-6);
  EXPECT_NEAR(means[2], 1700.0, 1e-6);
}

TEST(MultiTimescale, OverallMeanMatchesTarget) {
  const MultiTimescaleSource src = Example();
  EXPECT_NEAR(src.composite().MeanBitsPerSlot(), 1000.0, 1.0);
}

TEST(MultiTimescale, RareTransitionsProduceLongSojourns) {
  const MultiTimescaleSource src = Example(1e-3);
  rcbr::Rng rng(3);
  std::vector<std::size_t> states;
  src.composite().GenerateFrom(0, 100000, rng, &states);
  // Count subchain switches; expect ~ epsilon * slots.
  std::int64_t switches = 0;
  for (std::size_t i = 1; i < states.size(); ++i) {
    if (src.SubchainOfState(states[i]) != src.SubchainOfState(states[i - 1])) {
      ++switches;
    }
  }
  EXPECT_GT(switches, 40);
  EXPECT_LT(switches, 250);  // mean 100
}

TEST(MultiTimescale, EpsilonControlsTimescaleSeparation) {
  rcbr::Rng rng(5);
  const MultiTimescaleSource slow = Example(1e-4);
  const MultiTimescaleSource fast = Example(1e-1);
  auto count_switches = [&rng](const MultiTimescaleSource& src) {
    rcbr::Rng local = rng.Fork();
    std::vector<std::size_t> states;
    src.composite().GenerateFrom(0, 50000, local, &states);
    std::int64_t switches = 0;
    for (std::size_t i = 1; i < states.size(); ++i) {
      if (src.SubchainOfState(states[i]) !=
          src.SubchainOfState(states[i - 1])) {
        ++switches;
      }
    }
    return switches;
  };
  EXPECT_LT(count_switches(slow) * 10, count_switches(fast));
}

TEST(MultiTimescale, Validation) {
  std::vector<Subchain> one;
  one.push_back({MakeOnOffChain(0.5, 0.5), {0.0, 1.0}});
  EXPECT_THROW(MultiTimescaleSource(std::move(one), 0.01), InvalidArgument);

  std::vector<Subchain> two;
  two.push_back({MakeOnOffChain(0.5, 0.5), {0.0, 1.0}});
  two.push_back({MakeOnOffChain(0.5, 0.5), {0.0, 2.0}});
  EXPECT_THROW(MultiTimescaleSource(std::move(two), 0.0), InvalidArgument);

  std::vector<Subchain> bad_rates;
  bad_rates.push_back({MakeOnOffChain(0.5, 0.5), {0.0}});
  bad_rates.push_back({MakeOnOffChain(0.5, 0.5), {0.0, 2.0}});
  EXPECT_THROW(MultiTimescaleSource(std::move(bad_rates), 0.01),
               InvalidArgument);
}

TEST(MakeThreeSubchainSource, RejectsNonPositiveMean) {
  EXPECT_THROW(MakeThreeSubchainSource(0.0, 0.01), InvalidArgument);
}

}  // namespace
}  // namespace rcbr::markov
