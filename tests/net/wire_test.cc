// The frame-decoder robustness matrix (control-channel wire format).
//
// The contract under test: any byte sequence — truncated at every
// boundary, oversized, garbage, NaN/Inf rates, trailing bytes — yields
// either a decoded frame or a clean WireError. Never a crash, a hang,
// or a silently accepted malformed frame; a poisoned decoder stays
// poisoned. CI runs this file under ASan/UBSan as well.

#include "net/wire.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::net {
namespace {

Frame DecodeOne(const std::vector<std::uint8_t>& bytes) {
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(frame), DecodeStatus::kFrame);
  EXPECT_EQ(decoder.error(), WireError::kNone);
  return frame;
}

WireError DecodeError(const std::vector<std::uint8_t>& bytes) {
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.Next(frame), DecodeStatus::kError);
  EXPECT_NE(decoder.error(), WireError::kNone);
  EXPECT_FALSE(decoder.error_message().empty());
  return decoder.error();
}

void PutU32(std::vector<std::uint8_t>& out, std::size_t at, std::uint32_t v) {
  out[at] = static_cast<std::uint8_t>(v);
  out[at + 1] = static_cast<std::uint8_t>(v >> 8);
  out[at + 2] = static_cast<std::uint8_t>(v >> 16);
  out[at + 3] = static_cast<std::uint8_t>(v >> 24);
}

std::vector<Frame> AllTypesSample() {
  std::vector<Frame> frames;
  Frame f;
  f.type = FrameType::kHello;
  f.slot = 3;
  f.seq = 1;
  f.vci = 42;
  f.rate_bps = 3.2e6;
  f.rung = 1;
  f.resync = true;
  f.slot_us = 10000;
  frames.push_back(f);
  f = Frame{};
  f.type = FrameType::kWelcome;
  f.seq = 2;
  f.accepted = true;
  f.rate_bps = 1.6e6;
  f.rung = 2;
  frames.push_back(f);
  f = Frame{};
  f.type = FrameType::kDelta;
  f.slot = 7;
  f.seq = 3;
  f.delta_bps = -4.0e5;
  f.rung = 1;
  frames.push_back(f);
  f = Frame{};
  f.type = FrameType::kResync;
  f.seq = 4;
  f.rate_bps = 0.1 + 0.2;  // a value whose bits matter
  frames.push_back(f);
  f = Frame{};
  f.type = FrameType::kGrant;
  f.seq = 5;
  f.rate_bps = 2.4e6;
  frames.push_back(f);
  f = Frame{};
  f.type = FrameType::kDeny;
  f.seq = 6;
  f.rate_bps = 8.0e5;
  f.rung = 3;
  frames.push_back(f);
  for (FrameType t : {FrameType::kHeartbeat, FrameType::kHeartbeatAck,
                      FrameType::kDrain, FrameType::kBye, FrameType::kByeAck,
                      FrameType::kStateQuery}) {
    f = Frame{};
    f.type = t;
    f.slot = 11;
    f.seq = 7;
    frames.push_back(f);
  }
  f = Frame{};
  f.type = FrameType::kData;
  f.slot = 13;
  f.seq = 8;
  f.data = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01};
  frames.push_back(f);
  f = Frame{};
  f.type = FrameType::kDataAck;
  f.seq = 9;
  f.total_bytes = 123456789;
  frames.push_back(f);
  f = Frame{};
  f.type = FrameType::kError;
  f.seq = 10;
  f.error_code = static_cast<std::uint32_t>(WireError::kRateViolation);
  frames.push_back(f);
  f = Frame{};
  f.type = FrameType::kStateReport;
  f.seq = 11;
  f.rate_bps = 5.0e5;
  f.rung = 1;
  f.known = true;
  frames.push_back(f);
  return frames;
}

TEST(WireTest, RoundTripsEveryFrameType) {
  for (const Frame& original : AllTypesSample()) {
    const Frame decoded = DecodeOne(Encode(original));
    EXPECT_EQ(decoded.type, original.type);
    EXPECT_EQ(decoded.slot, original.slot);
    EXPECT_EQ(decoded.seq, original.seq);
    EXPECT_EQ(decoded.vci, original.vci);
    // Bit-exact rate transport is the resync contract's foundation.
    EXPECT_EQ(std::memcmp(&decoded.rate_bps, &original.rate_bps, 8), 0)
        << FrameTypeName(original.type);
    EXPECT_EQ(std::memcmp(&decoded.delta_bps, &original.delta_bps, 8), 0);
    EXPECT_EQ(decoded.rung, original.rung);
    EXPECT_EQ(decoded.accepted, original.accepted);
    EXPECT_EQ(decoded.resync, original.resync);
    EXPECT_EQ(decoded.known, original.known);
    EXPECT_EQ(decoded.slot_us, original.slot_us);
    EXPECT_EQ(decoded.error_code, original.error_code);
    EXPECT_EQ(decoded.total_bytes, original.total_bytes);
    EXPECT_EQ(decoded.data, original.data);
  }
}

TEST(WireTest, TruncationAtEveryByteBoundaryNeedsMoreThenCompletes) {
  for (const Frame& original : AllTypesSample()) {
    const std::vector<std::uint8_t> bytes = Encode(original);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      FrameDecoder decoder;
      decoder.Feed(bytes.data(), cut);
      Frame frame;
      // A prefix is never an error — the rest may still arrive.
      ASSERT_EQ(decoder.Next(frame), DecodeStatus::kNeedMore)
          << FrameTypeName(original.type) << " cut at " << cut;
      // EOF here would leave pending bytes: the truncation signal.
      EXPECT_EQ(decoder.pending_bytes(), cut);
      decoder.Feed(bytes.data() + cut, bytes.size() - cut);
      ASSERT_EQ(decoder.Next(frame), DecodeStatus::kFrame);
      EXPECT_EQ(frame.seq, original.seq);
      EXPECT_EQ(decoder.pending_bytes(), 0u);
    }
  }
}

TEST(WireTest, OversizedLengthPrefixRejectedBeforeAllocation) {
  std::vector<std::uint8_t> bytes(4);
  PutU32(bytes, 0, kMaxPayloadBytes + 1);
  EXPECT_EQ(DecodeError(bytes), WireError::kOversizedFrame);
  PutU32(bytes, 0, 0xffffffffu);  // 4 GiB prefix must not allocate
  EXPECT_EQ(DecodeError(bytes), WireError::kOversizedFrame);
}

TEST(WireTest, PayloadTooSmallForHeaderIsTruncated) {
  for (std::uint32_t len = 0; len < kPayloadHeaderBytes; ++len) {
    std::vector<std::uint8_t> bytes(4 + len, 0);
    PutU32(bytes, 0, len);
    EXPECT_EQ(DecodeError(bytes), WireError::kTruncatedFrame) << len;
  }
}

TEST(WireTest, BodyShorterThanTypeLayoutIsTruncated) {
  // A Grant needs rate (8) + rung (4) after the header; give it 3 bytes.
  Frame grant;
  grant.type = FrameType::kGrant;
  grant.rate_bps = 1e6;
  std::vector<std::uint8_t> bytes = Encode(grant);
  bytes.resize(bytes.size() - 9);
  PutU32(bytes, 0, static_cast<std::uint32_t>(bytes.size() - 4));
  EXPECT_EQ(DecodeError(bytes), WireError::kTruncatedFrame);
}

TEST(WireTest, TrailingBytesRejected) {
  Frame bye;
  bye.type = FrameType::kBye;
  std::vector<std::uint8_t> bytes = Encode(bye);
  bytes.push_back(0xcc);
  PutU32(bytes, 0, static_cast<std::uint32_t>(bytes.size() - 4));
  EXPECT_EQ(DecodeError(bytes), WireError::kTrailingBytes);
}

TEST(WireTest, UnknownTypeRejected) {
  Frame heartbeat;
  heartbeat.type = FrameType::kHeartbeat;
  std::vector<std::uint8_t> bytes = Encode(heartbeat);
  bytes[4] = 0;  // type byte below the valid range
  EXPECT_EQ(DecodeError(bytes), WireError::kUnknownType);
  bytes[4] = 99;  // and above it
  EXPECT_EQ(DecodeError(bytes), WireError::kUnknownType);
}

TEST(WireTest, NonFiniteRatesRejectedInEveryRateField) {
  const double bad[] = {std::numeric_limits<double>::quiet_NaN(),
                        std::numeric_limits<double>::infinity(),
                        -std::numeric_limits<double>::infinity()};
  for (double value : bad) {
    for (FrameType t : {FrameType::kHello, FrameType::kWelcome,
                        FrameType::kResync, FrameType::kGrant,
                        FrameType::kDeny, FrameType::kStateReport}) {
      Frame f;
      f.type = t;
      f.rate_bps = value;
      EXPECT_EQ(DecodeError(Encode(f)), WireError::kNonFiniteRate)
          << FrameTypeName(t);
    }
    Frame d;
    d.type = FrameType::kDelta;
    d.delta_bps = value;
    EXPECT_EQ(DecodeError(Encode(d)), WireError::kNonFiniteRate);
  }
}

TEST(WireTest, DataLengthFieldMustMatchChunk) {
  Frame data;
  data.type = FrameType::kData;
  data.data = {1, 2, 3, 4};
  std::vector<std::uint8_t> bytes = Encode(data);
  // The in-body u32 length sits right after the 13-byte payload header.
  PutU32(bytes, 4 + kPayloadHeaderBytes, 5);
  EXPECT_EQ(DecodeError(bytes), WireError::kTruncatedFrame);
  PutU32(bytes, 4 + kPayloadHeaderBytes, 3);
  EXPECT_EQ(DecodeError(bytes), WireError::kTruncatedFrame);
}

TEST(WireTest, DataAtMaxPayloadRoundTripsAndOneOverThrows) {
  Frame data;
  data.type = FrameType::kData;
  data.data.assign(kMaxPayloadBytes - kPayloadHeaderBytes - 4, 0xab);
  const Frame decoded = DecodeOne(Encode(data));
  EXPECT_EQ(decoded.data.size(), data.data.size());

  data.data.push_back(0xab);
  EXPECT_THROW(Encode(data), InvalidArgument);
}

TEST(WireTest, PoisonedDecoderStaysPoisonedAndDropsLaterInput) {
  FrameDecoder decoder;
  std::vector<std::uint8_t> bad(4);
  PutU32(bad, 0, kMaxPayloadBytes + 1);
  decoder.Feed(bad.data(), bad.size());
  Frame frame;
  ASSERT_EQ(decoder.Next(frame), DecodeStatus::kError);
  const WireError first = decoder.error();

  Frame ok;
  ok.type = FrameType::kHeartbeat;
  const std::vector<std::uint8_t> good = Encode(ok);
  decoder.Feed(good.data(), good.size());
  EXPECT_EQ(decoder.Next(frame), DecodeStatus::kError);
  EXPECT_EQ(decoder.error(), first);
}

TEST(WireTest, InterleavedStreamDecodesFrameByFrame) {
  std::vector<std::uint8_t> stream;
  const std::vector<Frame> frames = AllTypesSample();
  for (const Frame& f : frames) EncodeFrame(f, stream);

  // Feed in awkward 7-byte chunks; every frame must come out in order.
  FrameDecoder decoder;
  std::size_t fed = 0;
  std::size_t decoded = 0;
  Frame frame;
  while (decoded < frames.size()) {
    while (decoder.Next(frame) == DecodeStatus::kFrame) {
      ASSERT_LT(decoded, frames.size());
      EXPECT_EQ(frame.type, frames[decoded].type);
      EXPECT_EQ(frame.seq, frames[decoded].seq);
      ++decoded;
    }
    ASSERT_EQ(decoder.error(), WireError::kNone);
    if (decoded == frames.size()) break;
    ASSERT_LT(fed, stream.size()) << "decoder hung: wants more than exists";
    const std::size_t n = std::min<std::size_t>(7, stream.size() - fed);
    decoder.Feed(stream.data() + fed, n);
    fed += n;
  }
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(WireTest, SeededGarbageNeverCrashesOrHangs) {
  Rng rng(20260809);
  for (int trial = 0; trial < 64; ++trial) {
    FrameDecoder decoder;
    std::vector<std::uint8_t> garbage(1024);
    for (auto& b : garbage)
      b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
    decoder.Feed(garbage.data(), garbage.size());
    Frame frame;
    // Bounded loop: each Next either consumes a frame, asks for more, or
    // poisons. 4096 iterations over 1 KiB proves no livelock.
    int guard = 4096;
    DecodeStatus status = DecodeStatus::kFrame;
    while (status == DecodeStatus::kFrame && guard-- > 0) {
      status = decoder.Next(frame);
    }
    EXPECT_GT(guard, 0);
    EXPECT_NE(status, DecodeStatus::kFrame);
  }
}

}  // namespace
}  // namespace rcbr::net
