// The loopback chaos gate, as a unit test: client -> impairment proxy
// -> server in one process, driven by a seeded FaultPlan with a loss
// burst, a delay spike past the response deadline, a link-down window,
// a controller crash/restart, and a mid-session drain.
//
// The acceptance invariants from the failure model:
//  * the session completes (acknowledged Bye) within the retry budget;
//  * zero desyncs — after every crash/reconnect the client and server
//    agree on the granted rate byte-exactly (StateQuery audit);
//  * determinism — the same seeds produce the same canonical session
//    log, byte for byte, across independent runs.

#include <cstring>

#include "gtest/gtest.h"
#include "net/chaos.h"

namespace rcbr::net {
namespace {

ChaosOptions SmallChaos(std::uint64_t seed) {
  ChaosOptions options;
  options.client.seed = seed;
  options.client.slots = 200;
  options.client.slot_seconds = 0.01;
  options.client.ladder =
      sim::RateLadder::FromScales({1.0, 0.5, 0.25}, {1.0, 0.5, 0.25});
  options.client.heuristic.initial_rate_bits_per_slot = 32e3;
  options.client.heuristic.granularity_bits_per_slot = 4e3;
  options.client.heuristic.max_rate_bits_per_slot = 96e3;
  options.client.heuristic.denial_cooldown_slots = 8;
  options.client.retry.timeout_s = 0.06;
  options.client.retry.max_retries = 3;
  options.client.response_deadline_ms = 250;
  options.server.capacity_bps = 10e6;
  // drain near the end: the SIGTERM stand-in.
  options.server.drain_at_slot = 180;

  sim::fault::FaultEvent burst;
  burst.time_s = 0.3;
  burst.kind = sim::fault::FaultKind::kRmLossBurst;
  burst.duration_s = 0.2;
  burst.loss_probability = 0.35;
  options.plan.Add(burst);

  sim::fault::FaultEvent spike;  // deterministic "lost late" window
  spike.time_s = 0.64;
  spike.kind = sim::fault::FaultKind::kRmLossBurst;
  spike.duration_s = 0.06;
  spike.extra_delay_s = 10.0;
  options.plan.Add(spike);

  sim::fault::FaultEvent crash;
  crash.time_s = 0.9;
  crash.kind = sim::fault::FaultKind::kControllerCrash;
  options.plan.Add(crash);

  sim::fault::FaultEvent down;
  down.time_s = 1.44;
  down.kind = sim::fault::FaultKind::kLinkDown;
  options.plan.Add(down);
  sim::fault::FaultEvent up;
  up.time_s = 1.52;
  up.kind = sim::fault::FaultKind::kLinkUp;
  options.plan.Add(up);

  return options;
}

TEST(ChaosTest, SurvivesTheFullScheduleAndStaysByteExact) {
  const ChaosResult result = RunChaos(SmallChaos(5));
  EXPECT_TRUE(result.Passed())
      << "completed=" << result.completed << " gave_up=" << result.gave_up
      << " desyncs=" << result.desyncs << "\n"
      << result.session_canonical;
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.desyncs, 0);
  // The crash actually fired and the client actually repaired it.
  EXPECT_GE(result.crash_generations, 1u);
  EXPECT_GE(result.client.reconnects, 1);
  EXPECT_GE(result.client.resyncs, 1);
  // The drain stand-in reached the client and the session still closed
  // with an acknowledged Bye.
  EXPECT_GE(result.client.drain_notices, 1);
  EXPECT_GE(result.server.byes, 1);
  // The proxy did real damage (otherwise the run proves nothing).
  EXPECT_GE(result.proxy.dropped_loss + result.proxy.dropped_late +
                result.proxy.dropped_down,
            1);
  // Reservation released after Bye. (sessions_opened may exceed
  // sessions_closed: crash-severed connections die without a Bye.)
  EXPECT_EQ(result.server_utilization_bps, 0.0);
}

TEST(ChaosTest, SameSeedsSameSessionLogByteForByte) {
  const ChaosResult first = RunChaos(SmallChaos(5));
  const ChaosResult second = RunChaos(SmallChaos(5));
  ASSERT_TRUE(first.Passed());
  ASSERT_TRUE(second.Passed());
  EXPECT_EQ(first.session_canonical, second.session_canonical);
  EXPECT_EQ(first.session_jsonl, second.session_jsonl);
  EXPECT_TRUE(
      std::memcmp(&first.final_rate_bps, &second.final_rate_bps, 8) == 0);
  EXPECT_EQ(first.final_rung, second.final_rung);
  EXPECT_EQ(first.client.charged_slots, second.client.charged_slots);
}

TEST(ChaosTest, DifferentSeedDivergesButStillPasses) {
  const ChaosResult a = RunChaos(SmallChaos(5));
  const ChaosResult b = RunChaos(SmallChaos(6));
  ASSERT_TRUE(a.Passed());
  ASSERT_TRUE(b.Passed());
  EXPECT_NE(a.session_canonical, b.session_canonical);
}

TEST(ChaosTest, ReportJsonCarriesTheGateAndTheSession) {
  const ChaosOptions options = SmallChaos(5);
  const ChaosResult result = RunChaos(options);
  const std::string json = ChaosReportJson(options, result);
  EXPECT_NE(json.find("\"experiment\": \"rcbr_chaos\""), std::string::npos);
  EXPECT_NE(json.find("\"passed\": true"), std::string::npos);
  EXPECT_NE(json.find("\"desyncs\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"session\": ["), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"reconnect\""), std::string::npos);
}

}  // namespace
}  // namespace rcbr::net
