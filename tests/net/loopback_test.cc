// Loopback daemon integration: rcbrd's Server against both the real
// Client and a raw hand-rolled peer.
//
// The Client half exercises the happy path, the ladder walk on
// admission, and byte-exact agreement after a clean session. The raw
// peer half drives the server off the rails on purpose — handshake
// violations, stale sequence numbers, metering fraud, draining refusals
// — and asserts every one dies as a clean kError frame, never a hang or
// a silent accept.

#include <chrono>
#include <cstring>
#include <optional>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"

namespace rcbr::net {
namespace {

bool SameBits(double a, double b) { return std::memcmp(&a, &b, 8) == 0; }

class ServerFixture : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options) {
    options.port = 0;
    options.client_deadline_ms = 2000;
    server_.emplace(options);
    ASSERT_TRUE(server_->Start());
    thread_ = std::thread([this] { server_->Serve(); });
  }

  void TearDown() override {
    if (server_.has_value()) {
      server_->Stop();
      if (thread_.joinable()) thread_.join();
    }
  }

  ClientOptions BaseClient() {
    ClientOptions options;
    options.host = "127.0.0.1";
    options.port = server_->port();
    options.slots = 80;
    options.slot_seconds = 0.005;
    options.heuristic.initial_rate_bits_per_slot = 32e3;
    options.heuristic.granularity_bits_per_slot = 4e3;
    options.heuristic.max_rate_bits_per_slot = 96e3;
    options.retry.timeout_s = 0.05;
    options.retry.max_retries = 2;
    options.seed = 11;
    return options;
  }

  std::optional<Server> server_;
  std::thread thread_;
};

TEST_F(ServerFixture, HappyPathCompletesByteExact) {
  StartServer(ServerOptions{});
  ClientOptions options = BaseClient();
  Client client(options);
  ASSERT_TRUE(client.Run());
  const ClientStats& stats = client.stats();
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.desyncs, 0);
  EXPECT_EQ(stats.timeouts, 0);
  EXPECT_GT(stats.grants, 0);
  EXPECT_GT(stats.sent_bytes, 0);
  EXPECT_EQ(stats.acked_bytes, stats.sent_bytes);
  EXPECT_GE(client.log().Count(SessionEventKind::kBye), 1u);
  // The session released its reservation on Bye.
  EXPECT_EQ(server_->utilization_bps(), 0.0);
  EXPECT_EQ(server_->stats().sessions_opened, 1);
  EXPECT_EQ(server_->stats().byes, 1);
  EXPECT_EQ(server_->stats().protocol_errors, 0);
}

TEST_F(ServerFixture, AdmissionWalksLadderToAFeasibleRung) {
  // Initial ask: 32e3 bits / 0.005 s = 6.4 Mb/s at rung 0; capacity
  // admits only the rung-2 quarter-rate ask.
  ServerOptions server_options;
  server_options.capacity_bps = 2e6;
  StartServer(server_options);
  ClientOptions options = BaseClient();
  options.ladder =
      sim::RateLadder::FromScales({1.0, 0.5, 0.25}, {1.0, 0.5, 0.25});
  options.upgrade_every_slots = 0;  // hold the admitted rung
  Client client(options);
  ASSERT_TRUE(client.Run());
  EXPECT_EQ(client.rung(), 2u);
  EXPECT_EQ(client.log().Count(SessionEventKind::kConnectDenied), 2u);
  EXPECT_EQ(client.stats().desyncs, 0);
  // Bye released the reservation, and with it the upgrade-queue seat.
  EXPECT_FALSE(server_->IsUpgradeWaiter(options.vci));
  EXPECT_EQ(server_->utilization_bps(), 0.0);
}

TEST_F(ServerFixture, AdmissionBlockedOnEveryRungGivesUpWithoutRedial) {
  ServerOptions server_options;
  server_options.capacity_bps = 1e3;  // below even the deepest rung
  StartServer(server_options);
  ClientOptions options = BaseClient();
  options.ladder = sim::RateLadder::FromScales({1.0, 0.5}, {1.0, 0.5});
  Client client(options);
  EXPECT_FALSE(client.Run());
  EXPECT_TRUE(client.stats().gave_up);
  EXPECT_FALSE(client.stats().completed);
  EXPECT_EQ(client.log().Count(SessionEventKind::kConnectDenied), 2u);
  EXPECT_EQ(client.log().Count(SessionEventKind::kGiveUp), 1u);
  // Admission refusal is definitive: no reconnect storm.
  EXPECT_EQ(client.stats().reconnect_attempts, 0);
}

// --- Raw-peer tests: drive the protocol off the rails on purpose. ---

class RawPeer {
 public:
  static std::optional<RawPeer> Connect(std::uint16_t port) {
    auto stream = TcpStream::Connect("127.0.0.1", port, 1000);
    if (!stream.has_value()) return std::nullopt;
    RawPeer peer;
    peer.stream_ = std::move(*stream);
    return peer;
  }

  bool Send(Frame frame) {
    frame.seq = next_seq_++;
    const std::vector<std::uint8_t> bytes = Encode(frame);
    return stream_.SendAll(bytes.data(), bytes.size());
  }

  bool SendWithSeq(Frame frame, std::uint64_t seq) {
    frame.seq = seq;
    const std::vector<std::uint8_t> bytes = Encode(frame);
    return stream_.SendAll(bytes.data(), bytes.size());
  }

  bool SendRaw(const std::vector<std::uint8_t>& bytes) {
    return stream_.SendAll(bytes.data(), bytes.size());
  }

  /// Blocks until one frame arrives (2 s ceiling). nullopt = EOF/error.
  std::optional<Frame> Next() {
    Frame frame;
    for (int spins = 0; spins < 200; ++spins) {
      if (decoder_.Next(frame) == DecodeStatus::kFrame) return frame;
      if (decoder_.error() != WireError::kNone) return std::nullopt;
      std::uint8_t buf[4096];
      const RecvResult r = stream_.RecvSome(buf, sizeof buf, 10);
      if (r.status == RecvStatus::kData) {
        decoder_.Feed(buf, r.bytes);
      } else if (r.status != RecvStatus::kTimeout) {
        return std::nullopt;
      }
    }
    return std::nullopt;
  }

  /// True when the peer closes the stream (possibly after pending data).
  bool SawEof() {
    for (int spins = 0; spins < 200; ++spins) {
      std::uint8_t buf[4096];
      const RecvResult r = stream_.RecvSome(buf, sizeof buf, 10);
      if (r.status == RecvStatus::kClosed || r.status == RecvStatus::kError)
        return true;
      if (r.status == RecvStatus::kData) decoder_.Feed(buf, r.bytes);
    }
    return false;
  }

  std::uint64_t next_seq_ = 1;

 private:
  TcpStream stream_;
  FrameDecoder decoder_;
};

Frame HelloFrame(double rate_bps, std::uint64_t vci = 9,
                 std::uint32_t rung = 0) {
  Frame hello;
  hello.type = FrameType::kHello;
  hello.vci = vci;
  hello.rate_bps = rate_bps;
  hello.rung = rung;
  hello.slot_us = 10000;  // 10 ms slots
  return hello;
}

void ExpectError(RawPeer& peer, WireError code) {
  const std::optional<Frame> reply = peer.Next();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, FrameType::kError);
  EXPECT_EQ(reply->error_code, static_cast<std::uint32_t>(code));
  EXPECT_TRUE(peer.SawEof());
}

TEST_F(ServerFixture, DataBeforeHelloIsNotAdmitted) {
  StartServer(ServerOptions{});
  auto peer = RawPeer::Connect(server_->port());
  ASSERT_TRUE(peer.has_value());
  Frame data;
  data.type = FrameType::kData;
  data.data = {1, 2, 3};
  ASSERT_TRUE(peer->Send(data));
  ExpectError(*peer, WireError::kNotAdmitted);
}

TEST_F(ServerFixture, SecondHelloIsBadHandshake) {
  StartServer(ServerOptions{});
  auto peer = RawPeer::Connect(server_->port());
  ASSERT_TRUE(peer.has_value());
  ASSERT_TRUE(peer->Send(HelloFrame(1e6)));
  auto welcome = peer->Next();
  ASSERT_TRUE(welcome.has_value());
  ASSERT_EQ(welcome->type, FrameType::kWelcome);
  ASSERT_TRUE(welcome->accepted);
  ASSERT_TRUE(peer->Send(HelloFrame(2e6)));
  ExpectError(*peer, WireError::kBadHandshake);
}

TEST_F(ServerFixture, MalformedHelloFieldsAreBadHandshake) {
  StartServer(ServerOptions{});
  auto peer = RawPeer::Connect(server_->port());
  ASSERT_TRUE(peer.has_value());
  ASSERT_TRUE(peer->Send(HelloFrame(1e6, /*vci=*/0)));
  ExpectError(*peer, WireError::kBadHandshake);
}

TEST_F(ServerFixture, StaleSequenceIsReplay) {
  StartServer(ServerOptions{});
  auto peer = RawPeer::Connect(server_->port());
  ASSERT_TRUE(peer.has_value());
  ASSERT_TRUE(peer->SendWithSeq(HelloFrame(1e6), 5));
  auto welcome = peer->Next();
  ASSERT_TRUE(welcome.has_value());
  ASSERT_EQ(welcome->type, FrameType::kWelcome);
  Frame heartbeat;
  heartbeat.type = FrameType::kHeartbeat;
  ASSERT_TRUE(peer->SendWithSeq(heartbeat, 5));  // duplicate
  ExpectError(*peer, WireError::kStaleSequence);
}

TEST_F(ServerFixture, GarbageBytesPoisonTheConnectionCleanly) {
  StartServer(ServerOptions{});
  auto peer = RawPeer::Connect(server_->port());
  ASSERT_TRUE(peer.has_value());
  ASSERT_TRUE(peer->Send(HelloFrame(1e6)));
  ASSERT_TRUE(peer->Next().has_value());
  // Corrupt the length prefix of an otherwise valid frame: an oversized
  // prefix straight onto the wire poisons the server's decoder.
  Frame hb;
  hb.type = FrameType::kHeartbeat;
  hb.seq = 2;
  std::vector<std::uint8_t> bytes = Encode(hb);
  bytes[3] = 0xff;
  ASSERT_TRUE(peer->SendRaw(bytes));
  EXPECT_TRUE(peer->SawEof());
  EXPECT_GE(server_->stats().protocol_errors, 1);
}

TEST_F(ServerFixture, MeteringCatchesSustainedOverGrantSending) {
  StartServer(ServerOptions{});
  auto peer = RawPeer::Connect(server_->port());
  ASSERT_TRUE(peer.has_value());
  // 1e5 bps at 10 ms slots = 1e3 bits/slot. Tolerance is 4 slots + one
  // 1500-byte MTU of headroom; 40 KiB in a single slot busts it.
  ASSERT_TRUE(peer->Send(HelloFrame(1e5)));
  auto welcome = peer->Next();
  ASSERT_TRUE(welcome.has_value());
  ASSERT_TRUE(welcome->accepted);
  bool errored = false;
  for (int i = 0; i < 40 && !errored; ++i) {
    Frame data;
    data.type = FrameType::kData;
    data.slot = 1;  // no elapsed slots, no new credit
    data.data.assign(1024, 0x55);
    if (!peer->Send(data)) break;
    std::optional<Frame> reply = peer->Next();
    if (!reply.has_value()) break;
    if (reply->type == FrameType::kError) {
      EXPECT_EQ(reply->error_code,
                static_cast<std::uint32_t>(WireError::kRateViolation));
      errored = true;
    } else {
      EXPECT_EQ(reply->type, FrameType::kDataAck);
    }
  }
  EXPECT_TRUE(errored);
}

TEST_F(ServerFixture, FreshHelloWhileDrainingIsRefused) {
  StartServer(ServerOptions{});
  server_->RequestDrain();
  // Drain refuses new sessions but keeps the listener up briefly; a
  // freshly accepted connection gets the draining error.
  auto peer = RawPeer::Connect(server_->port());
  if (!peer.has_value()) {
    // Listener already closed: equally acceptable refusal.
    SUCCEED();
    return;
  }
  if (!peer->Send(HelloFrame(1e6))) {
    SUCCEED();  // connection reset by the drained server
    return;
  }
  const std::optional<Frame> reply = peer->Next();
  if (reply.has_value()) {
    ASSERT_EQ(reply->type, FrameType::kError);
    EXPECT_EQ(reply->error_code,
              static_cast<std::uint32_t>(WireError::kServerDraining));
  }
}

TEST_F(ServerFixture, ResyncHelloRepairsACrashedServerByteExactly) {
  StartServer(ServerOptions{});
  const double odd_rate = 0.1 + 0.2;  // 0.30000000000000004 — bits matter
  {
    auto peer = RawPeer::Connect(server_->port());
    ASSERT_TRUE(peer.has_value());
    ASSERT_TRUE(peer->Send(HelloFrame(odd_rate * 1e6, 9, 0)));
    auto welcome = peer->Next();
    ASSERT_TRUE(welcome.has_value());
    ASSERT_TRUE(welcome->accepted);
  }
  server_->InjectCrash();
  const std::uint64_t generation = server_->crash_generation();
  for (int spins = 0; spins < 200 && server_->crash_generation() == generation;
       ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GT(server_->crash_generation(), generation);

  auto peer = RawPeer::Connect(server_->port());
  ASSERT_TRUE(peer.has_value());
  Frame hello = HelloFrame(odd_rate * 1e6, 9, 0);
  hello.resync = true;
  ASSERT_TRUE(peer->Send(hello));
  auto welcome = peer->Next();
  ASSERT_TRUE(welcome.has_value());
  ASSERT_TRUE(welcome->accepted);
  EXPECT_TRUE(SameBits(welcome->rate_bps, odd_rate * 1e6));

  Frame query;
  query.type = FrameType::kStateQuery;
  ASSERT_TRUE(peer->Send(query));
  auto report = peer->Next();
  ASSERT_TRUE(report.has_value());
  ASSERT_EQ(report->type, FrameType::kStateReport);
  EXPECT_TRUE(report->known);
  EXPECT_TRUE(SameBits(report->rate_bps, odd_rate * 1e6));
}

}  // namespace
}  // namespace rcbr::net
