#include "admission/descriptor.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr::admission {
namespace {

TEST(DescriptorFromSchedule, FractionsOfTime) {
  // 10 slots: rate 1 for 4 slots, rate 3 for 6 slots.
  const PiecewiseConstant schedule({{0, 1.0}, {4, 3.0}}, 10);
  const auto d = DescriptorFromSchedule(schedule);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.values()[0], 1.0);
  EXPECT_DOUBLE_EQ(d.probabilities()[0], 0.4);
  EXPECT_DOUBLE_EQ(d.values()[1], 3.0);
  EXPECT_DOUBLE_EQ(d.probabilities()[1], 0.6);
}

TEST(DescriptorFromSchedule, RepeatedLevelsAggregate) {
  const PiecewiseConstant schedule({{0, 1.0}, {2, 3.0}, {4, 1.0}}, 8);
  const auto d = DescriptorFromSchedule(schedule);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.probabilities()[0], 0.75);  // slots 0-1 and 4-7
}

TEST(DescriptorFromSchedule, MeanMatchesScheduleMean) {
  const PiecewiseConstant schedule({{0, 2.0}, {3, 5.0}, {7, 1.0}}, 12);
  const auto d = DescriptorFromSchedule(schedule);
  EXPECT_NEAR(d.Mean(), schedule.Mean(), 1e-12);
}

TEST(HistogramFromSchedule, SnapsToGrid) {
  const PiecewiseConstant schedule({{0, 0.9}, {5, 3.2}}, 10);
  const Histogram h = HistogramFromSchedule(schedule, {0.0, 1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(h.weights()[1], 5.0);  // 0.9 -> 1.0
  EXPECT_DOUBLE_EQ(h.weights()[3], 5.0);  // 3.2 -> 3.0
  EXPECT_DOUBLE_EQ(h.total_weight(), 10.0);
}

TEST(PooledDescriptor, WeightsByDuration) {
  const PiecewiseConstant a = PiecewiseConstant::Constant(1.0, 10);
  const PiecewiseConstant b = PiecewiseConstant::Constant(3.0, 30);
  const auto d = PooledDescriptor({a, b}, {0.0, 1.0, 2.0, 3.0});
  // 10 slots at 1, 30 slots at 3.
  EXPECT_DOUBLE_EQ(d.probabilities()[1], 0.25);
  EXPECT_DOUBLE_EQ(d.probabilities()[3], 0.75);
}

TEST(PooledDescriptor, EmptyThrows) {
  EXPECT_THROW(PooledDescriptor({}, {0.0, 1.0}), InvalidArgument);
}

}  // namespace
}  // namespace rcbr::admission
