#include "admission/deterministic.h"

#include <gtest/gtest.h>

#include "sim/fluid_queue.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::admission {
namespace {

TEST(SigmaForRho, KnownWorkload) {
  // Bursts of 10 against rho = 4: excess peaks at 6 after one burst,
  // drains 4/slot during the zeros.
  const std::vector<double> workload = {10, 0, 0, 10, 0, 0};
  EXPECT_DOUBLE_EQ(SigmaForRho(workload, 4.0), 6.0);
  // rho at the peak slot rate: no excess at all.
  EXPECT_DOUBLE_EQ(SigmaForRho(workload, 10.0), 0.0);
  // rho = 0: sigma is the whole stream.
  EXPECT_DOUBLE_EQ(SigmaForRho(workload, 0.0), 20.0);
}

TEST(SigmaForRho, MonotoneDecreasingInRho) {
  rcbr::Rng rng(3);
  std::vector<double> workload(500);
  for (double& a : workload) a = rng.Uniform(0.0, 10.0);
  double prev = 1e300;
  for (double rho = 0.0; rho <= 10.0; rho += 1.0) {
    const double sigma = SigmaForRho(workload, rho);
    EXPECT_LE(sigma, prev + 1e-12);
    prev = sigma;
  }
}

TEST(SigmaForRho, EnvelopeActuallyHolds) {
  // The (sigma, rho) pair must envelope every window of the workload —
  // equivalently, a token bucket (sigma, rho) passes the stream with no
  // queueing beyond sigma.
  rcbr::Rng rng(5);
  std::vector<double> workload(400);
  for (double& a : workload) a = rng.Uniform(0.0, 8.0);
  const double rho = 3.0;
  const double sigma = SigmaForRho(workload, rho);
  const sim::DrainResult r =
      sim::DrainConstant(workload, rho, sigma);
  EXPECT_DOUBLE_EQ(r.lost_bits, 0.0);
  EXPECT_NEAR(r.max_occupancy_bits, sigma, 1e-9);
}

TEST(MaxDeterministicCalls, RateAndBufferConstraints) {
  const LeakyBucketDescriptor d{10.0, 2.0};
  // Rate-bound: C/rho = 5; buffer-bound: B/sigma = 3.
  EXPECT_EQ(MaxDeterministicCalls(d, 10.0, 30.0), 3);
  // Generous buffer: rate binds.
  EXPECT_EQ(MaxDeterministicCalls(d, 10.0, 1000.0), 5);
}

TEST(MaxDeterministicCalls, ZeroSigmaMeansRateOnly) {
  const LeakyBucketDescriptor d{0.0, 2.0};
  EXPECT_EQ(MaxDeterministicCalls(d, 11.0, 0.0), 5);
}

TEST(MaxDeterministicCalls, DegenerateDescriptorThrows) {
  const LeakyBucketDescriptor d{0.0, 0.0};
  EXPECT_THROW(MaxDeterministicCalls(d, 10.0, 10.0), InvalidArgument);
}

TEST(MaxPeakRateCalls, FloorsCorrectly) {
  EXPECT_EQ(MaxPeakRateCalls(4.0, 10.0), 2);
  EXPECT_EQ(MaxPeakRateCalls(4.0, 12.0), 3);
  EXPECT_EQ(MaxPeakRateCalls(4.0, 3.0), 0);
  EXPECT_THROW(MaxPeakRateCalls(0.0, 10.0), InvalidArgument);
}

TEST(Deterministic, GuaranteeIsActuallyLossless) {
  // Admit N_max homogeneous calls and push their aggregate worst case
  // through a FIFO of (C, B): zero loss, by construction.
  rcbr::Rng rng(7);
  std::vector<double> workload(600);
  for (std::size_t t = 0; t < workload.size(); ++t) {
    workload[t] = rng.Uniform(0.0, 4.0) + ((t / 60) % 3 == 0 ? 5.0 : 0.0);
  }
  const double rho = 4.0;
  const LeakyBucketDescriptor d = EnvelopeAtRate(workload, rho);
  const double capacity = 40.0;
  const double buffer = 400.0;
  const std::int64_t n = MaxDeterministicCalls(d, capacity, buffer);
  ASSERT_GT(n, 0);
  // Worst case: all N calls aligned (identical phases).
  std::vector<double> aggregate(workload.size());
  for (std::size_t t = 0; t < workload.size(); ++t) {
    aggregate[t] = workload[t] * static_cast<double>(n);
  }
  const sim::DrainResult r =
      sim::DrainConstant(aggregate, capacity, buffer);
  EXPECT_DOUBLE_EQ(r.lost_bits, 0.0);
}

}  // namespace
}  // namespace rcbr::admission
