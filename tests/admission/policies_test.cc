#include "admission/policies.h"

#include <gtest/gtest.h>

#include "admission/descriptor.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::admission {
namespace {

ldev::DiscreteDistribution Demand() {
  return {{1e6, 4e6}, {0.8, 0.2}};
}

PolicyOptions Options() {
  PolicyOptions options;
  options.target_failure_probability = 1e-3;
  options.rate_grid_bps = UniformGrid(0.0, 5e6, 11);  // 0.5 Mb/s steps
  return options;
}

sim::LinkView View(double capacity, const std::vector<double>& rates) {
  double reserved = 0;
  for (double r : rates) reserved += r;
  return {capacity, reserved, &rates};
}

TEST(PerfectKnowledge, PrecomputesMaxCalls) {
  PerfectKnowledgePolicy policy(Demand(), 80e6, 1e-3);
  EXPECT_GT(policy.max_calls(), 20);  // mean 1.6 -> 50 calls at mean
  EXPECT_LT(policy.max_calls(), 50);
}

TEST(PerfectKnowledge, AdmitsUpToMaxThenBlocks) {
  PerfectKnowledgePolicy policy(Demand(), 80e6, 1e-3);
  const std::vector<double> rates;
  const auto view = View(80e6, rates);
  const std::int64_t max = policy.max_calls();
  for (std::int64_t i = 0; i < max; ++i) {
    ASSERT_TRUE(policy.Admit(0.0, view, 1e6)) << i;
    policy.OnAdmitted(0.0, static_cast<std::uint64_t>(i), 1e6);
  }
  EXPECT_FALSE(policy.Admit(0.0, view, 1e6));
  // A departure frees one slot.
  policy.OnDeparture(0.0, 0, 1e6);
  EXPECT_TRUE(policy.Admit(0.0, view, 1e6));
}

TEST(Memoryless, AdmitsWhenEmpty) {
  MemorylessPolicy policy(Options());
  const std::vector<double> rates;
  EXPECT_TRUE(policy.Admit(0.0, View(10e6, rates), 1e6));
}

TEST(Memoryless, UsesInstantaneousSnapshot) {
  MemorylessPolicy policy(Options());
  // All current calls at their low rate: the snapshot estimate sees a
  // deterministic 1 Mb/s call and admits aggressively.
  const std::vector<double> low(8, 1e6);
  EXPECT_TRUE(policy.Admit(0.0, View(10e6, low), 1e6));
  // All calls at their peak: the snapshot sees 4 Mb/s calls; one more
  // call would estimate certain overflow on a 33 Mb/s link.
  const std::vector<double> high(8, 4e6);
  EXPECT_FALSE(policy.Admit(0.0, View(33e6, high), 1e6));
}

TEST(Memoryless, ThisIsTheNonRobustnessMechanism) {
  // The paper's Sec. VI point: when every active call happens to reserve
  // its low rate, the memoryless estimate concludes calls are cheap even
  // though their true marginal has a heavy 4 Mb/s tail. The policy admits
  // N calls whose true peak demand (N * 4 Mb/s) far exceeds capacity.
  MemorylessPolicy policy(Options());
  std::vector<double> rates;
  const double capacity = 20e6;
  while (rates.size() < 30 &&
         policy.Admit(0.0, View(capacity, rates), 1e6)) {
    rates.push_back(1e6);
  }
  const double true_peak_demand = static_cast<double>(rates.size()) * 4e6;
  EXPECT_GT(true_peak_demand, capacity * 2);  // badly over-admitted
}

TEST(AdmitAtRung, RungZeroIsExactlyTheScalarTest) {
  // The ladder loop's rung-0 probe must reproduce Admit bit-for-bit —
  // the depth-1 byte-identity pins rest on this dispatch.
  MemorylessPolicy a(Options());
  MemorylessPolicy b(Options());
  const std::vector<double> low(8, 1e6);
  const std::vector<double> high(8, 4e6);
  EXPECT_EQ(a.Admit(0.0, View(10e6, low), 1e6),
            b.AdmitAtRung(0.0, View(10e6, low), 1e6, 0));
  EXPECT_EQ(a.Admit(0.0, View(33e6, high), 1e6),
            b.AdmitAtRung(0.0, View(33e6, high), 1e6, 0));
}

TEST(AdmitAtRung, DefaultIsScalarConservative) {
  // A policy that does not override AdmitAtRung never admits below the
  // full ask: rung 0 defers to Admit, deeper rungs refuse.
  PerfectKnowledgePolicy policy(Demand(), 80e6, 1e-3);
  const std::vector<double> rates;
  const auto view = View(80e6, rates);
  EXPECT_TRUE(policy.AdmitAtRung(0.0, view, 1e6, 0));
  EXPECT_FALSE(policy.AdmitAtRung(0.0, view, 0.5e6, 1));
  EXPECT_FALSE(policy.AdmitAtRung(0.0, view, 0.5e6, 2));
}

TEST(AdmitAtRung, DowngradedRungUsesResidualCapacity) {
  // All active calls at their peak: the snapshot refuses another full
  // 4 Mb/s ask, but a downgraded rung small enough to fit the residual
  // capacity as a constant load passes — blocking becomes downgrading.
  MemorylessPolicy policy(Options());
  const std::vector<double> high(8, 4e6);
  const auto view = View(36e6, high);
  EXPECT_FALSE(policy.AdmitAtRung(0.0, view, 4e6, 0));
  EXPECT_TRUE(policy.AdmitAtRung(0.0, view, 2e6, 1));
}

TEST(AdmitAtRung, DeeperRungsAreMonotone) {
  // The residual test is monotone in the rung rate: if rate r passes,
  // every smaller rate passes too.
  MemorylessPolicy policy(Options());
  const std::vector<double> high(8, 4e6);
  const auto view = View(36e6, high);
  bool passed = false;
  for (double rate : {4e6, 3e6, 2e6, 1e6, 0.5e6}) {
    const bool ok = policy.AdmitAtRung(0.0, view, rate, 1);
    EXPECT_TRUE(!passed || ok) << "monotonicity broken at " << rate;
    passed = passed || ok;
  }
  EXPECT_TRUE(passed);
}

TEST(AdmitAtRung, MemoryPolicyDowngradesAgainstPooledHistory) {
  MemoryPolicy policy(Options());
  // Ten calls with a long history at 4 Mb/s: the pooled marginal sees
  // expensive calls, refusing another full ask on a 44 Mb/s link.
  std::vector<double> rates;
  for (std::uint64_t id = 0; id < 10; ++id) {
    policy.OnAdmitted(0.0, id, 4e6);
    rates.push_back(4e6);
  }
  const auto view = View(44e6, rates);
  EXPECT_FALSE(policy.AdmitAtRung(1000.0, view, 4e6, 0));
  // The economy rung fits the residual capacity as a constant load.
  EXPECT_TRUE(policy.AdmitAtRung(1000.0, view, 1e6, 1));
}

TEST(Memoryless, Validation) {
  PolicyOptions bad = Options();
  bad.rate_grid_bps = {};
  EXPECT_THROW(MemorylessPolicy{bad}, InvalidArgument);
  bad = Options();
  bad.target_failure_probability = 0.0;
  EXPECT_THROW(MemorylessPolicy{bad}, InvalidArgument);
}

TEST(Memory, AccumulatesCallHistory) {
  MemoryPolicy policy(Options());
  // One call alternating 1 <-> 4 Mb/s with 80/20 time split over a long
  // history; the pooled estimate should reflect the true marginal.
  policy.OnAdmitted(0.0, 1, 1e6);
  double now = 0;
  rcbr::Rng rng(3);
  double current = 1e6;
  for (int k = 0; k < 400; ++k) {
    const double hold = current == 1e6 ? 8.0 : 2.0;
    now += hold;
    const double next = current == 1e6 ? 4e6 : 1e6;
    policy.OnRateChange(now, 1, current, next);
    current = next;
  }
  // The memory estimate must now know the 4 Mb/s tail: admitting onto a
  // link that fits only low rates must be rejected.
  std::vector<double> rates = {current};
  EXPECT_FALSE(policy.Admit(now, View(6e6, rates), 1e6));
  // A link with room for peaks is fine.
  EXPECT_TRUE(policy.Admit(now, View(40e6, rates), 1e6));
}

TEST(Memory, RobustWhereMemorylessIsNot) {
  // Same trap as ThisIsTheNonRobustnessMechanism: calls currently at low
  // rate, but each call's *history* shows the 4 Mb/s episodes. The memory
  // scheme must stop admitting much earlier.
  const double capacity = 20e6;
  MemoryPolicy memory(Options());
  MemorylessPolicy memoryless(Options());

  std::vector<double> rates;
  std::uint64_t id = 0;
  int memory_admitted = 0;
  for (; memory_admitted < 30; ++memory_admitted) {
    if (!memory.Admit(1000.0, View(capacity, rates), 1e6)) break;
    ++id;
    // Build this call's history: admitted at t=0-ish, spent 80% at 1 Mb/s
    // and 20% at 4 Mb/s, currently low.
    memory.OnAdmitted(0.0, id, 1e6);
    memory.OnRateChange(800.0, id, 1e6, 4e6);
    memory.OnRateChange(1000.0, id, 4e6, 1e6);
    rates.push_back(1e6);
  }
  int memoryless_admitted = 0;
  std::vector<double> low;
  for (; memoryless_admitted < 30; ++memoryless_admitted) {
    if (!memoryless.Admit(1000.0, View(capacity, low), 1e6)) break;
    low.push_back(1e6);
  }
  EXPECT_LT(memory_admitted, memoryless_admitted);
  // The memory scheme should stay near the perfect-knowledge count.
  PerfectKnowledgePolicy perfect(Demand(), capacity, 1e-3);
  EXPECT_LE(memory_admitted, perfect.max_calls() + 2);
}

TEST(Memory, DepartedCallsForgotten) {
  MemoryPolicy policy(Options());
  policy.OnAdmitted(0.0, 1, 4e6);
  policy.OnDeparture(100.0, 1, 4e6);
  // With no calls left the policy admits (nothing to estimate from).
  const std::vector<double> rates;
  EXPECT_TRUE(policy.Admit(200.0, View(5e6, rates), 1e6));
}

TEST(Memory, OpenIntervalCountedAtAdmit) {
  MemoryPolicy policy(Options());
  policy.OnAdmitted(0.0, 1, 4e6);
  // No rate change has happened, but 100 s at 4 Mb/s must already weigh
  // in: a second call cannot fit a 5 Mb/s link where peaks collide.
  const std::vector<double> rates = {4e6};
  EXPECT_FALSE(policy.Admit(100.0, View(5e6, rates), 1e6));
}

TEST(AgedMemory, Validation) {
  EXPECT_THROW(AgedMemoryPolicy(Options(), 0.0), InvalidArgument);
  PolicyOptions bad = Options();
  bad.rate_grid_bps = {};
  EXPECT_THROW(AgedMemoryPolicy(bad, 100.0), InvalidArgument);
}

TEST(AgedMemory, LongTauBehavesLikeMemory) {
  // With tau far beyond the history span, the aged estimate matches the
  // unaged one: both must reject the same over-subscription.
  AgedMemoryPolicy aged(Options(), 1e9);
  MemoryPolicy memory(Options());
  for (std::uint64_t id = 1; id <= 6; ++id) {
    aged.OnAdmitted(0.0, id, 1e6);
    memory.OnAdmitted(0.0, id, 1e6);
    aged.OnRateChange(800.0, id, 1e6, 4e6);
    memory.OnRateChange(800.0, id, 1e6, 4e6);
    aged.OnRateChange(1000.0, id, 4e6, 1e6);
    memory.OnRateChange(1000.0, id, 4e6, 1e6);
  }
  const std::vector<double> rates(6, 1e6);
  const auto view = View(10e6, rates);
  EXPECT_EQ(aged.Admit(1000.0, view, 1e6), memory.Admit(1000.0, view, 1e6));
}

TEST(AgedMemory, ShortTauForgetsOldPeaks) {
  // A call peaked long ago and has been quiet since; with a short tau the
  // estimator forgets the peak and admits, where the unaged memory does
  // not.
  PolicyOptions options = Options();
  AgedMemoryPolicy aged(options, /*tau=*/50.0);
  MemoryPolicy memory(options);
  for (std::uint64_t id = 1; id <= 4; ++id) {
    aged.OnAdmitted(0.0, id, 4e6);
    memory.OnAdmitted(0.0, id, 4e6);
    aged.OnRateChange(100.0, id, 4e6, 1e6);
    memory.OnRateChange(100.0, id, 4e6, 1e6);
  }
  // 10000 s of quiet at 1 Mb/s follow.
  const std::vector<double> rates(4, 1e6);
  const auto view = View(8e6, rates);
  const bool aged_admits = aged.Admit(10100.0, view, 1e6);
  const bool memory_admits = memory.Admit(10100.0, view, 1e6);
  EXPECT_TRUE(aged_admits);
  EXPECT_FALSE(memory_admits);
}

TEST(AgedMemory, DepartedCallsForgotten) {
  AgedMemoryPolicy aged(Options(), 100.0);
  aged.OnAdmitted(0.0, 1, 4e6);
  aged.OnDeparture(50.0, 1, 4e6);
  const std::vector<double> rates;
  EXPECT_TRUE(aged.Admit(60.0, View(5e6, rates), 1e6));
}

TEST(Memory, UnknownCallRateChangeIgnored) {
  MemoryPolicy policy(Options());
  policy.OnRateChange(10.0, 42, 1e6, 2e6);  // never admitted: no crash
  policy.OnDeparture(10.0, 42, 2e6);
  const std::vector<double> rates;
  EXPECT_TRUE(policy.Admit(20.0, View(10e6, rates), 1e6));
}

}  // namespace
}  // namespace rcbr::admission
