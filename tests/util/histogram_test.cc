#include "util/histogram.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr {
namespace {

Histogram MakeGrid() { return Histogram({0.0, 10.0, 20.0, 30.0}); }

TEST(Histogram, StartsEmpty) {
  Histogram h = MakeGrid();
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
  EXPECT_EQ(h.size(), 4u);
  EXPECT_THROW(h.Probabilities(), InvalidArgument);
  EXPECT_THROW(h.Mean(), InvalidArgument);
  EXPECT_THROW(h.Peak(), InvalidArgument);
}

TEST(Histogram, RejectsBadGrids) {
  EXPECT_THROW(Histogram({}), InvalidArgument);
  EXPECT_THROW(Histogram({1.0, 1.0}), InvalidArgument);
  EXPECT_THROW(Histogram({2.0, 1.0}), InvalidArgument);
}

TEST(Histogram, AddAtAccumulates) {
  Histogram h = MakeGrid();
  h.AddAt(1, 2.0);
  h.AddAt(1, 3.0);
  EXPECT_DOUBLE_EQ(h.weights()[1], 5.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 5.0);
}

TEST(Histogram, AddAtRejectsBadInput) {
  Histogram h = MakeGrid();
  EXPECT_THROW(h.AddAt(4, 1.0), InvalidArgument);
  EXPECT_THROW(h.AddAt(0, -1.0), InvalidArgument);
}

TEST(Histogram, NearestIndexPicksClosest) {
  Histogram h = MakeGrid();
  EXPECT_EQ(h.NearestIndex(-5.0), 0u);
  EXPECT_EQ(h.NearestIndex(4.9), 0u);
  EXPECT_EQ(h.NearestIndex(5.1), 1u);
  EXPECT_EQ(h.NearestIndex(10.0), 1u);
  EXPECT_EQ(h.NearestIndex(14.0), 1u);
  EXPECT_EQ(h.NearestIndex(100.0), 3u);
}

TEST(Histogram, TiesGoToLowerValue) {
  Histogram h = MakeGrid();
  EXPECT_EQ(h.NearestIndex(5.0), 0u);  // equidistant between 0 and 10
}

TEST(Histogram, ProbabilitiesNormalize) {
  Histogram h = MakeGrid();
  h.AddAt(0, 1.0);
  h.AddAt(2, 3.0);
  const auto p = h.Probabilities();
  EXPECT_DOUBLE_EQ(p[0], 0.25);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
  EXPECT_DOUBLE_EQ(p[2], 0.75);
}

TEST(Histogram, MeanAndPeak) {
  Histogram h = MakeGrid();
  h.AddAt(1, 1.0);
  h.AddAt(2, 1.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 15.0);
  EXPECT_DOUBLE_EQ(h.Peak(), 20.0);
}

TEST(Histogram, RemoveClampsAtZero) {
  Histogram h = MakeGrid();
  h.AddAt(1, 1.0);
  h.RemoveAt(1, 5.0);
  EXPECT_DOUBLE_EQ(h.weights()[1], 0.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
}

TEST(Histogram, ClearResets) {
  Histogram h = MakeGrid();
  h.AddAt(1, 1.0);
  h.Clear();
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
  EXPECT_DOUBLE_EQ(h.weights()[1], 0.0);
}

TEST(Histogram, MergeRequiresSameGrid) {
  Histogram a = MakeGrid();
  Histogram b({0.0, 1.0});
  EXPECT_THROW(a.Merge(b), InvalidArgument);
}

TEST(Histogram, MergeOfDisjointRangesThrows) {
  // Same cardinality but completely disjoint grids: still a grid
  // mismatch, never a silent re-binning.
  Histogram a = MakeGrid();           // {0, 10, 20, 30}
  Histogram b({100.0, 110.0, 120.0, 130.0});
  b.AddAt(0, 1.0);
  EXPECT_THROW(a.Merge(b), InvalidArgument);
  EXPECT_DOUBLE_EQ(a.total_weight(), 0.0);  // a is untouched
}

TEST(Histogram, MergeAddsMass) {
  Histogram a = MakeGrid();
  Histogram b = MakeGrid();
  a.AddAt(0, 1.0);
  b.AddAt(3, 2.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.total_weight(), 3.0);
  EXPECT_DOUBLE_EQ(a.weights()[3], 2.0);
}

TEST(Histogram, ScaleAges) {
  Histogram h = MakeGrid();
  h.AddAt(0, 4.0);
  h.Scale(0.5);
  EXPECT_DOUBLE_EQ(h.total_weight(), 2.0);
  EXPECT_DOUBLE_EQ(h.weights()[0], 2.0);
  EXPECT_THROW(h.Scale(-1.0), InvalidArgument);
}

TEST(Histogram, QuantileOnEmptyHistogramThrows) {
  Histogram h = MakeGrid();
  EXPECT_THROW(h.Quantile(0.5), InvalidArgument);
}

TEST(Histogram, QuantileRejectsOutOfRangeQ) {
  Histogram h = MakeGrid();
  h.AddAt(1, 1.0);
  EXPECT_THROW(h.Quantile(-0.1), InvalidArgument);
  EXPECT_THROW(h.Quantile(1.1), InvalidArgument);
}

TEST(Histogram, QuantileSingleBucket) {
  Histogram h({5.0});
  h.AddAt(0, 3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 5.0);
}

TEST(Histogram, QuantileWalksCumulativeMass) {
  Histogram h = MakeGrid();
  h.AddAt(0, 1.0);  // 25% at 0
  h.AddAt(1, 2.0);  // 50% at 10
  h.AddAt(3, 1.0);  // 25% at 30 (index 2 empty)
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.75), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.9), 30.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 30.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), h.Peak());
}

TEST(UniformGrid, EndpointsExact) {
  const auto grid = UniformGrid(1.0, 2.0, 11);
  ASSERT_EQ(grid.size(), 11u);
  EXPECT_DOUBLE_EQ(grid.front(), 1.0);
  EXPECT_DOUBLE_EQ(grid.back(), 2.0);
  EXPECT_NEAR(grid[5], 1.5, 1e-12);
}

TEST(UniformGrid, SinglePoint) {
  const auto grid = UniformGrid(3.0, 3.0, 1);
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_DOUBLE_EQ(grid[0], 3.0);
}

TEST(UniformGrid, RejectsBadArgs) {
  EXPECT_THROW(UniformGrid(0.0, 1.0, 0), InvalidArgument);
  EXPECT_THROW(UniformGrid(1.0, 0.0, 2), InvalidArgument);
  EXPECT_THROW(UniformGrid(1.0, 2.0, 1), InvalidArgument);
  EXPECT_THROW(UniformGrid(1.0, 1.0, 2), InvalidArgument);
}

TEST(UniformGrid, StrictlyIncreasingUsableAsHistogramGrid) {
  const auto grid = UniformGrid(48e3, 2.4e6, 20);
  Histogram h(grid);  // must not throw
  EXPECT_EQ(h.size(), 20u);
}

}  // namespace
}  // namespace rcbr
