#include "util/piecewise.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr {
namespace {

TEST(PiecewiseConstant, ConstantFunction) {
  const auto f = PiecewiseConstant::Constant(5.0, 10);
  EXPECT_EQ(f.length(), 10);
  EXPECT_EQ(f.change_count(), 0);
  EXPECT_DOUBLE_EQ(f.At(0), 5.0);
  EXPECT_DOUBLE_EQ(f.At(9), 5.0);
  EXPECT_DOUBLE_EQ(f.Integral(), 50.0);
  EXPECT_DOUBLE_EQ(f.Mean(), 5.0);
}

TEST(PiecewiseConstant, StepsEvaluation) {
  const PiecewiseConstant f({{0, 1.0}, {3, 2.0}, {7, 0.5}}, 10);
  EXPECT_DOUBLE_EQ(f.At(0), 1.0);
  EXPECT_DOUBLE_EQ(f.At(2), 1.0);
  EXPECT_DOUBLE_EQ(f.At(3), 2.0);
  EXPECT_DOUBLE_EQ(f.At(6), 2.0);
  EXPECT_DOUBLE_EQ(f.At(7), 0.5);
  EXPECT_DOUBLE_EQ(f.At(9), 0.5);
  EXPECT_EQ(f.change_count(), 2);
}

TEST(PiecewiseConstant, AtOutOfRangeThrows) {
  const auto f = PiecewiseConstant::Constant(1.0, 5);
  EXPECT_THROW(f.At(-1), InvalidArgument);
  EXPECT_THROW(f.At(5), InvalidArgument);
}

TEST(PiecewiseConstant, NonSequentialAccessIsCorrect) {
  const PiecewiseConstant f({{0, 1.0}, {5, 2.0}}, 10);
  EXPECT_DOUBLE_EQ(f.At(9), 2.0);
  EXPECT_DOUBLE_EQ(f.At(0), 1.0);  // cursor must rewind correctly
  EXPECT_DOUBLE_EQ(f.At(7), 2.0);
  EXPECT_DOUBLE_EQ(f.At(4), 1.0);
}

TEST(PiecewiseConstant, MergesEqualAdjacentValues) {
  const PiecewiseConstant f({{0, 1.0}, {3, 1.0}, {5, 2.0}}, 10);
  EXPECT_EQ(f.change_count(), 1);
  EXPECT_EQ(f.steps().size(), 2u);
}

TEST(PiecewiseConstant, ChangesAtMatchesAdjacentSlotInequality) {
  const PiecewiseConstant f({{0, 1.0}, {3, 1.0}, {5, 2.0}, {7, 2.0}}, 10);
  EXPECT_FALSE(f.ChangesAt(0));  // initial value is not a change
  for (std::int64_t t = 1; t < f.length(); ++t) {
    EXPECT_EQ(f.ChangesAt(t), f.At(t) != f.At(t - 1)) << "slot " << t;
  }
  // Merged-away breakpoints (3 and 7 restate the running value) never
  // register as changes; only the genuine one at 5 does.
  EXPECT_FALSE(f.ChangesAt(3));
  EXPECT_TRUE(f.ChangesAt(5));
  EXPECT_FALSE(f.ChangesAt(7));
  EXPECT_THROW(f.ChangesAt(-1), InvalidArgument);
  EXPECT_THROW(f.ChangesAt(10), InvalidArgument);
}

TEST(PiecewiseConstant, ConstructorValidation) {
  EXPECT_THROW(PiecewiseConstant({}, 10), InvalidArgument);
  EXPECT_THROW(PiecewiseConstant({{1, 1.0}}, 10), InvalidArgument);
  EXPECT_THROW(PiecewiseConstant({{0, 1.0}, {0, 2.0}}, 10), InvalidArgument);
  EXPECT_THROW(PiecewiseConstant({{0, 1.0}, {10, 2.0}}, 10),
               InvalidArgument);
  EXPECT_THROW(PiecewiseConstant({{0, 1.0}}, 0), InvalidArgument);
}

TEST(PiecewiseConstant, FromSamplesRoundTrips) {
  const std::vector<double> samples = {1, 1, 2, 2, 2, 0, 1};
  const auto f = PiecewiseConstant::FromSamples(samples);
  EXPECT_EQ(f.change_count(), 3);
  EXPECT_EQ(f.ToSamples(), samples);
}

TEST(PiecewiseConstant, PartialIntegral) {
  const PiecewiseConstant f({{0, 1.0}, {3, 2.0}}, 6);
  EXPECT_DOUBLE_EQ(f.Integral(0, 3), 3.0);
  EXPECT_DOUBLE_EQ(f.Integral(3, 6), 6.0);
  EXPECT_DOUBLE_EQ(f.Integral(2, 4), 3.0);
  EXPECT_DOUBLE_EQ(f.Integral(2, 2), 0.0);
  EXPECT_THROW(f.Integral(4, 2), InvalidArgument);
  EXPECT_THROW(f.Integral(0, 7), InvalidArgument);
}

TEST(PiecewiseConstant, MinMax) {
  const PiecewiseConstant f({{0, 3.0}, {2, -1.0}, {4, 7.0}}, 6);
  EXPECT_DOUBLE_EQ(f.MaxValue(), 7.0);
  EXPECT_DOUBLE_EQ(f.MinValue(), -1.0);
}

TEST(PiecewiseConstant, MeanRunLength) {
  const PiecewiseConstant f({{0, 1.0}, {4, 2.0}}, 12);
  EXPECT_DOUBLE_EQ(f.MeanRunLength(), 6.0);
}

TEST(PiecewiseConstant, RotateZeroIsIdentity) {
  const PiecewiseConstant f({{0, 1.0}, {3, 2.0}}, 10);
  EXPECT_EQ(f.Rotate(0), f);
  EXPECT_EQ(f.Rotate(10), f);
  EXPECT_EQ(f.Rotate(-10), f);
}

TEST(PiecewiseConstant, RotateMatchesSampleRotation) {
  const PiecewiseConstant f({{0, 1.0}, {3, 2.0}, {7, 3.0}}, 10);
  const auto samples = f.ToSamples();
  for (std::int64_t shift : {1, 3, 5, 7, 9, -2, 13}) {
    const auto rotated = f.Rotate(shift);
    const auto got = rotated.ToSamples();
    for (std::int64_t t = 0; t < 10; ++t) {
      std::int64_t src = (t + shift) % 10;
      if (src < 0) src += 10;
      EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(t)],
                       samples[static_cast<std::size_t>(src)])
          << "shift " << shift << " slot " << t;
    }
  }
}

TEST(PiecewiseConstant, RotatePreservesIntegral) {
  const PiecewiseConstant f({{0, 1.0}, {3, 2.0}, {7, 3.0}}, 10);
  for (std::int64_t shift = 0; shift < 10; ++shift) {
    EXPECT_DOUBLE_EQ(f.Rotate(shift).Integral(), f.Integral());
  }
}

TEST(PiecewiseConstant, RotateMergesWrapBoundary) {
  // Value at the end equals the value at the start: rotation must merge.
  const PiecewiseConstant f({{0, 1.0}, {5, 2.0}, {8, 1.0}}, 10);
  const auto rotated = f.Rotate(9);  // slot 0 becomes old slot 9 (value 1)
  EXPECT_DOUBLE_EQ(rotated.At(0), 1.0);
  EXPECT_DOUBLE_EQ(rotated.At(1), 1.0);  // old slot 0
  // Steps should not contain two adjacent segments with value 1.
  for (std::size_t i = 1; i < rotated.steps().size(); ++i) {
    EXPECT_NE(rotated.steps()[i].value, rotated.steps()[i - 1].value);
  }
}

}  // namespace
}  // namespace rcbr
