#include "util/search.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr {
namespace {

TEST(MinFeasible, FindsThreshold) {
  SearchOptions options;
  options.relative_tolerance = 1e-9;
  options.absolute_tolerance = 1e-9;
  const double x =
      MinFeasible(0.0, 10.0, [](double v) { return v >= 3.25; }, options);
  EXPECT_NEAR(x, 3.25, 1e-6);
  EXPECT_GE(x, 3.25);  // result must be on the feasible side
}

TEST(MinFeasible, ReturnsLoWhenAlreadyFeasible) {
  const double x = MinFeasible(2.0, 10.0, [](double) { return true; });
  EXPECT_DOUBLE_EQ(x, 2.0);
}

TEST(MinFeasible, ThrowsWhenHiInfeasible) {
  EXPECT_THROW(MinFeasible(0.0, 1.0, [](double) { return false; }),
               InvalidArgument);
}

TEST(MinFeasible, ThrowsOnInvertedBracket) {
  EXPECT_THROW(MinFeasible(1.0, 0.0, [](double) { return true; }),
               InvalidArgument);
}

TEST(MinFeasible, RespectsRelativeTolerance) {
  SearchOptions options;
  options.relative_tolerance = 0.01;
  const double x =
      MinFeasible(0.0, 1000.0, [](double v) { return v >= 500.0; }, options);
  EXPECT_GE(x, 500.0);
  EXPECT_LE(x, 510.0);
}

TEST(MinFeasible, CountsEvaluationsReasonably) {
  int calls = 0;
  SearchOptions options;
  options.relative_tolerance = 1e-6;
  MinFeasible(0.0, 1.0,
              [&calls](double v) {
                ++calls;
                return v >= 0.5;
              },
              options);
  EXPECT_LT(calls, 60);
}

TEST(Minimize1D, Parabola) {
  SearchOptions options;
  options.relative_tolerance = 1e-10;
  options.absolute_tolerance = 1e-10;
  const double x = Minimize1D(
      -10.0, 10.0, [](double v) { return (v - 1.5) * (v - 1.5); }, options);
  EXPECT_NEAR(x, 1.5, 1e-5);
}

TEST(Minimize1D, MinimumAtBoundary) {
  SearchOptions options;
  options.absolute_tolerance = 1e-10;
  options.relative_tolerance = 1e-10;
  const double x =
      Minimize1D(0.0, 5.0, [](double v) { return v; }, options);
  EXPECT_NEAR(x, 0.0, 1e-5);
}

TEST(Maximize1D, ConcaveFunction) {
  SearchOptions options;
  options.absolute_tolerance = 1e-10;
  options.relative_tolerance = 1e-10;
  const double x = Maximize1D(
      0.0, 4.0, [](double v) { return -(v - 3.0) * (v - 3.0); }, options);
  EXPECT_NEAR(x, 3.0, 1e-5);
}

TEST(Minimize1D, DegenerateBracket) {
  const double x = Minimize1D(2.0, 2.0, [](double v) { return v * v; });
  EXPECT_DOUBLE_EQ(x, 2.0);
}

}  // namespace
}  // namespace rcbr
