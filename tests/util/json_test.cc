#include "util/json.h"

#include <cmath>
#include <cstdlib>
#include <limits>

#include <gtest/gtest.h>

namespace rcbr::json {
namespace {

TEST(JsonNumber, RoundTripsDoubles) {
  for (double x : {0.0, 1.5, -3.25, 1e-300, 6.02214076e23, 1.0 / 3.0}) {
    const std::string text = Number(x);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), x) << text;
  }
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(Number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(Number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(Number(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonQuote, EscapesSpecialCharacters) {
  EXPECT_EQ(Quote("plain"), "\"plain\"");
  EXPECT_EQ(Quote("a \"b\" c"), "\"a \\\"b\\\" c\"");
  EXPECT_EQ(Quote("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(Quote("line1\nline2"), "\"line1\\nline2\"");
  EXPECT_EQ(Quote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(Quote("cr\rhere"), "\"cr\\rhere\"");
}

TEST(JsonQuote, ControlCharactersUseUnicodeEscapes) {
  EXPECT_EQ(Quote(std::string(1, '\x01')), "\"\\u0001\"");
  EXPECT_EQ(Quote(std::string(1, '\x1f')), "\"\\u001f\"");
  // 0x20 (space) and beyond pass through.
  EXPECT_EQ(Quote(" ~"), "\" ~\"");
}

TEST(JsonQuote, EmptyString) { EXPECT_EQ(Quote(""), "\"\""); }

}  // namespace
}  // namespace rcbr::json
