#include "util/rng.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <set>

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(7);
  EXPECT_DOUBLE_EQ(rng.Uniform(2.5, 2.5), 2.5);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.Uniform(1.0, 0.0), InvalidArgument);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::array<int, 4> seen{};
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.UniformInt(0, 3);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 3);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.Exponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW(rng.Exponential(0.0), InvalidArgument);
  EXPECT_THROW(rng.Exponential(-1.0), InvalidArgument);
}

TEST(Rng, PoissonMeanApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.Poisson(4.5));
  EXPECT_NEAR(sum / kN, 4.5, 0.15);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(13);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(17);
  double sum = 0;
  double sq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, NormalZeroSigmaIsDeterministic) {
  Rng rng(17);
  EXPECT_DOUBLE_EQ(rng.Normal(5.0, 0.0), 5.0);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.Lognormal(0.0, 1.0), 0.0);
  }
}

TEST(Rng, LognormalUnitMeanCorrection) {
  // With mu = -sigma^2/2 the mean of the lognormal is 1.
  Rng rng(23);
  const double sigma = 0.5;
  double sum = 0;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.Lognormal(-0.5 * sigma * sigma, sigma);
  }
  EXPECT_NEAR(sum / kN, 1.0, 0.02);
}

TEST(Rng, ParetoSupportAndShape) {
  Rng rng(29);
  double min_seen = 1e300;
  double sum = 0;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.Pareto(2.0, 3.0);
    min_seen = std::min(min_seen, x);
    sum += x;
  }
  EXPECT_GE(min_seen, 2.0);
  // Mean of Pareto(x_m, alpha) = alpha x_m / (alpha - 1) = 3.
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Rng, BernoulliEdgeProbabilities) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(37);
  const std::array<double, 3> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> seen{};
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    ++seen[rng.Categorical(weights)];
  }
  EXPECT_EQ(seen[1], 0);
  EXPECT_NEAR(static_cast<double>(seen[0]) / kN, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(seen[2]) / kN, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsAllZero) {
  Rng rng(37);
  const std::array<double, 2> weights = {0.0, 0.0};
  EXPECT_THROW(rng.Categorical(weights), InvalidArgument);
}

TEST(Rng, CategoricalRejectsNegative) {
  Rng rng(37);
  const std::array<double, 2> weights = {1.0, -0.5};
  EXPECT_THROW(rng.Categorical(weights), InvalidArgument);
}

TEST(Rng, ForkedStreamsAreDecorrelated) {
  Rng parent(41);
  Rng child = parent.Fork();
  // The child should not replay the parent's stream.
  Rng parent_copy(41);
  parent_copy.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.Uniform() == parent.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(43);
  Rng b(43);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(fa.Uniform(), fb.Uniform());
  }
}

TEST(DeriveStreamSeed, GoldenValuesAreAReleaseContract) {
  // These pin the (base_seed, stream_index) -> seed mapping. Every sweep
  // point of every recorded experiment runs on a derived stream, so
  // changing the mapping silently invalidates all recorded results —
  // a failure here means the split function changed, not a bug in it.
  EXPECT_EQ(DeriveStreamSeed(0, 0), 12935080325729570654ULL);
  EXPECT_EQ(DeriveStreamSeed(0, 1), 16761990741448911833ULL);
  EXPECT_EQ(DeriveStreamSeed(42, 7), 11142522390641652277ULL);
  EXPECT_EQ(DeriveStreamSeed(20260706, 0), 8589580970295373134ULL);
  EXPECT_EQ(DeriveStreamSeed(20260706, 3), 5426376056185711722ULL);
}

TEST(DeriveStreamSeed, StreamDrawsAreStableAcrossReleases) {
  Rng rng = Rng::Stream(20260706, 0);
  EXPECT_EQ(rng.engine()(), 9537646173762238450ULL);
  EXPECT_EQ(rng.engine()(), 3755722116623022735ULL);
  EXPECT_EQ(rng.engine()(), 5585735368740888582ULL);
}

TEST(DeriveStreamSeed, DistinctIndicesYieldDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t base : {0ULL, 1ULL, 42ULL, 20260706ULL}) {
    for (std::uint64_t index = 0; index < 256; ++index) {
      seeds.insert(DeriveStreamSeed(base, index));
    }
  }
  EXPECT_EQ(seeds.size(), 4u * 256u);
}

TEST(DeriveStreamSeed, SiblingStreamsDoNotOverlapInFirstDraws) {
  // Non-overlap check: the first N raw draws of streams (seed, i) and
  // (seed, j) share no value. mt19937_64 outputs 64-bit words, so any
  // collision among a few thousand draws of truly independent streams is
  // a ~2^-50 event — a hit here means the streams overlap.
  constexpr std::uint64_t kBase = 123;
  constexpr int kDraws = 4096;
  std::set<std::uint64_t> seen;
  for (std::uint64_t index : {1ULL, 2ULL, 17ULL}) {
    Rng rng = Rng::Stream(kBase, index);
    for (int d = 0; d < kDraws; ++d) {
      EXPECT_TRUE(seen.insert(rng.engine()()).second)
          << "streams overlap at draw " << d << " of stream " << index;
    }
  }
}

TEST(DeriveStreamSeed, AdjacentBasesAndIndicesDecorrelate) {
  // (base, index) and (base+1, index) — and (base, index+1) — must not
  // produce correlated uniforms.
  Rng a = Rng::Stream(1000, 5);
  Rng b = Rng::Stream(1001, 5);
  Rng c = Rng::Stream(1000, 6);
  int equal_ab = 0;
  int equal_ac = 0;
  for (int i = 0; i < 100; ++i) {
    const double ua = a.Uniform();
    if (ua == b.Uniform()) ++equal_ab;
    if (ua == c.Uniform()) ++equal_ac;
  }
  EXPECT_LT(equal_ab, 5);
  EXPECT_LT(equal_ac, 5);
}

TEST(RandomPermutation, IsAPermutation) {
  Rng rng(47);
  const auto perm = RandomPermutation(100, rng);
  ASSERT_EQ(perm.size(), 100u);
  std::vector<bool> seen(100, false);
  for (std::size_t v : perm) {
    ASSERT_LT(v, 100u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(RandomPermutation, EmptyIsFine) {
  Rng rng(47);
  EXPECT_TRUE(RandomPermutation(0, rng).empty());
}

}  // namespace
}  // namespace rcbr
