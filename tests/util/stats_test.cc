#include "util/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace rcbr {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.Add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(OnlineStats, MergeMatchesCombinedStream) {
  Rng rng(5);
  OnlineStats all;
  OnlineStats a;
  OnlineStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(1.0, 2.0);
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.Add(1.0);
  a.Add(3.0);
  OnlineStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  OnlineStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(OnlineStats, NumericallyStableForLargeOffsets) {
  OnlineStats s;
  for (int i = 0; i < 1000; ++i) s.Add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25025, 1e-3);
}

TEST(Confidence95, RequiresTwoSamples) {
  OnlineStats s;
  s.Add(1.0);
  EXPECT_THROW(Confidence95(s), InvalidArgument);
}

TEST(Confidence95, CoversTrueMeanUsually) {
  Rng rng(7);
  int covered = 0;
  constexpr int kTrials = 200;
  for (int trial = 0; trial < kTrials; ++trial) {
    OnlineStats s;
    for (int i = 0; i < 50; ++i) s.Add(rng.Normal(10.0, 2.0));
    if (Confidence95(s).Contains(10.0)) ++covered;
  }
  // Should be ~95%; allow slack.
  EXPECT_GT(covered, kTrials * 85 / 100);
}

TEST(Confidence95, SymmetricAroundMean) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0}) s.Add(x);
  const ConfidenceInterval ci = Confidence95(s);
  EXPECT_NEAR((ci.lo + ci.hi) / 2, s.mean(), 1e-12);
  EXPECT_GT(ci.half_width(), 0.0);
}

TEST(ReplicationController, StopsOnPrecision) {
  ReplicationController c(0.2, 2, 1000);
  // Identical samples: standard error 0 <= 20% of mean after min samples.
  c.Add(1.0);
  EXPECT_FALSE(c.Done());
  c.Add(1.0);
  EXPECT_TRUE(c.Done());
}

TEST(ReplicationController, KeepsGoingWhenNoisy) {
  ReplicationController c(0.01, 2, 1000);
  c.Add(0.0);
  c.Add(10.0);
  EXPECT_FALSE(c.Done());
}

TEST(ReplicationController, StopsAtMaxSamples) {
  ReplicationController c(1e-9, 2, 5);
  for (int i = 0; i < 5; ++i) {
    c.Add(static_cast<double>(i));
  }
  EXPECT_TRUE(c.Done());
}

TEST(ReplicationController, EarlyExitBelowTarget) {
  // Paper: stop early when 95%-confident the estimate is below the target.
  ReplicationController c(1e-6, 2, 100000);
  for (int i = 0; i < 10; ++i) c.Add(1e-9 * (1 + (i % 2)));
  EXPECT_TRUE(c.Done(1e-3));
  EXPECT_FALSE(c.Done());  // precision rule alone not yet satisfied? may be
  // Note: with tiny noise the precision rule may or may not fire; the
  // early-exit rule must fire regardless.
}

TEST(ReplicationController, AllZeroSamplesStopViaTarget) {
  ReplicationController c(0.2, 2, 1000);
  for (int i = 0; i < 10; ++i) c.Add(0.0);
  EXPECT_TRUE(c.Done(1e-6));
}

TEST(ReplicationController, RejectsBadConfig) {
  EXPECT_THROW(ReplicationController(0.0, 2, 10), InvalidArgument);
  EXPECT_THROW(ReplicationController(0.2, 1, 10), InvalidArgument);
  EXPECT_THROW(ReplicationController(0.2, 5, 4), InvalidArgument);
}

TEST(Quantile, MedianAndExtremes) {
  const std::vector<double> values = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 5.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> values = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.25), 2.5);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(Quantile({}, 0.5), InvalidArgument);
  const std::vector<double> v = {1.0};
  EXPECT_THROW(Quantile(v, -0.1), InvalidArgument);
  EXPECT_THROW(Quantile(v, 1.1), InvalidArgument);
}

}  // namespace
}  // namespace rcbr
