#include "core/interval_smoother.h"

#include <gtest/gtest.h>

#include "core/dp_scheduler.h"
#include "core/schedule.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::core {
namespace {

TEST(IntervalSmoother, Validation) {
  EXPECT_THROW(ComputeIntervalSchedule({}, 10, 5.0), InvalidArgument);
  EXPECT_THROW(ComputeIntervalSchedule({1.0}, 0, 5.0), InvalidArgument);
  EXPECT_THROW(ComputeIntervalSchedule({1.0}, 10, -1.0), InvalidArgument);
}

TEST(IntervalSmoother, ConstantWorkloadAveragesToTheMean) {
  // The greedy per-interval minimum starts below the arrival rate (it
  // lets the buffer fill: 3 - 5/10 = 2.5), holds the arrival rate once
  // the buffer is full, and drains at the end (3.5): mean exactly 3.
  const std::vector<double> workload(40, 3.0);
  const PiecewiseConstant schedule =
      ComputeIntervalSchedule(workload, 10, 5.0);
  EXPECT_NEAR(schedule.Mean(), 3.0, 1e-6);
  EXPECT_NEAR(schedule.At(0), 2.5, 1e-6);
  EXPECT_NEAR(schedule.At(15), 3.0, 1e-6);
  EXPECT_NEAR(schedule.At(39), 3.5, 1e-6);
}

TEST(IntervalSmoother, ChangePointsOnTheClock) {
  rcbr::Rng rng(3);
  std::vector<double> workload(100);
  for (double& a : workload) a = rng.Uniform(0.0, 8.0);
  const PiecewiseConstant schedule =
      ComputeIntervalSchedule(workload, 25, 10.0);
  for (const Step& s : schedule.steps()) {
    EXPECT_EQ(s.start % 25, 0);
  }
}

TEST(IntervalSmoother, FeasibleAcrossSweeps) {
  rcbr::Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> workload(300);
    for (double& a : workload) a = rng.Uniform(0.0, 9.0);
    const double buffer = rng.Uniform(0.0, 25.0);
    const std::int64_t interval = rng.UniformInt(5, 60);
    const PiecewiseConstant schedule =
        ComputeIntervalSchedule(workload, interval, buffer);
    const ScheduleMetrics m =
        EvaluateSchedule(workload, schedule, buffer + 1e-6, 1.0, {});
    EXPECT_TRUE(m.feasible)
        << "trial " << trial << " interval " << interval;
  }
}

TEST(IntervalSmoother, DrainsAtSessionEnd) {
  rcbr::Rng rng(7);
  std::vector<double> workload(90);
  for (double& a : workload) a = rng.Uniform(0.0, 6.0);
  const PiecewiseConstant schedule =
      ComputeIntervalSchedule(workload, 30, 12.0);
  double q = 0;
  for (std::size_t t = 0; t < workload.size(); ++t) {
    q = std::max(q + workload[t] -
                     schedule.At(static_cast<std::int64_t>(t)),
                 0.0);
  }
  EXPECT_NEAR(q, 0.0, 1e-6);
}

TEST(IntervalSmoother, LongerIntervalsNeedMoreBandwidth) {
  rcbr::Rng rng(9);
  std::vector<double> workload(600);
  for (std::size_t t = 0; t < workload.size(); ++t) {
    workload[t] = rng.Uniform(0.0, 4.0) + ((t / 100) % 2 == 0 ? 5.0 : 0.0);
  }
  const double buffer = 10.0;
  const double short_mean =
      ComputeIntervalSchedule(workload, 20, buffer).Mean();
  const double long_mean =
      ComputeIntervalSchedule(workload, 200, buffer).Mean();
  EXPECT_GE(long_mean, short_mean - 1e-9);
}

TEST(IntervalSmoother, DpDominatesAtEqualRenegotiationCount) {
  // The point of the DP: at the same (or fewer) renegotiations it never
  // allocates more bandwidth than the clocked baseline.
  rcbr::Rng rng(11);
  std::vector<double> workload(480);
  for (std::size_t t = 0; t < workload.size(); ++t) {
    workload[t] = rng.Uniform(0.0, 4.0) + ((t / 80) % 2 == 0 ? 5.0 : 0.0);
  }
  const double buffer = 12.0;
  const PiecewiseConstant clocked =
      ComputeIntervalSchedule(workload, 60, buffer);

  DpOptions options;
  options.rate_levels = UniformRateLevels(0.0, 10.0, 41);
  options.buffer_bits = buffer;
  options.final_buffer_bits = 0.0;
  // Pick alpha so the DP uses at most the clocked schedule's change count.
  options.cost = {60.0, 1.0};
  const DpResult dp = ComputeOptimalSchedule(workload, options);
  if (dp.schedule.change_count() <= clocked.change_count()) {
    // Allow the 0.25-grid quantization of the rate levels.
    EXPECT_LE(dp.schedule.Mean(), clocked.Mean() + 0.25);
  }
}

TEST(DpScheduler, CombinedDelayAndBufferBound) {
  // Both constraints active: the result satisfies each individually and
  // costs at least as much as either alone.
  rcbr::Rng rng(13);
  std::vector<double> workload(120);
  for (double& a : workload) a = rng.Uniform(0.0, 6.0);
  DpOptions options;
  options.rate_levels = UniformRateLevels(0.0, 6.0, 13);
  options.cost = {1.0, 1.0};

  options.buffer_bits = 6.0;
  options.delay_bound_slots = -1;
  const DpResult buffer_only = ComputeOptimalSchedule(workload, options);

  options.buffer_bits = 0.0;
  options.delay_bound_slots = 3;
  const DpResult delay_only = ComputeOptimalSchedule(workload, options);

  options.buffer_bits = 6.0;
  const DpResult both = ComputeOptimalSchedule(workload, options);

  EXPECT_GE(both.optimal_cost, buffer_only.optimal_cost - 1e-9);
  EXPECT_GE(both.optimal_cost, delay_only.optimal_cost - 1e-9);
  const ScheduleMetrics m = EvaluateSchedule(
      workload, both.schedule, options.buffer_bits, 1.0, options.cost);
  EXPECT_TRUE(m.feasible);
  EXPECT_TRUE(MeetsDelayBound(workload, both.schedule, 3));
}

}  // namespace
}  // namespace rcbr::core
