// DpOnlineScheduler: receding-horizon DP as an online RateController.
//  - growing the window to the trace length converges to the offline
//    optimal cost, exactly at full horizon;
//  - realized schedules are byte-identical across worker-thread counts;
//  - the controller runs through RcbrSource setup / renegotiation /
//    teardown against a real signaling path, and its open-loop schedules
//    drive call_sim end to end.
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/dp_online.h"
#include "core/dp_scheduler.h"
#include "core/rcbr_source.h"
#include "core/schedule.h"
#include "sim/call_sim.h"
#include "signaling/path.h"
#include "signaling/port_controller.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::core {
namespace {

std::vector<double> SeededWorkload(std::uint64_t seed, std::size_t slots) {
  Rng rng(seed);
  std::vector<double> workload(slots);
  for (double& a : workload) a = std::floor(rng.Uniform(0.0, 10.0));
  return workload;
}

DpOnlineOptions BaseOptions() {
  DpOnlineOptions options;
  options.dp.rate_levels = UniformRateLevels(0.0, 10.0, 11);
  options.dp.buffer_bits = 30.0;
  options.dp.cost = {4.0, 0.5};
  return options;
}

TEST(DpOnline, WindowConvergesToOfflineOptimum) {
  const std::vector<double> workload = SeededWorkload(7, 400);
  DpOnlineOptions options = BaseOptions();
  const DpResult offline =
      ComputeOptimalSchedule(workload, options.dp);

  double previous_cost = std::numeric_limits<double>::infinity();
  for (const std::int64_t window : {20, 50, 100, 400}) {
    options.window_slots = window;
    const PiecewiseConstant schedule =
        ComputeDpOnlineSchedule(workload, options);
    const ScheduleMetrics metrics = EvaluateSchedule(
        workload, schedule, options.dp.buffer_bits, 1.0, options.dp.cost);
    ASSERT_TRUE(metrics.feasible) << "window " << window;
    // Receding-horizon cost approaches the offline optimum from above.
    EXPECT_GE(metrics.cost, offline.optimal_cost - 1e-9);
    EXPECT_LE(metrics.cost, previous_cost + 1e-9) << "window " << window;
    previous_cost = metrics.cost;
    if (window >= static_cast<std::int64_t>(workload.size())) {
      EXPECT_NEAR(metrics.cost, offline.optimal_cost,
                  1e-9 * (1.0 + offline.optimal_cost));
    }
  }
  // Small lookahead costs strictly more on this trace.
  options.window_slots = 10;
  const PiecewiseConstant myopic =
      ComputeDpOnlineSchedule(workload, options);
  EXPECT_GT(EvaluateSchedule(workload, myopic, options.dp.buffer_bits, 1.0,
                             options.dp.cost)
                .cost,
            offline.optimal_cost);
}

TEST(DpOnline, ByteIdenticalAcrossThreadCounts) {
  const std::vector<double> workload = SeededWorkload(21, 300);
  DpOnlineOptions options = BaseOptions();
  options.window_slots = 60;
  options.replan_period_slots = 15;
  options.dp.threads = 1;
  const PiecewiseConstant base = ComputeDpOnlineSchedule(workload, options);
  for (const std::size_t threads : {2u, 8u}) {
    options.dp.threads = threads;
    const PiecewiseConstant schedule =
        ComputeDpOnlineSchedule(workload, options);
    EXPECT_TRUE(schedule == base) << "threads " << threads;
  }
}

TEST(DpOnline, InfeasibleWindowFallsBackToTopRate) {
  // Top rate 2 cannot hold the bound against arrivals of 5: every window
  // is infeasible, and the policy pins the top rate instead of throwing.
  const std::vector<double> workload(30, 5.0);
  DpOnlineOptions options;
  options.dp.rate_levels = {0.0, 1.0, 2.0};
  options.dp.buffer_bits = 3.0;
  options.dp.cost = {1.0, 1.0};
  options.window_slots = 10;
  DpOnlineScheduler scheduler(workload, options);
  EXPECT_GT(scheduler.infeasible_windows(), 0);
  EXPECT_DOUBLE_EQ(scheduler.current_rate(), 2.0);
  double rate = scheduler.current_rate();
  for (double a : workload) {
    const auto request = scheduler.Step(a, rate);
    if (request.has_value()) rate = *request;
  }
  EXPECT_DOUBLE_EQ(rate, 2.0);
}

TEST(DpOnline, DrivesRcbrSourceThroughSetupRenegotiationTeardown) {
  const std::vector<double> workload = SeededWorkload(42, 120);
  DpOnlineOptions options = BaseOptions();
  options.window_slots = 40;

  std::vector<std::unique_ptr<signaling::PortController>> ports;
  for (int i = 0; i < 2; ++i) {
    ports.push_back(std::make_unique<signaling::PortController>(1000.0));
  }
  signaling::SignalingPath path({ports[0].get(), ports[1].get()}, 0.001);

  auto controller =
      std::make_unique<DpOnlineScheduler>(workload, options);
  const DpOnlineScheduler* raw = controller.get();
  RcbrSource source = RcbrSource::OnlineWith(
      /*vci=*/1, std::move(controller), /*slot_seconds=*/0.1,
      /*buffer_bits=*/options.dp.buffer_bits, &path);
  ASSERT_TRUE(source.Connect());
  EXPECT_GT(ports[0]->utilization_bps(), 0.0);

  for (double a : workload) source.Step(a);
  // The window-optimal plan renegotiates and the path tracked each grant.
  EXPECT_GT(source.stats().renegotiation_attempts, 0);
  EXPECT_EQ(source.stats().renegotiation_failures, 0);
  EXPECT_GT(raw->replans(), 1);
  EXPECT_EQ(source.stats().lost_bits, 0.0);

  source.Disconnect();
  EXPECT_DOUBLE_EQ(ports[0]->utilization_bps(), 0.0);
  EXPECT_DOUBLE_EQ(ports[1]->utilization_bps(), 0.0);
}

TEST(DpOnline, OpenLoopSchedulesDriveCallSim) {
  // The receding-horizon schedules act as call profiles in the
  // setup/renegotiation/teardown simulator, like the paper's RCBR calls.
  const double slot_seconds = 0.1;
  std::vector<sim::CallProfile> pool;
  for (std::uint64_t seed : {3u, 11u, 19u}) {
    const std::vector<double> workload = SeededWorkload(seed, 200);
    DpOnlineOptions options = BaseOptions();
    options.window_slots = 50;
    PiecewiseConstant schedule = ComputeDpOnlineSchedule(workload, options);
    // bits/slot -> bits/second.
    std::vector<Step> steps(schedule.steps().begin(),
                            schedule.steps().end());
    for (Step& s : steps) s.value /= slot_seconds;
    pool.push_back({PiecewiseConstant(std::move(steps), schedule.length()),
                    slot_seconds});
  }

  sim::CapacityOnlyPolicy policy;
  sim::CallSimOptions sim_options;
  sim_options.capacity_bps = 400.0;
  sim_options.arrival_rate_per_s = 0.4;
  sim_options.warmup_seconds = 40.0;
  sim_options.sample_intervals = 4;
  sim_options.interval_seconds = 100.0;
  Rng rng(20260809);
  const sim::CallSimResult result =
      sim::RunCallSim(pool, policy, sim_options, rng);
  EXPECT_GT(result.offered_calls, 0);
  EXPECT_GT(result.upward_attempts, 0);
  EXPECT_GT(result.utilization.mean(), 0.0);
  EXPECT_LE(result.overall_failure_probability(), 1.0);
}

}  // namespace
}  // namespace rcbr::core
