#include "core/testbed.h"

#include <gtest/gtest.h>

#include "core/dp_scheduler.h"
#include "sim/scenarios.h"
#include "trace/star_wars.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/units.h"

namespace rcbr::core {
namespace {

TestbedOptions BaseOptions(double capacity_bps) {
  TestbedOptions options;
  options.hop_capacity_bps = capacity_bps;
  options.hops = 2;
  options.buffer_bits = 300 * kKilobit;
  options.slot_seconds = 1.0 / 24.0;
  return options;
}

TEST(Testbed, Validation) {
  const std::vector<std::vector<double>> arrivals = {{1, 1}};
  const std::vector<PiecewiseConstant> schedules = {
      PiecewiseConstant::Constant(1.0, 2)};
  TestbedOptions options = BaseOptions(0.0);
  EXPECT_THROW(RunOfflineTestbed(arrivals, schedules, options),
               InvalidArgument);
  options = BaseOptions(100.0);
  EXPECT_THROW(RunOfflineTestbed({}, {}, options), InvalidArgument);
  const std::vector<PiecewiseConstant> wrong = {
      PiecewiseConstant::Constant(1.0, 3)};
  EXPECT_THROW(RunOfflineTestbed(arrivals, wrong, options),
               InvalidArgument);
}

TEST(Testbed, AmpleCapacityMatchesSchedules) {
  // With capacity for every request, each source follows its schedule
  // exactly: attempts == schedule changes, zero failures, zero loss when
  // the schedule is feasible.
  const trace::FrameTrace clip = trace::MakeStarWarsTrace(61, 1440);
  DpOptions dp_options;
  for (int k = 0; k <= 40; ++k) {
    dp_options.rate_levels.push_back(64.0 * kKilobit / clip.fps() * k);
  }
  dp_options.buffer_bits = 300 * kKilobit;
  dp_options.cost = {3000.0, 1.0 / clip.fps()};
  dp_options.buffer_quantum_bits = 2 * kKilobit;
  dp_options.decision_period = 6;
  const DpResult dp = ComputeOptimalSchedule(clip.frame_bits(), dp_options);

  const std::vector<std::vector<double>> arrivals = {clip.frame_bits()};
  const std::vector<PiecewiseConstant> schedules = {dp.schedule};
  const TestbedResult r = RunOfflineTestbed(arrivals, schedules,
                                            BaseOptions(100 * kMbps));
  EXPECT_DOUBLE_EQ(r.lost_bits(), 0.0);
  EXPECT_EQ(r.renegotiation_failures(), 0);
  EXPECT_EQ(r.renegotiation_attempts(), dp.schedule.change_count());
}

TEST(Testbed, InitialOverloadThrows) {
  const std::vector<std::vector<double>> arrivals = {{1, 1}, {1, 1}};
  const std::vector<PiecewiseConstant> schedules = {
      PiecewiseConstant::Constant(2.0, 2),  // 48 bps each at 24 fps
      PiecewiseConstant::Constant(2.0, 2)};
  EXPECT_THROW(
      RunOfflineTestbed(arrivals, schedules, BaseOptions(50.0)),
      Infeasible);
}

TEST(Testbed, ContentionCausesFailuresAndRetries) {
  // Two sources whose upward steps collide on a tight link: the denied
  // source keeps its old rate, retries every slot, and succeeds when the
  // other steps down.
  const std::vector<std::vector<double>> arrivals = {
      {1, 1, 3, 3, 1, 1}, {1, 1, 3, 3, 3, 3}};
  const std::vector<PiecewiseConstant> schedules = {
      PiecewiseConstant({{0, 1.0}, {2, 3.0}, {4, 1.0}}, 6),
      PiecewiseConstant({{0, 1.0}, {2, 3.0}}, 6)};
  TestbedOptions options = BaseOptions(4.0 * 24.0);  // 4 bits/slot total
  options.buffer_bits = 100.0;
  const TestbedResult r = RunOfflineTestbed(arrivals, schedules, options);
  // Only one of the two simultaneous 1->3 steps fits (total would be 6).
  EXPECT_GT(r.renegotiation_failures(), 0);
  // The loser retries: after source 0 drops back to 1 at slot 4, source 1
  // must eventually hold rate 3.
  EXPECT_DOUBLE_EQ(r.per_source[1].arrived_bits, 14.0);
  EXPECT_GT(r.renegotiation_attempts(), 2);
}

TEST(Testbed, AllOrNothingLosesMoreThanFluidMux) {
  // The grant-policy comparison backing ablation_grant_policy: on the
  // same workloads and capacity, the RM-cell discipline (full grant or
  // keep old rate) can only lose >= the idealized partial-grant mux.
  const trace::FrameTrace clip = trace::MakeStarWarsTrace(67, 1440);
  DpOptions dp_options;
  for (int k = 0; k <= 40; ++k) {
    dp_options.rate_levels.push_back(64.0 * kKilobit / clip.fps() * k);
  }
  dp_options.buffer_bits = 300 * kKilobit;
  dp_options.cost = {3000.0, 1.0 / clip.fps()};
  dp_options.buffer_quantum_bits = 2 * kKilobit;
  dp_options.decision_period = 6;
  dp_options.final_buffer_bits = 0.0;
  const DpResult dp = ComputeOptimalSchedule(clip.frame_bits(), dp_options);

  constexpr int kN = 6;
  Rng rng(19);
  std::vector<std::vector<double>> arrivals;
  std::vector<PiecewiseConstant> schedules;
  for (int i = 0; i < kN; ++i) {
    const std::int64_t shift = rng.UniformInt(0, clip.frame_count() - 1);
    arrivals.push_back(clip.CircularShift(shift).frame_bits());
    schedules.push_back(dp.schedule.Rotate(shift));
  }
  const double capacity_per_slot = 1.3 * kN * dp.schedule.Mean();

  const sim::RcbrMuxResult fluid = sim::RcbrScenario(
      arrivals, schedules, capacity_per_slot, 300 * kKilobit);
  TestbedOptions options = BaseOptions(capacity_per_slot * clip.fps());
  options.hops = 1;
  const TestbedResult strict =
      RunOfflineTestbed(arrivals, schedules, options);
  EXPECT_GE(strict.lost_bits(), fluid.lost_bits() - 1e-6);
}

}  // namespace
}  // namespace rcbr::core
