#include "core/funnel_smoother.h"

#include <gtest/gtest.h>

#include "core/schedule.h"
#include "sim/fluid_queue.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::core {
namespace {

TEST(FunnelSmoother, ConstantWorkloadOneSegment) {
  const std::vector<double> workload(10, 3.0);
  const PiecewiseConstant schedule = ComputeFunnelSchedule(workload, 5.0);
  EXPECT_EQ(schedule.change_count(), 0);
  EXPECT_NEAR(schedule.At(0), 3.0, 1e-9);
}

TEST(FunnelSmoother, DeliversEverything) {
  rcbr::Rng rng(3);
  std::vector<double> workload(500);
  double total = 0;
  for (double& a : workload) {
    a = rng.Uniform(0.0, 10.0);
    total += a;
  }
  const PiecewiseConstant schedule = ComputeFunnelSchedule(workload, 20.0);
  EXPECT_NEAR(schedule.Integral(), total, 1e-6);
}

TEST(FunnelSmoother, RespectsBufferBound) {
  rcbr::Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> workload(300);
    for (double& a : workload) a = rng.Uniform(0.0, 8.0);
    const double buffer = rng.Uniform(1.0, 30.0);
    const PiecewiseConstant schedule =
        ComputeFunnelSchedule(workload, buffer);
    const ScheduleMetrics m =
        EvaluateSchedule(workload, schedule, buffer + 1e-6, 1.0, {});
    EXPECT_TRUE(m.feasible) << "trial " << trial << " buffer " << buffer;
  }
}

TEST(FunnelSmoother, NeverSendsUnreceivedData) {
  // Cumulative service must never exceed cumulative arrivals.
  rcbr::Rng rng(7);
  std::vector<double> workload(200);
  for (double& a : workload) a = rng.Uniform(0.0, 5.0);
  const PiecewiseConstant schedule = ComputeFunnelSchedule(workload, 10.0);
  double cum_a = 0;
  double cum_s = 0;
  for (std::size_t t = 0; t < workload.size(); ++t) {
    cum_a += workload[t];
    cum_s += schedule.At(static_cast<std::int64_t>(t));
    ASSERT_LE(cum_s, cum_a + 1e-6) << "slot " << t;
  }
}

TEST(FunnelSmoother, LargerBufferFewerSegments) {
  rcbr::Rng rng(9);
  std::vector<double> workload(1000);
  for (std::size_t t = 0; t < workload.size(); ++t) {
    workload[t] = rng.Uniform(0.0, 4.0) + ((t / 100) % 2 == 0 ? 6.0 : 0.0);
  }
  const auto tight = ComputeFunnelSchedule(workload, 5.0);
  const auto roomy = ComputeFunnelSchedule(workload, 500.0);
  EXPECT_LT(roomy.change_count(), tight.change_count());
}

TEST(FunnelSmoother, HugeBufferIsSingleSegmentAtMeanRate) {
  rcbr::Rng rng(11);
  std::vector<double> workload(200);
  double total = 0;
  for (double& a : workload) {
    a = rng.Uniform(0.0, 4.0);
    total += a;
  }
  const auto schedule = ComputeFunnelSchedule(workload, 1e9);
  // With the buffer bound inactive the taut path is the convex-hull walk
  // under the cumulative-arrival ceiling: few segments, nondecreasing
  // slopes, exact delivery.
  EXPECT_LE(schedule.change_count(), 12);
  for (std::size_t i = 1; i < schedule.steps().size(); ++i) {
    EXPECT_GE(schedule.steps()[i].value,
              schedule.steps()[i - 1].value - 1e-9);
  }
  EXPECT_NEAR(schedule.Integral(), total, 1e-6);
}

TEST(FunnelSmoother, PeakRateNeverExceedsWorstWindow) {
  // The smoothed peak rate is at most the workload's peak slot rate.
  rcbr::Rng rng(13);
  std::vector<double> workload(300);
  double peak = 0;
  for (double& a : workload) {
    a = rng.Uniform(0.0, 9.0);
    peak = std::max(peak, a);
  }
  const auto schedule = ComputeFunnelSchedule(workload, 3.0);
  EXPECT_LE(schedule.MaxValue(), peak + 1e-9);
}

TEST(FunnelSmoother, ZeroBufferTracksWorkloadExactly) {
  const std::vector<double> workload = {2, 5, 1, 4};
  const auto schedule = ComputeFunnelSchedule(workload, 0.0);
  for (std::size_t t = 0; t < workload.size(); ++t) {
    EXPECT_NEAR(schedule.At(static_cast<std::int64_t>(t)), workload[t],
                1e-9);
  }
}

TEST(FunnelSmoother, Validation) {
  EXPECT_THROW(ComputeFunnelSchedule({}, 1.0), InvalidArgument);
  EXPECT_THROW(ComputeFunnelSchedule({1.0}, -1.0), InvalidArgument);
}

TEST(FunnelSmoother, RatesAreNonNegative) {
  rcbr::Rng rng(17);
  std::vector<double> workload(400);
  for (double& a : workload) a = rng.Uniform(0.0, 6.0);
  const auto schedule = ComputeFunnelSchedule(workload, 12.0);
  EXPECT_GE(schedule.MinValue(), -1e-12);
}

}  // namespace
}  // namespace rcbr::core
