#include "core/dp_scheduler.h"

#include <cmath>
#include <functional>
#include <limits>

#include <gtest/gtest.h>

#include "core/schedule.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::core {
namespace {

/// Brute force: enumerates every rate assignment (K^T) and returns the
/// minimal feasible cost. Only usable for tiny instances.
double BruteForceOptimum(const std::vector<double>& workload,
                         const DpOptions& options) {
  const auto n = workload.size();
  const auto k = options.rate_levels.size();
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> choice(n, 0);
  const std::function<void(std::size_t)> recurse = [&](std::size_t t) {
    if (t == n) {
      double q = 0;
      double cost = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double r = options.rate_levels[choice[i]];
        q = std::max(q + workload[i] - r, 0.0);
        if (q > options.buffer_bits + 1e-12) return;  // infeasible
        cost += options.cost.per_bandwidth * r;
        if (i > 0 && choice[i] != choice[i - 1]) {
          cost += options.cost.per_renegotiation;
        }
      }
      best = std::min(best, cost);
      return;
    }
    for (std::size_t v = 0; v < k; ++v) {
      choice[t] = v;
      recurse(t + 1);
    }
  };
  recurse(0);
  return best;
}

DpOptions SmallOptions() {
  DpOptions options;
  options.rate_levels = {0.0, 2.0, 4.0, 8.0};
  options.buffer_bits = 5.0;
  options.cost = {3.0, 1.0};
  return options;
}

TEST(DpScheduler, Validation) {
  DpOptions options = SmallOptions();
  EXPECT_THROW(ComputeOptimalSchedule({}, options), InvalidArgument);
  options.rate_levels = {};
  EXPECT_THROW(ComputeOptimalSchedule({1.0}, options), InvalidArgument);
  options = SmallOptions();
  options.rate_levels = {2.0, 1.0};
  EXPECT_THROW(ComputeOptimalSchedule({1.0}, options), InvalidArgument);
  options = SmallOptions();
  options.rate_levels = {1.0, 1.0};
  EXPECT_THROW(ComputeOptimalSchedule({1.0}, options), InvalidArgument);
  options = SmallOptions();
  options.decision_period = 0;
  EXPECT_THROW(ComputeOptimalSchedule({1.0}, options), InvalidArgument);
}

TEST(DpScheduler, InfeasibleWhenTopRateTooSmall) {
  DpOptions options;
  options.rate_levels = {0.0, 1.0};
  options.buffer_bits = 2.0;
  // 10 bits arrive; at most 1 drains and 2 buffer -> must overflow.
  EXPECT_THROW(ComputeOptimalSchedule({10.0}, options), Infeasible);
}

TEST(DpScheduler, ConstantWorkloadGetsConstantSchedule) {
  DpOptions options = SmallOptions();
  const std::vector<double> workload(20, 2.0);
  const DpResult r = ComputeOptimalSchedule(workload, options);
  // Rate 2 throughout costs 40. The optimum shaves the tail: dropping to
  // rate 0 for the last 2 slots leaves 4 bits in the buffer (<= 5) and
  // saves 4 bandwidth for one renegotiation (3): cost 39.
  EXPECT_DOUBLE_EQ(r.schedule.At(0), 2.0);
  EXPECT_LE(r.schedule.change_count(), 1);
  EXPECT_DOUBLE_EQ(r.optimal_cost, 39.0);
  const ScheduleMetrics m = EvaluateSchedule(
      workload, r.schedule, options.buffer_bits, 1.0, options.cost);
  EXPECT_TRUE(m.feasible);
}

TEST(DpScheduler, BufferAbsorbsShortBurst) {
  DpOptions options = SmallOptions();
  // One 4-bit burst; buffer 5 absorbs 2 extra bits while rate 2 drains.
  const std::vector<double> workload = {2, 2, 4, 2, 0, 2};
  const DpResult r = ComputeOptimalSchedule(workload, options);
  // Flat rate 2 costs 12; the optimum may additionally exploit the
  // end-of-session buffer slack, but never exceeds the flat cost and
  // never renegotiates mid-burst more than once.
  EXPECT_LE(r.optimal_cost, 12.0);
  EXPECT_LE(r.schedule.change_count(), 1);
  const ScheduleMetrics m =
      EvaluateSchedule(workload, r.schedule, options.buffer_bits, 1.0,
                       options.cost);
  EXPECT_TRUE(m.feasible);
}

TEST(DpScheduler, MatchesBruteForceOnRandomInstances) {
  rcbr::Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    DpOptions options;
    options.rate_levels = {0.0, 1.0, 3.0, 6.0};
    options.buffer_bits = rng.Uniform(0.0, 6.0);
    options.cost = {rng.Uniform(0.1, 5.0), 1.0};
    std::vector<double> workload(7);
    bool feasible_exists = true;
    for (double& a : workload) {
      a = std::floor(rng.Uniform(0.0, 7.0));
    }
    // Quick feasibility probe: top rate forever.
    double q = 0;
    for (double a : workload) {
      q = std::max(q + a - options.rate_levels.back(), 0.0);
      if (q > options.buffer_bits) feasible_exists = false;
    }
    const double brute = feasible_exists
                             ? BruteForceOptimum(workload, options)
                             : std::numeric_limits<double>::infinity();
    if (!std::isfinite(brute)) {
      EXPECT_THROW(ComputeOptimalSchedule(workload, options), Infeasible)
          << "trial " << trial;
      continue;
    }
    const DpResult r = ComputeOptimalSchedule(workload, options);
    EXPECT_NEAR(r.optimal_cost, brute, 1e-9) << "trial " << trial;
    // The returned schedule must be feasible and cost what it claims.
    const ScheduleMetrics m = EvaluateSchedule(
        workload, r.schedule, options.buffer_bits, 1.0, options.cost);
    EXPECT_TRUE(m.feasible) << "trial " << trial;
    EXPECT_NEAR(m.cost, r.optimal_cost, 1e-9) << "trial " << trial;
  }
}

TEST(DpScheduler, HighAlphaSuppressesRenegotiations) {
  rcbr::Rng rng(7);
  std::vector<double> workload(60);
  for (double& a : workload) a = rng.Uniform(0.0, 8.0);
  DpOptions options;
  options.rate_levels = UniformRateLevels(0.0, 8.0, 9);
  options.buffer_bits = 10.0;

  options.cost = {0.01, 1.0};
  const DpResult cheap = ComputeOptimalSchedule(workload, options);
  options.cost = {1000.0, 1.0};
  const DpResult dear = ComputeOptimalSchedule(workload, options);
  EXPECT_LE(dear.schedule.change_count(), cheap.schedule.change_count());
  // With prohibitive alpha the schedule should be (nearly) flat.
  EXPECT_LE(dear.schedule.change_count(), 1);
  // And its mean rate must be at least the cheap one's (flat costs more
  // bandwidth).
  EXPECT_GE(dear.schedule.Mean(), cheap.schedule.Mean() - 1e-9);
}

TEST(DpScheduler, LargerBufferNeverCostsMore) {
  rcbr::Rng rng(13);
  std::vector<double> workload(50);
  for (double& a : workload) a = rng.Uniform(0.0, 6.0);
  DpOptions options;
  options.rate_levels = UniformRateLevels(0.0, 6.0, 7);
  options.cost = {2.0, 1.0};
  double prev = std::numeric_limits<double>::infinity();
  for (double buffer : {2.0, 5.0, 10.0, 40.0}) {
    options.buffer_bits = buffer;
    const DpResult r = ComputeOptimalSchedule(workload, options);
    EXPECT_LE(r.optimal_cost, prev + 1e-9) << "buffer " << buffer;
    prev = r.optimal_cost;
  }
}

TEST(DpScheduler, ScheduleNeverBelowWorkloadMeanOverall) {
  // Total service must cover total arrivals minus what the buffer can
  // still hold at the end.
  rcbr::Rng rng(17);
  std::vector<double> workload(40);
  for (double& a : workload) a = rng.Uniform(0.0, 5.0);
  DpOptions options;
  options.rate_levels = UniformRateLevels(0.0, 5.0, 6);
  options.buffer_bits = 4.0;
  options.cost = {1.0, 1.0};
  const DpResult r = ComputeOptimalSchedule(workload, options);
  double total_arrivals = 0;
  for (double a : workload) total_arrivals += a;
  EXPECT_GE(r.schedule.Integral() + options.buffer_bits + 1e-9,
            total_arrivals);
}

TEST(DpScheduler, DecisionPeriodRestrictsChangePoints) {
  rcbr::Rng rng(19);
  std::vector<double> workload(48);
  for (double& a : workload) a = rng.Uniform(0.0, 6.0);
  DpOptions options;
  options.rate_levels = UniformRateLevels(0.0, 6.0, 7);
  options.buffer_bits = 8.0;
  options.cost = {0.1, 1.0};
  options.decision_period = 6;
  const DpResult r = ComputeOptimalSchedule(workload, options);
  for (const Step& s : r.schedule.steps()) {
    EXPECT_EQ(s.start % 6, 0) << "change at slot " << s.start;
  }
  const ScheduleMetrics m = EvaluateSchedule(
      workload, r.schedule, options.buffer_bits, 1.0, options.cost);
  EXPECT_TRUE(m.feasible);
}

TEST(DpScheduler, DecisionPeriodCostDominatesPerSlot) {
  // Restricting change points can only increase the optimal cost.
  rcbr::Rng rng(23);
  std::vector<double> workload(48);
  for (double& a : workload) a = rng.Uniform(0.0, 6.0);
  DpOptions options;
  options.rate_levels = UniformRateLevels(0.0, 6.0, 7);
  options.buffer_bits = 8.0;
  options.cost = {1.0, 1.0};
  const DpResult fine = ComputeOptimalSchedule(workload, options);
  options.decision_period = 8;
  const DpResult coarse = ComputeOptimalSchedule(workload, options);
  EXPECT_GE(coarse.optimal_cost, fine.optimal_cost - 1e-9);
}

TEST(DpScheduler, QuantizationIsConservativeAndClose) {
  rcbr::Rng rng(29);
  std::vector<double> workload(100);
  for (double& a : workload) a = rng.Uniform(0.0, 10.0);
  DpOptions options;
  options.rate_levels = UniformRateLevels(0.0, 10.0, 11);
  options.buffer_bits = 15.0;
  options.cost = {2.0, 1.0};
  const DpResult exact = ComputeOptimalSchedule(workload, options);
  options.buffer_quantum_bits = 0.5;
  const DpResult quantized = ComputeOptimalSchedule(workload, options);
  // Conservative: quantized cost >= exact cost; close: within a few %.
  EXPECT_GE(quantized.optimal_cost, exact.optimal_cost - 1e-9);
  EXPECT_LE(quantized.optimal_cost, exact.optimal_cost * 1.10);
  // The quantized schedule must still be feasible against the real bound.
  const ScheduleMetrics m = EvaluateSchedule(
      workload, quantized.schedule, options.buffer_bits, 1.0, options.cost);
  EXPECT_TRUE(m.feasible);
  EXPECT_LE(quantized.total_nodes, exact.total_nodes);
}

TEST(DpScheduler, DelayBoundVariant) {
  const std::vector<double> workload = {6, 0, 0, 6, 0, 0};
  DpOptions options;
  options.rate_levels = {0.0, 2.0, 3.0, 6.0};
  options.cost = {0.1, 1.0};
  options.delay_bound_slots = 2;
  const DpResult r = ComputeOptimalSchedule(workload, options);
  EXPECT_TRUE(MeetsDelayBound(workload, r.schedule, 2));
}

TEST(DpScheduler, TighterDelayCostsMore) {
  rcbr::Rng rng(31);
  std::vector<double> workload(60);
  for (double& a : workload) a = rng.Uniform(0.0, 6.0);
  DpOptions options;
  options.rate_levels = UniformRateLevels(0.0, 6.0, 7);
  options.cost = {1.0, 1.0};
  options.delay_bound_slots = 1;
  const DpResult tight = ComputeOptimalSchedule(workload, options);
  options.delay_bound_slots = 10;
  const DpResult loose = ComputeOptimalSchedule(workload, options);
  EXPECT_GE(tight.optimal_cost, loose.optimal_cost - 1e-9);
  EXPECT_TRUE(MeetsDelayBound(workload, tight.schedule, 1));
  EXPECT_TRUE(MeetsDelayBound(workload, loose.schedule, 10));
}

TEST(DpScheduler, ZeroDelayForcesPerSlotPeakCoverage) {
  const std::vector<double> workload = {1, 5, 2};
  DpOptions options;
  options.rate_levels = {0.0, 1.0, 2.0, 5.0};
  options.cost = {0.0, 1.0};
  options.delay_bound_slots = 0;
  const DpResult r = ComputeOptimalSchedule(workload, options);
  // Each slot's service must cover its arrivals exactly-or-more.
  for (std::int64_t t = 0; t < 3; ++t) {
    EXPECT_GE(r.schedule.At(t) + 1e-9, workload[static_cast<std::size_t>(t)]);
  }
}

TEST(DpScheduler, ReportsTrellisDiagnostics) {
  rcbr::Rng rng(37);
  std::vector<double> workload(30);
  for (double& a : workload) a = rng.Uniform(0.0, 4.0);
  DpOptions options;
  options.rate_levels = UniformRateLevels(0.0, 4.0, 5);
  options.buffer_bits = 6.0;
  const DpResult r = ComputeOptimalSchedule(workload, options);
  EXPECT_GT(r.total_nodes, 0u);
  EXPECT_GT(r.peak_live_nodes, 0u);
}

TEST(DpScheduler, FinalBufferConstraintDrainsTail) {
  DpOptions options = SmallOptions();
  const std::vector<double> workload(20, 2.0);
  options.final_buffer_bits = 0.0;
  const DpResult r = ComputeOptimalSchedule(workload, options);
  // The tail trick (leaving bits buffered) is now forbidden: flat rate 2
  // throughout is optimal again.
  EXPECT_DOUBLE_EQ(r.optimal_cost, 40.0);
  // Terminal occupancy must be zero.
  double q = 0;
  for (std::size_t t = 0; t < workload.size(); ++t) {
    q = std::max(q + workload[t] -
                     r.schedule.At(static_cast<std::int64_t>(t)),
                 0.0);
  }
  EXPECT_NEAR(q, 0.0, 1e-9);
}

TEST(DpScheduler, FinalBufferConstraintCostsAtLeastUnconstrained) {
  rcbr::Rng rng(43);
  std::vector<double> workload(60);
  for (double& a : workload) a = rng.Uniform(0.0, 6.0);
  DpOptions options;
  options.rate_levels = UniformRateLevels(0.0, 6.0, 7);
  options.buffer_bits = 8.0;
  options.cost = {2.0, 1.0};
  const DpResult loose = ComputeOptimalSchedule(workload, options);
  options.final_buffer_bits = 0.0;
  const DpResult drained = ComputeOptimalSchedule(workload, options);
  EXPECT_GE(drained.optimal_cost, loose.optimal_cost - 1e-9);
}

TEST(DpScheduler, ImpossibleFinalBufferThrows) {
  // Arrivals in the last slot exceed the top rate: the buffer cannot be
  // empty at the end.
  DpOptions options;
  options.rate_levels = {0.0, 2.0};
  options.buffer_bits = 10.0;
  options.final_buffer_bits = 0.0;
  EXPECT_THROW(ComputeOptimalSchedule({1.0, 1.0, 5.0}, options),
               Infeasible);
}

TEST(DpScheduler, TinyResidencyBudgetStillSolvesExactly) {
  rcbr::Rng rng(41);
  std::vector<double> workload(200);
  for (double& a : workload) a = rng.Uniform(0.0, 10.0);
  DpOptions options;
  options.rate_levels = UniformRateLevels(0.0, 10.0, 21);
  options.buffer_bits = 50.0;
  const DpResult roomy = ComputeOptimalSchedule(workload, options);
  EXPECT_EQ(roomy.recomputed_epochs, 0);

  // An absurdly small residency budget forces every block but the last to
  // spill and be recomputed during backtracking; the result must be
  // byte-identical to the fully resident solve.
  options.max_resident_nodes = 100;
  options.checkpoint_slots = 16;
  const DpResult tight = ComputeOptimalSchedule(workload, options);
  EXPECT_GT(tight.recomputed_epochs, 0);
  EXPECT_LT(tight.peak_resident_nodes, roomy.peak_resident_nodes);
  EXPECT_EQ(tight.optimal_cost, roomy.optimal_cost);
  ASSERT_EQ(tight.schedule.steps().size(), roomy.schedule.steps().size());
  for (std::size_t i = 0; i < tight.schedule.steps().size(); ++i) {
    EXPECT_EQ(tight.schedule.steps()[i].start,
              roomy.schedule.steps()[i].start);
    EXPECT_EQ(tight.schedule.steps()[i].value,
              roomy.schedule.steps()[i].value);
  }
}

}  // namespace
}  // namespace rcbr::core
