#include "core/rcbr_source.h"

#include <cstdint>
#include <memory>

#include <gtest/gtest.h>

#include "signaling/lossy_channel.h"
#include "signaling/retry.h"
#include "sim/fluid_queue.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::core {
namespace {

class RcbrSourceTest : public ::testing::Test {
 protected:
  void BuildPath(double capacity_bps, std::size_t hops = 2) {
    ports_.clear();
    for (std::size_t i = 0; i < hops; ++i) {
      ports_.push_back(std::make_unique<signaling::PortController>(
          capacity_bps));
    }
    std::vector<signaling::PortController*> raw;
    for (auto& p : ports_) raw.push_back(p.get());
    path_ = std::make_unique<signaling::SignalingPath>(std::move(raw),
                                                       0.001);
  }

  std::vector<std::unique_ptr<signaling::PortController>> ports_;
  std::unique_ptr<signaling::SignalingPath> path_;
};

TEST_F(RcbrSourceTest, OfflineFollowsSchedule) {
  BuildPath(1000.0);
  // Rates in bits/slot; slot lasts 0.1 s -> signalled rate x10 in bps.
  const PiecewiseConstant schedule({{0, 4.0}, {2, 8.0}}, 4);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 100.0, path_.get());
  ASSERT_TRUE(source.Connect());
  EXPECT_DOUBLE_EQ(ports_[0]->utilization_bps(), 40.0);

  source.Step(4.0);  // slot 0
  EXPECT_DOUBLE_EQ(source.granted_rate(), 4.0);
  source.Step(4.0);  // slot 1; next slot wants 8 -> renegotiated now
  EXPECT_DOUBLE_EQ(source.granted_rate(), 8.0);
  EXPECT_DOUBLE_EQ(ports_[1]->utilization_bps(), 80.0);
  EXPECT_EQ(source.stats().renegotiation_attempts, 1);
  EXPECT_EQ(source.stats().renegotiation_failures, 0);
}

TEST_F(RcbrSourceTest, FailedRenegotiationKeepsOldRateAndRetries) {
  BuildPath(100.0);
  const PiecewiseConstant schedule({{0, 4.0}, {2, 9.0}}, 6);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 1000.0, path_.get());
  ASSERT_TRUE(source.Connect());
  // Another connection hogs the link: 70 of 100 bps used.
  ASSERT_TRUE(ports_[0]->AdmitConnection(99, 60.0));
  ASSERT_TRUE(ports_[1]->AdmitConnection(99, 60.0));

  source.Step(4.0);  // slot 0
  source.Step(4.0);  // slot 1 -> wants 9.0 (90 bps) but only 40 free
  EXPECT_DOUBLE_EQ(source.granted_rate(), 4.0);
  EXPECT_EQ(source.stats().renegotiation_failures, 1);

  // Free the competitor; the source retries at the next slot.
  ports_[0]->ReleaseConnection(99);
  ports_[1]->ReleaseConnection(99);
  source.Step(9.0);  // slot 2: retry succeeds
  EXPECT_DOUBLE_EQ(source.granted_rate(), 9.0);
  EXPECT_GE(source.stats().renegotiation_attempts, 2);
}

TEST_F(RcbrSourceTest, BufferAbsorbsDeficitDuringFailure) {
  BuildPath(50.0);
  const PiecewiseConstant schedule({{0, 2.0}, {1, 5.0}}, 4);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 8.0, path_.get());
  ASSERT_TRUE(source.Connect());
  ASSERT_TRUE(ports_[0]->AdmitConnection(99, 25.0));  // leaves 5 < 30
  ASSERT_TRUE(ports_[1]->AdmitConnection(99, 25.0));
  for (int t = 0; t < 4; ++t) source.Step(5.0);
  EXPECT_GT(source.stats().renegotiation_failures, 0);
  EXPECT_GT(source.buffer_occupancy_bits(), 0.0);
}

TEST_F(RcbrSourceTest, LossWhenBufferOverflowsUnderFailure) {
  BuildPath(50.0);
  const PiecewiseConstant schedule({{0, 2.0}, {1, 5.0}}, 6);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 3.0, path_.get());
  ASSERT_TRUE(source.Connect());
  ASSERT_TRUE(ports_[0]->AdmitConnection(99, 25.0));
  ASSERT_TRUE(ports_[1]->AdmitConnection(99, 25.0));
  for (int t = 0; t < 6; ++t) source.Step(5.0);
  EXPECT_GT(source.stats().lost_bits, 0.0);
  EXPECT_GT(source.stats().loss_fraction(), 0.0);
}

TEST_F(RcbrSourceTest, OnlineSourceRenegotiates) {
  BuildPath(10000.0);
  HeuristicOptions heuristic;
  heuristic.low_threshold_bits = 2.0;
  heuristic.high_threshold_bits = 10.0;
  heuristic.time_constant_slots = 5.0;
  heuristic.granularity_bits_per_slot = 1.0;
  heuristic.initial_rate_bits_per_slot = 4.0;
  RcbrSource source =
      RcbrSource::Online(2, heuristic, 0.1, 1000.0, path_.get());
  ASSERT_TRUE(source.Connect());
  for (int t = 0; t < 30; ++t) source.Step(12.0);
  EXPECT_GT(source.stats().renegotiation_attempts, 0);
  EXPECT_GT(source.granted_rate(), 4.0);
}

TEST_F(RcbrSourceTest, OnlineDeniedRequestsKeepReservationConsistent) {
  BuildPath(45.0);
  HeuristicOptions heuristic;
  heuristic.low_threshold_bits = 2.0;
  heuristic.high_threshold_bits = 10.0;
  heuristic.time_constant_slots = 5.0;
  heuristic.granularity_bits_per_slot = 1.0;
  heuristic.initial_rate_bits_per_slot = 4.0;
  RcbrSource source =
      RcbrSource::Online(2, heuristic, 0.1, 1000.0, path_.get());
  ASSERT_TRUE(source.Connect());
  for (int t = 0; t < 50; ++t) {
    source.Step(12.0);
    // The port's belief must always match the source's granted rate.
    EXPECT_NEAR(ports_[0]->TrackedRate(2), source.granted_rate() / 0.1,
                1e-9);
  }
  EXPECT_GT(source.stats().renegotiation_failures, 0);
  // Granted rate can never exceed what the 45 bps link allows (4.5/slot).
  EXPECT_LE(source.granted_rate(), 4.5 + 1e-9);
}

TEST_F(RcbrSourceTest, ConnectFailsWhenLinkFull) {
  BuildPath(30.0);
  ports_[0]->AdmitConnection(99, 25.0);
  const PiecewiseConstant schedule({{0, 4.0}}, 4);  // 40 bps needed
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 100.0, path_.get());
  EXPECT_FALSE(source.Connect());
  EXPECT_THROW(source.Step(1.0), InvalidArgument);
}

TEST_F(RcbrSourceTest, DisconnectReleasesReservation) {
  BuildPath(100.0);
  const PiecewiseConstant schedule({{0, 4.0}}, 4);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 100.0, path_.get());
  ASSERT_TRUE(source.Connect());
  source.Step(4.0);
  source.Disconnect();
  EXPECT_DOUBLE_EQ(ports_[0]->utilization_bps(), 0.0);
  EXPECT_DOUBLE_EQ(ports_[1]->utilization_bps(), 0.0);
}

TEST_F(RcbrSourceTest, ScheduleHoldsLastRateAfterEnd) {
  BuildPath(1000.0);
  const PiecewiseConstant schedule({{0, 4.0}}, 2);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 100.0, path_.get());
  ASSERT_TRUE(source.Connect());
  for (int t = 0; t < 5; ++t) source.Step(4.0);  // beyond schedule length
  EXPECT_DOUBLE_EQ(source.granted_rate(), 4.0);
}

// ---------------------------------------------------------------------
// Graceful degradation: the kNormal -> kHold -> kFallback state machine
// driven through a total signaling outage that a fault injector would
// create by mutating the shared ChannelConditions.
// ---------------------------------------------------------------------

signaling::RetryOptions SingleTryRetry() {
  signaling::RetryOptions retry;
  retry.max_retries = 0;  // one cell per attempt: failures are immediate
  retry.jitter_fraction = 0;
  return retry;
}

TEST_F(RcbrSourceTest, DegradationOptionValidation) {
  BuildPath(1000.0);
  const PiecewiseConstant schedule({{0, 4.0}}, 4);
  Rng rng(1);
  DegradationOptions degradation;
  degradation.enabled = true;
  degradation.fallback_rate_bits_per_slot = 0;  // must be positive
  {
    RcbrSource source =
        RcbrSource::Offline(1, schedule, 0.1, 100.0, path_.get());
    EXPECT_THROW(source.EnableRobustSignaling(SingleTryRetry(), {}, &rng,
                                              degradation),
                 InvalidArgument);
  }
  degradation.fallback_rate_bits_per_slot = 12.0;
  degradation.recover_occupancy_fraction = 0.9;  // above fallback fraction
  {
    RcbrSource source =
        RcbrSource::Offline(1, schedule, 0.1, 100.0, path_.get());
    EXPECT_THROW(source.EnableRobustSignaling(SingleTryRetry(), {}, &rng,
                                              degradation),
                 InvalidArgument);
  }
  degradation.recover_occupancy_fraction = 0.25;
  {
    // Occupancy fractions are meaningless on an infinite buffer.
    RcbrSource source = RcbrSource::Offline(
        1, schedule, 0.1, sim::kInfiniteBuffer, path_.get());
    EXPECT_THROW(source.EnableRobustSignaling(SingleTryRetry(), {}, &rng,
                                              degradation),
                 InvalidArgument);
  }
}

TEST_F(RcbrSourceTest, OutageDrivesHoldAndReprobeRecovers) {
  BuildPath(1000.0);
  // Wants to go 4 -> 8 at slot 1 but a total signaling outage is up.
  const PiecewiseConstant schedule({{0, 4.0}, {1, 8.0}}, 20);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 1000.0, path_.get());
  Rng rng(7);
  signaling::ChannelConditions conditions;
  conditions.extra_loss_probability = 1.0;  // outage from the start
  signaling::LossyChannelOptions channel;
  channel.conditions = &conditions;
  DegradationOptions degradation;
  degradation.enabled = true;
  degradation.failures_to_degrade = 2;
  degradation.hold_slots = 3;
  degradation.fallback_rate_bits_per_slot = 12.0;
  source.EnableRobustSignaling(SingleTryRetry(), channel, &rng,
                               degradation);
  ASSERT_TRUE(source.Connect());

  source.Step(4.0);  // slot 1 wants 8: timeout, failure #1
  EXPECT_EQ(source.mode(), SourceMode::kNormal);
  source.Step(4.0);  // failure #2 -> give up and hold
  EXPECT_EQ(source.mode(), SourceMode::kHold);
  EXPECT_EQ(source.stats().degrade_holds, 1);
  EXPECT_DOUBLE_EQ(source.granted_rate(), 4.0);  // keeps what it has

  source.Step(4.0);  // quiet hold slots 3 and 4
  source.Step(4.0);
  const std::int64_t attempts_before = source.stats().renegotiation_attempts;
  source.Step(4.0);  // slot 5 = hold expiry: re-probe fails, hold extends
  EXPECT_EQ(source.stats().renegotiation_attempts, attempts_before + 1);
  EXPECT_EQ(source.mode(), SourceMode::kHold);

  source.Step(4.0);  // slots 6, 7: quiet again
  source.Step(4.0);
  conditions.extra_loss_probability = 0.0;  // outage repaired
  source.Step(4.0);  // slot 8: re-probe lands
  EXPECT_EQ(source.mode(), SourceMode::kNormal);
  EXPECT_DOUBLE_EQ(source.granted_rate(), 8.0);
  EXPECT_EQ(source.stats().recoveries, 1);
  // Every failed attempt was a transport timeout, and they were counted.
  EXPECT_EQ(source.stats().renegotiation_timeouts, 3);
  EXPECT_EQ(source.stats().renegotiation_failures, 3);
}

TEST_F(RcbrSourceTest, BufferPressureEscalatesToFallbackAndRecovers) {
  BuildPath(1000.0);
  const PiecewiseConstant schedule({{0, 4.0}, {1, 8.0}}, 40);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 100.0, path_.get());
  Rng rng(11);
  signaling::ChannelConditions conditions;
  conditions.extra_loss_probability = 1.0;
  signaling::LossyChannelOptions channel;
  channel.conditions = &conditions;
  DegradationOptions degradation;
  degradation.enabled = true;
  degradation.failures_to_degrade = 1;
  degradation.hold_slots = 100;  // re-probe never fires in this test
  degradation.fallback_occupancy_fraction = 0.5;   // escalate at 50 bits
  degradation.recover_occupancy_fraction = 0.25;   // recover at 25 bits
  degradation.fallback_rate_bits_per_slot = 12.0;  // the source's peak
  source.EnableRobustSignaling(SingleTryRetry(), channel, &rng,
                               degradation);
  ASSERT_TRUE(source.Connect());

  // Arrivals outrun the stuck 4 bits/slot grant by 6 bits per slot.
  source.Step(10.0);  // first failure -> kHold immediately
  EXPECT_EQ(source.mode(), SourceMode::kHold);
  int steps = 1;
  // The buffer climbs toward the escalation threshold; during the outage
  // every escalation attempt times out, so the source stays in kHold.
  while (source.buffer_occupancy_bits() < 60.0) {
    source.Step(10.0);
    ++steps;
    ASSERT_EQ(source.mode(), SourceMode::kHold);
    ASSERT_LT(steps, 20);
  }
  EXPECT_GT(source.stats().renegotiation_timeouts, 2);

  conditions.extra_loss_probability = 0.0;  // outage ends
  source.Step(10.0);  // escalation attempt now lands
  EXPECT_EQ(source.mode(), SourceMode::kFallback);
  EXPECT_EQ(source.stats().fallback_entries, 1);
  EXPECT_DOUBLE_EQ(source.granted_rate(), 12.0);
  EXPECT_DOUBLE_EQ(source.stats().lost_bits, 0.0);  // escaped in time

  // Encoder goes quiet; the fallback rate drains the backlog and the
  // source hands the reservation back to the schedule.
  int drain = 0;
  while (source.mode() == SourceMode::kFallback) {
    source.Step(0.0);
    ++drain;
    ASSERT_LT(drain, 20);
  }
  EXPECT_EQ(source.mode(), SourceMode::kNormal);
  EXPECT_EQ(source.stats().recoveries, 1);
  EXPECT_DOUBLE_EQ(source.granted_rate(), 8.0);
  EXPECT_LE(source.buffer_occupancy_bits(), 25.0);
}

TEST_F(RcbrSourceTest, FallbackBoundsLossWhereHoldAloneOverflows) {
  // The acceptance scenario: same outage, same workload; the source with
  // the degradation policy escapes to its peak rate before the buffer
  // overflows, the one without it drowns.
  auto run = [this](bool degraded) {
    BuildPath(1000.0);
    const PiecewiseConstant schedule({{0, 4.0}, {1, 8.0}}, 60);
    RcbrSource source =
        RcbrSource::Offline(1, schedule, 0.1, 100.0, path_.get());
    Rng rng(13);
    signaling::ChannelConditions conditions;
    conditions.extra_loss_probability = 1.0;
    signaling::LossyChannelOptions channel;
    channel.conditions = &conditions;
    DegradationOptions degradation;
    degradation.enabled = degraded;
    degradation.failures_to_degrade = 1;
    degradation.hold_slots = 100;
    degradation.fallback_occupancy_fraction = 0.5;
    degradation.fallback_rate_bits_per_slot = 12.0;
    source.EnableRobustSignaling(SingleTryRetry(), channel, &rng,
                                 degradation);
    if (!source.Connect()) ADD_FAILURE() << "connect failed";
    for (int t = 0; t < 60; ++t) {
      if (t == 10) conditions.extra_loss_probability = 0.0;
      source.Step(10.0);  // always above the stuck or schedule rate
    }
    return source.stats();
  };

  const SourceStats with_fallback = run(true);
  const SourceStats without = run(false);
  EXPECT_GT(with_fallback.renegotiation_timeouts, 0);
  EXPECT_GT(without.renegotiation_timeouts, 0);
  EXPECT_EQ(with_fallback.fallback_entries, 1);
  // The degradation policy kept the buffer from ever overflowing...
  EXPECT_DOUBLE_EQ(with_fallback.lost_bits, 0.0);
  EXPECT_LT(with_fallback.max_buffer_bits, 100.0);
  // ...while holding at the stuck rate (then the 8 < 10 schedule rate)
  // fills the 100-bit buffer and loses the excess.
  EXPECT_GT(without.lost_bits, 10.0);
}

TEST_F(RcbrSourceTest, LadderConnectDowngradesInsteadOfBlocking) {
  BuildPath(100.0);
  // The schedule opens at 8 bits/slot = 80 bps; a competitor leaves only
  // 50 bps free, so the full ask cannot fit but the 0.5 rung (40 bps)
  // can.
  ASSERT_TRUE(ports_[0]->AdmitConnection(99, 50.0));
  ASSERT_TRUE(ports_[1]->AdmitConnection(99, 50.0));
  const PiecewiseConstant schedule({{0, 8.0}}, 4);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 100.0, path_.get());
  source.SetLadder(sim::RateLadder::FromScales({1.0, 0.5}, {1.0, 0.6}));
  ASSERT_TRUE(source.Connect());
  EXPECT_EQ(source.rung(), 1u);
  EXPECT_DOUBLE_EQ(source.granted_rate(), 4.0);  // bits/slot, scaled
  EXPECT_DOUBLE_EQ(ports_[0]->utilization_bps(), 90.0);
  EXPECT_EQ(source.stats().downgraded_connects, 1);
  EXPECT_TRUE(ports_[0]->IsUpgradeWaiter(1));
}

TEST_F(RcbrSourceTest, LadderConnectAtFullAskStaysAtRungZero) {
  BuildPath(1000.0);
  const PiecewiseConstant schedule({{0, 8.0}}, 4);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 100.0, path_.get());
  source.SetLadder(sim::RateLadder::FromScales({1.0, 0.5}, {1.0, 0.6}));
  ASSERT_TRUE(source.Connect());
  EXPECT_EQ(source.rung(), 0u);
  EXPECT_DOUBLE_EQ(source.granted_rate(), 8.0);
  EXPECT_EQ(source.stats().downgraded_connects, 0);
  EXPECT_FALSE(ports_[0]->IsUpgradeWaiter(1));
}

TEST_F(RcbrSourceTest, LadderConnectBlocksWhenNoRungFits) {
  BuildPath(100.0);
  ASSERT_TRUE(ports_[0]->AdmitConnection(99, 95.0));
  ASSERT_TRUE(ports_[1]->AdmitConnection(99, 95.0));
  const PiecewiseConstant schedule({{0, 8.0}}, 4);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 100.0, path_.get());
  source.SetLadder(sim::RateLadder::FromScales({1.0, 0.5}, {1.0, 0.6}));
  EXPECT_FALSE(source.Connect());
}

TEST_F(RcbrSourceTest, TryUpgradePromotesWhenCapacityFrees) {
  BuildPath(100.0);
  ASSERT_TRUE(ports_[0]->AdmitConnection(99, 50.0));
  ASSERT_TRUE(ports_[1]->AdmitConnection(99, 50.0));
  const PiecewiseConstant schedule({{0, 8.0}}, 4);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 100.0, path_.get());
  source.SetLadder(sim::RateLadder::FromScales({1.0, 0.5}, {1.0, 0.6}));
  ASSERT_TRUE(source.Connect());
  ASSERT_EQ(source.rung(), 1u);

  // Still saturated: the probe fails and the contract stays downgraded.
  EXPECT_FALSE(source.TryUpgrade());
  EXPECT_EQ(source.rung(), 1u);
  EXPECT_TRUE(ports_[0]->IsUpgradeWaiter(1));

  // The competitor leaves; the promotion lands at the full ask and the
  // waiter registration clears on every hop.
  ports_[0]->ReleaseConnection(99);
  ports_[1]->ReleaseConnection(99);
  EXPECT_TRUE(source.TryUpgrade());
  EXPECT_EQ(source.rung(), 0u);
  EXPECT_DOUBLE_EQ(source.granted_rate(), 8.0);
  EXPECT_DOUBLE_EQ(ports_[0]->utilization_bps(), 80.0);
  EXPECT_EQ(source.stats().upgrades, 1);
  EXPECT_FALSE(ports_[0]->IsUpgradeWaiter(1));
  // Fully promoted: nothing further to ask for.
  EXPECT_FALSE(source.TryUpgrade());
}

TEST_F(RcbrSourceTest, LadderScalesEveryRenegotiation) {
  BuildPath(100.0);
  ASSERT_TRUE(ports_[0]->AdmitConnection(99, 50.0));
  ASSERT_TRUE(ports_[1]->AdmitConnection(99, 50.0));
  // Opens at 8 b/slot (downgraded to 4), then the schedule asks for 6:
  // the rung-1 contract requests 3 b/slot (30 bps), not the full 60.
  const PiecewiseConstant schedule({{0, 8.0}, {2, 6.0}}, 6);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 100.0, path_.get());
  source.SetLadder(sim::RateLadder::FromScales({1.0, 0.5}, {1.0, 0.6}));
  ASSERT_TRUE(source.Connect());
  ASSERT_EQ(source.rung(), 1u);
  source.Step(4.0);  // slot 0
  source.Step(4.0);  // slot 1: next slot wants 6 -> scaled ask of 3
  EXPECT_DOUBLE_EQ(source.granted_rate(), 3.0);
  EXPECT_DOUBLE_EQ(ports_[0]->utilization_bps(), 80.0);  // 50 + 30
  EXPECT_EQ(source.rung(), 1u);
}

TEST_F(RcbrSourceTest, ImposedRateReachesTheOnlineController) {
  // A downgraded connect must flow through the same OnRateImposed path
  // the degradation machine uses, so the heuristic's believed rate
  // tracks the network's actual grant.
  BuildPath(100.0);
  ASSERT_TRUE(ports_[0]->AdmitConnection(99, 50.0));
  ASSERT_TRUE(ports_[1]->AdmitConnection(99, 50.0));
  HeuristicOptions h;
  h.low_threshold_bits = 1.0;
  h.high_threshold_bits = 50.0;
  h.time_constant_slots = 4;
  h.granularity_bits_per_slot = 1.0;
  h.initial_rate_bits_per_slot = 8.0;
  RcbrSource source =
      RcbrSource::Online(1, h, 0.1, 100.0, path_.get());
  source.SetLadder(sim::RateLadder::FromScales({1.0, 0.5}, {1.0, 0.6}));
  ASSERT_TRUE(source.Connect());
  EXPECT_EQ(source.rung(), 1u);
  EXPECT_DOUBLE_EQ(source.granted_rate(), 4.0);
  // One quiet slot: a controller that still believed 8 b/slot would
  // trigger an immediate renegotiation mismatch; the imposed-rate path
  // keeps granted and believed in sync, so stepping just works.
  source.Step(4.0);
  EXPECT_EQ(source.rung(), 1u);
}

TEST_F(RcbrSourceTest, LadderWorksThroughTheRetryTransport) {
  BuildPath(100.0);
  ASSERT_TRUE(ports_[0]->AdmitConnection(99, 50.0));
  ASSERT_TRUE(ports_[1]->AdmitConnection(99, 50.0));
  const PiecewiseConstant schedule({{0, 8.0}}, 4);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 100.0, path_.get());
  Rng rng(7);
  source.SetLadder(sim::RateLadder::FromScales({1.0, 0.5}, {1.0, 0.6}));
  source.EnableRobustSignaling(signaling::RetryOptions{},
                               signaling::LossyChannelOptions{}, &rng);
  ASSERT_TRUE(source.Connect());
  ASSERT_EQ(source.rung(), 1u);
  ports_[0]->ReleaseConnection(99);
  ports_[1]->ReleaseConnection(99);
  EXPECT_TRUE(source.TryUpgrade());
  EXPECT_EQ(source.rung(), 0u);
  EXPECT_DOUBLE_EQ(source.granted_rate(), 8.0);
  EXPECT_FALSE(ports_[0]->IsUpgradeWaiter(1));
}

TEST_F(RcbrSourceTest, TimedOutUpgradeProbeKeepsTheWaiterSeat) {
  // Regression: the upgrade probe rides the transport's requested rung.
  // A probe toward rung 0 that *times out* must not have rescinded with
  // the probe's rung — that would deregister the still-degraded call
  // from every upgrade queue, so no departure would ever promote it.
  BuildPath(100.0);
  ASSERT_TRUE(ports_[0]->AdmitConnection(99, 50.0));
  ASSERT_TRUE(ports_[1]->AdmitConnection(99, 50.0));
  const PiecewiseConstant schedule({{0, 8.0}}, 4);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 100.0, path_.get());
  Rng rng(13);
  source.SetLadder(sim::RateLadder::FromScales({1.0, 0.5}, {1.0, 0.6}));
  signaling::ChannelConditions outage;
  signaling::LossyChannelOptions channel;
  channel.conditions = &outage;
  signaling::RetryOptions retry;
  retry.max_retries = 1;
  retry.jitter_fraction = 0;
  source.EnableRobustSignaling(retry, channel, &rng);
  ASSERT_TRUE(source.Connect());
  ASSERT_EQ(source.rung(), 1u);
  ASSERT_TRUE(ports_[0]->IsUpgradeWaiter(1));

  // Capacity frees, but the signaling channel is down: the probe times
  // out after its bounded retries.
  ports_[0]->ReleaseConnection(99);
  ports_[1]->ReleaseConnection(99);
  outage.extra_loss_probability = 1.0;
  EXPECT_FALSE(source.TryUpgrade());
  EXPECT_EQ(source.rung(), 1u);
  // The call is still a rung-1 waiter on every hop, and the rescind left
  // the tracked rate at the acknowledged contract.
  EXPECT_TRUE(ports_[0]->IsUpgradeWaiter(1));
  EXPECT_TRUE(ports_[1]->IsUpgradeWaiter(1));
  EXPECT_DOUBLE_EQ(ports_[0]->TrackedRate(1), 40.0);

  // Channel repaired: the next probe lands and clears the seat.
  outage.extra_loss_probability = 0.0;
  EXPECT_TRUE(source.TryUpgrade());
  EXPECT_EQ(source.rung(), 0u);
  EXPECT_FALSE(ports_[0]->IsUpgradeWaiter(1));
}

}  // namespace
}  // namespace rcbr::core
