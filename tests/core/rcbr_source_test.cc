#include "core/rcbr_source.h"

#include <memory>

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr::core {
namespace {

class RcbrSourceTest : public ::testing::Test {
 protected:
  void BuildPath(double capacity_bps, std::size_t hops = 2) {
    ports_.clear();
    for (std::size_t i = 0; i < hops; ++i) {
      ports_.push_back(std::make_unique<signaling::PortController>(
          capacity_bps));
    }
    std::vector<signaling::PortController*> raw;
    for (auto& p : ports_) raw.push_back(p.get());
    path_ = std::make_unique<signaling::SignalingPath>(std::move(raw),
                                                       0.001);
  }

  std::vector<std::unique_ptr<signaling::PortController>> ports_;
  std::unique_ptr<signaling::SignalingPath> path_;
};

TEST_F(RcbrSourceTest, OfflineFollowsSchedule) {
  BuildPath(1000.0);
  // Rates in bits/slot; slot lasts 0.1 s -> signalled rate x10 in bps.
  const PiecewiseConstant schedule({{0, 4.0}, {2, 8.0}}, 4);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 100.0, path_.get());
  ASSERT_TRUE(source.Connect());
  EXPECT_DOUBLE_EQ(ports_[0]->utilization_bps(), 40.0);

  source.Step(4.0);  // slot 0
  EXPECT_DOUBLE_EQ(source.granted_rate(), 4.0);
  source.Step(4.0);  // slot 1; next slot wants 8 -> renegotiated now
  EXPECT_DOUBLE_EQ(source.granted_rate(), 8.0);
  EXPECT_DOUBLE_EQ(ports_[1]->utilization_bps(), 80.0);
  EXPECT_EQ(source.stats().renegotiation_attempts, 1);
  EXPECT_EQ(source.stats().renegotiation_failures, 0);
}

TEST_F(RcbrSourceTest, FailedRenegotiationKeepsOldRateAndRetries) {
  BuildPath(100.0);
  const PiecewiseConstant schedule({{0, 4.0}, {2, 9.0}}, 6);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 1000.0, path_.get());
  ASSERT_TRUE(source.Connect());
  // Another connection hogs the link: 70 of 100 bps used.
  ASSERT_TRUE(ports_[0]->AdmitConnection(99, 60.0));
  ASSERT_TRUE(ports_[1]->AdmitConnection(99, 60.0));

  source.Step(4.0);  // slot 0
  source.Step(4.0);  // slot 1 -> wants 9.0 (90 bps) but only 40 free
  EXPECT_DOUBLE_EQ(source.granted_rate(), 4.0);
  EXPECT_EQ(source.stats().renegotiation_failures, 1);

  // Free the competitor; the source retries at the next slot.
  ports_[0]->ReleaseConnection(99);
  ports_[1]->ReleaseConnection(99);
  source.Step(9.0);  // slot 2: retry succeeds
  EXPECT_DOUBLE_EQ(source.granted_rate(), 9.0);
  EXPECT_GE(source.stats().renegotiation_attempts, 2);
}

TEST_F(RcbrSourceTest, BufferAbsorbsDeficitDuringFailure) {
  BuildPath(50.0);
  const PiecewiseConstant schedule({{0, 2.0}, {1, 5.0}}, 4);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 8.0, path_.get());
  ASSERT_TRUE(source.Connect());
  ASSERT_TRUE(ports_[0]->AdmitConnection(99, 25.0));  // leaves 5 < 30
  ASSERT_TRUE(ports_[1]->AdmitConnection(99, 25.0));
  for (int t = 0; t < 4; ++t) source.Step(5.0);
  EXPECT_GT(source.stats().renegotiation_failures, 0);
  EXPECT_GT(source.buffer_occupancy_bits(), 0.0);
}

TEST_F(RcbrSourceTest, LossWhenBufferOverflowsUnderFailure) {
  BuildPath(50.0);
  const PiecewiseConstant schedule({{0, 2.0}, {1, 5.0}}, 6);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 3.0, path_.get());
  ASSERT_TRUE(source.Connect());
  ASSERT_TRUE(ports_[0]->AdmitConnection(99, 25.0));
  ASSERT_TRUE(ports_[1]->AdmitConnection(99, 25.0));
  for (int t = 0; t < 6; ++t) source.Step(5.0);
  EXPECT_GT(source.stats().lost_bits, 0.0);
  EXPECT_GT(source.stats().loss_fraction(), 0.0);
}

TEST_F(RcbrSourceTest, OnlineSourceRenegotiates) {
  BuildPath(10000.0);
  HeuristicOptions heuristic;
  heuristic.low_threshold_bits = 2.0;
  heuristic.high_threshold_bits = 10.0;
  heuristic.time_constant_slots = 5.0;
  heuristic.granularity_bits_per_slot = 1.0;
  heuristic.initial_rate_bits_per_slot = 4.0;
  RcbrSource source =
      RcbrSource::Online(2, heuristic, 0.1, 1000.0, path_.get());
  ASSERT_TRUE(source.Connect());
  for (int t = 0; t < 30; ++t) source.Step(12.0);
  EXPECT_GT(source.stats().renegotiation_attempts, 0);
  EXPECT_GT(source.granted_rate(), 4.0);
}

TEST_F(RcbrSourceTest, OnlineDeniedRequestsKeepReservationConsistent) {
  BuildPath(45.0);
  HeuristicOptions heuristic;
  heuristic.low_threshold_bits = 2.0;
  heuristic.high_threshold_bits = 10.0;
  heuristic.time_constant_slots = 5.0;
  heuristic.granularity_bits_per_slot = 1.0;
  heuristic.initial_rate_bits_per_slot = 4.0;
  RcbrSource source =
      RcbrSource::Online(2, heuristic, 0.1, 1000.0, path_.get());
  ASSERT_TRUE(source.Connect());
  for (int t = 0; t < 50; ++t) {
    source.Step(12.0);
    // The port's belief must always match the source's granted rate.
    EXPECT_NEAR(ports_[0]->TrackedRate(2), source.granted_rate() / 0.1,
                1e-9);
  }
  EXPECT_GT(source.stats().renegotiation_failures, 0);
  // Granted rate can never exceed what the 45 bps link allows (4.5/slot).
  EXPECT_LE(source.granted_rate(), 4.5 + 1e-9);
}

TEST_F(RcbrSourceTest, ConnectFailsWhenLinkFull) {
  BuildPath(30.0);
  ports_[0]->AdmitConnection(99, 25.0);
  const PiecewiseConstant schedule({{0, 4.0}}, 4);  // 40 bps needed
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 100.0, path_.get());
  EXPECT_FALSE(source.Connect());
  EXPECT_THROW(source.Step(1.0), InvalidArgument);
}

TEST_F(RcbrSourceTest, DisconnectReleasesReservation) {
  BuildPath(100.0);
  const PiecewiseConstant schedule({{0, 4.0}}, 4);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 100.0, path_.get());
  ASSERT_TRUE(source.Connect());
  source.Step(4.0);
  source.Disconnect();
  EXPECT_DOUBLE_EQ(ports_[0]->utilization_bps(), 0.0);
  EXPECT_DOUBLE_EQ(ports_[1]->utilization_bps(), 0.0);
}

TEST_F(RcbrSourceTest, ScheduleHoldsLastRateAfterEnd) {
  BuildPath(1000.0);
  const PiecewiseConstant schedule({{0, 4.0}}, 2);
  RcbrSource source =
      RcbrSource::Offline(1, schedule, 0.1, 100.0, path_.get());
  ASSERT_TRUE(source.Connect());
  for (int t = 0; t < 5; ++t) source.Step(4.0);  // beyond schedule length
  EXPECT_DOUBLE_EQ(source.granted_rate(), 4.0);
}

}  // namespace
}  // namespace rcbr::core
