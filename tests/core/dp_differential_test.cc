// Differential tests: ComputeOptimalSchedule against the brute-force
// reference DP (tests/core/dp_reference.h) across the option space —
// buffer and delay bounds, quantization, decision periods, terminal and
// initial state. Instances use integer-lattice workloads and rate grids,
// so both implementations compute exactly and costs must agree tightly.
#include <cmath>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/dp_scheduler.h"
#include "core/schedule.h"
#include "dp_reference.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::core {
namespace {

DpOptions RandomLatticeOptions(Rng& rng, int trial) {
  DpOptions options;
  const int k = 2 + trial % 3;
  double level = 0.0;
  for (int i = 0; i < k; ++i) {
    options.rate_levels.push_back(level);
    level += 1.0 + std::floor(rng.Uniform(0.0, 3.0));
  }
  options.buffer_bits = 4.0 + std::floor(rng.Uniform(0.0, 30.0));
  options.cost = {std::floor(rng.Uniform(0.0, 7.0)),
                  0.5 * (1.0 + std::floor(rng.Uniform(0.0, 4.0)))};
  switch (trial % 5) {
    case 1:
      options.buffer_quantum_bits = trial % 2 == 0 ? 1.0 : 0.5;
      break;
    case 2:
      options.decision_period = 2 + static_cast<std::int64_t>(
                                        rng.Uniform(0.0, 2.0));
      break;
    case 3:
      options.delay_bound_slots =
          static_cast<std::int64_t>(rng.Uniform(0.0, 5.0));
      if (trial % 10 == 3) options.buffer_bits = 0;
      break;
    case 4:
      options.final_buffer_bits = std::floor(rng.Uniform(0.0, 4.0));
      break;
    default:
      break;
  }
  if (trial % 7 == 5) {
    options.initial_buffer_bits = std::floor(rng.Uniform(0.0, 4.0));
  }
  if (trial % 11 == 6) {
    options.initial_rate_index = static_cast<std::int64_t>(
        rng.Uniform(0.0, static_cast<double>(k)));
  }
  return options;
}

TEST(DpDifferential, MatchesBruteForceAcrossOptionSpace) {
  Rng rng(20260809);
  int feasible_cases = 0;
  for (int trial = 0; trial < 460; ++trial) {
    const DpOptions options = RandomLatticeOptions(rng, trial);
    const int slots = 8 + static_cast<int>(rng.Uniform(0.0, 17.0));
    std::vector<double> workload(static_cast<std::size_t>(slots));
    for (double& a : workload) a = std::floor(rng.Uniform(0.0, 9.0));

    const std::optional<double> want =
        reference::ReferenceOptimalCost(workload, options);
    std::optional<DpResult> got;
    try {
      got = ComputeOptimalSchedule(workload, options);
    } catch (const Infeasible&) {
    }
    ASSERT_EQ(want.has_value(), got.has_value()) << "trial " << trial;
    if (!want.has_value()) continue;
    ++feasible_cases;
    EXPECT_NEAR(got->optimal_cost, *want, 1e-9 * (1.0 + std::abs(*want)))
        << "trial " << trial;

    // The emitted schedule must realize the claimed cost feasibly. The
    // evaluators assume an initially empty buffer and a free first rate,
    // so those checks apply only to trials sharing that convention.
    if (options.initial_buffer_bits != 0) continue;
    if (options.delay_bound_slots >= 0) {
      EXPECT_TRUE(MeetsDelayBound(workload, got->schedule,
                                  options.delay_bound_slots))
          << "trial " << trial;
    } else {
      const ScheduleMetrics metrics = EvaluateSchedule(
          workload, got->schedule, options.buffer_bits, 1.0, options.cost);
      EXPECT_TRUE(metrics.feasible) << "trial " << trial;
      if (options.initial_rate_index < 0) {
        EXPECT_NEAR(metrics.cost, got->optimal_cost,
                    1e-9 * (1.0 + std::abs(got->optimal_cost)))
            << "trial " << trial;
      }
    }
  }
  // The ISSUE's bar: at least 200 feasible differential cases.
  EXPECT_GE(feasible_cases, 200);
}

TEST(DpDifferential, InitialStateChargesExactlyOneAlpha) {
  // With a reserved initial rate, keeping it must save exactly alpha
  // against being forced off it, all else equal.
  const std::vector<double> workload(12, 3.0);
  DpOptions options;
  options.rate_levels = {0.0, 3.0, 6.0};
  options.buffer_bits = 10.0;
  options.cost = {5.0, 1.0};
  options.initial_rate_index = 1;  // rate 3.0: exactly the arrival rate
  const DpResult keep = ComputeOptimalSchedule(workload, options);
  options.initial_rate_index = -1;
  const DpResult free_choice = ComputeOptimalSchedule(workload, options);
  EXPECT_DOUBLE_EQ(keep.optimal_cost, free_choice.optimal_cost);
  options.initial_rate_index = 2;  // must pay alpha to leave rate 6.0
  const DpResult leave = ComputeOptimalSchedule(workload, options);
  EXPECT_GT(leave.optimal_cost, free_choice.optimal_cost);
  EXPECT_LE(leave.optimal_cost,
            free_choice.optimal_cost + options.cost.per_renegotiation + 1e-9);
}

}  // namespace
}  // namespace rcbr::core
