// Property tests for the DP trellis frontiers, via the test-only
// DpOptions::inspect hook:
//  - every per-rate frontier is Pareto-sorted (buffers strictly
//    ascending, weights strictly descending) — equivalently, no node
//    dominates another within a rate;
//  - each epoch's frontier equals an independently reconstructed Pareto
//    merge of the same-rate candidates and the alpha-shifted cross-rate
//    global frontier (the Lemma-1 pruning rule), bit-for-bit;
//  - the peak_live_nodes / total_nodes diagnostics match a recount;
//  - results are byte-identical across worker-thread counts.
#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/dp_scheduler.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::core {
namespace {

struct Node {
  double buffer = 0;
  double weight = 0;
};

void PushPareto(std::vector<Node>& out, const Node& node) {
  if (!out.empty()) {
    const Node& back = out.back();
    if (node.buffer == back.buffer) {
      if (node.weight >= back.weight) return;
      out.pop_back();
    } else if (node.weight >= back.weight) {
      return;
    }
  }
  out.push_back(node);
}

// Merges two buffer-sorted Pareto lists, preferring `a` on exact ties —
// the production merge preference.
std::vector<Node> MergePareto(const std::vector<Node>& a,
                              const std::vector<Node>& b) {
  std::vector<Node> out;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    const bool take_a =
        j >= b.size() ||
        (i < a.size() && (a[i].buffer < b[j].buffer ||
                          (a[i].buffer == b[j].buffer &&
                           a[i].weight <= b[j].weight)));
    PushPareto(out, take_a ? a[i++] : b[j++]);
  }
  return out;
}

/// Independently replays one epoch of the Lemma-1 recursion from the
/// previous frontiers, with the production implementation's exact
/// floating-point expression structure, and checks the frontier view.
class EpochReconstructor {
 public:
  EpochReconstructor(const std::vector<double>& workload,
                     const DpOptions& options)
      : workload_(workload), options_(options) {
    bound_.resize(workload.size());
    if (options.delay_bound_slots >= 0) {
      const double hard =
          options.buffer_bits > 0 ? options.buffer_bits
                                  : std::numeric_limits<double>::infinity();
      double window = 0;
      for (std::size_t t = 0; t < workload.size(); ++t) {
        window += workload[t];
        const auto d = static_cast<std::size_t>(options.delay_bound_slots);
        if (t >= d) window -= workload[t - d];
        bound_[t] = std::min(window, hard);
      }
    } else {
      std::fill(bound_.begin(), bound_.end(), options.buffer_bits);
    }
  }

  void Check(const DpFrontierView& view) {
    const auto total = static_cast<std::int64_t>(workload_.size());
    const std::int64_t slots =
        std::min(options_.decision_period, total - view.first_slot);
    const double alpha = options_.cost.per_renegotiation;
    const double quantum = options_.buffer_quantum_bits;
    const auto quantize_up = [quantum](double b) {
      if (quantum <= 0 || b <= 0) return b;
      return std::ceil(b / quantum) * quantum;
    };

    // Cross-rate global frontier of the previous epoch, folded in rate
    // order (lowest rate wins ties).
    std::vector<Node> global;
    for (const std::vector<Node>& f : prev_) global = MergePareto(global, f);

    std::vector<std::vector<Node>> now(view.num_rates);
    for (std::size_t v = 0; v < view.num_rates; ++v) {
      const double rate = options_.rate_levels[v];
      bool feasible = true;
      double prefix = 0;
      double lindley_empty = 0;
      double b_max = std::numeric_limits<double>::infinity();
      for (std::int64_t s = 0; s < slots; ++s) {
        const auto t = static_cast<std::size_t>(view.first_slot + s);
        prefix += workload_[t];
        lindley_empty = std::max(lindley_empty + workload_[t] - rate, 0.0);
        if (lindley_empty > bound_[t]) {
          feasible = false;
          break;
        }
        b_max = std::min(b_max,
                         bound_[t] - prefix + rate * static_cast<double>(s + 1));
      }
      if (!feasible) continue;
      const double shift = prefix - rate * static_cast<double>(slots);
      const double cost_add = options_.cost.per_bandwidth * rate *
                              static_cast<double>(slots);
      const auto transform = [&](const std::vector<Node>& src,
                                 double extra) {
        std::vector<Node> dst;
        for (const Node& n : src) {
          if (n.buffer > b_max + 1e-9) break;
          PushPareto(dst,
                     {quantize_up(std::max(n.buffer + shift, lindley_empty)),
                      n.weight + cost_add + extra});
        }
        return dst;
      };
      if (view.first_slot == 0) {
        const bool charged =
            options_.initial_rate_index >= 0 &&
            static_cast<std::size_t>(options_.initial_rate_index) != v;
        now[v] = transform({{options_.initial_buffer_bits, 0.0}},
                           charged ? alpha : 0.0);
      } else {
        now[v] = MergePareto(transform(prev_[v], 0.0),
                             transform(global, alpha));
      }
    }

    std::size_t live = 0;
    for (std::size_t v = 0; v < view.num_rates; ++v) {
      const auto buffers = view.buffers(v);
      const auto weights = view.weights(v);
      ASSERT_EQ(buffers.size(), now[v].size()) << "rate " << v;
      for (std::size_t i = 0; i < buffers.size(); ++i) {
        EXPECT_EQ(buffers[i], now[v][i].buffer) << "rate " << v;
        EXPECT_EQ(weights[i], now[v][i].weight) << "rate " << v;
        if (i > 0) {
          // Strict Pareto order = no same-rate dominance.
          EXPECT_LT(buffers[i - 1], buffers[i]);
          EXPECT_GT(weights[i - 1], weights[i]);
        }
      }
      live += buffers.size();
    }
    EXPECT_EQ(view.live_nodes, live);
    prev_ = std::move(now);
  }

 private:
  const std::vector<double>& workload_;
  const DpOptions& options_;
  std::vector<double> bound_;
  std::vector<std::vector<Node>> prev_;
};

DpOptions RandomOptions(Rng& rng, int trial) {
  DpOptions options;
  const int k = 2 + static_cast<int>(rng.Uniform(0.0, 5.0));
  options.rate_levels =
      UniformRateLevels(0.0, 3.0 + rng.Uniform(0.0, 9.0), k);
  options.buffer_bits = rng.Uniform(4.0, 40.0);
  options.cost = {rng.Uniform(0.0, 5.0), rng.Uniform(0.1, 2.0)};
  if (trial % 4 == 1) options.buffer_quantum_bits = rng.Uniform(0.2, 2.0);
  if (trial % 5 == 2) {
    options.decision_period =
        1 + static_cast<std::int64_t>(rng.Uniform(0.0, 4.0));
  }
  if (trial % 3 == 0) {
    options.delay_bound_slots =
        static_cast<std::int64_t>(rng.Uniform(0.0, 6.0));
  }
  if (trial % 7 == 3) options.initial_buffer_bits = rng.Uniform(0.0, 3.0);
  if (trial % 8 == 5) {
    options.initial_rate_index =
        static_cast<std::int64_t>(rng.Uniform(0.0, static_cast<double>(k)));
  }
  return options;
}

TEST(DpProperty, FrontiersMatchReconstructedLemma1Recursion) {
  Rng rng(4711);
  int checked_epochs = 0;
  for (int trial = 0; trial < 30; ++trial) {
    DpOptions options = RandomOptions(rng, trial);
    const int slots = 10 + static_cast<int>(rng.Uniform(0.0, 40.0));
    std::vector<double> workload(static_cast<std::size_t>(slots));
    for (double& a : workload) a = rng.Uniform(0.0, 10.0);

    EpochReconstructor reconstructor(workload, options);
    std::size_t peak = 0;
    std::size_t total = 0;
    options.inspect = [&](const DpFrontierView& view) {
      reconstructor.Check(view);
      peak = std::max(peak, view.live_nodes);
      total += view.live_nodes;
      EXPECT_EQ(view.arena_nodes, total);
      ++checked_epochs;
    };
    try {
      const DpResult result = ComputeOptimalSchedule(workload, options);
      EXPECT_EQ(result.peak_live_nodes, peak) << "trial " << trial;
      EXPECT_EQ(result.total_nodes, total) << "trial " << trial;
    } catch (const Infeasible&) {
      // Epochs inspected before the dead end are still verified.
    }
  }
  EXPECT_GT(checked_epochs, 200);
}

TEST(DpProperty, ByteIdenticalAcrossThreadCounts) {
  Rng rng(1213);
  for (int trial = 0; trial < 8; ++trial) {
    DpOptions options = RandomOptions(rng, trial);
    const int slots = 30 + static_cast<int>(rng.Uniform(0.0, 60.0));
    std::vector<double> workload(static_cast<std::size_t>(slots));
    for (double& a : workload) a = rng.Uniform(0.0, 10.0);

    std::vector<DpResult> results;
    bool infeasible = false;
    for (const std::size_t threads : {1u, 2u, 8u}) {
      options.threads = threads;
      try {
        results.push_back(ComputeOptimalSchedule(workload, options));
      } catch (const Infeasible&) {
        infeasible = true;
      }
    }
    if (infeasible) {
      EXPECT_TRUE(results.empty()) << "trial " << trial;
      continue;
    }
    ASSERT_EQ(results.size(), 3u);
    for (std::size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[i].optimal_cost, results[0].optimal_cost)
          << "trial " << trial;
      EXPECT_EQ(results[i].peak_live_nodes, results[0].peak_live_nodes);
      EXPECT_EQ(results[i].total_nodes, results[0].total_nodes);
      EXPECT_TRUE(results[i].schedule == results[0].schedule)
          << "trial " << trial;
    }
  }
}

TEST(DpProperty, ValidationRejectsMalformedOptions) {
  const std::vector<double> workload = {1.0, 2.0, 1.0};
  const auto expect_invalid = [&](auto mutate) {
    DpOptions options;
    options.rate_levels = {0.0, 2.0, 4.0};
    options.buffer_bits = 5.0;
    options.cost = {3.0, 1.0};
    mutate(options);
    EXPECT_THROW(ComputeOptimalSchedule(workload, options), InvalidArgument);
  };
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  expect_invalid([&](DpOptions& o) { o.buffer_bits = nan; });
  expect_invalid([&](DpOptions& o) { o.buffer_bits = -1.0; });
  expect_invalid([&](DpOptions& o) { o.rate_levels = {0.0, 2.0, 2.0}; });
  expect_invalid([&](DpOptions& o) { o.rate_levels = {4.0, 2.0}; });
  expect_invalid([&](DpOptions& o) { o.rate_levels = {0.0, nan}; });
  expect_invalid([&](DpOptions& o) { o.rate_levels = {0.0, inf}; });
  expect_invalid([&](DpOptions& o) { o.rate_levels = {-1.0, 2.0}; });
  expect_invalid([&](DpOptions& o) { o.cost.per_renegotiation = nan; });
  expect_invalid([&](DpOptions& o) { o.cost.per_bandwidth = nan; });
  expect_invalid([&](DpOptions& o) { o.cost.per_renegotiation = -1.0; });
  expect_invalid([&](DpOptions& o) { o.cost.per_bandwidth = inf; });
  expect_invalid([&](DpOptions& o) { o.decision_period = 0; });
  expect_invalid([&](DpOptions& o) { o.decision_period = -3; });
  expect_invalid([&](DpOptions& o) { o.buffer_quantum_bits = nan; });
  expect_invalid([&](DpOptions& o) { o.buffer_quantum_bits = -0.5; });
  expect_invalid([&](DpOptions& o) { o.buffer_quantum_bits = inf; });
  expect_invalid([&](DpOptions& o) { o.final_buffer_bits = nan; });
  expect_invalid([&](DpOptions& o) { o.final_buffer_bits = -1.0; });
  expect_invalid([&](DpOptions& o) { o.initial_buffer_bits = nan; });
  expect_invalid([&](DpOptions& o) { o.initial_buffer_bits = -1.0; });
  expect_invalid([&](DpOptions& o) { o.initial_buffer_bits = inf; });
  expect_invalid([&](DpOptions& o) { o.initial_rate_index = 3; });
  expect_invalid([&](DpOptions& o) { o.checkpoint_slots = -1; });
  expect_invalid([&](DpOptions& o) { o.max_resident_nodes = 0; });

  // Boundary values that must stay valid.
  DpOptions ok;
  ok.rate_levels = {0.0, 2.0, 4.0};
  ok.buffer_bits = 5.0;
  ok.cost = {0.0, 0.0};
  ok.decision_period = 1;
  ok.initial_rate_index = 2;
  ok.final_buffer_bits = 0.0;
  EXPECT_NO_THROW(ComputeOptimalSchedule(workload, ok));
}

}  // namespace
}  // namespace rcbr::core
