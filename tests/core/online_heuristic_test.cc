#include "core/online_heuristic.h"

#include <gtest/gtest.h>

#include "core/schedule.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::core {
namespace {

HeuristicOptions BaseOptions() {
  HeuristicOptions options;
  options.low_threshold_bits = 2.0;
  options.high_threshold_bits = 10.0;
  options.time_constant_slots = 5.0;
  options.granularity_bits_per_slot = 1.0;
  options.initial_rate_bits_per_slot = 4.0;
  return options;
}

TEST(OnlineRateController, Validation) {
  HeuristicOptions bad = BaseOptions();
  bad.granularity_bits_per_slot = 0;
  EXPECT_THROW(OnlineRateController{bad}, InvalidArgument);
  bad = BaseOptions();
  bad.low_threshold_bits = 20.0;  // above high
  EXPECT_THROW(OnlineRateController{bad}, InvalidArgument);
  bad = BaseOptions();
  bad.time_constant_slots = 0.5;
  EXPECT_THROW(OnlineRateController{bad}, InvalidArgument);
}

TEST(OnlineRateController, SteadyStateNoRenegotiation) {
  OnlineRateController c(BaseOptions());
  for (int t = 0; t < 100; ++t) {
    const auto request = c.Step(4.0, c.current_rate());
    EXPECT_FALSE(request.has_value()) << "slot " << t;
  }
  EXPECT_EQ(c.renegotiations(), 0);
  EXPECT_DOUBLE_EQ(c.buffer_bits(), 0.0);
}

TEST(OnlineRateController, SustainedIncreaseTriggersUpward) {
  OnlineRateController c(BaseOptions());
  bool requested_up = false;
  for (int t = 0; t < 50 && !requested_up; ++t) {
    const auto request = c.Step(12.0, c.current_rate());
    if (request.has_value()) {
      EXPECT_GT(*request, 4.0);
      requested_up = true;
    }
  }
  EXPECT_TRUE(requested_up);
}

TEST(OnlineRateController, UpwardOnlyAboveHighThreshold) {
  // Buffer must exceed B_h before an upward request fires.
  OnlineRateController c(BaseOptions());
  const auto first = c.Step(12.0, 4.0);  // buffer 8 < B_h = 10
  EXPECT_FALSE(first.has_value());
  const auto second = c.Step(12.0, 4.0);  // buffer 16 > 10
  EXPECT_TRUE(second.has_value());
}

TEST(OnlineRateController, DownwardWhenIdle) {
  OnlineRateController c(BaseOptions());
  bool requested_down = false;
  for (int t = 0; t < 50 && !requested_down; ++t) {
    const auto request = c.Step(0.5, c.current_rate());
    if (request.has_value()) {
      EXPECT_LT(*request, 4.0);
      requested_down = true;
    }
  }
  EXPECT_TRUE(requested_down);
}

TEST(OnlineRateController, RequestsAreOnGranularityGrid) {
  HeuristicOptions options = BaseOptions();
  options.granularity_bits_per_slot = 2.5;
  OnlineRateController c(options);
  rcbr::Rng rng(5);
  for (int t = 0; t < 500; ++t) {
    const auto request = c.Step(rng.Uniform(0.0, 12.0), c.current_rate());
    if (request.has_value()) {
      const double quotient = *request / 2.5;
      EXPECT_NEAR(quotient, std::round(quotient), 1e-9);
    }
  }
}

TEST(OnlineRateController, FlushTermReactsToBufferBuildup) {
  // A single huge burst must raise the estimate by ~buffer/T immediately.
  OnlineRateController c(BaseOptions());
  c.Step(50.0, 4.0);  // buffer 46
  EXPECT_GT(c.estimate_bits_per_slot(), 46.0 / 5.0);
}

TEST(OnlineRateController, DeniedRequestRollback) {
  OnlineRateController c(BaseOptions());
  c.Step(50.0, 4.0);
  const auto request = c.Step(50.0, 4.0);
  ASSERT_TRUE(request.has_value());
  EXPECT_DOUBLE_EQ(c.current_rate(), *request);
  c.OnRequestDenied(4.0);
  EXPECT_DOUBLE_EQ(c.current_rate(), 4.0);
}

TEST(OnlineRateController, RequestsRespectRateCap) {
  HeuristicOptions options = BaseOptions();
  options.max_rate_bits_per_slot = 6.2;  // cap between grid points
  OnlineRateController c(options);
  for (int t = 0; t < 100; ++t) {
    const auto request = c.Step(50.0, c.current_rate());
    if (request.has_value()) {
      EXPECT_LE(*request, 6.0);  // floor(6.2 / 1.0) * 1.0
    }
  }
  EXPECT_THROW(
      [] {
        HeuristicOptions bad = BaseOptions();
        bad.max_rate_bits_per_slot = 0.0;
        OnlineRateController reject(bad);
      }(),
      InvalidArgument);
}

TEST(OnlineRateController, DenialCooldownSuppressesRetriggers) {
  HeuristicOptions options = BaseOptions();
  options.denial_cooldown_slots = 5;
  OnlineRateController c(options);
  // Drive the buffer far above B_h so eq. 8 fires every slot.
  std::optional<double> request;
  int slot = 0;
  while (!request.has_value()) {
    request = c.Step(50.0, 4.0);
    ++slot;
    ASSERT_LT(slot, 10);
  }
  c.OnRequestDenied(4.0);
  // The trigger condition still holds on every following slot, but the
  // cooldown keeps the source quiet for exactly 5 slots.
  for (int k = 0; k < 5; ++k) {
    EXPECT_FALSE(c.Step(50.0, 4.0).has_value()) << "quiet slot " << k;
  }
  EXPECT_TRUE(c.Step(50.0, 4.0).has_value());
}

TEST(OnlineRateController, ZeroCooldownRetriggersImmediately) {
  // The legacy behavior: a denial does not suppress the next trigger.
  OnlineRateController c(BaseOptions());
  c.Step(50.0, 4.0);
  const auto request = c.Step(50.0, 4.0);
  ASSERT_TRUE(request.has_value());
  c.OnRequestDenied(4.0);
  EXPECT_TRUE(c.Step(50.0, 4.0).has_value());
}

TEST(OnlineRateController, ImposedRateAdoptedWithoutCooldown) {
  HeuristicOptions options = BaseOptions();
  options.denial_cooldown_slots = 50;
  OnlineRateController c(options);
  c.Step(50.0, 4.0);
  const auto request = c.Step(50.0, 4.0);
  ASSERT_TRUE(request.has_value());
  // A degradation fallback imposes a rate: adopted, but no quiet period —
  // nothing was refused.
  c.OnRateImposed(7.0);
  EXPECT_DOUBLE_EQ(c.current_rate(), 7.0);
  EXPECT_TRUE(c.Step(50.0, 7.0).has_value());
}

TEST(OnlineRateController, NegativeCooldownThrows) {
  HeuristicOptions bad = BaseOptions();
  bad.denial_cooldown_slots = -1;
  EXPECT_THROW(OnlineRateController{bad}, InvalidArgument);
}

TEST(OnlineRateController, RejectsNegativeInputs) {
  OnlineRateController c(BaseOptions());
  EXPECT_THROW(c.Step(-1.0, 4.0), InvalidArgument);
  EXPECT_THROW(c.Step(1.0, -4.0), InvalidArgument);
}

TEST(ComputeHeuristicSchedule, FeasibleOnBurstyWorkload) {
  rcbr::Rng rng(11);
  std::vector<double> workload(2000);
  for (std::size_t t = 0; t < workload.size(); ++t) {
    const bool burst = (t / 100) % 3 == 0;
    workload[t] = rng.Uniform(0.0, burst ? 12.0 : 4.0);
  }
  HeuristicOptions options = BaseOptions();
  options.initial_rate_bits_per_slot = 4.0;
  const PiecewiseConstant schedule =
      ComputeHeuristicSchedule(workload, options);
  EXPECT_EQ(schedule.length(), static_cast<std::int64_t>(workload.size()));
  // The heuristic tracks the workload: losses against a generous buffer
  // should be zero and the mean service near the mean arrival.
  const ScheduleMetrics m =
      EvaluateSchedule(workload, schedule, 1e9, 1.0, {});
  EXPECT_TRUE(m.feasible);
  EXPECT_GT(m.bandwidth_efficiency, 0.4);
  EXPECT_GT(schedule.change_count(), 0);
}

TEST(ComputeHeuristicSchedule, GranularityTradesRenegotiationsForEfficiency) {
  // The Fig. 2 tradeoff: larger Delta -> fewer renegotiations but lower
  // bandwidth efficiency.
  rcbr::Rng rng(13);
  std::vector<double> workload(4000);
  for (std::size_t t = 0; t < workload.size(); ++t) {
    const bool burst = (t / 200) % 2 == 0;
    workload[t] = rng.Uniform(0.0, burst ? 10.0 : 3.0);
  }
  HeuristicOptions fine = BaseOptions();
  fine.granularity_bits_per_slot = 0.5;
  HeuristicOptions coarse = BaseOptions();
  coarse.granularity_bits_per_slot = 8.0;
  const auto fine_schedule = ComputeHeuristicSchedule(workload, fine);
  const auto coarse_schedule = ComputeHeuristicSchedule(workload, coarse);
  EXPECT_GT(fine_schedule.change_count(), coarse_schedule.change_count());
  EXPECT_GE(coarse_schedule.Mean(), fine_schedule.Mean());
}

TEST(ComputeHeuristicSchedule, EmptyWorkloadThrows) {
  EXPECT_THROW(ComputeHeuristicSchedule({}, BaseOptions()),
               InvalidArgument);
}

}  // namespace
}  // namespace rcbr::core
