#include "core/playback.h"

#include <gtest/gtest.h>

#include "core/dp_scheduler.h"
#include "trace/star_wars.h"
#include "util/error.h"
#include "util/units.h"

namespace rcbr::core {
namespace {

TEST(Playback, ExactDeliveryNeedsNoDelay) {
  // Delivery tracks consumption slot by slot.
  const std::vector<double> frames = {4, 2, 6, 3};
  const auto schedule = PiecewiseConstant::FromSamples(frames);
  const PlaybackAnalysis a = AnalyzePlayback(frames, schedule);
  EXPECT_EQ(a.min_startup_slots, 0);
  // Each slot's delivery is consumed within the same slot.
  EXPECT_NEAR(a.client_buffer_bits, 0.0, 1e-9);
}

TEST(Playback, SlowStartNeedsDelay) {
  // 12 bits of frames, delivered at constant rate 3: frame 0 (6 bits)
  // is complete only after slot 1 -> startup 1.
  const std::vector<double> frames = {6, 3, 2, 1};
  const auto schedule = PiecewiseConstant::Constant(3.0, 4);
  const PlaybackAnalysis a = AnalyzePlayback(frames, schedule);
  EXPECT_EQ(a.min_startup_slots, 1);
}

TEST(Playback, UndeliveredFileThrows) {
  const std::vector<double> frames = {10, 10};
  const auto schedule = PiecewiseConstant::Constant(2.0, 2);
  EXPECT_THROW(AnalyzePlayback(frames, schedule), Infeasible);
}

TEST(Playback, LengthMismatchThrows) {
  const std::vector<double> frames = {1, 1};
  const auto schedule = PiecewiseConstant::Constant(1.0, 3);
  EXPECT_THROW(AnalyzePlayback(frames, schedule), InvalidArgument);
}

TEST(Playback, BufferGrowsWithExtraStartupDelay) {
  const std::vector<double> frames = {6, 3, 2, 1, 0, 0};
  const auto schedule = PiecewiseConstant::Constant(2.0, 6);
  const PlaybackAnalysis a = AnalyzePlayback(frames, schedule);
  const double at_min =
      ClientBufferForStartup(frames, schedule, a.min_startup_slots);
  const double at_more =
      ClientBufferForStartup(frames, schedule, a.min_startup_slots + 2);
  EXPECT_GE(at_more, at_min);
}

TEST(Playback, TooSmallStartupThrows) {
  const std::vector<double> frames = {6, 3, 2, 1};
  const auto schedule = PiecewiseConstant::Constant(3.0, 4);
  EXPECT_THROW(ClientBufferForStartup(frames, schedule, 0),
               InvalidArgument);
  EXPECT_THROW(ClientBufferForStartup(frames, schedule, -1),
               InvalidArgument);
}

TEST(Playback, DeliveryCompleteSlotReported) {
  // Rate 4 over 12 bits: done within 3 slots.
  const std::vector<double> frames = {3, 3, 3, 3, 0, 0};
  const auto schedule = PiecewiseConstant::Constant(4.0, 6);
  const PlaybackAnalysis a = AnalyzePlayback(frames, schedule);
  EXPECT_EQ(a.delivery_complete_slot, 2);
}

TEST(Playback, RcbrScheduleGivesSubSecondStartup) {
  // The paper's RCBR pitch: with a 300 kb network buffer bound, the
  // delivery tracks the stream closely, so the client starts quickly.
  const trace::FrameTrace clip = trace::MakeStarWarsTrace(31, 2880);
  DpOptions options;
  for (int k = 0; k <= 40; ++k) {
    options.rate_levels.push_back(64.0 * kKilobit / clip.fps() * k);
  }
  options.buffer_bits = 300 * kKilobit;
  options.cost = {3000.0, 1.0 / clip.fps()};
  options.buffer_quantum_bits = 2 * kKilobit;
  options.decision_period = 6;
  options.final_buffer_bits = 0.0;
  const DpResult dp =
      ComputeOptimalSchedule(clip.frame_bits(), options);
  const PlaybackAnalysis a = AnalyzePlayback(clip.frame_bits(), dp.schedule);
  EXPECT_LT(static_cast<double>(a.min_startup_slots) / clip.fps(), 2.0);
  // The client may hold prefetched data (the server streams ahead at the
  // reserved rate), but stays far below what the near-mean flat schedule
  // of the next test forces the client to pre-buffer.
  EXPECT_LT(a.client_buffer_bits, 2 * kMegabit);
}

TEST(Playback, FlatScheduleAtMeanNeedsLongStartup) {
  // The static-CBR contrast: delivering at ~mean rate forces a long
  // startup delay (the client must pre-buffer the action scenes).
  const trace::FrameTrace clip = trace::MakeStarWarsTrace(31, 2880);
  const double mean = clip.mean_rate() / clip.fps();
  const auto flat =
      PiecewiseConstant::Constant(1.02 * mean, clip.frame_count());
  // At 1.02x mean the file completes within the horizon (2% slack covers
  // the tail), but startup must absorb the worst prefix deficit.
  const PlaybackAnalysis a = AnalyzePlayback(clip.frame_bits(), flat);
  EXPECT_GT(static_cast<double>(a.min_startup_slots) / clip.fps(), 2.0);
}

}  // namespace
}  // namespace rcbr::core
