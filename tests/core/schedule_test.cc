#include "core/schedule.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr::core {
namespace {

TEST(CostModel, LinearForm) {
  const CostModel cost{2.0, 0.5};
  EXPECT_DOUBLE_EQ(cost.Cost(3, 100.0), 56.0);
}

TEST(EvaluateSchedule, FlatScheduleMetrics) {
  const std::vector<double> workload = {4, 4, 4, 4};
  const auto schedule = PiecewiseConstant::Constant(8.0, 4);
  const ScheduleMetrics m =
      EvaluateSchedule(workload, schedule, 100.0, 0.5, {1.0, 1.0});
  EXPECT_EQ(m.renegotiations, 0);
  EXPECT_TRUE(m.feasible);
  EXPECT_DOUBLE_EQ(m.bandwidth_efficiency, 0.5);  // mean 4 vs schedule 8
  EXPECT_DOUBLE_EQ(m.mean_interval_seconds, 2.0);  // 4 slots * 0.5s / 1
  EXPECT_DOUBLE_EQ(m.cost, 32.0);                  // 0 + 8*4
  EXPECT_DOUBLE_EQ(m.max_buffer_bits, 0.0);
}

TEST(EvaluateSchedule, DetectsInfeasibility) {
  const std::vector<double> workload = {10, 10};
  const auto schedule = PiecewiseConstant::Constant(2.0, 2);
  const ScheduleMetrics m =
      EvaluateSchedule(workload, schedule, 3.0, 1.0, {});
  EXPECT_FALSE(m.feasible);
  EXPECT_GT(m.lost_bits, 0.0);
}

TEST(EvaluateSchedule, TracksMaxBuffer) {
  const std::vector<double> workload = {10, 0, 0};
  const auto schedule = PiecewiseConstant::Constant(4.0, 3);
  const ScheduleMetrics m =
      EvaluateSchedule(workload, schedule, 100.0, 1.0, {});
  EXPECT_DOUBLE_EQ(m.max_buffer_bits, 6.0);
  EXPECT_TRUE(m.feasible);
}

TEST(EvaluateSchedule, CountsRenegotiations) {
  const std::vector<double> workload = {1, 1, 1, 1};
  const PiecewiseConstant schedule({{0, 2.0}, {1, 3.0}, {3, 1.0}}, 4);
  const ScheduleMetrics m =
      EvaluateSchedule(workload, schedule, 100.0, 1.0, {5.0, 0.0});
  EXPECT_EQ(m.renegotiations, 2);
  EXPECT_DOUBLE_EQ(m.cost, 10.0);
  EXPECT_DOUBLE_EQ(m.mean_interval_seconds, 4.0 / 3.0);
}

TEST(EvaluateSchedule, Validation) {
  const std::vector<double> workload = {1, 1};
  const auto schedule = PiecewiseConstant::Constant(1.0, 3);
  EXPECT_THROW(EvaluateSchedule(workload, schedule, 1.0, 1.0, {}),
               InvalidArgument);
  const auto ok = PiecewiseConstant::Constant(1.0, 2);
  EXPECT_THROW(EvaluateSchedule(workload, ok, 1.0, 0.0, {}),
               InvalidArgument);
  EXPECT_THROW(EvaluateSchedule({}, ok, 1.0, 1.0, {}), InvalidArgument);
}

TEST(MeetsDelayBound, ImmediateServiceZeroDelay) {
  const std::vector<double> workload = {3, 3, 3};
  const auto schedule = PiecewiseConstant::Constant(3.0, 3);
  EXPECT_TRUE(MeetsDelayBound(workload, schedule, 0));
}

TEST(MeetsDelayBound, BacklogNeedsDelay) {
  const std::vector<double> workload = {6, 0, 0};
  const auto schedule = PiecewiseConstant::Constant(2.0, 3);
  // Slot 0's 6 bits finish draining at the end of slot 2 -> delay 2 ok,
  // delay 1 not.
  EXPECT_FALSE(MeetsDelayBound(workload, schedule, 0));
  EXPECT_FALSE(MeetsDelayBound(workload, schedule, 1));
  EXPECT_TRUE(MeetsDelayBound(workload, schedule, 2));
}

TEST(MeetsDelayBound, DeadlinesBeyondHorizonUnconstrained) {
  const std::vector<double> workload = {0, 0, 8};
  const auto schedule = PiecewiseConstant::Constant(4.0, 3);
  // The last slot's deadline falls after the session ends: no constraint.
  EXPECT_TRUE(MeetsDelayBound(workload, schedule, 5));
  // With delay 0 the backlog at slot 2 violates the bound.
  EXPECT_FALSE(MeetsDelayBound(workload, schedule, 0));
}

TEST(MeetsDelayBound, Validation) {
  const std::vector<double> workload = {1};
  const auto schedule = PiecewiseConstant::Constant(1.0, 1);
  EXPECT_THROW(MeetsDelayBound(workload, schedule, -1), InvalidArgument);
  const auto wrong = PiecewiseConstant::Constant(1.0, 2);
  EXPECT_THROW(MeetsDelayBound(workload, wrong, 0), InvalidArgument);
}

}  // namespace
}  // namespace rcbr::core
