#include "core/baselines.h"

#include <numeric>

#include <gtest/gtest.h>

#include "sim/fluid_queue.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::core {
namespace {

TEST(TokenBucket, Validation) {
  EXPECT_THROW(TokenBucket(-1.0, 1.0, 1.0), InvalidArgument);
  EXPECT_THROW(TokenBucket(1.0, -1.0, 1.0), InvalidArgument);
  EXPECT_THROW(TokenBucket(1.0, 1.0, -1.0), InvalidArgument);
  TokenBucket bucket(1.0, 1.0, 1.0);
  EXPECT_THROW(bucket.Offer(-1.0), InvalidArgument);
}

TEST(TokenBucket, ConformantTrafficPassesThrough) {
  TokenBucket bucket(5.0, 10.0, 100.0);
  for (int t = 0; t < 20; ++t) {
    const auto outcome = bucket.Offer(4.0);
    EXPECT_DOUBLE_EQ(outcome.sent_bits, 4.0);
    EXPECT_DOUBLE_EQ(outcome.lost_bits, 0.0);
  }
  EXPECT_DOUBLE_EQ(bucket.queue_bits(), 0.0);
}

TEST(TokenBucket, BurstPassesAgainstBucketDepth) {
  // Bucket starts full: a burst of bucket size + one slot's tokens passes
  // immediately.
  TokenBucket bucket(2.0, 10.0, 100.0);
  const auto outcome = bucket.Offer(12.0);
  EXPECT_DOUBLE_EQ(outcome.sent_bits, 10.0);
  EXPECT_DOUBLE_EQ(bucket.queue_bits(), 2.0);
}

TEST(TokenBucket, SustainedOverloadQueuesAtTokenRate) {
  TokenBucket bucket(3.0, 5.0, 1000.0);
  bucket.Offer(50.0);  // drain the initial bucket
  for (int t = 0; t < 10; ++t) {
    const auto outcome = bucket.Offer(10.0);
    EXPECT_DOUBLE_EQ(outcome.sent_bits, 3.0);  // token rate limited
  }
}

TEST(TokenBucket, SourceBufferOverflowCountsLoss) {
  TokenBucket bucket(1.0, 1.0, 5.0);
  double lost = 0;
  for (int t = 0; t < 10; ++t) lost += bucket.Offer(4.0).lost_bits;
  EXPECT_GT(lost, 0.0);
  EXPECT_DOUBLE_EQ(bucket.total_lost_bits(), lost);
  EXPECT_LE(bucket.queue_bits(), 5.0);
}

TEST(TokenBucket, OutputIsLeakyBucketConformant) {
  // Over any window, output <= bucket + rate * window (the (sigma, rho)
  // envelope).
  rcbr::Rng rng(3);
  const double rate = 4.0;
  const double depth = 12.0;
  TokenBucket bucket(rate, depth, 1e9);
  std::vector<double> sent;
  for (int t = 0; t < 500; ++t) {
    sent.push_back(bucket.Offer(rng.Uniform(0.0, 10.0)).sent_bits);
  }
  for (std::size_t start = 0; start < sent.size(); start += 37) {
    double acc = 0;
    for (std::size_t t = start; t < sent.size(); ++t) {
      acc += sent[t];
      const double window = static_cast<double>(t - start + 1);
      ASSERT_LE(acc, depth + rate * window + 1e-9);
    }
  }
}

TEST(TokenBucket, TotalsConsistent) {
  rcbr::Rng rng(5);
  TokenBucket bucket(2.0, 4.0, 6.0);
  double offered = 0;
  for (int t = 0; t < 200; ++t) {
    const double a = rng.Uniform(0.0, 6.0);
    offered += a;
    bucket.Offer(a);
  }
  EXPECT_NEAR(bucket.total_sent_bits() + bucket.total_lost_bits() +
                  bucket.queue_bits(),
              offered, 1e-6);
}

TEST(ShapeWithTokenBucket, MatchesIncrementalUse) {
  rcbr::Rng rng(7);
  std::vector<double> workload(100);
  for (double& a : workload) a = rng.Uniform(0.0, 8.0);
  const ShapedTrace shaped = ShapeWithTokenBucket(workload, 3.0, 6.0, 20.0);
  TokenBucket reference(3.0, 6.0, 20.0);
  for (std::size_t t = 0; t < workload.size(); ++t) {
    EXPECT_DOUBLE_EQ(shaped.sent_bits[t],
                     reference.Offer(workload[t]).sent_bits);
  }
  EXPECT_DOUBLE_EQ(shaped.lost_bits, reference.total_lost_bits());
}

TEST(MinRateForLoss, ZeroTargetMatchesLossless) {
  const std::vector<double> workload = {10, 0, 10, 0};
  const double r0 = MinRateForLoss(workload, 5.0, 0.0, 1e-9);
  EXPECT_NEAR(r0, 5.0, 1e-4);
}

TEST(MinRateForLoss, LooseTargetNeedsLessRate) {
  rcbr::Rng rng(9);
  std::vector<double> workload(2000);
  for (double& a : workload) a = rng.Uniform(0.0, 10.0);
  const double strict = MinRateForLoss(workload, 10.0, 1e-6);
  const double loose = MinRateForLoss(workload, 10.0, 1e-2);
  EXPECT_LE(loose, strict + 1e-9);
  EXPECT_GT(loose, 0.0);
}

TEST(MinRateForLoss, ResultMeetsTarget) {
  rcbr::Rng rng(11);
  std::vector<double> workload(1000);
  for (double& a : workload) a = rng.Uniform(0.0, 10.0);
  for (double target : {0.0, 1e-3, 1e-1}) {
    const double rate = MinRateForLoss(workload, 8.0, target, 1e-6);
    EXPECT_LE(
        sim::DrainConstant(workload, rate, 8.0).loss_fraction(), target);
  }
}

TEST(MinRateForLoss, MonotoneInBuffer) {
  rcbr::Rng rng(13);
  std::vector<double> workload(1000);
  for (double& a : workload) a = rng.Uniform(0.0, 10.0);
  double prev = 1e300;
  for (double buffer : {0.0, 5.0, 20.0, 100.0}) {
    const double rate = MinRateForLoss(workload, buffer, 1e-4);
    EXPECT_LE(rate, prev * 1.01);
    prev = rate;
  }
}

}  // namespace
}  // namespace rcbr::core
