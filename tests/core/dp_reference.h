// Brute-force reference for the optimal-schedule DP: enumerate every
// reachable (rate, buffer) state per decision epoch with no Lemma-1
// pruning and no transition-coefficient shortcuts — each candidate
// transition replays the slot-by-slot Lindley recursion. Exponential in
// the worst case; use only on small differential-test instances.
//
// Semantics mirror ComputeOptimalSchedule exactly: per-slot buffer bound
// (constant or delay-window), alpha charged per rate switch (the first
// epoch is free unless initial_rate_index reserves a rate), beta per
// bandwidth-slot, occupancy quantized upward once per epoch, terminal
// states filtered by final_buffer_bits.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "core/dp_scheduler.h"

namespace rcbr::core::reference {

/// Returns the optimal cost, or nullopt when no schedule is feasible.
inline std::optional<double> ReferenceOptimalCost(
    const std::vector<double>& workload, const DpOptions& options) {
  const auto total = static_cast<std::int64_t>(workload.size());
  const std::int64_t period = options.decision_period;
  const std::size_t num_rates = options.rate_levels.size();
  const double alpha = options.cost.per_renegotiation;
  const double beta = options.cost.per_bandwidth;

  std::vector<double> bound(workload.size());
  if (options.delay_bound_slots >= 0) {
    const double hard =
        options.buffer_bits > 0 ? options.buffer_bits
                                : std::numeric_limits<double>::infinity();
    double window = 0;
    for (std::int64_t t = 0; t < total; ++t) {
      window += workload[static_cast<std::size_t>(t)];
      if (t - options.delay_bound_slots >= 0) {
        window -=
            workload[static_cast<std::size_t>(t - options.delay_bound_slots)];
      }
      bound[static_cast<std::size_t>(t)] = std::min(window, hard);
    }
  } else {
    std::fill(bound.begin(), bound.end(), options.buffer_bits);
  }

  const double quantum = options.buffer_quantum_bits;
  const auto quantize_up = [quantum](double b) {
    if (quantum <= 0 || b <= 0) return b;
    return std::ceil(b / quantum) * quantum;
  };

  // (last rate, buffer) -> cheapest cost; num_rates = "no rate yet".
  std::map<std::pair<std::size_t, double>, double> states;
  states[{num_rates, options.initial_buffer_bits}] = 0.0;
  bool first = true;
  for (std::int64_t t0 = 0; t0 < total; t0 += period) {
    const std::int64_t slots = std::min(period, total - t0);
    std::map<std::pair<std::size_t, double>, double> next;
    for (const auto& [key, weight] : states) {
      for (std::size_t v = 0; v < num_rates; ++v) {
        double switch_cost = 0;
        if (first) {
          if (options.initial_rate_index >= 0 &&
              static_cast<std::size_t>(options.initial_rate_index) != v) {
            switch_cost = alpha;
          }
        } else if (key.first != v) {
          switch_cost = alpha;
        }
        double q = key.second;
        bool feasible = true;
        for (std::int64_t s = 0; s < slots; ++s) {
          q = std::max(
              q + workload[static_cast<std::size_t>(t0 + s)] -
                  options.rate_levels[v],
              0.0);
          if (q > bound[static_cast<std::size_t>(t0 + s)] + 1e-9) {
            feasible = false;
            break;
          }
        }
        if (!feasible) continue;
        const double cost = weight + switch_cost +
                            beta * options.rate_levels[v] *
                                static_cast<double>(slots);
        const std::pair<std::size_t, double> state{v, quantize_up(q)};
        const auto it = next.find(state);
        if (it == next.end() || cost < it->second) next[state] = cost;
      }
    }
    states.swap(next);
    first = false;
    if (states.empty()) return std::nullopt;
  }

  std::optional<double> best;
  for (const auto& [key, weight] : states) {
    if (key.second > options.final_buffer_bits + 1e-9) continue;
    if (!best.has_value() || weight < *best) best = weight;
  }
  return best;
}

}  // namespace rcbr::core::reference
