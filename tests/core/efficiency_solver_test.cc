#include "core/efficiency_solver.h"

#include <numeric>

#include <gtest/gtest.h>

#include "trace/star_wars.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/units.h"

namespace rcbr::core {
namespace {

double Efficiency(const std::vector<double>& workload,
                  const PiecewiseConstant& schedule) {
  const double mean = std::accumulate(workload.begin(), workload.end(),
                                      0.0) /
                      static_cast<double>(workload.size());
  return mean / schedule.Mean();
}

DpOptions BaseOptions() {
  DpOptions options;
  options.rate_levels = UniformRateLevels(0.0, 12.0, 13);
  options.buffer_bits = 15.0;
  options.cost = {1.0, 1.0};
  return options;
}

std::vector<double> Workload(std::uint64_t seed) {
  rcbr::Rng rng(seed);
  std::vector<double> workload(600);
  for (std::size_t t = 0; t < workload.size(); ++t) {
    const bool busy = (t / 60) % 2 == 0;
    workload[t] = rng.Uniform(0.0, busy ? 11.0 : 4.0);
  }
  return workload;
}

TEST(EfficiencySolver, Validation) {
  const auto workload = Workload(1);
  EfficiencyTarget bad;
  bad.min_efficiency = 0.0;
  EXPECT_THROW(SolveForEfficiency(workload, BaseOptions(), bad),
               InvalidArgument);
  bad = {};
  bad.alpha_hi = bad.alpha_lo;
  EXPECT_THROW(SolveForEfficiency(workload, BaseOptions(), bad),
               InvalidArgument);
}

TEST(EfficiencySolver, MeetsTheTarget) {
  const auto workload = Workload(2);
  EfficiencyTarget target;
  target.min_efficiency = 0.9;
  const DpResult r =
      SolveForEfficiency(workload, BaseOptions(), target);
  EXPECT_GE(Efficiency(workload, r.schedule), 0.9);
}

TEST(EfficiencySolver, TighterTargetMoreRenegotiations) {
  const auto workload = Workload(3);
  EfficiencyTarget loose;
  loose.min_efficiency = 0.7;
  EfficiencyTarget tight;
  tight.min_efficiency = 0.95;
  const DpResult r_loose =
      SolveForEfficiency(workload, BaseOptions(), loose);
  const DpResult r_tight =
      SolveForEfficiency(workload, BaseOptions(), tight);
  EXPECT_GE(Efficiency(workload, r_tight.schedule), 0.95);
  EXPECT_LE(r_loose.schedule.change_count(),
            r_tight.schedule.change_count());
}

TEST(EfficiencySolver, UnreachableTargetThrows) {
  // A two-level grid cannot track the workload tightly: demanding 99.9%
  // efficiency is hopeless.
  const auto workload = Workload(4);
  DpOptions options = BaseOptions();
  options.rate_levels = {0.0, 12.0};
  EfficiencyTarget target;
  target.min_efficiency = 0.999;
  EXPECT_THROW(SolveForEfficiency(workload, options, target), Infeasible);
}

TEST(EfficiencySolver, TrivialTargetReturnsLazySchedule) {
  // Any schedule meets a 1% efficiency floor; the solver should then
  // return the laziest (alpha_hi) schedule with the fewest changes.
  const auto workload = Workload(5);
  EfficiencyTarget target;
  target.min_efficiency = 0.01;
  const DpResult r =
      SolveForEfficiency(workload, BaseOptions(), target);
  EXPECT_LE(r.schedule.change_count(), 2);
}

TEST(EfficiencySolver, PaperOperatingPoint) {
  // The paper's quoted OPT point: ~99% efficiency at renegotiation
  // intervals of several seconds on the movie trace.
  const trace::FrameTrace clip = trace::MakeStarWarsTrace(37, 7200);
  DpOptions options;
  for (int k = 0; k <= 40; ++k) {
    options.rate_levels.push_back(64.0 * kKilobit / clip.fps() * k);
  }
  options.buffer_bits = 300 * kKilobit;
  options.cost = {1.0, 1.0 / clip.fps()};
  options.buffer_quantum_bits = 2 * kKilobit;
  options.decision_period = 6;
  EfficiencyTarget target;
  target.min_efficiency = 0.98;
  const DpResult r =
      SolveForEfficiency(clip.frame_bits(), options, target);
  EXPECT_GE(Efficiency(clip.frame_bits(), r.schedule), 0.98);
  const double interval_s =
      static_cast<double>(clip.frame_count()) /
      static_cast<double>(r.schedule.change_count() + 1) / clip.fps();
  EXPECT_GT(interval_s, 2.0);
}

}  // namespace
}  // namespace rcbr::core
