#include "core/advance_reservation.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr::core {
namespace {

TEST(ReservationLedger, Validation) {
  EXPECT_THROW(ReservationLedger(0.0, 1.0, 10), InvalidArgument);
  EXPECT_THROW(ReservationLedger(1.0, 0.0, 10), InvalidArgument);
  EXPECT_THROW(ReservationLedger(1.0, 1.0, 0), InvalidArgument);
}

TEST(ReservationLedger, BookAndQuery) {
  ReservationLedger ledger(10.0, 1.0, 100);
  const PiecewiseConstant schedule({{0, 4.0}, {5, 6.0}}, 10);
  ASSERT_TRUE(ledger.BookSchedule(1, schedule, 20));
  EXPECT_DOUBLE_EQ(ledger.ReservedAt(19), 0.0);
  EXPECT_DOUBLE_EQ(ledger.ReservedAt(20), 4.0);
  EXPECT_DOUBLE_EQ(ledger.ReservedAt(24), 4.0);
  EXPECT_DOUBLE_EQ(ledger.ReservedAt(25), 6.0);
  EXPECT_DOUBLE_EQ(ledger.ReservedAt(29), 6.0);
  EXPECT_DOUBLE_EQ(ledger.ReservedAt(30), 0.0);
  EXPECT_DOUBLE_EQ(ledger.PeakReservation(0, 100), 6.0);
}

TEST(ReservationLedger, AllOrNothing) {
  ReservationLedger ledger(10.0, 1.0, 50);
  ASSERT_TRUE(ledger.BookConstant(1, 7.0, 10, 20));
  // Overlaps the existing booking at slots 15..19 where 7 + 4 > 10.
  const PiecewiseConstant clash = PiecewiseConstant::Constant(4.0, 10);
  EXPECT_FALSE(ledger.BookSchedule(2, clash, 15));
  // Nothing was partially applied.
  EXPECT_DOUBLE_EQ(ledger.ReservedAt(22), 0.0);
  // The same schedule fits after the first booking ends.
  EXPECT_TRUE(ledger.BookSchedule(2, clash, 20));
}

TEST(ReservationLedger, ExactCapacityFits) {
  ReservationLedger ledger(10.0, 1.0, 10);
  ASSERT_TRUE(ledger.BookConstant(1, 6.0, 0, 10));
  EXPECT_TRUE(ledger.BookConstant(2, 4.0, 0, 10));
  EXPECT_FALSE(ledger.BookConstant(3, 0.5, 0, 10));
}

TEST(ReservationLedger, BeyondHorizonRejected) {
  ReservationLedger ledger(10.0, 1.0, 10);
  const PiecewiseConstant schedule = PiecewiseConstant::Constant(1.0, 5);
  EXPECT_FALSE(ledger.BookSchedule(1, schedule, 6));
  EXPECT_FALSE(ledger.BookSchedule(1, schedule, -1));
  EXPECT_TRUE(ledger.BookSchedule(1, schedule, 5));
}

TEST(ReservationLedger, CancelReleases) {
  ReservationLedger ledger(10.0, 1.0, 20);
  ASSERT_TRUE(ledger.BookConstant(1, 8.0, 0, 20));
  EXPECT_FALSE(ledger.BookConstant(2, 8.0, 5, 10));
  ledger.Cancel(1);
  EXPECT_DOUBLE_EQ(ledger.PeakReservation(0, 20), 0.0);
  EXPECT_TRUE(ledger.BookConstant(2, 8.0, 5, 10));
  ledger.Cancel(99);  // unknown id: no-op
}

TEST(ReservationLedger, DuplicateIdThrows) {
  ReservationLedger ledger(10.0, 1.0, 20);
  ASSERT_TRUE(ledger.BookConstant(1, 1.0, 0, 5));
  EXPECT_THROW(ledger.BookConstant(1, 1.0, 10, 15), InvalidArgument);
}

TEST(ReservationLedger, FindEarliestStart) {
  ReservationLedger ledger(10.0, 1.0, 40);
  ASSERT_TRUE(ledger.BookConstant(1, 9.0, 0, 15));
  const PiecewiseConstant movie = PiecewiseConstant::Constant(5.0, 10);
  // Cannot fit while the 9.0 booking holds; first fit at slot 15.
  EXPECT_EQ(ledger.FindEarliestStart(movie), 15);
  EXPECT_EQ(ledger.FindEarliestStart(movie, 20), 20);
  // A movie longer than the horizon never fits.
  const PiecewiseConstant epic = PiecewiseConstant::Constant(1.0, 41);
  EXPECT_EQ(ledger.FindEarliestStart(epic), -1);
}

TEST(ReservationLedger, BookAheadGuaranteesPlayback) {
  // The Sec. III-A2 promise: once the whole schedule is booked, no
  // per-step admission can fail at play time even under later bookings.
  ReservationLedger ledger(20.0, 1.0, 100);
  const PiecewiseConstant mine({{0, 5.0}, {20, 12.0}, {40, 3.0}}, 60);
  ASSERT_TRUE(ledger.BookSchedule(1, mine, 10));
  // A flood of later bookings can only claim the remaining capacity...
  std::uint64_t id = 2;
  for (std::int64_t t = 0; t < 90; t += 5) {
    ledger.BookConstant(id++, 6.0, t, t + 5);
  }
  // ...so my reservation is still intact slot by slot.
  for (std::int64_t t = 0; t < 60; ++t) {
    EXPECT_LE(ledger.ReservedAt(10 + t), 20.0 + 1e-9);
    EXPECT_GE(ledger.ReservedAt(10 + t), mine.At(t) - 1e-9);
  }
}

TEST(ReservationLedger, QueryValidation) {
  ReservationLedger ledger(10.0, 1.0, 10);
  EXPECT_THROW(ledger.ReservedAt(-1), InvalidArgument);
  EXPECT_THROW(ledger.ReservedAt(10), InvalidArgument);
  EXPECT_THROW(ledger.PeakReservation(5, 5), InvalidArgument);
  EXPECT_THROW(ledger.PeakReservation(0, 11), InvalidArgument);
}

}  // namespace
}  // namespace rcbr::core
