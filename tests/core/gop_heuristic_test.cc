#include "core/gop_heuristic.h"

#include <gtest/gtest.h>

#include "core/online_heuristic.h"
#include "core/schedule.h"
#include "trace/star_wars.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::core {
namespace {

GopHeuristicOptions BaseOptions() {
  GopHeuristicOptions options;
  options.gop_pattern = "IBBP";
  options.low_threshold_bits = 2.0;
  options.high_threshold_bits = 10.0;
  options.time_constant_gops = 2;
  options.flush_slots = 5;
  options.granularity_bits_per_slot = 1.0;
  options.initial_rate_bits_per_slot = 4.0;
  return options;
}

TEST(GopAwareController, Validation) {
  GopHeuristicOptions bad = BaseOptions();
  bad.gop_pattern = "";
  EXPECT_THROW(GopAwareController{bad}, InvalidArgument);
  bad = BaseOptions();
  bad.granularity_bits_per_slot = 0;
  EXPECT_THROW(GopAwareController{bad}, InvalidArgument);
  bad = BaseOptions();
  bad.time_constant_gops = 0.5;
  EXPECT_THROW(GopAwareController{bad}, InvalidArgument);
  bad = BaseOptions();
  bad.low_threshold_bits = 20.0;
  EXPECT_THROW(GopAwareController{bad}, InvalidArgument);
}

TEST(GopAwareController, PeriodicPatternIsInvisible) {
  // A strictly periodic workload matching the configured pattern should
  // never trigger a renegotiation once the per-position estimators have
  // locked on: the pattern-average is constant.
  GopHeuristicOptions options = BaseOptions();
  // Pattern IBBP with sizes 10,2,2,6: mean 5.
  options.initial_rate_bits_per_slot = 5.0;
  GopAwareController c(options);
  const double pattern[4] = {10.0, 2.0, 2.0, 6.0};
  for (int t = 0; t < 400; ++t) {
    c.Step(pattern[t % 4], c.current_rate());
  }
  EXPECT_EQ(c.renegotiations(), 0);
  EXPECT_NEAR(c.estimate_bits_per_slot(), 5.0, 0.1);
}

TEST(GopAwareController, TracksSceneChange) {
  GopHeuristicOptions options = BaseOptions();
  options.initial_rate_bits_per_slot = 5.0;
  GopAwareController c(options);
  const double quiet[4] = {10.0, 2.0, 2.0, 6.0};   // mean 5
  const double action[4] = {30.0, 6.0, 6.0, 18.0}; // mean 15
  for (int t = 0; t < 100; ++t) c.Step(quiet[t % 4], c.current_rate());
  EXPECT_EQ(c.renegotiations(), 0);
  bool went_up = false;
  for (int t = 0; t < 100 && !went_up; ++t) {
    const auto request = c.Step(action[t % 4], c.current_rate());
    if (request.has_value() && *request > 5.0) went_up = true;
  }
  EXPECT_TRUE(went_up);
}

TEST(GopAwareController, RespectsRateCap) {
  GopHeuristicOptions options = BaseOptions();
  options.max_rate_bits_per_slot = 7.0;
  GopAwareController c(options);
  for (int t = 0; t < 200; ++t) {
    const auto request = c.Step(50.0, c.current_rate());
    if (request.has_value()) {
      EXPECT_LE(*request, 7.0);
    }
  }
}

TEST(GopAwareController, DeniedRequestRollsBack) {
  GopHeuristicOptions options = BaseOptions();
  GopAwareController c(options);
  for (int t = 0; t < 50; ++t) {
    const auto request = c.Step(20.0, 4.0);
    if (request.has_value()) {
      EXPECT_DOUBLE_EQ(c.current_rate(), *request);
      c.OnRequestDenied(4.0);
      EXPECT_DOUBLE_EQ(c.current_rate(), 4.0);
      return;
    }
  }
  FAIL() << "controller never triggered";
}

TEST(GopHeuristicSchedule, FeasibleAndTracksWorkload) {
  const trace::FrameTrace clip = trace::MakeStarWarsTrace(21, 4800);
  GopHeuristicOptions options;
  options.gop_pattern = "IBBPBBPBBPBB";
  options.low_threshold_bits = 10e3;
  options.high_threshold_bits = 150e3;
  options.time_constant_gops = 2;
  options.flush_slots = 5;
  options.granularity_bits_per_slot = 64e3 / clip.fps();
  options.initial_rate_bits_per_slot = clip.mean_rate() / clip.fps();
  const PiecewiseConstant schedule =
      ComputeGopHeuristicSchedule(clip.frame_bits(), options);
  const ScheduleMetrics m = EvaluateSchedule(
      clip.frame_bits(), schedule, 1e15, clip.slot_seconds(), {});
  EXPECT_TRUE(m.feasible);
  EXPECT_GT(m.bandwidth_efficiency, 0.5);
}

TEST(GopHeuristicSchedule, FewerRenegotiationsThanPlainAr1AtSameEfficiency) {
  // The headline claim of the extension: on GOP-structured traffic the
  // pattern-aware estimator renegotiates less for at least comparable
  // efficiency.
  const trace::FrameTrace clip = trace::MakeStarWarsTrace(23, 9600);
  const double delta = 64e3 / clip.fps();
  const double initial = clip.mean_rate() / clip.fps();

  HeuristicOptions plain;
  plain.low_threshold_bits = 10e3;
  plain.high_threshold_bits = 150e3;
  plain.time_constant_slots = 5;
  plain.granularity_bits_per_slot = delta;
  plain.initial_rate_bits_per_slot = initial;
  const PiecewiseConstant ar1 =
      ComputeHeuristicSchedule(clip.frame_bits(), plain);

  GopHeuristicOptions aware;
  aware.gop_pattern = "IBBPBBPBBPBB";
  aware.low_threshold_bits = 10e3;
  aware.high_threshold_bits = 150e3;
  aware.time_constant_gops = 2;
  aware.flush_slots = 5;
  aware.granularity_bits_per_slot = delta;
  aware.initial_rate_bits_per_slot = initial;
  const PiecewiseConstant gop =
      ComputeGopHeuristicSchedule(clip.frame_bits(), aware);

  EXPECT_LT(gop.change_count(), ar1.change_count());
  const double ar1_eff = initial / ar1.Mean();
  const double gop_eff = initial / gop.Mean();
  EXPECT_GE(gop_eff, ar1_eff - 0.05);
}

}  // namespace
}  // namespace rcbr::core
