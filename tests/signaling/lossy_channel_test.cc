#include "signaling/lossy_channel.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace rcbr::signaling {
namespace {

TEST(LossyRenegotiator, Validation) {
  PortController port(1e6);
  Rng rng(1);
  LossyChannelOptions options;
  EXPECT_THROW(LossyRenegotiator(nullptr, 1, 0.0, options, &rng),
               InvalidArgument);
  EXPECT_THROW(LossyRenegotiator(&port, 1, 0.0, options, nullptr),
               InvalidArgument);
  options.cell_loss_probability = 1.0;
  EXPECT_THROW(LossyRenegotiator(&port, 1, 0.0, options, &rng),
               InvalidArgument);
  options = {};
  options.resync_every_cells = -1;
  EXPECT_THROW(LossyRenegotiator(&port, 1, 0.0, options, &rng),
               InvalidArgument);
}

TEST(LossyRenegotiator, LosslessChannelNeverDrifts) {
  PortController port(1e6);
  ASSERT_TRUE(port.AdmitConnection(1, 1e5));
  Rng rng(2);
  LossyRenegotiator source(&port, 1, 1e5, {}, &rng);
  Rng workload(3);
  for (int i = 0; i < 500; ++i) {
    source.Renegotiate(workload.Uniform(5e4, 5e5));
    ASSERT_NEAR(source.DriftBps(), 0.0, 1e-6) << "step " << i;
  }
  EXPECT_EQ(source.stats().cells_lost, 0);
}

TEST(LossyRenegotiator, CellLossCausesDrift) {
  PortController port(1e9);
  ASSERT_TRUE(port.AdmitConnection(1, 1e5));
  Rng rng(5);
  LossyChannelOptions options;
  options.cell_loss_probability = 0.2;
  LossyRenegotiator source(&port, 1, 1e5, options, &rng);
  Rng workload(7);
  double max_drift = 0;
  for (int i = 0; i < 2000; ++i) {
    source.Renegotiate(workload.Uniform(5e4, 5e5));
    max_drift = std::max(max_drift, std::abs(source.DriftBps()));
  }
  EXPECT_GT(source.stats().cells_lost, 200);
  EXPECT_GT(max_drift, 1e4) << "lost delta cells must desynchronize state";
}

TEST(LossyRenegotiator, ResyncBoundsDrift) {
  PortController port(1e9);
  ASSERT_TRUE(port.AdmitConnection(1, 1e5));
  Rng rng(9);
  LossyChannelOptions options;
  options.cell_loss_probability = 0.2;
  options.resync_every_cells = 10;
  LossyRenegotiator source(&port, 1, 1e5, options, &rng);
  Rng workload(11);
  for (int i = 0; i < 2000; ++i) {
    source.Renegotiate(workload.Uniform(5e4, 5e5));
    // Immediately after each resync the drift is exactly zero; in between
    // at most 10 cells (with rates < 5e5) can desynchronize.
    ASSERT_LT(std::abs(source.DriftBps()), 10 * 5e5) << "step " << i;
  }
  EXPECT_GT(source.stats().resyncs_sent, 150);
  // Force one more resync and verify exact repair.
  source.Resync();
  EXPECT_NEAR(source.DriftBps(), 0.0, 1e-6);
}

TEST(LossyRenegotiator, ResyncRepairsAggregateUtilization) {
  PortController port(1e9);
  ASSERT_TRUE(port.AdmitConnection(1, 1e5));
  Rng rng(13);
  LossyChannelOptions options;
  options.cell_loss_probability = 0.5;
  LossyRenegotiator source(&port, 1, 1e5, options, &rng);
  Rng workload(15);
  for (int i = 0; i < 200; ++i) {
    source.Renegotiate(workload.Uniform(5e4, 5e5));
  }
  source.Resync();
  EXPECT_NEAR(port.utilization_bps(), source.believed_rate_bps(), 1e-6);
}

TEST(LossyRenegotiator, DeniedRequestKeepsBelief) {
  PortController port(2e5);
  ASSERT_TRUE(port.AdmitConnection(1, 1e5));
  Rng rng(17);
  LossyRenegotiator source(&port, 1, 1e5, {}, &rng);
  EXPECT_FALSE(source.Renegotiate(5e5));  // exceeds the port
  EXPECT_DOUBLE_EQ(source.believed_rate_bps(), 1e5);
  EXPECT_NEAR(source.DriftBps(), 0.0, 1e-6);
}

}  // namespace
}  // namespace rcbr::signaling
