#include "signaling/lossy_channel.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "signaling/path.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::signaling {
namespace {

TEST(ChannelOptions, ValidationRejectsNaNAndOutOfRange) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  LossyChannelOptions options;
  ValidateChannelOptions(options);  // defaults are fine
  options.cell_loss_probability = nan;
  EXPECT_THROW(ValidateChannelOptions(options), InvalidArgument);
  options.cell_loss_probability = -0.1;
  EXPECT_THROW(ValidateChannelOptions(options), InvalidArgument);
  options.cell_loss_probability = 1.0;
  EXPECT_THROW(ValidateChannelOptions(options), InvalidArgument);
  options = {};
  options.resync_every_cells = -1;
  EXPECT_THROW(ValidateChannelOptions(options), InvalidArgument);
}

TEST(ChannelOptions, EffectiveLossClampsAndDelayReadsConditions) {
  LossyChannelOptions options;
  options.cell_loss_probability = 0.4;
  EXPECT_DOUBLE_EQ(EffectiveLossProbability(options), 0.4);
  EXPECT_DOUBLE_EQ(ExtraDelaySeconds(options), 0.0);
  ChannelConditions conditions;
  conditions.extra_loss_probability = 0.5;
  conditions.extra_delay_s = 0.25;
  options.conditions = &conditions;
  EXPECT_DOUBLE_EQ(EffectiveLossProbability(options), 0.9);
  EXPECT_DOUBLE_EQ(ExtraDelaySeconds(options), 0.25);
  conditions.extra_loss_probability = 0.8;  // 0.4 + 0.8 clamps at 1
  EXPECT_DOUBLE_EQ(EffectiveLossProbability(options), 1.0);
}

TEST(ChannelConditionsLive, MutatingConditionsSwitchesLossMidRun) {
  // The fault injector mutates a shared ChannelConditions as its timeline
  // advances; the channel must sample it per cell, so cells sent during
  // the outage window are lost and cells outside it are not.
  PortController port(1e9);
  ASSERT_TRUE(port.AdmitConnection(1, 1e5));
  Rng rng(41);
  ChannelConditions conditions;  // starts clean
  LossyChannelOptions options;
  options.conditions = &conditions;
  LossyRenegotiator source(&port, 1, 1e5, options, &rng);
  Rng workload(43);
  for (int i = 0; i < 100; ++i) {
    source.Renegotiate(workload.Uniform(5e4, 5e5), static_cast<double>(i));
  }
  EXPECT_EQ(source.stats().cells_lost, 0);
  conditions.extra_loss_probability = 1.0;  // burst begins
  for (int i = 100; i < 150; ++i) {
    source.Renegotiate(workload.Uniform(5e4, 5e5), static_cast<double>(i));
  }
  EXPECT_EQ(source.stats().cells_lost, 50);
  conditions.extra_loss_probability = 0.0;  // burst expires
  const std::int64_t lost_during_burst = source.stats().cells_lost;
  for (int i = 150; i < 250; ++i) {
    source.Renegotiate(workload.Uniform(5e4, 5e5), static_cast<double>(i));
  }
  EXPECT_EQ(source.stats().cells_lost, lost_during_burst);
  source.Resync(250.0);
  EXPECT_NEAR(source.DriftBps(), 0.0, 1e-6);
}

TEST(LossyRenegotiator, Validation) {
  PortController port(1e6);
  Rng rng(1);
  LossyChannelOptions options;
  EXPECT_THROW(LossyRenegotiator(nullptr, 1, 0.0, options, &rng),
               InvalidArgument);
  EXPECT_THROW(LossyRenegotiator(&port, 1, 0.0, options, nullptr),
               InvalidArgument);
  options.cell_loss_probability = 1.0;
  EXPECT_THROW(LossyRenegotiator(&port, 1, 0.0, options, &rng),
               InvalidArgument);
  options = {};
  options.resync_every_cells = -1;
  EXPECT_THROW(LossyRenegotiator(&port, 1, 0.0, options, &rng),
               InvalidArgument);
}

TEST(LossyRenegotiator, LosslessChannelNeverDrifts) {
  PortController port(1e6);
  ASSERT_TRUE(port.AdmitConnection(1, 1e5));
  Rng rng(2);
  LossyRenegotiator source(&port, 1, 1e5, {}, &rng);
  Rng workload(3);
  for (int i = 0; i < 500; ++i) {
    source.Renegotiate(workload.Uniform(5e4, 5e5), static_cast<double>(i));
    ASSERT_NEAR(source.DriftBps(), 0.0, 1e-6) << "step " << i;
  }
  EXPECT_EQ(source.stats().cells_lost, 0);
}

TEST(LossyRenegotiator, CellLossCausesDrift) {
  PortController port(1e9);
  ASSERT_TRUE(port.AdmitConnection(1, 1e5));
  Rng rng(5);
  LossyChannelOptions options;
  options.cell_loss_probability = 0.2;
  LossyRenegotiator source(&port, 1, 1e5, options, &rng);
  Rng workload(7);
  double max_drift = 0;
  for (int i = 0; i < 2000; ++i) {
    source.Renegotiate(workload.Uniform(5e4, 5e5), static_cast<double>(i));
    max_drift = std::max(max_drift, std::abs(source.DriftBps()));
  }
  EXPECT_GT(source.stats().cells_lost, 200);
  EXPECT_GT(max_drift, 1e4) << "lost delta cells must desynchronize state";
}

TEST(LossyRenegotiator, ResyncBoundsDrift) {
  PortController port(1e9);
  ASSERT_TRUE(port.AdmitConnection(1, 1e5));
  Rng rng(9);
  LossyChannelOptions options;
  options.cell_loss_probability = 0.2;
  options.resync_every_cells = 10;
  LossyRenegotiator source(&port, 1, 1e5, options, &rng);
  Rng workload(11);
  for (int i = 0; i < 2000; ++i) {
    source.Renegotiate(workload.Uniform(5e4, 5e5), static_cast<double>(i));
    // Immediately after each resync the drift is exactly zero; in between
    // at most 10 cells (with rates < 5e5) can desynchronize.
    ASSERT_LT(std::abs(source.DriftBps()), 10 * 5e5) << "step " << i;
  }
  EXPECT_GT(source.stats().resyncs_sent, 150);
  // Force one more resync and verify exact repair.
  source.Resync(0.0);
  EXPECT_NEAR(source.DriftBps(), 0.0, 1e-6);
}

TEST(LossyRenegotiator, ResyncRepairsAggregateUtilization) {
  PortController port(1e9);
  ASSERT_TRUE(port.AdmitConnection(1, 1e5));
  Rng rng(13);
  LossyChannelOptions options;
  options.cell_loss_probability = 0.5;
  LossyRenegotiator source(&port, 1, 1e5, options, &rng);
  Rng workload(15);
  for (int i = 0; i < 200; ++i) {
    source.Renegotiate(workload.Uniform(5e4, 5e5), static_cast<double>(i));
  }
  source.Resync(0.0);
  EXPECT_NEAR(port.utilization_bps(), source.believed_rate_bps(), 1e-6);
}

TEST(LossyRenegotiator, DeniedRequestKeepsBelief) {
  PortController port(2e5);
  ASSERT_TRUE(port.AdmitConnection(1, 1e5));
  Rng rng(17);
  LossyRenegotiator source(&port, 1, 1e5, {}, &rng);
  EXPECT_FALSE(source.Renegotiate(5e5, 0.0));  // exceeds the port
  EXPECT_DOUBLE_EQ(source.believed_rate_bps(), 1e5);
  EXPECT_NEAR(source.DriftBps(), 0.0, 1e-6);
}

class LossyPathTest : public ::testing::Test {
 protected:
  void Build(std::vector<double> capacities) {
    ports_.clear();
    for (double c : capacities) {
      ports_.push_back(std::make_unique<PortController>(c));
    }
    std::vector<PortController*> raw;
    for (auto& p : ports_) raw.push_back(p.get());
    path_ = std::make_unique<SignalingPath>(std::move(raw), 0.001);
  }

  std::vector<std::unique_ptr<PortController>> ports_;
  std::unique_ptr<SignalingPath> path_;
};

TEST_F(LossyPathTest, LosslessDenialRollsBackByteExactly) {
  // With a perfect channel the path renegotiator must behave exactly like
  // SignalingPath::RequestDelta: a denial at the bottleneck hop restores
  // the upstream hop bit for bit.
  Build({1e9, 2e5});
  ASSERT_TRUE(path_->SetupConnection(1, 1e5));
  Rng rng(19);
  LossyPathRenegotiator source(path_.get(), 1, 1e5, {}, &rng);
  const double hop0_before = ports_[0]->utilization_bps();
  EXPECT_FALSE(source.Renegotiate(5e5, 0.0));  // exceeds hop 1
  EXPECT_EQ(ports_[0]->utilization_bps(), hop0_before);
  EXPECT_DOUBLE_EQ(source.believed_rate_bps(), 1e5);
  EXPECT_DOUBLE_EQ(source.MaxAbsDriftBps(), 0.0);
}

TEST_F(LossyPathTest, LostRollbackCellsDriftAndResyncRepairs) {
  // Denials trigger per-hop rollback cells which ride the same lossy
  // channel; a lost rollback cell leaves that hop believing the grant it
  // should have forgotten. Drift must appear, and a reliable absolute-rate
  // resync must erase it on every hop at once.
  Build({1e9, 2e5});
  ASSERT_TRUE(path_->SetupConnection(1, 1e5));
  Rng rng(23);
  LossyChannelOptions options;
  options.cell_loss_probability = 0.3;
  LossyPathRenegotiator source(path_.get(), 1, 1e5, options, &rng);
  Rng workload(29);
  double max_drift = 0;
  for (int i = 0; i < 500; ++i) {
    source.Renegotiate(workload.Uniform(5e4, 5e5),
                       static_cast<double>(i));
    max_drift = std::max(max_drift, source.MaxAbsDriftBps());
  }
  EXPECT_GT(source.stats().cells_lost, 50);
  EXPECT_GT(max_drift, 1e4) << "lossy rollback must desynchronize hops";
  source.Resync(500.0);
  for (std::size_t k = 0; k < ports_.size(); ++k) {
    EXPECT_DOUBLE_EQ(ports_[k]->TrackedRate(1), source.believed_rate_bps())
        << "hop " << k;
  }
  EXPECT_DOUBLE_EQ(source.MaxAbsDriftBps(), 0.0);
}

TEST_F(LossyPathTest, PeriodicResyncBoundsMultiHopDrift) {
  Build({1e9, 1e9, 2e5});
  ASSERT_TRUE(path_->SetupConnection(1, 1e5));
  Rng rng(31);
  LossyChannelOptions options;
  options.cell_loss_probability = 0.2;
  options.resync_every_cells = 10;
  LossyPathRenegotiator source(path_.get(), 1, 1e5, options, &rng);
  Rng workload(37);
  for (int i = 0; i < 1000; ++i) {
    source.Renegotiate(workload.Uniform(5e4, 5e5),
                       static_cast<double>(i));
    ASSERT_LT(source.MaxAbsDriftBps(), 10 * 5e5) << "step " << i;
  }
  EXPECT_GT(source.stats().resyncs_sent, 50);
}

}  // namespace
}  // namespace rcbr::signaling
