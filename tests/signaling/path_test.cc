#include "signaling/path.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr::signaling {
namespace {

class PathTest : public ::testing::Test {
 protected:
  void Build(std::vector<double> capacities, double hop_delay = 0.001) {
    ports_.clear();
    for (double c : capacities) {
      ports_.push_back(std::make_unique<PortController>(c));
    }
    std::vector<PortController*> raw;
    for (auto& p : ports_) raw.push_back(p.get());
    path_ = std::make_unique<SignalingPath>(std::move(raw), hop_delay);
  }

  std::vector<std::unique_ptr<PortController>> ports_;
  std::unique_ptr<SignalingPath> path_;
};

TEST_F(PathTest, Validation) {
  EXPECT_THROW(SignalingPath({}, 0.001), InvalidArgument);
  PortController port(1.0);
  EXPECT_THROW(SignalingPath({&port}, -1.0), InvalidArgument);
  EXPECT_THROW(SignalingPath({nullptr}, 0.001), InvalidArgument);
}

TEST_F(PathTest, SetupOnAllHops) {
  Build({10.0, 10.0, 10.0});
  EXPECT_TRUE(path_->SetupConnection(1, 4.0));
  for (auto& p : ports_) {
    EXPECT_DOUBLE_EQ(p->utilization_bps(), 4.0);
  }
}

TEST_F(PathTest, SetupRollsBackOnBottleneck) {
  Build({10.0, 3.0, 10.0});
  EXPECT_FALSE(path_->SetupConnection(1, 4.0));
  for (auto& p : ports_) {
    EXPECT_DOUBLE_EQ(p->utilization_bps(), 0.0);
  }
}

TEST_F(PathTest, TeardownReleasesEverywhere) {
  Build({10.0, 10.0});
  path_->SetupConnection(1, 4.0);
  path_->TeardownConnection(1);
  for (auto& p : ports_) {
    EXPECT_DOUBLE_EQ(p->utilization_bps(), 0.0);
  }
}

TEST_F(PathTest, DeltaAcceptedOnAllHops) {
  Build({10.0, 10.0});
  path_->SetupConnection(1, 4.0);
  const PathOutcome outcome = path_->RequestDelta(1, 3.0, 0.0);
  EXPECT_TRUE(outcome.accepted);
  EXPECT_EQ(outcome.bottleneck_hop, -1);
  for (auto& p : ports_) {
    EXPECT_DOUBLE_EQ(p->utilization_bps(), 7.0);
  }
  EXPECT_EQ(path_->stats().requests, 1);
  EXPECT_EQ(path_->stats().failures, 0);
}

TEST_F(PathTest, DeltaDeniedRollsBackUpstreamGrants) {
  Build({10.0, 5.0});
  path_->SetupConnection(1, 4.0);
  const PathOutcome outcome = path_->RequestDelta(1, 3.0, 0.0);  // hop 1 has 1 free
  EXPECT_FALSE(outcome.accepted);
  EXPECT_EQ(outcome.bottleneck_hop, 1);
  EXPECT_DOUBLE_EQ(ports_[0]->utilization_bps(), 4.0);  // rolled back
  EXPECT_DOUBLE_EQ(ports_[1]->utilization_bps(), 4.0);
  EXPECT_EQ(path_->stats().failures, 1);
}

TEST_F(PathTest, EachHopIsAPossiblePointOfFailure) {
  // Sec. III-C: failure probability grows with hop count. With the same
  // residual capacity per hop, a longer path can only fail more.
  Build({10.0});
  path_->SetupConnection(1, 9.0);
  EXPECT_FALSE(path_->RequestDelta(1, 2.0, 0.0).accepted);

  Build({10.0, 12.0, 11.0});
  path_->SetupConnection(1, 9.0);
  const PathOutcome outcome = path_->RequestDelta(1, 2.0, 0.0);
  EXPECT_FALSE(outcome.accepted);
  EXPECT_EQ(outcome.bottleneck_hop, 0);
}

TEST_F(PathTest, RoundTripScalesWithHops) {
  Build({10.0, 10.0, 10.0}, 0.002);
  EXPECT_DOUBLE_EQ(path_->RoundTripSeconds(), 0.012);
  path_->SetupConnection(1, 1.0);
  const PathOutcome ok = path_->RequestDelta(1, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(ok.round_trip_s, 0.012);
}

TEST_F(PathTest, DenialRoundTripStopsAtBottleneck) {
  Build({10.0, 2.0, 10.0}, 0.002);
  path_->SetupConnection(1, 2.0);
  const PathOutcome denied = path_->RequestDelta(1, 1.0, 0.0);
  EXPECT_FALSE(denied.accepted);
  EXPECT_EQ(denied.bottleneck_hop, 1);
  EXPECT_DOUBLE_EQ(denied.round_trip_s, 0.008);  // 2 hops out and back
}

TEST_F(PathTest, DecreasePropagatesEverywhere) {
  Build({10.0, 10.0});
  path_->SetupConnection(1, 6.0);
  const PathOutcome outcome = path_->RequestDelta(1, -3.0, 0.0);
  EXPECT_TRUE(outcome.accepted);
  for (auto& p : ports_) {
    EXPECT_DOUBLE_EQ(p->utilization_bps(), 3.0);
  }
}

TEST_F(PathTest, DeniedIncreaseRollbackIsByteExact) {
  // Rollback must restore the pre-grant snapshot, not apply a compensating
  // delta: in IEEE arithmetic (x + d) - d generally != x. With rates 0.1
  // and 0.2 stacked, hop utilization is 0.30000000000000004...; adding and
  // subtracting 0.1 would land on a different bit pattern.
  Build({1.0, 1.0, 0.35});
  ASSERT_TRUE(path_->SetupConnection(1, 0.1));
  ASSERT_TRUE(path_->SetupConnection(2, 0.2));
  std::vector<double> util_before;
  std::vector<double> tracked_before;
  for (auto& p : ports_) {
    util_before.push_back(p->utilization_bps());
    tracked_before.push_back(p->TrackedRate(1));
  }
  // Hop 2 has 0.35 - (0.1 + 0.2) < 0.1 free: denied there, rolled back on
  // hops 0 and 1.
  const PathOutcome outcome = path_->RequestDelta(1, 0.1, 0.0);
  ASSERT_FALSE(outcome.accepted);
  EXPECT_EQ(outcome.bottleneck_hop, 2);
  for (std::size_t k = 0; k < ports_.size(); ++k) {
    // EXPECT_EQ, not EXPECT_DOUBLE_EQ: bit-identical, zero ulps of slack.
    EXPECT_EQ(ports_[k]->utilization_bps(), util_before[k]) << "hop " << k;
    EXPECT_EQ(ports_[k]->TrackedRate(1), tracked_before[k]) << "hop " << k;
  }
}

TEST_F(PathTest, TeardownHintReleasesUntrackedPorts) {
  // O(1)-state ports (the paper's scaling argument) keep no per-VCI table;
  // teardown must then rely on the caller's rate hint.
  std::vector<std::unique_ptr<PortController>> ports;
  std::vector<PortController*> raw;
  for (int k = 0; k < 2; ++k) {
    ports.push_back(
        std::make_unique<PortController>(10.0, /*track_connections=*/false));
    raw.push_back(ports.back().get());
  }
  SignalingPath path(raw, 0.001);
  ASSERT_TRUE(path.SetupConnection(1, 4.0));
  for (auto& p : ports) EXPECT_DOUBLE_EQ(p->utilization_bps(), 4.0);
  path.TeardownConnection(1, /*rate_bps_hint=*/4.0);
  for (auto& p : ports) EXPECT_DOUBLE_EQ(p->utilization_bps(), 0.0);
}

TEST_F(PathTest, TeardownWithoutHintLeaksOnUntrackedPorts) {
  // The flip side of the hint contract: an untracked port cannot look the
  // rate up, so a hintless teardown releases nothing.
  std::vector<std::unique_ptr<PortController>> ports;
  std::vector<PortController*> raw;
  ports.push_back(
      std::make_unique<PortController>(10.0, /*track_connections=*/false));
  raw.push_back(ports.back().get());
  SignalingPath path(raw, 0.001);
  ASSERT_TRUE(path.SetupConnection(1, 4.0));
  path.TeardownConnection(1);
  EXPECT_DOUBLE_EQ(raw[0]->utilization_bps(), 4.0);
}

TEST_F(PathTest, ResyncReachesAllHops) {
  Build({10.0, 10.0});
  path_->SetupConnection(1, 4.0);
  path_->Resync(1, 5.0, 0.0);
  for (auto& p : ports_) {
    EXPECT_DOUBLE_EQ(p->TrackedRate(1), 5.0);
    EXPECT_DOUBLE_EQ(p->utilization_bps(), 5.0);
  }
}

}  // namespace
}  // namespace rcbr::signaling
