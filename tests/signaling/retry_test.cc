#include "signaling/retry.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "signaling/path.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::signaling {
namespace {

class RetryTest : public ::testing::Test {
 protected:
  void Build(std::vector<double> capacities, double per_hop_delay_s = 0.001) {
    ports_.clear();
    for (double c : capacities) {
      ports_.push_back(std::make_unique<PortController>(c));
    }
    std::vector<PortController*> raw;
    for (auto& p : ports_) raw.push_back(p.get());
    path_ = std::make_unique<SignalingPath>(std::move(raw), per_hop_delay_s);
  }

  std::vector<std::unique_ptr<PortController>> ports_;
  std::unique_ptr<SignalingPath> path_;
};

TEST_F(RetryTest, Validation) {
  Build({1e6});
  Rng rng(1);
  RetryOptions retry;
  LossyChannelOptions channel;
  EXPECT_THROW(RetryingRenegotiator(nullptr, 1, 0.0, retry, channel, &rng),
               InvalidArgument);
  EXPECT_THROW(
      RetryingRenegotiator(path_.get(), 1, 0.0, retry, channel, nullptr),
      InvalidArgument);
  retry.timeout_s = 0;
  EXPECT_THROW(
      RetryingRenegotiator(path_.get(), 1, 0.0, retry, channel, &rng),
      InvalidArgument);
  retry = {};
  retry.max_retries = -1;
  EXPECT_THROW(
      RetryingRenegotiator(path_.get(), 1, 0.0, retry, channel, &rng),
      InvalidArgument);
  retry = {};
  retry.backoff_multiplier = 0.5;
  EXPECT_THROW(
      RetryingRenegotiator(path_.get(), 1, 0.0, retry, channel, &rng),
      InvalidArgument);
  retry = {};
  retry.jitter_fraction = 1.0;
  EXPECT_THROW(
      RetryingRenegotiator(path_.get(), 1, 0.0, retry, channel, &rng),
      InvalidArgument);
  retry = {};
  channel.cell_loss_probability = 1.0;
  EXPECT_THROW(
      RetryingRenegotiator(path_.get(), 1, 0.0, retry, channel, &rng),
      InvalidArgument);
}

TEST_F(RetryTest, LosslessAcceptsOnFirstAttempt) {
  Build({1e6, 1e6});
  ASSERT_TRUE(path_->SetupConnection(1, 1e5));
  Rng rng(2);
  RetryingRenegotiator source(path_.get(), 1, 1e5, {}, {}, &rng);
  const RenegotiationOutcome out = source.Renegotiate(2e5, 0.0);
  EXPECT_TRUE(out.accepted);
  EXPECT_FALSE(out.timed_out);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_DOUBLE_EQ(out.latency_s, path_->RoundTripSeconds());
  EXPECT_DOUBLE_EQ(source.granted_rate_bps(), 2e5);
  EXPECT_DOUBLE_EQ(source.MaxAbsDriftBps(), 0.0);
  EXPECT_EQ(source.stats().timeouts, 0);
  EXPECT_EQ(source.stats().retries, 0);
}

TEST_F(RetryTest, TotalOutageExhaustsRetriesWithoutDrift) {
  Build({1e9, 1e9});
  ASSERT_TRUE(path_->SetupConnection(1, 1e5));
  Rng rng(3);
  RetryOptions retry;
  retry.max_retries = 2;
  retry.jitter_fraction = 0;
  // Fault-driven outage: every cell is lost in flight.
  ChannelConditions outage;
  outage.extra_loss_probability = 1.0;
  LossyChannelOptions channel;
  channel.conditions = &outage;
  RetryingRenegotiator source(path_.get(), 1, 1e5, retry, channel, &rng);
  const RenegotiationOutcome out = source.Renegotiate(5e5, 0.0);
  EXPECT_FALSE(out.accepted);
  EXPECT_TRUE(out.timed_out);
  EXPECT_EQ(out.attempts, 3);  // first try + 2 retries
  EXPECT_EQ(source.stats().timeouts, 3);
  EXPECT_EQ(source.stats().retries, 2);
  EXPECT_EQ(source.stats().abandoned, 1);
  // Each timeout resynced at the acknowledged rate before retrying, so the
  // abandoned request leaves every hop exactly where it started.
  EXPECT_DOUBLE_EQ(source.granted_rate_bps(), 1e5);
  for (std::size_t k = 0; k < path_->hop_count(); ++k) {
    EXPECT_DOUBLE_EQ(ports_[k]->TrackedRate(1), 1e5) << "hop " << k;
  }
  EXPECT_DOUBLE_EQ(source.MaxAbsDriftBps(), 0.0);
}

TEST_F(RetryTest, NoJitterBackoffLatencyIsExact) {
  Build({1e9});
  ASSERT_TRUE(path_->SetupConnection(1, 1e5));
  Rng rng(4);
  RetryOptions retry;
  retry.timeout_s = 0.05;
  retry.max_retries = 2;
  retry.backoff_base_s = 0.02;
  retry.backoff_multiplier = 2.0;
  retry.jitter_fraction = 0;
  ChannelConditions outage;
  outage.extra_loss_probability = 1.0;
  LossyChannelOptions channel;
  channel.conditions = &outage;
  RetryingRenegotiator source(path_.get(), 1, 1e5, retry, channel, &rng);
  const RenegotiationOutcome out = source.Renegotiate(5e5, 0.0);
  // 3 timeout waits plus backoffs of 0.02 and 0.04 between attempts.
  EXPECT_DOUBLE_EQ(out.latency_s, 3 * 0.05 + 0.02 + 0.04);
}

TEST_F(RetryTest, ExplicitDenialIsNeverRetried) {
  Build({1e9, 2e5});
  ASSERT_TRUE(path_->SetupConnection(1, 1e5));
  Rng rng(5);
  RetryOptions retry;
  retry.max_retries = 5;
  RetryingRenegotiator source(path_.get(), 1, 1e5, retry, {}, &rng);
  const double hop0_before = ports_[0]->utilization_bps();
  const RenegotiationOutcome out = source.Renegotiate(5e5, 0.0);
  EXPECT_FALSE(out.accepted);
  EXPECT_FALSE(out.timed_out);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(source.stats().denials, 1);
  EXPECT_EQ(source.stats().retries, 0);
  // Upstream rollback is byte-exact (same machinery as SignalingPath).
  EXPECT_EQ(ports_[0]->utilization_bps(), hop0_before);
  EXPECT_DOUBLE_EQ(source.granted_rate_bps(), 1e5);
}

TEST_F(RetryTest, DelaySpikeRescindsLateGrant) {
  // The response arrives, but a fault-window delay pushes it past the
  // deadline: the source has moved on, so the stale grant must not stand.
  Build({1e9});
  ASSERT_TRUE(path_->SetupConnection(1, 1e5));
  Rng rng(6);
  RetryOptions retry;
  retry.timeout_s = 0.05;
  retry.max_retries = 1;
  retry.jitter_fraction = 0;
  ChannelConditions spike;
  spike.extra_delay_s = 1.0;  // rtt + 1s >> timeout
  LossyChannelOptions channel;
  channel.conditions = &spike;
  RetryingRenegotiator source(path_.get(), 1, 1e5, retry, channel, &rng);
  const RenegotiationOutcome out = source.Renegotiate(5e5, 0.0);
  EXPECT_FALSE(out.accepted);
  EXPECT_TRUE(out.timed_out);
  EXPECT_EQ(source.stats().timeouts, 2);
  // The port granted each attempt, then the rescinding resync took it back.
  EXPECT_GT(ports_[0]->stats().delta_accepted, 0);
  EXPECT_DOUBLE_EQ(ports_[0]->TrackedRate(1), 1e5);
  EXPECT_DOUBLE_EQ(ports_[0]->utilization_bps(), 1e5);
}

TEST_F(RetryTest, LossyChannelNeverLeavesDriftBehind) {
  // The central invariant of the acked design: whatever happens inside one
  // Renegotiate call (loss mid-path, denial, success), every hop is back
  // in sync with the acknowledged rate by the time it returns.
  Build({1e9, 1e9, 3e5});
  ASSERT_TRUE(path_->SetupConnection(1, 1e5));
  Rng rng(7);
  RetryOptions retry;
  retry.max_retries = 2;
  LossyChannelOptions channel;
  channel.cell_loss_probability = 0.3;
  RetryingRenegotiator source(path_.get(), 1, 1e5, retry, channel, &rng);
  Rng workload(8);
  for (int i = 0; i < 500; ++i) {
    source.Renegotiate(workload.Uniform(5e4, 5e5), static_cast<double>(i));
    // Granted deltas accumulate in the port with FP round-off; "in sync"
    // means within round-off, not bit-equal (a resync makes it exact).
    ASSERT_NEAR(source.MaxAbsDriftBps(), 0.0, 1e-6) << "step " << i;
  }
  // The loss rate must actually have exercised the timeout/retry path.
  EXPECT_GT(source.stats().timeouts, 50);
  EXPECT_GT(source.stats().retries, 50);
  EXPECT_GT(source.stats().denials, 0);
}

TEST_F(RetryTest, ResyncRepairsCrashedController) {
  Build({1e9, 1e9});
  ASSERT_TRUE(path_->SetupConnection(1, 1e5));
  Rng rng(9);
  RetryingRenegotiator source(path_.get(), 1, 1e5, {}, {}, &rng);
  ASSERT_TRUE(source.Renegotiate(3e5, 0.0).accepted);
  ports_[1]->CrashRestart();
  EXPECT_DOUBLE_EQ(ports_[1]->utilization_bps(), 0.0);
  EXPECT_DOUBLE_EQ(source.DriftBps(1), -3e5);
  source.Resync(1.0);
  EXPECT_DOUBLE_EQ(ports_[1]->TrackedRate(1), 3e5);
  EXPECT_DOUBLE_EQ(ports_[1]->utilization_bps(), 3e5);
  EXPECT_DOUBLE_EQ(source.MaxAbsDriftBps(), 0.0);
  EXPECT_EQ(ports_[1]->stats().crashes, 1);
}

TEST_F(RetryTest, PeriodicResyncAfterGrants) {
  Build({1e9});
  ASSERT_TRUE(path_->SetupConnection(1, 0.0));
  Rng rng(10);
  RetryOptions retry;
  retry.resync_every_grants = 2;
  RetryingRenegotiator source(path_.get(), 1, 0.0, retry, {}, &rng);
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(
        source.Renegotiate(1e4 * i, static_cast<double>(i)).accepted);
  }
  EXPECT_EQ(source.stats().resyncs, 3);
}

TEST_F(RetryTest, SameSeedSameOutcomes) {
  // Loss and jitter draws come from the caller's stream in a fixed order,
  // so two identically seeded histories are identical.
  auto run = [](std::uint64_t seed) {
    std::vector<std::unique_ptr<PortController>> ports;
    ports.push_back(std::make_unique<PortController>(1e9));
    ports.push_back(std::make_unique<PortController>(4e5));
    SignalingPath path({ports[0].get(), ports[1].get()}, 0.001);
    path.SetupConnection(1, 1e5);
    Rng rng(seed);
    LossyChannelOptions channel;
    channel.cell_loss_probability = 0.25;
    RetryingRenegotiator source(&path, 1, 1e5, {}, channel, &rng);
    Rng workload(99);
    std::vector<double> history;
    for (int i = 0; i < 200; ++i) {
      source.Renegotiate(workload.Uniform(5e4, 5e5),
                         static_cast<double>(i));
      history.push_back(source.granted_rate_bps());
    }
    history.push_back(static_cast<double>(source.stats().timeouts));
    history.push_back(static_cast<double>(source.stats().retries));
    history.push_back(static_cast<double>(source.stats().denials));
    return history;
  };
  EXPECT_EQ(run(1234), run(1234));
}

// --- The shared backoff contract (also drives net/client reconnects). ---

TEST(BackoffSeconds, ExactWithoutJitter) {
  RetryOptions retry;
  retry.backoff_base_s = 0.02;
  retry.backoff_multiplier = 2.0;
  retry.jitter_fraction = 0;
  // No jitter, no rng draw: passing nullptr must be safe.
  EXPECT_DOUBLE_EQ(BackoffSeconds(retry, 0, nullptr), 0.02);
  EXPECT_DOUBLE_EQ(BackoffSeconds(retry, 1, nullptr), 0.04);
  EXPECT_DOUBLE_EQ(BackoffSeconds(retry, 2, nullptr), 0.08);
  EXPECT_DOUBLE_EQ(BackoffSeconds(retry, 10, nullptr), 0.02 * 1024.0);
}

TEST(BackoffSeconds, JitterAtMaxBackoffStaysBoundedAndDeterministic) {
  RetryOptions retry;
  retry.backoff_base_s = 0.02;
  retry.backoff_multiplier = 2.0;
  retry.jitter_fraction = 0.5;
  // Attempt 30 is far past any real retry budget — the max-backoff
  // regime where a jitter bug (overflow, sign flip) would surface.
  const double nominal = 0.02 * std::pow(2.0, 30.0);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const double backoff = BackoffSeconds(retry, 30, &rng);
    EXPECT_GE(backoff, nominal * 0.5);
    EXPECT_LE(backoff, nominal * 1.5);
  }
  // Bitwise determinism: same seed, same draw sequence.
  Rng a(11), b(11);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(BackoffSeconds(retry, i, &a), BackoffSeconds(retry, i, &b));
  }
}

// --- Wall-clock boundary cases of the retry budget. ---

TEST_F(RetryTest, ZeroRetryBudgetIsASingleTryWithCleanRescind) {
  Build({1e9});
  ASSERT_TRUE(path_->SetupConnection(1, 1e5));
  Rng rng(6);
  RetryOptions retry;
  retry.max_retries = 0;  // one shot, no backoff ever drawn
  retry.jitter_fraction = 0;
  ChannelConditions outage;
  outage.extra_loss_probability = 1.0;
  LossyChannelOptions channel;
  channel.conditions = &outage;
  RetryingRenegotiator source(path_.get(), 1, 1e5, retry, channel, &rng);
  const RenegotiationOutcome out = source.Renegotiate(5e5, 0.0);
  EXPECT_FALSE(out.accepted);
  EXPECT_TRUE(out.timed_out);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(source.stats().retries, 0);
  EXPECT_EQ(source.stats().abandoned, 1);
  // The budget was exactly one timeout wait: no backoff in the latency.
  EXPECT_DOUBLE_EQ(out.latency_s, retry.timeout_s);
  EXPECT_DOUBLE_EQ(ports_[0]->TrackedRate(1), 1e5);
  EXPECT_DOUBLE_EQ(source.MaxAbsDriftBps(), 0.0);
}

TEST_F(RetryTest, ResponseAtTheExactDeadlineIsAccepted) {
  // The deadline comparison is rtt <= timeout: a response landing on the
  // boundary is a grant, one epsilon past it is a timeout.
  Build({1e9}, /*per_hop_delay_s=*/0.025);
  ASSERT_TRUE(path_->SetupConnection(1, 1e5));
  Rng rng(8);
  RetryOptions retry;
  retry.timeout_s = path_->RoundTripSeconds();  // boundary, exactly
  retry.max_retries = 0;
  retry.jitter_fraction = 0;
  LossyChannelOptions channel;
  RetryingRenegotiator source(path_.get(), 1, 1e5, retry, channel, &rng);
  const RenegotiationOutcome out = source.Renegotiate(5e5, 0.0);
  EXPECT_TRUE(out.accepted);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(source.stats().timeouts, 0);

  // Now push the delivery one whisker past the deadline: lost-late.
  ChannelConditions spike;
  spike.extra_delay_s = 1e-9;
  LossyChannelOptions late_channel;
  late_channel.conditions = &spike;
  RetryingRenegotiator late(path_.get(), 1, source.granted_rate_bps(), retry,
                            late_channel, &rng);
  const RenegotiationOutcome out2 = late.Renegotiate(1e5, 1.0);
  EXPECT_FALSE(out2.accepted);
  EXPECT_TRUE(out2.timed_out);
  EXPECT_EQ(late.stats().timeouts, 1);
  // The lost-late grant was rescinded: no drift anywhere.
  EXPECT_DOUBLE_EQ(late.MaxAbsDriftBps(), 0.0);
}

// --- The acked-rung discipline (crash-during-pending-upgrade gap). ---

TEST_F(RetryTest, TimedOutUpgradeProbeKeepsTheWaiterSeat) {
  Build({1e9});
  ASSERT_TRUE(path_->SetupConnection(1, 1e5, /*rung=*/2));
  ASSERT_TRUE(ports_[0]->IsUpgradeWaiter(1));
  Rng rng(9);
  RetryOptions retry;
  retry.max_retries = 1;
  retry.jitter_fraction = 0;
  ChannelConditions outage;
  outage.extra_loss_probability = 1.0;
  LossyChannelOptions channel;
  channel.conditions = &outage;
  RetryingRenegotiator source(path_.get(), 1, 1e5, retry, channel, &rng);
  source.set_rung(2);

  // Probe toward full resolution without committing to it.
  source.SetRequestedRung(0);
  const RenegotiationOutcome out = source.Renegotiate(4e5, 0.0);
  EXPECT_FALSE(out.accepted);
  // Every timeout rescinded with a resync carrying the *acknowledged*
  // rung 2 — not the probe's rung 0, which would have silently removed
  // the call from the upgrade queue while it is still degraded.
  EXPECT_EQ(source.acked_rung(), 2u);
  EXPECT_TRUE(ports_[0]->IsUpgradeWaiter(1));
  EXPECT_DOUBLE_EQ(ports_[0]->TrackedRate(1), 1e5);
}

TEST_F(RetryTest, GrantedUpgradeProbePromotesTheAckedRung) {
  Build({1e9});
  ASSERT_TRUE(path_->SetupConnection(1, 1e5, /*rung=*/2));
  Rng rng(10);
  LossyChannelOptions channel;  // lossless
  RetryingRenegotiator source(path_.get(), 1, 1e5, {}, channel, &rng);
  source.set_rung(2);
  source.SetRequestedRung(0);
  const RenegotiationOutcome out = source.Renegotiate(4e5, 0.0);
  EXPECT_TRUE(out.accepted);
  EXPECT_EQ(source.acked_rung(), 0u);
  EXPECT_EQ(source.rung(), 0u);
  // Rung 0 means fully promoted: the waiter seat is gone.
  EXPECT_FALSE(ports_[0]->IsUpgradeWaiter(1));
}

TEST_F(RetryTest, CrashDuringPendingUpgradeResyncRebuildsTheAckedRung) {
  Build({1e9});
  ASSERT_TRUE(path_->SetupConnection(1, 1e5, /*rung=*/1));
  Rng rng(12);
  RetryOptions retry;
  retry.max_retries = 0;
  retry.jitter_fraction = 0;
  ChannelConditions outage;
  LossyChannelOptions channel;
  channel.conditions = &outage;
  RetryingRenegotiator source(path_.get(), 1, 1e5, retry, channel, &rng);
  source.set_rung(1);

  // The controller crashes while an upgrade probe is pending (probe
  // requested, response never to come because the table is gone).
  source.SetRequestedRung(0);
  ports_[0]->CrashRestart();
  EXPECT_FALSE(ports_[0]->IsUpgradeWaiter(1));  // crash wiped the seat
  outage.extra_loss_probability = 1.0;
  const RenegotiationOutcome out = source.Renegotiate(4e5, 0.0);
  EXPECT_FALSE(out.accepted);

  // The repair resync rebuilds the contract at the acknowledged rung —
  // the call is a rung-1 waiter again, not a phantom rung-0 call.
  outage.extra_loss_probability = 0.0;
  source.Resync(1.0);
  EXPECT_DOUBLE_EQ(ports_[0]->TrackedRate(1), 1e5);
  EXPECT_TRUE(ports_[0]->IsUpgradeWaiter(1));
  EXPECT_EQ(source.acked_rung(), 1u);
  // The still-pending probe remains pending: requested rung unchanged.
  EXPECT_EQ(source.rung(), 0u);
}

}  // namespace
}  // namespace rcbr::signaling
