// VciTable vs std::unordered_map differential and edge cases. The table
// replaces the per-port audit map on the tracked signaling path; it must
// behave exactly like a map from VCI to rate under any insert / update /
// erase interleaving, across growth and backshift deletion.
#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "signaling/vci_table.h"
#include "util/rng.h"

namespace rcbr::signaling {
namespace {

TEST(VciTable, UpsertFindErase) {
  VciTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.Find(7), nullptr);
  EXPECT_FALSE(table.Erase(7));

  table.Upsert(7) = 3.5;
  ASSERT_NE(table.Find(7), nullptr);
  EXPECT_EQ(*table.Find(7), 3.5);
  EXPECT_EQ(table.size(), 1u);

  table.Upsert(7) += 1.0;  // update, not duplicate
  EXPECT_EQ(*table.Find(7), 4.5);
  EXPECT_EQ(table.size(), 1u);

  EXPECT_EQ(table.Upsert(8), 0.0);  // absent key inserts zero
  EXPECT_EQ(table.size(), 2u);

  EXPECT_TRUE(table.Erase(7));
  EXPECT_EQ(table.Find(7), nullptr);
  EXPECT_FALSE(table.Erase(7));
  EXPECT_EQ(table.size(), 1u);
  ASSERT_NE(table.Find(8), nullptr);
  EXPECT_EQ(*table.Find(8), 0.0);
}

TEST(VciTable, ClearEmptiesAndStaysUsable) {
  VciTable table;
  for (std::uint64_t v = 1; v <= 100; ++v) table.Upsert(v) = double(v);
  table.Clear();
  EXPECT_TRUE(table.empty());
  for (std::uint64_t v = 1; v <= 100; ++v) EXPECT_EQ(table.Find(v), nullptr);
  table.Upsert(5) = 2.0;
  EXPECT_EQ(*table.Find(5), 2.0);
  EXPECT_EQ(table.size(), 1u);
}

TEST(VciTable, GrowthPreservesEntries) {
  VciTable table;
  // Way past any initial capacity; sequential ids like the simulator's.
  for (std::uint64_t v = 1; v <= 5000; ++v) table.Upsert(v) = double(v) * 0.5;
  EXPECT_EQ(table.size(), 5000u);
  for (std::uint64_t v = 1; v <= 5000; ++v) {
    ASSERT_NE(table.Find(v), nullptr) << v;
    EXPECT_EQ(*table.Find(v), double(v) * 0.5) << v;
  }
}

TEST(VciTable, ReserveIsBehaviorNeutral) {
  VciTable bare;
  VciTable reserved;
  reserved.Reserve(1000);
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    bare.Upsert(v) = double(v);
    reserved.Upsert(v) = double(v);
  }
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    EXPECT_EQ(*bare.Find(v), *reserved.Find(v));
  }
  EXPECT_EQ(bare.size(), reserved.size());
}

TEST(VciTable, BackshiftDeletionKeepsProbeChainsIntact) {
  // Adversarial-ish: erase from the middle of long probe chains, then
  // verify every remaining key is still findable (a tombstone-free table
  // with a backshift bug would orphan keys displaced past the hole).
  VciTable table;
  std::vector<std::uint64_t> keys;
  for (std::uint64_t v = 1; v <= 512; ++v) keys.push_back(v * 0x10001ull);
  for (std::uint64_t k : keys) table.Upsert(k) = double(k & 0xffff);
  for (std::size_t i = 0; i < keys.size(); i += 3) table.Erase(keys[i]);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i % 3 == 0) {
      EXPECT_EQ(table.Find(keys[i]), nullptr) << i;
    } else {
      ASSERT_NE(table.Find(keys[i]), nullptr) << i;
      EXPECT_EQ(*table.Find(keys[i]), double(keys[i] & 0xffff)) << i;
    }
  }
}

TEST(VciTable, RandomizedDifferentialAgainstUnorderedMap) {
  Rng rng(7);
  for (int trial = 0; trial < 4; ++trial) {
    VciTable table;
    std::unordered_map<std::uint64_t, double> model;
    for (int op = 0; op < 20000; ++op) {
      // Small key universe forces heavy update/erase/reinsert collisions.
      const auto vci =
          static_cast<std::uint64_t>(rng.Uniform(1.0, 400.0));
      const double action = rng.Uniform(0.0, 1.0);
      if (action < 0.55) {
        const double delta = rng.Uniform(-5.0, 5.0);
        table.Upsert(vci) += delta;
        model[vci] += delta;
      } else if (action < 0.8) {
        EXPECT_EQ(table.Erase(vci), model.erase(vci) > 0);
      } else {
        const double* found = table.Find(vci);
        const auto it = model.find(vci);
        if (it == model.end()) {
          EXPECT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(*found, it->second);
        }
      }
      EXPECT_EQ(table.size(), model.size());
    }
    for (const auto& [vci, rate] : model) {
      ASSERT_NE(table.Find(vci), nullptr);
      EXPECT_EQ(*table.Find(vci), rate);
    }
  }
}

}  // namespace
}  // namespace rcbr::signaling
