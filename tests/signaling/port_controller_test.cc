#include "signaling/port_controller.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr::signaling {
namespace {

TEST(PortController, RejectsNonPositiveCapacity) {
  EXPECT_THROW(PortController(0.0), InvalidArgument);
  EXPECT_THROW(PortController(-5.0), InvalidArgument);
}

TEST(PortController, AdmitAndRelease) {
  PortController port(10.0);
  EXPECT_TRUE(port.AdmitConnection(1, 6.0));
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 6.0);
  EXPECT_DOUBLE_EQ(port.available_bps(), 4.0);
  EXPECT_FALSE(port.AdmitConnection(2, 5.0));
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 6.0);  // rejected adds nothing
  port.ReleaseConnection(1);
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 0.0);
}

TEST(PortController, DeltaIncreaseWithinCapacity) {
  PortController port(10.0);
  port.AdmitConnection(1, 4.0);
  const CellVerdict v = port.Handle(RmCell::Delta(1, 3.0), 0.0);
  EXPECT_TRUE(v.accepted);
  EXPECT_DOUBLE_EQ(v.granted_delta_bps, 3.0);
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 7.0);
  EXPECT_EQ(port.stats().delta_accepted, 1);
}

TEST(PortController, DeltaIncreaseDeniedWhenFull) {
  PortController port(10.0);
  port.AdmitConnection(1, 9.0);
  const CellVerdict v = port.Handle(RmCell::Delta(1, 2.0), 0.0);
  EXPECT_FALSE(v.accepted);
  EXPECT_DOUBLE_EQ(v.granted_delta_bps, 0.0);
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 9.0);
  EXPECT_EQ(port.stats().delta_denied, 1);
}

TEST(PortController, DecreaseAlwaysAccepted) {
  PortController port(10.0);
  port.AdmitConnection(1, 9.0);
  const CellVerdict v = port.Handle(RmCell::Delta(1, -4.0), 0.0);
  EXPECT_TRUE(v.accepted);
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 5.0);
}

TEST(PortController, UtilizationNeverNegative) {
  PortController port(10.0);
  port.AdmitConnection(1, 2.0);
  port.Handle(RmCell::Delta(1, -5.0), 0.0);
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 0.0);
}

TEST(PortController, ExactFitAccepted) {
  PortController port(10.0);
  port.AdmitConnection(1, 4.0);
  EXPECT_TRUE(port.Handle(RmCell::Delta(1, 6.0), 0.0).accepted);
  EXPECT_DOUBLE_EQ(port.available_bps(), 0.0);
}

TEST(PortController, TracksPerConnectionRate) {
  PortController port(10.0);
  port.AdmitConnection(7, 3.0);
  port.Handle(RmCell::Delta(7, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(port.TrackedRate(7), 5.0);
  EXPECT_DOUBLE_EQ(port.TrackedRate(8), 0.0);
}

TEST(PortController, ResyncCorrectsDrift) {
  // A lost delta cell (simulated by corrupting the aggregate) makes the
  // port believe less utilization than reality; resync repairs both the
  // per-VCI view and the aggregate.
  PortController port(10.0);
  port.AdmitConnection(1, 4.0);
  port.CorruptUtilization(-2.0);  // aggregate now 2.0, truth 4.0
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 2.0);
  // Resync claims the connection truly runs at 4.0; the port believed 4.0
  // per-VCI, so only the believed-vs-claimed difference is applied: the
  // per-VCI table said 4.0 -> no aggregate change from this connection.
  port.Handle(RmCell::Resync(1, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(port.TrackedRate(1), 4.0);
  EXPECT_EQ(port.stats().resyncs, 1);
}

TEST(PortController, ResyncAfterLostDeltaRestoresAggregate) {
  PortController port(10.0);
  port.AdmitConnection(1, 4.0);
  // The source renegotiated to 6.0 but the delta cell never arrived: the
  // port still believes 4.0. Resync with the true rate fixes it.
  port.Handle(RmCell::Resync(1, 6.0), 0.0);
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 6.0);
  EXPECT_DOUBLE_EQ(port.TrackedRate(1), 6.0);
}

TEST(PortController, UntrackedModeUsesHint) {
  PortController port(10.0, /*track_connections=*/false);
  port.AdmitConnection(1, 4.0);
  port.ReleaseConnection(1, 4.0);
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 0.0);
}

TEST(PortController, AdmitRejectsNegativeRate) {
  PortController port(10.0);
  EXPECT_THROW(port.AdmitConnection(1, -1.0), InvalidArgument);
}

TEST(PortController, DecisionIsO1StateOnly) {
  // The scaling argument: accept/deny depends only on aggregate
  // utilization, not on which connections hold it.
  PortController a(10.0);
  PortController b(10.0);
  a.AdmitConnection(1, 8.0);
  for (std::uint64_t v = 1; v <= 8; ++v) b.AdmitConnection(100 + v, 1.0);
  EXPECT_EQ(a.Handle(RmCell::Delta(1, 3.0), 0.0).accepted,
            b.Handle(RmCell::Delta(101, 3.0), 0.0).accepted);
  EXPECT_EQ(a.Handle(RmCell::Delta(1, 2.0), 0.0).accepted,
            b.Handle(RmCell::Delta(101, 2.0), 0.0).accepted);
}

}  // namespace
}  // namespace rcbr::signaling
