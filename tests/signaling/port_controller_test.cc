#include "signaling/port_controller.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr::signaling {
namespace {

TEST(PortController, RejectsNonPositiveCapacity) {
  EXPECT_THROW(PortController(0.0), InvalidArgument);
  EXPECT_THROW(PortController(-5.0), InvalidArgument);
}

TEST(PortController, AdmitAndRelease) {
  PortController port(10.0);
  EXPECT_TRUE(port.AdmitConnection(1, 6.0));
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 6.0);
  EXPECT_DOUBLE_EQ(port.available_bps(), 4.0);
  EXPECT_FALSE(port.AdmitConnection(2, 5.0));
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 6.0);  // rejected adds nothing
  port.ReleaseConnection(1);
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 0.0);
}

TEST(PortController, DeltaIncreaseWithinCapacity) {
  PortController port(10.0);
  port.AdmitConnection(1, 4.0);
  const CellVerdict v = port.Handle(RmCell::Delta(1, 3.0), 0.0);
  EXPECT_TRUE(v.accepted);
  EXPECT_DOUBLE_EQ(v.granted_delta_bps, 3.0);
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 7.0);
  EXPECT_EQ(port.stats().delta_accepted, 1);
}

TEST(PortController, DeltaIncreaseDeniedWhenFull) {
  PortController port(10.0);
  port.AdmitConnection(1, 9.0);
  const CellVerdict v = port.Handle(RmCell::Delta(1, 2.0), 0.0);
  EXPECT_FALSE(v.accepted);
  EXPECT_DOUBLE_EQ(v.granted_delta_bps, 0.0);
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 9.0);
  EXPECT_EQ(port.stats().delta_denied, 1);
}

TEST(PortController, DecreaseAlwaysAccepted) {
  PortController port(10.0);
  port.AdmitConnection(1, 9.0);
  const CellVerdict v = port.Handle(RmCell::Delta(1, -4.0), 0.0);
  EXPECT_TRUE(v.accepted);
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 5.0);
}

TEST(PortController, UtilizationNeverNegative) {
  PortController port(10.0);
  port.AdmitConnection(1, 2.0);
  port.Handle(RmCell::Delta(1, -5.0), 0.0);
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 0.0);
}

TEST(PortController, ExactFitAccepted) {
  PortController port(10.0);
  port.AdmitConnection(1, 4.0);
  EXPECT_TRUE(port.Handle(RmCell::Delta(1, 6.0), 0.0).accepted);
  EXPECT_DOUBLE_EQ(port.available_bps(), 0.0);
}

TEST(PortController, TracksPerConnectionRate) {
  PortController port(10.0);
  port.AdmitConnection(7, 3.0);
  port.Handle(RmCell::Delta(7, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(port.TrackedRate(7), 5.0);
  EXPECT_DOUBLE_EQ(port.TrackedRate(8), 0.0);
}

TEST(PortController, ResyncCorrectsDrift) {
  // A lost delta cell (simulated by corrupting the aggregate) makes the
  // port believe less utilization than reality; resync repairs both the
  // per-VCI view and the aggregate.
  PortController port(10.0);
  port.AdmitConnection(1, 4.0);
  port.CorruptUtilization(-2.0);  // aggregate now 2.0, truth 4.0
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 2.0);
  // Resync claims the connection truly runs at 4.0; the port believed 4.0
  // per-VCI, so only the believed-vs-claimed difference is applied: the
  // per-VCI table said 4.0 -> no aggregate change from this connection.
  port.Handle(RmCell::Resync(1, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(port.TrackedRate(1), 4.0);
  EXPECT_EQ(port.stats().resyncs, 1);
}

TEST(PortController, ResyncAfterLostDeltaRestoresAggregate) {
  PortController port(10.0);
  port.AdmitConnection(1, 4.0);
  // The source renegotiated to 6.0 but the delta cell never arrived: the
  // port still believes 4.0. Resync with the true rate fixes it.
  port.Handle(RmCell::Resync(1, 6.0), 0.0);
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 6.0);
  EXPECT_DOUBLE_EQ(port.TrackedRate(1), 6.0);
}

TEST(PortController, UntrackedModeUsesHint) {
  PortController port(10.0, /*track_connections=*/false);
  port.AdmitConnection(1, 4.0);
  port.ReleaseConnection(1, 4.0);
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 0.0);
}

TEST(PortController, AdmitRejectsNegativeRate) {
  PortController port(10.0);
  EXPECT_THROW(port.AdmitConnection(1, -1.0), InvalidArgument);
}

TEST(PortController, RejectsNaNArguments) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(PortController{nan}, InvalidArgument);
  EXPECT_THROW((PortController(10.0, true, nullptr, nan)), InvalidArgument);
  EXPECT_THROW((PortController(10.0, true, nullptr, -1.0)), InvalidArgument);
  PortController port(10.0);
  port.AdmitConnection(1, 4.0);
  EXPECT_THROW(port.Handle(RmCell::Delta(1, nan), 0.0), InvalidArgument);
  EXPECT_THROW(port.Handle(RmCell::Resync(1, nan), 0.0), InvalidArgument);
  EXPECT_THROW(port.AdmitConnection(2, nan), InvalidArgument);
}

TEST(PortController, ToleranceBoundaryIsExact) {
  // Accept iff utilization + delta <= capacity + tolerance: the exact
  // boundary is accepted, one ULP past it is denied.
  const double tolerance = 1e-9;
  const double boundary = 10.0 + tolerance;
  PortController port(10.0, true, nullptr, tolerance);
  port.AdmitConnection(1, 0.0);
  EXPECT_TRUE(port.Handle(RmCell::Delta(1, boundary), 0.0).accepted);
  port.Handle(RmCell::Resync(1, 0.0), 0.0);
  const double just_over =
      std::nextafter(boundary, std::numeric_limits<double>::infinity());
  EXPECT_FALSE(port.Handle(RmCell::Delta(1, just_over), 0.0).accepted);
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 0.0);
}

TEST(PortController, DenormalDeltasDoNotBreakAccounting) {
  // Denormal-magnitude deltas must behave like any other number: exact
  // snapshot rollback, no flush-to-zero surprises in the audit map.
  const double tiny = std::numeric_limits<double>::denorm_min();
  PortController port(10.0);
  port.AdmitConnection(1, 0.0);
  const CellVerdict grant = port.Handle(RmCell::Delta(1, tiny), 0.0);
  EXPECT_TRUE(grant.accepted);
  EXPECT_EQ(port.TrackedRate(1), tiny);
  port.RollbackDelta(1, grant);
  EXPECT_EQ(port.TrackedRate(1), 0.0);
  EXPECT_EQ(port.utilization_bps(), 0.0);
}

TEST(PortController, RollbackDeltaRestoresSnapshotsByteExactly) {
  // (x + d) - d need not equal x in floating point; the rollback restores
  // the carried snapshots, so the port is bit-identical to before.
  PortController port(10.0);
  port.AdmitConnection(1, 0.1);
  port.Handle(RmCell::Delta(1, 0.2), 0.0);  // 0.1 + 0.2 != 0.3 exactly
  const double util_before = port.utilization_bps();
  const double rate_before = port.TrackedRate(1);
  const CellVerdict grant = port.Handle(RmCell::Delta(1, 0.7), 0.0);
  ASSERT_TRUE(grant.accepted);
  port.RollbackDelta(1, grant);
  EXPECT_EQ(port.utilization_bps(), util_before);
  EXPECT_EQ(port.TrackedRate(1), rate_before);
}

TEST(PortController, RollbackAdmitRestoresSnapshotByteExactly) {
  PortController port(10.0);
  port.AdmitConnection(1, 0.1);
  port.Handle(RmCell::Delta(1, 0.2), 0.0);
  const double util_before = port.utilization_bps();
  ASSERT_TRUE(port.AdmitConnection(2, 0.7));
  port.RollbackAdmit(2, util_before);
  EXPECT_EQ(port.utilization_bps(), util_before);
  EXPECT_EQ(port.TrackedRate(2), 0.0);
}

TEST(PortController, CrashRestartLosesEverythingUntilResync) {
  PortController port(10.0);
  port.AdmitConnection(1, 4.0);
  port.AdmitConnection(2, 3.0);
  port.CrashRestart();
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 0.0);
  EXPECT_DOUBLE_EQ(port.TrackedRate(1), 0.0);
  EXPECT_EQ(port.stats().crashes, 1);
  // The cold-start port over-admits until repaired...
  EXPECT_TRUE(port.Handle(RmCell::Delta(3, 9.0), 0.0).accepted);
  port.Handle(RmCell::Delta(3, -9.0), 0.0);
  // ...and absolute-rate resyncs reconstruct the exact pre-crash state.
  port.Handle(RmCell::Resync(1, 4.0), 0.0);
  port.Handle(RmCell::Resync(2, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 7.0);
  EXPECT_DOUBLE_EQ(port.TrackedRate(1), 4.0);
  EXPECT_DOUBLE_EQ(port.TrackedRate(2), 3.0);
}

TEST(PortController, DecisionIsO1StateOnly) {
  // The scaling argument: accept/deny depends only on aggregate
  // utilization, not on which connections hold it.
  PortController a(10.0);
  PortController b(10.0);
  a.AdmitConnection(1, 8.0);
  for (std::uint64_t v = 1; v <= 8; ++v) b.AdmitConnection(100 + v, 1.0);
  EXPECT_EQ(a.Handle(RmCell::Delta(1, 3.0), 0.0).accepted,
            b.Handle(RmCell::Delta(101, 3.0), 0.0).accepted);
  EXPECT_EQ(a.Handle(RmCell::Delta(1, 2.0), 0.0).accepted,
            b.Handle(RmCell::Delta(101, 2.0), 0.0).accepted);
}

TEST(UpgradeQueue, AdmitWithRungEnqueuesSortedByVci) {
  PortController port(100.0);
  EXPECT_TRUE(port.AdmitConnection(7, 10.0, 1));
  EXPECT_TRUE(port.AdmitConnection(3, 10.0, 2));
  EXPECT_TRUE(port.AdmitConnection(5, 10.0, 0));  // full ask: not waiting
  EXPECT_EQ(port.upgrade_waiters(), (std::vector<std::uint64_t>{3, 7}));
  EXPECT_TRUE(port.IsUpgradeWaiter(3));
  EXPECT_FALSE(port.IsUpgradeWaiter(5));
}

TEST(UpgradeQueue, ScalarTrafficNeverTouchesTheQueue) {
  PortController port(100.0);
  port.AdmitConnection(1, 10.0);
  port.Handle(RmCell::Delta(1, 5.0), 0.0);
  port.ReleaseConnection(1);
  EXPECT_TRUE(port.upgrade_waiters().empty());
}

TEST(UpgradeQueue, GrantedDeltaUpdatesWaiterStatus) {
  PortController port(100.0);
  port.AdmitConnection(1, 10.0, 1);
  // A granted cell at rung 0 is a completed promotion: leave the queue.
  EXPECT_TRUE(port.Handle(RmCell::Delta(1, 5.0, 0), 0.0).accepted);
  EXPECT_FALSE(port.IsUpgradeWaiter(1));
  // A granted cell carrying rung > 0 re-registers the wait (e.g. a
  // partial promotion from rung 2 to rung 1).
  EXPECT_TRUE(port.Handle(RmCell::Delta(1, 5.0, 1), 0.0).accepted);
  EXPECT_TRUE(port.IsUpgradeWaiter(1));
}

TEST(UpgradeQueue, DeniedDeltaLeavesQueueUntouched) {
  PortController port(20.0);
  port.AdmitConnection(1, 10.0, 1);
  EXPECT_FALSE(port.Handle(RmCell::Delta(1, 50.0, 0), 0.0).accepted);
  EXPECT_TRUE(port.IsUpgradeWaiter(1));
}

TEST(UpgradeQueue, RollbackRestoresWaiterMembership) {
  // All-or-nothing multi-hop promotion: this hop granted (removing the
  // waiter), a later hop denied, and the rollback must restore queue
  // membership byte-exactly along with the utilization.
  PortController port(100.0);
  port.AdmitConnection(1, 10.0, 1);
  const CellVerdict grant = port.Handle(RmCell::Delta(1, 5.0, 0), 0.0);
  ASSERT_TRUE(grant.accepted);
  EXPECT_TRUE(grant.waiter_before);
  EXPECT_FALSE(port.IsUpgradeWaiter(1));
  port.RollbackDelta(1, grant);
  EXPECT_TRUE(port.IsUpgradeWaiter(1));
  EXPECT_DOUBLE_EQ(port.utilization_bps(), 10.0);
}

TEST(UpgradeQueue, ReleaseAndRollbackAdmitDequeue) {
  PortController port(100.0);
  port.AdmitConnection(1, 10.0, 1);
  port.ReleaseConnection(1);
  EXPECT_FALSE(port.IsUpgradeWaiter(1));

  const double before = port.utilization_bps();
  port.AdmitConnection(2, 10.0, 2);
  port.RollbackAdmit(2, before);
  EXPECT_FALSE(port.IsUpgradeWaiter(2));
  EXPECT_TRUE(port.upgrade_waiters().empty());
}

TEST(UpgradeQueue, CrashWipesQueueAndResyncRebuildsIt) {
  PortController port(100.0);
  port.AdmitConnection(1, 10.0, 1);
  port.AdmitConnection(2, 10.0, 2);
  port.CrashRestart();
  EXPECT_TRUE(port.upgrade_waiters().empty());
  // The repair resync carries each connection's rung, so the queue comes
  // back with the reservations.
  port.Handle(RmCell::Resync(1, 10.0, 1), 1.0);
  port.Handle(RmCell::Resync(2, 10.0, 2), 1.0);
  EXPECT_EQ(port.upgrade_waiters(), (std::vector<std::uint64_t>{1, 2}));
  // A rung-0 resync (scalar or fully promoted call) does not enqueue.
  port.Handle(RmCell::Resync(1, 10.0, 0), 2.0);
  EXPECT_EQ(port.upgrade_waiters(), (std::vector<std::uint64_t>{2}));
}

}  // namespace
}  // namespace rcbr::signaling
