#include "obs/flight_recorder.h"

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

namespace rcbr::obs {
namespace {

TraceEvent Event(double t, std::uint64_t id) {
  return {t, EventKind::kRenegGrant, id};
}

TEST(FlightRecorder, KeepsOnlyTheNewestEvents) {
  FlightRecorder flight(3);
  for (int i = 0; i < 7; ++i) {
    flight.Record(Event(static_cast<double>(i), static_cast<std::uint64_t>(i)));
  }
  flight.Trigger(Event(99.0, 99));
  const std::vector<FlightDump> dumps = flight.Dumps();
  ASSERT_EQ(dumps.size(), 1u);
  // Oldest-to-newest snapshot of the last 3 of 7 recorded events.
  ASSERT_EQ(dumps[0].events.size(), 3u);
  EXPECT_EQ(dumps[0].events[0].id, 4u);
  EXPECT_EQ(dumps[0].events[1].id, 5u);
  EXPECT_EQ(dumps[0].events[2].id, 6u);
  EXPECT_EQ(dumps[0].trigger.id, 99u);
}

TEST(FlightRecorder, PartialRingDumpsInRecordOrder) {
  FlightRecorder flight(8);
  flight.Record(Event(1.0, 1));
  flight.Record(Event(2.0, 2));
  flight.Trigger(Event(3.0, 3));
  const std::vector<FlightDump> dumps = flight.Dumps();
  ASSERT_EQ(dumps.size(), 1u);
  ASSERT_EQ(dumps[0].events.size(), 2u);
  EXPECT_EQ(dumps[0].events[0].id, 1u);
  EXPECT_EQ(dumps[0].events[1].id, 2u);
}

TEST(FlightRecorder, CapsDumpsAndCountsSuppressedTriggers) {
  FlightRecorder flight(2, /*max_dumps=*/2);
  flight.Record(Event(0.0, 0));
  for (int i = 0; i < 5; ++i) {
    flight.Trigger(Event(static_cast<double>(i), 10 + i));
  }
  EXPECT_EQ(flight.Dumps().size(), 2u);
  EXPECT_EQ(flight.suppressed(), 3);
  // The kept dumps are the first two triggers, in order.
  EXPECT_EQ(flight.Dumps()[0].trigger.id, 10u);
  EXPECT_EQ(flight.Dumps()[1].trigger.id, 11u);
}

TEST(FlightRecorder, RecordingContinuesBetweenTriggers) {
  FlightRecorder flight(2);
  flight.Record(Event(1.0, 1));
  flight.Trigger(Event(2.0, 2));
  flight.Record(Event(3.0, 3));
  flight.Record(Event(4.0, 4));
  flight.Trigger(Event(5.0, 5));
  const std::vector<FlightDump> dumps = flight.Dumps();
  ASSERT_EQ(dumps.size(), 2u);
  // The first dump is unaffected by later recording.
  ASSERT_EQ(dumps[0].events.size(), 1u);
  EXPECT_EQ(dumps[0].events[0].id, 1u);
  ASSERT_EQ(dumps[1].events.size(), 2u);
  EXPECT_EQ(dumps[1].events[0].id, 3u);
  EXPECT_EQ(dumps[1].events[1].id, 4u);
}

TEST(AppendFlightJsonl, EmitsHeaderEventAndSuppressedLines) {
  FlightRecorder flight(2, /*max_dumps=*/1);
  flight.Record({1.0, EventKind::kRenegGrant, 7, {{{"new_bps", 64.0}}}});
  flight.Trigger({2.0, EventKind::kLinkDown, 0});
  flight.Trigger({3.0, EventKind::kLinkDown, 1});  // suppressed

  std::string out;
  AppendFlightJsonl(4, flight.Dumps(), flight.suppressed(), out);
  EXPECT_NE(out.find("{\"point\": 4, \"dump\": 0, \"window\": 1, "
                     "\"trigger\": \"link_down\", \"t\": 2, \"id\": 0}"),
            std::string::npos);
  EXPECT_NE(out.find("\"event\": \"reneg_grant\""), std::string::npos);
  EXPECT_NE(out.find("\"new_bps\": 64"), std::string::npos);
  EXPECT_NE(out.find("{\"point\": 4, \"event\": \"flight_dumps_suppressed\", "
                     "\"suppressed\": 1}"),
            std::string::npos);
  // One header + one ring event + one trailer = three lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(AppendFlightJsonl, NothingForAnUntriggeredRecorder) {
  FlightRecorder flight(4);
  flight.Record(Event(1.0, 1));
  std::string out;
  AppendFlightJsonl(0, flight.Dumps(), flight.suppressed(), out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace rcbr::obs
