#include "obs/log_histogram.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace rcbr::obs {
namespace {

TEST(LogHistogram, BucketBoundariesTileTheOctaves) {
  // Every bucket is [2^(e-1)(1+k/8), 2^(e-1)(1+(k+1)/8)): adjacent keys
  // share an endpoint, and a key's own bounds bracket its members.
  for (std::int32_t key = -64; key < 64; ++key) {
    const double lower = LogHistogram::BucketLowerBound(key);
    const double upper = LogHistogram::BucketUpperBound(key);
    EXPECT_LT(lower, upper);
    EXPECT_EQ(upper, LogHistogram::BucketLowerBound(key + 1));
    EXPECT_EQ(LogHistogram::BucketKey(lower), key);
    // The midpoint stays inside; the upper bound belongs to the next key.
    EXPECT_EQ(LogHistogram::BucketKey((lower + upper) / 2), key);
    EXPECT_EQ(LogHistogram::BucketKey(upper), key + 1);
  }
}

TEST(LogHistogram, BucketWidthBoundsRelativeError) {
  // 8 sub-buckets per octave: upper/lower <= 1 + 1/8 everywhere, so a
  // quantile reported as a bucket bound is within 12.5% of the truth.
  for (std::int32_t key = -64; key < 64; ++key) {
    const double ratio = LogHistogram::BucketUpperBound(key) /
                         LogHistogram::BucketLowerBound(key);
    EXPECT_LE(ratio, 1.0 + 1.0 / 8 + 1e-12);
  }
}

TEST(LogHistogram, PowersOfTwoLandOnBucketStarts) {
  for (int e = -10; e <= 10; ++e) {
    const double v = std::ldexp(1.0, e);
    EXPECT_EQ(LogHistogram::BucketLowerBound(LogHistogram::BucketKey(v)), v);
  }
}

TEST(LogHistogram, RecordTracksExactExtremaAndSum) {
  LogHistogram h;
  h.Record(3.0);
  h.Record(0.125);
  h.Record(700.0, 2);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.value().min, 0.125);
  EXPECT_EQ(h.value().max, 700.0);
  EXPECT_EQ(h.value().sum, 3.0 + 0.125 + 2 * 700.0);
  EXPECT_EQ(h.value().underflow, 0);
}

TEST(LogHistogram, NonPositiveAndNonFiniteGoToUnderflow) {
  LogHistogram h;
  h.Record(0.0);
  h.Record(-5.0);
  h.Record(std::numeric_limits<double>::quiet_NaN());
  h.Record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.value().underflow, 4);
  EXPECT_TRUE(h.value().buckets.empty());
  // Zero-or-negative counts are ignored entirely.
  h.Record(1.0, 0);
  h.Record(1.0, -3);
  EXPECT_EQ(h.count(), 4);
}

TEST(LogHistogram, QuantileEdgeCases) {
  LogHistogram empty;
  EXPECT_EQ(empty.Quantile(0.5), 0.0);

  LogHistogram h;
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<double>(i));
  // q<=0 and q>=1 clamp to the exact extrema, as does NaN.
  EXPECT_EQ(h.Quantile(0.0), 1.0);
  EXPECT_EQ(h.Quantile(-1.0), 1.0);
  EXPECT_EQ(h.Quantile(1.0), 100.0);
  EXPECT_EQ(h.Quantile(2.0), 100.0);
  EXPECT_EQ(h.Quantile(std::numeric_limits<double>::quiet_NaN()), 1.0);
  // Interior quantiles are conservative: within one bucket (12.5%) above.
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 50.0);
  EXPECT_LE(p50, 50.0 * 1.125);
  // A single-value histogram answers that value at every quantile.
  LogHistogram one;
  one.Record(42.0, 7);
  EXPECT_EQ(one.Quantile(0.01), 42.0);
  EXPECT_EQ(one.Quantile(0.99), 42.0);
}

TEST(LogHistogram, QuantileCountsUnderflowBelowEverything) {
  LogHistogram h;
  h.Record(-1.0, 9);  // underflow
  h.Record(8.0);
  EXPECT_EQ(h.Quantile(0.5), -1.0);  // clamped to exact min
  EXPECT_EQ(h.Quantile(1.0), 8.0);
}

LogHistogramValue ValueOf(const std::vector<double>& values) {
  LogHistogram h;
  for (double v : values) h.Record(v);
  return h.value();
}

TEST(LogHistogramValue, MergeIsExactlyAssociative) {
  const LogHistogramValue a = ValueOf({0.1, 2.5, 2.6});
  const LogHistogramValue b = ValueOf({-1.0, 700.0});
  const LogHistogramValue c = ValueOf({2.5, 0.003, 9e9});

  LogHistogramValue ab = a;
  ab.Merge(b);
  LogHistogramValue ab_c = ab;
  ab_c.Merge(c);

  LogHistogramValue bc = b;
  bc.Merge(c);
  LogHistogramValue a_bc = a;
  a_bc.Merge(bc);

  EXPECT_EQ(ab_c.count, a_bc.count);
  EXPECT_EQ(ab_c.underflow, a_bc.underflow);
  EXPECT_EQ(ab_c.min, a_bc.min);
  EXPECT_EQ(ab_c.max, a_bc.max);
  EXPECT_EQ(ab_c.buckets, a_bc.buckets);
  // And merging equals recording the concatenation (integer bucket
  // counts; the float sum is also equal here because the merge adds
  // per-histogram sums in the same grouping).
  const LogHistogramValue all =
      ValueOf({0.1, 2.5, 2.6, -1.0, 700.0, 2.5, 0.003, 9e9});
  EXPECT_EQ(ab_c.count, all.count);
  EXPECT_EQ(ab_c.buckets, all.buckets);
}

TEST(LogHistogramValue, MergeWithEmptyIsIdentity) {
  const LogHistogramValue a = ValueOf({1.0, 2.0, 3.0});
  LogHistogramValue merged = a;
  merged.Merge(LogHistogramValue{});
  EXPECT_EQ(merged.count, a.count);
  EXPECT_EQ(merged.min, a.min);
  EXPECT_EQ(merged.max, a.max);
  EXPECT_EQ(merged.buckets, a.buckets);

  LogHistogramValue onto_empty;
  onto_empty.Merge(a);
  EXPECT_EQ(onto_empty.count, a.count);
  EXPECT_EQ(onto_empty.min, a.min);
  EXPECT_EQ(onto_empty.buckets, a.buckets);
}

TEST(LogHistogram, HistogramMergeMatchesValueMerge) {
  LogHistogram a;
  a.Record(0.25);
  a.Record(17.0);
  LogHistogram b;
  b.Record(0.25, 3);
  LogHistogramValue expected = a.value();
  expected.Merge(b.value());
  a.Merge(b);
  EXPECT_EQ(a.value().count, expected.count);
  EXPECT_EQ(a.value().buckets, expected.buckets);
  // 4 of 5 samples sit in 0.25's bucket; the median answer is that
  // bucket's upper bound, one sub-bucket (12.5%) above the true 0.25.
  EXPECT_GE(a.Quantile(0.5), 0.25);
  EXPECT_LE(a.Quantile(0.5), 0.25 * 1.125);
}

}  // namespace
}  // namespace rcbr::obs
