#include "obs/event_trace.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/recorder.h"
#include "obs/scoped_timer.h"

namespace rcbr::obs {
namespace {

TraceEvent MakeEvent(double time, std::uint64_t id) {
  return {time, EventKind::kRenegGrant, id,
          {{{"old_bps", 100.0}, {"new_bps", 200.0}, {nullptr, 0.0}}}};
}

TEST(EventKindName, WireNamesAreStable) {
  EXPECT_STREQ(EventKindName(EventKind::kRenegRequest), "reneg_request");
  EXPECT_STREQ(EventKindName(EventKind::kRenegGrant), "reneg_grant");
  EXPECT_STREQ(EventKindName(EventKind::kRenegDeny), "reneg_deny");
  EXPECT_STREQ(EventKindName(EventKind::kBufferOverflow), "buffer_overflow");
  EXPECT_STREQ(EventKindName(EventKind::kBufferUnderflow),
               "buffer_underflow");
  EXPECT_STREQ(EventKindName(EventKind::kAdmitAccept), "admit_accept");
  EXPECT_STREQ(EventKindName(EventKind::kAdmitReject), "admit_reject");
  EXPECT_STREQ(EventKindName(EventKind::kCallDeparture), "call_departure");
  EXPECT_STREQ(EventKindName(EventKind::kRmCellLoss), "rm_cell_loss");
  EXPECT_STREQ(EventKindName(EventKind::kResync), "resync");
  EXPECT_STREQ(EventKindName(EventKind::kDpPrune), "dp_prune");
}

TEST(EventTracer, KeepsFirstCapacityEventsAndCountsDrops) {
  EventTracer tracer(3);
  for (int i = 0; i < 5; ++i) {
    tracer.Record(MakeEvent(static_cast<double>(i), i));
  }
  EXPECT_EQ(tracer.dropped(), 2);
  const std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 3u);
  // Drop-newest: the retained prefix is the first three records.
  EXPECT_DOUBLE_EQ(events[0].time, 0.0);
  EXPECT_DOUBLE_EQ(events[2].time, 2.0);
  EXPECT_EQ(events[2].id, 2u);
}

TEST(EventTracer, ZeroCapacityDropsEverything) {
  EventTracer tracer(0);
  tracer.Record(MakeEvent(1.0, 1));
  EXPECT_EQ(tracer.dropped(), 1);
  EXPECT_TRUE(tracer.Events().empty());
}

TEST(EventTracer, AppendJsonlFormatsOneLinePerEvent) {
  EventTracer tracer(4);
  tracer.Record(MakeEvent(1.5, 7));
  tracer.Record({2.0, EventKind::kDpPrune, 3, {}});
  std::string out;
  tracer.AppendJsonl(2, out);
  EXPECT_EQ(out,
            "{\"point\": 2, \"seq\": 0, \"t\": 1.5, "
            "\"event\": \"reneg_grant\", \"id\": 7, "
            "\"old_bps\": 100, \"new_bps\": 200}\n"
            "{\"point\": 2, \"seq\": 1, \"t\": 2, "
            "\"event\": \"dp_prune\", \"id\": 3}\n");
}

TEST(EventTracer, FreeAppendJsonlMatchesMemberForm) {
  EventTracer tracer(4);
  tracer.Record(MakeEvent(0.25, 1));
  std::string via_member;
  tracer.AppendJsonl(0, via_member);
  std::string via_free;
  AppendJsonl(0, tracer.Events(), via_free);
  EXPECT_EQ(via_member, via_free);
}

TEST(Recorder, ZeroCapacityHasNoTracerAndEmitIsNoop) {
  Recorder recorder(0);
  EXPECT_EQ(recorder.tracer(), nullptr);
  recorder.Emit(MakeEvent(1.0, 1));  // must not crash
  Emit(&recorder, 2.0, EventKind::kResync, 5, {"believed_bps", 1e6});
}

TEST(Recorder, EmitLandsInTracer) {
  if constexpr (!kEnabled) GTEST_SKIP() << "RCBR_OBS=OFF";
  Recorder recorder(8);
  ASSERT_NE(recorder.tracer(), nullptr);
  Emit(&recorder, 3.0, EventKind::kRmCellLoss, 9, {"delta_bps", -5.0});
  const std::vector<TraceEvent> events = recorder.tracer()->Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].time, 3.0);
  EXPECT_EQ(events[0].kind, EventKind::kRmCellLoss);
  EXPECT_EQ(events[0].id, 9u);
  EXPECT_STREQ(events[0].fields[0].name, "delta_bps");
  EXPECT_DOUBLE_EQ(events[0].fields[0].value, -5.0);
}

TEST(RecorderHelpers, AreNullSafe) {
  EXPECT_EQ(FindCounter(nullptr, "x"), nullptr);
  Count(nullptr, "x");
  SetGauge(nullptr, "x", 1.0);
  Observe(nullptr, "x", {0.0, 1.0}, 0.5);
  Emit(nullptr, 0.0, EventKind::kResync, 0);
}

TEST(RecorderHelpers, UpdateMetricsWhenEnabled) {
  if constexpr (!kEnabled) GTEST_SKIP() << "RCBR_OBS=OFF";
  Recorder recorder;
  Count(&recorder, "c", 2);
  Count(&recorder, "c");
  SetGauge(&recorder, "g", 4.5);
  Observe(&recorder, "h", {0.0, 1.0}, 1.0, 2.0);
  Counter* c = FindCounter(&recorder, "c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 3);
  const MetricsSnapshot snap = recorder.metrics().Snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("g").last, 4.5);
  EXPECT_DOUBLE_EQ(snap.histograms.at("h").total_weight, 2.0);
}

TEST(ScopedTimer, AccumulatesPhaseProfile) {
  Recorder recorder;
  {
    const ScopedTimer t1(&recorder, "phase_a");
    const ScopedTimer t2(&recorder, "phase_a");
  }
  { const ScopedTimer ignored(nullptr, "phase_a"); }  // null-safe
  const auto profile = recorder.profile().Snapshot();
  if constexpr (!kEnabled) {
    EXPECT_TRUE(profile.empty());
    return;
  }
  ASSERT_TRUE(profile.contains("phase_a"));
  EXPECT_EQ(profile.at("phase_a").calls, 2);
  EXPECT_GE(profile.at("phase_a").seconds, 0.0);
}

TEST(PhaseProfile, MergeAddsCallsAndSeconds) {
  PhaseProfile a{2, 0.5};
  a.Merge(PhaseProfile{3, 0.25});
  EXPECT_EQ(a.calls, 5);
  EXPECT_DOUBLE_EQ(a.seconds, 0.75);
}

}  // namespace
}  // namespace rcbr::obs
