#include "obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr::obs {
namespace {

TEST(Counter, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(Counter, ParallelIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, TracksLastSumAndExtrema) {
  Gauge g;
  g.Set(3.0);
  g.Set(-1.0);
  g.Set(2.0);
  const GaugeValue v = g.value();
  EXPECT_EQ(v.count, 3);
  EXPECT_DOUBLE_EQ(v.last, 2.0);
  EXPECT_DOUBLE_EQ(v.sum, 4.0);
  EXPECT_DOUBLE_EQ(v.min, -1.0);
  EXPECT_DOUBLE_EQ(v.max, 3.0);
}

TEST(GaugeValue, MergeFoldsSequentially) {
  GaugeValue a;
  a.Observe(1.0);
  a.Observe(5.0);
  GaugeValue b;
  b.Observe(-2.0);
  a.Merge(b);
  EXPECT_EQ(a.count, 3);
  EXPECT_DOUBLE_EQ(a.last, -2.0);  // b's observations came after a's
  EXPECT_DOUBLE_EQ(a.sum, 4.0);
  EXPECT_DOUBLE_EQ(a.min, -2.0);
  EXPECT_DOUBLE_EQ(a.max, 5.0);
}

TEST(GaugeValue, MergeOfEmptyIsNoop) {
  GaugeValue a;
  a.Observe(7.0);
  a.Merge(GaugeValue{});
  EXPECT_EQ(a.count, 1);
  EXPECT_DOUBLE_EQ(a.last, 7.0);
}

TEST(MetricHistogram, ObservesOnNearestBucket) {
  MetricHistogram h({0.0, 10.0, 20.0});
  h.Observe(9.0);
  h.Observe(11.0, 2.0);
  const HistogramValue v = h.value();
  EXPECT_DOUBLE_EQ(v.weights[1], 3.0);
  EXPECT_DOUBLE_EQ(v.total_weight, 3.0);
}

TEST(HistogramValue, MergeRequiresSameGrid) {
  MetricHistogram a({0.0, 1.0});
  MetricHistogram b({0.0, 2.0});
  HistogramValue va = a.value();
  EXPECT_THROW(va.Merge(b.value()), InvalidArgument);
}

TEST(MetricsRegistry, InstrumentsAreStableAcrossLookups) {
  MetricsRegistry registry;
  Counter& c1 = registry.GetCounter("x");
  Counter& c2 = registry.GetCounter("x");
  EXPECT_EQ(&c1, &c2);
  c1.Add(3);
  EXPECT_EQ(registry.Snapshot().counters.at("x"), 3);
}

TEST(MetricsRegistry, ConcurrentRegistrationAndUpdate) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      Counter& c = registry.GetCounter("shared");
      for (int i = 0; i < kPerThread; ++i) c.Add();
      registry.GetGauge("g").Set(1.0);
    });
  }
  for (auto& w : workers) w.join();
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("shared"), kThreads * kPerThread);
  EXPECT_EQ(snap.gauges.at("g").count, kThreads);
}

TEST(MetricsSnapshot, MergeAddsCountersAndHistograms) {
  MetricsRegistry a;
  a.GetCounter("c").Add(1);
  a.GetHistogram("h", {0.0, 1.0}).Observe(0.0);
  MetricsRegistry b;
  b.GetCounter("c").Add(2);
  b.GetCounter("only_b").Add(5);
  b.GetHistogram("h", {0.0, 1.0}).Observe(1.0, 3.0);

  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.counters.at("c"), 3);
  EXPECT_EQ(merged.counters.at("only_b"), 5);
  EXPECT_DOUBLE_EQ(merged.histograms.at("h").total_weight, 4.0);
}

TEST(MetricsSnapshot, ToJsonIsSortedAndOmitsEmptySections) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.Snapshot().ToJson(), "{}");

  registry.GetCounter("zebra").Add(1);
  registry.GetCounter("alpha").Add(2);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_EQ(json.find("\"gauges\""), std::string::npos);
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zebra\""));
}

TEST(MetricsSnapshot, EqualSnapshotsSerializeIdentically) {
  auto build = [] {
    MetricsRegistry registry;
    registry.GetCounter("c").Add(7);
    registry.GetGauge("g").Set(0.25);
    registry.GetHistogram("h", {0.0, 1.0, 2.0}).Observe(1.0, 2.0);
    registry.GetSpan("s").Record(0.125);
    return registry.Snapshot();
  };
  EXPECT_EQ(build().ToJson("  "), build().ToJson("  "));
}

TEST(SpanHistogram, SamplesFirstThenEveryNth) {
  MetricsRegistry registry;
  SpanHistogram& span = registry.GetSpan("s", /*sample_every=*/3);
  for (int i = 0; i < 7; ++i) span.Record(static_cast<double>(i + 1));
  const SpanValue value = registry.Snapshot().spans.at("s");
  // Records 1..7 arrive; samples 1, 4, and 7 land in the histogram.
  EXPECT_EQ(value.seen, 7);
  EXPECT_EQ(value.value.count, 3);
  EXPECT_EQ(value.value.min, 1.0);
  EXPECT_EQ(value.value.max, 7.0);
}

TEST(SpanHistogram, SampleEveryOneRecordsEverything) {
  MetricsRegistry registry;
  SpanHistogram& span = registry.GetSpan("s");
  for (int i = 0; i < 5; ++i) span.Record(2.0);
  const SpanValue value = registry.Snapshot().spans.at("s");
  EXPECT_EQ(value.seen, 5);
  EXPECT_EQ(value.value.count, 5);
}

TEST(MetricsSnapshot, SpansMergeAndOmitUntouched) {
  MetricsRegistry a;
  a.GetSpan("latency").Record(0.5);
  a.GetSpan("never_recorded");
  MetricsRegistry b;
  b.GetSpan("latency").Record(8.0);

  MetricsSnapshot merged = a.Snapshot();
  EXPECT_EQ(merged.spans.count("never_recorded"), 0u);
  merged.Merge(b.Snapshot());
  const SpanValue& latency = merged.spans.at("latency");
  EXPECT_EQ(latency.seen, 2);
  EXPECT_EQ(latency.value.count, 2);
  EXPECT_EQ(latency.value.min, 0.5);
  EXPECT_EQ(latency.value.max, 8.0);

  const std::string json = merged.ToJson();
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

}  // namespace
}  // namespace rcbr::obs
