#include "obs/time_series.h"

#include <gtest/gtest.h>

namespace rcbr::obs {
namespace {

TEST(TimeSeries, FoldsSamplesIntoFixedWindows) {
  TimeSeries series(10.0);
  series.Sample(0.0, 5.0);
  series.Sample(3.0, 1.0);
  series.Sample(9.999, 9.0);
  series.Sample(10.0, 2.0);  // first sample of window 1
  series.Sample(25.0, 4.0);  // window 2

  const std::vector<SeriesWindow> windows = series.Windows();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].window, 0);
  EXPECT_EQ(windows[0].count, 3);
  EXPECT_EQ(windows[0].sum, 15.0);
  EXPECT_EQ(windows[0].min, 1.0);
  EXPECT_EQ(windows[0].max, 9.0);
  EXPECT_EQ(windows[0].last, 9.0);
  EXPECT_EQ(windows[1].window, 1);
  EXPECT_EQ(windows[1].count, 1);
  EXPECT_EQ(windows[1].last, 2.0);
  EXPECT_EQ(windows[2].window, 2);
}

TEST(TimeSeries, SkippedWindowsAreSimplyAbsent) {
  TimeSeries series(1.0);
  series.Sample(0.5, 1.0);
  series.Sample(100.5, 2.0);
  const std::vector<SeriesWindow> windows = series.Windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].window, 0);
  EXPECT_EQ(windows[1].window, 100);
}

TEST(TimeSeries, NegativeTimesUseFloorWindows) {
  TimeSeries series(10.0);
  series.Sample(-0.5, 1.0);  // floor(-0.05) = -1
  series.Sample(5.0, 2.0);
  const std::vector<SeriesWindow> windows = series.Windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].window, -1);
  EXPECT_EQ(windows[1].window, 0);
}

TEST(TimeSeries, OutOfOrderSamplesLandInTheirWindow) {
  TimeSeries series(1.0);
  series.Sample(0.5, 1.0);
  series.Sample(5.5, 2.0);
  series.Sample(0.7, 3.0);  // back into window 0
  series.Sample(3.5, 4.0);  // inserts window 3 between 0 and 5

  const std::vector<SeriesWindow> windows = series.Windows();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].window, 0);
  EXPECT_EQ(windows[0].count, 2);
  EXPECT_EQ(windows[0].last, 3.0);
  EXPECT_EQ(windows[1].window, 3);
  EXPECT_EQ(windows[1].count, 1);
  EXPECT_EQ(windows[2].window, 5);
}

TEST(TimeSeriesSampler, GetSeriesReturnsStableReferences) {
  TimeSeriesSampler sampler(2.0);
  TimeSeries& a = sampler.GetSeries("a");
  TimeSeries& b = sampler.GetSeries("b");
  EXPECT_NE(&a, &b);
  a.Sample(0.0, 1.0);
  // Registering more series must not move existing ones (hot paths hold
  // resolved pointers).
  for (int i = 0; i < 100; ++i) {
    sampler.GetSeries("filler" + std::to_string(i));
  }
  EXPECT_EQ(&sampler.GetSeries("a"), &a);
  a.Sample(1.0, 2.0);
  EXPECT_EQ(sampler.GetSeries("a").Windows().front().count, 2);
}

TEST(TimeSeriesSampler, SnapshotSkipsEmptySeries) {
  TimeSeriesSampler sampler(4.0);
  sampler.GetSeries("touched").Sample(1.0, 7.0);
  sampler.GetSeries("registered_but_never_sampled");
  const TimeSeriesSnapshot snapshot = sampler.Snapshot();
  EXPECT_EQ(snapshot.window_s, 4.0);
  ASSERT_EQ(snapshot.series.size(), 1u);
  EXPECT_EQ(snapshot.series.count("touched"), 1u);
  EXPECT_FALSE(snapshot.empty());
  EXPECT_TRUE(TimeSeriesSnapshot{}.empty());
}

}  // namespace
}  // namespace rcbr::obs
