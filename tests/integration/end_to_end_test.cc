// End-to-end tests wiring the full stack together: synthetic trace ->
// scheduler -> signaling -> multiplexer -> admission.
#include <memory>

#include <gtest/gtest.h>

#include "admission/descriptor.h"
#include "admission/policies.h"
#include "core/dp_scheduler.h"
#include "core/online_heuristic.h"
#include "core/rcbr_source.h"
#include "core/schedule.h"
#include "sim/call_sim.h"
#include "sim/scenarios.h"
#include "trace/star_wars.h"
#include "util/units.h"

namespace rcbr {
namespace {

// A short Star-Wars-like clip (2 minutes) shared by the heavy tests.
const trace::FrameTrace& Clip() {
  static const trace::FrameTrace clip = trace::MakeStarWarsTrace(7, 2880);
  return clip;
}

core::DpOptions ClipDpOptions() {
  core::DpOptions options;
  // 64 kb/s granularity in bits/slot at 24 fps, up to a generous peak.
  const double granularity = 64.0 * kKilobit / kStarWarsFps;
  options.rate_levels.clear();
  for (int k = 0; k <= 40; ++k) {
    options.rate_levels.push_back(granularity * k);
  }
  options.buffer_bits = 300.0 * kKilobit;
  options.cost = {5000.0, 1.0 / kStarWarsFps};
  options.buffer_quantum_bits = 2.0 * kKilobit;
  options.decision_period = 6;
  options.final_buffer_bits = 0.0;  // schedules are rotated in tests
  return options;
}

TEST(EndToEnd, DpScheduleDrivesRcbrSourceLosslessly) {
  const auto& clip = Clip();
  const core::DpResult dp =
      core::ComputeOptimalSchedule(clip.frame_bits(), ClipDpOptions());

  // Run the schedule through a real signaling path with ample capacity.
  signaling::PortController port(10 * kMbps);
  signaling::SignalingPath path({&port}, 1 * kMillisecond);
  core::RcbrSource source = core::RcbrSource::Offline(
      1, dp.schedule, clip.slot_seconds(), 300 * kKilobit, &path);
  ASSERT_TRUE(source.Connect());
  for (std::int64_t t = 0; t < clip.frame_count(); ++t) {
    source.Step(clip.bits(t));
  }
  EXPECT_DOUBLE_EQ(source.stats().lost_bits, 0.0);
  EXPECT_EQ(source.stats().renegotiation_failures, 0);
  EXPECT_EQ(source.stats().renegotiation_attempts,
            dp.schedule.change_count());
}

TEST(EndToEnd, DpBeatsHeuristicOnCost) {
  const auto& clip = Clip();
  const core::DpOptions options = ClipDpOptions();
  const core::DpResult dp =
      core::ComputeOptimalSchedule(clip.frame_bits(), options);

  core::HeuristicOptions heuristic;
  heuristic.low_threshold_bits = 10 * kKilobit;
  heuristic.high_threshold_bits = 150 * kKilobit;
  heuristic.time_constant_slots = 5;
  heuristic.granularity_bits_per_slot = 100.0 * kKilobit / kStarWarsFps;
  heuristic.initial_rate_bits_per_slot = clip.mean_rate() / kStarWarsFps;
  const PiecewiseConstant ar1 =
      core::ComputeHeuristicSchedule(clip.frame_bits(), heuristic);

  const core::ScheduleMetrics dp_metrics =
      core::EvaluateSchedule(clip.frame_bits(), dp.schedule,
                             options.buffer_bits, clip.slot_seconds(),
                             options.cost);
  const core::ScheduleMetrics ar1_metrics = core::EvaluateSchedule(
      clip.frame_bits(), ar1, 1e12, clip.slot_seconds(), options.cost);
  EXPECT_TRUE(dp_metrics.feasible);
  EXPECT_LE(dp_metrics.cost, ar1_metrics.cost);
}

TEST(EndToEnd, RcbrMuxOfManySourcesNeedsFarLessThanCbr) {
  // 8 shifted copies of the clip through scenario (c) at a capacity well
  // below 8x the static CBR requirement must lose (almost) nothing.
  const auto& clip = Clip();
  const core::DpResult dp =
      core::ComputeOptimalSchedule(clip.frame_bits(), ClipDpOptions());

  constexpr int kN = 8;
  Rng rng(11);
  std::vector<std::vector<double>> arrivals;
  std::vector<PiecewiseConstant> schedules;
  for (int i = 0; i < kN; ++i) {
    const std::int64_t shift = rng.UniformInt(0, clip.frame_count() - 1);
    arrivals.push_back(clip.CircularShift(shift).frame_bits());
    schedules.push_back(dp.schedule.Rotate(shift));
  }
  // Capacity: 1.6x the sum of schedule means (<< 8x peak).
  const double capacity = 1.6 * kN * dp.schedule.Mean();
  const sim::RcbrMuxResult result = sim::RcbrScenario(
      arrivals, schedules, capacity, 300 * kKilobit);
  EXPECT_LT(result.loss_fraction(), 1e-2);
}

TEST(EndToEnd, DescriptorFeedsAdmissionControl) {
  const auto& clip = Clip();
  const core::DpResult dp =
      core::ComputeOptimalSchedule(clip.frame_bits(), ClipDpOptions());
  // Convert schedule to bits/s for the admission machinery.
  std::vector<Step> bps_steps;
  for (const Step& s : dp.schedule.steps()) {
    bps_steps.push_back({s.start, s.value * kStarWarsFps});
  }
  const PiecewiseConstant schedule_bps(std::move(bps_steps),
                                       dp.schedule.length());
  const auto descriptor = admission::DescriptorFromSchedule(schedule_bps);
  EXPECT_NEAR(descriptor.Mean(), dp.schedule.Mean() * kStarWarsFps, 1.0);

  admission::PerfectKnowledgePolicy policy(descriptor, 45 * kMbps, 1e-3);
  // 45 Mb/s over ~0.4 Mb/s calls: max calls far above peak allocation,
  // below mean allocation.
  const double mean_calls = 45 * kMbps / descriptor.Mean();
  const double peak_calls = 45 * kMbps / descriptor.Max();
  EXPECT_GT(policy.max_calls(), static_cast<std::int64_t>(peak_calls));
  EXPECT_LE(policy.max_calls(), static_cast<std::int64_t>(mean_calls) + 1);
}

TEST(EndToEnd, CallSimWithRcbrSchedules) {
  const auto& clip = Clip();
  const core::DpResult dp =
      core::ComputeOptimalSchedule(clip.frame_bits(), ClipDpOptions());
  std::vector<Step> bps_steps;
  for (const Step& s : dp.schedule.steps()) {
    bps_steps.push_back({s.start, s.value * kStarWarsFps});
  }
  const sim::CallProfile profile{
      PiecewiseConstant(std::move(bps_steps), dp.schedule.length()),
      clip.slot_seconds()};

  sim::CallSimOptions options;
  options.capacity_bps = 8 * profile.rates_bps.Mean();
  options.arrival_rate_per_s = 10.0 / profile.duration_seconds();
  options.warmup_seconds = 2 * profile.duration_seconds();
  options.sample_intervals = 4;
  options.interval_seconds = profile.duration_seconds();
  sim::CapacityOnlyPolicy greedy;
  Rng rng(13);
  const sim::CallSimResult result =
      sim::RunCallSim({profile}, greedy, options, rng);
  EXPECT_GT(result.offered_calls, 0);
  EXPECT_GT(result.utilization.mean(), 0.2);
  EXPECT_LE(result.utilization.max(), 1.0 + 1e-9);
}

TEST(EndToEnd, OnlineSourceOverMultiHopPath) {
  const auto& clip = Clip();
  std::vector<std::unique_ptr<signaling::PortController>> ports;
  std::vector<signaling::PortController*> raw;
  for (int i = 0; i < 4; ++i) {
    ports.push_back(std::make_unique<signaling::PortController>(10 * kMbps));
    raw.push_back(ports.back().get());
  }
  signaling::SignalingPath path(std::move(raw), 2 * kMillisecond);

  core::HeuristicOptions heuristic;
  heuristic.low_threshold_bits = 10 * kKilobit;
  heuristic.high_threshold_bits = 150 * kKilobit;
  heuristic.time_constant_slots = 5;
  heuristic.granularity_bits_per_slot = 100.0 * kKilobit / kStarWarsFps;
  heuristic.initial_rate_bits_per_slot = clip.mean_rate() / kStarWarsFps;

  core::RcbrSource source = core::RcbrSource::Online(
      1, heuristic, clip.slot_seconds(), 500 * kKilobit, &path);
  ASSERT_TRUE(source.Connect());
  for (std::int64_t t = 0; t < clip.frame_count(); ++t) {
    source.Step(clip.bits(t));
  }
  EXPECT_GT(source.stats().renegotiation_attempts, 10);
  // Ample per-hop capacity: no failures, tiny loss.
  EXPECT_EQ(source.stats().renegotiation_failures, 0);
  EXPECT_LT(source.stats().loss_fraction(), 0.05);
}

}  // namespace
}  // namespace rcbr
