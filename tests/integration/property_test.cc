// Parameterized property suites: invariants that must hold across sweeps
// of seeds and parameters (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/dp_scheduler.h"
#include "core/funnel_smoother.h"
#include "core/online_heuristic.h"
#include "admission/deterministic.h"
#include "core/advance_reservation.h"
#include "core/schedule.h"
#include "ldev/chernoff.h"
#include "sim/cell_mux.h"
#include "sim/fluid_queue.h"
#include "sim/scenarios.h"
#include "trace/vbr_synthesizer.h"
#include "util/rng.h"

namespace rcbr {
namespace {

std::vector<double> RandomWorkload(std::uint64_t seed, std::size_t slots,
                                   double peak) {
  Rng rng(seed);
  std::vector<double> workload(slots);
  for (double& a : workload) a = rng.Uniform(0.0, peak);
  return workload;
}

// ---------------------------------------------------------------------
// DP schedules: feasibility and cost-reporting invariants across seeds
// and buffer sizes.
class DpProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(DpProperty, ScheduleFeasibleAndCostConsistent) {
  const auto [seed, buffer] = GetParam();
  const auto workload = RandomWorkload(seed, 120, 10.0);
  core::DpOptions options;
  options.rate_levels = core::UniformRateLevels(0.0, 10.0, 11);
  options.buffer_bits = buffer;
  options.cost = {2.0, 1.0};
  const core::DpResult r = core::ComputeOptimalSchedule(workload, options);
  const core::ScheduleMetrics m = core::EvaluateSchedule(
      workload, r.schedule, buffer, 1.0, options.cost);
  EXPECT_TRUE(m.feasible);
  EXPECT_NEAR(m.cost, r.optimal_cost, 1e-6);
  // Every scheduled rate must be on the grid.
  for (const Step& s : r.schedule.steps()) {
    const double idx = s.value / 1.0;
    EXPECT_NEAR(idx, std::round(idx), 1e-9);
  }
}

TEST_P(DpProperty, OptimalCostDominatedByAnyHeuristicSchedule) {
  // The DP cost is a lower bound over *grid* schedules: compare against
  // the grid-snapped funnel schedule when that snap is feasible.
  const auto [seed, buffer] = GetParam();
  const auto workload = RandomWorkload(seed, 120, 10.0);
  core::DpOptions options;
  options.rate_levels = core::UniformRateLevels(0.0, 10.0, 11);
  options.buffer_bits = buffer;
  options.cost = {2.0, 1.0};
  const core::DpResult r = core::ComputeOptimalSchedule(workload, options);

  const PiecewiseConstant funnel =
      core::ComputeFunnelSchedule(workload, buffer);
  // Snap up to the grid (conservative).
  std::vector<Step> snapped;
  for (const Step& s : funnel.steps()) {
    snapped.push_back({s.start, std::ceil(s.value - 1e-12)});
  }
  const PiecewiseConstant candidate(std::move(snapped), funnel.length());
  const core::ScheduleMetrics m = core::EvaluateSchedule(
      workload, candidate, buffer, 1.0, options.cost);
  if (m.feasible) {
    EXPECT_LE(r.optimal_cost, m.cost + 1e-9);
  }
}

TEST_P(DpProperty, DrainedSchedulesSurviveRotation) {
  // The rotation-safety argument behind final_buffer_bits = 0: any
  // circular shift of (workload, schedule) remains feasible.
  const auto [seed, buffer] = GetParam();
  const auto workload = RandomWorkload(seed + 100, 120, 10.0);
  core::DpOptions options;
  options.rate_levels = core::UniformRateLevels(0.0, 10.0, 11);
  options.buffer_bits = buffer;
  options.cost = {2.0, 1.0};
  options.final_buffer_bits = 0.0;
  const core::DpResult r = core::ComputeOptimalSchedule(workload, options);
  Rng rng(seed + 200);
  for (int k = 0; k < 5; ++k) {
    const auto shift = rng.UniformInt(0, 119);
    std::vector<double> rotated(workload.size());
    for (std::size_t t = 0; t < workload.size(); ++t) {
      rotated[t] = workload[(t + static_cast<std::size_t>(shift)) %
                            workload.size()];
    }
    const core::ScheduleMetrics m = core::EvaluateSchedule(
        rotated, r.schedule.Rotate(shift), buffer, 1.0, options.cost);
    EXPECT_TRUE(m.feasible) << "shift " << shift;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DpProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(0.0, 3.0, 12.0, 50.0)));

// ---------------------------------------------------------------------
// Queue conservation: arrivals = served + lost + final occupancy.
class QueueProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueProperty, BitConservation) {
  const auto workload = RandomWorkload(GetParam(), 500, 8.0);
  Rng rng(GetParam() + 1000);
  const double buffer = rng.Uniform(0.0, 20.0);
  const double rate = rng.Uniform(0.5, 8.0);
  sim::SlottedQueue queue(buffer);
  double served = 0;
  for (double a : workload) {
    const double before = queue.occupancy_bits();
    const double lost = queue.Step(a, rate);
    // Served this slot = before + a - lost - after.
    served += before + a - lost - queue.occupancy_bits();
  }
  EXPECT_NEAR(queue.arrived_bits(),
              served + queue.lost_bits() + queue.occupancy_bits(), 1e-6);
  EXPECT_GE(queue.max_occupancy_bits(), queue.occupancy_bits());
  EXPECT_LE(queue.max_occupancy_bits(), buffer + 1e-12);
}

TEST_P(QueueProperty, LossMonotoneInRate) {
  const auto workload = RandomWorkload(GetParam(), 400, 8.0);
  double prev = 1e300;
  for (double rate = 1.0; rate <= 8.0; rate += 1.0) {
    const double lost = sim::DrainConstant(workload, rate, 5.0).lost_bits;
    EXPECT_LE(lost, prev + 1e-9);
    prev = lost;
  }
}

TEST_P(QueueProperty, LossMonotoneInBuffer) {
  const auto workload = RandomWorkload(GetParam(), 400, 8.0);
  double prev = 1e300;
  for (double buffer = 0.0; buffer <= 40.0; buffer += 8.0) {
    const double lost = sim::DrainConstant(workload, 3.0, buffer).lost_bits;
    EXPECT_LE(lost, prev + 1e-9);
    prev = lost;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, QueueProperty,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

// ---------------------------------------------------------------------
// RCBR mux: capacity monotonicity and degradation bounds.
class MuxProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MuxProperty, LossMonotoneInCapacity) {
  Rng rng(GetParam());
  constexpr int kN = 4;
  std::vector<std::vector<double>> arrivals;
  std::vector<PiecewiseConstant> requests;
  for (int i = 0; i < kN; ++i) {
    arrivals.push_back(RandomWorkload(GetParam() * 10 + i, 300, 6.0));
    // Request the 30-slot block averages, snapped up.
    std::vector<Step> steps;
    for (std::int64_t b = 0; b < 10; ++b) {
      double sum = 0;
      for (std::int64_t t = b * 30; t < (b + 1) * 30; ++t) {
        sum += arrivals.back()[static_cast<std::size_t>(t)];
      }
      steps.push_back({b * 30, std::ceil(sum / 30.0)});
    }
    requests.push_back(PiecewiseConstant(std::move(steps), 300));
  }
  double prev = 1e300;
  for (double capacity : {4.0, 8.0, 12.0, 16.0, 24.0}) {
    const sim::RcbrMuxResult r =
        sim::RcbrScenario(arrivals, requests, capacity, 10.0);
    EXPECT_LE(r.lost_bits(), prev + 1e-9) << "capacity " << capacity;
    prev = r.lost_bits();
  }
}

TEST_P(MuxProperty, AmpleCapacityMatchesDedicatedQueues) {
  constexpr int kN = 3;
  std::vector<std::vector<double>> arrivals;
  std::vector<PiecewiseConstant> requests;
  for (int i = 0; i < kN; ++i) {
    arrivals.push_back(RandomWorkload(GetParam() * 7 + i, 200, 5.0));
    requests.push_back(PiecewiseConstant::Constant(3.0, 200));
  }
  // Capacity >= sum of all requests: grants always full, so each source
  // behaves exactly like a dedicated queue at its requested rate.
  const sim::RcbrMuxResult mux =
      sim::RcbrScenario(arrivals, requests, 3.0 * kN, 6.0);
  for (int i = 0; i < kN; ++i) {
    const sim::DrainResult solo =
        sim::DrainConstant(arrivals[static_cast<std::size_t>(i)], 3.0, 6.0);
    EXPECT_NEAR(mux.per_source[static_cast<std::size_t>(i)].lost_bits,
                solo.lost_bits, 1e-9);
  }
  EXPECT_EQ(mux.failed_renegotiations(), 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MuxProperty,
                         ::testing::Values(21u, 22u, 23u, 24u));

// ---------------------------------------------------------------------
// Chernoff estimates: monotone and consistent across a parameter sweep.
class ChernoffProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ChernoffProperty, ExponentNonNegativeAndMonotone) {
  const auto [p_high, high_rate] = GetParam();
  const ldev::DiscreteDistribution d({1.0, high_rate},
                                     {1.0 - p_high, p_high});
  double prev = 0;
  const double mean = d.Mean();
  for (double c = mean; c <= high_rate; c += (high_rate - mean) / 16) {
    const double i = ldev::ChernoffExponent(d, c);
    EXPECT_GE(i, -1e-12);
    EXPECT_GE(i, prev - 1e-9);
    prev = i;
  }
}

TEST_P(ChernoffProperty, AdmissibleCountConsistent) {
  const auto [p_high, high_rate] = GetParam();
  const ldev::DiscreteDistribution d({1.0, high_rate},
                                     {1.0 - p_high, p_high});
  const double capacity = 40.0;
  const std::int64_t n = ldev::MaxAdmissibleCalls(d, capacity, 1e-4);
  if (n > 0) {
    EXPECT_LE(ldev::ChernoffOverflowProbability(d, n, capacity), 1e-4);
  }
  EXPECT_GT(ldev::ChernoffOverflowProbability(d, n + 1, capacity), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChernoffProperty,
    ::testing::Combine(::testing::Values(0.05, 0.2, 0.5),
                       ::testing::Values(2.0, 4.0, 10.0)));

// ---------------------------------------------------------------------
// Synthesizer: calibration invariants across seeds.
class SynthProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SynthProperty, MeanExactPeakBounded) {
  trace::VbrModel model;
  model.target_mean_rate_bps = 374e3;
  Rng rng(GetParam());
  const trace::FrameTrace t = trace::SynthesizeVbr(model, 20000, rng);
  EXPECT_NEAR(t.mean_rate(), 374e3, 1.0);
  EXPECT_GT(t.peak_rate(), t.mean_rate());
  EXPECT_LT(t.peak_rate(), 40.0 * t.mean_rate());
  for (std::int64_t i = 0; i < t.frame_count(); ++i) {
    ASSERT_GE(t.bits(i), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SynthProperty,
                         ::testing::Values(31u, 32u, 33u, 34u, 35u));

// ---------------------------------------------------------------------
// Online heuristic: across granularities, the schedule covers the mean
// and the renegotiation count decreases with Delta.
class HeuristicProperty : public ::testing::TestWithParam<double> {};

TEST_P(HeuristicProperty, CoarserGranularityFewerRenegotiations) {
  const auto workload = RandomWorkload(77, 3000, 10.0);
  core::HeuristicOptions h;
  h.low_threshold_bits = 2.0;
  h.high_threshold_bits = 12.0;
  h.time_constant_slots = 5;
  h.initial_rate_bits_per_slot = 5.0;
  h.granularity_bits_per_slot = GetParam();
  const PiecewiseConstant fine =
      core::ComputeHeuristicSchedule(workload, h);
  h.granularity_bits_per_slot = GetParam() * 4;
  const PiecewiseConstant coarse =
      core::ComputeHeuristicSchedule(workload, h);
  EXPECT_LE(coarse.change_count(), fine.change_count());
}

INSTANTIATE_TEST_SUITE_P(Sweep, HeuristicProperty,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0));

// ---------------------------------------------------------------------
// Reservation ledger: under random book/cancel sequences the per-slot
// reservation always equals the sum of live bookings and never exceeds
// capacity.
class LedgerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LedgerProperty, BookCancelInvariant) {
  Rng rng(GetParam());
  const double capacity = 100.0;
  core::ReservationLedger ledger(capacity, 1.0, 200);
  struct LiveBooking {
    std::uint64_t id;
    std::int64_t start;
    std::int64_t length;
    double rate;
  };
  std::vector<LiveBooking> live;
  std::uint64_t next_id = 1;
  for (int step = 0; step < 200; ++step) {
    if (!live.empty() && rng.Bernoulli(0.4)) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      ledger.Cancel(live[pick].id);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const std::int64_t start = rng.UniformInt(0, 150);
      const std::int64_t length = rng.UniformInt(1, 50);
      const double rate = rng.Uniform(1.0, 40.0);
      const std::uint64_t id = next_id++;
      if (ledger.BookConstant(id, rate, start, start + length)) {
        live.push_back({id, start, length, rate});
      }
    }
    // Invariant: reservation at every slot equals the sum of live
    // bookings covering it, and never exceeds capacity.
    for (std::int64_t t = 0; t < 200; t += 13) {
      double expected = 0;
      for (const auto& b : live) {
        if (t >= b.start && t < b.start + b.length) expected += b.rate;
      }
      ASSERT_NEAR(ledger.ReservedAt(t), expected, 1e-6) << "slot " << t;
      ASSERT_LE(ledger.ReservedAt(t), capacity + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LedgerProperty,
                         ::testing::Values(61u, 62u, 63u));

// ---------------------------------------------------------------------
// Cell-level mux: across loads, the analytic bound dominates simulation
// and the dimensioned buffer honors the target.
class CellMuxProperty : public ::testing::TestWithParam<double> {};

TEST_P(CellMuxProperty, BoundDominatesAndDimensions) {
  const double utilization = GetParam();
  const std::int64_t period = 80;
  const auto n = static_cast<std::int64_t>(utilization * period);
  Rng rng(71);
  const sim::CellMuxResult mc = sim::SimulateCellMux(n, period, 1500, rng);
  for (std::int64_t q : {1, 3, 6}) {
    EXPECT_GE(sim::CellMuxTailBound(n, period, q) * 1.001, mc.Tail(q))
        << "q " << q;
  }
  const std::int64_t cells = sim::CellsForLossTarget(n, period, 1e-4);
  EXPECT_LE(mc.Tail(cells), 1e-3);  // MC noise floor above the target
}

INSTANTIATE_TEST_SUITE_P(Sweep, CellMuxProperty,
                         ::testing::Values(0.5, 0.7, 0.9));

// ---------------------------------------------------------------------
// Leaky-bucket envelopes: SigmaForRho is the tightest valid envelope.
class EnvelopeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnvelopeProperty, TightAndValid) {
  const auto workload = RandomWorkload(GetParam(), 400, 9.0);
  for (double rho : {1.0, 3.0, 5.0, 8.0}) {
    const double sigma = admission::SigmaForRho(workload, rho);
    // Valid: a queue drained at rho never exceeds sigma.
    const sim::DrainResult r =
        sim::DrainConstant(workload, rho, sigma);
    EXPECT_DOUBLE_EQ(r.lost_bits, 0.0) << "rho " << rho;
    // Tight: shaving sigma loses bits.
    if (sigma > 1.0) {
      EXPECT_GT(sim::DrainConstant(workload, rho, sigma - 1.0).lost_bits,
                0.0)
          << "rho " << rho;
    }
  }
}

TEST_P(EnvelopeProperty, DeterministicAdmissionNeverExceedsMeanBound) {
  const auto workload = RandomWorkload(GetParam() + 500, 400, 9.0);
  double mean = 0;
  for (double a : workload) mean += a;
  mean /= static_cast<double>(workload.size());
  const double capacity = 50.0;
  for (double rho : {5.0, 7.0, 9.0}) {
    const auto envelope = admission::EnvelopeAtRate(workload, rho);
    const std::int64_t n =
        admission::MaxDeterministicCalls(envelope, capacity, 200.0);
    // rho >= mean, so the deterministic count is below the mean bound.
    EXPECT_LE(static_cast<double>(n), capacity / mean + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EnvelopeProperty,
                         ::testing::Values(81u, 82u, 83u, 84u));

}  // namespace
}  // namespace rcbr
