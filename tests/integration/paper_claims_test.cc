// Qualitative paper-claim checks on the synthetic trace: the *shapes* the
// evaluation section reports must hold (who wins, in which direction),
// even though absolute numbers differ on a synthetic substrate.
#include <algorithm>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/dp_scheduler.h"
#include "core/online_heuristic.h"
#include "core/schedule.h"
#include "ldev/chernoff.h"
#include "ldev/equivalent_bandwidth.h"
#include "markov/multi_timescale.h"
#include "sim/fluid_queue.h"
#include "sim/scenarios.h"
#include "trace/star_wars.h"
#include "util/units.h"

namespace rcbr {
namespace {

// 10-minute trace: long enough to contain several action scenes.
const trace::FrameTrace& Movie() {
  static const trace::FrameTrace movie = trace::MakeStarWarsTrace(42, 14400);
  return movie;
}

TEST(PaperClaims, SectionII_StaticDescriptorWastesBandwidth) {
  // With a small (sub-second) buffer, the required CBR rate is several
  // times the mean rate: the motivating problem statement.
  const double rate = core::MinRateForLoss(
      Movie().frame_bits(), 300 * kKilobit, 1e-6);
  const double mean = Movie().mean_rate() / kStarWarsFps;
  EXPECT_GT(rate / mean, 2.5);
  EXPECT_LT(rate / mean, 6.0);
}

TEST(PaperClaims, SectionII_SigmaRhoTradeoffIsSteepThenFlat) {
  // Fig. 5 shape: the (sigma, rho) curve drops quickly for small buffers
  // (fast time scale smoothed) then flattens over a long plateau (slow
  // time scale immune to buffering) before finally approaching the mean.
  const auto& bits = Movie().frame_bits();
  const double r_small = core::MinRateForLoss(bits, 30 * kKilobit, 1e-6);
  const double r_medium = core::MinRateForLoss(bits, 1 * kMegabit, 1e-6);
  const double r_large = core::MinRateForLoss(bits, 20 * kMegabit, 1e-6);
  // Steep initial drop:
  EXPECT_LT(r_medium, 0.8 * r_small);
  // Plateau: two orders of magnitude more buffer buys comparatively little.
  EXPECT_GT(r_large, 0.3 * r_medium);
}

TEST(PaperClaims, SectionIV_RcbrNeedsTinyBufferVsNonRenegotiated) {
  // "300 kb worth of buffering ... are sufficient for RCBR. In contrast,
  // a nonrenegotiated service with the same [~1.05x mean] service rate
  // would require about 100 Mb of buffering."
  const auto& bits = Movie().frame_bits();
  const double mean_bits_per_slot = Movie().mean_rate() / kStarWarsFps;
  // Buffer needed by a CBR service at 1.2x the mean rate (lossless):
  const sim::DrainResult cbr = sim::DrainConstant(
      bits, 1.2 * mean_bits_per_slot, sim::kInfiniteBuffer);
  EXPECT_GT(cbr.max_occupancy_bits, 3 * kMegabit);

  // An RCBR schedule with mean rate <= 1.2x mean fits in 300 kb.
  core::DpOptions options;
  for (int k = 0; k <= 40; ++k) {
    options.rate_levels.push_back(64.0 * kKilobit / kStarWarsFps * k);
  }
  options.buffer_bits = 300 * kKilobit;
  options.cost = {3000.0, 1.0 / kStarWarsFps};
  options.buffer_quantum_bits = 2.0 * kKilobit;
  options.decision_period = 6;
  const core::DpResult dp = core::ComputeOptimalSchedule(bits, options);
  EXPECT_LE(dp.schedule.Mean(), 1.2 * mean_bits_per_slot);
}

TEST(PaperClaims, SectionIVA_OptTradeoffCurve) {
  // Fig. 2 (OPT): high bandwidth efficiency at renegotiation intervals of
  // seconds. "with one renegotiation every 7 s, we achieve over 99% of
  // bandwidth efficiency" — require > 95% at intervals of a few seconds
  // on the synthetic trace.
  const auto& bits = Movie().frame_bits();
  core::DpOptions options;
  for (int k = 0; k <= 40; ++k) {
    options.rate_levels.push_back(64.0 * kKilobit / kStarWarsFps * k);
  }
  options.buffer_bits = 300 * kKilobit;
  options.cost = {1000.0, 1.0 / kStarWarsFps};
  options.buffer_quantum_bits = 2.0 * kKilobit;
  options.decision_period = 6;
  const core::DpResult dp = core::ComputeOptimalSchedule(bits, options);
  const core::ScheduleMetrics m = core::EvaluateSchedule(
      bits, dp.schedule, options.buffer_bits, 1.0 / kStarWarsFps,
      options.cost);
  EXPECT_TRUE(m.feasible);
  EXPECT_GT(m.bandwidth_efficiency, 0.90);
  EXPECT_GT(m.mean_interval_seconds, 1.0);
}

TEST(PaperClaims, SectionIVB_HeuristicLessEfficientThanOpt) {
  // Fig. 2: the causal heuristic needs far more renegotiations than OPT
  // for comparable efficiency ("this gap suggests potential for better
  // heuristics").
  const auto& bits = Movie().frame_bits();

  core::DpOptions dp_options;
  for (int k = 0; k <= 40; ++k) {
    dp_options.rate_levels.push_back(64.0 * kKilobit / kStarWarsFps * k);
  }
  dp_options.buffer_bits = 300 * kKilobit;
  dp_options.cost = {2000.0, 1.0 / kStarWarsFps};
  dp_options.buffer_quantum_bits = 2.0 * kKilobit;
  dp_options.decision_period = 6;
  const core::DpResult dp = core::ComputeOptimalSchedule(bits, dp_options);

  core::HeuristicOptions h;
  h.low_threshold_bits = 10 * kKilobit;
  h.high_threshold_bits = 150 * kKilobit;
  h.time_constant_slots = 5;
  h.granularity_bits_per_slot = 64.0 * kKilobit / kStarWarsFps;
  h.initial_rate_bits_per_slot = Movie().mean_rate() / kStarWarsFps;
  const PiecewiseConstant ar1 = core::ComputeHeuristicSchedule(bits, h);

  const double dp_eff =
      (Movie().mean_rate() / kStarWarsFps) / dp.schedule.Mean();
  const double ar1_eff =
      (Movie().mean_rate() / kStarWarsFps) / ar1.Mean();
  // Comparable efficiency ballpark...
  EXPECT_GT(ar1_eff, 0.6);
  // ...but many more renegotiations per achieved efficiency.
  EXPECT_GT(ar1.change_count(), dp.schedule.change_count());
  EXPECT_GE(dp_eff, ar1_eff - 0.05);
}

TEST(PaperClaims, SectionVB_FullMovieScheduleMatchesHeadlineNumbers) {
  // The paper's headline example, at full scale: the complete ~2-hour
  // movie (171,000 frames), a 300 kb end-system buffer, an average
  // renegotiation interval of roughly 12 s, and an average service rate
  // within ~5% of the 374 kb/s source mean.
  const trace::FrameTrace movie =
      trace::MakeStarWarsTrace(20260706, trace::kStarWarsFrameCount);
  core::DpOptions options;
  for (int k = 0; k <= 40; ++k) {
    options.rate_levels.push_back(64.0 * kKilobit / kStarWarsFps * k);
  }
  options.buffer_bits = 300 * kKilobit;
  options.cost = {5000.0, 1.0 / kStarWarsFps};
  options.buffer_quantum_bits = 2.0 * kKilobit;
  options.decision_period = 6;
  const core::DpResult dp =
      core::ComputeOptimalSchedule(movie.frame_bits(), options);
  const core::ScheduleMetrics m = core::EvaluateSchedule(
      movie.frame_bits(), dp.schedule, options.buffer_bits,
      movie.slot_seconds(), options.cost);
  EXPECT_TRUE(m.feasible);
  EXPECT_GT(m.bandwidth_efficiency, 0.95);  // service mean within ~5%
  EXPECT_GT(m.mean_interval_seconds, 5.0);
  EXPECT_LT(m.mean_interval_seconds, 40.0);
  EXPECT_LE(m.max_buffer_bits, 300 * kKilobit);
}

TEST(PaperClaims, SectionVA_BufferingCannotBeatWorstSubchain) {
  // Eq. (9): the multi-time-scale equivalent bandwidth equals the worst
  // subchain's and exceeds every subchain mean — buffering alone cannot
  // extract the slow-time-scale gain.
  const markov::MultiTimescaleSource src =
      markov::MakeThreeSubchainSource(15600.0, 1e-4);
  const double theta = ldev::QosExponent(300 * kKilobit, 1e-6);
  const double eb = ldev::MultiTimescaleEquivalentBandwidth(src, theta);
  const auto means = src.SubchainMeanBitsPerSlot();
  EXPECT_GT(eb, *std::max_element(means.begin(), means.end()));
  // And it equals the most demanding subchain's own equivalent bandwidth.
  double worst = 0;
  for (std::size_t k = 0; k < src.subchain_count(); ++k) {
    worst = std::max(
        worst, ldev::EquivalentBandwidth(src.SubchainSource(k), theta));
  }
  EXPECT_DOUBLE_EQ(eb, worst);
}

TEST(PaperClaims, SectionVA_RcbrDemandExceedsSharedBufferDemand) {
  // Eqs. (10) vs (11): RCBR's renegotiation-failure exponent uses subchain
  // equivalent bandwidths (> means), so for the same capacity the RCBR
  // failure estimate dominates the shared-buffer loss estimate.
  const markov::MultiTimescaleSource src =
      markov::MakeThreeSubchainSource(1000.0, 1e-4);
  const double theta = 1e-3;
  const auto scene = ldev::SceneRateDistribution(src);
  const auto scene_eb =
      ldev::SceneEquivalentBandwidthDistribution(src, theta);
  for (double capacity_per_call : {1100.0, 1300.0, 1500.0}) {
    const double shared = ldev::ChernoffOverflowProbability(
        scene, 100, 100 * capacity_per_call);
    const double rcbr = ldev::ChernoffOverflowProbability(
        scene_eb, 100, 100 * capacity_per_call);
    EXPECT_GE(rcbr, shared) << "capacity/call " << capacity_per_call;
  }
}

TEST(PaperClaims, SectionVB_ThreeScenarioOrdering) {
  // Fig. 6 ordering at a fixed capacity: shared buffer (b) loses least,
  // RCBR (c) slightly more, static CBR (a) far more — equivalently, for a
  // fixed loss target, c_b <= c_c << c_a.
  const trace::FrameTrace clip = trace::MakeStarWarsTrace(5, 7200);
  constexpr int kN = 6;
  Rng rng(3);
  std::vector<std::vector<double>> arrivals;
  for (int i = 0; i < kN; ++i) {
    arrivals.push_back(
        clip.CircularShift(rng.UniformInt(0, clip.frame_count() - 1))
            .frame_bits());
  }
  const double buffer = 300 * kKilobit;

  // RCBR schedules from the DP.
  core::DpOptions options;
  for (int k = 0; k <= 40; ++k) {
    options.rate_levels.push_back(64.0 * kKilobit / kStarWarsFps * k);
  }
  options.buffer_bits = buffer;
  options.cost = {3000.0, 1.0 / kStarWarsFps};
  options.buffer_quantum_bits = 2.0 * kKilobit;
  options.decision_period = 6;
  std::vector<PiecewiseConstant> schedules;
  for (const auto& a : arrivals) {
    schedules.push_back(core::ComputeOptimalSchedule(a, options).schedule);
  }

  // Capacity: 1.7x total schedule mean.
  double total_mean = 0;
  for (const auto& s : schedules) total_mean += s.Mean();
  const double capacity = 1.7 * total_mean;

  const sim::DrainResult shared =
      sim::SharedBufferScenario(arrivals, capacity, kN * buffer);
  const sim::RcbrMuxResult rcbr =
      sim::RcbrScenario(arrivals, schedules, capacity, buffer);
  // Static CBR at the same per-source rate share:
  double cbr_lost = 0;
  double cbr_arrived = 0;
  for (const auto& a : arrivals) {
    const sim::DrainResult r =
        sim::DrainConstant(a, capacity / kN, buffer);
    cbr_lost += r.lost_bits;
    cbr_arrived += r.arrived_bits;
  }
  const double cbr_loss = cbr_lost / cbr_arrived;

  EXPECT_LE(shared.loss_fraction(), rcbr.loss_fraction() + 1e-9);
  EXPECT_LT(rcbr.loss_fraction(), cbr_loss + 1e-9);
}

}  // namespace
}  // namespace rcbr
