// Depth-1 ladder byte-identity pins for the two MBAC experiment
// configurations (fig9_10_memory_mbac's single-link call sim and
// fig_mbac_multihop's lossy multi-hop engine run): threading the
// multi-resolution contract through admission, signaling, and the engine
// must leave the scalar path untouched — a depth-1 ladder reproduces the
// scalar run bit for bit, down to the trace-event bytes. Only delivered
// utility differs: ladder runs account it, scalar runs leave it 0.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "admission/descriptor.h"
#include "admission/policies.h"
#include "obs/recorder.h"
#include "sim/call_sim.h"
#include "sim/engine/simulation.h"
#include "sim/rate_ladder.h"
#include "util/rng.h"

namespace rcbr {
namespace {

const sim::CallProfile kProfile{
    PiecewiseConstant({{0, 1.0}, {50, 2.0}}, 100), 1.0};

admission::PolicyOptions MbacOptions(obs::Recorder* recorder) {
  admission::PolicyOptions options;
  options.target_failure_probability = 1e-4;
  options.rate_grid_bps = UniformGrid(0.0, 4.0, 9);
  options.recorder = recorder;
  return options;
}

std::string TraceBytes(obs::Recorder& recorder) {
  std::string out;
  if (recorder.tracer() != nullptr) recorder.tracer()->AppendJsonl(0, out);
  return out;
}

TEST(LadderIdentity, Fig910MemoryMbacConfigDepthOne) {
  // The fig9_10_memory_mbac shape: memory-based Chernoff MBAC guarding
  // one link in the call-level simulator (RunMbacPoint's configuration).
  auto run = [&](const sim::RateLadder& ladder, obs::Recorder& recorder) {
    admission::MemoryPolicy policy(MbacOptions(&recorder));
    sim::CallSimOptions options;
    options.capacity_bps = 10.0;
    options.arrival_rate_per_s = 0.2;
    options.warmup_seconds = 100.0;
    options.sample_intervals = 6;
    options.interval_seconds = 150.0;
    options.recorder = &recorder;
    options.ladder = ladder;
    Rng rng(20260706);
    return sim::RunCallSim({kProfile}, policy, options, rng);
  };
  obs::Recorder scalar_rec(4096);
  obs::Recorder depth1_rec(4096);
  const sim::CallSimResult scalar = run({}, scalar_rec);
  const sim::CallSimResult depth1 =
      run(sim::RateLadder::Scalar(), depth1_rec);

  EXPECT_EQ(scalar.offered_calls, depth1.offered_calls);
  EXPECT_EQ(scalar.blocked_calls, depth1.blocked_calls);
  EXPECT_EQ(scalar.upward_attempts, depth1.upward_attempts);
  EXPECT_EQ(scalar.failed_attempts, depth1.failed_attempts);
  EXPECT_EQ(scalar.failure_probability.mean(),
            depth1.failure_probability.mean());
  EXPECT_EQ(scalar.utilization.mean(), depth1.utilization.mean());
  EXPECT_EQ(scalar.utilization.stddev(), depth1.utilization.stddev());
  EXPECT_EQ(depth1.downgraded_admits, 0);
  EXPECT_EQ(depth1.upgrades, 0);
  // The trace streams must match byte for byte — same events, same
  // fields (scalar admission events carry rung 0 either way), same
  // order, same float formatting.
  EXPECT_EQ(TraceBytes(scalar_rec), TraceBytes(depth1_rec));
  EXPECT_FALSE(TraceBytes(scalar_rec).empty());
}

TEST(LadderIdentity, FigMbacMultihopConfigDepthOne) {
  // The fig_mbac_multihop shape: background classes load each of 4
  // links, a tagged class crosses all of them, admission uses the
  // memory-based estimator, and renegotiations ride a lossy RM-cell
  // channel with periodic resync.
  auto run = [&](const sim::RateLadder& ladder, obs::Recorder& recorder) {
    admission::MemoryPolicy policy(MbacOptions(&recorder));
    sim::engine::SimulationOptions options;
    options.link_capacities_bps.assign(4, 10.0);
    for (std::size_t l = 0; l < 4; ++l) {
      sim::engine::TrafficClass bg;
      bg.candidate_routes = {{l}};
      bg.arrival_rate_per_s = 0.15;
      bg.ladder = ladder;
      options.classes.push_back(bg);
    }
    sim::engine::TrafficClass tagged;
    tagged.candidate_routes = {{0, 1, 2, 3}};
    tagged.arrival_rate_per_s = 0.05;
    tagged.ladder = ladder;
    options.classes.push_back(tagged);
    options.warmup_seconds = 100.0;
    options.sample_intervals = 5;
    options.interval_seconds = 150.0;
    options.policy = &policy;
    options.recorder = &recorder;
    options.signaling_recorder = &recorder;
    options.metric_prefix = "netsim";
    options.per_hop_delay_s = 0.001;
    options.track_connections = true;
    options.cell_loss_probability = 0.01;
    options.resync_every_cells = 8;
    Rng rng(54321);
    return sim::engine::RunSimulation({kProfile}, options, rng);
  };
  obs::Recorder scalar_rec(8192);
  obs::Recorder depth1_rec(8192);
  const sim::engine::SimulationResult scalar = run({}, scalar_rec);
  const sim::engine::SimulationResult depth1 =
      run(sim::RateLadder::Scalar(), depth1_rec);

  ASSERT_EQ(scalar.per_class.size(), depth1.per_class.size());
  for (std::size_t c = 0; c < scalar.per_class.size(); ++c) {
    const sim::engine::ClassTotals& a = scalar.per_class[c];
    const sim::engine::ClassTotals& b = depth1.per_class[c];
    EXPECT_EQ(a.offered_calls, b.offered_calls) << "class " << c;
    EXPECT_EQ(a.blocked_calls, b.blocked_calls) << "class " << c;
    EXPECT_EQ(a.upward_attempts, b.upward_attempts) << "class " << c;
    EXPECT_EQ(a.failed_attempts, b.failed_attempts) << "class " << c;
    EXPECT_EQ(a.interval_attempts, b.interval_attempts) << "class " << c;
    EXPECT_EQ(a.interval_failures, b.interval_failures) << "class " << c;
    EXPECT_EQ(b.downgraded_admits, 0) << "class " << c;
    EXPECT_EQ(b.upgrades, 0) << "class " << c;
  }
  // Per-link reserved-rate integrals, bit for bit.
  EXPECT_EQ(scalar.util_total, depth1.util_total);
  EXPECT_EQ(scalar.util_by_interval, depth1.util_by_interval);
  EXPECT_EQ(scalar.events_processed, depth1.events_processed);
  EXPECT_EQ(scalar.peak_concurrent_calls, depth1.peak_concurrent_calls);
  EXPECT_EQ(TraceBytes(scalar_rec), TraceBytes(depth1_rec));
  EXPECT_FALSE(TraceBytes(scalar_rec).empty());
}

}  // namespace
}  // namespace rcbr
