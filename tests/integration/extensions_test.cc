// Integration tests across the extension modules: GOP-aware sources over
// signaling paths, fitted models feeding admission control, book-ahead
// serving, and interactivity-aware MBAC.
#include <memory>

#include <gtest/gtest.h>

#include "admission/policies.h"
#include "core/advance_reservation.h"
#include "core/dp_scheduler.h"
#include "core/gop_heuristic.h"
#include "core/playback.h"
#include "core/rcbr_source.h"
#include "ldev/chernoff.h"
#include "ldev/equivalent_bandwidth.h"
#include "markov/fitting.h"
#include "trace/catalog.h"
#include "trace/star_wars.h"
#include "util/units.h"

namespace rcbr {
namespace {

TEST(Extensions, GopAwareSourceOverSignalingPath) {
  const trace::FrameTrace clip = trace::MakeStarWarsTrace(51, 2880);
  signaling::PortController port(10 * kMbps);
  signaling::SignalingPath path({&port}, 1 * kMillisecond);

  core::GopHeuristicOptions options;
  options.gop_pattern = "IBBPBBPBBPBB";
  options.low_threshold_bits = 10 * kKilobit;
  options.high_threshold_bits = 150 * kKilobit;
  options.time_constant_gops = 2;
  options.flush_slots = 5;
  options.granularity_bits_per_slot = 64.0 * kKilobit / clip.fps();
  options.initial_rate_bits_per_slot = clip.mean_rate() / clip.fps();

  core::RcbrSource source = core::RcbrSource::OnlineWith(
      1, std::make_unique<core::GopAwareController>(options),
      clip.slot_seconds(), 500 * kKilobit, &path);
  ASSERT_TRUE(source.Connect());
  for (std::int64_t t = 0; t < clip.frame_count(); ++t) {
    source.Step(clip.bits(t));
  }
  EXPECT_GT(source.stats().renegotiation_attempts, 5);
  EXPECT_EQ(source.stats().renegotiation_failures, 0);
  EXPECT_LT(source.stats().loss_fraction(), 0.05);
}

TEST(Extensions, FittedModelFeedsAdmissionControl) {
  // Fit the multi-time-scale model to a genre trace and run Chernoff
  // admission on its scene-rate distribution — the paper's analytical
  // pipeline (Sec. V-A -> Sec. VI), end to end on "measured" material.
  const trace::FrameTrace movie =
      trace::MakeGenreTrace(trace::Genre::kSportscast, 53, 28800);
  const markov::FittedModel fitted = markov::FitMultiTimescale(movie);
  const auto scene = ldev::SceneRateDistribution(fitted.source);
  const double capacity = 30 * scene.Mean();
  const std::int64_t n_max =
      ldev::MaxAdmissibleCalls(scene, capacity, 1e-4);
  // Statistical multiplexing: more than peak allocation, less than mean.
  EXPECT_GT(n_max, static_cast<std::int64_t>(capacity / scene.Max()));
  EXPECT_LE(n_max, static_cast<std::int64_t>(capacity / scene.Mean()));
}

TEST(Extensions, BookAheadVodPipeline) {
  // Compute schedules for two movies, book them back to back on a port
  // ledger, and verify playback analysis: booked delivery implies the
  // startup delays computed offline hold exactly.
  const trace::FrameTrace movie_a = trace::MakeStarWarsTrace(55, 1440);
  const trace::FrameTrace movie_b = trace::MakeStarWarsTrace(56, 1440);
  core::DpOptions options;
  for (int k = 0; k <= 40; ++k) {
    options.rate_levels.push_back(64.0 * kKilobit / 24.0 * k);
  }
  options.buffer_bits = 300 * kKilobit;
  options.cost = {3000.0, 1.0 / 24.0};
  options.buffer_quantum_bits = 2 * kKilobit;
  options.decision_period = 6;
  const core::DpResult dp_a =
      core::ComputeOptimalSchedule(movie_a.frame_bits(), options);
  const core::DpResult dp_b =
      core::ComputeOptimalSchedule(movie_b.frame_bits(), options);
  const PiecewiseConstant bps_a = [&] {
    std::vector<Step> steps;
    for (const Step& s : dp_a.schedule.steps()) {
      steps.push_back({s.start, s.value * 24.0});
    }
    return PiecewiseConstant(std::move(steps), dp_a.schedule.length());
  }();
  const PiecewiseConstant bps_b = [&] {
    std::vector<Step> steps;
    for (const Step& s : dp_b.schedule.steps()) {
      steps.push_back({s.start, s.value * 24.0});
    }
    return PiecewiseConstant(std::move(steps), dp_b.schedule.length());
  }();

  core::ReservationLedger ledger(1200 * kKbps, 1.0 / 24.0, 4000);
  ASSERT_TRUE(ledger.BookSchedule(1, bps_a, 0));
  // The second movie starts wherever it first fits.
  const std::int64_t start_b = ledger.FindEarliestStart(bps_b, 0);
  ASSERT_GE(start_b, 0);
  ASSERT_TRUE(ledger.BookSchedule(2, bps_b, start_b));
  EXPECT_LE(ledger.PeakReservation(0, 4000), 1200 * kKbps + 1e-6);

  // The playback analysis of each booked schedule stands on its own.
  const core::PlaybackAnalysis a =
      core::AnalyzePlayback(movie_a.frame_bits(), dp_a.schedule);
  EXPECT_LT(static_cast<double>(a.min_startup_slots) / 24.0, 3.0);
}

TEST(Extensions, AgedMemoryTracksGenreShift) {
  // A nonstationary population: old newscast-like calls (low, flat)
  // leave; new action-like calls (heavy tail) arrive. The aged estimator
  // converges to the new regime's distribution.
  admission::PolicyOptions options;
  options.target_failure_probability = 1e-3;
  options.rate_grid_bps = UniformGrid(0.0, 2e6, 21);
  admission::AgedMemoryPolicy aged(options, /*tau=*/100.0);

  // Phase 1: four flat calls at 0.4 Mb/s for a long time.
  for (std::uint64_t id = 1; id <= 4; ++id) {
    aged.OnAdmitted(0.0, id, 4e5);
  }
  // Phase 2: they leave; four bursty calls arrive (0.4 <-> 1.6 Mb/s).
  for (std::uint64_t id = 1; id <= 4; ++id) {
    aged.OnDeparture(1000.0, id, 4e5);
  }
  double now = 1000.0;
  for (std::uint64_t id = 5; id <= 8; ++id) {
    aged.OnAdmitted(now, id, 4e5);
  }
  for (int cycle = 0; cycle < 50; ++cycle) {
    now += 40.0;
    for (std::uint64_t id = 5; id <= 8; ++id) {
      aged.OnRateChange(now, id, 4e5, 1.6e6);
    }
    now += 10.0;
    for (std::uint64_t id = 5; id <= 8; ++id) {
      aged.OnRateChange(now, id, 1.6e6, 4e5);
    }
  }
  // A link sized for flat 0.4 Mb/s calls only: the aged estimator must
  // now know about the 1.6 Mb/s episodes and refuse.
  const std::vector<double> rates(4, 4e5);
  double reserved = 4 * 4e5;
  const sim::LinkView view{2.4e6, reserved, &rates};
  EXPECT_FALSE(aged.Admit(now, view, 4e5));
}

}  // namespace
}  // namespace rcbr
