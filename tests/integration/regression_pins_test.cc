// Regression pins: exact values that must stay bit-identical across
// refactors, since every stochastic component is seeded. A change here
// means behaviour changed — intentionally or not — and EXPERIMENTS.md
// numbers need re-checking.
#include <gtest/gtest.h>

#include "core/dp_scheduler.h"
#include "core/online_heuristic.h"
#include "sim/call_sim.h"
#include "sim/network.h"
#include "trace/star_wars.h"
#include "util/rng.h"
#include "util/units.h"

namespace rcbr {
namespace {

TEST(RegressionPins, RngStreamStable) {
  Rng rng(20260706);
  // First three draws of the canonical seed; pinned.
  const double a = rng.Uniform();
  const double b = rng.Uniform();
  const double c = rng.Uniform();
  Rng again(20260706);
  EXPECT_DOUBLE_EQ(a, again.Uniform());
  EXPECT_DOUBLE_EQ(b, again.Uniform());
  EXPECT_DOUBLE_EQ(c, again.Uniform());
  // And across forks.
  Rng parent1(7);
  Rng parent2(7);
  EXPECT_DOUBLE_EQ(parent1.Fork().Uniform(), parent2.Fork().Uniform());
}

TEST(RegressionPins, StarWarsTraceStable) {
  // The synthetic trace is the substrate of every experiment; its exact
  // content for the canonical seed must not drift silently.
  const trace::FrameTrace t = trace::MakeStarWarsTrace(20260706, 4800);
  EXPECT_NEAR(t.mean_rate(), 374e3, 1.0);
  const double pinned_total = t.total_bits();
  const trace::FrameTrace again = trace::MakeStarWarsTrace(20260706, 4800);
  EXPECT_DOUBLE_EQ(again.total_bits(), pinned_total);
  EXPECT_DOUBLE_EQ(again.bits(1234), t.bits(1234));
  EXPECT_DOUBLE_EQ(again.MaxWindowBits(240), t.MaxWindowBits(240));
}

TEST(RegressionPins, DpScheduleDeterministic) {
  const trace::FrameTrace clip = trace::MakeStarWarsTrace(20260706, 2880);
  core::DpOptions options;
  for (int k = 0; k <= 40; ++k) {
    options.rate_levels.push_back(64.0 * kKilobit / clip.fps() * k);
  }
  options.buffer_bits = 300 * kKilobit;
  options.cost = {3000.0, 1.0 / clip.fps()};
  options.buffer_quantum_bits = 2 * kKilobit;
  options.decision_period = 6;
  const core::DpResult a =
      core::ComputeOptimalSchedule(clip.frame_bits(), options);
  const core::DpResult b =
      core::ComputeOptimalSchedule(clip.frame_bits(), options);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_DOUBLE_EQ(a.optimal_cost, b.optimal_cost);
  EXPECT_EQ(a.total_nodes, b.total_nodes);
}

TEST(RegressionPins, HeuristicScheduleDeterministic) {
  const trace::FrameTrace clip = trace::MakeStarWarsTrace(20260706, 2880);
  core::HeuristicOptions h;
  h.low_threshold_bits = 10 * kKilobit;
  h.high_threshold_bits = 150 * kKilobit;
  h.time_constant_slots = 5;
  h.granularity_bits_per_slot = 100.0 * kKilobit / clip.fps();
  h.initial_rate_bits_per_slot = clip.mean_rate() / clip.fps();
  const PiecewiseConstant a =
      core::ComputeHeuristicSchedule(clip.frame_bits(), h);
  const PiecewiseConstant b =
      core::ComputeHeuristicSchedule(clip.frame_bits(), h);
  EXPECT_EQ(a, b);
}

TEST(RegressionPins, CallSimDeterministicAcrossRuns) {
  const sim::CallProfile profile{
      PiecewiseConstant({{0, 1.0}, {50, 2.0}}, 100), 1.0};
  sim::CallSimOptions options;
  options.capacity_bps = 10.0;
  options.arrival_rate_per_s = 0.2;
  options.warmup_seconds = 100.0;
  options.sample_intervals = 6;
  options.interval_seconds = 150.0;
  auto run = [&] {
    sim::CapacityOnlyPolicy policy;
    Rng rng(12345);
    return sim::RunCallSim({profile}, policy, options, rng);
  };
  const sim::CallSimResult a = run();
  const sim::CallSimResult b = run();
  EXPECT_EQ(a.offered_calls, b.offered_calls);
  EXPECT_EQ(a.upward_attempts, b.upward_attempts);
  EXPECT_EQ(a.failed_attempts, b.failed_attempts);
  EXPECT_DOUBLE_EQ(a.utilization.mean(), b.utilization.mean());
}

TEST(RegressionPins, CallSimAbsoluteValues) {
  // Absolute pins captured from the pre-engine call simulator (commit
  // 79b112f); the unified engine must reproduce them bit for bit — same
  // RNG draw order, same event ordering, same FP summation shapes.
  const sim::CallProfile profile{
      PiecewiseConstant({{0, 1.0}, {50, 2.0}}, 100), 1.0};
  sim::CallSimOptions options;
  options.capacity_bps = 10.0;
  options.arrival_rate_per_s = 0.2;
  options.warmup_seconds = 100.0;
  options.sample_intervals = 6;
  options.interval_seconds = 150.0;
  sim::CapacityOnlyPolicy policy;
  Rng rng(12345);
  const sim::CallSimResult r =
      sim::RunCallSim({profile}, policy, options, rng);
  EXPECT_EQ(r.offered_calls, 197);
  EXPECT_EQ(r.blocked_calls, 122);
  EXPECT_EQ(r.upward_attempts, 72);
  EXPECT_EQ(r.failed_attempts, 41);
  EXPECT_EQ(r.failure_probability.mean(), 0x1.1c0bef4a97924p-1);
  EXPECT_EQ(r.utilization.mean(), 0x1.d1863204dd7ccp-1);
  EXPECT_EQ(r.utilization.stddev(), 0x1.2e3d8e897fa59p-5);
}

TEST(RegressionPins, NetworkSimAbsoluteValues) {
  // Same contract for the multi-hop simulator: two classes sharing three
  // links with least-loaded routing, pinned at seed 54321.
  const std::vector<sim::CallProfile> profiles = {
      {PiecewiseConstant({{0, 1.0}, {50, 2.0}}, 100), 1.0},
      {PiecewiseConstant({{0, 2.0}, {30, 3.0}, {70, 1.0}}, 100), 1.0}};
  sim::NetworkSimOptions options;
  options.link_capacities_bps = {10.0, 10.0, 10.0};
  options.classes.resize(2);
  options.classes[0].candidate_routes = {{0, 1}};
  options.classes[0].arrival_rate_per_s = 0.15;
  options.classes[0].profile_index = 0;
  options.classes[1].candidate_routes = {{1, 2}, {2}};
  options.classes[1].arrival_rate_per_s = 0.2;
  options.classes[1].profile_index = 1;
  options.warmup_seconds = 100.0;
  options.sample_intervals = 6;
  options.interval_seconds = 150.0;
  options.least_loaded_routing = true;
  Rng rng(54321);
  const sim::NetworkSimResult r =
      sim::RunNetworkSim(profiles, options, rng);
  ASSERT_EQ(r.per_class.size(), 2u);
  EXPECT_EQ(r.per_class[0].offered_calls, 150);
  EXPECT_EQ(r.per_class[0].blocked_calls, 89);
  EXPECT_EQ(r.per_class[0].upward_attempts, 57);
  EXPECT_EQ(r.per_class[0].failed_attempts, 31);
  EXPECT_EQ(r.per_class[0].failure_probability.mean(),
            0x1.22498971cd6a6p-1);
  EXPECT_EQ(r.per_class[1].offered_calls, 213);
  EXPECT_EQ(r.per_class[1].blocked_calls, 154);
  EXPECT_EQ(r.per_class[1].upward_attempts, 112);
  EXPECT_EQ(r.per_class[1].failed_attempts, 68);
  EXPECT_EQ(r.per_class[1].failure_probability.mean(),
            0x1.221935a76e8bp-1);
  ASSERT_EQ(r.mean_link_utilization.size(), 3u);
  EXPECT_EQ(r.mean_link_utilization[0], 0x1.86d5ebacf9027p-1);
  EXPECT_EQ(r.mean_link_utilization[1], 0x1.cfee1d73b889cp-1);
  EXPECT_EQ(r.mean_link_utilization[2], 0x1.c3aac2d21a2afp-1);
}

}  // namespace
}  // namespace rcbr
