#include "ldev/chernoff.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace rcbr::ldev {
namespace {

DiscreteDistribution Demand() {
  // A call needs 1 Mb/s 80% of the time and 4 Mb/s 20% of the time.
  return {{1e6, 4e6}, {0.8, 0.2}};
}

TEST(ChernoffOverflow, VacuousWhenCapacityBelowMean) {
  // Mean demand 1.6 Mb/s per call.
  EXPECT_DOUBLE_EQ(ChernoffOverflowProbability(Demand(), 10, 10e6), 1.0);
}

TEST(ChernoffOverflow, ZeroAbovePeak) {
  EXPECT_DOUBLE_EQ(ChernoffOverflowProbability(Demand(), 10, 41e6), 0.0);
}

TEST(ChernoffOverflow, DecreasesWithCapacity) {
  const auto d = Demand();
  double prev = 1.0;
  for (double c = 17e6; c <= 39e6; c += 2e6) {
    const double p = ChernoffOverflowProbability(d, 10, c);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(ChernoffOverflow, IncreasesWithCalls) {
  const auto d = Demand();
  // Fixed capacity: more calls -> less capacity per call -> more failure.
  double prev = 0.0;
  for (std::int64_t n = 10; n <= 22; n += 2) {
    const double p = ChernoffOverflowProbability(d, n, 40e6);
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
}

TEST(ChernoffOverflow, MatchesExactBinomialTail) {
  // With demand in {0, 1}, total demand ~ Binomial(N, p); the Chernoff
  // estimate must upper-bound the exact tail and be within a small
  // polynomial factor of it.
  const DiscreteDistribution d({0.0, 1.0}, {0.7, 0.3});
  const std::int64_t n = 40;
  const double capacity = 20.0;  // P(X > 20), X ~ Bin(40, 0.3)
  // Exact tail P(X >= 21)... our estimate targets P(sum > C), use >= 21.
  double tail = 0;
  double log_choose = 0;
  for (std::int64_t k = 21; k <= n; ++k) {
    log_choose = std::lgamma(41.0) - std::lgamma(k + 1.0) -
                 std::lgamma(41.0 - k);
    tail += std::exp(log_choose + k * std::log(0.3) +
                     (40.0 - k) * std::log(0.7));
  }
  const double estimate = ChernoffOverflowProbability(d, n, capacity);
  EXPECT_GE(estimate, tail);               // Chernoff is an upper bound
  EXPECT_LT(estimate, tail * 50.0);        // ...and not wildly loose
}

TEST(ChernoffOverflow, AgreesWithMonteCarlo) {
  const auto d = Demand();
  const std::int64_t n = 50;
  const double capacity = 110e6;  // mean total 80e6
  rcbr::Rng rng(17);
  std::int64_t overflows = 0;
  constexpr int kTrials = 200000;
  for (int trial = 0; trial < kTrials; ++trial) {
    double total = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      total += rng.Bernoulli(0.2) ? 4e6 : 1e6;
    }
    if (total > capacity) ++overflows;
  }
  const double empirical = static_cast<double>(overflows) / kTrials;
  const double estimate = ChernoffOverflowProbability(d, n, capacity);
  EXPECT_GE(estimate, empirical * 0.8);  // upper bound (modulo MC noise)
  EXPECT_LT(estimate, empirical * 100.0);
}

TEST(RefinedOverflow, TighterThanChernoffButStillAbove) {
  // The Bahadur-Rao prefactor must shrink the estimate without dropping
  // (much) below the true tail: check against Monte Carlo.
  const auto d = Demand();
  const std::int64_t n = 50;
  const double capacity = 110e6;
  rcbr::Rng rng(19);
  std::int64_t overflows = 0;
  constexpr int kTrials = 200000;
  for (int trial = 0; trial < kTrials; ++trial) {
    double total = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      total += rng.Bernoulli(0.2) ? 4e6 : 1e6;
    }
    if (total > capacity) ++overflows;
  }
  const double empirical = static_cast<double>(overflows) / kTrials;
  const double bare = ChernoffOverflowProbability(d, n, capacity);
  const double refined = RefinedOverflowProbability(d, n, capacity);
  EXPECT_LT(refined, bare);
  // Refined should be within a small factor of the truth; bare is often
  // an order of magnitude above.
  EXPECT_LT(refined, empirical * 10.0);
  EXPECT_GT(refined, empirical / 10.0);
}

TEST(RefinedOverflow, EdgeConventions) {
  const auto d = Demand();
  EXPECT_DOUBLE_EQ(RefinedOverflowProbability(d, 10, 10e6), 1.0);
  EXPECT_DOUBLE_EQ(RefinedOverflowProbability(d, 10, 41e6), 0.0);
  EXPECT_THROW(RefinedOverflowProbability(d, 0, 1e6), InvalidArgument);
}

TEST(RefinedOverflow, MonotoneInCapacity) {
  const auto d = Demand();
  double prev = 1.0;
  for (double c = 17e6; c <= 39e6; c += 2e6) {
    const double p = RefinedOverflowProbability(d, 10, c);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(ChernoffOverflow, Validation) {
  EXPECT_THROW(ChernoffOverflowProbability(Demand(), 0, 1e6),
               InvalidArgument);
  EXPECT_THROW(ChernoffOverflowProbability(Demand(), 1, -1.0),
               InvalidArgument);
}

TEST(MaxAdmissibleCalls, MonotoneInCapacity) {
  const auto d = Demand();
  const std::int64_t n1 = MaxAdmissibleCalls(d, 50e6, 1e-3);
  const std::int64_t n2 = MaxAdmissibleCalls(d, 100e6, 1e-3);
  EXPECT_GT(n1, 0);
  EXPECT_GT(n2, n1);
}

TEST(MaxAdmissibleCalls, BoundaryIsTight) {
  const auto d = Demand();
  const double capacity = 80e6;
  const double target = 1e-3;
  const std::int64_t n = MaxAdmissibleCalls(d, capacity, target);
  EXPECT_LE(ChernoffOverflowProbability(d, n, capacity), target);
  EXPECT_GT(ChernoffOverflowProbability(d, n + 1, capacity), target);
}

TEST(MaxAdmissibleCalls, ZeroWhenOneCallTooMany) {
  // Capacity below the peak of a single call with substantial peak mass.
  const DiscreteDistribution d({1e6, 4e6}, {0.5, 0.5});
  EXPECT_EQ(MaxAdmissibleCalls(d, 2e6, 1e-6), 0);
}

TEST(MaxAdmissibleCalls, PeakAllocationAdmitsFloor) {
  // With target ~ 0 the scheme must fall back to (nearly) peak-rate
  // allocation: floor(C / peak) calls are always safe in reality; the
  // Chernoff estimate is conservative by at most one call at the exact
  // boundary c == peak (where it charges P(all calls at peak)).
  const auto d = Demand();
  const std::int64_t n = MaxAdmissibleCalls(d, 40e6, 1e-12);
  EXPECT_GE(n, 9);  // 40e6 / 4e6 = 10, minus the boundary conservatism
}

TEST(MaxAdmissibleCalls, GainOverPeakAllocation) {
  // Statistical multiplexing: at a loose target, many more calls than
  // peak allocation admits.
  const auto d = Demand();
  const double capacity = 400e6;
  const std::int64_t peak_calls =
      static_cast<std::int64_t>(capacity / d.Max());
  const std::int64_t n = MaxAdmissibleCalls(d, capacity, 1e-2);
  EXPECT_GT(n, peak_calls * 3 / 2);
}

TEST(MaxAdmissibleCalls, Validation) {
  EXPECT_THROW(MaxAdmissibleCalls(Demand(), 1e6, 0.0), InvalidArgument);
  EXPECT_THROW(MaxAdmissibleCalls(Demand(), 1e6, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace rcbr::ldev
