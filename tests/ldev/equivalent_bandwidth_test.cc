#include "ldev/equivalent_bandwidth.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "markov/dtmc.h"
#include "sim/fluid_queue.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::ldev {
namespace {

markov::RateSource OnOff(double p_on, double p_off, double rate) {
  return markov::RateSource(markov::MakeOnOffChain(p_on, p_off),
                            {0.0, rate});
}

TEST(QosExponent, Formula) {
  EXPECT_NEAR(QosExponent(1000.0, 1e-6), -std::log(1e-6) / 1000.0, 1e-12);
  EXPECT_THROW(QosExponent(0.0, 1e-6), InvalidArgument);
  EXPECT_THROW(QosExponent(10.0, 0.0), InvalidArgument);
  EXPECT_THROW(QosExponent(10.0, 1.0), InvalidArgument);
}

TEST(ScaledLogMgf, IidReducesToLogMgf) {
  // A chain whose rows are identical generates i.i.d. workloads, so the
  // scaled log-MGF equals the plain log-MGF of the marginal.
  markov::Matrix p(2, 2);
  p.at(0, 0) = p.at(1, 0) = 0.3;
  p.at(0, 1) = p.at(1, 1) = 0.7;
  const markov::RateSource src(markov::Dtmc(std::move(p)), {0.0, 10.0});
  const DiscreteDistribution marginal({0.0, 10.0}, {0.3, 0.7});
  for (double theta : {0.01, 0.1, 0.5}) {
    EXPECT_NEAR(ScaledLogMgf(src, theta), marginal.LogMgf(theta), 1e-6)
        << "theta=" << theta;
  }
}

TEST(EquivalentBandwidth, BetweenMeanAndPeak) {
  const markov::RateSource src = OnOff(0.2, 0.1, 300.0);
  const double mean = src.MeanBitsPerSlot();
  for (double theta : {1e-4, 1e-3, 1e-2, 1e-1}) {
    const double eb = EquivalentBandwidth(src, theta);
    EXPECT_GT(eb, mean) << "theta=" << theta;
    EXPECT_LT(eb, src.PeakBitsPerSlot()) << "theta=" << theta;
  }
}

TEST(EquivalentBandwidth, MonotoneInTheta) {
  const markov::RateSource src = OnOff(0.2, 0.1, 300.0);
  double prev = src.MeanBitsPerSlot();
  for (double theta : {1e-4, 1e-3, 1e-2, 1e-1, 1.0}) {
    const double eb = EquivalentBandwidth(src, theta);
    EXPECT_GE(eb, prev - 1e-9);
    prev = eb;
  }
}

TEST(EquivalentBandwidth, LimitsMeanAndPeak) {
  const markov::RateSource src = OnOff(0.3, 0.3, 100.0);
  EXPECT_NEAR(EquivalentBandwidth(src, 1e-7), src.MeanBitsPerSlot(), 1.0);
  EXPECT_NEAR(EquivalentBandwidth(src, 100.0), src.PeakBitsPerSlot(), 1.0);
}

TEST(EquivalentBandwidth, PredictsBufferOverflowDecay) {
  // Drain an on/off source at its equivalent bandwidth for exponent
  // theta; the empirical overflow probability of a buffer B should be
  // near e^{-theta B} (within an order of magnitude).
  const markov::RateSource src = OnOff(0.25, 0.25, 100.0);
  const double theta = 0.01;  // per bit
  const double eb = EquivalentBandwidth(src, theta);
  rcbr::Rng rng(7);
  const auto workload = src.Generate(2000000, rng);
  // Empirical stationary P(q > B) via an unbounded queue.
  sim::SlottedQueue queue(sim::kInfiniteBuffer);
  const double b_test = 400.0;  // expect ~ e^{-4} ~ 0.018
  std::int64_t above = 0;
  for (double a : workload) {
    queue.Step(a, eb);
    if (queue.occupancy_bits() > b_test) ++above;
  }
  const double empirical =
      static_cast<double>(above) / static_cast<double>(workload.size());
  const double predicted = std::exp(-theta * b_test);
  EXPECT_GT(empirical, predicted / 12.0);
  EXPECT_LT(empirical, predicted * 12.0);
}

TEST(MultiTimescaleEb, IsMaxOverSubchains) {
  const markov::MultiTimescaleSource src =
      markov::MakeThreeSubchainSource(1000.0, 1e-4);
  const double theta = 1e-3;
  double max_eb = 0;
  for (std::size_t k = 0; k < src.subchain_count(); ++k) {
    max_eb = std::max(max_eb,
                      EquivalentBandwidth(src.SubchainSource(k), theta));
  }
  EXPECT_DOUBLE_EQ(MultiTimescaleEquivalentBandwidth(src, theta), max_eb);
}

TEST(MultiTimescaleEb, ExceedsMaxSubchainMean) {
  // Eq. (9) discussion: the drain rate needed exceeds max_k m_k.
  const markov::MultiTimescaleSource src =
      markov::MakeThreeSubchainSource(1000.0, 1e-4);
  const auto means = src.SubchainMeanBitsPerSlot();
  const double max_mean = *std::max_element(means.begin(), means.end());
  EXPECT_GT(MultiTimescaleEquivalentBandwidth(src, 1e-3), max_mean);
}

TEST(SceneRateDistribution, MatchesSubchainStats) {
  const markov::MultiTimescaleSource src =
      markov::MakeThreeSubchainSource(1000.0, 1e-3);
  const DiscreteDistribution d = SceneRateDistribution(src);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_NEAR(d.Mean(), 1000.0, 1.0);
  EXPECT_NEAR(d.values()[2], 1700.0, 1e-6);
}

TEST(SceneEbDistribution, DominatesSceneRates) {
  // Eq. (11): the RCBR demand distribution uses subchain equivalent
  // bandwidths, each >= the subchain mean, so its mean dominates.
  const markov::MultiTimescaleSource src =
      markov::MakeThreeSubchainSource(1000.0, 1e-3);
  const DiscreteDistribution rates = SceneRateDistribution(src);
  const DiscreteDistribution ebs =
      SceneEquivalentBandwidthDistribution(src, 1e-3);
  ASSERT_EQ(rates.size(), ebs.size());
  for (std::size_t k = 0; k < rates.size(); ++k) {
    EXPECT_GE(ebs.values()[k], rates.values()[k]);
  }
  EXPECT_GE(ebs.Mean(), rates.Mean());
}

TEST(ScaledLogMgf, RejectsNonPositiveTheta) {
  const markov::RateSource src = OnOff(0.5, 0.5, 1.0);
  EXPECT_THROW(ScaledLogMgf(src, 0.0), InvalidArgument);
  EXPECT_THROW(ScaledLogMgf(src, -1.0), InvalidArgument);
}

}  // namespace
}  // namespace rcbr::ldev
