#include "ldev/mgf.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr::ldev {
namespace {

DiscreteDistribution Coin() { return {{0.0, 1.0}, {0.5, 0.5}}; }

TEST(DiscreteDistribution, Validation) {
  EXPECT_THROW(DiscreteDistribution({}, {}), InvalidArgument);
  EXPECT_THROW(DiscreteDistribution({1.0}, {0.5, 0.5}), InvalidArgument);
  EXPECT_THROW(DiscreteDistribution({1.0, 2.0}, {0.6, 0.6}),
               InvalidArgument);
  EXPECT_THROW(DiscreteDistribution({1.0, 2.0}, {1.2, -0.2}),
               InvalidArgument);
}

TEST(DiscreteDistribution, Moments) {
  const DiscreteDistribution d({1.0, 3.0, 5.0}, {0.25, 0.5, 0.25});
  EXPECT_DOUBLE_EQ(d.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(d.Min(), 1.0);
  EXPECT_DOUBLE_EQ(d.Max(), 5.0);
}

TEST(DiscreteDistribution, MinMaxIgnoreZeroMass) {
  const DiscreteDistribution d({1.0, 3.0, 5.0}, {0.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(d.Min(), 3.0);
  EXPECT_DOUBLE_EQ(d.Max(), 3.0);
}

TEST(LogMgf, ZeroAtZero) {
  EXPECT_NEAR(Coin().LogMgf(0.0), 0.0, 1e-12);
}

TEST(LogMgf, MatchesClosedFormForCoin) {
  // Lambda(s) = log(0.5 + 0.5 e^s).
  const DiscreteDistribution d = Coin();
  for (double s : {-2.0, -0.5, 0.3, 1.0, 4.0}) {
    EXPECT_NEAR(d.LogMgf(s), std::log(0.5 + 0.5 * std::exp(s)), 1e-12);
  }
}

TEST(LogMgf, OverflowSafeForHugeArguments) {
  const DiscreteDistribution d({0.0, 1e6}, {0.5, 0.5});
  const double v = d.LogMgf(1.0);  // naive sum would overflow
  EXPECT_NEAR(v, 1e6 + std::log(0.5), 1.0);
  EXPECT_TRUE(std::isfinite(v));
}

TEST(LogMgfDerivative, IsTiltedMean) {
  const DiscreteDistribution d = Coin();
  EXPECT_NEAR(d.LogMgfDerivative(0.0), 0.5, 1e-12);
  // As s -> inf the tilted mean approaches the max.
  EXPECT_NEAR(d.LogMgfDerivative(50.0), 1.0, 1e-9);
  // As s -> -inf it approaches the min.
  EXPECT_NEAR(d.LogMgfDerivative(-50.0), 0.0, 1e-9);
}

TEST(LogMgfDerivative, MonotoneInS) {
  const DiscreteDistribution d({1.0, 2.0, 7.0}, {0.2, 0.5, 0.3});
  double prev = d.LogMgfDerivative(-5.0);
  for (double s = -4.5; s <= 5.0; s += 0.5) {
    const double cur = d.LogMgfDerivative(s);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

TEST(LegendreTransform, ZeroBelowMean) {
  const DiscreteDistribution d = Coin();
  EXPECT_DOUBLE_EQ(LegendreTransform(d, 0.2), 0.0);
  EXPECT_DOUBLE_EQ(LegendreTransform(d, 0.5), 0.0);
}

TEST(LegendreTransform, CoinClosedForm) {
  // For Bernoulli(1/2) scaled to {0,1}: I(a) = log 2 + a log a +
  // (1-a) log(1-a) for a in (0,1).
  const DiscreteDistribution d = Coin();
  for (double a : {0.6, 0.75, 0.9}) {
    const double expected =
        std::log(2.0) + a * std::log(a) + (1 - a) * std::log(1 - a);
    EXPECT_NEAR(LegendreTransform(d, a), expected, 1e-8) << "a=" << a;
  }
}

TEST(LegendreTransform, AtPeakIsLogProb) {
  const DiscreteDistribution d({0.0, 1.0}, {0.75, 0.25});
  EXPECT_NEAR(LegendreTransform(d, 1.0), -std::log(0.25), 1e-9);
}

TEST(LegendreTransform, BeyondPeakIsInfinite) {
  const DiscreteDistribution d = Coin();
  EXPECT_GE(LegendreTransform(d, 1.5), 1e299);
  EXPECT_DOUBLE_EQ(LegendreTransform(d, 1.5, 123.0), 123.0);
}

TEST(LegendreTransform, IncreasingAboveMean) {
  // Mean is 3.3; start strictly above it.
  const DiscreteDistribution d({1.0, 2.0, 7.0}, {0.2, 0.5, 0.3});
  double prev = 0;
  for (double a = 3.5; a < 7.0; a += 0.5) {
    const double cur = LegendreTransform(d, a);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(LogMgfSecondDerivative, IsTiltedVariance) {
  const DiscreteDistribution d = Coin();
  // At s = 0 the tilted variance is the plain variance: 1/4.
  EXPECT_NEAR(d.LogMgfSecondDerivative(0.0), 0.25, 1e-12);
  // As s -> inf the tilted law degenerates at the max: variance -> 0.
  EXPECT_NEAR(d.LogMgfSecondDerivative(60.0), 0.0, 1e-9);
  EXPECT_GE(d.LogMgfSecondDerivative(1.3), 0.0);
}

TEST(TiltingPoint, SolvesTheTiltEquation) {
  const DiscreteDistribution d({1.0, 2.0, 7.0}, {0.2, 0.5, 0.3});
  for (double a : {3.5, 4.0, 5.5, 6.5}) {
    const double s = TiltingPoint(d, a);
    EXPECT_NEAR(d.LogMgfDerivative(s), a, 1e-6) << "a=" << a;
  }
  EXPECT_THROW(TiltingPoint(d, 3.0), InvalidArgument);  // below mean 3.3
  EXPECT_THROW(TiltingPoint(d, 7.0), InvalidArgument);  // at the max
}

TEST(LegendreTransform, ConvexAboveMean) {
  const DiscreteDistribution d({0.0, 10.0}, {0.5, 0.5});
  const double a1 = 6.0;
  const double a2 = 8.0;
  const double mid = LegendreTransform(d, 7.0);
  const double avg =
      (LegendreTransform(d, a1) + LegendreTransform(d, a2)) / 2;
  EXPECT_LE(mid, avg + 1e-9);
}

}  // namespace
}  // namespace rcbr::ldev
