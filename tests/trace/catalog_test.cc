#include "trace/catalog.h"

#include <gtest/gtest.h>

#include "trace/analysis.h"
#include "util/error.h"

namespace rcbr::trace {
namespace {

TEST(Catalog, AllGenresEnumerated) {
  EXPECT_EQ(AllGenres().size(), 5u);
  for (Genre genre : AllGenres()) {
    EXPECT_FALSE(GenreName(genre).empty());
  }
}

TEST(Catalog, NamesAreDistinct) {
  std::vector<std::string> names;
  for (Genre genre : AllGenres()) names.push_back(GenreName(genre));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(Catalog, AllGenresHitTargetMean) {
  for (Genre genre : AllGenres()) {
    const FrameTrace t = MakeGenreTrace(genre, 1, 20000, 500e3);
    EXPECT_NEAR(t.mean_rate(), 500e3, 1.0) << GenreName(genre);
  }
}

TEST(Catalog, RejectsBadMeanRate) {
  EXPECT_THROW(GenreModel(Genre::kNewscast, 0.0), InvalidArgument);
}

TEST(Catalog, ActionMovieMatchesStarWarsCalibration) {
  const FrameTrace action =
      MakeGenreTrace(Genre::kActionMovie, 7, 43200);
  EXPECT_GT(SustainedPeakRatio(action, 240), 3.0);
}

TEST(Catalog, NewscastHasNoSustainedPeaks) {
  const FrameTrace news = MakeGenreTrace(Genre::kNewscast, 7, 43200);
  EXPECT_LT(SustainedPeakRatio(news, 240), 2.2);
}

TEST(Catalog, GenresDifferInBurstiness) {
  // Static-CBR cost at a small buffer separates the genres: action needs
  // much more headroom than a newscast of the same mean rate.
  const FrameTrace action =
      MakeGenreTrace(Genre::kActionMovie, 11, 28800);
  const FrameTrace news = MakeGenreTrace(Genre::kNewscast, 11, 28800);
  const double ratio_action = SustainedPeakRatio(action, 240);
  const double ratio_news = SustainedPeakRatio(news, 240);
  EXPECT_GT(ratio_action, 1.5 * ratio_news);
}

TEST(Catalog, VideoconferenceHasLongScenes) {
  const FrameTrace vc =
      MakeGenreTrace(Genre::kVideoconference, 13, 43200);
  const FrameTrace news = MakeGenreTrace(Genre::kNewscast, 13, 43200);
  const SceneStats vc_stats = SummarizeScenes(vc, DetectScenes(vc));
  const SceneStats news_stats =
      SummarizeScenes(news, DetectScenes(news));
  EXPECT_GT(vc_stats.mean_scene_seconds, news_stats.mean_scene_seconds);
}

TEST(Catalog, SportscastBusierThanNewscast) {
  const FrameTrace sports = MakeGenreTrace(Genre::kSportscast, 17, 28800);
  const FrameTrace news = MakeGenreTrace(Genre::kNewscast, 17, 28800);
  // Same mean by construction; sports has far more mass in high windows.
  const auto sports_rates = WindowRateDistribution(sports, 240);
  const auto news_rates = WindowRateDistribution(news, 240);
  const double sports_p95 =
      sports_rates[sports_rates.size() * 95 / 100];
  const double news_p95 = news_rates[news_rates.size() * 95 / 100];
  EXPECT_GT(sports_p95, 1.15 * news_p95);
}

}  // namespace
}  // namespace rcbr::trace
