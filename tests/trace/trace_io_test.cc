#include "trace/trace_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr::trace {
namespace {

TEST(TraceIo, RoundTrip) {
  const FrameTrace original({100.5, 200.25, 0.0, 42.0}, 30.0);
  std::stringstream buffer;
  WriteTrace(original, buffer);
  const FrameTrace parsed = ReadTrace(buffer);
  ASSERT_EQ(parsed.frame_count(), original.frame_count());
  EXPECT_DOUBLE_EQ(parsed.fps(), 30.0);
  for (std::int64_t t = 0; t < parsed.frame_count(); ++t) {
    EXPECT_DOUBLE_EQ(parsed.bits(t), original.bits(t));
  }
}

TEST(TraceIo, DefaultFpsWhenNoHeader) {
  std::stringstream in("15000\n16000\n");
  const FrameTrace t = ReadTrace(in, 25.0);
  EXPECT_DOUBLE_EQ(t.fps(), 25.0);
  EXPECT_EQ(t.frame_count(), 2);
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n"
      "\n"
      "10\n"
      "# another\n"
      "20\n");
  const FrameTrace t = ReadTrace(in);
  EXPECT_EQ(t.frame_count(), 2);
  EXPECT_DOUBLE_EQ(t.bits(1), 20.0);
}

TEST(TraceIo, FpsHeaderParsed) {
  std::stringstream in("# fps: 30\n10\n");
  EXPECT_DOUBLE_EQ(ReadTrace(in, 24.0).fps(), 30.0);
}

TEST(TraceIo, MalformedLineThrows) {
  std::stringstream in("10\nnot_a_number\n");
  EXPECT_THROW(ReadTrace(in), Error);
}

TEST(TraceIo, NegativeFrameSizeThrows) {
  std::stringstream in("10\n-5\n");
  EXPECT_THROW(ReadTrace(in), Error);
}

TEST(TraceIo, EmptyInputThrows) {
  std::stringstream in("# only a comment\n");
  EXPECT_THROW(ReadTrace(in), Error);
}

TEST(TraceIo, FileRoundTrip) {
  const FrameTrace original({1.0, 2.0, 3.0}, 24.0);
  const std::string path = testing::TempDir() + "/rcbr_trace_io_test.trace";
  WriteTraceFile(original, path);
  const FrameTrace parsed = ReadTraceFile(path);
  EXPECT_EQ(parsed.frame_count(), 3);
  EXPECT_DOUBLE_EQ(parsed.bits(2), 3.0);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(ReadTraceFile("/nonexistent/path/trace.txt"), Error);
}

}  // namespace
}  // namespace rcbr::trace
