// Calibration tests: the synthetic Star Wars trace must reproduce the
// published statistics the paper relies on (DESIGN.md "Substitutions").
#include "trace/star_wars.h"

#include <gtest/gtest.h>

namespace rcbr::trace {
namespace {

class StarWarsTrace : public ::testing::Test {
 protected:
  // 30 minutes is enough for stable statistics and keeps tests fast.
  static constexpr std::int64_t kFrames = 43200;
  static const FrameTrace& Trace() {
    static const FrameTrace trace = MakeStarWarsTrace(1234, kFrames);
    return trace;
  }
};

TEST_F(StarWarsTrace, MeanRateMatchesPaper) {
  EXPECT_NEAR(Trace().mean_rate(), kStarWarsMeanRateBps, 1.0);
}

TEST_F(StarWarsTrace, FrameRateIs24) {
  EXPECT_DOUBLE_EQ(Trace().fps(), 24.0);
}

TEST_F(StarWarsTrace, PeakToMeanRatioInPaperRange) {
  // Paper: episodes at ~5x the long-term average; instantaneous peak
  // higher still because of I frames. Check the peak/mean rate ratio is
  // in a plausible MPEG-1 range.
  const double ratio = Trace().peak_rate() / Trace().mean_rate();
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 25.0);
}

TEST_F(StarWarsTrace, SustainedPeakEpisodesExist) {
  // "there are episodes where a sustained peak of five times the long-term
  // average rate lasts over 10 s" — require a 10 s window at >= 3.5x mean
  // (our calibrated action scenes are 3.4-4.4x).
  const auto window = static_cast<std::int64_t>(10 * Trace().fps());
  const double max_rate_10s = Trace().MaxWindowRate(window);
  EXPECT_GT(max_rate_10s / Trace().mean_rate(), 3.2);
}

TEST_F(StarWarsTrace, ThreeFrameMaximumNear300kb) {
  // Paper: 300 kb is "slightly more than the maximum size of three
  // consecutive frames".
  const double max3 = Trace().MaxWindowBits(3);
  EXPECT_GT(max3, 120e3);
  EXPECT_LT(max3, 320e3);
}

TEST_F(StarWarsTrace, LongTraceGeneratesFullMovie) {
  const FrameTrace full = MakeStarWarsTrace(1, 171000);
  EXPECT_EQ(full.frame_count(), 171000);
  EXPECT_NEAR(full.duration_seconds() / 3600.0, 1.98, 0.05);  // ~2 hours
}

TEST_F(StarWarsTrace, DifferentSeedsDifferentTraces) {
  const FrameTrace other = MakeStarWarsTrace(999, 2000);
  const FrameTrace self = MakeStarWarsTrace(1234, 2000);
  int diffs = 0;
  for (std::int64_t t = 0; t < 2000; ++t) {
    if (other.bits(t) != self.bits(t)) ++diffs;
  }
  EXPECT_GT(diffs, 1900);
}

TEST_F(StarWarsTrace, BurstinessAcrossTimeScales) {
  // Multiple time scales: variability must persist after averaging over a
  // GOP (0.5 s), i.e. the slow scale carries real variance.
  const FrameTrace gop = Trace().Aggregate(12);
  double mean = gop.total_bits() / static_cast<double>(gop.frame_count());
  double var = 0;
  for (std::int64_t i = 0; i < gop.frame_count(); ++i) {
    const double d = gop.bits(i) - mean;
    var += d * d;
  }
  var /= static_cast<double>(gop.frame_count());
  const double cov = std::sqrt(var) / mean;
  EXPECT_GT(cov, 0.3) << "GOP-aggregated trace too smooth";
}

}  // namespace
}  // namespace rcbr::trace
