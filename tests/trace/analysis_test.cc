#include "trace/analysis.h"

#include <gtest/gtest.h>

#include "trace/star_wars.h"
#include "trace/vbr_synthesizer.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::trace {
namespace {

FrameTrace Flat(std::int64_t n = 1000) {
  return FrameTrace(std::vector<double>(static_cast<std::size_t>(n), 100.0),
                    24.0);
}

TEST(Autocorrelation, LagZeroIsOne) {
  rcbr::Rng rng(1);
  std::vector<double> bits(500);
  for (double& b : bits) b = rng.Uniform(0.0, 10.0);
  const FrameTrace t(std::move(bits), 24.0);
  const auto acf = Autocorrelation(t, {0});
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
}

TEST(Autocorrelation, IidDecaysImmediately) {
  rcbr::Rng rng(2);
  std::vector<double> bits(20000);
  for (double& b : bits) b = rng.Uniform(0.0, 10.0);
  const FrameTrace t(std::move(bits), 24.0);
  const auto acf = Autocorrelation(t, {1, 10, 100});
  for (double r : acf) EXPECT_NEAR(r, 0.0, 0.05);
}

TEST(Autocorrelation, ConstantTraceIsDegenerate) {
  const auto acf = Autocorrelation(Flat(), {0, 5});
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
  EXPECT_DOUBLE_EQ(acf[1], 0.0);
}

TEST(Autocorrelation, MultiTimescaleTracePersists) {
  const FrameTrace sw = MakeStarWarsTrace(3, 20000);
  // Correlation must persist at scene lags (seconds) far beyond the GOP.
  const auto acf = Autocorrelation(sw, {1, 48, 240});
  EXPECT_GT(acf[2], 0.1) << "no long-range correlation at 10 s lag";
}

TEST(Autocorrelation, RejectsBadLags) {
  EXPECT_THROW(Autocorrelation(Flat(10), {10}), InvalidArgument);
  EXPECT_THROW(Autocorrelation(Flat(10), {-1}), InvalidArgument);
}

TEST(IndexOfDispersion, GrowsForCorrelatedTraffic) {
  const FrameTrace sw = MakeStarWarsTrace(5, 40000);
  const double small = IndexOfDispersion(sw, 12);
  const double large = IndexOfDispersion(sw, 1200);
  EXPECT_GT(large, 2.0 * small)
      << "dispersion must grow with window for multi-time-scale traffic";
}

TEST(IndexOfDispersion, FlatForIid) {
  rcbr::Rng rng(7);
  std::vector<double> bits(50000);
  for (double& b : bits) b = rng.Uniform(0.0, 10.0);
  const FrameTrace t(std::move(bits), 24.0);
  const double small = IndexOfDispersion(t, 10);
  const double large = IndexOfDispersion(t, 1000);
  EXPECT_NEAR(large / small, 1.0, 0.5);
}

TEST(DetectScenes, SingleSceneForFlatTrace) {
  const auto scenes = DetectScenes(Flat());
  ASSERT_EQ(scenes.size(), 1u);
  EXPECT_EQ(scenes[0].start, 0);
  EXPECT_EQ(scenes[0].end, 1000);
}

TEST(DetectScenes, FindsObviousRateJump) {
  std::vector<double> bits(2000, 100.0);
  for (std::size_t t = 1000; t < 2000; ++t) bits[t] = 500.0;
  const FrameTrace t(std::move(bits), 24.0);
  const auto scenes = DetectScenes(t);
  ASSERT_GE(scenes.size(), 2u);
  // The detected boundary should be near frame 1000 (within a window).
  EXPECT_NEAR(static_cast<double>(scenes[0].end), 1000.0, 48.0);
}

TEST(DetectScenes, ScenesPartitionTheTrace) {
  const FrameTrace sw = MakeStarWarsTrace(9, 20000);
  const auto scenes = DetectScenes(sw);
  ASSERT_FALSE(scenes.empty());
  EXPECT_EQ(scenes.front().start, 0);
  EXPECT_EQ(scenes.back().end, sw.frame_count());
  for (std::size_t i = 1; i < scenes.size(); ++i) {
    EXPECT_EQ(scenes[i].start, scenes[i - 1].end);
  }
}

TEST(DetectScenes, Validation) {
  SceneDetectorOptions bad;
  bad.change_ratio = 1.0;
  EXPECT_THROW(DetectScenes(Flat(), bad), InvalidArgument);
  bad = {};
  bad.smoothing_frames = 0;
  EXPECT_THROW(DetectScenes(Flat(), bad), InvalidArgument);
}

TEST(SummarizeScenes, DetectsSustainedPeakShare) {
  // Synthetic trace with known action content.
  const FrameTrace sw = MakeStarWarsTrace(11, 40000);
  const auto scenes = DetectScenes(sw);
  const SceneStats stats = SummarizeScenes(sw, scenes, 3.0);
  EXPECT_GT(stats.scene_count, 10);
  EXPECT_GT(stats.sustained_peak_time_fraction, 0.005);
  EXPECT_LT(stats.sustained_peak_time_fraction, 0.2);
  EXPECT_GT(stats.max_scene_seconds, stats.mean_scene_seconds);
}

TEST(WindowRateDistribution, SortedAndSized) {
  const FrameTrace sw = MakeStarWarsTrace(13, 4800);
  const auto rates = WindowRateDistribution(sw, 240);
  EXPECT_EQ(rates.size(), 20u);
  EXPECT_TRUE(std::is_sorted(rates.begin(), rates.end()));
}

TEST(SustainedPeakRatio, MatchesPaperMeasurement) {
  // "episodes where a sustained peak of five times the long-term average
  // rate lasts over 10 s" — our calibration targets >= 3.2 over 10 s.
  const FrameTrace sw = MakeStarWarsTrace(15, 43200);
  EXPECT_GT(SustainedPeakRatio(sw, 240), 3.2);
  // Longer windows see smaller sustained ratios.
  EXPECT_LT(SustainedPeakRatio(sw, 7200), SustainedPeakRatio(sw, 240));
}

}  // namespace
}  // namespace rcbr::trace
