#include "trace/vbr_synthesizer.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "util/error.h"
#include "util/rng.h"

namespace rcbr::trace {
namespace {

VbrModel TestModel() {
  VbrModel model;
  model.target_mean_rate_bps = 374e3;
  return model;
}

TEST(VbrSynthesizer, Deterministic) {
  rcbr::Rng a(1);
  rcbr::Rng b(1);
  const FrameTrace ta = SynthesizeVbr(TestModel(), 5000, a);
  const FrameTrace tb = SynthesizeVbr(TestModel(), 5000, b);
  for (std::int64_t t = 0; t < 5000; ++t) {
    ASSERT_DOUBLE_EQ(ta.bits(t), tb.bits(t));
  }
}

TEST(VbrSynthesizer, HitsTargetMeanExactly) {
  rcbr::Rng rng(2);
  const FrameTrace t = SynthesizeVbr(TestModel(), 20000, rng);
  EXPECT_NEAR(t.mean_rate(), 374e3, 1.0);
}

TEST(VbrSynthesizer, NoScalingWhenTargetDisabled) {
  VbrModel model = TestModel();
  model.target_mean_rate_bps = 0;
  rcbr::Rng rng(3);
  const FrameTrace t = SynthesizeVbr(model, 5000, rng);
  // Unit scale: activity-1 scenes average ~1 "unit" per frame.
  EXPECT_GT(t.mean_rate(), 0.0);
  EXPECT_LT(t.max_frame_bits(), 100.0);  // dimensionless units, not bits
}

TEST(VbrSynthesizer, AllFramesNonNegative) {
  rcbr::Rng rng(4);
  const FrameTrace t = SynthesizeVbr(TestModel(), 10000, rng);
  for (std::int64_t i = 0; i < t.frame_count(); ++i) {
    ASSERT_GE(t.bits(i), 0.0);
  }
}

TEST(VbrSynthesizer, GopStructureVisible) {
  // With noise off, I frames must be exactly i_weight/b_weight times the
  // B frames within one scene.
  VbrModel model = TestModel();
  model.frame_noise_sigma = 0;
  model.action_probability = 0;
  model.scene_activity_log_sigma = 0;
  model.scene_activity_log_mu = 0;
  model.scene_activity_min = 1.0;
  model.scene_activity_max = 1.0;
  model.target_mean_rate_bps = 0;
  rcbr::Rng rng(5);
  const FrameTrace t = SynthesizeVbr(model, 24, rng);
  // Pattern IBBPBBPBBPBB: frame 0 is I, frames 1,2 are B, frame 3 is P.
  EXPECT_NEAR(t.bits(0) / t.bits(1), model.i_weight / model.b_weight, 1e-9);
  EXPECT_NEAR(t.bits(3) / t.bits(1), model.p_weight / model.b_weight, 1e-9);
}

TEST(VbrSynthesizer, SceneActivityScalesRates) {
  VbrModel model = TestModel();
  model.frame_noise_sigma = 0;
  model.target_mean_rate_bps = 0;
  rcbr::Rng rng(6);
  const FrameTrace t = SynthesizeVbr(model, 50000, rng);
  // Aggregated to scene-ish granularity the rate must vary (slow scale).
  const FrameTrace agg = t.Aggregate(120);  // 5-second blocks
  double lo = 1e300;
  double hi = 0;
  for (std::int64_t i = 0; i < agg.frame_count(); ++i) {
    lo = std::min(lo, agg.bits(i));
    hi = std::max(hi, agg.bits(i));
  }
  EXPECT_GT(hi / lo, 2.0) << "no slow-time-scale variation";
}

TEST(VbrSynthesizer, ValidatesModel) {
  rcbr::Rng rng(7);
  VbrModel bad = TestModel();
  bad.gop_pattern = "IXB";
  EXPECT_THROW(SynthesizeVbr(bad, 10, rng), InvalidArgument);
  bad = TestModel();
  bad.fps = 0;
  EXPECT_THROW(SynthesizeVbr(bad, 10, rng), InvalidArgument);
  bad = TestModel();
  bad.action_probability = 1.5;
  EXPECT_THROW(SynthesizeVbr(bad, 10, rng), InvalidArgument);
  bad = TestModel();
  bad.i_weight = 0;
  EXPECT_THROW(SynthesizeVbr(bad, 10, rng), InvalidArgument);
  EXPECT_THROW(SynthesizeVbr(TestModel(), 0, rng), InvalidArgument);
}

TEST(DrawScene, ActionScenesSustained) {
  VbrModel model = TestModel();
  model.action_probability = 1.0;  // force action scenes
  rcbr::Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    const SceneDraw scene = DrawScene(model, rng);
    EXPECT_TRUE(scene.action);
    EXPECT_GE(scene.activity, model.action_activity_min);
    EXPECT_LE(scene.activity, model.action_activity_max);
    const double seconds = static_cast<double>(scene.frames) / model.fps;
    EXPECT_GE(seconds, model.action_duration_min_s - 0.5);
    EXPECT_LE(seconds, model.action_duration_max_s + 0.5);
  }
}

TEST(DrawScene, NormalScenesClamped) {
  VbrModel model = TestModel();
  model.action_probability = 0.0;
  rcbr::Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const SceneDraw scene = DrawScene(model, rng);
    EXPECT_FALSE(scene.action);
    EXPECT_GE(scene.activity, model.scene_activity_min);
    EXPECT_LE(scene.activity, model.scene_activity_max);
    EXPECT_GE(scene.frames, 1);
  }
}

}  // namespace
}  // namespace rcbr::trace
