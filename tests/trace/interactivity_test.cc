#include "trace/interactivity.h"

#include <gtest/gtest.h>

#include "trace/star_wars.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::trace {
namespace {

InteractivityModel CalmViewer() {
  InteractivityModel model;
  model.pause_rate_per_s = 1.0 / 60.0;
  model.pause_mean_seconds = 10.0;
  model.ff_rate_per_s = 1.0 / 120.0;
  model.ff_mean_content_seconds = 30.0;
  model.ff_speed = 8;
  return model;
}

TEST(ApplyInteractivity, NoEventsIsIdentity) {
  const FrameTrace movie = MakeStarWarsTrace(1, 1000);
  InteractivityModel model;
  model.pause_rate_per_s = 0;
  model.ff_rate_per_s = 0;
  rcbr::Rng rng(1);
  const FrameTrace out = ApplyInteractivity(movie, model, rng);
  ASSERT_EQ(out.frame_count(), movie.frame_count());
  for (std::int64_t t = 0; t < movie.frame_count(); ++t) {
    EXPECT_DOUBLE_EQ(out.bits(t), movie.bits(t));
  }
}

TEST(ApplyInteractivity, PausesEmitZeroFrames) {
  const FrameTrace movie = MakeStarWarsTrace(2, 2000);
  InteractivityModel model = CalmViewer();
  model.ff_rate_per_s = 0;
  model.pause_rate_per_s = 1.0 / 5.0;  // pause often
  rcbr::Rng rng(2);
  const FrameTrace out = ApplyInteractivity(movie, model, rng);
  std::int64_t zeros = 0;
  for (std::int64_t t = 0; t < out.frame_count(); ++t) {
    if (out.bits(t) == 0.0) ++zeros;
  }
  EXPECT_GT(zeros, 0);
  // Pauses lengthen the session.
  EXPECT_GT(out.frame_count(), movie.frame_count());
  // All content is still delivered.
  EXPECT_NEAR(out.total_bits(), movie.total_bits(), 1e-6);
}

TEST(ApplyInteractivity, FastForwardShortensSession) {
  const FrameTrace movie = MakeStarWarsTrace(3, 5000);
  InteractivityModel model = CalmViewer();
  model.pause_rate_per_s = 0;
  model.ff_rate_per_s = 1.0 / 10.0;  // skim a lot
  rcbr::Rng rng(3);
  const FrameTrace out = ApplyInteractivity(movie, model, rng);
  EXPECT_LT(out.frame_count(), movie.frame_count());
  // Skimming drops bits (only I frames survive the skipped stretches).
  EXPECT_LT(out.total_bits(), movie.total_bits());
  EXPECT_GT(out.total_bits(), 0.0);
}

TEST(ApplyInteractivity, Validation) {
  const FrameTrace movie = MakeStarWarsTrace(4, 100);
  rcbr::Rng rng(4);
  InteractivityModel bad = CalmViewer();
  bad.ff_speed = 1;
  EXPECT_THROW(ApplyInteractivity(movie, bad, rng), InvalidArgument);
  bad = CalmViewer();
  bad.pause_mean_seconds = 0;
  EXPECT_THROW(ApplyInteractivity(movie, bad, rng), InvalidArgument);
}

TEST(ApplyInteractivityToSchedule, NoEventsIsIdentity) {
  const PiecewiseConstant schedule({{0, 4e5}, {100, 8e5}}, 300);
  InteractivityModel model;
  model.pause_rate_per_s = 0;
  model.ff_rate_per_s = 0;
  rcbr::Rng rng(5);
  const PiecewiseConstant out = ApplyInteractivityToSchedule(
      schedule, model, 1.0 / 24.0, 64e3, 2.0, rng);
  EXPECT_EQ(out, schedule);
}

TEST(ApplyInteractivityToSchedule, PausesInsertKeepAlive) {
  const PiecewiseConstant schedule = PiecewiseConstant::Constant(4e5, 2400);
  InteractivityModel model = CalmViewer();
  model.ff_rate_per_s = 0;
  model.pause_rate_per_s = 1.0 / 10.0;
  rcbr::Rng rng(6);
  const PiecewiseConstant out = ApplyInteractivityToSchedule(
      schedule, model, 1.0 / 24.0, 64e3, 2.0, rng);
  EXPECT_GT(out.length(), schedule.length());
  EXPECT_DOUBLE_EQ(out.MinValue(), 64e3);
}

TEST(ApplyInteractivityToSchedule, FastForwardRaisesPeakDemand) {
  const PiecewiseConstant schedule = PiecewiseConstant::Constant(4e5, 2400);
  InteractivityModel model = CalmViewer();
  model.pause_rate_per_s = 0;
  model.ff_rate_per_s = 1.0 / 5.0;
  rcbr::Rng rng(7);
  const PiecewiseConstant out = ApplyInteractivityToSchedule(
      schedule, model, 1.0 / 24.0, 64e3, 2.5, rng);
  EXPECT_GT(out.MaxValue(), schedule.MaxValue());
  EXPECT_LE(out.MaxValue(), 2.5 * schedule.MaxValue() + 1e-9);
  EXPECT_LT(out.length(), schedule.length());
}

TEST(ApplyInteractivityToSchedule, DistortsTheDescriptor) {
  // The Sec.-VI point: interactivity changes the empirical bandwidth
  // distribution, so an a-priori descriptor is inaccurate.
  const PiecewiseConstant schedule({{0, 4e5}, {1200, 6e5}}, 2400);
  InteractivityModel model = CalmViewer();
  rcbr::Rng rng(8);
  const PiecewiseConstant out = ApplyInteractivityToSchedule(
      schedule, model, 1.0 / 24.0, 64e3, 2.0, rng);
  EXPECT_NE(out.Mean(), schedule.Mean());
}

TEST(ApplyInteractivityToSchedule, Validation) {
  const PiecewiseConstant schedule = PiecewiseConstant::Constant(4e5, 100);
  rcbr::Rng rng(9);
  EXPECT_THROW(ApplyInteractivityToSchedule(schedule, CalmViewer(), 0.0,
                                            64e3, 2.0, rng),
               InvalidArgument);
  EXPECT_THROW(ApplyInteractivityToSchedule(schedule, CalmViewer(),
                                            1.0 / 24.0, -1.0, 2.0, rng),
               InvalidArgument);
  EXPECT_THROW(ApplyInteractivityToSchedule(schedule, CalmViewer(),
                                            1.0 / 24.0, 64e3, 0.5, rng),
               InvalidArgument);
}

}  // namespace
}  // namespace rcbr::trace
