#include "trace/frame_trace.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr::trace {
namespace {

FrameTrace Simple() { return FrameTrace({10, 20, 30, 40}, 2.0); }

TEST(FrameTrace, BasicAccessors) {
  const FrameTrace t = Simple();
  EXPECT_EQ(t.frame_count(), 4);
  EXPECT_DOUBLE_EQ(t.fps(), 2.0);
  EXPECT_DOUBLE_EQ(t.slot_seconds(), 0.5);
  EXPECT_DOUBLE_EQ(t.duration_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(t.total_bits(), 100.0);
  EXPECT_DOUBLE_EQ(t.mean_rate(), 50.0);
  EXPECT_DOUBLE_EQ(t.max_frame_bits(), 40.0);
  EXPECT_DOUBLE_EQ(t.peak_rate(), 80.0);
}

TEST(FrameTrace, ConstructorValidation) {
  EXPECT_THROW(FrameTrace({}, 24.0), InvalidArgument);
  EXPECT_THROW(FrameTrace({1.0}, 0.0), InvalidArgument);
  EXPECT_THROW(FrameTrace({-1.0}, 24.0), InvalidArgument);
}

TEST(FrameTrace, MaxWindowBits) {
  const FrameTrace t = Simple();
  EXPECT_DOUBLE_EQ(t.MaxWindowBits(1), 40.0);
  EXPECT_DOUBLE_EQ(t.MaxWindowBits(2), 70.0);
  EXPECT_DOUBLE_EQ(t.MaxWindowBits(4), 100.0);
  EXPECT_THROW(t.MaxWindowBits(0), InvalidArgument);
  EXPECT_THROW(t.MaxWindowBits(5), InvalidArgument);
}

TEST(FrameTrace, WindowRate) {
  const FrameTrace t = Simple();
  // Frames 1..2 carry 50 bits over 1 second.
  EXPECT_DOUBLE_EQ(t.WindowRate(1, 3), 50.0);
  EXPECT_THROW(t.WindowRate(2, 2), InvalidArgument);
}

TEST(FrameTrace, MaxWindowRateConsistent) {
  const FrameTrace t = Simple();
  EXPECT_DOUBLE_EQ(t.MaxWindowRate(2), 70.0 * 2.0 / 2.0);
}

TEST(FrameTrace, CircularShift) {
  const FrameTrace t = Simple();
  const FrameTrace s = t.CircularShift(1);
  EXPECT_DOUBLE_EQ(s.bits(0), 20.0);
  EXPECT_DOUBLE_EQ(s.bits(3), 10.0);
  EXPECT_DOUBLE_EQ(s.total_bits(), t.total_bits());
}

TEST(FrameTrace, CircularShiftNegativeAndWrap) {
  const FrameTrace t = Simple();
  const FrameTrace a = t.CircularShift(-1);
  EXPECT_DOUBLE_EQ(a.bits(0), 40.0);
  const FrameTrace b = t.CircularShift(5);
  EXPECT_DOUBLE_EQ(b.bits(0), 20.0);
  const FrameTrace c = t.CircularShift(0);
  EXPECT_DOUBLE_EQ(c.bits(0), 10.0);
}

TEST(FrameTrace, Slice) {
  const FrameTrace t = Simple();
  const FrameTrace s = t.Slice(1, 3);
  EXPECT_EQ(s.frame_count(), 2);
  EXPECT_DOUBLE_EQ(s.bits(0), 20.0);
  EXPECT_DOUBLE_EQ(s.bits(1), 30.0);
  EXPECT_THROW(t.Slice(3, 3), InvalidArgument);
  EXPECT_THROW(t.Slice(0, 5), InvalidArgument);
}

TEST(FrameTrace, AggregateSumsGroups) {
  const FrameTrace t = Simple();
  const FrameTrace a = t.Aggregate(2);
  EXPECT_EQ(a.frame_count(), 2);
  EXPECT_DOUBLE_EQ(a.bits(0), 30.0);
  EXPECT_DOUBLE_EQ(a.bits(1), 70.0);
  EXPECT_DOUBLE_EQ(a.fps(), 1.0);
  // Mean rate is invariant under aggregation.
  EXPECT_DOUBLE_EQ(a.mean_rate(), t.mean_rate());
}

TEST(FrameTrace, AggregateDropsPartialGroup) {
  const FrameTrace t({1, 2, 3, 4, 5}, 1.0);
  const FrameTrace a = t.Aggregate(2);
  EXPECT_EQ(a.frame_count(), 2);
  EXPECT_DOUBLE_EQ(a.bits(1), 7.0);
}

TEST(FrameTrace, AggregateValidation) {
  const FrameTrace t = Simple();
  EXPECT_THROW(t.Aggregate(0), InvalidArgument);
  EXPECT_THROW(t.Aggregate(5), InvalidArgument);
}

TEST(FrameTrace, SlotRates) {
  const FrameTrace t = Simple();
  const auto rates = t.SlotRates();
  ASSERT_EQ(rates.size(), 4u);
  EXPECT_DOUBLE_EQ(rates[0], 20.0);
  EXPECT_DOUBLE_EQ(rates[3], 80.0);
}

}  // namespace
}  // namespace rcbr::trace
