#include "runtime/experiment.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/error.h"

namespace rcbr::runtime {
namespace {

ExperimentArgs Parse(std::vector<std::string> argv) {
  std::vector<char*> raw;
  raw.reserve(argv.size() + 1);
  raw.push_back(const_cast<char*>("experiment"));
  for (std::string& a : argv) raw.push_back(a.data());
  return ParseExperimentArgs(static_cast<int>(raw.size()), raw.data());
}

TEST(ExperimentArgs, DefaultsWithNoFlags) {
  const ExperimentArgs args = Parse({});
  EXPECT_EQ(args.frames, 0);
  EXPECT_EQ(args.seed, 20260706u);
  EXPECT_EQ(args.threads, 0u);
  EXPECT_FALSE(args.quick);
  EXPECT_TRUE(args.write_json);
  EXPECT_EQ(args.json_dir, ".");
  EXPECT_TRUE(args.trace_dir.empty());
  EXPECT_TRUE(args.ts_dir.empty());
  EXPECT_EQ(args.ts_window, 1.0);
  EXPECT_EQ(args.span_sample, 1);
  EXPECT_EQ(args.flight_events, 0u);
  EXPECT_FALSE(args.progress);
}

TEST(ExperimentArgs, ParsesEveryFlag) {
  const ExperimentArgs args =
      Parse({"--frames=1000", "--seed=7", "--threads=4", "--quick",
             "--no-json", "--trace-events=128", "--ts-dir=.",
             "--ts-window=0.5", "--span-sample=16", "--flight-events=256",
             "--progress"});
  EXPECT_EQ(args.frames, 1000);
  EXPECT_EQ(args.seed, 7u);
  EXPECT_EQ(args.threads, 4u);
  EXPECT_TRUE(args.quick);
  EXPECT_FALSE(args.write_json);
  EXPECT_EQ(args.trace_events, 128u);
  EXPECT_EQ(args.ts_dir, ".");
  EXPECT_EQ(args.ts_window, 0.5);
  EXPECT_EQ(args.span_sample, 16);
  EXPECT_EQ(args.flight_events, 256u);
  EXPECT_TRUE(args.progress);
}

TEST(ExperimentArgs, RejectsUnknownFlagsAndPositionals) {
  EXPECT_THROW(Parse({"--france=1000"}), InvalidArgument);
  EXPECT_THROW(Parse({"--threads"}), InvalidArgument);  // missing '='
  EXPECT_THROW(Parse({"extra"}), InvalidArgument);
  EXPECT_THROW(Parse({"--quick=1"}), InvalidArgument);
}

TEST(ExperimentArgs, RejectsNonNumericValues) {
  EXPECT_THROW(Parse({"--threads=two"}), InvalidArgument);
  EXPECT_THROW(Parse({"--seed=0x10"}), InvalidArgument);
  EXPECT_THROW(Parse({"--frames=12.5"}), InvalidArgument);
  EXPECT_THROW(Parse({"--frames="}), InvalidArgument);
  EXPECT_THROW(Parse({"--trace-events=4k"}), InvalidArgument);
}

TEST(ExperimentArgs, RejectsNegativeAndOverflowingValues) {
  EXPECT_THROW(Parse({"--threads=-1"}), InvalidArgument);
  EXPECT_THROW(Parse({"--seed=-7"}), InvalidArgument);
  EXPECT_THROW(Parse({"--frames=-1000"}), InvalidArgument);
  EXPECT_THROW(Parse({"--seed=99999999999999999999999999"}),
               InvalidArgument);
}

TEST(ExperimentArgs, ErrorNamesTheOffendingFlag) {
  try {
    Parse({"--threads=abc"});
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("--threads"), std::string::npos);
  }
}

TEST(ExperimentArgs, RejectsMissingOutputDirectories) {
  EXPECT_THROW(Parse({"--json-dir=/nonexistent/rcbr-out"}),
               InvalidArgument);
  EXPECT_THROW(Parse({"--trace-dir=/nonexistent/rcbr-out"}),
               InvalidArgument);
  EXPECT_THROW(Parse({"--ts-dir=/nonexistent/rcbr-out"}), InvalidArgument);
  // A path that exists but is a file, not a directory.
  EXPECT_THROW(Parse({"--json-dir=/proc/version"}), InvalidArgument);
}

TEST(ExperimentArgs, TsWindowMustBeAPositiveFiniteNumber) {
  EXPECT_THROW(Parse({"--ts-window=0"}), InvalidArgument);
  EXPECT_THROW(Parse({"--ts-window=-2"}), InvalidArgument);
  EXPECT_THROW(Parse({"--ts-window=abc"}), InvalidArgument);
  EXPECT_THROW(Parse({"--ts-window="}), InvalidArgument);
  EXPECT_THROW(Parse({"--ts-window=1.5x"}), InvalidArgument);
  EXPECT_THROW(Parse({"--ts-window=inf"}), InvalidArgument);
  EXPECT_THROW(Parse({"--ts-window=nan"}), InvalidArgument);
  EXPECT_EQ(Parse({"--ts-window=0.25"}).ts_window, 0.25);
}

TEST(ExperimentArgs, SpanSampleAndFlightEventsAreStrictIntegers) {
  EXPECT_THROW(Parse({"--span-sample=-1"}), InvalidArgument);
  EXPECT_THROW(Parse({"--span-sample=every"}), InvalidArgument);
  EXPECT_THROW(Parse({"--span-sample=2.5"}), InvalidArgument);
  EXPECT_THROW(Parse({"--flight-events=-8"}), InvalidArgument);
  EXPECT_THROW(Parse({"--flight-events=4k"}), InvalidArgument);
  // 0 is a valid value for both: spans off, flight recorder off.
  EXPECT_EQ(Parse({"--span-sample=0"}).span_sample, 0);
  EXPECT_EQ(Parse({"--flight-events=0"}).flight_events, 0u);
}

TEST(ExperimentArgs, NoJsonSkipsJsonDirValidation) {
  // --no-json means the directory is never written, so a bogus --json-dir
  // must not fail the run.
  const ExperimentArgs args =
      Parse({"--json-dir=/nonexistent/rcbr-out", "--no-json"});
  EXPECT_FALSE(args.write_json);
}

TEST(ExperimentArgs, AcceptsWritableDirectories) {
  const ExperimentArgs args = Parse({"--json-dir=.", "--trace-dir=."});
  EXPECT_EQ(args.json_dir, ".");
  EXPECT_EQ(args.trace_dir, ".");
}

TEST(ExperimentArgs, ParsesLadderFlags) {
  const ExperimentArgs args =
      Parse({"--ladder-rungs=1,0.7,0.5", "--ladder-utilities=1,0.8,0.6"});
  EXPECT_EQ(args.ladder_rungs, (std::vector<double>{1.0, 0.7, 0.5}));
  EXPECT_EQ(args.ladder_utilities, (std::vector<double>{1.0, 0.8, 0.6}));
  // Default: no ladder.
  EXPECT_TRUE(Parse({}).ladder_rungs.empty());
  EXPECT_TRUE(Parse({}).ladder_utilities.empty());
}

TEST(ExperimentArgs, LadderFlagOrderDoesNotMatter) {
  // Cross-field checks run after the parse loop, so utilities may come
  // first on the command line.
  const ExperimentArgs args =
      Parse({"--ladder-utilities=1,0.8", "--ladder-rungs=1,0.7"});
  EXPECT_EQ(args.ladder_rungs, (std::vector<double>{1.0, 0.7}));
  EXPECT_EQ(args.ladder_utilities, (std::vector<double>{1.0, 0.8}));
}

TEST(ExperimentArgs, RejectsMalformedLadderLists) {
  EXPECT_THROW(Parse({"--ladder-rungs="}), InvalidArgument);  // depth 0
  EXPECT_THROW(Parse({"--ladder-rungs=1,0.7,"}), InvalidArgument);
  EXPECT_THROW(Parse({"--ladder-rungs=1,,0.5"}), InvalidArgument);
  EXPECT_THROW(Parse({"--ladder-rungs=1;0.7"}), InvalidArgument);
  EXPECT_THROW(Parse({"--ladder-rungs=1,0.7x"}), InvalidArgument);
  EXPECT_THROW(Parse({"--ladder-rungs=full,half"}), InvalidArgument);
}

TEST(ExperimentArgs, RejectsInvalidRungScales) {
  EXPECT_THROW(Parse({"--ladder-rungs=0.9,0.5"}), InvalidArgument);
  EXPECT_THROW(Parse({"--ladder-rungs=1,0.5,0.7"}), InvalidArgument);
  EXPECT_THROW(Parse({"--ladder-rungs=1,-0.5"}), InvalidArgument);
  EXPECT_THROW(Parse({"--ladder-rungs=1,0"}), InvalidArgument);
  EXPECT_THROW(Parse({"--ladder-rungs=1,nan"}), InvalidArgument);
  EXPECT_THROW(Parse({"--ladder-rungs=1,inf"}), InvalidArgument);
}

TEST(ExperimentArgs, RejectsInvalidUtilities) {
  // Utilities alone are meaningless.
  EXPECT_THROW(Parse({"--ladder-utilities=1,0.8"}), InvalidArgument);
  EXPECT_THROW(Parse({"--ladder-rungs=1,0.7", "--ladder-utilities=1"}),
               InvalidArgument);
  EXPECT_THROW(Parse({"--ladder-rungs=1,0.7", "--ladder-utilities=1,-1"}),
               InvalidArgument);
  EXPECT_THROW(
      Parse({"--ladder-rungs=1,0.7", "--ladder-utilities=1,nan"}),
      InvalidArgument);
  // Zero utility is a valid "best effort" rung.
  EXPECT_EQ(Parse({"--ladder-rungs=1,0.7", "--ladder-utilities=1,0"})
                .ladder_utilities,
            (std::vector<double>{1.0, 0.0}));
}

TEST(ExperimentArgs, ErrorNamesTheLadderFlag) {
  try {
    Parse({"--ladder-rungs=1,0.5,0.7"});
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("--ladder-rungs"),
              std::string::npos);
  }
}

TEST(ExperimentArgsDeathTest, InvalidLadderExitsWithStatus2) {
  // The OrExit wrapper turns the strict-parse throw into the harness's
  // exit-2 contract.
  std::vector<char*> raw;
  raw.push_back(const_cast<char*>("experiment"));
  raw.push_back(const_cast<char*>("--ladder-rungs="));
  EXPECT_EXIT(ParseExperimentArgsOrExit(static_cast<int>(raw.size()),
                                        raw.data()),
              testing::ExitedWithCode(2), "--ladder-rungs");
}

}  // namespace
}  // namespace rcbr::runtime
