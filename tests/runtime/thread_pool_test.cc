#include "runtime/thread_pool.h"

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace rcbr::runtime {
namespace {

TEST(HardwareThreads, AtLeastOne) { EXPECT_GE(HardwareThreads(), 1u); }

TEST(ThreadPool, ClampsToOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      futures.push_back(pool.Submit([&counter] { ++counter; }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }  // join must run every queued task first
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, StressManyTinyTasks) {
  constexpr int kTasks = 10000;
  std::atomic<std::int64_t> sum{0};
  {
    ThreadPool pool(8);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&sum, i] { sum += i; });
    }
  }
  EXPECT_EQ(sum.load(), static_cast<std::int64_t>(kTasks) * (kTasks - 1) / 2);
}

TEST(ThreadPool, SubmitPropagatesExceptionsThroughFuture) {
  ThreadPool pool(2);
  std::future<void> ok = pool.Submit([] {});
  std::future<void> bad =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    std::vector<std::atomic<int>> hits(257);
    ParallelFor(hits.size(), threads,
                [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, ZeroAndOneElement) {
  int calls = 0;
  ParallelFor(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(1, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, DefaultThreadCountWorks) {
  std::atomic<int> counter{0};
  ParallelFor(64, 0, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ParallelFor, PropagatesFirstException) {
  for (std::size_t threads : {1u, 4u}) {
    EXPECT_THROW(
        ParallelFor(100, threads,
                    [](std::size_t i) {
                      if (i == 37) throw std::runtime_error("point 37");
                    }),
        std::runtime_error);
  }
}

TEST(ParallelFor, SerialPathStopsAtThrowingIndex) {
  int calls = 0;
  EXPECT_THROW(ParallelFor(1000, 1,
                           [&](std::size_t i) {
                             ++calls;
                             if (i == 10) throw std::runtime_error("early");
                           }),
               std::runtime_error);
  EXPECT_EQ(calls, 11);
}

}  // namespace
}  // namespace rcbr::runtime
