#include "runtime/sweep.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/emit.h"
#include "sim/call_sim.h"
#include "util/error.h"
#include "util/piecewise.h"

namespace rcbr::runtime {
namespace {

// A small stepwise-CBR call profile for the call-level simulator.
sim::CallProfile TestProfile() {
  PiecewiseConstant rates({{0, 1.0e6}, {40, 3.0e6}, {80, 1.5e6}}, 120);
  return {rates, 1.0};
}

// A sweep over (capacity multiple, offered load) points of the call-level
// simulator — the exact workload shape of the Figs. 7-10 harnesses.
SweepSpec CallSimSpec() {
  SweepSpec spec;
  spec.name = "determinism_probe";
  spec.notes = {"call-level simulator sweep for the determinism test"};
  spec.parameters = {"capacity_x", "load"};
  spec.metrics = {"failure_prob", "utilization", "blocking"};
  spec.points = GridPoints({{8, 16}, {0.5, 0.8, 1.1}});
  return spec;
}

std::vector<double> CallSimPoint(const SweepContext& ctx) {
  const sim::CallProfile profile = TestProfile();
  const double mean_bps = profile.rates_bps.Mean();
  const double duration = profile.duration_seconds();
  sim::CallSimOptions options;
  options.capacity_bps = ctx.parameters[0] * mean_bps;
  options.arrival_rate_per_s =
      ctx.parameters[1] * options.capacity_bps / (mean_bps * duration);
  options.warmup_seconds = duration;
  options.sample_intervals = 4;
  options.interval_seconds = duration;
  sim::CapacityOnlyPolicy policy;
  Rng rng = ctx.MakeRng();
  const sim::CallSimResult r =
      sim::RunCallSim({profile}, policy, options, rng);
  return {r.failure_probability.mean(), r.utilization.mean(),
          r.blocking_probability()};
}

TEST(RunSweep, CallSimResultsAreIdenticalForEveryThreadCount) {
  const SweepSpec spec = CallSimSpec();
  SweepOptions options;
  options.base_seed = 20260806;

  options.threads = 1;
  const SweepResult serial = RunSweep(spec, CallSimPoint, options);
  ASSERT_EQ(serial.points.size(), spec.points.size());

  for (std::size_t threads : {2u, 8u}) {
    options.threads = threads;
    const SweepResult parallel = RunSweep(spec, CallSimPoint, options);
    ASSERT_EQ(parallel.points.size(), serial.points.size());
    EXPECT_EQ(parallel.threads, threads);
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
      EXPECT_EQ(parallel.points[i].parameters, serial.points[i].parameters);
      EXPECT_EQ(parallel.points[i].seed, serial.points[i].seed);
      // Bit-identical metrics, not just approximately equal.
      EXPECT_EQ(parallel.points[i].metrics, serial.points[i].metrics)
          << "point " << i << " diverged at " << threads << " threads";
    }
    // The portable serialization (timings stripped) must match byte for
    // byte — this is the --threads=1 vs --threads=8 acceptance check.
    EXPECT_EQ(ToJsonWithoutTimings(parallel), ToJsonWithoutTimings(serial));
  }
}

// CallSimPoint with the point's recorder wired through, so the sweep
// captures metrics and trace events.
std::vector<double> InstrumentedCallSimPoint(const SweepContext& ctx) {
  const sim::CallProfile profile = TestProfile();
  const double mean_bps = profile.rates_bps.Mean();
  const double duration = profile.duration_seconds();
  sim::CallSimOptions options;
  options.capacity_bps = ctx.parameters[0] * mean_bps;
  options.arrival_rate_per_s =
      ctx.parameters[1] * options.capacity_bps / (mean_bps * duration);
  options.warmup_seconds = duration;
  options.sample_intervals = 4;
  options.interval_seconds = duration;
  options.recorder = ctx.recorder;
  sim::CapacityOnlyPolicy policy;
  Rng rng = ctx.MakeRng();
  const sim::CallSimResult r =
      sim::RunCallSim({profile}, policy, options, rng);
  return {r.failure_probability.mean(), r.utilization.mean(),
          r.blocking_probability()};
}

TEST(RunSweep, ObsSnapshotsAndTracesAreIdenticalForEveryThreadCount) {
  const SweepSpec spec = CallSimSpec();
  SweepOptions options;
  options.base_seed = 20260806;
  options.event_capacity = 64;

  options.threads = 1;
  const SweepResult serial =
      RunSweep(spec, InstrumentedCallSimPoint, options);
  if constexpr (obs::kEnabled) {
    EXPECT_GT(serial.metrics.counters.at("callsim.offered_calls"), 0);
    EXPECT_FALSE(serial.events.empty());
    EXPECT_NE(ToTraceJsonl(serial).find("\"event\""), std::string::npos);
  } else {
    EXPECT_TRUE(serial.metrics.empty());
    EXPECT_TRUE(serial.events.empty());
  }

  for (std::size_t threads : {2u, 8u}) {
    options.threads = threads;
    // Progress reporting goes to stderr only and must not perturb results.
    options.progress = (threads == 8);
    const SweepResult parallel =
        RunSweep(spec, InstrumentedCallSimPoint, options);
    // Golden check: metrics snapshot and JSONL trace byte-identical.
    EXPECT_EQ(parallel.metrics.ToJson("  "), serial.metrics.ToJson("  "));
    EXPECT_EQ(ToTraceJsonl(parallel), ToTraceJsonl(serial));
    EXPECT_EQ(ToJsonWithoutTimings(parallel), ToJsonWithoutTimings(serial));
  }
}

TEST(Emit, WriteTraceCreatesJsonlFile) {
  const SweepSpec spec = CallSimSpec();
  SweepOptions options;
  options.base_seed = 20260806;
  options.event_capacity = 16;
  const SweepResult result =
      RunSweep(spec, InstrumentedCallSimPoint, options);

  const std::string dir = ::testing::TempDir();
  const std::string path = WriteTrace(result, dir);
  EXPECT_NE(path.find("TRACE_determinism_probe.jsonl"), std::string::npos);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream contents;
  contents << file.rdbuf();
  EXPECT_EQ(contents.str(), ToTraceJsonl(result));
  std::remove(path.c_str());
}

// Exercises the full telemetry surface through the point recorder:
// time-series sampling, span records, event emission, and flight
// triggers, all driven by the point's private RNG stream.
std::vector<double> TelemetryPoint(const SweepContext& ctx) {
  Rng rng = ctx.MakeRng();
  obs::TimeSeries* occupancy =
      obs::FindSeries(ctx.recorder, "probe.occupancy");
  obs::SpanHistogram* span = obs::FindSpan(ctx.recorder, "probe.latency_s");
  double level = 0;
  for (int t = 0; t < 200; ++t) {
    level = std::max(0.0, level + rng.Uniform(-1.0, 1.5));
    if (occupancy != nullptr) occupancy->Sample(t * 0.5, level);
    if (span != nullptr) span->Record(0.001 * (1 + t % 7));
    obs::Emit(ctx.recorder, t * 0.5, obs::EventKind::kRenegGrant, ctx.index,
              {"level", level});
    if (level > 20.0) {
      obs::TriggerFlight(ctx.recorder, t * 0.5,
                         obs::EventKind::kBufferOverflow, ctx.index,
                         {"level", level});
      level = 0;
    }
  }
  return {level};
}

TEST(RunSweep, SeriesSpansAndFlightAreIdenticalForEveryThreadCount) {
  SweepSpec spec;
  spec.name = "telemetry_probe";
  spec.parameters = {};
  spec.metrics = {"final_level"};
  spec.points = {{}, {}, {}, {}, {}, {}};
  SweepOptions options;
  options.base_seed = 20260807;
  options.ts_window_s = 2.0;
  options.flight_events = 8;

  options.threads = 1;
  const SweepResult serial = RunSweep(spec, TelemetryPoint, options);
  if constexpr (obs::kEnabled) {
    ASSERT_FALSE(serial.series.empty());
    EXPECT_FALSE(serial.flight.empty());
    EXPECT_NE(serial.metrics.ToJson().find("probe.latency_s"),
              std::string::npos);
    EXPECT_NE(ToTimeSeriesJsonl(serial).find("\"probe.occupancy\""),
              std::string::npos);
    EXPECT_NE(ToFlightJsonl(serial).find("\"buffer_overflow\""),
              std::string::npos);
  } else {
    EXPECT_TRUE(serial.series.empty());
    EXPECT_TRUE(serial.flight.empty());
  }

  for (std::size_t threads : {2u, 8u}) {
    options.threads = threads;
    const SweepResult parallel = RunSweep(spec, TelemetryPoint, options);
    // Golden: every artifact byte-identical to the serial run.
    EXPECT_EQ(ToTimeSeriesJsonl(parallel), ToTimeSeriesJsonl(serial));
    EXPECT_EQ(ToFlightJsonl(parallel), ToFlightJsonl(serial));
    EXPECT_EQ(parallel.metrics.ToJson("  "), serial.metrics.ToJson("  "));
    EXPECT_EQ(ToJsonWithoutTimings(parallel), ToJsonWithoutTimings(serial));
  }
}

TEST(RunSweep, FlightArtifactIsEmptyWhenNoTriggerFires) {
  SweepSpec spec;
  spec.name = "quiet_probe";
  spec.parameters = {};
  spec.metrics = {"zero"};
  spec.points = {{}, {}};
  SweepOptions options;
  options.flight_events = 8;
  const SweepResult result = RunSweep(
      spec,
      [](const SweepContext& ctx) {
        // Events are recorded into the ring but nothing ever triggers.
        obs::Emit(ctx.recorder, 1.0, obs::EventKind::kRenegGrant, 0);
        return std::vector<double>{0.0};
      },
      options);
  EXPECT_TRUE(result.flight.empty());
  EXPECT_TRUE(ToFlightJsonl(result).empty());
}

TEST(RunSweep, SeriesAreOffWithoutAWindow) {
  SweepSpec spec;
  spec.name = "no_ts_probe";
  spec.parameters = {};
  spec.metrics = {"zero"};
  spec.points = {{}};
  const SweepResult result = RunSweep(
      spec,
      [](const SweepContext& ctx) {
        // Resolves to nullptr: the recorder has no sampler.
        EXPECT_EQ(obs::FindSeries(ctx.recorder, "probe.occupancy"), nullptr);
        obs::Sample(ctx.recorder, "probe.occupancy", 1.0, 2.0);
        return std::vector<double>{0.0};
      },
      {});
  EXPECT_TRUE(result.series.empty());
  EXPECT_TRUE(ToTimeSeriesJsonl(result).empty());
}

TEST(RunSweep, PointSeedsFollowTheStreamSplitContract) {
  SweepSpec spec;
  spec.name = "seeds";
  spec.parameters = {};
  spec.metrics = {"seed_lo"};
  spec.points = {{}, {}, {}};
  SweepOptions options;
  options.base_seed = 42;
  const SweepResult result = RunSweep(
      spec,
      [](const SweepContext& ctx) {
        return std::vector<double>{static_cast<double>(ctx.seed & 0xffff)};
      },
      options);
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    EXPECT_EQ(result.points[i].seed, DeriveStreamSeed(42, i));
  }
}

TEST(RunSweep, RecordsPerPointAndTotalTiming) {
  SweepSpec spec;
  spec.name = "timing";
  spec.parameters = {"x"};
  spec.metrics = {"y"};
  spec.points = {{1}, {2}};
  const SweepResult result = RunSweep(
      spec,
      [](const SweepContext& ctx) {
        return std::vector<double>{ctx.parameters[0] * 2};
      },
      {});
  EXPECT_GE(result.total_seconds, 0.0);
  for (const PointResult& point : result.points) {
    EXPECT_GE(point.seconds, 0.0);
  }
  EXPECT_EQ(result.points[0].metrics[0], 2.0);
  EXPECT_EQ(result.points[1].metrics[0], 4.0);
}

TEST(RunSweep, RejectsRaggedPointsAndWrongMetricCounts) {
  SweepSpec ragged;
  ragged.name = "bad";
  ragged.parameters = {"a", "b"};
  ragged.metrics = {"m"};
  ragged.points = {{1, 2}, {3}};
  EXPECT_THROW(
      RunSweep(ragged, [](const SweepContext&) {
        return std::vector<double>{0};
      }),
      InvalidArgument);

  SweepSpec spec;
  spec.name = "bad_metrics";
  spec.parameters = {"a"};
  spec.metrics = {"m1", "m2"};
  spec.points = {{1}};
  EXPECT_THROW(
      RunSweep(spec, [](const SweepContext&) {
        return std::vector<double>{0};  // one metric, spec wants two
      }),
      InvalidArgument);
}

TEST(GridPoints, LastAxisFastest) {
  const auto points = GridPoints({{1, 2}, {10, 20, 30}});
  ASSERT_EQ(points.size(), 6u);
  EXPECT_EQ(points[0], (std::vector<double>{1, 10}));
  EXPECT_EQ(points[1], (std::vector<double>{1, 20}));
  EXPECT_EQ(points[2], (std::vector<double>{1, 30}));
  EXPECT_EQ(points[3], (std::vector<double>{2, 10}));
  EXPECT_EQ(points[5], (std::vector<double>{2, 30}));
}

TEST(Emit, JsonCarriesNamesValuesAndTimings) {
  SweepSpec spec;
  spec.name = "emit_probe";
  spec.notes = {"a \"quoted\" note"};
  spec.parameters = {"x"};
  spec.metrics = {"y"};
  spec.points = {{1.5}};
  const SweepResult result = RunSweep(
      spec,
      [](const SweepContext& ctx) {
        return std::vector<double>{ctx.parameters[0] * 2};
      },
      {});

  const std::string json = ToJson(result);
  EXPECT_NE(json.find("\"experiment\": \"emit_probe\""), std::string::npos);
  EXPECT_NE(json.find("\"a \\\"quoted\\\" note\""), std::string::npos);
  EXPECT_NE(json.find("\"x\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"y\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"total_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"seconds\""), std::string::npos);

  const std::string stripped = ToJsonWithoutTimings(result);
  EXPECT_EQ(stripped.find("total_seconds"), std::string::npos);
  EXPECT_EQ(stripped.find("\"seconds\""), std::string::npos);
  EXPECT_NE(stripped.find("\"x\": 1.5"), std::string::npos);
}

TEST(Emit, WriteJsonCreatesBenchFile) {
  SweepSpec spec;
  spec.name = "write_probe";
  spec.parameters = {"x"};
  spec.metrics = {"y"};
  spec.points = {{1}};
  const SweepResult result = RunSweep(
      spec,
      [](const SweepContext&) { return std::vector<double>{7}; }, {});

  const std::string dir = ::testing::TempDir();
  const std::string path = WriteJson(result, dir);
  EXPECT_NE(path.find("BENCH_write_probe.json"), std::string::npos);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream contents;
  contents << file.rdbuf();
  EXPECT_EQ(contents.str(), ToJson(result));
  std::remove(path.c_str());
}

TEST(Emit, WriteJsonRejectsUnwritableDirectory) {
  SweepSpec spec;
  spec.name = "nowhere";
  spec.metrics = {"y"};
  spec.points = {{}};
  const SweepResult result = RunSweep(
      spec,
      [](const SweepContext&) { return std::vector<double>{0}; }, {});
  EXPECT_THROW(WriteJson(result, "/nonexistent/dir"), InvalidArgument);
}

}  // namespace
}  // namespace rcbr::runtime
