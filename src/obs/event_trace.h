// Structured event tracing for the domain events the paper's claims hinge
// on: renegotiation requests/grants/denials, buffer overflow/underflow,
// admission accept/reject with the Chernoff margin, RM-cell loss, and DP
// trellis pruning.
//
// An EventTracer is a bounded buffer of TraceEvents. Recording is cheap
// (no allocation: fixed-arity numeric payload with string-literal keys)
// and keeps the *first* `capacity` events — dropping the newest, not the
// oldest, so the retained prefix is stable no matter how long a run gets;
// a drop counter reports truncation. The experiment runtime gives each
// sweep point its own tracer and concatenates them in point-index order,
// which makes the JSONL sink byte-identical across thread counts (event
// times are simulation time, never wall clock).
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/enabled.h"

namespace rcbr::obs {

enum class EventKind : std::uint8_t {
  kRenegRequest,     // source decided to ask for a new rate
  kRenegGrant,       // network granted the request
  kRenegDeny,        // network denied it (source keeps its old rate)
  kBufferOverflow,   // queue spilled bits this slot
  kBufferUnderflow,  // queue drained to empty while service outpaced input
  kAdmitAccept,      // admission policy accepted a call
  kAdmitReject,      // admission policy (or raw capacity) rejected a call
  kCallDeparture,    // a call left the system
  kRmCellLoss,       // signaling delta cell lost in transit
  kResync,           // absolute-rate resync cell repaired drift
  kDpPrune,          // DP trellis epoch: candidates generated vs retained
  kRenegTimeout,     // request (or its response) missed the source deadline
  kRenegRetry,       // source retransmits after backoff
  kDegradeHold,      // source stops asking and holds its granted rate
  kDegradeFallback,  // source escalated to the peak-rate fallback
  kDegradeRecover,   // source renegotiated back to schedule-driven rates
  kFaultBurst,       // fault plan opened an RM-cell loss/delay burst
  kLinkDown,         // fault plan failed a link
  kLinkUp,           // fault plan repaired a link
  kControllerRestart,// port controller crashed and restarted (state loss)
  kCallRerouted,     // active call moved to an alternate route
  kCallDropped,      // active call lost (no feasible alternate route)
  kCallUpgrade,      // downgraded call promoted to a better ladder rung
};

/// Stable wire name of `kind` (the JSONL "event" field).
const char* EventKindName(EventKind kind);

struct TraceEvent {
  /// Simulation time: seconds for event-driven simulators, slot index for
  /// slotted ones, epoch start slot for the DP. Never wall clock.
  double time = 0;
  EventKind kind = EventKind::kRenegRequest;
  /// Domain identifier: vci, call id, or epoch index.
  std::uint64_t id = 0;

  /// Up to four named numeric payload fields. `name` must point at a
  /// string literal (static storage); nullptr marks an unused slot (the
  /// serializer skips it, so events using fewer slots are byte-identical
  /// to the three-slot era).
  struct Field {
    const char* name = nullptr;
    double value = 0;
  };
  std::array<Field, 4> fields{};
};

class EventTracer {
 public:
  /// Keeps at most `capacity` events; further Record calls only bump the
  /// drop counter.
  explicit EventTracer(std::size_t capacity);

  void Record(const TraceEvent& event);

  std::size_t capacity() const { return capacity_; }
  std::int64_t dropped() const;
  std::vector<TraceEvent> Events() const;

  /// AppendJsonl(point, Events(), out).
  void AppendJsonl(std::size_t point, std::string& out) const;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::int64_t dropped_ = 0;
};

/// Appends one JSONL line per event:
///   {"point": P, "seq": S, "t": T, "event": "...", "id": I, <fields>}
/// `point` tags which sweep point produced the trace; `seq` is the index
/// within `events`. This is the one serializer every trace sink uses.
void AppendJsonl(std::size_t point, const std::vector<TraceEvent>& events,
                 std::string& out);

}  // namespace rcbr::obs
