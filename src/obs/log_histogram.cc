#include "obs/log_histogram.h"

#include <algorithm>
#include <cmath>

namespace rcbr::obs {

namespace {

// Decomposes a bucket key into (exponent, sub-bucket).
constexpr std::int32_t kSub = LogHistogram::kSubBuckets;

std::int32_t FloorDiv(std::int32_t a, std::int32_t b) {
  std::int32_t q = a / b;
  if ((a % b) != 0 && ((a < 0) != (b < 0))) --q;
  return q;
}

std::int32_t FloorMod(std::int32_t a, std::int32_t b) {
  std::int32_t m = a % b;
  if (m != 0 && ((a < 0) != (b < 0))) m += b;
  return m;
}

}  // namespace

std::int32_t LogHistogram::BucketKey(double value) {
  // value = m * 2^e with m in [0.5, 1). The sub-bucket index inside the
  // octave [2^(e-1), 2^e) is floor((2m - 1) * kSub), clamped for the
  // m -> 1 rounding edge.
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);
  std::int32_t sub =
      static_cast<std::int32_t>((mantissa * 2.0 - 1.0) * kSub);
  if (sub >= kSub) sub = kSub - 1;
  if (sub < 0) sub = 0;
  return static_cast<std::int32_t>(exp) * kSub + sub;
}

double LogHistogram::BucketLowerBound(std::int32_t key) {
  const std::int32_t exp = FloorDiv(key, kSub);
  const std::int32_t sub = FloorMod(key, kSub);
  return std::ldexp(1.0 + static_cast<double>(sub) / kSub, exp - 1);
}

double LogHistogram::BucketUpperBound(std::int32_t key) {
  const std::int32_t exp = FloorDiv(key, kSub);
  const std::int32_t sub = FloorMod(key, kSub);
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSub, exp - 1);
}

void LogHistogram::Record(double value, std::int64_t n) {
  if (n <= 0) return;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += n;
  sum_ += value * static_cast<double>(n);
  if (!(value > 0.0) || !std::isfinite(value)) {
    underflow_ += n;
    return;
  }
  buckets_[BucketKey(value)] += n;
}

LogHistogramValue LogHistogram::value() const {
  LogHistogramValue v;
  v.count = count_;
  v.underflow = underflow_;
  v.min = min_;
  v.max = max_;
  v.sum = sum_;
  v.buckets.assign(buckets_.begin(), buckets_.end());
  return v;
}

void LogHistogram::Merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  underflow_ += other.underflow_;
  sum_ += other.sum_;
  for (const auto& [key, n] : other.buckets_) buckets_[key] += n;
}

void LogHistogramValue::Merge(const LogHistogramValue& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  underflow += other.underflow;
  sum += other.sum;
  // Both bucket lists are sorted by key; merge-add into a fresh list.
  std::vector<std::pair<std::int32_t, std::int64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < buckets.size() || j < other.buckets.size()) {
    if (j >= other.buckets.size() ||
        (i < buckets.size() && buckets[i].first < other.buckets[j].first)) {
      merged.push_back(buckets[i++]);
    } else if (i >= buckets.size() ||
               other.buckets[j].first < buckets[i].first) {
      merged.push_back(other.buckets[j++]);
    } else {
      merged.emplace_back(buckets[i].first,
                          buckets[i].second + other.buckets[j].second);
      ++i;
      ++j;
    }
  }
  buckets = std::move(merged);
}

double LogHistogramValue::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (!(q > 0.0)) return min;  // also catches NaN
  if (q >= 1.0) return max;
  const auto target = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::int64_t cumulative = underflow;
  if (cumulative >= target) return min;
  for (const auto& [key, n] : buckets) {
    cumulative += n;
    if (cumulative >= target) {
      const double bound = LogHistogram::BucketUpperBound(key);
      return std::min(std::max(bound, min), max);
    }
  }
  return max;
}

}  // namespace rcbr::obs
