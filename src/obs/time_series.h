// Sim-time time-series sampling.
//
// A TimeSeries aggregates samples into fixed-width windows on the *sim*
// clock (never wall clock — see docs/algorithms.md §7): window k covers
// [k*w, (k+1)*w). Each window keeps count/sum/min/max/last, which is
// enough to render utilization, occupancy, and per-window event rates
// without storing every sample. Storage is proportional to the number of
// touched windows, so a million-call run with a 1 s window stays small.
//
// Determinism contract: windows are identified by floor(t / w) — a pure
// function of the sample — and each sweep point owns a private sampler
// (see runtime::RunSweep), so the per-point window list is independent
// of thread count and the merged TS_<name>.jsonl is byte-identical
// across --threads.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rcbr::obs {

/// Aggregate of the samples that landed in one window.
struct SeriesWindow {
  std::int64_t window = 0;  ///< floor(t / window_s)
  std::int64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double last = 0;  ///< sample with the largest arrival order in the window

  void Observe(double value) {
    if (count == 0) {
      min = value;
      max = value;
    } else {
      if (value < min) min = value;
      if (value > max) max = value;
    }
    ++count;
    sum += value;
    last = value;
  }
};

/// One named series: windowed aggregates, appended mostly in time order.
/// Thread-safe; samplers are typically per-sweep-point so contention is
/// the single sim thread plus the merge.
class TimeSeries {
 public:
  explicit TimeSeries(double window_s) : window_s_(window_s) {}

  double window_s() const { return window_s_; }

  /// Folds `value` into the window containing sim time `t`. Samples
  /// usually arrive in nondecreasing time; an out-of-order sample walks
  /// back to (or inserts) its window, so correctness never depends on
  /// monotonicity.
  void Sample(double t, double value);

  /// Copies the window list (sorted by window index).
  std::vector<SeriesWindow> Windows() const;

 private:
  const double window_s_;
  mutable std::mutex mutex_;
  std::vector<SeriesWindow> windows_;
};

/// Snapshot of every registered series, suitable for point-order merge.
struct TimeSeriesSnapshot {
  double window_s = 0;
  std::map<std::string, std::vector<SeriesWindow>> series;

  bool empty() const { return series.empty(); }
};

/// Registry of named TimeSeries sharing one window width. Mirrors
/// MetricsRegistry: GetSeries returns a stable reference for resolve-once
/// handles on hot paths.
class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(double window_s) : window_s_(window_s) {}

  double window_s() const { return window_s_; }

  TimeSeries& GetSeries(const std::string& name);

  TimeSeriesSnapshot Snapshot() const;

 private:
  const double window_s_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<TimeSeries>> series_;
};

}  // namespace rcbr::obs
