#include "obs/time_series.h"

#include <algorithm>
#include <cmath>

namespace rcbr::obs {

void TimeSeries::Sample(double t, double value) {
  const auto idx = static_cast<std::int64_t>(std::floor(t / window_s_));
  std::lock_guard<std::mutex> lock(mutex_);
  if (windows_.empty() || idx > windows_.back().window) {
    windows_.push_back(SeriesWindow{idx});
    windows_.back().Observe(value);
    return;
  }
  if (idx == windows_.back().window) {
    windows_.back().Observe(value);
    return;
  }
  // Rare out-of-order sample: binary-search the sorted window list.
  auto it = std::lower_bound(
      windows_.begin(), windows_.end(), idx,
      [](const SeriesWindow& w, std::int64_t i) { return w.window < i; });
  if (it == windows_.end() || it->window != idx) {
    it = windows_.insert(it, SeriesWindow{idx});
  }
  it->Observe(value);
}

std::vector<SeriesWindow> TimeSeries::Windows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return windows_;
}

TimeSeries& TimeSeriesSampler::GetSeries(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = series_[name];
  if (!slot) slot = std::make_unique<TimeSeries>(window_s_);
  return *slot;
}

TimeSeriesSnapshot TimeSeriesSampler::Snapshot() const {
  TimeSeriesSnapshot snapshot;
  snapshot.window_s = window_s_;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, series] : series_) {
    auto windows = series->Windows();
    if (!windows.empty()) snapshot.series.emplace(name, std::move(windows));
  }
  return snapshot;
}

}  // namespace rcbr::obs
