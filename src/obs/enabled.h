// Compile-time switch for the observability layer.
//
// The build defines RCBR_OBS_ENABLED=0 when configured with
// -DRCBR_OBS=OFF; every instrumentation call site in the library is
// guarded by `if constexpr (obs::kEnabled)`, so a disabled build
// type-checks the full obs API but emits no instrumentation code at all —
// the acceptance bar is a 0% wall-clock delta against an uninstrumented
// tree.
#pragma once

#ifndef RCBR_OBS_ENABLED
#define RCBR_OBS_ENABLED 1
#endif

namespace rcbr::obs {

inline constexpr bool kEnabled = RCBR_OBS_ENABLED != 0;

}  // namespace rcbr::obs
