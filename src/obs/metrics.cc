#include "obs/metrics.h"

#include <algorithm>

#include "util/error.h"
#include "util/json.h"

namespace rcbr::obs {

void GaugeValue::Observe(double x) {
  if (count == 0) {
    min = x;
    max = x;
  } else {
    min = std::min(min, x);
    max = std::max(max, x);
  }
  ++count;
  last = x;
  sum += x;
}

void GaugeValue::Merge(const GaugeValue& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  last = other.last;
}

void Gauge::Set(double x) {
  std::lock_guard<std::mutex> lock(mutex_);
  value_.Observe(x);
}

GaugeValue Gauge::value() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return value_;
}

void HistogramValue::Merge(const HistogramValue& other) {
  if (other.values.empty()) return;
  if (values.empty()) {
    *this = other;
    return;
  }
  Require(values == other.values,
          "HistogramValue::Merge: bucket grid mismatch");
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] += other.weights[i];
  }
  total_weight += other.total_weight;
}

MetricHistogram::MetricHistogram(std::vector<double> bucket_values)
    : histogram_(std::move(bucket_values)) {}

void MetricHistogram::Observe(double value, double weight) {
  std::lock_guard<std::mutex> lock(mutex_);
  histogram_.AddNearest(value, weight);
}

HistogramValue MetricHistogram::value() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {histogram_.values(), histogram_.weights(),
          histogram_.total_weight()};
}

void SpanHistogram::Record(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (seen_ % sample_every_ == 0) histogram_.Record(seconds);
  ++seen_;
}

SpanValue SpanHistogram::value() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {histogram_.value(), seen_};
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name].Merge(value);
  for (const auto& [name, value] : other.histograms) {
    histograms[name].Merge(value);
  }
  for (const auto& [name, value] : other.spans) spans[name].Merge(value);
}

namespace {

std::string NumberArray(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += json::Number(values[i]);
  }
  return out + "]";
}

}  // namespace

std::string MetricsSnapshot::ToJson(const std::string& indent) const {
  const std::string pad = indent + "  ";
  const std::string pad2 = pad + "  ";
  std::string out = "{";
  bool first_section = true;
  auto open_section = [&](const char* name) {
    if (!first_section) out += ",";
    first_section = false;
    out += "\n" + pad + json::Quote(name) + ": {";
  };

  if (!counters.empty()) {
    open_section("counters");
    bool first = true;
    for (const auto& [name, value] : counters) {
      out += first ? "\n" : ",\n";
      first = false;
      out += pad2 + json::Quote(name) + ": " + std::to_string(value);
    }
    out += "\n" + pad + "}";
  }
  if (!gauges.empty()) {
    open_section("gauges");
    bool first = true;
    for (const auto& [name, g] : gauges) {
      out += first ? "\n" : ",\n";
      first = false;
      out += pad2 + json::Quote(name) + ": {\"count\": " +
             std::to_string(g.count) + ", \"last\": " + json::Number(g.last) +
             ", \"sum\": " + json::Number(g.sum) +
             ", \"min\": " + json::Number(g.min) +
             ", \"max\": " + json::Number(g.max) + "}";
    }
    out += "\n" + pad + "}";
  }
  if (!histograms.empty()) {
    open_section("histograms");
    bool first = true;
    for (const auto& [name, h] : histograms) {
      out += first ? "\n" : ",\n";
      first = false;
      out += pad2 + json::Quote(name) +
             ": {\"values\": " + NumberArray(h.values) +
             ", \"weights\": " + NumberArray(h.weights) +
             ", \"total_weight\": " + json::Number(h.total_weight) + "}";
    }
    out += "\n" + pad + "}";
  }
  if (!spans.empty()) {
    open_section("spans");
    bool first = true;
    for (const auto& [name, s] : spans) {
      out += first ? "\n" : ",\n";
      first = false;
      const LogHistogramValue& v = s.value;
      out += pad2 + json::Quote(name) + ": {\"seen\": " +
             std::to_string(s.seen) +
             ", \"count\": " + std::to_string(v.count) +
             ", \"underflow\": " + std::to_string(v.underflow) +
             ", \"min\": " + json::Number(v.min) +
             ", \"max\": " + json::Number(v.max) +
             ", \"sum\": " + json::Number(v.sum) +
             ", \"p50\": " + json::Number(v.Quantile(0.5)) +
             ", \"p90\": " + json::Number(v.Quantile(0.9)) +
             ", \"p99\": " + json::Number(v.Quantile(0.99)) +
             ", \"buckets\": [";
      for (std::size_t i = 0; i < v.buckets.size(); ++i) {
        if (i > 0) out += ", ";
        out += "[" + json::Number(LogHistogram::BucketLowerBound(
                         v.buckets[i].first)) +
               ", " + std::to_string(v.buckets[i].second) + "]";
      }
      out += "]}";
    }
    out += "\n" + pad + "}";
  }
  out += first_section ? "}" : "\n" + indent + "}";
  return out;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

MetricHistogram& MetricsRegistry::GetHistogram(
    const std::string& name, const std::vector<double>& bucket_values) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<MetricHistogram>(bucket_values);
  return *slot;
}

SpanHistogram& MetricsRegistry::GetSpan(const std::string& name,
                                        std::int64_t sample_every) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = spans_[name];
  if (slot == nullptr) slot = std::make_unique<SpanHistogram>(sample_every);
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->value();
  }
  for (const auto& [name, span] : spans_) {
    SpanValue value = span->value();
    if (value.seen > 0) snapshot.spans.emplace(name, std::move(value));
  }
  return snapshot;
}

}  // namespace rcbr::obs
