// Flight recorder: a bounded ring of the most recent trace events, dumped
// as a postmortem when something goes wrong.
//
// The EventTracer keeps the *first* N events of a run (stable prefix for
// golden traces); the flight recorder is its complement — it keeps the
// *last* N, so when the fault subsystem downs a link, restarts a
// controller, or a queue overflows, the window of events leading up to
// the incident is still in memory. Trigger() freezes the ring into a
// FlightDump; the sweep harness serializes dumps in point-index order to
// FLIGHT_<name>.jsonl, replacing "re-run with full tracing" as the
// debugging workflow.
//
// A run can trip the same trigger thousands of times (every overflowing
// slot, every link of a flapping plan), so dumps are capped per recorder;
// suppressed triggers are counted and surfaced in the artifact.
//
// Determinism contract: events carry sim time only, each sweep point owns
// a private recorder, and dumps are merged in point order — so the
// postmortem artifact is byte-identical across --threads.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/event_trace.h"

namespace rcbr::obs {

/// One frozen postmortem: the triggering event plus the ring contents
/// (oldest to newest) at the moment of the trigger.
struct FlightDump {
  TraceEvent trigger;
  std::vector<TraceEvent> events;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultMaxDumps = 4;

  /// Keeps the newest `capacity` events; Trigger() snapshots them. At
  /// most `max_dumps` dumps are kept; later triggers only count.
  explicit FlightRecorder(std::size_t capacity,
                          std::size_t max_dumps = kDefaultMaxDumps);

  std::size_t capacity() const { return capacity_; }

  /// Records `event` into the ring, evicting the oldest when full.
  void Record(const TraceEvent& event);

  /// Freezes the current ring into a dump attributed to `trigger`.
  /// Beyond max_dumps the trigger is counted as suppressed instead.
  void Trigger(const TraceEvent& trigger);

  /// Dumps in trigger order.
  std::vector<FlightDump> Dumps() const;

  /// Triggers that arrived after the dump cap was reached.
  std::int64_t suppressed() const;

 private:
  mutable std::mutex mutex_;
  const std::size_t capacity_;
  const std::size_t max_dumps_;
  std::vector<TraceEvent> ring_;  // ring_.size() <= capacity_
  std::size_t next_ = 0;          // eviction cursor once the ring is full
  std::vector<FlightDump> dumps_;
  std::int64_t suppressed_ = 0;
};

/// Appends the JSONL postmortem for one sweep point: per dump, a header
/// line
///   {"point": P, "dump": D, "window": N, "trigger": "...", "t": T,
///    "id": I, <trigger fields>}
/// followed by the ring contents in trace-line format (each line gaining
/// a "dump" tag), and — if any triggers were suppressed — one trailer
/// line
///   {"point": P, "event": "flight_dumps_suppressed", "suppressed": S}.
void AppendFlightJsonl(std::size_t point, const std::vector<FlightDump>& dumps,
                       std::int64_t suppressed, std::string& out);

}  // namespace rcbr::obs
