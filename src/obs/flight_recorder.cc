#include "obs/flight_recorder.h"

#include "util/json.h"

namespace rcbr::obs {

namespace {

// Same field layout as the trace serializer in event_trace.cc, with the
// "dump" tag spliced in so every line of the artifact is self-describing.
void AppendEventBody(const TraceEvent& e, std::string& out) {
  out += ", \"t\": " + json::Number(e.time) + ", \"event\": " +
         json::Quote(EventKindName(e.kind)) +
         ", \"id\": " + std::to_string(e.id);
  for (const TraceEvent::Field& field : e.fields) {
    if (field.name == nullptr) continue;
    out += ", " + json::Quote(field.name) + ": " + json::Number(field.value);
  }
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity, std::size_t max_dumps)
    : capacity_(capacity), max_dumps_(max_dumps) {
  ring_.reserve(capacity < 1024 ? capacity : 1024);
}

void FlightRecorder::Record(const TraceEvent& event) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  ring_[next_] = event;
  next_ = (next_ + 1) % capacity_;
}

void FlightRecorder::Trigger(const TraceEvent& trigger) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dumps_.size() >= max_dumps_) {
    ++suppressed_;
    return;
  }
  FlightDump dump;
  dump.trigger = trigger;
  dump.events.reserve(ring_.size());
  // Oldest-to-newest: once full, the eviction cursor points at the
  // oldest surviving event.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    dump.events.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  dumps_.push_back(std::move(dump));
}

std::vector<FlightDump> FlightRecorder::Dumps() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dumps_;
}

std::int64_t FlightRecorder::suppressed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return suppressed_;
}

void AppendFlightJsonl(std::size_t point, const std::vector<FlightDump>& dumps,
                       std::int64_t suppressed, std::string& out) {
  for (std::size_t d = 0; d < dumps.size(); ++d) {
    const FlightDump& dump = dumps[d];
    out += "{\"point\": " + std::to_string(point) +
           ", \"dump\": " + std::to_string(d) +
           ", \"window\": " + std::to_string(dump.events.size()) +
           ", \"trigger\": " + json::Quote(EventKindName(dump.trigger.kind));
    out += ", \"t\": " + json::Number(dump.trigger.time) +
           ", \"id\": " + std::to_string(dump.trigger.id);
    for (const TraceEvent::Field& field : dump.trigger.fields) {
      if (field.name == nullptr) continue;
      out += ", " + json::Quote(field.name) + ": " + json::Number(field.value);
    }
    out += "}\n";
    for (std::size_t seq = 0; seq < dump.events.size(); ++seq) {
      out += "{\"point\": " + std::to_string(point) +
             ", \"dump\": " + std::to_string(d) +
             ", \"seq\": " + std::to_string(seq);
      AppendEventBody(dump.events[seq], out);
      out += "}\n";
    }
  }
  if (suppressed > 0) {
    out += "{\"point\": " + std::to_string(point) +
           ", \"event\": \"flight_dumps_suppressed\", \"suppressed\": " +
           std::to_string(suppressed) + "}\n";
  }
}

}  // namespace rcbr::obs
