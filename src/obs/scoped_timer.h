// Wall-clock phase profiling, kept strictly apart from the deterministic
// metrics: timings vary run to run, so they live in their own registry
// and are reported only through the provenance ("timings") side of
// BENCH_<name>.json — never through the portable snapshot the golden
// determinism tests compare.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/enabled.h"

namespace rcbr::obs {

struct PhaseProfile {
  std::int64_t calls = 0;
  double seconds = 0;

  void Merge(const PhaseProfile& other) {
    calls += other.calls;
    seconds += other.seconds;
  }
};

class ProfileRegistry {
 public:
  void Record(const std::string& phase, double seconds);
  std::map<std::string, PhaseProfile> Snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, PhaseProfile> phases_;
};

class Recorder;  // recorder.h

/// RAII timer: accumulates the scope's wall-clock duration into the
/// recorder's ProfileRegistry under `phase` (a string literal). A null
/// recorder — or a build with RCBR_OBS=OFF — records nothing.
class ScopedTimer {
 public:
  ScopedTimer(Recorder* recorder, const char* phase);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Recorder* recorder_;
  const char* phase_;
  double start_seconds_ = 0;
};

}  // namespace rcbr::obs
