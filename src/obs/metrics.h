// Thread-safe metrics: counters, gauges, and fixed-bucket histograms.
//
// A MetricsRegistry is a named collection of instruments. Registration
// (name -> instrument) takes a mutex; the returned references are stable
// for the registry's lifetime, so hot loops resolve an instrument once and
// then update it lock-free (counters) or under a tiny uncontended mutex
// (gauges, histograms).
//
// Determinism contract: instruments record only *simulation* quantities
// (event counts, sim-time values, occupancies) — never wall-clock time,
// which belongs to the ProfileRegistry (scoped_timer.h). A Snapshot is a
// plain value type; the experiment runtime takes one snapshot per sweep
// point and merges them in point-index order, which makes the merged
// snapshot bit-identical for every thread count (the same guarantee
// RunSweep makes for metric values).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/enabled.h"
#include "obs/log_histogram.h"
#include "util/histogram.h"

namespace rcbr::obs {

/// Monotonic integer count; lock-free.
class Counter {
 public:
  void Add(std::int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Aggregate view of a gauge's history: the last value set plus running
/// count / sum / extrema, so a merged snapshot can report min/max/mean
/// without keeping samples.
struct GaugeValue {
  std::int64_t count = 0;
  double last = 0;
  double sum = 0;
  double min = 0;
  double max = 0;

  void Observe(double x);
  /// Folds `other` in as if its observations came after this one's.
  void Merge(const GaugeValue& other);
};

/// A double-valued instrument: Set() records one observation.
class Gauge {
 public:
  void Set(double x);
  GaugeValue value() const;

 private:
  mutable std::mutex mutex_;
  GaugeValue value_;
};

/// Snapshot of a fixed-bucket histogram: the grid, per-bucket mass, and
/// total weight (the same representation as rcbr::Histogram).
struct HistogramValue {
  std::vector<double> values;
  std::vector<double> weights;
  double total_weight = 0;

  /// Requires an identical grid (instruments sharing a name are created
  /// from the same code path, so grids always match).
  void Merge(const HistogramValue& other);
};

/// Fixed-bucket histogram over an explicit value grid; observations land
/// on the nearest grid value (rcbr::Histogram semantics).
class MetricHistogram {
 public:
  explicit MetricHistogram(std::vector<double> bucket_values);

  void Observe(double value, double weight = 1.0);
  HistogramValue value() const;

 private:
  mutable std::mutex mutex_;
  Histogram histogram_;
};

/// Snapshot of a span histogram: the log-bucketed latency distribution
/// plus `seen`, the pre-sampling stream length (== value.count when the
/// span is unsampled, larger when --span-sample N keeps every Nth).
struct SpanValue {
  LogHistogramValue value;
  std::int64_t seen = 0;

  void Merge(const SpanValue& other) {
    value.Merge(other.value);
    seen += other.seen;
  }
};

/// Sim-time span durations recorded into a LogHistogram, with optional
/// 1-in-N sampling decided at registration (the recorder's --span-sample
/// knob). The first observation is always kept so short runs still show
/// a distribution.
class SpanHistogram {
 public:
  explicit SpanHistogram(std::int64_t sample_every)
      : sample_every_(sample_every > 0 ? sample_every : 1) {}

  void Record(double seconds);
  SpanValue value() const;

 private:
  const std::int64_t sample_every_;
  mutable std::mutex mutex_;
  LogHistogram histogram_;
  std::int64_t seen_ = 0;
};

/// Value-type snapshot of a whole registry. Maps are ordered by name, so
/// serialization is deterministic.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, GaugeValue> gauges;
  std::map<std::string, HistogramValue> histograms;
  std::map<std::string, SpanValue> spans;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           spans.empty();
  }

  /// Folds `other` in: counters add, gauges fold sequentially, histogram
  /// weights and span buckets add. Callers needing determinism must merge
  /// in a fixed order (the sweep engine merges by point index).
  void Merge(const MetricsSnapshot& other);

  /// One JSON object {"counters": {...}, "gauges": {...},
  /// "histograms": {...}, "spans": {...}}, each map sorted by name;
  /// sections that are empty are omitted. Deterministic for equal
  /// snapshots.
  std::string ToJson(const std::string& indent = "") const;
};

/// Named instruments, safe for concurrent registration and update.
class MetricsRegistry {
 public:
  /// Returns the counter named `name`, creating it on first use.
  Counter& GetCounter(const std::string& name);

  /// Returns the gauge named `name`, creating it on first use.
  Gauge& GetGauge(const std::string& name);

  /// Returns the histogram named `name`, creating it over `bucket_values`
  /// on first use (later calls ignore the grid argument).
  MetricHistogram& GetHistogram(const std::string& name,
                                const std::vector<double>& bucket_values);

  /// Returns the span histogram named `name`, creating it with
  /// `sample_every` on first use (later calls ignore the argument —
  /// instruments sharing a name are resolved from one recorder, so the
  /// knob always matches).
  SpanHistogram& GetSpan(const std::string& name,
                         std::int64_t sample_every = 1);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<MetricHistogram>> histograms_;
  std::map<std::string, std::unique_ptr<SpanHistogram>> spans_;
};

}  // namespace rcbr::obs
