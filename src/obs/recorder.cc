#include "obs/recorder.h"

#include <chrono>

namespace rcbr::obs {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void ProfileRegistry::Record(const std::string& phase, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  PhaseProfile& profile = phases_[phase];
  ++profile.calls;
  profile.seconds += seconds;
}

std::map<std::string, PhaseProfile> ProfileRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return phases_;
}

ScopedTimer::ScopedTimer(Recorder* recorder, const char* phase)
    : recorder_(kEnabled ? recorder : nullptr), phase_(phase) {
  if (recorder_ != nullptr) start_seconds_ = MonotonicSeconds();
}

ScopedTimer::~ScopedTimer() {
  if (recorder_ != nullptr) {
    recorder_->profile().Record(phase_,
                                MonotonicSeconds() - start_seconds_);
  }
}

}  // namespace rcbr::obs
