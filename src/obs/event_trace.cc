#include "obs/event_trace.h"

#include "util/json.h"

namespace rcbr::obs {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kRenegRequest: return "reneg_request";
    case EventKind::kRenegGrant: return "reneg_grant";
    case EventKind::kRenegDeny: return "reneg_deny";
    case EventKind::kBufferOverflow: return "buffer_overflow";
    case EventKind::kBufferUnderflow: return "buffer_underflow";
    case EventKind::kAdmitAccept: return "admit_accept";
    case EventKind::kAdmitReject: return "admit_reject";
    case EventKind::kCallDeparture: return "call_departure";
    case EventKind::kRmCellLoss: return "rm_cell_loss";
    case EventKind::kResync: return "resync";
    case EventKind::kDpPrune: return "dp_prune";
    case EventKind::kRenegTimeout: return "reneg_timeout";
    case EventKind::kRenegRetry: return "reneg_retry";
    case EventKind::kDegradeHold: return "degrade_hold";
    case EventKind::kDegradeFallback: return "degrade_fallback";
    case EventKind::kDegradeRecover: return "degrade_recover";
    case EventKind::kFaultBurst: return "fault_burst";
    case EventKind::kLinkDown: return "link_down";
    case EventKind::kLinkUp: return "link_up";
    case EventKind::kControllerRestart: return "controller_restart";
    case EventKind::kCallRerouted: return "call_rerouted";
    case EventKind::kCallDropped: return "call_dropped";
    case EventKind::kCallUpgrade: return "call_upgrade";
  }
  return "unknown";
}

EventTracer::EventTracer(std::size_t capacity) : capacity_(capacity) {
  events_.reserve(capacity < 1024 ? capacity : 1024);
}

void EventTracer::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

std::int64_t EventTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<TraceEvent> EventTracer::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void EventTracer::AppendJsonl(std::size_t point, std::string& out) const {
  obs::AppendJsonl(point, Events(), out);
}

void AppendJsonl(std::size_t point, const std::vector<TraceEvent>& events,
                 std::string& out) {
  for (std::size_t seq = 0; seq < events.size(); ++seq) {
    const TraceEvent& e = events[seq];
    out += "{\"point\": " + std::to_string(point) +
           ", \"seq\": " + std::to_string(seq) +
           ", \"t\": " + json::Number(e.time) + ", \"event\": " +
           json::Quote(EventKindName(e.kind)) +
           ", \"id\": " + std::to_string(e.id);
    for (const TraceEvent::Field& field : e.fields) {
      if (field.name == nullptr) continue;
      out += ", " + json::Quote(field.name) + ": " +
             json::Number(field.value);
    }
    out += "}\n";
  }
}

}  // namespace rcbr::obs
