// Log-bucketed (HDR-style) histograms for span latencies.
//
// Span durations range over many decades (a lossless renegotiation round
// trip is microseconds of sim time; a fallback dwell can be minutes), so
// fixed-grid histograms either blur the tail or explode in buckets.
// LogHistogram buckets every positive value into one of kSubBuckets
// logarithmic sub-buckets per power of two — a bounded ~12.5% relative
// error at 8 sub-buckets — with exact min/max kept on the side so the
// extreme quantiles stay exact.
//
// Determinism contract: the bucket of a value is a pure function of its
// bits (frexp arithmetic, no floating-point accumulation), bucket counts
// are integers, and Merge adds counts — so merging per-point histograms
// in point-index order yields bit-identical snapshots for every thread
// count, and bucket-count merges are exactly associative. (The `sum`
// convenience field is a float accumulation and shares only the sweep
// engine's fixed-merge-order guarantee.)
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace rcbr::obs {

/// Value-type snapshot of a log-bucketed histogram. `buckets` holds
/// (bucket key, count) pairs sorted by key; keys decode to value bounds
/// via LogHistogram::BucketLowerBound / BucketUpperBound.
struct LogHistogramValue {
  /// Values recorded into buckets + `underflow` (not the pre-sampling
  /// stream length — see MetricsSnapshot's span `seen` field for that).
  std::int64_t count = 0;
  /// Recorded values that were <= 0 or non-finite (no log bucket).
  std::int64_t underflow = 0;
  double min = 0;
  double max = 0;
  double sum = 0;
  std::vector<std::pair<std::int32_t, std::int64_t>> buckets;

  bool empty() const { return count == 0; }

  /// Folds `other` in (bucket counts add, min/max extend). Associative
  /// and commutative in everything except the float `sum`.
  void Merge(const LogHistogramValue& other);

  /// Smallest value v such that at least ceil(q * count) recorded values
  /// fall in buckets at or below v's bucket. Conservative: within a
  /// bucket the upper bound is returned, clamped to [min, max], so
  /// Quantile(0) == min and Quantile(1) == max exactly. Underflow mass
  /// sits below every bucket and resolves to `min`. q is clamped to
  /// [0, 1]; an empty histogram returns 0.
  double Quantile(double q) const;
};

/// A log-bucketed histogram. Not thread-safe (like rcbr::Histogram); the
/// thread-safe instrument wrapper lives in obs/metrics.h.
class LogHistogram {
 public:
  /// Sub-buckets per power of two: bucket boundaries are
  /// 2^(e-1) * (1 + k/kSubBuckets), all exactly representable.
  static constexpr std::int32_t kSubBuckets = 8;

  /// The bucket key of `value`; requires value > 0 and finite.
  static std::int32_t BucketKey(double value);
  /// Inclusive lower / exclusive upper value bound of bucket `key`.
  static double BucketLowerBound(std::int32_t key);
  static double BucketUpperBound(std::int32_t key);

  /// Records `n` observations of `value`. Non-positive and non-finite
  /// values land in the underflow count (they have no log bucket).
  void Record(double value, std::int64_t n = 1);

  std::int64_t count() const { return count_; }
  double Quantile(double q) const { return value().Quantile(q); }

  LogHistogramValue value() const;

  /// Adds `other`'s mass; exactly associative in the bucket counts.
  void Merge(const LogHistogram& other);

 private:
  std::map<std::int32_t, std::int64_t> buckets_;
  std::int64_t count_ = 0;
  std::int64_t underflow_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

}  // namespace rcbr::obs
