// The handle instrumented code holds: one Recorder bundles the metrics
// registry, an optional event tracer, the sim-time time-series sampler,
// the flight recorder, and the wall-clock profile.
//
// Wiring pattern: every instrumented module takes an `obs::Recorder*`
// (default nullptr) through its options struct or constructor. Call sites
// go through the free helpers below, which are `if constexpr`-gated on
// obs::kEnabled — with -DRCBR_OBS=OFF the whole layer still type-checks
// but compiles to nothing.
//
// Threading: a Recorder is thread-safe throughout, but the intended use is
// one Recorder per sweep point (see runtime/sweep.h), used by whichever
// single worker runs that point and merged in point-index order
// afterwards; that is what keeps snapshots, traces, time series, and
// flight dumps deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/enabled.h"
#include "obs/event_trace.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/time_series.h"

namespace rcbr::obs {

inline constexpr std::size_t kDefaultEventCapacity = 4096;

/// Which optional subsystems a Recorder carries. All default to off, so
/// `Recorder{}` stays the cheap metrics+profile bundle.
struct RecorderOptions {
  /// Trace buffer size; 0 = no tracer.
  std::size_t event_capacity = 0;
  /// Time-series window width in sim seconds; 0 = no sampler.
  double ts_window_s = 0;
  /// Span sampling: 1 = every span, N = every Nth, 0 = spans off.
  std::int64_t span_sample = 1;
  /// Flight-recorder ring size; 0 = no flight recorder.
  std::size_t flight_capacity = 0;
  /// Postmortem dumps kept before triggers are merely counted.
  std::size_t flight_max_dumps = FlightRecorder::kDefaultMaxDumps;
};

class Recorder {
 public:
  /// `event_capacity` = 0 builds a recorder without a tracer (metrics and
  /// profile only) — event Emit calls become drops without a buffer.
  explicit Recorder(std::size_t event_capacity = 0) {
    if (event_capacity > 0) tracer_.emplace(event_capacity);
  }

  explicit Recorder(const RecorderOptions& options)
      : span_sample_(options.span_sample) {
    if (options.event_capacity > 0) tracer_.emplace(options.event_capacity);
    if (options.ts_window_s > 0) time_series_.emplace(options.ts_window_s);
    if (options.flight_capacity > 0) {
      flight_.emplace(options.flight_capacity, options.flight_max_dumps);
    }
  }

  MetricsRegistry& metrics() { return metrics_; }
  ProfileRegistry& profile() { return profile_; }

  /// The tracer, or nullptr when constructed with event_capacity 0.
  EventTracer* tracer() { return tracer_ ? &*tracer_ : nullptr; }
  const EventTracer* tracer() const { return tracer_ ? &*tracer_ : nullptr; }

  /// The time-series sampler, or nullptr when ts_window_s was 0.
  TimeSeriesSampler* time_series() {
    return time_series_ ? &*time_series_ : nullptr;
  }
  const TimeSeriesSampler* time_series() const {
    return time_series_ ? &*time_series_ : nullptr;
  }

  /// The flight recorder, or nullptr when flight_capacity was 0.
  FlightRecorder* flight() { return flight_ ? &*flight_ : nullptr; }
  const FlightRecorder* flight() const {
    return flight_ ? &*flight_ : nullptr;
  }

  std::int64_t span_sample() const { return span_sample_; }

  void Emit(const TraceEvent& event) {
    if (tracer_) tracer_->Record(event);
    if (flight_) flight_->Record(event);
  }

 private:
  MetricsRegistry metrics_;
  ProfileRegistry profile_;
  std::optional<EventTracer> tracer_;
  std::optional<TimeSeriesSampler> time_series_;
  std::optional<FlightRecorder> flight_;
  std::int64_t span_sample_ = 1;
};

// ---- Call-site helpers -------------------------------------------------
// All of these accept a possibly-null recorder and vanish entirely under
// RCBR_OBS=OFF. Hot loops that update one counter many times should
// resolve it once with FindCounter (FindSeries, FindSpan) and test the
// pointer.

/// The counter named `name`, or nullptr when recording is off.
inline Counter* FindCounter(Recorder* recorder, const char* name) {
  if constexpr (kEnabled) {
    if (recorder != nullptr) return &recorder->metrics().GetCounter(name);
  }
  (void)recorder;
  (void)name;
  return nullptr;
}

inline void Count(Recorder* recorder, const char* name,
                  std::int64_t n = 1) {
  if constexpr (kEnabled) {
    if (recorder != nullptr) recorder->metrics().GetCounter(name).Add(n);
  }
}

inline void SetGauge(Recorder* recorder, const char* name, double value) {
  if constexpr (kEnabled) {
    if (recorder != nullptr) recorder->metrics().GetGauge(name).Set(value);
  }
}

inline void Observe(Recorder* recorder, const char* name,
                    const std::vector<double>& bucket_values, double value,
                    double weight = 1.0) {
  if constexpr (kEnabled) {
    if (recorder != nullptr) {
      recorder->metrics().GetHistogram(name, bucket_values)
          .Observe(value, weight);
    }
  }
}

/// The time series named `name`, or nullptr when the recorder has no
/// sampler (no --ts-dir, recording off). Sampling through the resolved
/// handle costs one branch when telemetry is disabled.
inline TimeSeries* FindSeries(Recorder* recorder, const char* name) {
  if constexpr (kEnabled) {
    if (recorder != nullptr && recorder->time_series() != nullptr) {
      return &recorder->time_series()->GetSeries(name);
    }
  }
  (void)recorder;
  (void)name;
  return nullptr;
}

inline void Sample(Recorder* recorder, const char* name, double t,
                   double value) {
  if constexpr (kEnabled) {
    if (recorder != nullptr && recorder->time_series() != nullptr) {
      recorder->time_series()->GetSeries(name).Sample(t, value);
    }
  }
}

/// The span histogram named `name` (carrying the recorder's sampling
/// knob), or nullptr when spans are off (--span-sample 0, recording off).
inline SpanHistogram* FindSpan(Recorder* recorder, const char* name) {
  if constexpr (kEnabled) {
    if (recorder != nullptr && recorder->span_sample() > 0) {
      return &recorder->metrics().GetSpan(name, recorder->span_sample());
    }
  }
  (void)recorder;
  (void)name;
  return nullptr;
}

inline void RecordSpan(Recorder* recorder, const char* name,
                       double seconds) {
  if constexpr (kEnabled) {
    if (recorder != nullptr && recorder->span_sample() > 0) {
      recorder->metrics().GetSpan(name, recorder->span_sample())
          .Record(seconds);
    }
  }
}

inline void Emit(Recorder* recorder, const TraceEvent& event) {
  if constexpr (kEnabled) {
    if (recorder != nullptr) recorder->Emit(event);
  }
}

/// Emit with the common shape spelled out, so call sites stay one line:
/// obs::Emit(r, t, EventKind::kRenegDeny, vci, {"old_bps", o}, {"new_bps", n});
inline void Emit(Recorder* recorder, double time, EventKind kind,
                 std::uint64_t id, TraceEvent::Field f0 = {},
                 TraceEvent::Field f1 = {}, TraceEvent::Field f2 = {},
                 TraceEvent::Field f3 = {}) {
  if constexpr (kEnabled) {
    if (recorder != nullptr) {
      recorder->Emit({time, kind, id, {f0, f1, f2, f3}});
    }
  }
}

/// Freezes the flight ring into a postmortem dump attributed to the
/// given trigger event (also emitted into the dump header).
inline void TriggerFlight(Recorder* recorder, double time, EventKind kind,
                          std::uint64_t id, TraceEvent::Field f0 = {},
                          TraceEvent::Field f1 = {},
                          TraceEvent::Field f2 = {},
                          TraceEvent::Field f3 = {}) {
  if constexpr (kEnabled) {
    if (recorder != nullptr && recorder->flight() != nullptr) {
      recorder->flight()->Trigger({time, kind, id, {f0, f1, f2, f3}});
    }
  }
}

}  // namespace rcbr::obs
