// The handle instrumented code holds: one Recorder bundles the metrics
// registry, an optional event tracer, and the wall-clock profile.
//
// Wiring pattern: every instrumented module takes an `obs::Recorder*`
// (default nullptr) through its options struct or constructor. Call sites
// go through the free helpers below, which are `if constexpr`-gated on
// obs::kEnabled — with -DRCBR_OBS=OFF the whole layer still type-checks
// but compiles to nothing.
//
// Threading: a Recorder is thread-safe throughout, but the intended use is
// one Recorder per sweep point (see runtime/sweep.h), used by whichever
// single worker runs that point and merged in point-index order
// afterwards; that is what keeps snapshots and traces deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/enabled.h"
#include "obs/event_trace.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"

namespace rcbr::obs {

inline constexpr std::size_t kDefaultEventCapacity = 4096;

class Recorder {
 public:
  /// `event_capacity` = 0 builds a recorder without a tracer (metrics and
  /// profile only) — event Emit calls become drops without a buffer.
  explicit Recorder(std::size_t event_capacity = 0);

  MetricsRegistry& metrics() { return metrics_; }
  ProfileRegistry& profile() { return profile_; }

  /// The tracer, or nullptr when constructed with event_capacity 0.
  EventTracer* tracer() { return tracer_ ? &*tracer_ : nullptr; }
  const EventTracer* tracer() const { return tracer_ ? &*tracer_ : nullptr; }

  void Emit(const TraceEvent& event) {
    if (tracer_) tracer_->Record(event);
  }

 private:
  MetricsRegistry metrics_;
  ProfileRegistry profile_;
  std::optional<EventTracer> tracer_;
};

// ---- Call-site helpers -------------------------------------------------
// All of these accept a possibly-null recorder and vanish entirely under
// RCBR_OBS=OFF. Hot loops that update one counter many times should
// resolve it once with FindCounter and test the pointer.

/// The counter named `name`, or nullptr when recording is off.
inline Counter* FindCounter(Recorder* recorder, const char* name) {
  if constexpr (kEnabled) {
    if (recorder != nullptr) return &recorder->metrics().GetCounter(name);
  }
  (void)recorder;
  (void)name;
  return nullptr;
}

inline void Count(Recorder* recorder, const char* name,
                  std::int64_t n = 1) {
  if constexpr (kEnabled) {
    if (recorder != nullptr) recorder->metrics().GetCounter(name).Add(n);
  }
}

inline void SetGauge(Recorder* recorder, const char* name, double value) {
  if constexpr (kEnabled) {
    if (recorder != nullptr) recorder->metrics().GetGauge(name).Set(value);
  }
}

inline void Observe(Recorder* recorder, const char* name,
                    const std::vector<double>& bucket_values, double value,
                    double weight = 1.0) {
  if constexpr (kEnabled) {
    if (recorder != nullptr) {
      recorder->metrics().GetHistogram(name, bucket_values)
          .Observe(value, weight);
    }
  }
}

inline void Emit(Recorder* recorder, const TraceEvent& event) {
  if constexpr (kEnabled) {
    if (recorder != nullptr) recorder->Emit(event);
  }
}

/// Emit with the common shape spelled out, so call sites stay one line:
/// obs::Emit(r, t, EventKind::kRenegDeny, vci, {"old_bps", o}, {"new_bps", n});
inline void Emit(Recorder* recorder, double time, EventKind kind,
                 std::uint64_t id, TraceEvent::Field f0 = {},
                 TraceEvent::Field f1 = {}, TraceEvent::Field f2 = {}) {
  if constexpr (kEnabled) {
    if (recorder != nullptr) recorder->Emit({time, kind, id, {f0, f1, f2}});
  }
}

}  // namespace rcbr::obs
