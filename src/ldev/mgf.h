// Log moment generating functions and Legendre transforms.
//
// Section V-A builds the slow-time-scale loss estimate from the log-MGF of
// the "scene rate" random variable (value m_k with probability pi_k) and
// its Legendre transform I = Lambda^*. These are the shared numeric
// primitives; chernoff.h applies them to admission control.
#pragma once

#include <span>
#include <vector>

namespace rcbr::ldev {

/// A finite discrete distribution: value v_j with probability p_j.
/// Probabilities must be nonnegative and sum to 1 (within tolerance).
class DiscreteDistribution {
 public:
  DiscreteDistribution(std::vector<double> values,
                       std::vector<double> probabilities);

  const std::vector<double>& values() const { return values_; }
  const std::vector<double>& probabilities() const { return probs_; }
  std::size_t size() const { return values_.size(); }

  double Mean() const;
  double Min() const;
  double Max() const;

  /// Log-MGF Lambda(s) = log sum_j p_j exp(s v_j), overflow-safe.
  double LogMgf(double s) const;

  /// Derivative Lambda'(s) (the tilted mean).
  double LogMgfDerivative(double s) const;

  /// Second derivative Lambda''(s) (the tilted variance).
  double LogMgfSecondDerivative(double s) const;

 private:
  std::vector<double> values_;
  std::vector<double> probs_;
};

/// Legendre transform I(a) = sup_{s >= 0} [ s a - Lambda(s) ].
///
/// This is the one-sided (upper-tail) rate function used by the Chernoff
/// estimates: it is 0 for a <= mean, finite and increasing on
/// (mean, max), -log P(X = max) at the maximum value, and +infinity
/// (returned as `infinity_value`) beyond it.
double LegendreTransform(const DiscreteDistribution& dist, double a,
                         double infinity_value = 1e300);

/// The tilting parameter s* solving Lambda'(s*) = a, for a strictly
/// between the mean and the maximum of the distribution.
double TiltingPoint(const DiscreteDistribution& dist, double a);

}  // namespace rcbr::ldev
