// Equivalent bandwidth of Markov-modulated sources.
//
// "The minimum drain rate required to achieve a target QoS buffer overflow
// probability is known as the equivalent bandwidth of the source"
// (Sec. V-A). For a discrete-time Markov source with per-state workloads
// r_i and transition matrix P, the scaled log-MGF is
//     Lambda(theta) = log rho( P . diag(e^{theta r_i}) )
// and the equivalent bandwidth at QoS exponent theta is Lambda(theta)/theta
// (Kesidis-Walrand-Chang). For the multiple-time-scale model, eq. (9)
// states the equivalent bandwidth is the max over the subchains'
// equivalent bandwidths — the quantitative form of "buffering alone cannot
// exploit slow time scales".
#pragma once

#include "ldev/mgf.h"
#include "markov/multi_timescale.h"
#include "markov/rate_source.h"

namespace rcbr::ldev {

/// QoS exponent delta = -ln(loss_probability) / buffer_bits: a buffer of B
/// bits overflows with probability ~ e^{-delta B} when drained at the
/// equivalent bandwidth. Requires loss in (0,1) and buffer > 0.
double QosExponent(double buffer_bits, double loss_probability);

/// Scaled log-MGF Lambda(theta) of the Markov source (bits per slot).
/// Requires theta > 0.
double ScaledLogMgf(const markov::RateSource& source, double theta);

/// Equivalent bandwidth (bits per slot) of a Markov source at exponent
/// theta (per bit). Lies between the stationary mean and the peak.
double EquivalentBandwidth(const markov::RateSource& source, double theta);

/// Eq. (9): equivalent bandwidth of a multiple-time-scale source in the
/// joint regime (rare transitions, large-but-not-huge buffer) is the
/// maximum over its subchains' equivalent bandwidths.
double MultiTimescaleEquivalentBandwidth(
    const markov::MultiTimescaleSource& source, double theta);

/// The paper's slow-time-scale "scene" distribution: value m_k (subchain
/// mean bits/slot) with probability pi_k, used by the Chernoff estimates
/// (10) and (11).
DiscreteDistribution SceneRateDistribution(
    const markov::MultiTimescaleSource& source);

/// The RCBR variant of the scene distribution (eq. 11): value =
/// *equivalent bandwidth* of subchain k at exponent theta (not its mean),
/// with probability pi_k. Renegotiation failure under RCBR is governed by
/// this slightly larger demand.
DiscreteDistribution SceneEquivalentBandwidthDistribution(
    const markov::MultiTimescaleSource& source, double theta);

}  // namespace rcbr::ldev
