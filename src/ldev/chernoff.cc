#include "ldev/chernoff.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rcbr::ldev {

double ChernoffExponent(const DiscreteDistribution& demand, double c) {
  return LegendreTransform(demand, c);
}

double ChernoffOverflowProbability(const DiscreteDistribution& demand,
                                   std::int64_t n_calls, double capacity) {
  Require(n_calls >= 1, "ChernoffOverflowProbability: need n_calls >= 1");
  Require(capacity >= 0, "ChernoffOverflowProbability: negative capacity");
  const double c = capacity / static_cast<double>(n_calls);
  if (c <= demand.Mean()) return 1.0;
  if (c > demand.Max()) return 0.0;
  const double exponent =
      static_cast<double>(n_calls) * ChernoffExponent(demand, c);
  return std::exp(-exponent);
}

double RefinedOverflowProbability(const DiscreteDistribution& demand,
                                  std::int64_t n_calls, double capacity) {
  Require(n_calls >= 1, "RefinedOverflowProbability: need n_calls >= 1");
  Require(capacity >= 0, "RefinedOverflowProbability: negative capacity");
  const double c = capacity / static_cast<double>(n_calls);
  if (c <= demand.Mean()) return 1.0;
  if (c >= demand.Max()) {
    // Degenerate tilt: fall back to the bare estimate.
    return ChernoffOverflowProbability(demand, n_calls, capacity);
  }
  const double s_star = TiltingPoint(demand, c);
  const double exponent =
      static_cast<double>(n_calls) *
      (s_star * c - demand.LogMgf(s_star));
  const double variance = demand.LogMgfSecondDerivative(s_star);
  if (s_star <= 0 || variance <= 0) {
    return ChernoffOverflowProbability(demand, n_calls, capacity);
  }
  const double prefactor =
      s_star * std::sqrt(2.0 * 3.14159265358979323846 *
                         static_cast<double>(n_calls) * variance);
  return std::min(1.0, std::exp(-exponent) / prefactor);
}

std::int64_t MaxAdmissibleCalls(const DiscreteDistribution& demand,
                                double capacity, double target) {
  Require(target > 0 && target < 1, "MaxAdmissibleCalls: target in (0,1)");
  if (ChernoffOverflowProbability(demand, 1, capacity) > target) return 0;
  // Exponential bracketing, then binary search on the largest feasible N.
  std::int64_t lo = 1;  // feasible
  std::int64_t hi = 2;
  while (ChernoffOverflowProbability(demand, hi, capacity) <= target) {
    lo = hi;
    if (hi > (std::int64_t{1} << 40)) break;  // absurdly large; stop
    hi *= 2;
  }
  while (hi - lo > 1) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (ChernoffOverflowProbability(demand, mid, capacity) <= target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace rcbr::ldev
