#include "ldev/equivalent_bandwidth.h"

#include <algorithm>
#include <cmath>

#include "markov/matrix.h"
#include "util/error.h"

namespace rcbr::ldev {

double QosExponent(double buffer_bits, double loss_probability) {
  Require(buffer_bits > 0, "QosExponent: buffer must be positive");
  Require(loss_probability > 0 && loss_probability < 1,
          "QosExponent: loss probability in (0,1)");
  return -std::log(loss_probability) / buffer_bits;
}

double ScaledLogMgf(const markov::RateSource& source, double theta) {
  Require(theta > 0, "ScaledLogMgf: theta must be positive");
  const markov::Matrix& p = source.chain().transition();
  const std::vector<double>& r = source.bits_per_slot();
  // Overflow guard: factor e^{theta r_max} out of the tilted matrix.
  const double r_max =
      *std::max_element(r.begin(), r.end());
  markov::Matrix tilted(p.rows(), p.cols());
  for (std::size_t i = 0; i < p.rows(); ++i) {
    for (std::size_t j = 0; j < p.cols(); ++j) {
      tilted.at(i, j) = p.at(i, j) * std::exp(theta * (r[j] - r_max));
    }
  }
  const double rho = markov::PerronRoot(tilted);
  Require(rho > 0, "ScaledLogMgf: degenerate tilted matrix");
  return theta * r_max + std::log(rho);
}

double EquivalentBandwidth(const markov::RateSource& source, double theta) {
  return ScaledLogMgf(source, theta) / theta;
}

double MultiTimescaleEquivalentBandwidth(
    const markov::MultiTimescaleSource& source, double theta) {
  double eb = 0;
  for (std::size_t k = 0; k < source.subchain_count(); ++k) {
    eb = std::max(eb, EquivalentBandwidth(source.SubchainSource(k), theta));
  }
  return eb;
}

DiscreteDistribution SceneRateDistribution(
    const markov::MultiTimescaleSource& source) {
  return DiscreteDistribution(source.SubchainMeanBitsPerSlot(),
                              source.SubchainStationary());
}

DiscreteDistribution SceneEquivalentBandwidthDistribution(
    const markov::MultiTimescaleSource& source, double theta) {
  std::vector<double> ebs(source.subchain_count());
  for (std::size_t k = 0; k < source.subchain_count(); ++k) {
    ebs[k] = EquivalentBandwidth(source.SubchainSource(k), theta);
  }
  return DiscreteDistribution(std::move(ebs), source.SubchainStationary());
}

}  // namespace rcbr::ldev
