// Chernoff estimates for bufferless multiplexing (eqs. 10-12).
//
// With N i.i.d. calls whose per-call bandwidth demand has distribution
// {(r_j, p_j)} sharing a link of capacity C, the probability that the
// total demand exceeds C is estimated by
//     P(failure) ~= exp(-N I(C/N)),   I(c) = sup_s [ s c - log M(s) ].
// The paper uses this both for the loss probability of the shared-buffer
// scenario at the slow time scale (eq. 10) and for the renegotiation
// failure probability of RCBR (eqs. 11-12), and it is the basis of every
// admission-control scheme in Sec. VI.
#pragma once

#include <cstdint>

#include "ldev/mgf.h"

namespace rcbr::ldev {

/// The large-deviations exponent I(c) for per-call capacity c.
double ChernoffExponent(const DiscreteDistribution& demand, double c);

/// exp(-N I(C/N)): the estimated probability that N calls' total demand
/// exceeds capacity C. Returns 1 when C/N <= mean demand (the estimate is
/// vacuous there) and 0 when C/N exceeds the peak demand.
double ChernoffOverflowProbability(const DiscreteDistribution& demand,
                                   std::int64_t n_calls, double capacity);

/// Bahadur-Rao refinement of the Chernoff estimate:
///     P(sum > C) ~= exp(-N I(c)) / (s* sqrt(2 pi N Lambda''(s*))),
/// with c = C/N and s* the tilting point. Far closer to the true tail
/// than the bare exponent for moderate N (the paper cites the Chernoff
/// accuracy as "quite good"; this quantifies the prefactor). Same edge
/// conventions as ChernoffOverflowProbability.
double RefinedOverflowProbability(const DiscreteDistribution& demand,
                                  std::int64_t n_calls, double capacity);

/// The largest N such that ChernoffOverflowProbability(demand, N, C) stays
/// <= target. Returns 0 if even one call violates the target. The
/// probability is nondecreasing in N for fixed C, so this is a binary
/// search.
std::int64_t MaxAdmissibleCalls(const DiscreteDistribution& demand,
                                double capacity, double target);

}  // namespace rcbr::ldev
