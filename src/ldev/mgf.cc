#include "ldev/mgf.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rcbr::ldev {

namespace {

constexpr double kProbTolerance = 1e-9;

}  // namespace

DiscreteDistribution::DiscreteDistribution(std::vector<double> values,
                                           std::vector<double> probabilities)
    : values_(std::move(values)), probs_(std::move(probabilities)) {
  Require(!values_.empty(), "DiscreteDistribution: empty support");
  Require(values_.size() == probs_.size(),
          "DiscreteDistribution: size mismatch");
  double total = 0;
  for (double p : probs_) {
    Require(p >= 0, "DiscreteDistribution: negative probability");
    total += p;
  }
  Require(std::abs(total - 1.0) <= kProbTolerance,
          "DiscreteDistribution: probabilities must sum to 1");
}

double DiscreteDistribution::Mean() const {
  double mean = 0;
  for (std::size_t j = 0; j < values_.size(); ++j) {
    mean += values_[j] * probs_[j];
  }
  return mean;
}

double DiscreteDistribution::Min() const {
  bool seen = false;
  double m = 0;
  for (std::size_t j = 0; j < values_.size(); ++j) {
    if (probs_[j] > 0 && (!seen || values_[j] < m)) {
      m = values_[j];
      seen = true;
    }
  }
  return seen ? m : values_.front();
}

double DiscreteDistribution::Max() const {
  bool seen = false;
  double m = 0;
  for (std::size_t j = 0; j < values_.size(); ++j) {
    if (probs_[j] > 0 && (!seen || values_[j] > m)) {
      m = values_[j];
      seen = true;
    }
  }
  return seen ? m : values_.front();
}

double DiscreteDistribution::LogMgf(double s) const {
  // Overflow-safe: factor out the dominant exponent.
  double m = -1e300;
  for (std::size_t j = 0; j < values_.size(); ++j) {
    if (probs_[j] > 0) m = std::max(m, s * values_[j]);
  }
  double acc = 0;
  for (std::size_t j = 0; j < values_.size(); ++j) {
    if (probs_[j] > 0) acc += probs_[j] * std::exp(s * values_[j] - m);
  }
  return m + std::log(acc);
}

double DiscreteDistribution::LogMgfDerivative(double s) const {
  // Tilted mean: sum v p e^{sv} / sum p e^{sv}, overflow-safe.
  double m = -1e300;
  for (std::size_t j = 0; j < values_.size(); ++j) {
    if (probs_[j] > 0) m = std::max(m, s * values_[j]);
  }
  double num = 0;
  double den = 0;
  for (std::size_t j = 0; j < values_.size(); ++j) {
    if (probs_[j] == 0) continue;
    const double w = probs_[j] * std::exp(s * values_[j] - m);
    num += values_[j] * w;
    den += w;
  }
  return num / den;
}

double DiscreteDistribution::LogMgfSecondDerivative(double s) const {
  // Tilted variance: E_s[X^2] - (E_s[X])^2, overflow-safe.
  double m = -1e300;
  for (std::size_t j = 0; j < values_.size(); ++j) {
    if (probs_[j] > 0) m = std::max(m, s * values_[j]);
  }
  double num1 = 0;
  double num2 = 0;
  double den = 0;
  for (std::size_t j = 0; j < values_.size(); ++j) {
    if (probs_[j] == 0) continue;
    const double w = probs_[j] * std::exp(s * values_[j] - m);
    num1 += values_[j] * w;
    num2 += values_[j] * values_[j] * w;
    den += w;
  }
  const double mean = num1 / den;
  return num2 / den - mean * mean;
}

double TiltingPoint(const DiscreteDistribution& dist, double a) {
  Require(a > dist.Mean() && a < dist.Max(),
          "TiltingPoint: a must lie strictly between mean and max");
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < 200 && dist.LogMgfDerivative(hi) < a; ++i) hi *= 2;
  for (int i = 0; i < 200; ++i) {
    const double mid = (lo + hi) / 2;
    if (dist.LogMgfDerivative(mid) < a) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= 1e-12 * std::max(1.0, hi)) break;
  }
  return (lo + hi) / 2;
}

double LegendreTransform(const DiscreteDistribution& dist, double a,
                         double infinity_value) {
  const double mean = dist.Mean();
  const double peak = dist.Max();
  if (a <= mean) return 0.0;  // sup attained at s = 0
  if (a > peak) return infinity_value;
  if (a == peak) {
    // I(peak) = -log P(X = peak).
    double p_peak = 0;
    for (std::size_t j = 0; j < dist.size(); ++j) {
      if (dist.values()[j] == peak) p_peak += dist.probabilities()[j];
    }
    return p_peak > 0 ? -std::log(p_peak) : infinity_value;
  }
  // g(s) = s a - Lambda(s) is concave; its stationary point is the
  // tilting parameter.
  const double s_star = TiltingPoint(dist, a);
  return s_star * a - dist.LogMgf(s_star);
}

}  // namespace rcbr::ldev
