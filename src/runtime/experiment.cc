#include "runtime/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "runtime/emit.h"
#include "util/error.h"

namespace rcbr::runtime {

ExperimentArgs ParseExperimentArgs(int argc, char** argv) {
  ExperimentArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--frames=", 9) == 0) {
      args.frames = std::atoll(arg + 9);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      args.seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      args.threads = static_cast<std::size_t>(std::atoll(arg + 10));
    } else if (std::strcmp(arg, "--quick") == 0) {
      args.quick = true;
    } else if (std::strncmp(arg, "--json-dir=", 11) == 0) {
      args.json_dir = arg + 11;
    } else if (std::strcmp(arg, "--no-json") == 0) {
      args.write_json = false;
    }
  }
  return args;
}

SweepOptions ToSweepOptions(const ExperimentArgs& args) {
  SweepOptions options;
  options.base_seed = args.seed;
  options.threads = args.threads;
  return options;
}

SweepResult RunExperiment(const SweepSpec& spec, const PointFn& fn,
                          const ExperimentArgs& args) {
  SweepResult result = RunSweep(spec, fn, ToSweepOptions(args));
  PrintTable(result);
  if (args.write_json) {
    try {
      const std::string path = WriteJson(result, args.json_dir);
      std::printf("# json: %s (%.3f s on %zu threads)\n", path.c_str(),
                  result.total_seconds, result.threads);
    } catch (const Error& e) {
      // The table already went to stdout; losing the JSON side-output
      // should not abort the harness mid-report.
      std::fprintf(stderr, "# json write failed: %s\n", e.what());
    }
  }
  return result;
}

}  // namespace rcbr::runtime
