#include "runtime/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "runtime/emit.h"
#include "util/error.h"

namespace rcbr::runtime {

ExperimentArgs ParseExperimentArgs(int argc, char** argv) {
  ExperimentArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--frames=", 9) == 0) {
      args.frames = std::atoll(arg + 9);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      args.seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      args.threads = static_cast<std::size_t>(std::atoll(arg + 10));
    } else if (std::strcmp(arg, "--quick") == 0) {
      args.quick = true;
    } else if (std::strncmp(arg, "--json-dir=", 11) == 0) {
      args.json_dir = arg + 11;
    } else if (std::strcmp(arg, "--no-json") == 0) {
      args.write_json = false;
    } else if (std::strncmp(arg, "--trace-dir=", 12) == 0) {
      args.trace_dir = arg + 12;
    } else if (std::strncmp(arg, "--trace-events=", 15) == 0) {
      args.trace_events = static_cast<std::size_t>(std::atoll(arg + 15));
    } else if (std::strcmp(arg, "--progress") == 0) {
      args.progress = true;
    }
  }
  return args;
}

SweepOptions ToSweepOptions(const ExperimentArgs& args) {
  SweepOptions options;
  options.base_seed = args.seed;
  options.threads = args.threads;
  options.event_capacity = args.trace_dir.empty() ? 0 : args.trace_events;
  options.progress = args.progress;
  return options;
}

SweepResult RunExperiment(const SweepSpec& spec, const PointFn& fn,
                          const ExperimentArgs& args) {
  SweepResult result = RunSweep(spec, fn, ToSweepOptions(args));
  PrintTable(result);
  if (args.write_json) {
    try {
      const std::string path = WriteJson(result, args.json_dir);
      std::printf("# json: %s (%.3f s on %zu threads)\n", path.c_str(),
                  result.total_seconds, result.threads);
    } catch (const Error& e) {
      // The table already went to stdout; losing the JSON side-output
      // should not abort the harness mid-report.
      std::fprintf(stderr, "# json write failed: %s\n", e.what());
    }
  }
  if (!args.trace_dir.empty()) {
    try {
      const std::string path = WriteTrace(result, args.trace_dir);
      std::printf("# trace: %s (%zu points with events)\n", path.c_str(),
                  result.events.size());
    } catch (const Error& e) {
      std::fprintf(stderr, "# trace write failed: %s\n", e.what());
    }
  }
  return result;
}

}  // namespace rcbr::runtime
