#include "runtime/experiment.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include <unistd.h>

#include "runtime/emit.h"
#include "util/error.h"

namespace rcbr::runtime {

namespace {

/// Strict base-10 integer: the whole value must parse, fit, and be
/// non-negative (every shared flag is a count or a seed).
std::int64_t ParseFlagInt(const char* text, const char* flag) {
  Require(*text != '\0',
          std::string(flag) + " expects an integer value");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  Require(*end == '\0', std::string(flag) + ": '" + text +
                            "' is not an integer");
  Require(errno != ERANGE, std::string(flag) + ": '" + text +
                               "' is out of range");
  Require(value >= 0, std::string(flag) + " must be >= 0 (got " +
                          std::string(text) + ")");
  return static_cast<std::int64_t>(value);
}

/// Strict double: the whole value must parse and be a finite positive
/// number (window widths).
double ParseFlagPositiveDouble(const char* text, const char* flag) {
  Require(*text != '\0', std::string(flag) + " expects a number");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  Require(*end == '\0',
          std::string(flag) + ": '" + text + "' is not a number");
  Require(errno != ERANGE,
          std::string(flag) + ": '" + text + "' is out of range");
  Require(std::isfinite(value) && value > 0,
          std::string(flag) + " must be a finite positive number (got " +
              std::string(text) + ")");
  return value;
}

/// Strict comma-separated doubles: every element must parse fully and be
/// finite; the list must be non-empty (a depth-0 ladder is an error, not
/// a default).
std::vector<double> ParseFlagDoubleList(const char* text, const char* flag) {
  Require(*text != '\0', std::string(flag) +
                             " expects a comma-separated list of numbers");
  std::vector<double> values;
  const char* cursor = text;
  while (true) {
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(cursor, &end);
    Require(end != cursor && (*end == '\0' || *end == ','),
            std::string(flag) + ": '" + text +
                "' is not a comma-separated list of numbers");
    Require(errno != ERANGE, std::string(flag) + ": '" + text +
                                 "' has an out-of-range element");
    Require(std::isfinite(value), std::string(flag) + ": '" + text +
                                      "' has a non-finite element");
    values.push_back(value);
    if (*end == '\0') break;
    cursor = end + 1;
    Require(*cursor != '\0', std::string(flag) + ": '" + text +
                                 "' has a trailing comma");
  }
  return values;
}

/// The ladder flags' cross-field contract (checked after the parse loop
/// so flag order on the command line does not matter).
void ValidateLadderFlags(const std::vector<double>& rungs,
                         const std::vector<double>& utilities) {
  if (!rungs.empty()) {
    Require(rungs.front() == 1.0,
            "--ladder-rungs: rung 0 must be the full ask (scale 1)");
    for (std::size_t r = 0; r < rungs.size(); ++r) {
      Require(rungs[r] > 0, "--ladder-rungs: scales must be positive");
      Require(rungs[r] <= 1.0, "--ladder-rungs: scales must be <= 1");
      Require(r == 0 || rungs[r] <= rungs[r - 1],
              "--ladder-rungs: scales must be non-increasing");
    }
  }
  if (!utilities.empty()) {
    Require(!rungs.empty(),
            "--ladder-utilities requires --ladder-rungs");
    Require(utilities.size() == rungs.size(),
            "--ladder-utilities must have one entry per rung");
    for (double u : utilities) {
      Require(u >= 0, "--ladder-utilities: utilities must be >= 0");
    }
  }
}

/// An explicitly requested output directory must exist and be writable
/// up front — failing at parse time beats running a long sweep and then
/// losing the report.
void RequireWritableDir(const std::string& dir, const char* flag) {
  namespace fs = std::filesystem;
  std::error_code ec;
  Require(fs::is_directory(dir, ec),
          std::string(flag) + ": '" + dir + "' is not a directory");
  Require(::access(dir.c_str(), W_OK) == 0,
          std::string(flag) + ": '" + dir + "' is not writable");
}

}  // namespace

ExperimentArgs ParseExperimentArgs(int argc, char** argv) {
  ExperimentArgs args;
  bool json_dir_set = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--frames=", 9) == 0) {
      args.frames = ParseFlagInt(arg + 9, "--frames");
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      args.seed = static_cast<std::uint64_t>(ParseFlagInt(arg + 7, "--seed"));
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      args.threads =
          static_cast<std::size_t>(ParseFlagInt(arg + 10, "--threads"));
    } else if (std::strcmp(arg, "--quick") == 0) {
      args.quick = true;
    } else if (std::strncmp(arg, "--json-dir=", 11) == 0) {
      args.json_dir = arg + 11;
      json_dir_set = true;
    } else if (std::strcmp(arg, "--no-json") == 0) {
      args.write_json = false;
    } else if (std::strncmp(arg, "--trace-dir=", 12) == 0) {
      args.trace_dir = arg + 12;
    } else if (std::strncmp(arg, "--trace-events=", 15) == 0) {
      args.trace_events =
          static_cast<std::size_t>(ParseFlagInt(arg + 15, "--trace-events"));
    } else if (std::strncmp(arg, "--ts-dir=", 9) == 0) {
      args.ts_dir = arg + 9;
    } else if (std::strncmp(arg, "--ts-window=", 12) == 0) {
      args.ts_window = ParseFlagPositiveDouble(arg + 12, "--ts-window");
    } else if (std::strncmp(arg, "--span-sample=", 14) == 0) {
      args.span_sample = ParseFlagInt(arg + 14, "--span-sample");
    } else if (std::strncmp(arg, "--flight-events=", 16) == 0) {
      args.flight_events =
          static_cast<std::size_t>(ParseFlagInt(arg + 16, "--flight-events"));
    } else if (std::strncmp(arg, "--ladder-rungs=", 15) == 0) {
      args.ladder_rungs = ParseFlagDoubleList(arg + 15, "--ladder-rungs");
    } else if (std::strncmp(arg, "--ladder-utilities=", 19) == 0) {
      args.ladder_utilities =
          ParseFlagDoubleList(arg + 19, "--ladder-utilities");
    } else if (std::strcmp(arg, "--progress") == 0) {
      args.progress = true;
    } else {
      throw InvalidArgument(std::string("unknown argument '") + arg +
                            "' (see the flag list in "
                            "src/runtime/experiment.h)");
    }
  }
  ValidateLadderFlags(args.ladder_rungs, args.ladder_utilities);
  if (json_dir_set && args.write_json) {
    RequireWritableDir(args.json_dir, "--json-dir");
  }
  if (!args.trace_dir.empty()) {
    RequireWritableDir(args.trace_dir, "--trace-dir");
  }
  if (!args.ts_dir.empty()) {
    RequireWritableDir(args.ts_dir, "--ts-dir");
  }
  return args;
}

ExperimentArgs ParseExperimentArgsOrExit(int argc, char** argv) {
  try {
    return ParseExperimentArgs(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "%s: %s\n", argc > 0 ? argv[0] : "experiment",
                 e.what());
    std::fprintf(
        stderr,
        "usage: %s [--frames=N] [--seed=S] [--threads=N] [--quick]\n"
        "       [--json-dir=D] [--no-json] [--trace-dir=D]\n"
        "       [--trace-events=N] [--ts-dir=D] [--ts-window=W]\n"
        "       [--span-sample=N] [--flight-events=N]\n"
        "       [--ladder-rungs=1,0.7,...] [--ladder-utilities=1,0.8,...]\n"
        "       [--progress]\n",
        argc > 0 ? argv[0] : "experiment");
    std::exit(2);
  }
}

SweepOptions ToSweepOptions(const ExperimentArgs& args) {
  SweepOptions options;
  options.base_seed = args.seed;
  options.threads = args.threads;
  options.event_capacity = args.trace_dir.empty() ? 0 : args.trace_events;
  options.ts_window_s = args.ts_dir.empty() ? 0.0 : args.ts_window;
  options.span_sample = args.span_sample;
  options.flight_events = args.flight_events;
  options.progress = args.progress;
  return options;
}

SweepResult RunExperiment(const SweepSpec& spec, const PointFn& fn,
                          const ExperimentArgs& args) {
  SweepResult result = RunSweep(spec, fn, ToSweepOptions(args));
  PrintTable(result);
  if (args.write_json) {
    try {
      const std::string path = WriteJson(result, args.json_dir);
      std::printf("# json: %s (%.3f s on %zu threads)\n", path.c_str(),
                  result.total_seconds, result.threads);
    } catch (const Error& e) {
      // The table already went to stdout; losing the JSON side-output
      // should not abort the harness mid-report.
      std::fprintf(stderr, "# json write failed: %s\n", e.what());
    }
  }
  if (!args.trace_dir.empty()) {
    try {
      const std::string path = WriteTrace(result, args.trace_dir);
      std::printf("# trace: %s (%zu points with events)\n", path.c_str(),
                  result.events.size());
    } catch (const Error& e) {
      std::fprintf(stderr, "# trace write failed: %s\n", e.what());
    }
  }
  if (!args.ts_dir.empty()) {
    try {
      const std::string path = WriteTimeSeries(result, args.ts_dir);
      std::printf("# ts: %s (%zu points with series)\n", path.c_str(),
                  result.series.size());
    } catch (const Error& e) {
      std::fprintf(stderr, "# ts write failed: %s\n", e.what());
    }
  }
  if (args.flight_events > 0) {
    try {
      const std::string path = WriteFlight(
          result, args.trace_dir.empty() ? args.json_dir : args.trace_dir);
      std::size_t dumps = 0;
      for (const PointFlight& point : result.flight) {
        dumps += point.dumps.size();
      }
      std::printf("# flight: %s (%zu dumps)\n", path.c_str(), dumps);
    } catch (const Error& e) {
      std::fprintf(stderr, "# flight write failed: %s\n", e.what());
    }
  }
  return result;
}

}  // namespace rcbr::runtime
