// Deterministic parallel parameter sweeps — the engine behind every
// figure/table binary in bench/ (see DESIGN.md §runtime).
//
// A sweep is a named list of points (rows of named parameter values) and a
// point function mapping each point to named metric values. Points are
// independent by contract, so RunSweep executes them concurrently; each
// point draws randomness only from an RNG stream derived from
// (base_seed, point_index), which makes the full SweepResult bit-identical
// for every thread count, including 1.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/recorder.h"
#include "util/rng.h"

namespace rcbr::runtime {

/// What a sweep computes: the experiment name (also the stem of the
/// BENCH_<name>.json output), free-form preamble notes, the names of the
/// per-point input parameters and output metrics, and one row of parameter
/// values per point.
struct SweepSpec {
  std::string name;
  std::vector<std::string> notes;
  std::vector<std::string> parameters;
  std::vector<std::string> metrics;
  std::vector<std::vector<double>> points;
};

/// Everything one sweep point may depend on. `seed` is derived from
/// (base_seed, index) — never from the executing thread or from wall
/// clock — which is the whole determinism contract.
struct SweepContext {
  std::size_t index = 0;
  std::vector<double> parameters;
  std::uint64_t seed = 0;

  /// This point's private observability recorder (nullptr when the build
  /// disables obs). Pass it into simulator/scheduler options; metrics and
  /// events land in SweepResult merged by point index, so the merged
  /// snapshot and trace are identical for every thread count.
  obs::Recorder* recorder = nullptr;

  /// The point's private RNG stream.
  Rng MakeRng() const { return Rng(seed); }

  /// An independent substream of this point's stream, for points that need
  /// several decorrelated streams (e.g. one per replication).
  Rng MakeRng(std::uint64_t substream) const {
    return Rng::Stream(seed, substream);
  }
};

/// Maps one point to its metric values; must return exactly
/// spec.metrics.size() values. Called concurrently — it must not mutate
/// shared state.
using PointFn = std::function<std::vector<double>(const SweepContext&)>;

struct PointResult {
  std::vector<double> parameters;
  std::vector<double> metrics;
  std::uint64_t seed = 0;
  /// Wall-clock seconds spent evaluating this point.
  double seconds = 0;
};

/// One point's retained trace events, tagged with the point index.
struct PointEvents {
  std::size_t point = 0;
  std::vector<obs::TraceEvent> events;
  std::int64_t dropped = 0;
};

/// One point's sim-time time series, tagged with the point index.
struct PointSeries {
  std::size_t point = 0;
  obs::TimeSeriesSnapshot series;
};

/// One point's flight-recorder postmortems, tagged with the point index.
struct PointFlight {
  std::size_t point = 0;
  std::vector<obs::FlightDump> dumps;
  std::int64_t suppressed = 0;
};

struct SweepResult {
  SweepSpec spec;
  std::uint64_t base_seed = 0;
  /// Worker threads actually used.
  std::size_t threads = 0;
  /// Wall-clock seconds for the whole sweep.
  double total_seconds = 0;
  /// One entry per spec point, in spec order.
  std::vector<PointResult> points;

  /// Per-point metrics merged in point-index order — deterministic for
  /// every thread count. Empty when nothing was recorded (or obs is off).
  obs::MetricsSnapshot metrics;
  /// Wall-clock phase profile (ScopedTimer), merged across points. Run
  /// provenance, not portable data: excluded from ToJsonWithoutTimings.
  std::map<std::string, obs::PhaseProfile> profile;
  /// Trace events of every point that recorded any, in point order; only
  /// populated when SweepOptions::event_capacity > 0.
  std::vector<PointEvents> events;
  /// Windowed time series of every point that sampled any, in point
  /// order; only populated when SweepOptions::ts_window_s > 0.
  std::vector<PointSeries> series;
  /// Flight-recorder dumps of every point whose ring was triggered, in
  /// point order; only populated when SweepOptions::flight_events > 0.
  std::vector<PointFlight> flight;
};

struct SweepOptions {
  std::uint64_t base_seed = 20260706;
  /// Worker threads; 0 means HardwareThreads().
  std::size_t threads = 0;
  /// Per-point event-tracer capacity; 0 disables event capture (metrics
  /// are always captured — they are cheap and bounded).
  std::size_t event_capacity = 0;
  /// Time-series window width in sim seconds; 0 disables the sampler.
  double ts_window_s = 0;
  /// Span sampling: 1 records every span, N every Nth, 0 disables spans.
  std::int64_t span_sample = 1;
  /// Per-point flight-recorder ring size; 0 disables the flight recorder.
  std::size_t flight_events = 0;
  /// Print per-point completion to stderr ("# progress: ..."); stdout
  /// (table/JSON) is never touched, so piping stays clean.
  bool progress = false;
};

/// Runs every point of `spec` through `fn`, up to options.threads at a
/// time. Point i receives seed DeriveStreamSeed(base_seed, i). Results are
/// returned in spec order regardless of completion order. Throws
/// InvalidArgument on malformed specs (ragged parameter rows, metric count
/// mismatches); exceptions from `fn` propagate.
SweepResult RunSweep(const SweepSpec& spec, const PointFn& fn,
                     const SweepOptions& options = {});

/// Cartesian product of parameter axes, rows ordered with the last axis
/// fastest — the nested-loop order the bench tables always used.
std::vector<std::vector<double>> GridPoints(
    const std::vector<std::vector<double>>& axes);

/// Monotonic wall clock, in seconds.
double NowSeconds();

}  // namespace rcbr::runtime
