// Structured output for sweep results: the self-describing stdout table
// every harness has always printed, plus a machine-readable JSON document
// (BENCH_<name>.json) for the perf/results trajectory. The JSON schema is
// documented in DESIGN.md §runtime.
#pragma once

#include <string>
#include <vector>

#include "runtime/sweep.h"

namespace rcbr::runtime {

/// Prints `# key: value` metadata lines and column headers.
void PrintPreamble(const std::string& experiment,
                   const std::vector<std::string>& notes,
                   const std::vector<std::string>& columns);

/// Prints one row of right-aligned columns.
void PrintRow(const std::vector<double>& values);

/// The classic harness table: preamble (name, notes, parameter + metric
/// columns) followed by one row per point.
void PrintTable(const SweepResult& result);

/// Serializes a sweep result. Numbers are printed with round-trip
/// precision, so two results with bit-identical doubles serialize to
/// identical text.
std::string ToJson(const SweepResult& result);

/// ToJson with the run-provenance fields removed ("seconds",
/// "total_seconds", and "threads") — the portable part of a result,
/// identical across thread counts and hosts for a fixed seed.
std::string ToJsonWithoutTimings(const SweepResult& result);

/// Writes ToJson(result) to `<directory>/BENCH_<spec.name>.json` and
/// returns that path. Throws InvalidArgument if the file cannot be written.
std::string WriteJson(const SweepResult& result,
                      const std::string& directory = ".");

/// Serializes the captured trace events (see SweepOptions::event_capacity)
/// as JSONL, one event per line in (point, seq) order, with a
/// "trace_truncated" marker after any point whose ring buffer overflowed.
/// Deterministic: identical for every thread count.
std::string ToTraceJsonl(const SweepResult& result);

/// Writes ToTraceJsonl(result) to `<directory>/TRACE_<spec.name>.jsonl`
/// and returns that path. Throws InvalidArgument on write failure.
std::string WriteTrace(const SweepResult& result,
                       const std::string& directory = ".");

/// Serializes the windowed sim-time series (see SweepOptions::ts_window_s)
/// as JSONL, one window per line in (point, series name, window) order:
///   {"point": P, "series": "...", "window": K, "t0": ..., "t1": ...,
///    "n": ..., "sum": ..., "min": ..., "max": ..., "last": ...}
/// Deterministic: identical for every thread count.
std::string ToTimeSeriesJsonl(const SweepResult& result);

/// Writes ToTimeSeriesJsonl(result) to `<directory>/TS_<spec.name>.jsonl`
/// and returns that path. Throws InvalidArgument on write failure.
std::string WriteTimeSeries(const SweepResult& result,
                            const std::string& directory = ".");

/// Serializes the flight-recorder postmortems (see
/// SweepOptions::flight_events) as JSONL in point order; empty when no
/// trigger fired. Deterministic: identical for every thread count.
std::string ToFlightJsonl(const SweepResult& result);

/// Writes ToFlightJsonl(result) to `<directory>/FLIGHT_<spec.name>.jsonl`
/// and returns that path (the file is written even when empty, so the
/// absence of postmortems is explicit). Throws InvalidArgument on write
/// failure.
std::string WriteFlight(const SweepResult& result,
                        const std::string& directory = ".");

}  // namespace rcbr::runtime
