// Command-line harness shared by the figure/table binaries (one binary per
// reproduced experiment; see DESIGN.md experiment index).
//
// Every harness accepts:
//   --frames=N     length of the synthetic trace (default varies)
//   --seed=S       base seed (default 20260706); sweep point i runs on the
//                  derived stream (S, i), so results do not depend on the
//                  thread count
//   --threads=N    worker threads (default: hardware concurrency)
//   --quick        shrink the workload for smoke runs
//   --json-dir=D   directory for the BENCH_<name>.json output (default ".")
//   --no-json      skip writing the JSON document
//   --trace-dir=D  capture domain events and write TRACE_<name>.jsonl to D
//   --ts-dir=D     sample sim-time time series, write TS_<name>.jsonl to D
//   --ts-window=W  time-series window width in sim seconds (default 1.0)
//   --span-sample=N  record every Nth call-lifecycle span (1 = all,
//                  0 = spans off; default 1)
//   --flight-events=N  arm an N-event flight recorder per point and write
//                  FLIGHT_<name>.jsonl postmortems on faults/overflows
//   --ladder-rungs=1,0.7,...  multi-resolution contract: comma-separated
//                  rate scales, best first (rung 0 must be 1), finite,
//                  positive and non-increasing
//   --ladder-utilities=1,0.8,...  per-rung delivered utility per second
//                  (finite, non-negative, same length as --ladder-rungs;
//                  default: the rung scales)
//   --progress     report per-point completion on stderr
// and emits both the classic self-describing stdout table and
// BENCH_<name>.json.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/sweep.h"

namespace rcbr::runtime {

struct ExperimentArgs {
  std::int64_t frames = 0;  // 0 = use the harness default
  std::uint64_t seed = 20260706;
  bool quick = false;
  std::size_t threads = 0;  // 0 = hardware concurrency
  bool write_json = true;
  std::string json_dir = ".";
  /// Nonempty enables event tracing; TRACE_<name>.jsonl lands here.
  std::string trace_dir;
  /// Per-point event buffer when tracing (--trace-events=N to override).
  std::size_t trace_events = 4096;
  /// Nonempty enables the sim-time sampler; TS_<name>.jsonl lands here.
  std::string ts_dir;
  /// Time-series window width in sim seconds (only used with --ts-dir).
  double ts_window = 1.0;
  /// Span sampling: 1 records every span, N every Nth, 0 disables spans.
  std::int64_t span_sample = 1;
  /// Nonzero arms a flight recorder of this many events per point;
  /// FLIGHT_<name>.jsonl lands in --trace-dir (or --json-dir without one).
  std::size_t flight_events = 0;
  /// Multi-resolution contract (--ladder-rungs): rate scales best-first,
  /// validated at parse time (rung 0 == 1, finite, positive,
  /// non-increasing). Empty = the harness's own default contract.
  std::vector<double> ladder_rungs;
  /// Per-rung utilities (--ladder-utilities); empty = use the scales.
  std::vector<double> ladder_utilities;
  bool progress = false;
};

/// Parses the shared flags strictly: unknown flags, positional arguments,
/// non-numeric or negative values for --frames/--seed/--threads/
/// --trace-events/--span-sample/--flight-events, a --ts-window that is
/// not a finite positive number, an explicitly requested
/// --json-dir/--trace-dir/--ts-dir that is not a writable directory, and
/// an invalid ladder (empty list, NaN/negative entries, a first rung that
/// is not 1, increasing rung scales, or mismatched
/// --ladder-rungs/--ladder-utilities lengths) all throw InvalidArgument
/// with a message naming the offending flag.
ExperimentArgs ParseExperimentArgs(int argc, char** argv);

/// ParseExperimentArgs, but prints the error plus a usage summary to
/// stderr and exits with status 2 instead of throwing — what every
/// figure/table main() wants.
ExperimentArgs ParseExperimentArgsOrExit(int argc, char** argv);

/// The sweep options (seed, threads) implied by the parsed flags.
SweepOptions ToSweepOptions(const ExperimentArgs& args);

/// Runs the sweep, prints the table, and (unless --no-json) writes
/// BENCH_<spec.name>.json. Returns the full result for callers that want
/// to post-process.
SweepResult RunExperiment(const SweepSpec& spec, const PointFn& fn,
                          const ExperimentArgs& args);

}  // namespace rcbr::runtime
