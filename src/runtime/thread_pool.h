// Fixed-size thread pool for the experiment runtime.
//
// Deliberately work-stealing-free: every task is claimed from one shared
// FIFO queue, and nothing about a task's result may depend on which worker
// ran it. Determinism therefore lives entirely in the task definition —
// the sweep engine (sweep.h) derives each point's RNG from the point
// *index*, never from the executing thread, so any thread count (including
// 1) produces bit-identical results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace rcbr::runtime {

/// Default worker count: hardware concurrency, clamped to at least 1.
std::size_t HardwareThreads();

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Joins the workers. Tasks already submitted still run to completion;
  /// submitting after destruction begins is an error.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. The returned future rethrows anything the task
  /// throws, so exceptions propagate to whoever waits on it.
  std::future<void> Submit(std::function<void()> task);

 private:
  void Worker();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable ready_;
  bool stopping_ = false;
};

/// Runs fn(0), ..., fn(n-1) on up to `threads` workers (0 means
/// HardwareThreads()). Indices are claimed dynamically, so per-index work
/// may be arbitrarily unbalanced; callers needing determinism must make
/// fn(i) a pure function of i (plus read-only shared state). If any call
/// throws, remaining unclaimed indices are skipped and the first exception
/// is rethrown after all workers drain.
void ParallelFor(std::size_t n, std::size_t threads,
                 const std::function<void(std::size_t)>& fn);

}  // namespace rcbr::runtime
