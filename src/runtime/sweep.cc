#include "runtime/sweep.h"

#include <chrono>

#include "runtime/thread_pool.h"
#include "util/error.h"

namespace rcbr::runtime {

SweepResult RunSweep(const SweepSpec& spec, const PointFn& fn,
                     const SweepOptions& options) {
  for (const std::vector<double>& point : spec.points) {
    Require(point.size() == spec.parameters.size(),
            "RunSweep: point arity != parameter count");
  }

  SweepResult result;
  result.spec = spec;
  result.base_seed = options.base_seed;
  result.threads =
      options.threads == 0 ? HardwareThreads() : options.threads;
  result.points.resize(spec.points.size());

  const double sweep_start = NowSeconds();
  ParallelFor(spec.points.size(), result.threads, [&](std::size_t i) {
    SweepContext context;
    context.index = i;
    context.parameters = spec.points[i];
    context.seed = DeriveStreamSeed(options.base_seed, i);

    const double point_start = NowSeconds();
    std::vector<double> metrics = fn(context);
    const double elapsed = NowSeconds() - point_start;
    Require(metrics.size() == spec.metrics.size(),
            "RunSweep: point returned wrong metric count");

    PointResult& point = result.points[i];
    point.parameters = spec.points[i];
    point.metrics = std::move(metrics);
    point.seed = context.seed;
    point.seconds = elapsed;
  });
  result.total_seconds = NowSeconds() - sweep_start;
  return result;
}

std::vector<std::vector<double>> GridPoints(
    const std::vector<std::vector<double>>& axes) {
  std::vector<std::vector<double>> points = {{}};
  for (const std::vector<double>& axis : axes) {
    std::vector<std::vector<double>> extended;
    extended.reserve(points.size() * axis.size());
    for (const std::vector<double>& prefix : points) {
      for (double value : axis) {
        std::vector<double> row = prefix;
        row.push_back(value);
        extended.push_back(std::move(row));
      }
    }
    points = std::move(extended);
  }
  return points;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace rcbr::runtime
