#include "runtime/sweep.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>

#include "runtime/thread_pool.h"
#include "util/error.h"

namespace rcbr::runtime {

SweepResult RunSweep(const SweepSpec& spec, const PointFn& fn,
                     const SweepOptions& options) {
  for (const std::vector<double>& point : spec.points) {
    Require(point.size() == spec.parameters.size(),
            "RunSweep: point arity != parameter count");
  }

  SweepResult result;
  result.spec = spec;
  result.base_seed = options.base_seed;
  result.threads =
      options.threads == 0 ? HardwareThreads() : options.threads;
  result.points.resize(spec.points.size());

  // One recorder per point: each point fn observes only through its own
  // recorder, and the merge below walks them in index order — the same
  // contract that makes the metric values thread-count-invariant.
  std::vector<std::unique_ptr<obs::Recorder>> recorders;
  if constexpr (obs::kEnabled) {
    obs::RecorderOptions recorder_options;
    recorder_options.event_capacity = options.event_capacity;
    recorder_options.ts_window_s = options.ts_window_s;
    recorder_options.span_sample = options.span_sample;
    recorder_options.flight_capacity = options.flight_events;
    recorders.reserve(spec.points.size());
    for (std::size_t i = 0; i < spec.points.size(); ++i) {
      recorders.push_back(std::make_unique<obs::Recorder>(recorder_options));
    }
  }

  std::atomic<std::size_t> completed{0};
  const double sweep_start = NowSeconds();
  ParallelFor(spec.points.size(), result.threads, [&](std::size_t i) {
    SweepContext context;
    context.index = i;
    context.parameters = spec.points[i];
    context.seed = DeriveStreamSeed(options.base_seed, i);
    if constexpr (obs::kEnabled) context.recorder = recorders[i].get();

    const double point_start = NowSeconds();
    std::vector<double> metrics = fn(context);
    const double elapsed = NowSeconds() - point_start;
    Require(metrics.size() == spec.metrics.size(),
            "RunSweep: point returned wrong metric count");

    PointResult& point = result.points[i];
    point.parameters = spec.points[i];
    point.metrics = std::move(metrics);
    point.seed = context.seed;
    point.seconds = elapsed;

    if (options.progress) {
      const std::size_t done =
          completed.fetch_add(1, std::memory_order_relaxed) + 1;
      std::fprintf(stderr, "# progress: %s %zu/%zu (point %zu, %.3f s)\n",
                   spec.name.c_str(), done, spec.points.size(), i, elapsed);
    }
  });
  result.total_seconds = NowSeconds() - sweep_start;

  if constexpr (obs::kEnabled) {
    std::int64_t trace_dropped = 0;
    std::int64_t truncated_points = 0;
    for (std::size_t i = 0; i < recorders.size(); ++i) {
      result.metrics.Merge(recorders[i]->metrics().Snapshot());
      for (const auto& [phase, profile] : recorders[i]->profile().Snapshot()) {
        result.profile[phase].Merge(profile);
      }
      const obs::EventTracer* tracer = recorders[i]->tracer();
      if (tracer != nullptr) {
        PointEvents events{i, tracer->Events(), tracer->dropped()};
        if (events.dropped > 0) {
          trace_dropped += events.dropped;
          ++truncated_points;
        }
        if (!events.events.empty() || events.dropped > 0) {
          result.events.push_back(std::move(events));
        }
      }
      const obs::TimeSeriesSampler* sampler = recorders[i]->time_series();
      if (sampler != nullptr) {
        PointSeries series{i, sampler->Snapshot()};
        if (!series.series.empty()) {
          result.series.push_back(std::move(series));
        }
      }
      const obs::FlightRecorder* flight = recorders[i]->flight();
      if (flight != nullptr) {
        PointFlight dumps{i, flight->Dumps(), flight->suppressed()};
        if (!dumps.dumps.empty() || dumps.suppressed > 0) {
          result.flight.push_back(std::move(dumps));
        }
      }
    }
    // Truncated traces must never be read as complete: surface the drop
    // totals next to the domain counters in obs_metrics.
    if (trace_dropped > 0) {
      result.metrics.counters["obs.trace_dropped_events"] += trace_dropped;
      result.metrics.counters["obs.trace_truncated_points"] +=
          truncated_points;
    }
  }
  return result;
}

std::vector<std::vector<double>> GridPoints(
    const std::vector<std::vector<double>>& axes) {
  std::vector<std::vector<double>> points = {{}};
  for (const std::vector<double>& axis : axes) {
    std::vector<std::vector<double>> extended;
    extended.reserve(points.size() * axis.size());
    for (const std::vector<double>& prefix : points) {
      for (double value : axis) {
        std::vector<double> row = prefix;
        row.push_back(value);
        extended.push_back(std::move(row));
      }
    }
    points = std::move(extended);
  }
  return points;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace rcbr::runtime
