#include "runtime/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace rcbr::runtime {

std::size_t HardwareThreads() {
  return std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(threads, 1);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { Worker(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  ready_.notify_one();
  return future;
}

void ThreadPool::Worker() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

void ParallelFor(std::size_t n, std::size_t threads,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers =
      std::min(threads == 0 ? HardwareThreads() : threads, n);
  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<std::future<void>> drivers;
  drivers.reserve(workers);
  {
    ThreadPool pool(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      drivers.push_back(pool.Submit([&] {
        while (!failed.load(std::memory_order_relaxed)) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          try {
            fn(i);
          } catch (...) {
            failed.store(true, std::memory_order_relaxed);
            throw;
          }
        }
      }));
    }
  }  // pool joins here; every driver future is ready below

  std::exception_ptr first;
  for (std::future<void>& driver : drivers) {
    try {
      driver.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace rcbr::runtime
