#include "runtime/emit.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/error.h"

namespace rcbr::runtime {
namespace {

// Round-trip decimal form; JSON has no NaN/Inf, so those become null.
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string JsonString(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string JsonStringArray(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += JsonString(values[i]);
  }
  return out + "]";
}

// {"name": value, ...} with names and values aligned by index.
std::string JsonNamedValues(const std::vector<std::string>& names,
                            const std::vector<double>& values) {
  std::string out = "{";
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += JsonString(names[i]) + ": " + JsonNumber(values[i]);
  }
  return out + "}";
}

std::string Serialize(const SweepResult& result, bool include_timings) {
  const SweepSpec& spec = result.spec;
  std::string out = "{\n";
  out += "  \"experiment\": " + JsonString(spec.name) + ",\n";
  out += "  \"base_seed\": " + std::to_string(result.base_seed) + ",\n";
  if (include_timings) {
    out += "  \"threads\": " + std::to_string(result.threads) + ",\n";
    out += "  \"total_seconds\": " + JsonNumber(result.total_seconds) + ",\n";
  }
  out += "  \"notes\": " + JsonStringArray(spec.notes) + ",\n";
  out += "  \"parameters\": " + JsonStringArray(spec.parameters) + ",\n";
  out += "  \"metrics\": " + JsonStringArray(spec.metrics) + ",\n";
  out += "  \"points\": [\n";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const PointResult& point = result.points[i];
    out += "    {\"parameters\": " +
           JsonNamedValues(spec.parameters, point.parameters) +
           ",\n     \"metrics\": " +
           JsonNamedValues(spec.metrics, point.metrics) +
           ",\n     \"seed\": " + std::to_string(point.seed);
    if (include_timings) {
      out += ",\n     \"seconds\": " + JsonNumber(point.seconds);
    }
    out += i + 1 < result.points.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace

void PrintPreamble(const std::string& experiment,
                   const std::vector<std::string>& notes,
                   const std::vector<std::string>& columns) {
  std::printf("# experiment: %s\n", experiment.c_str());
  for (const std::string& note : notes) {
    std::printf("# %s\n", note.c_str());
  }
  std::printf("#");
  for (const std::string& column : columns) {
    std::printf(" %14s", column.c_str());
  }
  std::printf("\n");
}

void PrintRow(const std::vector<double>& values) {
  std::printf(" ");
  for (double v : values) {
    std::printf(" %14.6g", v);
  }
  std::printf("\n");
  std::fflush(stdout);
}

void PrintTable(const SweepResult& result) {
  const SweepSpec& spec = result.spec;
  std::vector<std::string> columns = spec.parameters;
  columns.insert(columns.end(), spec.metrics.begin(), spec.metrics.end());
  PrintPreamble(spec.name, spec.notes, columns);
  for (const PointResult& point : result.points) {
    std::vector<double> row = point.parameters;
    row.insert(row.end(), point.metrics.begin(), point.metrics.end());
    PrintRow(row);
  }
}

std::string ToJson(const SweepResult& result) {
  return Serialize(result, /*include_timings=*/true);
}

std::string ToJsonWithoutTimings(const SweepResult& result) {
  return Serialize(result, /*include_timings=*/false);
}

std::string WriteJson(const SweepResult& result,
                      const std::string& directory) {
  std::string path = directory.empty() ? "." : directory;
  if (path.back() != '/') path += '/';
  path += "BENCH_" + result.spec.name + ".json";
  std::ofstream file(path);
  Require(file.good(), "WriteJson: cannot open " + path);
  file << ToJson(result);
  file.close();
  Require(file.good(), "WriteJson: write failed for " + path);
  return path;
}

}  // namespace rcbr::runtime
