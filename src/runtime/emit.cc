#include "runtime/emit.h"

#include <cstdio>
#include <fstream>

#include "util/error.h"
#include "util/json.h"

namespace rcbr::runtime {
namespace {

std::string JsonStringArray(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += json::Quote(values[i]);
  }
  return out + "]";
}

// {"name": value, ...} with names and values aligned by index.
std::string JsonNamedValues(const std::vector<std::string>& names,
                            const std::vector<double>& values) {
  std::string out = "{";
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += json::Quote(names[i]) + ": " + json::Number(values[i]);
  }
  return out + "}";
}

std::string Serialize(const SweepResult& result, bool include_timings) {
  const SweepSpec& spec = result.spec;
  std::string out = "{\n";
  out += "  \"experiment\": " + json::Quote(spec.name) + ",\n";
  out += "  \"base_seed\": " + std::to_string(result.base_seed) + ",\n";
  if (include_timings) {
    out += "  \"threads\": " + std::to_string(result.threads) + ",\n";
    out +=
        "  \"total_seconds\": " + json::Number(result.total_seconds) + ",\n";
    if (!result.profile.empty()) {
      out += "  \"profile\": {";
      bool first = true;
      for (const auto& [phase, profile] : result.profile) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + json::Quote(phase) +
               ": {\"calls\": " + std::to_string(profile.calls) +
               ", \"seconds\": " + json::Number(profile.seconds) + "}";
      }
      out += "\n  },\n";
    }
  }
  out += "  \"notes\": " + JsonStringArray(spec.notes) + ",\n";
  out += "  \"parameters\": " + JsonStringArray(spec.parameters) + ",\n";
  out += "  \"metrics\": " + JsonStringArray(spec.metrics) + ",\n";
  if (!result.metrics.empty()) {
    // Deterministic (sim-only) observability snapshot; kept in both
    // serializations, like the metric columns themselves.
    out += "  \"obs_metrics\": " + result.metrics.ToJson("  ") + ",\n";
  }
  out += "  \"points\": [\n";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    const PointResult& point = result.points[i];
    out += "    {\"parameters\": " +
           JsonNamedValues(spec.parameters, point.parameters) +
           ",\n     \"metrics\": " +
           JsonNamedValues(spec.metrics, point.metrics) +
           ",\n     \"seed\": " + std::to_string(point.seed);
    if (include_timings) {
      out += ",\n     \"seconds\": " + json::Number(point.seconds);
    }
    out += i + 1 < result.points.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace

void PrintPreamble(const std::string& experiment,
                   const std::vector<std::string>& notes,
                   const std::vector<std::string>& columns) {
  std::printf("# experiment: %s\n", experiment.c_str());
  for (const std::string& note : notes) {
    std::printf("# %s\n", note.c_str());
  }
  std::printf("#");
  for (const std::string& column : columns) {
    std::printf(" %14s", column.c_str());
  }
  std::printf("\n");
}

void PrintRow(const std::vector<double>& values) {
  std::printf(" ");
  for (double v : values) {
    std::printf(" %14.6g", v);
  }
  std::printf("\n");
  std::fflush(stdout);
}

void PrintTable(const SweepResult& result) {
  const SweepSpec& spec = result.spec;
  std::vector<std::string> columns = spec.parameters;
  columns.insert(columns.end(), spec.metrics.begin(), spec.metrics.end());
  PrintPreamble(spec.name, spec.notes, columns);
  for (const PointResult& point : result.points) {
    std::vector<double> row = point.parameters;
    row.insert(row.end(), point.metrics.begin(), point.metrics.end());
    PrintRow(row);
  }
}

std::string ToJson(const SweepResult& result) {
  return Serialize(result, /*include_timings=*/true);
}

std::string ToJsonWithoutTimings(const SweepResult& result) {
  return Serialize(result, /*include_timings=*/false);
}

std::string WriteJson(const SweepResult& result,
                      const std::string& directory) {
  std::string path = directory.empty() ? "." : directory;
  if (path.back() != '/') path += '/';
  path += "BENCH_" + result.spec.name + ".json";
  std::ofstream file(path);
  Require(file.good(), "WriteJson: cannot open " + path);
  file << ToJson(result);
  file.close();
  Require(file.good(), "WriteJson: write failed for " + path);
  return path;
}

std::string ToTraceJsonl(const SweepResult& result) {
  std::string out;
  for (const PointEvents& point : result.events) {
    obs::AppendJsonl(point.point, point.events, out);
    if (point.dropped > 0) {
      // A truncation marker keeps silent caps out of the trace.
      out += "{\"point\": " + std::to_string(point.point) +
             ", \"event\": \"trace_truncated\", \"dropped\": " +
             std::to_string(point.dropped) + "}\n";
    }
  }
  return out;
}

std::string WriteTrace(const SweepResult& result,
                       const std::string& directory) {
  std::string path = directory.empty() ? "." : directory;
  if (path.back() != '/') path += '/';
  path += "TRACE_" + result.spec.name + ".jsonl";
  std::ofstream file(path);
  Require(file.good(), "WriteTrace: cannot open " + path);
  file << ToTraceJsonl(result);
  file.close();
  Require(file.good(), "WriteTrace: write failed for " + path);
  return path;
}

std::string ToTimeSeriesJsonl(const SweepResult& result) {
  std::string out;
  for (const PointSeries& point : result.series) {
    const double window_s = point.series.window_s;
    for (const auto& [name, windows] : point.series.series) {
      for (const obs::SeriesWindow& w : windows) {
        const double t0 = static_cast<double>(w.window) * window_s;
        out += "{\"point\": " + std::to_string(point.point) +
               ", \"series\": " + json::Quote(name) +
               ", \"window\": " + std::to_string(w.window) +
               ", \"t0\": " + json::Number(t0) +
               ", \"t1\": " + json::Number(t0 + window_s) +
               ", \"n\": " + std::to_string(w.count) +
               ", \"sum\": " + json::Number(w.sum) +
               ", \"min\": " + json::Number(w.min) +
               ", \"max\": " + json::Number(w.max) +
               ", \"last\": " + json::Number(w.last) + "}\n";
      }
    }
  }
  return out;
}

std::string WriteTimeSeries(const SweepResult& result,
                            const std::string& directory) {
  std::string path = directory.empty() ? "." : directory;
  if (path.back() != '/') path += '/';
  path += "TS_" + result.spec.name + ".jsonl";
  std::ofstream file(path);
  Require(file.good(), "WriteTimeSeries: cannot open " + path);
  file << ToTimeSeriesJsonl(result);
  file.close();
  Require(file.good(), "WriteTimeSeries: write failed for " + path);
  return path;
}

std::string ToFlightJsonl(const SweepResult& result) {
  std::string out;
  for (const PointFlight& point : result.flight) {
    obs::AppendFlightJsonl(point.point, point.dumps, point.suppressed, out);
  }
  return out;
}

std::string WriteFlight(const SweepResult& result,
                        const std::string& directory) {
  std::string path = directory.empty() ? "." : directory;
  if (path.back() != '/') path += '/';
  path += "FLIGHT_" + result.spec.name + ".jsonl";
  std::ofstream file(path);
  Require(file.good(), "WriteFlight: cannot open " + path);
  file << ToFlightJsonl(result);
  file.close();
  Require(file.good(), "WriteFlight: write failed for " + path);
  return path;
}

}  // namespace rcbr::runtime
