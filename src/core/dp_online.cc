#include "core/dp_online.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "runtime/thread_pool.h"
#include "util/error.h"

namespace rcbr::core {

DpOnlineScheduler::DpOnlineScheduler(std::vector<double> workload_bits,
                                     const DpOnlineOptions& options)
    : workload_(std::move(workload_bits)),
      options_(options),
      plan_(PiecewiseConstant::Constant(0, 1)) {
  Require(options_.window_slots >= 0,
          "DpOnlineScheduler: window_slots must be >= 0");
  Require(options_.replan_period_slots >= 0,
          "DpOnlineScheduler: replan_period_slots must be >= 0");
  // Window solves share one pool for the lifetime of the controller; the
  // effective worker count still adapts to the rate-level count per solve.
  std::size_t threads = options_.dp.threads == 0 ? runtime::HardwareThreads()
                                                 : options_.dp.threads;
  threads = std::max<std::size_t>(threads, 1);
  if (threads > 1 && options_.dp.pool == nullptr) {
    pool_ = std::make_unique<runtime::ThreadPool>(threads - 1);
    options_.dp.pool = pool_.get();
  }
  options_.dp.threads = threads;
  // The first window: nothing is reserved yet, so the initial rate is a
  // free choice, exactly like the offline DP (initial_rate_index = -1 via
  // the current_rate_-not-a-level path below).
  current_rate_ = std::numeric_limits<double>::quiet_NaN();
  Replan();
  current_rate_ = PlanAt(0);
}

DpOnlineScheduler::~DpOnlineScheduler() = default;

void DpOnlineScheduler::Replan() {
  const auto total = static_cast<std::int64_t>(workload_.size());
  const std::int64_t remaining = total - slot_;
  if (remaining <= 0) return;
  const std::int64_t window =
      options_.window_slots == 0 ? remaining
                                 : std::min(options_.window_slots, remaining);

  DpOptions dp = options_.dp;
  dp.initial_buffer_bits = buffer_bits_;
  dp.initial_rate_index = -1;
  for (std::size_t v = 0; v < dp.rate_levels.size(); ++v) {
    if (dp.rate_levels[v] == current_rate_) {
      dp.initial_rate_index = static_cast<std::int64_t>(v);
      break;
    }
  }
  // Mid-trace windows leave the terminal buffer free: draining early is a
  // horizon artifact, not part of the objective.
  if (slot_ + window < total) {
    dp.final_buffer_bits = std::numeric_limits<double>::infinity();
  }

  const std::vector<double> win(
      workload_.begin() + slot_, workload_.begin() + slot_ + window);
  ++replans_;
  obs::Count(dp.recorder, "dp_online.replans");
  try {
    plan_ = ComputeOptimalSchedule(win, dp).schedule;
  } catch (const Infeasible&) {
    // No window schedule holds the bound from this occupancy (imposed
    // rates or a denial backlog): run flat-out and let the buffer drain.
    ++infeasible_windows_;
    obs::Count(dp.recorder, "dp_online.infeasible_windows");
    plan_ = PiecewiseConstant::Constant(dp.rate_levels.back(), window);
  }
  plan_start_ = slot_;
}

double DpOnlineScheduler::PlanAt(std::int64_t slot) const {
  const std::int64_t t = std::min(slot - plan_start_, plan_.length() - 1);
  return plan_.At(std::max<std::int64_t>(t, 0));
}

std::optional<double> DpOnlineScheduler::Step(double arrival_bits,
                                              double granted_rate) {
  // Mirror the source buffer: Lindley recursion against the granted rate,
  // clipped at the physical buffer (overflow is loss, not backlog).
  buffer_bits_ = std::max(buffer_bits_ + arrival_bits - granted_rate, 0.0);
  if (options_.dp.delay_bound_slots < 0 && options_.dp.buffer_bits > 0) {
    buffer_bits_ = std::min(buffer_bits_, options_.dp.buffer_bits);
  }
  ++slot_;
  if (slot_ >= static_cast<std::int64_t>(workload_.size())) {
    return std::nullopt;
  }
  const std::int64_t period =
      options_.replan_period_slots > 0 ? options_.replan_period_slots
                                       : options_.dp.decision_period;
  if (slot_ % period == 0) Replan();
  const double desired = PlanAt(slot_);
  if (desired == current_rate_) return std::nullopt;
  current_rate_ = desired;  // optimistic; a denial adopts the real grant
  return desired;
}

void DpOnlineScheduler::OnRequestDenied(double granted_rate) {
  current_rate_ = granted_rate;
}

void DpOnlineScheduler::OnRateImposed(double granted_rate) {
  current_rate_ = granted_rate;
}

PiecewiseConstant ComputeDpOnlineSchedule(
    const std::vector<double>& workload_bits,
    const DpOnlineOptions& options) {
  DpOnlineScheduler scheduler(workload_bits, options);
  const auto total = static_cast<std::int64_t>(workload_bits.size());
  std::vector<Step> steps;
  double rate = scheduler.current_rate();
  steps.push_back({0, rate});
  for (std::int64_t t = 0; t < total; ++t) {
    const std::optional<double> request =
        scheduler.Step(workload_bits[static_cast<std::size_t>(t)], rate);
    if (request.has_value() && t + 1 < total) {
      rate = *request;
      steps.push_back({t + 1, rate});
    }
  }
  return PiecewiseConstant(std::move(steps), total);
}

}  // namespace rcbr::core
