#include "core/testbed.h"

#include <memory>

#include "util/error.h"

namespace rcbr::core {

double TestbedResult::arrived_bits() const {
  double acc = 0;
  for (const auto& s : per_source) acc += s.arrived_bits;
  return acc;
}

double TestbedResult::lost_bits() const {
  double acc = 0;
  for (const auto& s : per_source) acc += s.lost_bits;
  return acc;
}

double TestbedResult::loss_fraction() const {
  const double arrived = arrived_bits();
  return arrived > 0 ? lost_bits() / arrived : 0.0;
}

std::int64_t TestbedResult::renegotiation_attempts() const {
  std::int64_t acc = 0;
  for (const auto& s : per_source) acc += s.renegotiation_attempts;
  return acc;
}

std::int64_t TestbedResult::renegotiation_failures() const {
  std::int64_t acc = 0;
  for (const auto& s : per_source) acc += s.renegotiation_failures;
  return acc;
}

TestbedResult RunOfflineTestbed(
    const std::vector<std::vector<double>>& arrivals,
    const std::vector<PiecewiseConstant>& schedules,
    const TestbedOptions& options) {
  Require(!arrivals.empty(), "RunOfflineTestbed: no sources");
  Require(arrivals.size() == schedules.size(),
          "RunOfflineTestbed: one schedule per source required");
  Require(options.hop_capacity_bps > 0,
          "RunOfflineTestbed: capacity must be positive");
  Require(options.hops >= 1, "RunOfflineTestbed: need at least one hop");
  Require(options.slot_seconds > 0, "RunOfflineTestbed: bad slot duration");
  const auto slots = static_cast<std::int64_t>(arrivals.front().size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    Require(static_cast<std::int64_t>(arrivals[i].size()) == slots,
            "RunOfflineTestbed: workloads must have equal length");
    Require(schedules[i].length() == slots,
            "RunOfflineTestbed: schedule/workload length mismatch");
  }

  std::vector<std::unique_ptr<signaling::PortController>> ports;
  std::vector<signaling::PortController*> raw;
  for (std::size_t h = 0; h < options.hops; ++h) {
    ports.push_back(std::make_unique<signaling::PortController>(
        options.hop_capacity_bps));
    raw.push_back(ports.back().get());
  }
  signaling::SignalingPath path(std::move(raw), options.per_hop_delay_s);

  std::vector<RcbrSource> sources;
  sources.reserve(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    sources.push_back(RcbrSource::Offline(
        static_cast<std::uint64_t>(i) + 1, schedules[i],
        options.slot_seconds, options.buffer_bits, &path));
    if (!sources.back().Connect()) {
      throw Infeasible(
          "RunOfflineTestbed: initial reservations exceed the link; "
          "raise hop_capacity_bps");
    }
  }

  for (std::int64_t t = 0; t < slots; ++t) {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      sources[i].Step(arrivals[i][static_cast<std::size_t>(t)]);
    }
  }

  TestbedResult result;
  for (auto& source : sources) {
    result.per_source.push_back(source.stats());
    source.Disconnect();
  }
  result.path_stats = path.stats();
  return result;
}

}  // namespace rcbr::core
