// Optimal offline renegotiation schedules (Sec. IV-A).
//
// Given the whole workload a_1..a_T (bits per slot), a finite set of rate
// levels, a buffer bound B (eq. 2) or delay bound d (eq. 5), and the cost
// model c = alpha * (#renegotiations) + beta * sum_t r_t (eq. 1), compute
// the cost-minimal stepwise-CBR schedule.
//
// The paper solves this with a Viterbi-like algorithm over a trellis of
// nodes (t, rate, buffer, weight), pruned by the dominance Lemma 1: a path
// ending at (v, b, w) is not optimal if another path ends at (v', b', w')
// with b' <= b and w' <= w (same rate) or w' + alpha <= w (different
// rate). This implementation keeps, per rate level, a Pareto frontier of
// (buffer, weight) pairs — sorted by buffer ascending with weight strictly
// descending — and realizes the cross-rate pruning by merging each
// frontier with the alpha-shifted global frontier at every step, which
// yields exactly the Lemma-1-pruned node set in O(K * frontier) per slot.
//
// The delay-bound variant is reduced to a time-varying buffer bound: data
// entering at slot t leaves by slot t + d iff q_u <= A(u) - A(u - d) for
// every u (the bits that arrived in the last d slots), which the same DP
// enforces slot by slot.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/schedule.h"
#include "obs/recorder.h"
#include "util/piecewise.h"

namespace rcbr::core {

struct DpOptions {
  /// Allowed service rates, bits per slot, strictly increasing. The paper
  /// uses ~20 uniformly spaced levels (Sec. IV-A).
  std::vector<double> rate_levels;

  /// Buffer bound in bits (eq. 2). With delay_bound_slots >= 0 and a
  /// positive value, *both* constraints are enforced (a real-time source
  /// with a finite buffer); 0 with a delay bound means delay-only.
  double buffer_bits = 0;

  /// Delay bound in slots (eq. 5); negative selects the buffer bound.
  std::int64_t delay_bound_slots = -1;

  /// alpha (per renegotiation) and beta (per bandwidth-slot).
  CostModel cost;

  /// Coalesce buffer states onto a grid of this size (bits). 0 keeps the
  /// exact continuum of reachable states. Quantization rounds occupancy
  /// *up*, so feasibility is conservative and the cost error is bounded by
  /// the extra rate needed to cover one quantum.
  double buffer_quantum_bits = 0;

  /// Renegotiations permitted only every `decision_period` slots (the
  /// buffer bound is still enforced every slot). 1 = every slot boundary.
  std::int64_t decision_period = 1;

  /// Largest buffer occupancy permitted at the end of the session.
  /// Unbounded by default (the cost optimum may leave up to B bits
  /// buffered). Set to 0 when the schedule will be used as a *rotated*
  /// (randomly phased) copy: a drained terminal buffer guarantees the
  /// rotation stays feasible across the wrap seam.
  double final_buffer_bits = std::numeric_limits<double>::infinity();

  /// Safety cap on trellis nodes (memory guard). Exceeding it throws.
  std::size_t max_total_nodes = 60'000'000;

  /// Optional observability sink: per-epoch kDpPrune events (time = first
  /// slot of the epoch, id = `obs_id`) comparing candidate nodes against
  /// Lemma-1 survivors, "dp.*" counters, and a "dp.compute" profile phase.
  obs::Recorder* recorder = nullptr;
  /// Identifier stamped into this run's events (e.g. a trace index).
  std::uint64_t obs_id = 0;
};

struct DpResult {
  PiecewiseConstant schedule;
  double optimal_cost = 0;
  /// Diagnostics: widest frontier (live nodes) seen at any slot, and total
  /// nodes retained for backtracking.
  std::size_t peak_live_nodes = 0;
  std::size_t total_nodes = 0;
};

/// Computes the cost-optimal schedule. Throws rcbr::Infeasible when no
/// schedule within the rate set satisfies the bound (e.g. the top rate is
/// below what the buffer requires).
DpResult ComputeOptimalSchedule(const std::vector<double>& workload_bits,
                                const DpOptions& options);

/// Convenience: uniformly spaced rate levels covering [0, peak], like the
/// paper's "bandwidth levels chosen uniformly within 48 kb/s and
/// 2.4 Mb/s". Returns `count` levels from `lo` to `hi`.
std::vector<double> UniformRateLevels(double lo, double hi,
                                      std::size_t count);

}  // namespace rcbr::core
