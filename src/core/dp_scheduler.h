// Optimal offline renegotiation schedules (Sec. IV-A).
//
// Given the whole workload a_1..a_T (bits per slot), a finite set of rate
// levels, a buffer bound B (eq. 2) or delay bound d (eq. 5), and the cost
// model c = alpha * (#renegotiations) + beta * sum_t r_t (eq. 1), compute
// the cost-minimal stepwise-CBR schedule.
//
// The paper solves this with a Viterbi-like algorithm over a trellis of
// nodes (t, rate, buffer, weight), pruned by the dominance Lemma 1: a path
// ending at (v, b, w) is not optimal if another path ends at (v', b', w')
// with b' <= b and w' <= w (same rate) or w' + alpha <= w (different
// rate). This implementation keeps, per rate level, a Pareto frontier of
// (buffer, weight) pairs — a structure-of-arrays arena of per-rate runs,
// each sorted by buffer ascending with weight strictly descending — and
// realizes the cross-rate pruning by merging each frontier with the
// alpha-shifted global frontier at every step, which yields exactly the
// Lemma-1-pruned node set in O(K * frontier) per slot. The global frontier
// is built by a k-way Pareto fold over the sorted per-rate runs (lowest
// rate wins exact (buffer, weight) ties), and the per-rate transform is
// parallelized over the runtime thread pool with a rate-major merge order,
// so results are byte-identical for every thread count.
//
// Memory is bounded for arbitrarily long traces by streaming the
// backtracking chain in blocks: the frontier is checkpointed every
// `checkpoint_slots`, and when the retained backpointer records exceed
// `max_resident_nodes` the oldest blocks are discarded and recomputed from
// their checkpoint on demand during backtracking (docs/algorithms.md §1).
//
// The delay-bound variant is reduced to a time-varying buffer bound: data
// entering at slot t leaves by slot t + d iff q_u <= A(u) - A(u - d) for
// every u (the bits that arrived in the last d slots), which the same DP
// enforces slot by slot.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "core/schedule.h"
#include "obs/recorder.h"
#include "util/piecewise.h"

namespace rcbr::runtime {
class ThreadPool;
}  // namespace rcbr::runtime

namespace rcbr::core {

/// Read-only view of the Lemma-1 frontiers after one epoch, handed to
/// DpOptions::inspect. Test-only surface: lets property tests check the
/// sortedness/dominance invariants and recount the diagnostics without
/// copying scheduler internals. Spans are valid only during the callback.
struct DpFrontierView {
  /// First slot of the epoch just processed.
  std::int64_t first_slot = 0;
  std::size_t num_rates = 0;
  /// Live nodes across all rates after this epoch (Σ per-rate sizes).
  std::size_t live_nodes = 0;
  /// Backtracking records appended so far, including this epoch's.
  std::size_t arena_nodes = 0;

  /// Rate v's frontier buffers, ascending (strictly, within one rate).
  std::span<const double> buffers(std::size_t rate) const {
    return {buf + begin[rate], end[rate] - begin[rate]};
  }
  /// Rate v's frontier weights, strictly descending.
  std::span<const double> weights(std::size_t rate) const {
    return {wgt + begin[rate], end[rate] - begin[rate]};
  }

  // Implementation wiring (SoA slices); use the accessors above.
  const double* buf = nullptr;
  const double* wgt = nullptr;
  const std::uint32_t* begin = nullptr;
  const std::uint32_t* end = nullptr;
};

struct DpOptions {
  /// Allowed service rates, bits per slot, strictly increasing. The paper
  /// uses ~20 uniformly spaced levels (Sec. IV-A).
  std::vector<double> rate_levels;

  /// Buffer bound in bits (eq. 2). With delay_bound_slots >= 0 and a
  /// positive value, *both* constraints are enforced (a real-time source
  /// with a finite buffer); 0 with a delay bound means delay-only.
  double buffer_bits = 0;

  /// Delay bound in slots (eq. 5); negative selects the buffer bound.
  std::int64_t delay_bound_slots = -1;

  /// alpha (per renegotiation) and beta (per bandwidth-slot).
  CostModel cost;

  /// Coalesce buffer states onto a grid of this size (bits). 0 keeps the
  /// exact continuum of reachable states. Quantization rounds occupancy
  /// *up*, so feasibility is conservative and the cost error is bounded by
  /// the extra rate needed to cover one quantum.
  double buffer_quantum_bits = 0;

  /// Renegotiations permitted only every `decision_period` slots (the
  /// buffer bound is still enforced every slot). 1 = every slot boundary.
  std::int64_t decision_period = 1;

  /// Largest buffer occupancy permitted at the end of the session.
  /// Unbounded by default (the cost optimum may leave up to B bits
  /// buffered). Set to 0 when the schedule will be used as a *rotated*
  /// (randomly phased) copy: a drained terminal buffer guarantees the
  /// rotation stays feasible across the wrap seam.
  double final_buffer_bits = std::numeric_limits<double>::infinity();

  /// Buffer occupancy at the start of the session (bits). The receding-
  /// horizon online scheduler re-solves windows from a live, non-empty
  /// buffer.
  double initial_buffer_bits = 0;

  /// Index into `rate_levels` of the rate already reserved when the
  /// session starts. Negative (the default) means the first rate is free
  /// to choose — no alpha is charged for it, the offline convention.
  /// When set, choosing any *other* rate for the first epoch costs alpha,
  /// exactly like any later switch: the receding-horizon scheduler's
  /// windows start from a live reservation.
  std::int64_t initial_rate_index = -1;

  /// Worker threads for the per-rate transform and the cross-rate merge
  /// (0 = hardware concurrency, 1 = fully sequential). Results are
  /// byte-identical for every value. When `pool` is null and threads > 1,
  /// a private runtime::ThreadPool is created for the call.
  std::size_t threads = 1;

  /// Optional externally owned worker pool (runtime::ThreadPool). Callers
  /// that solve many windows (DpOnlineScheduler) reuse one pool across
  /// solves. Must have at least threads - 1 workers available for the
  /// duration of the call. Borrowed, may be null.
  runtime::ThreadPool* pool = nullptr;

  /// Budget of *resident* backtracking records (the working set). The
  /// forward pass checkpoints the frontier every `checkpoint_slots`;
  /// exceeding the budget discards the oldest blocks of backpointers,
  /// which are recomputed from their checkpoint during backtracking.
  /// Memory is therefore bounded for arbitrarily long traces — unlike the
  /// pre-streaming implementation, nothing throws on large trellises.
  std::size_t max_resident_nodes = 60'000'000;

  /// Checkpoint cadence in slots. 0 picks a cadence automatically (a few
  /// thousand epochs per block). Smaller values bound the recompute
  /// working set at O(K * frontier * checkpoint_slots) but checkpoint the
  /// frontier more often.
  std::int64_t checkpoint_slots = 0;

  /// Test-only inspection hook: called after every forward-pass epoch
  /// with a view of the pruned frontiers (not during backtracking
  /// recomputes). Adds overhead; leave empty outside tests.
  std::function<void(const DpFrontierView&)> inspect;

  /// Optional observability sink: per-epoch kDpPrune events (time = first
  /// slot of the epoch, id = `obs_id`) comparing candidate nodes against
  /// Lemma-1 survivors, "dp.*" counters, and a "dp.compute" profile phase.
  obs::Recorder* recorder = nullptr;
  /// Identifier stamped into this run's events (e.g. a trace index).
  std::uint64_t obs_id = 0;
};

struct DpResult {
  PiecewiseConstant schedule;
  double optimal_cost = 0;
  /// Diagnostics: widest frontier (live nodes) seen at any slot, and total
  /// nodes retained for backtracking across the whole run (resident or
  /// streamed).
  std::size_t peak_live_nodes = 0;
  std::size_t total_nodes = 0;
  /// Streaming diagnostics: peak backpointer records held in memory at
  /// once, and epochs re-solved during backtracking (0 when everything
  /// stayed resident).
  std::size_t peak_resident_nodes = 0;
  std::int64_t recomputed_epochs = 0;
};

/// Computes the cost-optimal schedule. Throws rcbr::Infeasible when no
/// schedule within the rate set satisfies the bound (e.g. the top rate is
/// below what the buffer requires) and rcbr::InvalidArgument on malformed
/// options (NaN bounds or costs, unsorted rate levels, ...).
DpResult ComputeOptimalSchedule(const std::vector<double>& workload_bits,
                                const DpOptions& options);

/// Convenience: uniformly spaced rate levels covering [0, peak], like the
/// paper's "bandwidth levels chosen uniformly within 48 kb/s and
/// 2.4 Mb/s". Returns `count` levels from `lo` to `hi`.
std::vector<double> UniformRateLevels(double lo, double hi,
                                      std::size_t count);

}  // namespace rcbr::core
