#include "core/efficiency_solver.h"

#include <cmath>
#include <numeric>

#include "util/error.h"

namespace rcbr::core {

namespace {

double Efficiency(const std::vector<double>& workload,
                  const PiecewiseConstant& schedule) {
  const double source_mean =
      std::accumulate(workload.begin(), workload.end(), 0.0) /
      static_cast<double>(workload.size());
  return schedule.Mean() > 0 ? source_mean / schedule.Mean() : 0.0;
}

}  // namespace

DpResult SolveForEfficiency(const std::vector<double>& workload_bits,
                            const DpOptions& options,
                            const EfficiencyTarget& target) {
  Require(target.min_efficiency > 0 && target.min_efficiency <= 1,
          "SolveForEfficiency: efficiency target in (0,1]");
  Require(target.alpha_lo > 0 && target.alpha_hi > target.alpha_lo,
          "SolveForEfficiency: bad alpha bracket");

  auto solve = [&](double alpha) {
    DpOptions local = options;
    local.cost.per_renegotiation = alpha * options.cost.per_bandwidth;
    return ComputeOptimalSchedule(workload_bits, local);
  };

  DpResult best = solve(target.alpha_lo);
  if (Efficiency(workload_bits, best.schedule) < target.min_efficiency) {
    throw Infeasible(
        "SolveForEfficiency: target efficiency unreachable even at "
        "alpha_lo (rate grid too coarse or target too high)");
  }

  // Invariant: lo meets the target (its result is kept in `best`);
  // hi may not. Bisect on log-ish scale via the geometric mean.
  double lo = target.alpha_lo;
  double hi = target.alpha_hi;
  {
    const DpResult at_hi = solve(hi);
    if (Efficiency(workload_bits, at_hi.schedule) >=
        target.min_efficiency) {
      return at_hi;  // even the laziest schedule meets the target
    }
  }
  for (int i = 0; i < target.max_iterations; ++i) {
    const double mid = std::sqrt(lo * hi);
    const DpResult at_mid = solve(mid);
    if (Efficiency(workload_bits, at_mid.schedule) >=
        target.min_efficiency) {
      best = at_mid;
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi / lo < 1.05) break;
  }
  return best;
}

}  // namespace rcbr::core
