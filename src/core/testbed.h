// Frame-level testbed: real sources over real signaling.
//
// RcbrScenario (scenarios.h) models the Fig. 3(c) multiplexer with an
// idealized grant rule — a source denied bandwidth "settles for whatever
// bandwidth remains" (partial grants, FIFO refill). The deployed
// mechanism of Sec. III-B is coarser: an RM cell either carries the full
// delta or is denied, and the source retries at the next opportunity
// while keeping its old rate. This testbed runs N RcbrSources, slot by
// slot, through an actual SignalingPath so the two grant disciplines can
// be compared on identical workloads (bench/ablation_grant_policy): how
// much loss does full-grant-or-nothing cost over the fluid ideal?
#pragma once

#include <cstdint>
#include <vector>

#include "core/rcbr_source.h"
#include "signaling/path.h"
#include "signaling/port_controller.h"
#include "util/piecewise.h"

namespace rcbr::core {

struct TestbedOptions {
  /// Capacity of every hop, bits/second.
  double hop_capacity_bps = 0;
  std::size_t hops = 1;
  double per_hop_delay_s = 1e-3;
  /// Per-source buffer, bits.
  double buffer_bits = 0;
  double slot_seconds = 1.0 / 24.0;
};

struct TestbedResult {
  std::vector<SourceStats> per_source;
  signaling::PathStats path_stats;

  double arrived_bits() const;
  double lost_bits() const;
  double loss_fraction() const;
  std::int64_t renegotiation_attempts() const;
  std::int64_t renegotiation_failures() const;
};

/// Runs N offline sources (workload i drained by schedule i, both over
/// the same slot domain) through a shared multi-hop path with
/// full-grant-or-nothing renegotiation and per-slot retries. Sources that
/// fail Connect() are reported via rcbr::Infeasible (size the link to fit
/// the initial rates).
TestbedResult RunOfflineTestbed(
    const std::vector<std::vector<double>>& arrivals,
    const std::vector<PiecewiseConstant>& schedules,
    const TestbedOptions& options);

}  // namespace rcbr::core
