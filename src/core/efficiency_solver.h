// Solving the scheduler for a bandwidth-efficiency target.
//
// The DP of Sec. IV-A takes prices (alpha, beta) and returns the
// cost-optimal schedule; operators usually think the other way around:
// "give me the fewest renegotiations subject to at most X% bandwidth
// overhead". Since raising the renegotiation price alpha monotonically
// trades renegotiations for mean rate ("raising the price for
// renegotiation results not only in a lower renegotiation frequency but
// also in a lower bandwidth efficiency"), the dual problem is solved by a
// bisection over alpha on top of the same DP.
#pragma once

#include <vector>

#include "core/dp_scheduler.h"

namespace rcbr::core {

struct EfficiencyTarget {
  /// Lower bound on source-mean / schedule-mean (e.g. 0.95 = at most ~5%
  /// bandwidth overhead).
  double min_efficiency = 0.95;
  /// Bisection bracket for alpha, in units of the per-bandwidth price.
  double alpha_lo = 1.0;
  double alpha_hi = 1e7;
  int max_iterations = 24;
};

/// Returns the schedule with (approximately) the fewest renegotiations
/// whose bandwidth efficiency still meets `target.min_efficiency`, by
/// bisecting alpha within `options`' other settings (rate levels, buffer,
/// quantization...). `options.cost.per_renegotiation` is ignored. Throws
/// rcbr::Infeasible when even the most eager schedule (alpha_lo) cannot
/// reach the target efficiency (e.g. the rate grid is too coarse).
DpResult SolveForEfficiency(const std::vector<double>& workload_bits,
                            const DpOptions& options,
                            const EfficiencyTarget& target);

}  // namespace rcbr::core
