// Client-side playback analysis for stored video (Sec. II / III-A2).
//
// The paper's buffer/delay discussion is from the network's side; the
// receiving client has the mirror problem: given the stepwise-CBR
// delivery schedule, how long must playback wait before starting so the
// display never underflows, and how much client buffer does that startup
// delay imply? ("either the data buffer has to be very large or ... the
// ensuing delays may not be tolerable for interactive applications.")
//
// Model: the server streams the stored file at the schedule rate until
// everything is sent; the client displays frame k during slot d + k.
// Underflow-free iff cumulative delivery S(t) >= cumulative frame bits
// A(t - d) for every t.
#pragma once

#include <cstdint>
#include <vector>

#include "util/piecewise.h"

namespace rcbr::core {

struct PlaybackAnalysis {
  /// Smallest startup delay (slots) with no display underflow.
  std::int64_t min_startup_slots = 0;
  /// Peak client buffer occupancy (bits) at that startup delay.
  double client_buffer_bits = 0;
  /// Slot by which the whole file has been delivered.
  std::int64_t delivery_complete_slot = 0;
};

/// Analyzes playback of `frame_bits` delivered by `schedule_bits_per_slot`
/// (same slot domain; the schedule may deliver ahead since the file is
/// stored). Throws rcbr::Infeasible when the schedule cannot deliver the
/// whole file within its own duration.
PlaybackAnalysis AnalyzePlayback(
    const std::vector<double>& frame_bits,
    const PiecewiseConstant& schedule_bits_per_slot);

/// Peak client buffer (bits) for a *given* startup delay; the delay must
/// be >= the minimal one (checked).
double ClientBufferForStartup(const std::vector<double>& frame_bits,
                              const PiecewiseConstant& schedule_bits_per_slot,
                              std::int64_t startup_slots);

}  // namespace rcbr::core
