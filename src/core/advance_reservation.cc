#include "core/advance_reservation.h"

#include <algorithm>

#include "util/error.h"

namespace rcbr::core {

ReservationLedger::ReservationLedger(double capacity_bps,
                                     double slot_seconds,
                                     std::int64_t horizon_slots)
    : capacity_(capacity_bps), slot_seconds_(slot_seconds) {
  Require(capacity_bps > 0, "ReservationLedger: capacity must be positive");
  Require(slot_seconds > 0, "ReservationLedger: slot must be positive");
  Require(horizon_slots > 0, "ReservationLedger: horizon must be positive");
  reserved_.assign(static_cast<std::size_t>(horizon_slots), 0.0);
}

bool ReservationLedger::Fits(const PiecewiseConstant& schedule_bps,
                             std::int64_t start_slot) const {
  if (start_slot < 0 ||
      start_slot + schedule_bps.length() > horizon_slots()) {
    return false;
  }
  const auto& steps = schedule_bps.steps();
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const std::int64_t seg_start = start_slot + steps[i].start;
    const std::int64_t seg_end =
        start_slot + ((i + 1 < steps.size()) ? steps[i + 1].start
                                             : schedule_bps.length());
    for (std::int64_t t = seg_start; t < seg_end; ++t) {
      if (reserved_[static_cast<std::size_t>(t)] + steps[i].value >
          capacity_ + 1e-9) {
        return false;
      }
    }
  }
  return true;
}

void ReservationLedger::Apply(const Booking& booking, double sign) {
  for (std::size_t i = 0; i < booking.steps.size(); ++i) {
    const std::int64_t seg_start =
        booking.start_slot + booking.steps[i].start;
    const std::int64_t seg_end =
        booking.start_slot + ((i + 1 < booking.steps.size())
                                  ? booking.steps[i + 1].start
                                  : booking.length);
    for (std::int64_t t = seg_start; t < seg_end; ++t) {
      reserved_[static_cast<std::size_t>(t)] +=
          sign * booking.steps[i].value;
    }
  }
}

bool ReservationLedger::BookSchedule(std::uint64_t booking_id,
                                     const PiecewiseConstant& schedule_bps,
                                     std::int64_t start_slot) {
  Require(bookings_.find(booking_id) == bookings_.end(),
          "ReservationLedger: booking id already in use");
  if (!Fits(schedule_bps, start_slot)) return false;
  Booking booking{start_slot, schedule_bps.steps(), schedule_bps.length()};
  Apply(booking, +1.0);
  bookings_.emplace(booking_id, std::move(booking));
  return true;
}

bool ReservationLedger::BookConstant(std::uint64_t booking_id,
                                     double rate_bps, std::int64_t from_slot,
                                     std::int64_t to_slot) {
  Require(rate_bps >= 0, "ReservationLedger: negative rate");
  Require(from_slot < to_slot, "ReservationLedger: empty interval");
  return BookSchedule(
      booking_id,
      PiecewiseConstant::Constant(rate_bps, to_slot - from_slot),
      from_slot);
}

void ReservationLedger::Cancel(std::uint64_t booking_id) {
  const auto it = bookings_.find(booking_id);
  if (it == bookings_.end()) return;
  Apply(it->second, -1.0);
  bookings_.erase(it);
}

double ReservationLedger::ReservedAt(std::int64_t slot) const {
  Require(slot >= 0 && slot < horizon_slots(),
          "ReservationLedger: slot out of range");
  return reserved_[static_cast<std::size_t>(slot)];
}

double ReservationLedger::PeakReservation(std::int64_t from_slot,
                                          std::int64_t to_slot) const {
  Require(from_slot >= 0 && to_slot <= horizon_slots() &&
              from_slot < to_slot,
          "ReservationLedger: bad range");
  double peak = 0;
  for (std::int64_t t = from_slot; t < to_slot; ++t) {
    peak = std::max(peak, reserved_[static_cast<std::size_t>(t)]);
  }
  return peak;
}

std::int64_t ReservationLedger::FindEarliestStart(
    const PiecewiseConstant& schedule_bps, std::int64_t earliest) const {
  for (std::int64_t start = std::max<std::int64_t>(earliest, 0);
       start + schedule_bps.length() <= horizon_slots(); ++start) {
    if (Fits(schedule_bps, start)) return start;
  }
  return -1;
}

}  // namespace rcbr::core
