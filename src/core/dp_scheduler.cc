#include "core/dp_scheduler.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <exception>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "runtime/thread_pool.h"
#include "util/error.h"
#include "util/histogram.h"

namespace rcbr::core {

namespace {

constexpr std::uint32_t kNoParent = 0xffffffffu;

// ---- Worker team -------------------------------------------------------
//
// A fixed set of workers (the caller plus threads submitted to a
// runtime::ThreadPool) that repeatedly executes one phase function,
// synchronized by a generation counter. The pool's queue is touched once
// at construction; per-epoch phase dispatch is two atomic operations, so
// thousands of tiny parallel regions per solve stay cheap. Determinism
// holds because every phase partitions work by rate index, never by
// arrival order.
class Team {
 public:
  Team(runtime::ThreadPool* pool, std::size_t workers) : workers_(workers) {
    if (workers_ <= 1) return;
    futures_.reserve(workers_ - 1);
    for (std::size_t w = 1; w < workers_; ++w) {
      futures_.push_back(pool->Submit([this, w] { WorkerLoop(w); }));
    }
  }

  ~Team() {
    if (workers_ <= 1) return;
    stop_.store(true, std::memory_order_release);
    gen_.fetch_add(1, std::memory_order_release);
    for (std::future<void>& f : futures_) f.get();
  }

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  std::size_t workers() const { return workers_; }

  /// Runs fn(0), ..., fn(workers-1) concurrently (the caller runs slot 0)
  /// and returns when all slots finished. Rethrows the first exception.
  void Run(const std::function<void(std::size_t)>& fn) {
    if (workers_ <= 1) {
      fn(0);
      return;
    }
    fn_ = &fn;
    pending_.store(workers_ - 1, std::memory_order_relaxed);
    gen_.fetch_add(1, std::memory_order_release);
    fn(0);
    while (pending_.load(std::memory_order_acquire) != 0) {
      std::this_thread::yield();
    }
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  void WorkerLoop(std::size_t w) {
    std::uint64_t seen = 0;
    for (;;) {
      while (gen_.load(std::memory_order_acquire) == seen) {
        std::this_thread::yield();
      }
      ++seen;
      if (stop_.load(std::memory_order_acquire)) return;
      try {
        (*fn_)(w);
      } catch (...) {
        error_ = std::current_exception();  // one survivor is enough
      }
      pending_.fetch_sub(1, std::memory_order_release);
    }
  }

  std::atomic<std::uint64_t> gen_{0};
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> stop_{false};
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::exception_ptr error_;
  std::size_t workers_ = 1;
  std::vector<std::future<void>> futures_;
};

// ---- Frontier storage --------------------------------------------------

/// One sorted run of live nodes: buffer ascending, weight strictly
/// descending (the Lemma-1 Pareto invariant).
struct Run {
  const double* buf = nullptr;
  const double* wgt = nullptr;
  const std::uint32_t* back = nullptr;
  std::size_t n = 0;
};

/// SoA trellis frontier: one run per rate level inside shared arrays.
/// Slots [begin[v], end[v]) hold rate v's frontier; the arrays are sized
/// by per-rate output *capacity*, so runs may be separated by gaps.
struct Frontier {
  std::vector<double> buf;
  std::vector<double> wgt;
  std::vector<std::uint32_t> back;
  std::vector<std::uint32_t> begin;
  std::vector<std::uint32_t> end;

  void ResizeRates(std::size_t num_rates) {
    begin.assign(num_rates, 0);
    end.assign(num_rates, 0);
  }

  void EnsureCapacity(std::size_t n) {
    if (buf.size() < n) {
      buf.resize(n);
      wgt.resize(n);
      back.resize(n);
    }
  }

  Run run(std::size_t v) const {
    return {buf.data() + begin[v], wgt.data() + begin[v],
            back.data() + begin[v],
            static_cast<std::size_t>(end[v] - begin[v])};
  }

  std::size_t size(std::size_t v) const { return end[v] - begin[v]; }

  std::size_t live() const {
    std::size_t n = 0;
    for (std::size_t v = 0; v < begin.size(); ++v) n += end[v] - begin[v];
    return n;
  }

  /// Flat extent actually used (gaps included): one past the last run.
  std::size_t extent() const {
    std::size_t e = 0;
    for (std::size_t v = 0; v < begin.size(); ++v)
      e = std::max<std::size_t>(e, end[v]);
    return e;
  }
};

/// A tight Pareto list (the cross-rate global frontier and merge scratch).
struct ParetoList {
  std::vector<double> buf;
  std::vector<double> wgt;
  std::vector<std::uint32_t> back;

  void clear() {
    buf.clear();
    wgt.clear();
    back.clear();
  }
  std::size_t size() const { return buf.size(); }
  bool empty() const { return buf.empty(); }
  Run run() const { return {buf.data(), wgt.data(), back.data(), buf.size()}; }

  /// Appends (b, w) keeping the Pareto invariant: equal buffer keeps the
  /// lighter node, a weight at or above the running minimum is dominated.
  void Push(double b, double w, std::uint32_t bk) {
    if (!buf.empty()) {
      const std::size_t last = buf.size() - 1;
      if (b == buf[last]) {
        if (w >= wgt[last]) return;
        wgt[last] = w;
        back[last] = bk;
        return;
      }
      if (w >= wgt[last]) return;
    }
    buf.push_back(b);
    wgt.push_back(w);
    back.push_back(bk);
  }
};

/// Merges two buffer-sorted runs into `out` (cleared first), sweeping with
/// the Pareto rule. Exact (buffer, weight) ties prefer `a` — merges always
/// fold in ascending rate order, so the lowest rate wins ties at every
/// thread count.
void MergeRuns(const Run& a, const Run& b, ParetoList& out) {
  out.clear();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.n || j < b.n) {
    const bool take_a =
        j >= b.n ||
        (i < a.n && (a.buf[i] < b.buf[j] ||
                     (a.buf[i] == b.buf[j] && a.wgt[i] <= b.wgt[j])));
    if (take_a) {
      out.Push(a.buf[i], a.wgt[i], a.back[i]);
      ++i;
    } else {
      out.Push(b.buf[j], b.wgt[j], b.back[j]);
      ++j;
    }
  }
}

/// Pareto-folds the per-rate runs of rates [v0, v1) into `acc`.
void FoldRuns(const Frontier& f, std::size_t v0, std::size_t v1,
              ParetoList& acc, ParetoList& scratch) {
  acc.clear();
  for (std::size_t v = v0; v < v1; ++v) {
    const Run r = f.run(v);
    if (r.n == 0) continue;
    if (acc.empty()) {
      for (std::size_t i = 0; i < r.n; ++i) acc.Push(r.buf[i], r.wgt[i], r.back[i]);
      continue;
    }
    MergeRuns(acc.run(), r, scratch);
    std::swap(acc, scratch);
  }
}

/// Per-(epoch, rate) transition coefficients; see docs/algorithms.md §1.
struct EpochCoeffs {
  bool feasible = false;
  double b_max = 0;     // max admissible starting buffer
  double shift = 0;     // q_end = max(b + shift, floor_q)
  double floor_q = 0;   // Lindley value of an initially empty buffer
  double cost_add = 0;  // beta * rate * slots
};

/// Writer over one rate's preallocated output slice, applying the Pareto
/// push rule in place.
struct SliceOut {
  double* buf = nullptr;
  double* wgt = nullptr;
  std::uint32_t* back = nullptr;
  std::uint32_t n = 0;

  void Push(double b, double w, std::uint32_t bk) {
    if (n != 0) {
      const std::uint32_t last = n - 1;
      if (b == buf[last]) {
        if (w >= wgt[last]) return;
        wgt[last] = w;
        back[last] = bk;
        return;
      }
      if (w >= wgt[last]) return;
    }
    buf[n] = b;
    wgt[n] = w;
    back[n] = bk;
    ++n;
  }
};

/// Backtracking records for one streaming block of epochs, SoA. `parent`
/// is the record index one epoch earlier within the same block; a record
/// in the block's first epoch stores the flat index of its seed node in
/// the checkpoint frontier entering the block (kNoParent in block 0).
struct ArenaBlock {
  std::int64_t first_epoch = 0;
  std::int64_t epochs = 0;
  std::size_t nodes = 0;  // records appended (survives spilling)
  bool resident = true;
  std::vector<std::uint32_t> parent;
  std::vector<std::uint16_t> rate;

  void Free() {
    resident = false;
    parent = {};
    rate = {};
  }
};

/// Frontier snapshot entering a block: the seed for on-demand recompute,
/// plus the `back` map from checkpoint-flat indices to records of the
/// previous block (the cross-block backtracking link).
struct Checkpoint {
  Frontier frontier;
};

struct DpConfig {
  std::int64_t total_slots = 0;
  std::int64_t period = 1;
  std::int64_t num_epochs = 0;
  std::size_t num_rates = 0;
  double alpha = 0;
  double beta = 0;
  double quantum = 0;
  std::vector<double> bound;  // per-slot buffer bound
};

class Trellis {
 public:
  Trellis(const std::vector<double>& workload, const DpOptions& options);
  DpResult Solve();

 private:
  void AdvanceEpoch(Frontier& cur, std::int64_t e, ArenaBlock& block,
                    bool record);
  void BuildGlobal(const Frontier& cur);
  void TransformRate(const Frontier& cur, std::size_t v, std::int64_t e,
                     SliceOut& out);
  void StartBlock(std::int64_t first_epoch);
  void SnapshotInto(const Frontier& cur, Checkpoint& ckpt) const;
  void SpillOverBudget();
  void RecomputeBlock(std::size_t b);
  std::pair<std::size_t, std::size_t> Chunk(std::size_t w) const;

  const std::vector<double>& workload_;
  const DpOptions& opt_;
  DpConfig cfg_;

  std::unique_ptr<runtime::ThreadPool> owned_pool_;
  std::unique_ptr<Team> team_;

  Frontier cur_;
  Frontier nxt_;
  ParetoList global_;
  std::vector<ParetoList> partial_;
  std::vector<ParetoList> partial_scratch_;
  std::vector<EpochCoeffs> coeffs_;
  std::vector<std::uint32_t> cap_off_;  // per-rate output offsets, size K+1
  std::vector<std::size_t> rec_off_;    // per-rate record offsets, size K+1

  std::vector<ArenaBlock> blocks_;
  std::vector<Checkpoint> checkpoints_;  // entering block b (b >= 1)
  std::int64_t block_epochs_ = 0;
  std::size_t resident_nodes_ = 0;
  std::size_t total_nodes_ = 0;
  std::size_t peak_live_ = 0;
  std::size_t peak_resident_ = 0;
  std::int64_t spilled_blocks_ = 0;
  std::int64_t recomputed_epochs_ = 0;

  obs::Counter* ctr_epochs_ = nullptr;
  obs::Counter* ctr_candidates_ = nullptr;
  obs::Counter* ctr_retained_ = nullptr;
};

void ValidateOptions(const std::vector<double>& workload,
                     const DpOptions& options) {
  Require(!workload.empty(), "ComputeOptimalSchedule: empty workload");
  Require(!options.rate_levels.empty(),
          "ComputeOptimalSchedule: no rate levels");
  for (double level : options.rate_levels) {
    Require(std::isfinite(level),
            "ComputeOptimalSchedule: rate levels must be finite");
  }
  Require(std::is_sorted(options.rate_levels.begin(),
                         options.rate_levels.end()),
          "ComputeOptimalSchedule: rate levels must be ascending");
  for (std::size_t i = 1; i < options.rate_levels.size(); ++i) {
    Require(options.rate_levels[i] > options.rate_levels[i - 1],
            "ComputeOptimalSchedule: rate levels must be strictly ascending");
  }
  Require(options.rate_levels.front() >= 0,
          "ComputeOptimalSchedule: negative rate level");
  Require(options.rate_levels.size() <= 0xffff,
          "ComputeOptimalSchedule: more than 65535 rate levels");
  Require(options.decision_period >= 1,
          "ComputeOptimalSchedule: decision_period must be >= 1");
  Require(!std::isnan(options.buffer_quantum_bits) &&
              options.buffer_quantum_bits >= 0 &&
              std::isfinite(options.buffer_quantum_bits),
          "ComputeOptimalSchedule: buffer quantum must be finite and >= 0");
  Require(!std::isnan(options.buffer_bits) && options.buffer_bits >= 0,
          "ComputeOptimalSchedule: buffer bound must be >= 0 (not NaN)");
  Require(std::isfinite(options.cost.per_renegotiation) &&
              options.cost.per_renegotiation >= 0,
          "ComputeOptimalSchedule: per-renegotiation cost must be finite "
          "and >= 0");
  Require(std::isfinite(options.cost.per_bandwidth) &&
              options.cost.per_bandwidth >= 0,
          "ComputeOptimalSchedule: per-bandwidth cost must be finite and "
          ">= 0");
  Require(!std::isnan(options.final_buffer_bits) &&
              options.final_buffer_bits >= 0,
          "ComputeOptimalSchedule: final buffer bound must be >= 0 (not "
          "NaN)");
  Require(std::isfinite(options.initial_buffer_bits) &&
              options.initial_buffer_bits >= 0,
          "ComputeOptimalSchedule: initial buffer must be finite and >= 0");
  Require(options.initial_rate_index <
              static_cast<std::int64_t>(options.rate_levels.size()),
          "ComputeOptimalSchedule: initial_rate_index out of range");
  Require(options.checkpoint_slots >= 0,
          "ComputeOptimalSchedule: checkpoint_slots must be >= 0");
  Require(options.max_resident_nodes > 0,
          "ComputeOptimalSchedule: max_resident_nodes must be positive");
}

Trellis::Trellis(const std::vector<double>& workload,
                 const DpOptions& options)
    : workload_(workload), opt_(options) {
  ValidateOptions(workload, options);

  cfg_.total_slots = static_cast<std::int64_t>(workload.size());
  cfg_.period = options.decision_period;
  cfg_.num_epochs = (cfg_.total_slots + cfg_.period - 1) / cfg_.period;
  cfg_.num_rates = options.rate_levels.size();
  cfg_.alpha = options.cost.per_renegotiation;
  cfg_.beta = options.cost.per_bandwidth;
  cfg_.quantum = options.buffer_quantum_bits;

  // Per-slot buffer bound: constant B, or the last-d-slots arrival window
  // for the delay variant (see header).
  cfg_.bound.resize(workload.size());
  const bool delay_mode = options.delay_bound_slots >= 0;
  if (delay_mode) {
    // A positive buffer_bits combines with the delay bound: the occupancy
    // must respect both the physical buffer and the deadline window.
    const double hard_buffer =
        options.buffer_bits > 0 ? options.buffer_bits
                                : std::numeric_limits<double>::infinity();
    const std::int64_t d = options.delay_bound_slots;
    double window = 0;
    for (std::int64_t t = 0; t < cfg_.total_slots; ++t) {
      window += workload[static_cast<std::size_t>(t)];
      if (t - d >= 0) window -= workload[static_cast<std::size_t>(t - d)];
      cfg_.bound[static_cast<std::size_t>(t)] = std::min(window, hard_buffer);
    }
  } else {
    std::fill(cfg_.bound.begin(), cfg_.bound.end(), options.buffer_bits);
  }

  // Streaming block cadence: a few thousand epochs by default, which keeps
  // the per-block working set small against typical frontiers while the
  // checkpoints stay sparse.
  block_epochs_ = options.checkpoint_slots > 0
                      ? std::max<std::int64_t>(
                            1, options.checkpoint_slots / cfg_.period)
                      : 4096;
  block_epochs_ = std::min(block_epochs_, cfg_.num_epochs);

  // Worker team: the transform parallelizes over rate levels, so more
  // workers than rates is pure overhead.
  std::size_t workers = opt_.threads == 0 ? runtime::HardwareThreads()
                                          : opt_.threads;
  workers = std::min(workers, cfg_.num_rates);
  workers = std::max<std::size_t>(workers, 1);
  runtime::ThreadPool* pool = opt_.pool;
  if (workers > 1 && pool == nullptr) {
    owned_pool_ = std::make_unique<runtime::ThreadPool>(workers - 1);
    pool = owned_pool_.get();
  }
  team_ = std::make_unique<Team>(pool, workers);

  cur_.ResizeRates(cfg_.num_rates);
  nxt_.ResizeRates(cfg_.num_rates);
  partial_.resize(team_->workers());
  partial_scratch_.resize(team_->workers());
  coeffs_.resize(cfg_.num_rates);
  cap_off_.resize(cfg_.num_rates + 1);
  rec_off_.resize(cfg_.num_rates + 1);

  ctr_epochs_ = obs::FindCounter(opt_.recorder, "dp.epochs");
  ctr_candidates_ = obs::FindCounter(opt_.recorder, "dp.candidate_nodes");
  ctr_retained_ = obs::FindCounter(opt_.recorder, "dp.retained_nodes");
}

std::pair<std::size_t, std::size_t> Trellis::Chunk(std::size_t w) const {
  const std::size_t workers = team_->workers();
  const std::size_t k = cfg_.num_rates;
  return {w * k / workers, (w + 1) * k / workers};
}

void Trellis::BuildGlobal(const Frontier& cur) {
  if (team_->workers() == 1) {
    FoldRuns(cur, 0, cfg_.num_rates, global_, partial_scratch_[0]);
    return;
  }
  team_->Run([&](std::size_t w) {
    const auto [v0, v1] = Chunk(w);
    FoldRuns(cur, v0, v1, partial_[w], partial_scratch_[w]);
  });
  // Fold the chunk partials in rate order (chunk w covers lower rates than
  // chunk w+1), so the lowest rate still wins exact ties.
  global_.clear();
  for (std::size_t w = 0; w < team_->workers(); ++w) {
    const ParetoList& p = partial_[w];
    if (p.empty()) continue;
    if (global_.empty()) {
      global_ = p;
      continue;
    }
    MergeRuns(global_.run(), p.run(), partial_scratch_[0]);
    std::swap(global_, partial_scratch_[0]);
  }
}

/// Transition coefficients over epoch `e`'s slots at rate level `v` —
/// bit-identical arithmetic to the original per-slot loop.
EpochCoeffs ComputeCoeffs(const std::vector<double>& workload,
                          const DpConfig& cfg, double rate,
                          std::int64_t t0, std::int64_t epoch_slots) {
  EpochCoeffs er;
  er.feasible = true;
  er.cost_add = cfg.beta * rate * static_cast<double>(epoch_slots);
  double prefix = 0;         // P_s
  double lindley_empty = 0;  // N_s: queue starting empty
  double b_max = std::numeric_limits<double>::infinity();
  for (std::int64_t s = 0; s < epoch_slots; ++s) {
    const double a = workload[static_cast<std::size_t>(t0 + s)];
    const double cap = cfg.bound[static_cast<std::size_t>(t0 + s)];
    prefix += a;
    lindley_empty = std::max(lindley_empty + a - rate, 0.0);
    if (lindley_empty > cap) {
      er.feasible = false;  // even an empty buffer overflows
      break;
    }
    b_max = std::min(b_max, cap - prefix + rate * static_cast<double>(s + 1));
  }
  er.b_max = b_max;
  er.shift = prefix - rate * static_cast<double>(epoch_slots);
  er.floor_q = lindley_empty;
  return er;
}

void Trellis::TransformRate(const Frontier& cur, std::size_t v,
                            std::int64_t e, SliceOut& out) {
  const std::int64_t t0 = e * cfg_.period;
  const std::int64_t epoch_slots =
      std::min(cfg_.period, cfg_.total_slots - t0);
  EpochCoeffs& er = coeffs_[v];
  er = ComputeCoeffs(workload_, cfg_, opt_.rate_levels[v], t0, epoch_slots);
  out.n = 0;
  if (!er.feasible) return;

  const double quantum = cfg_.quantum;
  const auto quantize_up = [quantum](double b) {
    if (quantum <= 0 || b <= 0) return b;
    return std::ceil(b / quantum) * quantum;
  };

  if (e == 0) {
    // Seed: the initial buffer, zero weight, no history. Without an
    // initial reservation no alpha is charged for any first rate (chosen
    // at call setup); with one, every *other* rate pays the switch cost.
    const double b0 = opt_.initial_buffer_bits;
    if (b0 > er.b_max + 1e-9) return;
    const bool charged =
        opt_.initial_rate_index >= 0 &&
        static_cast<std::size_t>(opt_.initial_rate_index) != v;
    const double extra = charged ? cfg_.alpha : 0.0;
    out.Push(quantize_up(std::max(b0 + er.shift, er.floor_q)),
             0.0 + er.cost_add + extra, kNoParent);
    return;
  }

  // Fused transform + Pareto merge of the same-rate frontier (no switch
  // cost) and the alpha-shifted global frontier, streamed in transformed-
  // buffer order with the same-rate stream preferred on exact ties —
  // exactly the two-list MergePareto of the original implementation,
  // without materializing the transformed lists.
  const Run own = cur.run(v);
  const Run other = global_.run();
  const double b_cut = er.b_max + 1e-9;
  const double shift = er.shift;
  const double floor_q = er.floor_q;
  const double cost_add = er.cost_add;
  const double alpha = cfg_.alpha;
  std::size_t i = 0;
  std::size_t j = 0;
  double bi = 0, wi = 0, bj = 0, wj = 0;
  bool have_i = false, have_j = false;
  const auto fetch_own = [&] {
    if (i < own.n && own.buf[i] <= b_cut) {
      bi = quantize_up(std::max(own.buf[i] + shift, floor_q));
      wi = own.wgt[i] + cost_add;
      have_i = true;
    } else {
      have_i = false;
    }
  };
  const auto fetch_other = [&] {
    if (j < other.n && other.buf[j] <= b_cut) {
      bj = quantize_up(std::max(other.buf[j] + shift, floor_q));
      wj = other.wgt[j] + cost_add + alpha;
      have_j = true;
    } else {
      have_j = false;
    }
  };
  fetch_own();
  fetch_other();
  while (have_i || have_j) {
    const bool take_own =
        !have_j || (have_i && (bi < bj || (bi == bj && wi <= wj)));
    if (take_own) {
      out.Push(bi, wi, own.back[i]);
      ++i;
      fetch_own();
    } else {
      out.Push(bj, wj, other.back[j]);
      ++j;
      fetch_other();
    }
  }
}

void Trellis::SnapshotInto(const Frontier& cur, Checkpoint& ckpt) const {
  const std::size_t used = cur.extent();
  Frontier& f = ckpt.frontier;
  f.buf.assign(cur.buf.begin(), cur.buf.begin() + used);
  f.wgt.assign(cur.wgt.begin(), cur.wgt.begin() + used);
  f.back.assign(cur.back.begin(), cur.back.begin() + used);
  f.begin = cur.begin;
  f.end = cur.end;
}

void Trellis::StartBlock(std::int64_t first_epoch) {
  if (first_epoch > 0) {
    // Snapshot the frontier entering this block — with `back` still
    // pointing at the previous block's records (the cross-block link) —
    // then reset the live nodes' backpointers to their own flat index, so
    // this block's first-epoch records name checkpoint positions.
    checkpoints_.emplace_back();
    SnapshotInto(cur_, checkpoints_.back());
    for (std::size_t v = 0; v < cfg_.num_rates; ++v) {
      for (std::uint32_t idx = cur_.begin[v]; idx < cur_.end[v]; ++idx) {
        cur_.back[idx] = idx;
      }
    }
  }
  blocks_.emplace_back();
  blocks_.back().first_epoch = first_epoch;
}

void Trellis::SpillOverBudget() {
  // Free the oldest resident blocks (they are recomputable from their
  // checkpoints); the block being written always stays.
  for (std::size_t b = 0;
       resident_nodes_ > opt_.max_resident_nodes && b + 1 < blocks_.size();
       ++b) {
    if (!blocks_[b].resident) continue;
    resident_nodes_ -= blocks_[b].parent.size();
    blocks_[b].Free();
    ++spilled_blocks_;
  }
}

void Trellis::AdvanceEpoch(Frontier& cur, std::int64_t e, ArenaBlock& block,
                           bool record) {
  const std::int64_t t0 = e * cfg_.period;
  const bool initial = e == 0;
  if (!initial) BuildGlobal(cur);

  // Output capacity per rate: everything the fused merge can emit.
  cap_off_[0] = 0;
  for (std::size_t v = 0; v < cfg_.num_rates; ++v) {
    const std::size_t cap =
        initial ? 1 : cur.size(v) + global_.size();
    cap_off_[v + 1] = cap_off_[v] + static_cast<std::uint32_t>(cap);
  }
  nxt_.EnsureCapacity(cap_off_[cfg_.num_rates]);

  team_->Run([&](std::size_t w) {
    const auto [v0, v1] = Chunk(w);
    for (std::size_t v = v0; v < v1; ++v) {
      SliceOut out{nxt_.buf.data() + cap_off_[v],
                   nxt_.wgt.data() + cap_off_[v],
                   nxt_.back.data() + cap_off_[v], 0};
      TransformRate(cur, v, e, out);
      nxt_.begin[v] = cap_off_[v];
      nxt_.end[v] = cap_off_[v] + out.n;
    }
  });

  // Candidate accounting matches the original: each feasible rate offered
  // its own frontier plus the whole cross-rate frontier (the seed counts
  // one candidate).
  std::size_t candidates = 0;
  std::size_t live = 0;
  for (std::size_t v = 0; v < cfg_.num_rates; ++v) {
    if (coeffs_[v].feasible) {
      candidates += initial ? 1 : cur.size(v) + global_.size();
    }
    live += nxt_.size(v);
  }
  if (live == 0) {
    throw Infeasible(
        "ComputeOptimalSchedule: no feasible schedule at slot " +
        std::to_string(t0) +
        " (largest rate level below the bound's requirement)");
  }

  // Record the survivors for backtracking, rate-major: bulk-copy each
  // rate's contiguous backpointer run, then renumber it to record indices.
  // Record positions are fixed by the prefix sum, so the parallel writes
  // are disjoint and the block contents don't depend on the worker count.
  const std::size_t base = block.parent.size();
  rec_off_[0] = base;
  for (std::size_t v = 0; v < cfg_.num_rates; ++v) {
    rec_off_[v + 1] = rec_off_[v] + nxt_.size(v);
  }
  block.parent.resize(base + live);
  block.rate.resize(base + live);
  team_->Run([&](std::size_t w) {
    const auto [v0, v1] = Chunk(w);
    for (std::size_t v = v0; v < v1; ++v) {
      const std::size_t run = nxt_.size(v);
      if (run == 0) continue;
      const std::size_t at = rec_off_[v];
      std::memcpy(block.parent.data() + at,
                  nxt_.back.data() + nxt_.begin[v],
                  run * sizeof(std::uint32_t));
      std::fill_n(block.rate.data() + at, run,
                  static_cast<std::uint16_t>(v));
      for (std::size_t i = 0; i < run; ++i) {
        nxt_.back[nxt_.begin[v] + i] = static_cast<std::uint32_t>(at + i);
      }
    }
  });
  block.nodes += live;
  block.epochs += 1;

  if (record) {
    total_nodes_ += live;
    resident_nodes_ += live;
    peak_live_ = std::max(peak_live_, live);
    peak_resident_ = std::max(peak_resident_, resident_nodes_);
    if constexpr (obs::kEnabled) {
      if (ctr_epochs_ != nullptr) ctr_epochs_->Add();
      if (ctr_candidates_ != nullptr) {
        ctr_candidates_->Add(static_cast<std::int64_t>(candidates));
      }
      if (ctr_retained_ != nullptr) {
        ctr_retained_->Add(static_cast<std::int64_t>(live));
      }
      obs::Emit(opt_.recorder, static_cast<double>(t0),
                obs::EventKind::kDpPrune, opt_.obs_id,
                {"candidates", static_cast<double>(candidates)},
                {"survivors", static_cast<double>(live)},
                {"arena_nodes", static_cast<double>(total_nodes_)});
    }
    if (opt_.inspect) {
      DpFrontierView view;
      view.first_slot = t0;
      view.num_rates = cfg_.num_rates;
      view.live_nodes = live;
      view.arena_nodes = total_nodes_;
      view.buf = nxt_.buf.data();
      view.wgt = nxt_.wgt.data();
      view.begin = nxt_.begin.data();
      view.end = nxt_.end.data();
      opt_.inspect(view);
    }
  }
  std::swap(cur, nxt_);
}

void Trellis::RecomputeBlock(std::size_t b) {
  ArenaBlock& blk = blocks_[b];
  blk.resident = true;
  blk.epochs = 0;
  blk.nodes = 0;
  blk.parent.clear();
  blk.rate.clear();

  // Reseed the forward state entering the block and replay it. The replay
  // runs the identical code path (including the parallel transform), so
  // the frontiers — and therefore the records — are bit-identical to the
  // first pass.
  Frontier scratch;
  if (b == 0) {
    scratch.ResizeRates(cfg_.num_rates);
  } else {
    scratch = checkpoints_[b - 1].frontier;
    for (std::size_t v = 0; v < cfg_.num_rates; ++v) {
      for (std::uint32_t idx = scratch.begin[v]; idx < scratch.end[v];
           ++idx) {
        scratch.back[idx] = idx;
      }
    }
  }
  const std::int64_t last =
      std::min(blk.first_epoch + block_epochs_, cfg_.num_epochs);
  for (std::int64_t e = blk.first_epoch; e < last; ++e) {
    AdvanceEpoch(scratch, e, blk, /*record=*/false);
    ++recomputed_epochs_;
  }
}

DpResult Trellis::Solve() {
  DpResult result{PiecewiseConstant::Constant(0, 1), 0, 0, 0, 0, 0};

  for (std::int64_t e = 0; e < cfg_.num_epochs; ++e) {
    if (e % block_epochs_ == 0) {
      StartBlock(e);
      SpillOverBudget();
    }
    AdvanceEpoch(cur_, e, blocks_.back(), /*record=*/true);
  }

  // Best terminal node across all rates, subject to the terminal-buffer
  // constraint. Every frontier retains its minimal-buffer state, and both
  // pruning rules only discard nodes dominated in (buffer, weight), so
  // filtering here is exact. Rate-major scan: the lowest rate wins ties,
  // as before.
  const double* best_w = nullptr;
  std::uint32_t best_back = kNoParent;
  for (std::size_t v = 0; v < cfg_.num_rates; ++v) {
    for (std::uint32_t idx = cur_.begin[v]; idx < cur_.end[v]; ++idx) {
      if (cur_.buf[idx] > opt_.final_buffer_bits + 1e-9) continue;
      if (best_w == nullptr || cur_.wgt[idx] < *best_w) {
        best_w = &cur_.wgt[idx];
        best_back = cur_.back[idx];
      }
    }
  }
  if (best_w == nullptr) {
    throw Infeasible(
        "ComputeOptimalSchedule: no schedule drains the buffer to "
        "final_buffer_bits by the end of the session");
  }

  // Backtrack the epoch rate decisions, streaming block by block; spilled
  // blocks are replayed from their checkpoint on demand.
  std::vector<std::uint16_t> decisions(
      static_cast<std::size_t>(cfg_.num_epochs));
  std::uint32_t cursor = best_back;
  for (std::size_t b = blocks_.size(); b-- > 0;) {
    ArenaBlock& blk = blocks_[b];
    const bool replayed = !blk.resident;
    if (replayed) RecomputeBlock(b);
    for (std::int64_t e = blk.first_epoch + blk.epochs; e-- > blk.first_epoch;) {
      decisions[static_cast<std::size_t>(e)] = blk.rate[cursor];
      cursor = blk.parent[cursor];
    }
    if (replayed) blk.Free();  // keep the working set bounded
    if (b > 0) cursor = checkpoints_[b - 1].frontier.back[cursor];
  }

  std::vector<Step> steps;
  steps.reserve(static_cast<std::size_t>(cfg_.num_epochs));
  for (std::int64_t e = 0; e < cfg_.num_epochs; ++e) {
    steps.push_back({e * cfg_.period,
                     opt_.rate_levels[decisions[static_cast<std::size_t>(e)]]});
  }
  result.schedule = PiecewiseConstant(std::move(steps), cfg_.total_slots);
  result.optimal_cost = *best_w;
  result.peak_live_nodes = peak_live_;
  result.total_nodes = total_nodes_;
  result.peak_resident_nodes = peak_resident_;
  result.recomputed_epochs = recomputed_epochs_;
  if constexpr (obs::kEnabled) {
    obs::SetGauge(opt_.recorder, "dp.peak_live_nodes",
                  static_cast<double>(result.peak_live_nodes));
    obs::SetGauge(opt_.recorder, "dp.total_nodes",
                  static_cast<double>(result.total_nodes));
    obs::SetGauge(opt_.recorder, "dp.peak_resident_nodes",
                  static_cast<double>(result.peak_resident_nodes));
    obs::SetGauge(opt_.recorder, "dp.recomputed_epochs",
                  static_cast<double>(result.recomputed_epochs));
    obs::Count(opt_.recorder, "dp.spilled_blocks", spilled_blocks_);
  }
  return result;
}

}  // namespace

std::vector<double> UniformRateLevels(double lo, double hi,
                                      std::size_t count) {
  return UniformGrid(lo, hi, count);
}

DpResult ComputeOptimalSchedule(const std::vector<double>& workload_bits,
                                const DpOptions& options) {
  const obs::ScopedTimer dp_timer(options.recorder, "dp.compute");
  Trellis trellis(workload_bits, options);
  return trellis.Solve();
}

}  // namespace rcbr::core
