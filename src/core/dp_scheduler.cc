#include "core/dp_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"
#include "util/histogram.h"

namespace rcbr::core {

namespace {

/// A live trellis node: buffer occupancy and path weight, plus the arena
/// index used for backtracking.
struct Live {
  double buffer = 0;
  double weight = 0;
  std::uint32_t arena = 0;
};

/// Backtracking record: the rate chosen to reach this node and the arena
/// index of its predecessor.
struct Arena {
  std::uint32_t parent = 0;
  std::uint16_t rate = 0;
};

constexpr std::uint32_t kNoParent = 0xffffffffu;

/// Appends `node` to the Pareto frontier `out`, assuming candidates arrive
/// sorted by buffer ascending; keeps weight strictly descending.
void PushPareto(std::vector<Live>& out, const Live& node) {
  if (!out.empty()) {
    const Live& back = out.back();
    if (node.buffer == back.buffer) {
      // Same buffer: keep the lighter path.
      if (node.weight >= back.weight) return;
      out.pop_back();
    } else if (node.weight >= back.weight) {
      // Larger buffer, no lighter: dominated.
      return;
    }
  }
  out.push_back(node);
}

/// Merges two buffer-sorted Pareto lists into one Pareto list.
void MergePareto(const std::vector<Live>& a, const std::vector<Live>& b,
                 std::vector<Live>& out) {
  out.clear();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    const bool take_a =
        j >= b.size() ||
        (i < a.size() && (a[i].buffer < b[j].buffer ||
                          (a[i].buffer == b[j].buffer &&
                           a[i].weight <= b[j].weight)));
    PushPareto(out, take_a ? a[i++] : b[j++]);
  }
}

/// Per-(epoch, rate) transition coefficients; see the header comment.
struct EpochRate {
  bool feasible = false;
  double b_max = 0;    // max admissible starting buffer
  double shift = 0;    // q_end = max(b + shift, floor_q)
  double floor_q = 0;  // Lindley value of an initially empty buffer
  double cost_add = 0; // beta * rate * slots
};

}  // namespace

std::vector<double> UniformRateLevels(double lo, double hi,
                                      std::size_t count) {
  return UniformGrid(lo, hi, count);
}

DpResult ComputeOptimalSchedule(const std::vector<double>& workload_bits,
                                const DpOptions& options) {
  const obs::ScopedTimer dp_timer(options.recorder, "dp.compute");
  Require(!workload_bits.empty(), "ComputeOptimalSchedule: empty workload");
  Require(!options.rate_levels.empty(),
          "ComputeOptimalSchedule: no rate levels");
  Require(std::is_sorted(options.rate_levels.begin(),
                         options.rate_levels.end()),
          "ComputeOptimalSchedule: rate levels must be ascending");
  for (std::size_t i = 1; i < options.rate_levels.size(); ++i) {
    Require(options.rate_levels[i] > options.rate_levels[i - 1],
            "ComputeOptimalSchedule: rate levels must be strictly ascending");
  }
  Require(options.rate_levels.front() >= 0,
          "ComputeOptimalSchedule: negative rate level");
  Require(options.decision_period >= 1,
          "ComputeOptimalSchedule: decision_period must be >= 1");
  Require(options.buffer_quantum_bits >= 0,
          "ComputeOptimalSchedule: negative buffer quantum");
  const bool delay_mode = options.delay_bound_slots >= 0;
  if (!delay_mode) {
    Require(options.buffer_bits >= 0,
            "ComputeOptimalSchedule: negative buffer bound");
  }

  const auto total_slots = static_cast<std::int64_t>(workload_bits.size());
  const std::int64_t period = options.decision_period;
  const std::size_t num_rates = options.rate_levels.size();
  const double alpha = options.cost.per_renegotiation;
  const double beta = options.cost.per_bandwidth;
  Require(alpha >= 0 && beta >= 0,
          "ComputeOptimalSchedule: costs must be nonnegative");

  // Per-slot buffer bound: constant B, or the last-d-slots arrival window
  // for the delay variant (see header).
  std::vector<double> bound(workload_bits.size());
  if (delay_mode) {
    // A positive buffer_bits combines with the delay bound: the occupancy
    // must respect both the physical buffer and the deadline window.
    const double hard_buffer =
        options.buffer_bits > 0 ? options.buffer_bits
                                : std::numeric_limits<double>::infinity();
    const std::int64_t d = options.delay_bound_slots;
    double window = 0;
    for (std::int64_t t = 0; t < total_slots; ++t) {
      window += workload_bits[static_cast<std::size_t>(t)];
      if (t - d >= 0) window -= workload_bits[static_cast<std::size_t>(t - d)];
      bound[static_cast<std::size_t>(t)] = std::min(window, hard_buffer);
    }
  } else {
    std::fill(bound.begin(), bound.end(), options.buffer_bits);
  }

  const double quantum = options.buffer_quantum_bits;
  auto quantize_up = [quantum](double b) {
    if (quantum <= 0 || b <= 0) return b;
    return std::ceil(b / quantum) * quantum;
  };

  // Trellis state: one Pareto frontier per rate level.
  std::vector<std::vector<Live>> frontier(num_rates);
  std::vector<std::vector<Live>> next(num_rates);
  std::vector<Arena> arena;
  arena.reserve(1 << 16);

  DpResult result{PiecewiseConstant::Constant(0, 1), 0, 0, 0};

  std::vector<Live> global;   // cross-rate Pareto frontier, alpha-shifted later
  std::vector<Live> own_src;  // transformed same-rate candidates
  std::vector<Live> other_src;

  obs::Counter* ctr_epochs = obs::FindCounter(options.recorder, "dp.epochs");
  obs::Counter* ctr_candidates =
      obs::FindCounter(options.recorder, "dp.candidate_nodes");
  obs::Counter* ctr_retained =
      obs::FindCounter(options.recorder, "dp.retained_nodes");

  bool first_epoch = true;
  for (std::int64_t t0 = 0; t0 < total_slots; t0 += period) {
    const std::int64_t epoch_slots = std::min(period, total_slots - t0);
    std::size_t candidates_now = 0;

    // Global cross-rate frontier of the previous epoch (k-way Pareto merge
    // via concatenate-sort-sweep; frontiers are small).
    if (!first_epoch) {
      global.clear();
      for (const auto& f : frontier) {
        global.insert(global.end(), f.begin(), f.end());
      }
      std::sort(global.begin(), global.end(),
                [](const Live& a, const Live& b) {
                  return a.buffer != b.buffer ? a.buffer < b.buffer
                                              : a.weight < b.weight;
                });
      std::vector<Live> swept;
      swept.reserve(global.size());
      for (const Live& n : global) PushPareto(swept, n);
      global = std::move(swept);
    }

    std::size_t live_now = 0;
    for (std::size_t v = 0; v < num_rates; ++v) {
      const double rate = options.rate_levels[v];

      // Transition coefficients over this epoch's slots.
      EpochRate er;
      er.feasible = true;
      er.cost_add = beta * rate * static_cast<double>(epoch_slots);
      double prefix = 0;        // P_s
      double lindley_empty = 0; // N_s: queue starting empty
      double b_max = std::numeric_limits<double>::infinity();
      for (std::int64_t s = 0; s < epoch_slots; ++s) {
        const double a = workload_bits[static_cast<std::size_t>(t0 + s)];
        const double cap = bound[static_cast<std::size_t>(t0 + s)];
        prefix += a;
        lindley_empty = std::max(lindley_empty + a - rate, 0.0);
        if (lindley_empty > cap) {
          er.feasible = false;  // even an empty buffer overflows
          break;
        }
        b_max = std::min(b_max,
                         cap - prefix + rate * static_cast<double>(s + 1));
      }
      er.b_max = b_max;
      er.shift = prefix - rate * static_cast<double>(epoch_slots);
      er.floor_q = lindley_empty;

      auto& target = next[v];
      target.clear();
      if (!er.feasible) continue;

      const auto transform = [&](const std::vector<Live>& src,
                                 double extra_cost, std::vector<Live>& dst) {
        dst.clear();
        for (const Live& n : src) {
          if (n.buffer > er.b_max + 1e-9) break;  // sorted by buffer
          Live out;
          out.buffer = quantize_up(std::max(n.buffer + er.shift, er.floor_q));
          out.weight = n.weight + er.cost_add + extra_cost;
          out.arena = n.arena;
          // The transform is monotone, so dst stays buffer-sorted; equal
          // buffers keep the lighter weight via PushPareto.
          PushPareto(dst, out);
        }
      };

      if (first_epoch) {
        // Single start node: empty buffer, no rate history, no alpha
        // charge for the initial rate (chosen at call setup).
        const Live start{0.0, 0.0, kNoParent};
        std::vector<Live> seed = {start};
        transform(seed, 0.0, target);
        candidates_now += 1;
      } else {
        transform(frontier[v], 0.0, own_src);
        transform(global, alpha, other_src);
        MergePareto(own_src, other_src, target);
        candidates_now += frontier[v].size() + global.size();
      }

      // Record survivors in the arena for backtracking.
      for (Live& n : target) {
        arena.push_back({n.arena, static_cast<std::uint16_t>(v)});
        n.arena = static_cast<std::uint32_t>(arena.size() - 1);
      }
      live_now += target.size();
      if (arena.size() > options.max_total_nodes) {
        throw Error(
            "ComputeOptimalSchedule: trellis exceeded max_total_nodes; "
            "increase buffer_quantum_bits or decision_period");
      }
    }

    if (live_now == 0) {
      throw Infeasible(
          "ComputeOptimalSchedule: no feasible schedule at slot " +
          std::to_string(t0) +
          " (largest rate level below the bound's requirement)");
    }
    result.peak_live_nodes = std::max(result.peak_live_nodes, live_now);
    if constexpr (obs::kEnabled) {
      if (ctr_epochs != nullptr) ctr_epochs->Add();
      if (ctr_candidates != nullptr) {
        ctr_candidates->Add(static_cast<std::int64_t>(candidates_now));
      }
      if (ctr_retained != nullptr) {
        ctr_retained->Add(static_cast<std::int64_t>(live_now));
      }
      obs::Emit(options.recorder, static_cast<double>(t0),
                obs::EventKind::kDpPrune, options.obs_id,
                {"candidates", static_cast<double>(candidates_now)},
                {"survivors", static_cast<double>(live_now)},
                {"arena_nodes", static_cast<double>(arena.size())});
    }
    frontier.swap(next);
    first_epoch = false;
  }

  // Best terminal node across all rates, subject to the terminal-buffer
  // constraint. Every frontier retains its minimal-buffer state, and both
  // pruning rules only discard nodes dominated in (buffer, weight), so
  // filtering here is exact.
  const Live* best = nullptr;
  for (const auto& f : frontier) {
    for (const Live& n : f) {
      if (n.buffer > options.final_buffer_bits + 1e-9) continue;
      if (best == nullptr || n.weight < best->weight) best = &n;
    }
  }
  if (best == nullptr) {
    throw Infeasible(
        "ComputeOptimalSchedule: no schedule drains the buffer to "
        "final_buffer_bits by the end of the session");
  }

  // Backtrack the epoch rate decisions.
  const auto num_epochs =
      static_cast<std::size_t>((total_slots + period - 1) / period);
  std::vector<std::uint16_t> decisions(num_epochs);
  std::uint32_t cursor = best->arena;
  for (std::size_t e = num_epochs; e-- > 0;) {
    decisions[e] = arena[cursor].rate;
    cursor = arena[cursor].parent;
  }

  std::vector<Step> steps;
  steps.reserve(num_epochs);
  for (std::size_t e = 0; e < num_epochs; ++e) {
    steps.push_back({static_cast<std::int64_t>(e) * period,
                     options.rate_levels[decisions[e]]});
  }
  result.schedule = PiecewiseConstant(std::move(steps), total_slots);
  result.optimal_cost = best->weight;
  result.total_nodes = arena.size();
  if constexpr (obs::kEnabled) {
    obs::SetGauge(options.recorder, "dp.peak_live_nodes",
                  static_cast<double>(result.peak_live_nodes));
    obs::SetGauge(options.recorder, "dp.total_nodes",
                  static_cast<double>(result.total_nodes));
  }
  return result;
}

}  // namespace rcbr::core
