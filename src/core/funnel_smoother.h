// Funnel (majorization) smoother — ablation baseline.
//
// The DP of Sec. IV-A optimizes an explicit price alpha/beta over a finite
// rate grid. The classic alternative from the smoothing literature (which
// the paper cites as related work) computes, for the same buffer bound,
// the schedule with the *minimum number of rate changes* and continuous
// rates, by threading a piecewise-linear path through the funnel
//     A(t) - B  <=  S(t)  <=  A(t)
// of cumulative arrivals A and cumulative service S. The ablation bench
// compares it against the DP on cost, efficiency and renegotiation count.
#pragma once

#include <vector>

#include "util/piecewise.h"

namespace rcbr::core {

/// Computes the minimum-segment schedule (bits per slot) whose buffer
/// occupancy never exceeds `buffer_bits` and which delivers the entire
/// workload by the final slot. Throws rcbr::Infeasible only for impossible
/// inputs (negative buffer); any workload is feasible since rates are
/// unbounded.
PiecewiseConstant ComputeFunnelSchedule(
    const std::vector<double>& workload_bits, double buffer_bits);

}  // namespace rcbr::core
