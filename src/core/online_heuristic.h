// Causal renegotiation heuristic for interactive sources (Sec. IV-B).
//
// The heuristic keeps an AR(1) estimate of the source rate with an extra
// buffer-flush term (eq. 6):
//     r_hat(t) = (1 - 1/T) * r_hat(t-1) + (1/T) * a(t) + q(t)/T,
// quantizes it to a grid of granularity Delta (eq. 7), and renegotiates
// only when a buffer threshold and the quantized estimate agree (eq. 8):
// request up when q > B_h and the quantized estimate exceeds the current
// rate; request down when q < B_l and it is below. The paper's Fig. 2
// parameters: B_l = 10 kb, B_h = 150 kb, T = 5 frames, Delta swept from
// 25 kb/s to 400 kb/s.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/rate_controller.h"
#include "obs/recorder.h"
#include "util/piecewise.h"

namespace rcbr::core {

struct HeuristicOptions {
  /// Low and high buffer thresholds, bits.
  double low_threshold_bits = 10e3;
  double high_threshold_bits = 150e3;
  /// AR(1) time constant in slots (also flushes the buffer over T slots).
  double time_constant_slots = 5;
  /// Bandwidth granularity Delta, bits per slot.
  double granularity_bits_per_slot = 0;
  /// Initial service rate, bits per slot.
  double initial_rate_bits_per_slot = 0;
  /// Upper cap on requested rates (bits per slot), e.g. the uplink
  /// capacity the source knows it can never exceed. The flush term of
  /// eq. (6) otherwise demands ~ arrival + q/T compounding to arrival + q
  /// under a persistent backlog, which a small link can never grant.
  /// Unlimited by default.
  double max_rate_bits_per_slot = 1e300;
  /// Slots to stay quiet after a denied request (0 = retrigger as soon as
  /// eq. 8 fires again, the legacy behavior). A denial under congestion
  /// usually repeats for many slots; the cooldown stops the source from
  /// hammering the network with requests it just saw refused.
  std::int64_t denial_cooldown_slots = 0;
  /// Optional observability sink: every trigger emits a kRenegRequest
  /// event (time = slot index, id = `obs_id`) with the quantized rate,
  /// buffer level, and AR(1) estimate, plus a renegotiation counter.
  obs::Recorder* recorder = nullptr;
  /// Identifier stamped into this controller's events (e.g. a VCI).
  std::uint64_t obs_id = 0;
};

/// Stateful controller usable online: feed one slot's arrivals at a time;
/// it tracks the (unbounded) source buffer given the granted rates and
/// proposes renegotiations.
class OnlineRateController final : public RateController {
 public:
  explicit OnlineRateController(const HeuristicOptions& options);

  /// Advances one slot with `arrival_bits` entering the buffer while the
  /// network drains at `granted_rate` (bits/slot; normally the last
  /// requested rate, less if a renegotiation failed). Returns the new
  /// desired rate when the heuristic decides to renegotiate.
  std::optional<double> Step(double arrival_bits,
                             double granted_rate) override;

  /// Informs the controller that its last request was denied and the
  /// reservation remains at `granted_rate`; future triggers compare
  /// against the real reservation instead of the phantom request, and the
  /// optional denial cooldown starts.
  void OnRequestDenied(double granted_rate) override {
    current_rate_ = granted_rate;
    quiet_until_slot_ = slot_ + options_.denial_cooldown_slots;
  }

  /// An externally imposed rate (degradation fallback) — adopted without
  /// starting a cooldown: the network just granted it, nothing was
  /// refused.
  void OnRateImposed(double granted_rate) override {
    current_rate_ = granted_rate;
  }

  double buffer_bits() const { return buffer_; }
  double estimate_bits_per_slot() const { return estimate_; }
  double current_rate() const override { return current_rate_; }
  std::int64_t renegotiations() const { return renegotiations_; }

 private:
  HeuristicOptions options_;
  double buffer_ = 0;
  double estimate_;
  double current_rate_;
  std::int64_t renegotiations_ = 0;
  std::int64_t slot_ = 0;
  std::int64_t quiet_until_slot_ = 0;
  obs::Counter* ctr_renegotiations_ = nullptr;
};

/// Runs the heuristic open-loop over a whole workload (every request is
/// granted) and returns the resulting stepwise-CBR schedule, as used for
/// the heuristic curve of Fig. 2.
PiecewiseConstant ComputeHeuristicSchedule(
    const std::vector<double>& workload_bits,
    const HeuristicOptions& options);

}  // namespace rcbr::core
