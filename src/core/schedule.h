// Renegotiation schedules and their quality metrics (Sec. IV).
//
// A renegotiation schedule is a stepwise-CBR service-rate function. Its
// quality is judged by (Sec. IV-A):
//  * total cost  alpha * (#renegotiations) + beta * sum_t r(t),
//  * bandwidth efficiency — "the ratio of the original stream's average
//    rate to the average of the piecewise constant service rate",
//  * the mean renegotiation interval, and
//  * feasibility — the source buffer never exceeds its bound (eq. 2) or,
//    alternatively, every bit leaves within a delay bound (eq. 5).
//
// Units: workloads are bits per slot; schedule rates are bits per slot;
// buffers are bits; a slot lasts `slot_seconds`.
#pragma once

#include <cstdint>
#include <vector>

#include "util/piecewise.h"

namespace rcbr::core {

/// Pricing model of Sec. IV-A: a constant cost per renegotiation and a
/// cost per allocated bandwidth and time unit.
struct CostModel {
  /// Cost charged for each rate change (the paper's alpha).
  double per_renegotiation = 1.0;
  /// Cost per (bit/slot) of allocated bandwidth per slot (the beta).
  double per_bandwidth = 1.0;

  double Cost(std::int64_t renegotiations, double rate_integral) const {
    return per_renegotiation * static_cast<double>(renegotiations) +
           per_bandwidth * rate_integral;
  }
};

struct ScheduleMetrics {
  /// Source mean rate / schedule mean rate, in (0, 1] for feasible
  /// schedules that never idle below the arrival mean.
  double bandwidth_efficiency = 0;
  /// Session duration divided by (renegotiations + 1), seconds.
  double mean_interval_seconds = 0;
  std::int64_t renegotiations = 0;
  double cost = 0;
  /// Peak buffer occupancy when the workload is drained by the schedule.
  double max_buffer_bits = 0;
  /// Bits lost against the buffer bound (0 for feasible schedules).
  double lost_bits = 0;
  bool feasible = false;
};

/// Evaluates `schedule` against `workload` under a buffer bound.
ScheduleMetrics EvaluateSchedule(const std::vector<double>& workload_bits,
                                 const PiecewiseConstant& schedule,
                                 double buffer_bits, double slot_seconds,
                                 const CostModel& cost = {});

/// True iff every bit entering during slot t has left by the end of slot
/// t + delay_slots when the workload is drained by the schedule with an
/// unbounded buffer (the delay-bound variant, eq. 5).
bool MeetsDelayBound(const std::vector<double>& workload_bits,
                     const PiecewiseConstant& schedule,
                     std::int64_t delay_slots);

}  // namespace rcbr::core
