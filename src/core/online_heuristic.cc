#include "core/online_heuristic.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rcbr::core {

OnlineRateController::OnlineRateController(const HeuristicOptions& options)
    : options_(options),
      estimate_(options.initial_rate_bits_per_slot),
      current_rate_(options.initial_rate_bits_per_slot) {
  Require(options.low_threshold_bits >= 0 &&
              options.high_threshold_bits >= options.low_threshold_bits,
          "OnlineRateController: need 0 <= B_l <= B_h");
  Require(options.time_constant_slots >= 1,
          "OnlineRateController: time constant must be >= 1 slot");
  Require(options.granularity_bits_per_slot > 0,
          "OnlineRateController: granularity must be positive");
  Require(options.initial_rate_bits_per_slot >= 0,
          "OnlineRateController: negative initial rate");
  Require(options.max_rate_bits_per_slot > 0,
          "OnlineRateController: max rate must be positive");
  Require(options.denial_cooldown_slots >= 0,
          "OnlineRateController: negative denial cooldown");
  ctr_renegotiations_ =
      obs::FindCounter(options_.recorder, "heuristic.renegotiations");
}

std::optional<double> OnlineRateController::Step(double arrival_bits,
                                                 double granted_rate) {
  Require(arrival_bits >= 0, "OnlineRateController::Step: negative arrival");
  Require(granted_rate >= 0, "OnlineRateController::Step: negative rate");
  const double t_const = options_.time_constant_slots;

  // Buffer update (eq. 3) against the rate actually granted.
  buffer_ = std::max(buffer_ + arrival_bits - granted_rate, 0.0);

  // AR(1) estimator with the buffer-flush term (eq. 6).
  estimate_ = (1.0 - 1.0 / t_const) * estimate_ +
              (1.0 / t_const) * arrival_bits + buffer_ / t_const;

  // Quantize up to the Delta grid (eq. 7) so the requested rate covers
  // the estimate, clamped to the source's cap while staying on the grid.
  const double delta = options_.granularity_bits_per_slot;
  const double cap =
      std::floor(options_.max_rate_bits_per_slot / delta) * delta;
  const double quantized =
      std::min(std::ceil(estimate_ / delta) * delta, cap);

  // Renegotiation trigger (eq. 8), muted while a denial cooldown runs.
  const bool go_up =
      buffer_ > options_.high_threshold_bits && quantized > current_rate_;
  const bool go_down =
      buffer_ < options_.low_threshold_bits && quantized < current_rate_;
  const bool quiet = slot_ < quiet_until_slot_;
  ++slot_;
  if ((go_up || go_down) && !quiet) {
    current_rate_ = quantized;
    ++renegotiations_;
    if constexpr (obs::kEnabled) {
      if (ctr_renegotiations_ != nullptr) ctr_renegotiations_->Add();
      obs::Emit(options_.recorder, static_cast<double>(slot_ - 1),
                obs::EventKind::kRenegRequest, options_.obs_id,
                {"rate_bits_per_slot", quantized},
                {"buffer_bits", buffer_},
                {"estimate_bits_per_slot", estimate_});
    }
    return quantized;
  }
  return std::nullopt;
}

PiecewiseConstant ComputeHeuristicSchedule(
    const std::vector<double>& workload_bits,
    const HeuristicOptions& options) {
  Require(!workload_bits.empty(), "ComputeHeuristicSchedule: empty workload");
  OnlineRateController controller(options);
  std::vector<Step> steps;
  steps.push_back({0, options.initial_rate_bits_per_slot});
  double rate = options.initial_rate_bits_per_slot;
  for (std::size_t t = 0; t < workload_bits.size(); ++t) {
    const std::optional<double> request =
        controller.Step(workload_bits[t], rate);
    if (request.has_value() && *request != rate) {
      rate = *request;
      // The new rate takes effect from the next slot (the request is made
      // after observing slot t).
      const auto next = static_cast<std::int64_t>(t) + 1;
      if (next < static_cast<std::int64_t>(workload_bits.size())) {
        steps.push_back({next, rate});
      }
    }
  }
  return PiecewiseConstant(std::move(steps),
                           static_cast<std::int64_t>(workload_bits.size()));
}

}  // namespace rcbr::core
