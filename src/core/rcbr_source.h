// A runtime RCBR source (Sec. III).
//
// RcbrSource binds together the three runtime pieces of the service: the
// end-system buffer ("sources are presented with an abstraction of a
// fixed-size buffer which is drained at a constant rate"), a renegotiation
// decision maker (a precomputed offline schedule or the online AR(1)
// controller), and the signaling path used to renegotiate the drain rate
// hop by hop. A failed renegotiation leaves the source at its previous
// rate — "even if the renegotiation fails, the source can keep whatever
// bandwidth it already has" — and the source retries at the next slot
// (offline) or at the next heuristic trigger (online).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/online_heuristic.h"
#include "signaling/path.h"
#include "signaling/retry.h"
#include "sim/fluid_queue.h"
#include "sim/rate_ladder.h"
#include "util/piecewise.h"
#include "util/rng.h"

namespace rcbr::core {

struct SourceStats {
  std::int64_t slots = 0;
  std::int64_t renegotiation_attempts = 0;
  std::int64_t renegotiation_failures = 0;
  /// Robust-signaling tallies (0 without EnableRobustSignaling).
  std::int64_t renegotiation_timeouts = 0;
  std::int64_t degrade_holds = 0;
  std::int64_t fallback_entries = 0;
  std::int64_t recoveries = 0;
  /// Ladder tallies (0 without SetLadder, or with a depth-1 ladder):
  /// connects granted below the full ask, and rung promotions won back.
  std::int64_t downgraded_connects = 0;
  std::int64_t upgrades = 0;
  double lost_bits = 0;
  double arrived_bits = 0;
  double max_buffer_bits = 0;

  double loss_fraction() const {
    return arrived_bits > 0 ? lost_bits / arrived_bits : 0.0;
  }
};

/// Graceful-degradation policy for repeated renegotiation failure. The
/// source walks kNormal -> kHold -> kFallback and back:
///  * kNormal: schedule- or heuristic-driven renegotiation as usual.
///    After `failures_to_degrade` consecutive failures it gives up asking
///    and enters kHold.
///  * kHold: keep the last granted rate and absorb the excess in the
///    buffer (the paper's "keep whatever bandwidth it already has"),
///    re-probing every `hold_slots`. If the buffer climbs past
///    `fallback_occupancy_fraction` of capacity, escalate: request the
///    peak-rate fallback (every slot, with the transport's own retries)
///    until granted — the pre-overflow escape hatch.
///  * kFallback: drain at `fallback_rate_bits_per_slot`; once the buffer
///    falls below `recover_occupancy_fraction` and the controller or
///    schedule asks for a lower rate that is granted, return to kNormal.
/// Transitions are emitted as kDegradeHold / kDegradeFallback /
/// kDegradeRecover events and "source.degrade_*" counters.
struct DegradationOptions {
  bool enabled = false;
  /// Consecutive failures (denials or timeouts) before the source stops
  /// asking. Must be >= 1.
  std::int64_t failures_to_degrade = 2;
  /// Slots between re-probes while holding. Must be >= 1.
  std::int64_t hold_slots = 4;
  /// Escalation threshold as a fraction of the buffer, in (0, 1].
  double fallback_occupancy_fraction = 0.75;
  /// Emergency drain rate, bits/slot (typically the source's peak rate).
  /// Must be positive when the policy is enabled.
  double fallback_rate_bits_per_slot = 0;
  /// Recovery threshold as a fraction of the buffer, below the
  /// escalation threshold.
  double recover_occupancy_fraction = 0.25;
};

enum class SourceMode : std::uint8_t { kNormal, kHold, kFallback };

class RcbrSource {
 public:
  /// Offline (stored-video) source following a precomputed schedule in
  /// bits/slot. The path is borrowed and must outlive the source. With a
  /// recorder, renegotiation request/grant/deny events are emitted (time
  /// = slot index, id = vci) and the end-system buffer reports overflow /
  /// underflow events under the same id.
  static RcbrSource Offline(std::uint64_t vci, PiecewiseConstant schedule,
                            double slot_seconds, double buffer_bits,
                            signaling::SignalingPath* path,
                            obs::Recorder* recorder = nullptr);

  /// Online (interactive) source driven by the AR(1) heuristic.
  static RcbrSource Online(std::uint64_t vci,
                           const HeuristicOptions& heuristic,
                           double slot_seconds, double buffer_bits,
                           signaling::SignalingPath* path,
                           obs::Recorder* recorder = nullptr);

  /// Online source driven by any RateController (e.g. the GOP-aware
  /// heuristic, or a user-supplied policy).
  static RcbrSource OnlineWith(std::uint64_t vci,
                               std::unique_ptr<RateController> controller,
                               double slot_seconds, double buffer_bits,
                               signaling::SignalingPath* path,
                               obs::Recorder* recorder = nullptr);

  /// Routes renegotiations through a timeout/retry/backoff transport
  /// (RetryingRenegotiator) over the same path, with the lossy channel
  /// described by `channel` (its `conditions` pointer may be fault-driven
  /// and mutate mid-run), and optionally arms the graceful-degradation
  /// state machine. Call before Connect(). `rng` drives the loss and
  /// jitter draws — seeded by the caller, so runs stay deterministic —
  /// and is borrowed for the source's lifetime. Degradation requires a
  /// finite end-system buffer (its thresholds are occupancy fractions).
  void EnableRobustSignaling(const signaling::RetryOptions& retry,
                             const signaling::LossyChannelOptions& channel,
                             Rng* rng,
                             const DegradationOptions& degradation = {});

  /// Arms the multi-resolution contract: Connect() walks the ladder
  /// best-rung-first instead of failing outright, every renegotiated rate
  /// is scaled by the current rung, and TryUpgrade() probes back toward
  /// rung 0. A connect or upgrade that lands away from the controller's
  /// own request flow goes through the same imposed-rate path as the
  /// degradation machine's fallback entry (RateController::OnRateImposed),
  /// so the heuristic's state always tracks the network's actual grant.
  /// Call before Connect(). A depth-1 ladder is behavior-identical to not
  /// calling this at all.
  void SetLadder(const sim::RateLadder& ladder);

  /// Reserves the initial rate on every hop. Must be called once before
  /// Step(). Returns false if even the initial reservation is blocked.
  bool Connect();

  /// Releases the current reservation.
  void Disconnect();

  /// Probes rungs better than the current one (best first) through the
  /// normal renegotiation path, adopting the first grant. Returns true
  /// when a promotion was granted. No-op (false) without a ladder or at
  /// rung 0.
  bool TryUpgrade();

  /// Sends the reliable absolute-rate resync along the path at the last
  /// acknowledged rate — the repair to apply after a port controller
  /// crash/restart. Requires robust signaling and an active connection.
  void ResyncSignaling();

  struct SlotResult {
    double granted_rate_bits_per_slot = 0;
    double lost_bits = 0;
    bool renegotiated = false;
    bool renegotiation_failed = false;
    /// Source-perceived completion latency of this slot's renegotiation
    /// (round trips, timeout waits, backoff sleeps; 0 without the retry
    /// transport or when no renegotiation happened).
    double renegotiation_latency_s = 0;
    /// Cells sent for this slot's renegotiation (0 when none happened).
    std::int64_t renegotiation_cells = 0;
  };

  /// Advances one slot: `arrival_bits` are produced by the encoder, the
  /// network drains at the currently granted rate, and the source may
  /// renegotiate for the next slot.
  SlotResult Step(double arrival_bits);

  const SourceStats& stats() const { return stats_; }
  double granted_rate() const { return granted_rate_; }
  double buffer_occupancy_bits() const { return queue_.occupancy_bits(); }
  std::uint64_t vci() const { return vci_; }
  SourceMode mode() const { return mode_; }
  /// Current rung of the multi-resolution contract (0 without a ladder).
  std::uint32_t rung() const { return rung_; }
  const sim::RateLadder& ladder() const { return ladder_; }
  /// The retry transport (null until EnableRobustSignaling + Connect).
  const signaling::RetryingRenegotiator* transport() const {
    return transport_.get();
  }

 private:
  RcbrSource(std::uint64_t vci, double slot_seconds, double buffer_bits,
             signaling::SignalingPath* path, obs::Recorder* recorder);

  /// Rates are tracked in bits/slot internally and signalled to the
  /// network in bits/second.
  double ToBps(double bits_per_slot) const {
    return bits_per_slot / slot_seconds_;
  }

  /// Desired rate for slot `t` (offline mode), or nullopt in online mode.
  std::optional<double> OfflineDesiredRate() const;
  /// Returns true when the network granted `desired` (trivially true when
  /// desired == granted already).
  bool TryRenegotiate(double desired, SlotResult& result);
  /// One slot of the kNormal/kHold/kFallback state machine.
  void StepDegradation(const std::optional<double>& desired,
                       SlotResult& result);
  /// The one imposed-rate path: the reservation moved outside the
  /// controller's own request flow (degradation fallback, downgraded
  /// connect, granted upgrade) — the controller adopts it.
  void ImposeRate(double rate_bits_per_slot);

  std::uint64_t vci_;
  double slot_seconds_;
  signaling::SignalingPath* path_;
  sim::SlottedQueue queue_;

  // Offline state.
  std::optional<PiecewiseConstant> schedule_;
  std::int64_t slot_ = 0;

  // Online state.
  std::unique_ptr<RateController> controller_;

  // Robust-signaling state (EnableRobustSignaling).
  bool robust_ = false;
  signaling::RetryOptions retry_options_;
  signaling::LossyChannelOptions channel_options_;
  Rng* signaling_rng_ = nullptr;
  DegradationOptions degradation_;
  std::unique_ptr<signaling::RetryingRenegotiator> transport_;
  SourceMode mode_ = SourceMode::kNormal;
  std::int64_t consecutive_failures_ = 0;
  std::int64_t hold_until_slot_ = 0;

  // Multi-resolution contract state (SetLadder). `full_ask_` is the last
  // unscaled desired rate (bits/slot): the rate the schedule/heuristic
  // asked for before the rung scale was applied, and the base an upgrade
  // pass scales from.
  sim::RateLadder ladder_;
  std::uint32_t rung_ = 0;
  double full_ask_ = 0;

  double granted_rate_ = 0;
  bool connected_ = false;
  SourceStats stats_;
  obs::Recorder* obs_ = nullptr;
  obs::Counter* ctr_attempts_ = nullptr;
  obs::Counter* ctr_failures_ = nullptr;
  /// Call-lifecycle span handles (null when spans are off): perceived
  /// renegotiation latency, retry-budget consumption (cells per
  /// renegotiation), and hold/fallback dwell times in slots.
  obs::SpanHistogram* span_reneg_latency_ = nullptr;
  obs::SpanHistogram* span_reneg_cells_ = nullptr;
  obs::SpanHistogram* span_hold_dwell_ = nullptr;
  obs::SpanHistogram* span_fallback_dwell_ = nullptr;
  /// Per-slot degradation-state occupancy series (kNormal=0 ... ).
  obs::TimeSeries* ts_mode_ = nullptr;
  /// Slot at which the current non-kNormal mode was entered.
  std::int64_t mode_entered_slot_ = 0;
};

}  // namespace rcbr::core
