// A runtime RCBR source (Sec. III).
//
// RcbrSource binds together the three runtime pieces of the service: the
// end-system buffer ("sources are presented with an abstraction of a
// fixed-size buffer which is drained at a constant rate"), a renegotiation
// decision maker (a precomputed offline schedule or the online AR(1)
// controller), and the signaling path used to renegotiate the drain rate
// hop by hop. A failed renegotiation leaves the source at its previous
// rate — "even if the renegotiation fails, the source can keep whatever
// bandwidth it already has" — and the source retries at the next slot
// (offline) or at the next heuristic trigger (online).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "core/online_heuristic.h"
#include "signaling/path.h"
#include "sim/fluid_queue.h"
#include "util/piecewise.h"

namespace rcbr::core {

struct SourceStats {
  std::int64_t slots = 0;
  std::int64_t renegotiation_attempts = 0;
  std::int64_t renegotiation_failures = 0;
  double lost_bits = 0;
  double arrived_bits = 0;
  double max_buffer_bits = 0;

  double loss_fraction() const {
    return arrived_bits > 0 ? lost_bits / arrived_bits : 0.0;
  }
};

class RcbrSource {
 public:
  /// Offline (stored-video) source following a precomputed schedule in
  /// bits/slot. The path is borrowed and must outlive the source. With a
  /// recorder, renegotiation request/grant/deny events are emitted (time
  /// = slot index, id = vci) and the end-system buffer reports overflow /
  /// underflow events under the same id.
  static RcbrSource Offline(std::uint64_t vci, PiecewiseConstant schedule,
                            double slot_seconds, double buffer_bits,
                            signaling::SignalingPath* path,
                            obs::Recorder* recorder = nullptr);

  /// Online (interactive) source driven by the AR(1) heuristic.
  static RcbrSource Online(std::uint64_t vci,
                           const HeuristicOptions& heuristic,
                           double slot_seconds, double buffer_bits,
                           signaling::SignalingPath* path,
                           obs::Recorder* recorder = nullptr);

  /// Online source driven by any RateController (e.g. the GOP-aware
  /// heuristic, or a user-supplied policy).
  static RcbrSource OnlineWith(std::uint64_t vci,
                               std::unique_ptr<RateController> controller,
                               double slot_seconds, double buffer_bits,
                               signaling::SignalingPath* path,
                               obs::Recorder* recorder = nullptr);

  /// Reserves the initial rate on every hop. Must be called once before
  /// Step(). Returns false if even the initial reservation is blocked.
  bool Connect();

  /// Releases the current reservation.
  void Disconnect();

  struct SlotResult {
    double granted_rate_bits_per_slot = 0;
    double lost_bits = 0;
    bool renegotiated = false;
    bool renegotiation_failed = false;
  };

  /// Advances one slot: `arrival_bits` are produced by the encoder, the
  /// network drains at the currently granted rate, and the source may
  /// renegotiate for the next slot.
  SlotResult Step(double arrival_bits);

  const SourceStats& stats() const { return stats_; }
  double granted_rate() const { return granted_rate_; }
  double buffer_occupancy_bits() const { return queue_.occupancy_bits(); }
  std::uint64_t vci() const { return vci_; }

 private:
  RcbrSource(std::uint64_t vci, double slot_seconds, double buffer_bits,
             signaling::SignalingPath* path, obs::Recorder* recorder);

  /// Rates are tracked in bits/slot internally and signalled to the
  /// network in bits/second.
  double ToBps(double bits_per_slot) const {
    return bits_per_slot / slot_seconds_;
  }

  /// Desired rate for slot `t` (offline mode), or nullopt in online mode.
  std::optional<double> OfflineDesiredRate() const;
  void TryRenegotiate(double desired, SlotResult& result);

  std::uint64_t vci_;
  double slot_seconds_;
  signaling::SignalingPath* path_;
  sim::SlottedQueue queue_;

  // Offline state.
  std::optional<PiecewiseConstant> schedule_;
  std::int64_t slot_ = 0;

  // Online state.
  std::unique_ptr<RateController> controller_;

  double granted_rate_ = 0;
  bool connected_ = false;
  SourceStats stats_;
  obs::Recorder* obs_ = nullptr;
  obs::Counter* ctr_attempts_ = nullptr;
  obs::Counter* ctr_failures_ = nullptr;
};

}  // namespace rcbr::core
