// Non-renegotiated baselines (Sec. II).
//
// The paper contrasts RCBR with the services of the day: static CBR (one
// rate chosen at setup) and VBR/guaranteed service described by a one-shot
// leaky-bucket descriptor (token rate + bucket depth). These baselines
// appear throughout the evaluation: scenario (a) of Fig. 3 is static CBR,
// and the (sigma, rho) curve of Fig. 5 is precisely the static tradeoff
// between buffer/bucket size and drain rate.
#pragma once

#include <cstdint>
#include <vector>

namespace rcbr::core {

/// A token-bucket (leaky-bucket) regulator: tokens accrue at
/// `token_rate` bits per slot up to `bucket_bits`; data may enter the
/// network only against tokens. Data waiting for tokens queues in the
/// source buffer.
class TokenBucket {
 public:
  TokenBucket(double token_rate_bits_per_slot, double bucket_bits,
              double source_buffer_bits);

  struct SlotOutcome {
    double sent_bits = 0;
    double lost_bits = 0;
  };

  /// Offers one slot's arrivals; returns what entered the network and
  /// what overflowed the source buffer.
  SlotOutcome Offer(double arrival_bits);

  double tokens_bits() const { return tokens_; }
  double queue_bits() const { return queue_; }
  double max_queue_bits() const { return max_queue_; }
  double total_sent_bits() const { return sent_; }
  double total_lost_bits() const { return lost_; }

 private:
  double token_rate_;
  double bucket_;
  double buffer_;
  double tokens_;
  double queue_ = 0;
  double max_queue_ = 0;
  double sent_ = 0;
  double lost_ = 0;
};

/// Shapes a whole workload; returns the per-slot network-entry process.
struct ShapedTrace {
  std::vector<double> sent_bits;
  double lost_bits = 0;
  double max_queue_bits = 0;
};
ShapedTrace ShapeWithTokenBucket(const std::vector<double>& workload_bits,
                                 double token_rate_bits_per_slot,
                                 double bucket_bits,
                                 double source_buffer_bits);

/// Static CBR sizing: the smallest drain rate (bits/slot) for which the
/// workload's loss fraction stays <= `loss_target` at buffer `buffer_bits`
/// — the rho of the paper's (sigma, rho) curve (Fig. 5), and the e_B used
/// for scenario (a) of Fig. 6. Deterministic (single trace, no phases).
double MinRateForLoss(const std::vector<double>& workload_bits,
                      double buffer_bits, double loss_target,
                      double relative_tolerance = 1e-4);

}  // namespace rcbr::core
