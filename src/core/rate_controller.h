// The interface an online renegotiation decision-maker presents to an
// RCBR source (Sec. III-A2: "an active component [that] monitors the
// buffer between the application and the network and initiates
// renegotiations based on the buffer occupancy").
//
// Both causal heuristics — the paper's AR(1) controller (eq. 6-8) and the
// GOP-aware variant — implement this interface, so RcbrSource and any
// other runtime can drive either (or a user-supplied policy)
// interchangeably.
#pragma once

#include <optional>

namespace rcbr::core {

class RateController {
 public:
  virtual ~RateController() = default;

  /// Advances one slot: `arrival_bits` entered the buffer while the
  /// network drained at `granted_rate` (bits/slot). Returns the new
  /// desired rate when the controller decides to renegotiate.
  virtual std::optional<double> Step(double arrival_bits,
                                     double granted_rate) = 0;

  /// The last request was denied; the reservation stays at granted_rate.
  virtual void OnRequestDenied(double granted_rate) = 0;

  /// The reservation moved to `granted_rate` outside the controller's own
  /// request flow — e.g. the source's degradation policy escalated to its
  /// peak-rate fallback. The controller adopts it as the current rate so
  /// future triggers compare against reality. Defaults to the denial
  /// handler, which does exactly that adoption.
  virtual void OnRateImposed(double granted_rate) {
    OnRequestDenied(granted_rate);
  }

  /// The controller's view of the currently requested/granted rate.
  virtual double current_rate() const = 0;
};

}  // namespace rcbr::core
