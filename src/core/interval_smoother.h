// Fixed-interval (PCRTT-style) smoothing baseline.
//
// The simplest renegotiation policy predating the paper's DP: cut the
// stream into fixed-length intervals and hold, within each interval, the
// smallest constant rate that keeps the source buffer within its bound.
// It renegotiates on a clock instead of where the traffic demands it, so
// for the same renegotiation frequency it wastes bandwidth relative to
// the cost-optimal DP (quantified by bench/ablation_smoother). Included
// as the third point of the scheduling design space: funnel (min
// segments, continuous rates), DP (priced optimum on a grid), PCRTT
// (clocked, closed-form).
#pragma once

#include <cstdint>
#include <vector>

#include "util/piecewise.h"

namespace rcbr::core {

/// Computes the fixed-interval schedule: every `interval_slots` slots the
/// rate is reset to the minimum that keeps the buffer within
/// `buffer_bits` through that interval, given the carried-over occupancy.
/// The final interval additionally drains the buffer to zero, so the
/// schedule is rotation-safe. Rates are continuous (no grid).
PiecewiseConstant ComputeIntervalSchedule(
    const std::vector<double>& workload_bits, std::int64_t interval_slots,
    double buffer_bits);

}  // namespace rcbr::core
