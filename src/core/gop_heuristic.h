// GOP-aware causal renegotiation heuristic (the paper's suggested
// improvement, Sec. IV-B: "the prediction quality could be improved by
// taking into account the inherent frame structure of MPEG encoded
// video").
//
// The plain AR(1) estimator of online_heuristic.h sees the I/P/B size
// pattern as noise: every I frame yanks the estimate up, every B frame
// drags it down, so the estimate oscillates within a GOP and the
// controller either renegotiates on frame-type noise or needs a long time
// constant that lags scene changes. This controller instead keeps one
// AR(1) estimator *per position in the GOP pattern* and predicts the
// sustainable rate as the pattern-average of those estimators — the
// frame-structure periodicity cancels exactly, leaving only the scene
// signal (plus the same buffer-flush feedback and eq.-(8) trigger rule,
// so the two heuristics are comparable knob-for-knob).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/rate_controller.h"
#include "util/piecewise.h"

namespace rcbr::core {

struct GopHeuristicOptions {
  /// The encoder's GOP pattern; frames arrive cyclically in this order.
  std::string gop_pattern = "IBBPBBPBBPBB";
  /// Buffer thresholds, bits (same roles as the AR(1) heuristic's).
  double low_threshold_bits = 10e3;
  double high_threshold_bits = 150e3;
  /// Memory of the per-position estimators, in GOPs.
  double time_constant_gops = 2;
  /// Buffer-flush horizon in slots (the q/T term of eq. 6).
  double flush_slots = 5;
  /// Bandwidth granularity Delta, bits per slot.
  double granularity_bits_per_slot = 0;
  double initial_rate_bits_per_slot = 0;
  double max_rate_bits_per_slot = 1e300;
};

class GopAwareController final : public RateController {
 public:
  explicit GopAwareController(const GopHeuristicOptions& options);

  /// Advances one slot (one frame of the cyclic pattern). Returns the new
  /// desired rate when the controller decides to renegotiate.
  std::optional<double> Step(double arrival_bits,
                             double granted_rate) override;

  /// Informs the controller its last request was denied.
  void OnRequestDenied(double granted_rate) override {
    current_rate_ = granted_rate;
  }

  double buffer_bits() const { return buffer_; }
  /// The pattern-averaged scene-rate estimate, bits per slot.
  double estimate_bits_per_slot() const;
  double current_rate() const override { return current_rate_; }
  std::int64_t renegotiations() const { return renegotiations_; }

 private:
  GopHeuristicOptions options_;
  std::vector<double> per_position_;  // one AR estimate per GOP position
  std::size_t phase_ = 0;
  double buffer_ = 0;
  double current_rate_;
  std::int64_t renegotiations_ = 0;
};

/// Open-loop run over a whole workload (every request granted); the
/// GOP-aware counterpart of ComputeHeuristicSchedule.
PiecewiseConstant ComputeGopHeuristicSchedule(
    const std::vector<double>& workload_bits,
    const GopHeuristicOptions& options);

}  // namespace rcbr::core
