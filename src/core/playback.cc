#include "core/playback.h"

#include <algorithm>

#include "util/error.h"

namespace rcbr::core {

namespace {

/// Cumulative delivery S(t) for t in [0, n): the schedule drains the
/// stored file, capped at the file size.
std::vector<double> CumulativeDelivery(
    const std::vector<double>& frame_bits,
    const PiecewiseConstant& schedule) {
  double total = 0;
  for (double b : frame_bits) total += b;
  std::vector<double> delivered(frame_bits.size());
  double acc = 0;
  for (std::size_t t = 0; t < frame_bits.size(); ++t) {
    acc = std::min(acc + schedule.At(static_cast<std::int64_t>(t)), total);
    delivered[t] = acc;
  }
  return delivered;
}

std::vector<double> CumulativeFrames(const std::vector<double>& frame_bits) {
  std::vector<double> cumulative(frame_bits.size());
  double acc = 0;
  for (std::size_t k = 0; k < frame_bits.size(); ++k) {
    acc += frame_bits[k];
    cumulative[k] = acc;
  }
  return cumulative;
}

}  // namespace

PlaybackAnalysis AnalyzePlayback(
    const std::vector<double>& frame_bits,
    const PiecewiseConstant& schedule_bits_per_slot) {
  Require(!frame_bits.empty(), "AnalyzePlayback: empty stream");
  Require(schedule_bits_per_slot.length() ==
              static_cast<std::int64_t>(frame_bits.size()),
          "AnalyzePlayback: schedule/stream length mismatch");
  const auto n = static_cast<std::int64_t>(frame_bits.size());
  const std::vector<double> delivered =
      CumulativeDelivery(frame_bits, schedule_bits_per_slot);
  const std::vector<double> consumed = CumulativeFrames(frame_bits);
  if (delivered.back() + 1e-9 < consumed.back()) {
    throw Infeasible(
        "AnalyzePlayback: schedule does not deliver the whole file");
  }

  // min startup d = max_k (t_k - k) where t_k is the first slot whose
  // delivery covers frame k. Two-pointer sweep: t_k is nondecreasing.
  PlaybackAnalysis analysis;
  std::int64_t t = 0;
  std::int64_t d = 0;
  for (std::int64_t k = 0; k < n; ++k) {
    while (delivered[static_cast<std::size_t>(t)] + 1e-9 <
           consumed[static_cast<std::size_t>(k)]) {
      ++t;  // guaranteed to stay < n by the completeness check above
    }
    d = std::max(d, t - k);
  }
  analysis.min_startup_slots = d;
  analysis.client_buffer_bits =
      ClientBufferForStartup(frame_bits, schedule_bits_per_slot, d);
  std::int64_t complete = n - 1;
  while (complete > 0 &&
         delivered[static_cast<std::size_t>(complete - 1)] + 1e-9 >=
             delivered.back()) {
    --complete;
  }
  analysis.delivery_complete_slot = complete;
  return analysis;
}

double ClientBufferForStartup(const std::vector<double>& frame_bits,
                              const PiecewiseConstant& schedule_bits_per_slot,
                              std::int64_t startup_slots) {
  Require(!frame_bits.empty(), "ClientBufferForStartup: empty stream");
  Require(startup_slots >= 0, "ClientBufferForStartup: negative delay");
  const std::vector<double> delivered =
      CumulativeDelivery(frame_bits, schedule_bits_per_slot);
  const std::vector<double> consumed = CumulativeFrames(frame_bits);
  const auto n = static_cast<std::int64_t>(frame_bits.size());
  double peak = 0;
  for (std::int64_t t = 0; t < n; ++t) {
    const std::int64_t k = t - startup_slots;  // frame displayed in slot t
    const double eaten =
        k >= 0 ? consumed[static_cast<std::size_t>(std::min(k, n - 1))]
               : 0.0;
    Require(k < 0 || eaten <= delivered[static_cast<std::size_t>(t)] + 1e-6,
            "ClientBufferForStartup: startup delay causes underflow");
    peak = std::max(peak, delivered[static_cast<std::size_t>(t)] - eaten);
  }
  return peak;
}

}  // namespace rcbr::core
