// Book-ahead (advance) reservations (Sec. III-A2).
//
// "Offline sources can compute the renegotiation schedule in advance and
// can initiate renegotiations in anticipation of changes in the source
// rate. Moreover, if all systems in the network share a common time base,
// advance reservations could be done for some or all of the data stream."
//
// ReservationLedger is that shared time base on one port: a time-indexed
// capacity ledger over a finite horizon. A video server books a whole
// stepwise-CBR schedule before playback starts; at play time no per-step
// signaling can ever fail, because the capacity was committed up front.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/piecewise.h"

namespace rcbr::core {

class ReservationLedger {
 public:
  /// A ledger for one port of `capacity_bps`, divided into `horizon_slots`
  /// slots of `slot_seconds` each.
  ReservationLedger(double capacity_bps, double slot_seconds,
                    std::int64_t horizon_slots);

  double capacity_bps() const { return capacity_; }
  std::int64_t horizon_slots() const {
    return static_cast<std::int64_t>(reserved_.size());
  }

  /// Books `schedule_bps` (rates in bits/s over the schedule's own slots)
  /// to start at ledger slot `start_slot`. All-or-nothing: returns false
  /// and books nothing if any slot would exceed capacity. The booking
  /// must fit inside the horizon.
  bool BookSchedule(std::uint64_t booking_id,
                    const PiecewiseConstant& schedule_bps,
                    std::int64_t start_slot);

  /// Books a constant rate over ledger slots [from, to).
  bool BookConstant(std::uint64_t booking_id, double rate_bps,
                    std::int64_t from_slot, std::int64_t to_slot);

  /// Releases a booking (no-op for unknown ids).
  void Cancel(std::uint64_t booking_id);

  /// Total reservation at a ledger slot, bits/s.
  double ReservedAt(std::int64_t slot) const;

  /// Largest total reservation over [from, to).
  double PeakReservation(std::int64_t from_slot, std::int64_t to_slot) const;

  /// The earliest start slot >= `earliest` at which the schedule fits, or
  /// -1 if it fits nowhere in the horizon — the "when can my movie
  /// start?" query of a video-on-demand server.
  std::int64_t FindEarliestStart(const PiecewiseConstant& schedule_bps,
                                 std::int64_t earliest = 0) const;

 private:
  struct Booking {
    std::int64_t start_slot = 0;
    std::vector<Step> steps;  // schedule steps, schedule-local starts
    std::int64_t length = 0;
  };

  bool Fits(const PiecewiseConstant& schedule_bps,
            std::int64_t start_slot) const;
  void Apply(const Booking& booking, double sign);

  double capacity_;
  double slot_seconds_;
  std::vector<double> reserved_;
  std::unordered_map<std::uint64_t, Booking> bookings_;
};

}  // namespace rcbr::core
