#include "core/rcbr_source.h"

#include "util/error.h"

namespace rcbr::core {

RcbrSource::RcbrSource(std::uint64_t vci, double slot_seconds,
                       double buffer_bits, signaling::SignalingPath* path,
                       obs::Recorder* recorder)
    : vci_(vci),
      slot_seconds_(slot_seconds),
      path_(path),
      queue_(buffer_bits, recorder, vci),
      obs_(recorder) {
  Require(slot_seconds > 0, "RcbrSource: slot duration must be positive");
  Require(path != nullptr, "RcbrSource: null signaling path");
  ctr_attempts_ = obs::FindCounter(obs_, "source.renegotiation_attempts");
  ctr_failures_ = obs::FindCounter(obs_, "source.renegotiation_failures");
}

RcbrSource RcbrSource::Offline(std::uint64_t vci, PiecewiseConstant schedule,
                               double slot_seconds, double buffer_bits,
                               signaling::SignalingPath* path,
                               obs::Recorder* recorder) {
  RcbrSource source(vci, slot_seconds, buffer_bits, path, recorder);
  source.schedule_.emplace(std::move(schedule));
  return source;
}

RcbrSource RcbrSource::Online(std::uint64_t vci,
                              const HeuristicOptions& heuristic,
                              double slot_seconds, double buffer_bits,
                              signaling::SignalingPath* path,
                              obs::Recorder* recorder) {
  HeuristicOptions wired = heuristic;
  if (wired.recorder == nullptr) {
    wired.recorder = recorder;
    wired.obs_id = vci;
  }
  return OnlineWith(vci, std::make_unique<OnlineRateController>(wired),
                    slot_seconds, buffer_bits, path, recorder);
}

RcbrSource RcbrSource::OnlineWith(std::uint64_t vci,
                                  std::unique_ptr<RateController> controller,
                                  double slot_seconds, double buffer_bits,
                                  signaling::SignalingPath* path,
                                  obs::Recorder* recorder) {
  Require(controller != nullptr, "RcbrSource::OnlineWith: null controller");
  RcbrSource source(vci, slot_seconds, buffer_bits, path, recorder);
  source.controller_ = std::move(controller);
  return source;
}

bool RcbrSource::Connect() {
  Require(!connected_, "RcbrSource::Connect: already connected");
  double initial = 0;
  if (schedule_.has_value()) {
    initial = schedule_->steps().front().value;
  } else {
    initial = controller_->current_rate();
  }
  if (!path_->SetupConnection(vci_, ToBps(initial))) return false;
  granted_rate_ = initial;
  connected_ = true;
  return true;
}

void RcbrSource::Disconnect() {
  if (!connected_) return;
  path_->TeardownConnection(vci_, ToBps(granted_rate_));
  connected_ = false;
}

std::optional<double> RcbrSource::OfflineDesiredRate() const {
  if (!schedule_.has_value()) return std::nullopt;
  const std::int64_t t = std::min(slot_, schedule_->length() - 1);
  return schedule_->At(t);
}

void RcbrSource::TryRenegotiate(double desired, SlotResult& result) {
  if (desired == granted_rate_) return;
  result.renegotiated = true;
  ++stats_.renegotiation_attempts;
  if (ctr_attempts_ != nullptr) ctr_attempts_->Add();
  const double old_rate = granted_rate_;
  const double delta_bps = ToBps(desired - granted_rate_);
  if constexpr (obs::kEnabled) {
    obs::Emit(obs_, static_cast<double>(stats_.slots),
              obs::EventKind::kRenegRequest, vci_,
              {"old_bits_per_slot", old_rate},
              {"new_bits_per_slot", desired});
  }
  const signaling::PathOutcome outcome = path_->RequestDelta(
      vci_, delta_bps, static_cast<double>(stats_.slots));
  if (outcome.accepted) {
    granted_rate_ = desired;
    obs::Emit(obs_, static_cast<double>(stats_.slots),
              obs::EventKind::kRenegGrant, vci_,
              {"old_bits_per_slot", old_rate},
              {"new_bits_per_slot", desired});
  } else {
    result.renegotiation_failed = true;
    ++stats_.renegotiation_failures;
    if (ctr_failures_ != nullptr) ctr_failures_->Add();
    obs::Emit(obs_, static_cast<double>(stats_.slots),
              obs::EventKind::kRenegDeny, vci_,
              {"old_bits_per_slot", old_rate},
              {"new_bits_per_slot", desired});
    if (controller_ != nullptr) controller_->OnRequestDenied(granted_rate_);
  }
}

RcbrSource::SlotResult RcbrSource::Step(double arrival_bits) {
  Require(connected_, "RcbrSource::Step: not connected");
  SlotResult result;

  // Drain this slot at the currently granted rate.
  result.lost_bits = queue_.Step(arrival_bits, granted_rate_);
  ++stats_.slots;
  ++slot_;

  // Decide the rate for the next slot.
  if (schedule_.has_value()) {
    const std::optional<double> desired = OfflineDesiredRate();
    if (desired.has_value()) TryRenegotiate(*desired, result);
  } else {
    // The controller has already accounted this slot's drain via Step.
    const std::optional<double> request =
        controller_->Step(arrival_bits, granted_rate_);
    if (request.has_value()) TryRenegotiate(*request, result);
  }

  result.granted_rate_bits_per_slot = granted_rate_;
  stats_.lost_bits = queue_.lost_bits();
  stats_.arrived_bits = queue_.arrived_bits();
  stats_.max_buffer_bits = queue_.max_occupancy_bits();
  return result;
}

}  // namespace rcbr::core
