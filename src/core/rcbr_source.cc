#include "core/rcbr_source.h"

#include <cmath>

#include "util/error.h"

namespace rcbr::core {

RcbrSource::RcbrSource(std::uint64_t vci, double slot_seconds,
                       double buffer_bits, signaling::SignalingPath* path,
                       obs::Recorder* recorder)
    : vci_(vci),
      slot_seconds_(slot_seconds),
      path_(path),
      queue_(buffer_bits, recorder, vci),
      obs_(recorder) {
  Require(slot_seconds > 0, "RcbrSource: slot duration must be positive");
  Require(path != nullptr, "RcbrSource: null signaling path");
  ctr_attempts_ = obs::FindCounter(obs_, "source.renegotiation_attempts");
  ctr_failures_ = obs::FindCounter(obs_, "source.renegotiation_failures");
  span_reneg_latency_ =
      obs::FindSpan(obs_, "source.span.reneg_latency_s");
  span_reneg_cells_ = obs::FindSpan(obs_, "source.span.reneg_cells");
  span_hold_dwell_ =
      obs::FindSpan(obs_, "source.span.hold_dwell_slots");
  span_fallback_dwell_ =
      obs::FindSpan(obs_, "source.span.fallback_dwell_slots");
  if constexpr (obs::kEnabled) {
    const std::string mode_series =
        "source." + std::to_string(vci) + ".mode";
    ts_mode_ = obs::FindSeries(obs_, mode_series.c_str());
  }
}

RcbrSource RcbrSource::Offline(std::uint64_t vci, PiecewiseConstant schedule,
                               double slot_seconds, double buffer_bits,
                               signaling::SignalingPath* path,
                               obs::Recorder* recorder) {
  RcbrSource source(vci, slot_seconds, buffer_bits, path, recorder);
  source.schedule_.emplace(std::move(schedule));
  return source;
}

RcbrSource RcbrSource::Online(std::uint64_t vci,
                              const HeuristicOptions& heuristic,
                              double slot_seconds, double buffer_bits,
                              signaling::SignalingPath* path,
                              obs::Recorder* recorder) {
  HeuristicOptions wired = heuristic;
  if (wired.recorder == nullptr) {
    wired.recorder = recorder;
    wired.obs_id = vci;
  }
  return OnlineWith(vci, std::make_unique<OnlineRateController>(wired),
                    slot_seconds, buffer_bits, path, recorder);
}

RcbrSource RcbrSource::OnlineWith(std::uint64_t vci,
                                  std::unique_ptr<RateController> controller,
                                  double slot_seconds, double buffer_bits,
                                  signaling::SignalingPath* path,
                                  obs::Recorder* recorder) {
  Require(controller != nullptr, "RcbrSource::OnlineWith: null controller");
  RcbrSource source(vci, slot_seconds, buffer_bits, path, recorder);
  source.controller_ = std::move(controller);
  return source;
}

void RcbrSource::EnableRobustSignaling(
    const signaling::RetryOptions& retry,
    const signaling::LossyChannelOptions& channel, Rng* rng,
    const DegradationOptions& degradation) {
  Require(!connected_,
          "RcbrSource::EnableRobustSignaling: call before Connect()");
  Require(rng != nullptr, "RcbrSource::EnableRobustSignaling: null rng");
  if (degradation.enabled) {
    Require(degradation.failures_to_degrade >= 1,
            "DegradationOptions: failures_to_degrade must be >= 1");
    Require(degradation.hold_slots >= 1,
            "DegradationOptions: hold_slots must be >= 1");
    Require(degradation.fallback_rate_bits_per_slot > 0,
            "DegradationOptions: fallback rate must be positive");
    Require(degradation.fallback_occupancy_fraction > 0 &&
                degradation.fallback_occupancy_fraction <= 1,
            "DegradationOptions: fallback fraction must be in (0,1]");
    Require(degradation.recover_occupancy_fraction >= 0 &&
                degradation.recover_occupancy_fraction <
                    degradation.fallback_occupancy_fraction,
            "DegradationOptions: recover fraction must be below the "
            "fallback fraction");
    Require(std::isfinite(queue_.buffer_bits()),
            "DegradationOptions: occupancy thresholds need a finite "
            "end-system buffer");
  }
  robust_ = true;
  retry_options_ = retry;
  channel_options_ = channel;
  signaling_rng_ = rng;
  degradation_ = degradation;
  if (retry_options_.recorder == nullptr) retry_options_.recorder = obs_;
  if (channel_options_.recorder == nullptr) channel_options_.recorder = obs_;
}

void RcbrSource::SetLadder(const sim::RateLadder& ladder) {
  Require(!connected_, "RcbrSource::SetLadder: call before Connect()");
  ladder_ = ladder;
}

bool RcbrSource::Connect() {
  Require(!connected_, "RcbrSource::Connect: already connected");
  double initial = 0;
  if (schedule_.has_value()) {
    initial = schedule_->steps().front().value;
  } else {
    initial = controller_->current_rate();
  }
  full_ask_ = initial;
  // Walk the ladder best-rung-first: a saturated path downgrades the
  // connect instead of blocking it. Without a ladder the loop is a single
  // full-ask attempt, exactly the legacy behavior.
  const std::size_t depth = ladder_.empty() ? 1 : ladder_.depth();
  bool admitted = false;
  double granted = initial;
  for (std::size_t r = 0; r < depth && !admitted; ++r) {
    granted = ladder_.empty() ? initial : ladder_.RateAt(r, initial);
    if (path_->SetupConnection(vci_, ToBps(granted),
                               static_cast<std::uint32_t>(r))) {
      admitted = true;
      rung_ = static_cast<std::uint32_t>(r);
    }
  }
  if (!admitted) return false;
  granted_rate_ = granted;
  connected_ = true;
  if (robust_) {
    transport_ = std::make_unique<signaling::RetryingRenegotiator>(
        path_, vci_, ToBps(granted), retry_options_, channel_options_,
        signaling_rng_);
    transport_->set_rung(rung_);
  }
  if (rung_ > 0) {
    // Admission downgraded the contract: the controller adopts the
    // imposed rate through the same path the fallback machine uses.
    ++stats_.downgraded_connects;
    ImposeRate(granted_rate_);
  }
  return true;
}

void RcbrSource::ResyncSignaling() {
  Require(transport_ != nullptr,
          "RcbrSource::ResyncSignaling: robust signaling not enabled");
  Require(connected_, "RcbrSource::ResyncSignaling: not connected");
  transport_->Resync(static_cast<double>(stats_.slots));
}

void RcbrSource::Disconnect() {
  if (!connected_) return;
  path_->TeardownConnection(vci_, ToBps(granted_rate_));
  connected_ = false;
}

bool RcbrSource::TryUpgrade() {
  Require(connected_, "RcbrSource::TryUpgrade: not connected");
  if (ladder_.empty() || rung_ == 0) return false;
  const double now = static_cast<double>(stats_.slots);
  for (std::uint32_t target = 0; target < rung_; ++target) {
    const double want = ladder_.RateAt(target, full_ask_);
    bool accepted;
    if (transport_ != nullptr) {
      // Probe-only rung: a timed-out attempt's rescind resync must keep
      // carrying the *current* contract rung, or the probe toward rung 0
      // would silently deregister this call from every hop's upgrade
      // queue despite the upgrade failing.
      transport_->SetRequestedRung(target);
      accepted = transport_->Renegotiate(ToBps(want), now).accepted;
      if (!accepted) transport_->SetRequestedRung(rung_);
    } else {
      accepted =
          path_->RequestDelta(vci_, ToBps(want - granted_rate_), now, target)
              .accepted;
    }
    if (!accepted) continue;
    const std::uint32_t from = rung_;
    rung_ = target;
    granted_rate_ = want;
    ++stats_.upgrades;
    // Same imposed-rate path as a downgraded connect or fallback entry:
    // the promotion was granted outside the controller's request flow.
    ImposeRate(granted_rate_);
    if constexpr (obs::kEnabled) {
      obs::Count(obs_, "source.upgrades");
      obs::Emit(obs_, now, obs::EventKind::kCallUpgrade, vci_,
                {"from_rung", static_cast<double>(from)},
                {"to_rung", static_cast<double>(target)},
                {"rate_bits_per_slot", want});
    }
    return true;
  }
  return false;
}

std::optional<double> RcbrSource::OfflineDesiredRate() const {
  if (!schedule_.has_value()) return std::nullopt;
  const std::int64_t t = std::min(slot_, schedule_->length() - 1);
  return schedule_->At(t);
}

void RcbrSource::ImposeRate(double rate_bits_per_slot) {
  if (controller_ != nullptr) controller_->OnRateImposed(rate_bits_per_slot);
}

bool RcbrSource::TryRenegotiate(double desired, SlotResult& result) {
  // The ladder scales every contract rate — schedule, heuristic and
  // fallback asks alike — by the current rung; the unscaled ask is kept
  // as the base a later upgrade scales from. Without a ladder (and at
  // rung 0, bit-exactly) `desired` passes through untouched.
  full_ask_ = desired;
  if (!ladder_.empty()) desired = ladder_.RateAt(rung_, desired);
  if (desired == granted_rate_) return true;
  result.renegotiated = true;
  ++stats_.renegotiation_attempts;
  if (ctr_attempts_ != nullptr) ctr_attempts_->Add();
  const double old_rate = granted_rate_;
  const double now = static_cast<double>(stats_.slots);
  if constexpr (obs::kEnabled) {
    obs::Emit(obs_, now, obs::EventKind::kRenegRequest, vci_,
              {"old_bits_per_slot", old_rate},
              {"new_bits_per_slot", desired});
  }
  bool accepted;
  bool timed_out = false;
  if (transport_ != nullptr) {
    const signaling::RenegotiationOutcome outcome =
        transport_->Renegotiate(ToBps(desired), now);
    accepted = outcome.accepted;
    timed_out = outcome.timed_out;
    result.renegotiation_latency_s += outcome.latency_s;
    result.renegotiation_cells += outcome.attempts;
    if (timed_out) ++stats_.renegotiation_timeouts;
    if (span_reneg_latency_ != nullptr) {
      span_reneg_latency_->Record(outcome.latency_s);
    }
    if (span_reneg_cells_ != nullptr) {
      span_reneg_cells_->Record(static_cast<double>(outcome.attempts));
    }
  } else {
    accepted =
        path_->RequestDelta(vci_, ToBps(desired - granted_rate_), now, rung_)
            .accepted;
  }
  if (accepted) {
    granted_rate_ = desired;
    obs::Emit(obs_, now, obs::EventKind::kRenegGrant, vci_,
              {"old_bits_per_slot", old_rate},
              {"new_bits_per_slot", desired});
  } else {
    result.renegotiation_failed = true;
    ++stats_.renegotiation_failures;
    if (ctr_failures_ != nullptr) ctr_failures_->Add();
    // Timeouts already emitted kRenegTimeout from the transport; only an
    // explicit refusal is a deny.
    if (!timed_out) {
      obs::Emit(obs_, now, obs::EventKind::kRenegDeny, vci_,
                {"old_bits_per_slot", old_rate},
                {"new_bits_per_slot", desired});
    }
    if (controller_ != nullptr) controller_->OnRequestDenied(granted_rate_);
  }
  return accepted;
}

void RcbrSource::StepDegradation(const std::optional<double>& desired,
                                 SlotResult& result) {
  const double occupancy = queue_.occupancy_bits();
  const double escalate_at =
      degradation_.fallback_occupancy_fraction * queue_.buffer_bits();
  const double recover_at =
      degradation_.recover_occupancy_fraction * queue_.buffer_bits();
  const double now = static_cast<double>(stats_.slots);
  switch (mode_) {
    case SourceMode::kNormal: {
      if (!desired.has_value()) return;
      if (TryRenegotiate(*desired, result)) {
        consecutive_failures_ = 0;
        return;
      }
      if (++consecutive_failures_ >= degradation_.failures_to_degrade) {
        // Give up asking: hold the granted rate and drain via the buffer.
        mode_ = SourceMode::kHold;
        mode_entered_slot_ = slot_;
        hold_until_slot_ = slot_ + degradation_.hold_slots;
        ++stats_.degrade_holds;
        if constexpr (obs::kEnabled) {
          obs::Count(obs_, "source.degrade_holds");
          obs::Emit(obs_, now, obs::EventKind::kDegradeHold, vci_,
                    {"granted_bits_per_slot", granted_rate_},
                    {"buffer_bits", occupancy});
        }
      }
      return;
    }
    case SourceMode::kHold: {
      if (occupancy >= escalate_at &&
          granted_rate_ < degradation_.fallback_rate_bits_per_slot) {
        // About to overflow: escalate to the peak-rate fallback, retrying
        // every slot until some attempt lands.
        if (TryRenegotiate(degradation_.fallback_rate_bits_per_slot,
                           result)) {
          if (span_hold_dwell_ != nullptr) {
            span_hold_dwell_->Record(
                static_cast<double>(slot_ - mode_entered_slot_));
          }
          mode_ = SourceMode::kFallback;
          mode_entered_slot_ = slot_;
          ++stats_.fallback_entries;
          ImposeRate(granted_rate_);
          if constexpr (obs::kEnabled) {
            obs::Count(obs_, "source.fallback_entries");
            obs::Emit(obs_, now, obs::EventKind::kDegradeFallback, vci_,
                      {"rate_bits_per_slot", granted_rate_},
                      {"buffer_bits", occupancy});
          }
        }
        return;
      }
      if (slot_ >= hold_until_slot_ && desired.has_value()) {
        // Re-probe at the schedule/heuristic rate.
        if (TryRenegotiate(*desired, result)) {
          if (span_hold_dwell_ != nullptr) {
            span_hold_dwell_->Record(
                static_cast<double>(slot_ - mode_entered_slot_));
          }
          mode_ = SourceMode::kNormal;
          consecutive_failures_ = 0;
          ++stats_.recoveries;
          if constexpr (obs::kEnabled) {
            obs::Count(obs_, "source.degrade_recoveries");
            obs::Emit(obs_, now, obs::EventKind::kDegradeRecover, vci_,
                      {"rate_bits_per_slot", granted_rate_},
                      {"buffer_bits", occupancy});
          }
        } else {
          hold_until_slot_ = slot_ + degradation_.hold_slots;
        }
      }
      return;
    }
    case SourceMode::kFallback: {
      if (occupancy <= recover_at && desired.has_value() &&
          *desired < granted_rate_) {
        // Backlog drained; hand the rate back to the schedule/heuristic.
        if (TryRenegotiate(*desired, result)) {
          if (span_fallback_dwell_ != nullptr) {
            span_fallback_dwell_->Record(
                static_cast<double>(slot_ - mode_entered_slot_));
          }
          mode_ = SourceMode::kNormal;
          consecutive_failures_ = 0;
          ++stats_.recoveries;
          if constexpr (obs::kEnabled) {
            obs::Count(obs_, "source.degrade_recoveries");
            obs::Emit(obs_, now, obs::EventKind::kDegradeRecover, vci_,
                      {"rate_bits_per_slot", granted_rate_},
                      {"buffer_bits", occupancy});
          }
        }
      }
      return;
    }
  }
}

RcbrSource::SlotResult RcbrSource::Step(double arrival_bits) {
  Require(connected_, "RcbrSource::Step: not connected");
  SlotResult result;

  // Drain this slot at the currently granted rate.
  result.lost_bits = queue_.Step(arrival_bits, granted_rate_);
  ++stats_.slots;
  ++slot_;

  // Decide the rate for the next slot. The controller keeps estimating
  // every slot even while degraded, so recovery targets stay fresh.
  std::optional<double> desired;
  if (schedule_.has_value()) {
    desired = OfflineDesiredRate();
  } else {
    // The controller has already accounted this slot's drain via Step.
    desired = controller_->Step(arrival_bits, granted_rate_);
  }
  if (degradation_.enabled) {
    StepDegradation(desired, result);
  } else if (desired.has_value()) {
    TryRenegotiate(*desired, result);
  }
  if (ts_mode_ != nullptr) {
    // Per-slot state occupancy: window means give the fraction of time
    // spent degraded (kNormal=0, kHold=1, kFallback=2).
    ts_mode_->Sample(static_cast<double>(slot_),
                     static_cast<double>(mode_));
  }

  result.granted_rate_bits_per_slot = granted_rate_;
  stats_.lost_bits = queue_.lost_bits();
  stats_.arrived_bits = queue_.arrived_bits();
  stats_.max_buffer_bits = queue_.max_occupancy_bits();
  return result;
}

}  // namespace rcbr::core
