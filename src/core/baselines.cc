#include "core/baselines.h"

#include <algorithm>

#include "sim/fluid_queue.h"
#include "util/error.h"
#include "util/search.h"

namespace rcbr::core {

TokenBucket::TokenBucket(double token_rate_bits_per_slot, double bucket_bits,
                         double source_buffer_bits)
    : token_rate_(token_rate_bits_per_slot),
      bucket_(bucket_bits),
      buffer_(source_buffer_bits),
      tokens_(bucket_bits) {
  Require(token_rate_bits_per_slot >= 0, "TokenBucket: negative token rate");
  Require(bucket_bits >= 0, "TokenBucket: negative bucket");
  Require(source_buffer_bits >= 0, "TokenBucket: negative buffer");
}

TokenBucket::SlotOutcome TokenBucket::Offer(double arrival_bits) {
  Require(arrival_bits >= 0, "TokenBucket::Offer: negative arrival");
  tokens_ = std::min(tokens_ + token_rate_, bucket_);
  SlotOutcome outcome;
  const double backlog = queue_ + arrival_bits;
  outcome.sent_bits = std::min(backlog, tokens_);
  tokens_ -= outcome.sent_bits;
  queue_ = backlog - outcome.sent_bits;
  if (queue_ > buffer_) {
    outcome.lost_bits = queue_ - buffer_;
    queue_ = buffer_;
  }
  max_queue_ = std::max(max_queue_, queue_);
  sent_ += outcome.sent_bits;
  lost_ += outcome.lost_bits;
  return outcome;
}

ShapedTrace ShapeWithTokenBucket(const std::vector<double>& workload_bits,
                                 double token_rate_bits_per_slot,
                                 double bucket_bits,
                                 double source_buffer_bits) {
  TokenBucket bucket(token_rate_bits_per_slot, bucket_bits,
                     source_buffer_bits);
  ShapedTrace shaped;
  shaped.sent_bits.reserve(workload_bits.size());
  for (double a : workload_bits) {
    shaped.sent_bits.push_back(bucket.Offer(a).sent_bits);
  }
  shaped.lost_bits = bucket.total_lost_bits();
  shaped.max_queue_bits = bucket.max_queue_bits();
  return shaped;
}

double MinRateForLoss(const std::vector<double>& workload_bits,
                      double buffer_bits, double loss_target,
                      double relative_tolerance) {
  Require(!workload_bits.empty(), "MinRateForLoss: empty workload");
  Require(loss_target >= 0, "MinRateForLoss: negative loss target");
  double peak = 0;
  for (double a : workload_bits) peak = std::max(peak, a);
  if (peak == 0) return 0;
  SearchOptions options;
  options.relative_tolerance = relative_tolerance;
  return MinFeasible(
      0.0, peak,
      [&](double rate) {
        return sim::DrainConstant(workload_bits, rate, buffer_bits)
                   .loss_fraction() <= loss_target;
      },
      options);
}

}  // namespace rcbr::core
