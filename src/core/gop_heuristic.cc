#include "core/gop_heuristic.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rcbr::core {

GopAwareController::GopAwareController(const GopHeuristicOptions& options)
    : options_(options), current_rate_(options.initial_rate_bits_per_slot) {
  Require(!options.gop_pattern.empty(),
          "GopAwareController: empty GOP pattern");
  Require(options.low_threshold_bits >= 0 &&
              options.high_threshold_bits >= options.low_threshold_bits,
          "GopAwareController: need 0 <= B_l <= B_h");
  Require(options.time_constant_gops >= 1,
          "GopAwareController: time constant must be >= 1 GOP");
  Require(options.flush_slots >= 1,
          "GopAwareController: flush horizon must be >= 1 slot");
  Require(options.granularity_bits_per_slot > 0,
          "GopAwareController: granularity must be positive");
  Require(options.initial_rate_bits_per_slot >= 0,
          "GopAwareController: negative initial rate");
  Require(options.max_rate_bits_per_slot > 0,
          "GopAwareController: max rate must be positive");
  // Seed every position's estimate with the initial rate so the first GOP
  // predicts it exactly.
  per_position_.assign(options.gop_pattern.size(),
                       options.initial_rate_bits_per_slot);
}

double GopAwareController::estimate_bits_per_slot() const {
  double sum = 0;
  for (double e : per_position_) sum += e;
  return sum / static_cast<double>(per_position_.size());
}

std::optional<double> GopAwareController::Step(double arrival_bits,
                                               double granted_rate) {
  Require(arrival_bits >= 0, "GopAwareController::Step: negative arrival");
  Require(granted_rate >= 0, "GopAwareController::Step: negative rate");

  buffer_ = std::max(buffer_ + arrival_bits - granted_rate, 0.0);

  // Update this position's estimator; each position is visited once per
  // GOP, so a gain of 1/time_constant_gops gives the intended memory.
  const double gain = 1.0 / options_.time_constant_gops;
  double& slot_estimate = per_position_[phase_];
  slot_estimate = (1.0 - gain) * slot_estimate + gain * arrival_bits;
  phase_ = (phase_ + 1) % per_position_.size();

  // Pattern-average plus the buffer-flush feedback of eq. (6).
  const double predicted =
      estimate_bits_per_slot() + buffer_ / options_.flush_slots;

  const double delta = options_.granularity_bits_per_slot;
  const double cap =
      std::floor(options_.max_rate_bits_per_slot / delta) * delta;
  const double quantized =
      std::min(std::ceil(predicted / delta) * delta, cap);

  const bool go_up =
      buffer_ > options_.high_threshold_bits && quantized > current_rate_;
  const bool go_down =
      buffer_ < options_.low_threshold_bits && quantized < current_rate_;
  if (go_up || go_down) {
    current_rate_ = quantized;
    ++renegotiations_;
    return quantized;
  }
  return std::nullopt;
}

PiecewiseConstant ComputeGopHeuristicSchedule(
    const std::vector<double>& workload_bits,
    const GopHeuristicOptions& options) {
  Require(!workload_bits.empty(),
          "ComputeGopHeuristicSchedule: empty workload");
  GopAwareController controller(options);
  std::vector<Step> steps;
  steps.push_back({0, options.initial_rate_bits_per_slot});
  double rate = options.initial_rate_bits_per_slot;
  for (std::size_t t = 0; t < workload_bits.size(); ++t) {
    const std::optional<double> request =
        controller.Step(workload_bits[t], rate);
    if (request.has_value() && *request != rate) {
      rate = *request;
      const auto next = static_cast<std::int64_t>(t) + 1;
      if (next < static_cast<std::int64_t>(workload_bits.size())) {
        steps.push_back({next, rate});
      }
    }
  }
  return PiecewiseConstant(std::move(steps),
                           static_cast<std::int64_t>(workload_bits.size()));
}

}  // namespace rcbr::core
