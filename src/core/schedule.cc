#include "core/schedule.h"

#include <algorithm>
#include <numeric>

#include "sim/fluid_queue.h"
#include "util/error.h"

namespace rcbr::core {

ScheduleMetrics EvaluateSchedule(const std::vector<double>& workload_bits,
                                 const PiecewiseConstant& schedule,
                                 double buffer_bits, double slot_seconds,
                                 const CostModel& cost) {
  Require(!workload_bits.empty(), "EvaluateSchedule: empty workload");
  Require(schedule.length() ==
              static_cast<std::int64_t>(workload_bits.size()),
          "EvaluateSchedule: schedule/workload length mismatch");
  Require(slot_seconds > 0, "EvaluateSchedule: slot duration must be positive");

  const sim::DrainResult drain =
      sim::DrainSchedule(workload_bits, schedule, buffer_bits);

  ScheduleMetrics metrics;
  metrics.renegotiations = schedule.change_count();
  metrics.max_buffer_bits = drain.max_occupancy_bits;
  metrics.lost_bits = drain.lost_bits;
  metrics.feasible = drain.lost_bits == 0.0;
  metrics.cost = cost.Cost(metrics.renegotiations, schedule.Integral());

  const double source_mean = std::accumulate(workload_bits.begin(),
                                             workload_bits.end(), 0.0) /
                             static_cast<double>(workload_bits.size());
  const double schedule_mean = schedule.Mean();
  metrics.bandwidth_efficiency =
      schedule_mean > 0 ? source_mean / schedule_mean : 0.0;

  const double session_seconds =
      static_cast<double>(workload_bits.size()) * slot_seconds;
  metrics.mean_interval_seconds =
      session_seconds / static_cast<double>(metrics.renegotiations + 1);
  return metrics;
}

bool MeetsDelayBound(const std::vector<double>& workload_bits,
                     const PiecewiseConstant& schedule,
                     std::int64_t delay_slots) {
  Require(delay_slots >= 0, "MeetsDelayBound: negative delay");
  Require(schedule.length() ==
              static_cast<std::int64_t>(workload_bits.size()),
          "MeetsDelayBound: schedule/workload length mismatch");
  // Cumulative service with an unbounded buffer: the queue can only drain
  // what has arrived, so S(t) = A(t) - q(t) with q from eq. (3).
  const auto n = static_cast<std::int64_t>(workload_bits.size());
  std::vector<double> arrived(static_cast<std::size_t>(n));
  std::vector<double> served(static_cast<std::size_t>(n));
  double a = 0;
  double q = 0;
  for (std::int64_t t = 0; t < n; ++t) {
    a += workload_bits[static_cast<std::size_t>(t)];
    q = std::max(q + workload_bits[static_cast<std::size_t>(t)] -
                     schedule.At(t),
                 0.0);
    arrived[static_cast<std::size_t>(t)] = a;
    served[static_cast<std::size_t>(t)] = a - q;
  }
  // Eq. (5): everything that entered by slot t is out by slot t + d.
  // Deadlines falling beyond the session horizon are unconstrained (this
  // matches the DP's time-varying-bound reduction exactly).
  for (std::int64_t t = 0; t + delay_slots < n; ++t) {
    if (served[static_cast<std::size_t>(t + delay_slots)] + 1e-9 <
        arrived[static_cast<std::size_t>(t)]) {
      return false;
    }
  }
  return true;
}

}  // namespace rcbr::core
