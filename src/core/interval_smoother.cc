#include "core/interval_smoother.h"

#include <algorithm>

#include "util/error.h"

namespace rcbr::core {

namespace {

/// Buffer occupancy after running the interval at rate r from q0; sets
/// `ok` false if the bound is violated at any slot.
double RunInterval(const std::vector<double>& bits, std::size_t begin,
                   std::size_t end, double q0, double rate, double bound,
                   bool* ok) {
  double q = q0;
  *ok = true;
  for (std::size_t t = begin; t < end; ++t) {
    q = std::max(q + bits[t] - rate, 0.0);
    if (q > bound + 1e-9) *ok = false;
  }
  return q;
}

}  // namespace

PiecewiseConstant ComputeIntervalSchedule(
    const std::vector<double>& workload_bits, std::int64_t interval_slots,
    double buffer_bits) {
  Require(!workload_bits.empty(), "ComputeIntervalSchedule: empty workload");
  Require(interval_slots >= 1, "ComputeIntervalSchedule: bad interval");
  Require(buffer_bits >= 0, "ComputeIntervalSchedule: negative buffer");
  const auto n = static_cast<std::int64_t>(workload_bits.size());

  std::vector<Step> steps;
  double q0 = 0;
  for (std::int64_t t0 = 0; t0 < n; t0 += interval_slots) {
    const auto begin = static_cast<std::size_t>(t0);
    const auto end = static_cast<std::size_t>(
        std::min(t0 + interval_slots, n));
    const bool last = static_cast<std::int64_t>(end) >= n;

    // Upper bracket: the rate that clears everything in one slot.
    double hi = q0;
    for (std::size_t t = begin; t < end; ++t) hi += workload_bits[t];
    double lo = 0;
    // Bisect the minimal feasible rate; the last interval additionally
    // drains the buffer (rotation safety).
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = (lo + hi) / 2;
      bool ok = false;
      const double q_end =
          RunInterval(workload_bits, begin, end, q0, mid, buffer_bits, &ok);
      if (ok && (!last || q_end <= 1e-9)) {
        hi = mid;
      } else {
        lo = mid;
      }
      if (hi - lo <= 1e-9 * std::max(1.0, hi)) break;
    }
    steps.push_back({t0, hi});
    bool ok = false;
    q0 = RunInterval(workload_bits, begin, end, q0, hi, buffer_bits, &ok);
    Require(ok, "ComputeIntervalSchedule: internal: infeasible rate");
  }
  return PiecewiseConstant(std::move(steps), n);
}

}  // namespace rcbr::core
