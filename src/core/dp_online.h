// Receding-horizon optimal scheduling: the offline DP as an online policy.
//
// The paper's Sec. IV-A DP needs the whole trace; its heuristic (Sec.
// IV-B) is causal but suboptimal. For stored video the trace *is* known,
// so between the two sits model-predictive control: every
// `replan_period_slots`, re-solve the exact DP over the next
// `window_slots` starting from the live buffer occupancy and the rate
// currently reserved (which pays alpha to leave, unlike the offline free
// first choice), and follow the window-optimal schedule until the next
// re-solve. As the window grows to the trace length the policy converges
// to the offline optimum; small windows trade cost for bounded lookahead
// and per-decision latency.
//
// DpOnlineScheduler implements RateController, so it plugs into
// RcbrSource, call_sim, and the fault/degradation machinery exactly like
// the causal heuristics — denials and imposed fallback rates re-enter the
// next window solve as the reserved rate.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/dp_scheduler.h"
#include "core/rate_controller.h"
#include "obs/recorder.h"
#include "util/piecewise.h"

namespace rcbr::runtime {
class ThreadPool;
}  // namespace rcbr::runtime

namespace rcbr::core {

struct DpOnlineOptions {
  /// The window DP's option set: rate levels, buffer/delay bound, costs,
  /// quantization, decision period, threads. `initial_buffer_bits`,
  /// `initial_rate_index`, and `pool` are overwritten per window solve;
  /// `final_buffer_bits` applies only to windows reaching the trace end
  /// (mid-trace windows leave the terminal buffer free).
  DpOptions dp;

  /// Lookahead horizon in slots (0 = the whole remaining trace).
  std::int64_t window_slots = 0;

  /// Slots between re-solves. 0 picks the DP decision period — re-plan at
  /// every point a renegotiation is permitted, the classic MPC cadence.
  std::int64_t replan_period_slots = 0;
};

/// Receding-horizon RateController over a known workload. Non-causal in
/// the arrivals (it reads the stored trace ahead of the playout clock)
/// but causal in the network: grants, denials, and imposed rates feed
/// back into the next window.
class DpOnlineScheduler final : public RateController {
 public:
  /// `workload_bits` is the full per-slot arrival trace the windows read
  /// ahead from. Solves the first window immediately, so current_rate()
  /// is the window-optimal initial reservation. Throws InvalidArgument on
  /// malformed options (validated as in ComputeOptimalSchedule).
  DpOnlineScheduler(std::vector<double> workload_bits,
                    const DpOnlineOptions& options);
  ~DpOnlineScheduler() override;

  std::optional<double> Step(double arrival_bits,
                             double granted_rate) override;
  void OnRequestDenied(double granted_rate) override;
  void OnRateImposed(double granted_rate) override;
  double current_rate() const override { return current_rate_; }

  /// Windows that had no feasible schedule (the policy then requests the
  /// top rate for the whole window) — nonzero under imposed rates or
  /// denial backlogs a window cannot drain.
  std::int64_t infeasible_windows() const { return infeasible_windows_; }
  /// Window DP solves performed, including the one at construction.
  std::int64_t replans() const { return replans_; }

 private:
  void Replan();
  double PlanAt(std::int64_t slot) const;

  std::vector<double> workload_;
  DpOnlineOptions options_;
  std::unique_ptr<runtime::ThreadPool> pool_;

  std::int64_t slot_ = 0;          // next slot to be consumed
  double buffer_bits_ = 0;         // live occupancy after slot_ - 1
  double current_rate_ = 0;
  std::int64_t plan_start_ = 0;    // slot the current plan begins at
  PiecewiseConstant plan_;
  std::int64_t replans_ = 0;
  std::int64_t infeasible_windows_ = 0;
};

/// Open-loop convenience: runs DpOnlineScheduler over the whole workload
/// with every request granted and returns the realized schedule (one
/// value per decision; coalesced). With window_slots = 0 this reproduces
/// the offline optimum's cost exactly.
PiecewiseConstant ComputeDpOnlineSchedule(
    const std::vector<double>& workload_bits,
    const DpOnlineOptions& options);

}  // namespace rcbr::core
