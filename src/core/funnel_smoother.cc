#include "core/funnel_smoother.h"

#include <algorithm>
#include <limits>

#include "util/error.h"

namespace rcbr::core {

PiecewiseConstant ComputeFunnelSchedule(
    const std::vector<double>& workload_bits, double buffer_bits) {
  Require(!workload_bits.empty(), "ComputeFunnelSchedule: empty workload");
  Require(buffer_bits >= 0, "ComputeFunnelSchedule: negative buffer");
  const auto n = static_cast<std::int64_t>(workload_bits.size());

  // Cumulative arrivals A(t) for t = 1..n (A(0) = 0).
  std::vector<double> cumulative(static_cast<std::size_t>(n) + 1, 0.0);
  for (std::int64_t t = 0; t < n; ++t) {
    cumulative[static_cast<std::size_t>(t) + 1] =
        cumulative[static_cast<std::size_t>(t)] +
        workload_bits[static_cast<std::size_t>(t)];
  }
  const auto upper = [&](std::int64_t t) {
    return cumulative[static_cast<std::size_t>(t)];
  };
  const auto lower = [&](std::int64_t t) {
    // The final slot must deliver everything (empty the buffer).
    if (t == n) return cumulative[static_cast<std::size_t>(n)];
    return std::max(cumulative[static_cast<std::size_t>(t)] - buffer_bits,
                    0.0);
  };

  std::vector<Step> steps;
  std::int64_t seg_start = 0;  // segment starts after slot seg_start
  double seg_value = 0;        // S(seg_start)
  while (seg_start < n) {
    double slope_max = std::numeric_limits<double>::infinity();
    double slope_min = 0;
    std::int64_t bind_upper = seg_start + 1;  // argmin of the upper slope
    std::int64_t bind_lower = seg_start + 1;  // argmax of the lower slope
    std::int64_t t = seg_start + 1;
    bool closed = false;
    for (; t <= n; ++t) {
      const double span = static_cast<double>(t - seg_start);
      const double hi = (upper(t) - seg_value) / span;
      const double lo = (lower(t) - seg_value) / span;
      // Pinch checks against the window accumulated over earlier slots.
      if (lo > slope_max + 1e-9) {
        // The lower bound now requires more slope than any earlier upper
        // bound allows: run at the maximal feasible slope and close where
        // the upper bound binds (the buffer drains empty there).
        steps.push_back({seg_start, slope_max});
        seg_value = upper(bind_upper);
        seg_start = bind_upper;
        closed = true;
        break;
      }
      if (hi < slope_min - 1e-9) {
        // The upper bound now forbids the slope the lower bounds demand:
        // run at the minimal feasible slope and close where the lower
        // bound binds (the buffer fills there).
        steps.push_back({seg_start, slope_min});
        seg_value = lower(bind_lower);
        seg_start = bind_lower;
        closed = true;
        break;
      }
      if (hi < slope_max) {
        slope_max = hi;
        bind_upper = t;
      }
      if (lo > slope_min) {
        slope_min = lo;
        bind_lower = t;
      }
    }
    if (!closed) {
      // Reached the horizon: finish with one segment that lands exactly on
      // the required final cumulative service.
      const double span = static_cast<double>(n - seg_start);
      double slope = (cumulative[static_cast<std::size_t>(n)] - seg_value) /
                     span;
      slope = std::clamp(slope, slope_min, slope_max);
      steps.push_back({seg_start, slope});
      break;
    }
  }
  return PiecewiseConstant(std::move(steps), n);
}

}  // namespace rcbr::core
