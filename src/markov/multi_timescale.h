// The multiple-time-scale source model (Sec. V-A, Fig. 4).
//
// The state space of the modulating chain decomposes into disjoint
// subchains E_1..E_K. Transitions inside a subchain model fast dynamics
// (frame-to-frame correlation); transitions *between* subchains happen
// with very small probability epsilon and model slow dynamics (scene
// changes). The source "typically spends a long time in a subchain and
// then occasionally jumps to a different subchain".
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "markov/dtmc.h"
#include "markov/rate_source.h"

namespace rcbr::markov {

/// One fast time-scale subchain with its per-state slot workloads.
struct Subchain {
  Dtmc chain;
  std::vector<double> bits_per_slot;
};

class MultiTimescaleSource {
 public:
  /// Builds the composite chain. With probability `epsilon` per slot the
  /// source leaves its current subchain; the destination subchain is
  /// uniform among the others and the entry state is drawn from that
  /// subchain's stationary distribution. Requires epsilon in (0, 1) and at
  /// least two subchains.
  MultiTimescaleSource(std::vector<Subchain> subchains, double epsilon);

  /// Per-subchain escape probabilities: the source leaves subchain k with
  /// probability `escape[k]` per slot (destination uniform among the
  /// others). Because the slow chain's stationary distribution is
  /// proportional to 1/escape[k], this constructor can match measured
  /// scene-occupancy fractions (see markov/fitting.h).
  MultiTimescaleSource(std::vector<Subchain> subchains,
                       std::vector<double> escape_probabilities);

  std::size_t subchain_count() const { return subchains_.size(); }
  /// Mean escape probability across subchains.
  double epsilon() const { return epsilon_; }
  const std::vector<double>& escape_probabilities() const {
    return escape_;
  }

  /// The composite Markov-modulated source over all states.
  const RateSource& composite() const { return *composite_; }

  /// The k-th subchain viewed in isolation (its own RateSource).
  RateSource SubchainSource(std::size_t k) const;

  /// Index of the subchain owning composite state `s`.
  std::size_t SubchainOfState(std::size_t s) const;

  /// First composite state index of subchain k.
  std::size_t StateOffset(std::size_t k) const { return offsets_[k]; }

  /// Stationary probability of residing in each subchain (the paper's
  /// pi_k), computed from the composite chain.
  std::vector<double> SubchainStationary() const;

  /// Mean data per slot of each subchain in isolation (the paper's m_k).
  std::vector<double> SubchainMeanBitsPerSlot() const;

 private:
  std::vector<Subchain> subchains_;
  double epsilon_ = 0;
  std::vector<double> escape_;
  std::vector<std::size_t> offsets_;
  std::vector<std::size_t> owner_;  // composite state -> subchain index
  std::unique_ptr<RateSource> composite_;
};

/// The three-subchain example of Fig. 4: low / medium / high activity
/// subchains, each a two-state fast chain fluctuating around its scene
/// rate. `mean_rate` sets the overall stationary mean data per slot.
MultiTimescaleSource MakeThreeSubchainSource(double mean_bits_per_slot,
                                             double epsilon);

}  // namespace rcbr::markov
