#include "markov/matrix.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rcbr::markov {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
  Require(rows > 0 && cols > 0, "Matrix: zero dimension");
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  Require(!rows.empty() && !rows.front().empty(), "Matrix::FromRows: empty");
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    Require(rows[r].size() == m.cols_, "Matrix::FromRows: ragged rows");
    for (std::size_t c = 0; c < m.cols_; ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  Require(cols_ == other.rows_, "Matrix::operator*: shape mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = at(r, k);
      if (v == 0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.at(r, c) += v * other.at(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::Apply(const std::vector<double>& x) const {
  Require(x.size() == cols_, "Matrix::Apply: size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) y[r] += at(r, c) * x[c];
  }
  return y;
}

std::vector<double> Matrix::ApplyLeft(const std::vector<double>& x) const {
  Require(x.size() == rows_, "Matrix::ApplyLeft: size mismatch");
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    if (x[r] == 0) continue;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += x[r] * at(r, c);
  }
  return y;
}

std::vector<double> Solve(Matrix a, std::vector<double> b) {
  Require(a.rows() == a.cols(), "Solve: matrix must be square");
  Require(b.size() == a.rows(), "Solve: rhs size mismatch");
  const std::size_t n = a.rows();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) pivot = r;
    }
    if (std::abs(a.at(pivot, col)) < 1e-14) {
      throw Error("Solve: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a.at(pivot, c), a.at(col, c));
      }
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) / a.at(col, col);
      if (factor == 0) continue;
      for (std::size_t c = col; c < n; ++c) {
        a.at(r, c) -= factor * a.at(col, c);
      }
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= a.at(ri, c) * x[c];
    x[ri] = acc / a.at(ri, ri);
  }
  return x;
}

double PerronRoot(const Matrix& m, int max_iterations, double tolerance) {
  Require(m.rows() == m.cols(), "PerronRoot: matrix must be square");
  const std::size_t n = m.rows();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      Require(m.at(r, c) >= 0, "PerronRoot: negative entry");
    }
  }
  std::vector<double> v(n, 1.0 / static_cast<double>(n));
  double lambda = 0;
  for (int it = 0; it < max_iterations; ++it) {
    std::vector<double> w = m.Apply(v);
    double norm = 0;
    for (double x : w) norm += x;
    if (norm <= 0) return 0.0;  // nilpotent-like; spectral radius ~ 0
    for (double& x : w) x /= norm;
    const double new_lambda = norm;
    const bool converged = std::abs(new_lambda - lambda) <=
                           tolerance * std::max(1.0, std::abs(new_lambda));
    lambda = new_lambda;
    v = std::move(w);
    if (converged && it > 2) break;
  }
  return lambda;
}

}  // namespace rcbr::markov
