// Discrete-time Markov chains.
//
// The traffic model of Sec. V-A modulates the per-slot data amount by an
// irreducible finite-state Markov chain. Dtmc wraps a row-stochastic
// transition matrix with stationary-distribution computation,
// irreducibility checking and simulation.
#pragma once

#include <cstddef>
#include <vector>

#include "markov/matrix.h"
#include "util/rng.h"

namespace rcbr::markov {

class Dtmc {
 public:
  /// Constructs from a row-stochastic square matrix (rows sum to 1 within
  /// tolerance; entries nonnegative).
  explicit Dtmc(Matrix transition);

  std::size_t state_count() const { return p_.rows(); }
  const Matrix& transition() const { return p_; }
  double prob(std::size_t from, std::size_t to) const { return p_.at(from, to); }

  /// True iff every state can reach every other (strong connectivity of
  /// the positive-probability graph).
  bool IsIrreducible() const;

  /// Stationary distribution pi with pi P = pi, sum pi = 1.
  /// Requires irreducibility.
  std::vector<double> StationaryDistribution() const;

  /// One transition from `state` using `rng`.
  std::size_t Step(std::size_t state, rcbr::Rng& rng) const;

  /// Simulates `steps` transitions starting from `initial`; returns the
  /// visited states (length `steps`, first entry is the state *after* the
  /// first transition... no: entry 0 is `initial`, then transitions).
  std::vector<std::size_t> Simulate(std::size_t initial, std::size_t steps,
                                    rcbr::Rng& rng) const;

  /// Draws a state from the stationary distribution.
  std::size_t SampleStationary(rcbr::Rng& rng) const;

 private:
  Matrix p_;
  mutable std::vector<double> stationary_cache_;
};

/// Builds a two-state on/off chain: P(on->off) = p_off, P(off->on) = p_on.
/// State 0 is "off", state 1 is "on".
Dtmc MakeOnOffChain(double p_on, double p_off);

/// Builds a birth-death chain on n states with up-probability `up` and
/// down-probability `down` at interior states (self-loop takes the rest).
Dtmc MakeBirthDeathChain(std::size_t n, double up, double down);

}  // namespace rcbr::markov
