#include "markov/rate_source.h"

#include <algorithm>

#include "util/error.h"

namespace rcbr::markov {

RateSource::RateSource(Dtmc chain, std::vector<double> bits_per_slot)
    : chain_(std::move(chain)), bits_(std::move(bits_per_slot)) {
  Require(bits_.size() == chain_.state_count(),
          "RateSource: one rate per state required");
  for (double b : bits_) {
    Require(b >= 0, "RateSource: negative data amount");
  }
}

double RateSource::MeanBitsPerSlot() const {
  const std::vector<double> pi = chain_.StationaryDistribution();
  double mean = 0;
  for (std::size_t i = 0; i < bits_.size(); ++i) mean += pi[i] * bits_[i];
  return mean;
}

double RateSource::PeakBitsPerSlot() const {
  return *std::max_element(bits_.begin(), bits_.end());
}

std::vector<double> RateSource::Generate(std::size_t slots,
                                         rcbr::Rng& rng) const {
  return GenerateFrom(chain_.SampleStationary(rng), slots, rng);
}

std::vector<double> RateSource::GenerateFrom(
    std::size_t initial, std::size_t slots, rcbr::Rng& rng,
    std::vector<std::size_t>* states_out) const {
  const std::vector<std::size_t> states =
      chain_.Simulate(initial, slots, rng);
  std::vector<double> workload(slots);
  for (std::size_t i = 0; i < slots; ++i) workload[i] = bits_[states[i]];
  if (states_out != nullptr) *states_out = states;
  return workload;
}

}  // namespace rcbr::markov
